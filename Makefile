GO ?= go

.PHONY: check fmt vet build test race lint bench-json bench-check serve-smoke

check: fmt vet lint build test race serve-smoke

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Determinism lint: no wall-clock, global randomness or map-order
# iteration in the packages whose outputs must be byte-identical across
# runs (see cmd/repolint).
lint:
	$(GO) run ./cmd/repolint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# -short keeps the race gate in the low minutes: the heaviest
# sequential solves are skipped (plain `make test` still runs them
# race-free) while every concurrency path stays covered — the dse
# worker pool and shared cache, the parallel branch-and-bound search,
# the region-solve store (concurrent Get/Put, singleflight) and the
# core region scheduler's 4-worker byte-identity run.
race:
	$(GO) test -race -short ./internal/obs/... ./internal/dse/... ./internal/ilp/... ./internal/core/... ./internal/solstore/... ./internal/serve/...

# Perf trajectory: run the figure benches and the ILP, solstore and dse
# microbench suites, refresh BENCH_ilp.json (schema documented in
# EXPERIMENTS.md).
bench-json:
	$(GO) run ./cmd/benchjson -o BENCH_ilp.json

# Bench gate: re-measure the stable microbench suites and fail when any
# ns/op regresses past 2x the committed BENCH_ilp.json value.
bench-check:
	$(GO) run ./cmd/benchjson -suite ilp -check BENCH_ilp.json
	$(GO) run ./cmd/benchjson -suite solstore -check BENCH_ilp.json
	$(GO) run ./cmd/benchjson -suite obs -check BENCH_ilp.json
	$(GO) run ./cmd/benchjson -suite deps -check BENCH_ilp.json
	$(GO) run ./cmd/benchjson -suite serve -check BENCH_ilp.json

# Daemon smoke: start heteropard on an ephemeral port, POST one
# benchmark, assert the response is byte-identical to `heteropar
# -json`, scrape /metrics, and require a clean SIGTERM drain.
serve-smoke:
	./scripts/serve_smoke.sh
