GO ?= go

.PHONY: check fmt vet build test race lint bench-json

check: fmt vet lint build test race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Determinism lint: no wall-clock, global randomness or map-order
# iteration in the packages whose outputs must be byte-identical across
# runs (see cmd/repolint).
lint:
	$(GO) run ./cmd/repolint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# -short keeps the race gate under ~30s: the full multi-point sweep test
# is skipped (plain `make test` still runs it race-free); the worker-pool
# and cache concurrency paths stay covered by the unguarded dse tests,
# and the parallel branch-and-bound search by the ilp determinism tests.
race:
	$(GO) test -race -short ./internal/obs/... ./internal/dse/... ./internal/ilp/...

# Perf trajectory: run the figure benches and the ILP microbench suite,
# refresh BENCH_ilp.json (schema documented in EXPERIMENTS.md).
bench-json:
	$(GO) run ./cmd/benchjson -o BENCH_ilp.json
