// ILP-solver example: the parallelizer's Integer Linear Programming engine
// is a stand-alone package. This example solves two classic models with it:
// a 0/1 knapsack and a small heterogeneous task-assignment problem (the
// essence of the paper's Eq. 12-16), and prints the lp_solve-format export.
//
//	go run ./examples/ilpsolver
package main

import (
	"fmt"

	"repro/internal/ilp"
)

func knapsack() {
	fmt.Println("=== 0/1 knapsack ===")
	values := []float64{60, 100, 120, 75, 40}
	weights := []float64{10, 20, 30, 15, 9}
	const capacity = 50

	m := ilp.NewModel()
	items := make([]ilp.VarID, len(values))
	var cap []ilp.Term
	for i := range values {
		items[i] = m.AddBinary(fmt.Sprintf("take_%d", i), -values[i]) // maximize value
		cap = append(cap, ilp.Term{Var: items[i], Coeff: weights[i]})
	}
	m.AddCons("capacity", cap, ilp.LE, capacity)

	res := ilp.Solve(m, ilp.Options{})
	fmt.Printf("status: %v, total value: %.0f\n", res.Status, -res.Obj)
	for i := range values {
		if res.X[items[i]] > 0.5 {
			fmt.Printf("  take item %d (value %.0f, weight %.0f)\n", i, values[i], weights[i])
		}
	}
	fmt.Println()
}

func assignment() {
	fmt.Println("=== heterogeneous task assignment (makespan) ===")
	// Four jobs with per-core-class runtimes; one slow and one fast core.
	// Minimize the makespan: the ILP assigns jobs and bounds every core's
	// load by the makespan variable, like Eq. 8-16 of the paper.
	jobs := [][]float64{ // [job][class] runtime
		{8, 2}, {6, 1.5}, {4, 1}, {4, 1},
	}
	m := ilp.NewModel()
	x := make([][]ilp.VarID, len(jobs))
	for j := range jobs {
		x[j] = make([]ilp.VarID, 2)
		var one []ilp.Term
		for c := 0; c < 2; c++ {
			x[j][c] = m.AddBinary(fmt.Sprintf("job%d_on_c%d", j, c), 0)
			one = append(one, ilp.Term{Var: x[j][c], Coeff: 1})
		}
		m.AddCons(fmt.Sprintf("assign_job%d", j), one, ilp.EQ, 1)
	}
	makespan := m.AddVar("makespan", 0, 1e9, 1)
	for c := 0; c < 2; c++ {
		terms := []ilp.Term{{Var: makespan, Coeff: 1}}
		for j := range jobs {
			terms = append(terms, ilp.Term{Var: x[j][c], Coeff: -jobs[j][c]})
		}
		m.AddCons(fmt.Sprintf("load_c%d", c), terms, ilp.GE, 0)
	}

	res := ilp.Solve(m, ilp.Options{})
	fmt.Printf("status: %v, makespan: %.1f\n", res.Status, res.Obj)
	for j := range jobs {
		for c := 0; c < 2; c++ {
			if res.X[x[j][c]] > 0.5 {
				fmt.Printf("  job %d -> class %d (%.1f time units)\n", j, c, jobs[j][c])
			}
		}
	}
	fmt.Println("\n--- lp_solve export ---")
	fmt.Println(m.WriteLP())
}

func main() {
	knapsack()
	assignment()
}
