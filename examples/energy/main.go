// Energy example: the paper's future work mentions optimizing for "other
// objectives ... like energy consumption". The bundled simulator carries a
// first-order power model (active/idle draw per processor class, bus
// energy per byte), so every parallelization can be compared on energy and
// energy-delay product, not just speedup.
//
//	go run ./examples/energy
package main

import (
	"fmt"
	"log"

	heteropar "repro"
)

const src = `
#define N 768
float a[N]; float b[N]; float s;
void main(void) {
    for (int i = 0; i < N; i++) {
        a[i] = sin(i * 0.045) * 8.0 + cos(i * 0.21);
    }
    for (int i = 0; i < N; i++) {
        b[i] = sqrt(fabs(a[i]) + 1.0) * a[i];
    }
    s = 0.0;
    for (int i = 0; i < N; i++) {
        s += b[i] * b[i];
    }
}
`

func main() {
	for _, ap := range []heteropar.Approach{heteropar.Homogeneous, heteropar.Heterogeneous} {
		rep, err := heteropar.Parallelize(src, heteropar.Options{
			Platform: heteropar.PlatformA(),
			Scenario: heteropar.Accelerator,
			Approach: ap,
		})
		if err != nil {
			log.Fatal(err)
		}
		edpSeq := rep.SequentialEnergyUJ * rep.SequentialNs / 1e6
		edpPar := rep.MeasuredEnergyUJ * rep.MeasuredMakespanNs / 1e6
		fmt.Printf("%-14s speedup %5.2fx   energy %8.1f uJ (seq %8.1f uJ)   EDP %9.1f uJ*ms (seq %9.1f)\n",
			ap, rep.MeasuredSpeedup, rep.MeasuredEnergyUJ, rep.SequentialEnergyUJ, edpPar, edpSeq)
	}
	fmt.Println("\nParallel runs finish sooner, so the idle-burn window of every")
	fmt.Println("powered core shrinks; the heterogeneous pre-mapping additionally")
	fmt.Println("keeps work on the cores that are efficient at the needed speed.")
}
