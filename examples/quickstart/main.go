// Quickstart: parallelize a small sequential program for the default
// heterogeneous platform and print what the tool did.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	heteropar "repro"
)

// A tiny signal-processing pipeline: generate a waveform, filter it, and
// accumulate its energy. The two loops are data-parallel; the final loop is
// a reduction.
const src = `
#define N 512

float signal[N];
float filtered[N];
float energy;

void main(void) {
    for (int i = 0; i < N; i++) {
        signal[i] = sin(i * 0.1) + 0.5 * sin(i * 0.37);
    }
    for (int i = 1; i < N - 1; i++) {
        filtered[i] = 0.25 * signal[i - 1] + 0.5 * signal[i] + 0.25 * signal[i + 1];
    }
    energy = 0.0;
    for (int i = 0; i < N; i++) {
        energy += filtered[i] * filtered[i];
    }
}
`

func main() {
	rep, err := heteropar.Parallelize(src, heteropar.Options{
		Platform: heteropar.PlatformA(), // 100/250/500/500 MHz ARM cores
		Scenario: heteropar.Accelerator, // main task on the 100 MHz core
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== quickstart ===")
	fmt.Printf("extracted tasks:     %d\n", rep.NumTasks())
	fmt.Printf("sequential runtime:  %.2f ms (on the 100 MHz main core)\n", rep.SequentialNs/1e6)
	fmt.Printf("parallel runtime:    %.2f ms (measured on the MPSoC simulator)\n", rep.MeasuredMakespanNs/1e6)
	fmt.Printf("speedup:             %.2fx of a theoretical %.2fx\n",
		rep.MeasuredSpeedup, rep.TheoreticalLimit())

	fmt.Println("\n=== hierarchical task plan ===")
	fmt.Print(rep.PlanSummary())

	fmt.Println("\n=== pre-mapping specification ===")
	fmt.Print(rep.ParallelSpec())
}
