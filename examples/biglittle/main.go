// big.LITTLE example: parallelize the same kernel for platform
// configuration (B) — two 200 MHz LITTLE cores and two 500 MHz big cores —
// in both evaluation scenarios, comparing the heterogeneous approach
// against the homogeneous baseline (a miniature Figure 8).
//
//	go run ./examples/biglittle
package main

import (
	"fmt"
	"log"

	heteropar "repro"
)

// A two-stage stencil + reduction workload.
const src = `
#define N 768

float in[N];
float mid[N];
float out[N];
float norm;

void main(void) {
    for (int i = 0; i < N; i++) {
        in[i] = sin(i * 0.05) * 10.0 + cos(i * 0.17) * 3.0;
    }
    for (int i = 2; i < N - 2; i++) {
        mid[i] = 0.1 * in[i - 2] + 0.2 * in[i - 1] + 0.4 * in[i]
               + 0.2 * in[i + 1] + 0.1 * in[i + 2];
    }
    for (int i = 0; i < N; i++) {
        out[i] = sqrt(fabs(mid[i]) + 1.0);
    }
    norm = 0.0;
    for (int i = 0; i < N; i++) {
        norm += out[i] * out[i];
    }
}
`

func run(scenario heteropar.Scenario, approach heteropar.Approach) *heteropar.Report {
	rep, err := heteropar.Parallelize(src, heteropar.Options{
		Platform: heteropar.PlatformB(),
		Scenario: scenario,
		Approach: approach,
	})
	if err != nil {
		log.Fatal(err)
	}
	return rep
}

func main() {
	pf := heteropar.PlatformB()
	fmt.Printf("platform: %s\n\n", pf)

	type row struct {
		scenario heteropar.Scenario
		label    string
	}
	for _, r := range []row{
		{heteropar.Accelerator, "scenario I  (LITTLE core is the main processor)"},
		{heteropar.SlowerCores, "scenario II (big core is the main processor)"},
	} {
		hom := run(r.scenario, heteropar.Homogeneous)
		het := run(r.scenario, heteropar.Heterogeneous)
		fmt.Println(r.label)
		fmt.Printf("  theoretical limit:        %.2fx\n", het.TheoreticalLimit())
		fmt.Printf("  homogeneous baseline:     %.2fx\n", hom.MeasuredSpeedup)
		fmt.Printf("  heterogeneous (paper):    %.2fx\n", het.MeasuredSpeedup)
		if het.MeasuredSpeedup > hom.MeasuredSpeedup {
			fmt.Printf("  -> class-aware balancing wins by %.1f%%\n\n",
				100*(het.MeasuredSpeedup/hom.MeasuredSpeedup-1))
		} else {
			fmt.Printf("  -> no benefit on this kernel\n\n")
		}
	}
}
