// Pipeline example: the paper's future-work extension in action. A loop
// whose iterations are serialized by filter state cannot be chunked, but
// its body splits into stages that overlap across iterations - each stage
// pre-mapped to the processor class that suits its weight.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	heteropar "repro"
)

const src = `
/* Three-stage effects chain over one audio channel: pre-emphasis,
 * waveshaper, reverb tail. Every stage carries its own state, so the
 * sample loop is a recurrence - DOALL chunking does not apply. */
#define N 2048

float in[N];
float out[N];
float pre;
float shape;
float tail;

void main(void) {
    for (int i = 0; i < N; i++) {
        in[i] = sin(i * 0.031) + 0.3 * sin(i * 0.172);
    }
    for (int n = 0; n < N; n++) {
        pre = in[n] - 0.95 * pre;
        shape = shape * 0.2 + pre * pre * pre + sqrt(fabs(pre) + 1.0);
        tail = tail * 0.7 + shape * 0.3;
        out[n] = tail + shape * 0.1;
    }
}
`

func run(pipelining bool) *heteropar.Report {
	rep, err := heteropar.Parallelize(src, heteropar.Options{
		Platform:         heteropar.PlatformA(),
		Scenario:         heteropar.Accelerator,
		EnablePipelining: pipelining,
	})
	if err != nil {
		log.Fatal(err)
	}
	return rep
}

func main() {
	plain := run(false)
	piped := run(true)
	fmt.Printf("task-level only:   %.2fx measured speedup\n", plain.MeasuredSpeedup)
	fmt.Printf("with pipelining:   %.2fx measured speedup\n\n", piped.MeasuredSpeedup)
	fmt.Println("=== pipelined plan ===")
	fmt.Print(piped.PlanSummary())
	fmt.Println("\n=== simulated timeline ===")
	fmt.Print(piped.Gantt(88))
}
