// Custom-kernel example: bring your own C kernel and your own platform.
// Parallelizes a 2-D heat diffusion stencil for a three-class MPSoC and
// emits the annotated source a downstream source-to-source flow would
// consume.
//
//	go run ./examples/customkernel
package main

import (
	"fmt"
	"log"

	heteropar "repro"
)

const kernel = `
/* 2-D heat diffusion on a 64x64 plate, 8 explicit Euler steps. */
#define N 64
#define STEPS 8

float t0[64][64];
float t1[64][64];
float maxt;

void main(void) {
    for (int i = 0; i < N; i++) {
        for (int j = 0; j < N; j++) {
            t0[i][j] = 20.0;
        }
    }
    for (int j = 0; j < N; j++) {
        t0[0][j] = 100.0;   /* hot top edge */
    }
    for (int s = 0; s < STEPS; s++) {
        for (int i = 1; i < N - 1; i++) {
            for (int j = 1; j < N - 1; j++) {
                t1[i][j] = t0[i][j] + 0.1 * (t0[i - 1][j] + t0[i + 1][j]
                         + t0[i][j - 1] + t0[i][j + 1] - 4.0 * t0[i][j]);
            }
        }
        for (int i = 1; i < N - 1; i++) {
            for (int j = 1; j < N - 1; j++) {
                t0[i][j] = t1[i][j];
            }
        }
    }
    maxt = 0.0;
    for (int i = 0; i < N; i++) {
        float rowmax = 0.0;
        for (int j = 0; j < N; j++) {
            rowmax = max(rowmax, t0[i][j]);
        }
        maxt = max(maxt, rowmax);
    }
}
`

func main() {
	// A three-class platform: one efficiency core, two mid cores, one
	// performance core.
	pf := heteropar.NewPlatform("tri-cluster",
		heteropar.ProcClass{Name: "eco@80MHz", MHz: 80, Count: 1, CPIFactor: 1},
		heteropar.ProcClass{Name: "mid@300MHz", MHz: 300, Count: 2, CPIFactor: 1},
		heteropar.ProcClass{Name: "perf@600MHz", MHz: 600, Count: 1, CPIFactor: 1},
	)

	rep, err := heteropar.Parallelize(kernel, heteropar.Options{
		Platform: pf,
		Scenario: heteropar.Accelerator, // main task on the eco core
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("platform:  %s\n", pf)
	fmt.Printf("speedup:   %.2fx measured (limit %.2fx)\n\n",
		rep.MeasuredSpeedup, rep.TheoreticalLimit())

	fmt.Println("=== annotated source (input to a source-to-source backend) ===")
	fmt.Println(rep.AnnotatedSource())
}
