// Example dsesweep explores a small heterogeneous-platform design space
// for one benchmark through the internal/dse library API: enumerate a
// space, sweep it on a worker pool with a solution cache, and print the
// Pareto-optimal platforms.
//
// Run with: go run ./examples/dsesweep
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/dse"
	"repro/internal/experiments"
	"repro/internal/platform"
)

func main() {
	// A deliberately tiny space: two clock choices, up to two classes of
	// up to two cores, accelerator scenario only — 6 platforms.
	spec := dse.SpaceSpec{
		ClocksMHz:        []float64{100, 500},
		MaxClasses:       2,
		MaxCoresPerClass: 2,
		MinTotalCores:    2,
		MaxTotalCores:    4,
		Scenarios:        []platform.Scenario{platform.ScenarioAccelerator},
	}
	points := spec.Enumerate()

	prep, err := experiments.Prepare(bench.ByName("mult_10"))
	if err != nil {
		log.Fatal(err)
	}
	workloads := []*dse.Workload{dse.PrepareWorkload(prep)}

	eng := &dse.Engine{
		Config: dse.SweepConfig(),
		Seed:   1,
		Cache:  dse.NewCache("", nil), // in-memory; pass a dir to persist
	}
	res, err := eng.Run(context.Background(), points, workloads)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("swept %d platforms over %s (%d cache hits intra-run)\n\n",
		len(res.Summaries), prep.Bench.Name, res.CacheHits)
	fmt.Println("Pareto front (speedup up, cores and energy down):")
	for _, s := range res.Front {
		fmt.Printf("  %-14s %d cores  %.2fx speedup (limit %.2fx)  %.0f uJ  GA gap %+.1f%%\n",
			s.Point.Platform.Name, s.Cores, s.GeoSpeedup, s.Limit,
			s.MeanEnergyUJ, s.MedianGAGapPct)
	}
}
