package heteropar_test

// The benchmark harness regenerates every evaluation artifact of the paper:
// one testing.B per figure (7a, 7b, 8a, 8b) and for Table I, plus the
// ablation benches DESIGN.md calls out. Measured speedups are attached as
// custom metrics, so `go test -bench=. -benchmem` prints the series the
// paper reports.
//
// By default each figure runs on a three-benchmark subset so the full suite
// stays in the minutes range; set REPRO_FULL=1 to sweep all ten programs
// (that is what cmd/paperrepro does, with nicer output).

import (
	"fmt"
	"os"
	"testing"

	heteropar "repro"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mpsoc"
	"repro/internal/platform"
)

// benchSubset picks the benchmarks exercised by default: one high-speedup
// kernel, one mid, one communication-bound.
func benchSubset() []string {
	if os.Getenv("REPRO_FULL") != "" {
		return nil // nil selects all ten
	}
	return []string{"mult_10", "fir_256", "latnrm_32"}
}

// figStore is shared by every figure bench in the process: region
// solves are content-addressed and output-neutral, so scenario pairs
// on one platform (7a/7b on A, 8a/8b on B) reuse each other's entire
// region workload instead of re-solving it. EXPERIMENTS.md documents
// the warm-store methodology; set REPRO_COLD=1 for store-less timings.
var figStore = heteropar.NewSolutionStore(1 << 14)

func figureConfig() core.Config {
	if os.Getenv("REPRO_COLD") != "" {
		return core.Config{}
	}
	return core.Config{Store: figStore}
}

func benchmarkFigure(b *testing.B, id string) {
	b.ReportAllocs()
	var fig *experiments.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = experiments.RunFigure(id, benchSubset(), figureConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	homo, hetero := fig.Averages()
	b.ReportMetric(homo, "homo-x")
	b.ReportMetric(hetero, "hetero-x")
	b.ReportMetric(fig.Limit, "limit-x")
	if testing.Verbose() {
		b.Logf("\n%s", fig.Render())
	}
}

// BenchmarkFig7a regenerates Figure 7(a): configuration A, accelerator
// scenario. Expected shape: hetero >> homo, hetero approaching 13.5x for
// the data-parallel kernels.
func BenchmarkFig7a(b *testing.B) { benchmarkFigure(b, "7a") }

// BenchmarkFig7b regenerates Figure 7(b): configuration A, slower-cores
// scenario. Expected shape: homo around or below 1x, hetero 1.2-2.5x.
func BenchmarkFig7b(b *testing.B) { benchmarkFigure(b, "7b") }

// BenchmarkFig8a regenerates Figure 8(a): configuration B, accelerator
// scenario. Expected shape: homo ~3x, hetero up to ~6-7x.
func BenchmarkFig8a(b *testing.B) { benchmarkFigure(b, "8a") }

// BenchmarkFig8b regenerates Figure 8(b): configuration B, slower-cores
// scenario. Expected shape: homo <= ~1.7x, hetero up to ~2.6-2.8x.
func BenchmarkFig8b(b *testing.B) { benchmarkFigure(b, "8b") }

// BenchmarkTableI regenerates the ILP statistics comparison. The reported
// metrics are the hetero/homo growth factors of ILP count, variables and
// constraints (paper averages: 3.5x, 7.0x, 5.5x).
func BenchmarkTableI(b *testing.B) {
	b.ReportAllocs()
	var tbl *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = experiments.RunTableI(benchSubset(), figureConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	avg := tbl.Averages()
	_, fi, fv, fc := avg.Factors()
	b.ReportMetric(fi, "factor-ILPs")
	b.ReportMetric(fv, "factor-vars")
	b.ReportMetric(fc, "factor-cons")
	if testing.Verbose() {
		b.Logf("\n%s", tbl.Render())
	}
}

// ablationSpeedup measures mult_10 on configuration A / accelerator with
// the given parallelizer config and physical-mapping mode.
func ablationSpeedup(b *testing.B, cfg core.Config, roundRobin bool) float64 {
	b.Helper()
	pf := platform.ConfigA()
	prep, err := experiments.Prepare(bench.ByName("mult_10"))
	if err != nil {
		b.Fatal(err)
	}
	main := platform.ScenarioAccelerator.MainClass(pf)
	res, err := core.Parallelize(prep.Graph, pf, main, core.Heterogeneous, cfg)
	if err != nil {
		b.Fatal(err)
	}
	sim := mpsoc.New(pf, roundRobin)
	meas, err := sim.Run(res.Best, main)
	if err != nil {
		b.Fatal(err)
	}
	return mpsoc.Speedup(sim.SequentialBaseline(prep.Graph, main), meas.MakespanNs)
}

// BenchmarkAblationNoChunking disables DOALL iteration splitting: speedups
// collapse toward statement-level parallelism only (why granularity levels
// below statements matter).
func BenchmarkAblationNoChunking(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = ablationSpeedup(b, core.Config{}, false)
		without = ablationSpeedup(b, core.Config{DisableChunking: true}, false)
	}
	b.ReportMetric(with, "with-x")
	b.ReportMetric(without, "without-x")
	if testing.Verbose() {
		b.Logf("chunking: with %.2fx, without %.2fx", with, without)
	}
}

// BenchmarkAblationFlatILP disables the hierarchical decomposition below
// the root: only root-level statement parallelism remains (why Algorithm 1
// recurses).
func BenchmarkAblationFlatILP(b *testing.B) {
	var hier, flat float64
	for i := 0; i < b.N; i++ {
		hier = ablationSpeedup(b, core.Config{}, false)
		flat = ablationSpeedup(b, core.Config{DisableHierarchy: true}, false)
	}
	b.ReportMetric(hier, "hierarchical-x")
	b.ReportMetric(flat, "flat-x")
	if testing.Verbose() {
		b.Logf("hierarchy: with %.2fx, flat %.2fx", hier, flat)
	}
}

// BenchmarkAblationNoPremapping keeps the heterogeneous plan but throws
// away the task-to-class pre-mapping at runtime (round-robin placement):
// shows the mapping is load-bearing, not just the balancing.
func BenchmarkAblationNoPremapping(b *testing.B) {
	var mapped, rr float64
	for i := 0; i < b.N; i++ {
		mapped = ablationSpeedup(b, core.Config{}, false)
		rr = ablationSpeedup(b, core.Config{}, true)
	}
	b.ReportMetric(mapped, "premapped-x")
	b.ReportMetric(rr, "roundrobin-x")
	if testing.Verbose() {
		b.Logf("pre-mapping: honored %.2fx, round-robin %.2fx", mapped, rr)
	}
}

// BenchmarkSolverChunkILP isolates the count-based chunk ILP: the core
// inner solve of every DOALL loop.
func BenchmarkSolverChunkILP(b *testing.B) {
	pf := platform.ConfigA()
	prep, err := experiments.Prepare(bench.ByName("fir_256"))
	if err != nil {
		b.Fatal(err)
	}
	main := platform.ScenarioAccelerator.MainClass(pf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Parallelize(prep.Graph, pf, main, core.Heterogeneous, core.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = fmt.Sprintf
