package heteropar_test

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/experiments"
	"repro/internal/htg"
	"repro/internal/interp"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/solstore"
)

// smokeProgram is small enough that a 5-point sweep finishes in a few
// seconds yet has a DOALL loop, a reduction and cross-loop data flow —
// every instrumented layer (ilp, core region pool, solstore, dse) fires.
const smokeProgram = `
int a[64];
int b[64];
int total;

void main(void) {
    for (int i = 0; i < 64; i++) {
        a[i] = (i * 5) % 17;
    }
    total = 0;
    for (int j = 0; j < 64; j++) {
        total = total + a[j];
    }
    for (int k = 0; k < 64; k++) {
        b[k] = a[k] + total;
    }
}
`

func smokeWorkload(t *testing.T) *dse.Workload {
	t.Helper()
	prog, err := minic.Compile(smokeProgram)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	prof, err := interp.New(prog).Run()
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	g, err := htg.Build(prog, prof, htg.Config{})
	if err != nil {
		t.Fatalf("htg: %v", err)
	}
	return dse.PrepareWorkload(&experiments.Prepared{
		Bench: &bench.Benchmark{Name: "smoke", Source: smokeProgram},
		Graph: g,
	})
}

func smokeSpace() dse.SpaceSpec {
	return dse.SpaceSpec{
		ClocksMHz:        []float64{100, 500},
		MaxClasses:       2,
		MaxCoresPerClass: 2,
		MinTotalCores:    2,
		MaxTotalCores:    3,
		Scenarios:        []platform.Scenario{platform.ScenarioAccelerator},
	}
}

// smokeConfig caps the per-point ILP work so the sweep stays in the
// seconds even on one core; the deterministic node cap truncates the
// search, never the wall clock.
func smokeConfig() core.Config {
	return core.Config{
		MaxItemsPerILP:   6,
		MaxCandsPerClass: 2,
		MaxILPNodes:      20,
		ILPTimeout:       30 * time.Second,
		ILPRelGap:        0.1,
	}
}

// smokeObserver wires the full telemetry stack: tracer, registry and
// an in-memory event ring mirrored from spans.
func smokeObserver(sink io.Writer) *obs.Observer {
	o := &obs.Observer{
		Tracer:  obs.NewTracer(),
		Metrics: obs.NewRegistry(),
		Events:  obs.NewEventLog(sink),
	}
	o.Tracer.SetEvents(o.Events)
	return o
}

func smokeEngine(o *obs.Observer, store *solstore.Store) *dse.Engine {
	return &dse.Engine{
		Workers: 2,
		Config:  smokeConfig(),
		GA:      dse.GAConfig{Population: 12, Generations: 12},
		Seed:    42,
		Obs:     o,
		Store:   store,
	}
}

// TestMetricsServerDuringSweep is the end-to-end telemetry smoke test:
// an obs.Server on an ephemeral port is scraped while a dse sweep runs,
// every scrape must be valid Prometheus text 0.0.4, and the final
// scrape must carry families from each instrumented layer. pprof must
// be mounted on the same listener.
func TestMetricsServerDuringSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point sweep; skipped in -short mode")
	}
	o := smokeObserver(nil)
	store := solstore.New(solstore.Options{
		Capacity: 256,
		Metrics:  o.M(),
		Events:   o.E(),
	})
	srv, err := obs.NewServer("127.0.0.1:0", o.M(), o.E())
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()

	scrape := func() string {
		t.Helper()
		resp, err := http.Get(srv.URL() + "/metrics")
		if err != nil {
			t.Fatalf("scrape: %v", err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
			t.Fatalf("content type %q lacks version=0.0.4", ct)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read scrape: %v", err)
		}
		return string(body)
	}

	done := make(chan error, 1)
	go func() {
		eng := smokeEngine(o, store)
		_, err := eng.Run(context.Background(), smokeSpace().Enumerate(), []*dse.Workload{smokeWorkload(t)})
		done <- err
	}()

	// Scrape continuously while the sweep runs: the exposition must be
	// valid at every instant, not only at rest.
	scrapes := 0
	for sweeping := true; sweeping; {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("sweep: %v", err)
			}
			sweeping = false
		case <-time.After(10 * time.Millisecond):
		}
		body := scrape()
		if body == "" {
			continue // nothing registered yet
		}
		scrapes++
		if err := obs.CheckPromText(strings.NewReader(body)); err != nil {
			t.Fatalf("scrape %d invalid:\n%v\n%s", scrapes, err, body)
		}
	}
	if scrapes == 0 {
		t.Fatal("never scraped a non-empty exposition")
	}

	final := scrape()
	for _, family := range []string{
		"# TYPE heteropar_ilp_solves counter",
		"# TYPE heteropar_core_region_solves counter",
		"# TYPE heteropar_core_region_solve_time_seconds histogram",
		"# TYPE heteropar_solstore_hits counter",
		"# TYPE heteropar_dse_points_completed counter",
		"# TYPE heteropar_dse_points_per_sec gauge",
	} {
		if !strings.Contains(final, family) {
			t.Errorf("final scrape missing %q", family)
		}
	}
	if !strings.Contains(final, `heteropar_core_region_solves{model="`) ||
		!strings.Contains(final, `source="computed"`) {
		t.Errorf("region solves counter lost its model/source labels:\n%s", final)
	}
	if o.E().Total() == 0 {
		t.Error("sweep emitted no events")
	}

	resp, err := http.Get(srv.URL() + "/debug/pprof/")
	if err != nil {
		t.Fatalf("pprof: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", resp.StatusCode)
	}
}

// TestSweepIdenticalWithTelemetry pins the determinism boundary: the
// same sweep with full telemetry (metrics, events, tracer) and with
// none must render byte-identical reports.
func TestSweepIdenticalWithTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point sweep; skipped in -short mode")
	}
	run := func(o *obs.Observer) (csv, md string) {
		t.Helper()
		var store *solstore.Store
		if o != nil {
			store = solstore.New(solstore.Options{Capacity: 256, Metrics: o.M(), Events: o.E()})
		} else {
			store = solstore.New(solstore.Options{Capacity: 256})
		}
		eng := smokeEngine(o, store)
		res, err := eng.Run(context.Background(), smokeSpace().Enumerate(), []*dse.Workload{smokeWorkload(t)})
		if err != nil {
			t.Fatalf("sweep: %v", err)
		}
		csv, err = res.Render("csv")
		if err != nil {
			t.Fatalf("render csv: %v", err)
		}
		md, err = res.Render("md")
		if err != nil {
			t.Fatalf("render markdown: %v", err)
		}
		return csv, md
	}

	o := smokeObserver(io.Discard)
	csvOn, mdOn := run(o)
	csvOff, mdOff := run(nil)

	if csvOn != csvOff {
		t.Errorf("CSV report differs with telemetry on:\n--- on ---\n%s--- off ---\n%s", csvOn, csvOff)
	}
	if mdOn != mdOff {
		t.Errorf("md report differs with telemetry on:\n--- on ---\n%s--- off ---\n%s", mdOn, mdOff)
	}
	if o.M().Counter("dse.points.completed").Value() == 0 {
		t.Error("telemetry run recorded no completed points")
	}
}
