#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of the heteropard daemon.
#
# Builds the real binaries, starts the daemon on an ephemeral port,
# POSTs one benchmark and asserts the response is byte-identical to
# `heteropar -json` for the same inputs (the serving layer must be a
# transport, never a second source of truth), scrapes /metrics for the
# serve families, then SIGTERMs the daemon and requires a clean drain.
#
# Usage: scripts/serve_smoke.sh [bench]   (default mult_10)
set -eu

BENCH="${1:-mult_10}"
TMP="$(mktemp -d)"
DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "serve_smoke: building binaries"
go build -o "$TMP/heteropar" ./cmd/heteropar
go build -o "$TMP/heteropard" ./cmd/heteropard

echo "serve_smoke: heteropar -bench $BENCH -json"
"$TMP/heteropar" -bench "$BENCH" -json > "$TMP/cli.json"

"$TMP/heteropard" -addr 127.0.0.1:0 > "$TMP/daemon.out" 2> "$TMP/daemon.err" &
DAEMON_PID=$!

# The daemon prints "heteropard: listening on http://ADDR ..." once the
# listener is bound; wait for it rather than racing the startup.
ADDR=""
for _ in $(seq 1 50); do
    ADDR="$(sed -n 's|^heteropard: listening on http://\([^ ]*\).*|\1|p' "$TMP/daemon.out")"
    [ -n "$ADDR" ] && break
    kill -0 "$DAEMON_PID" 2>/dev/null || { echo "serve_smoke: daemon died at startup:"; cat "$TMP/daemon.err"; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "serve_smoke: daemon never reported its address"; exit 1; }
echo "serve_smoke: daemon on $ADDR (pid $DAEMON_PID)"

echo "serve_smoke: POST /v1/parallelize {\"bench\":\"$BENCH\"}"
curl -sf -X POST "http://$ADDR/v1/parallelize" \
    -H 'Content-Type: application/json' \
    -d "{\"bench\":\"$BENCH\"}" > "$TMP/daemon.json"

if ! cmp -s "$TMP/cli.json" "$TMP/daemon.json"; then
    echo "serve_smoke: FAIL: daemon response differs from heteropar -json"
    diff -u "$TMP/cli.json" "$TMP/daemon.json" || true
    exit 1
fi
echo "serve_smoke: daemon response byte-identical to the CLI"

echo "serve_smoke: scraping /metrics"
curl -sf "http://$ADDR/metrics" > "$TMP/metrics.txt"
for family in heteropar_serve_requests heteropar_serve_solve_latency_seconds_count heteropar_serve_cache_hits; do
    grep -q "$family" "$TMP/metrics.txt" || {
        echo "serve_smoke: FAIL: /metrics missing $family"; exit 1; }
done

echo "serve_smoke: SIGTERM, expecting a clean drain"
kill -TERM "$DAEMON_PID"
i=0
while kill -0 "$DAEMON_PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "serve_smoke: FAIL: daemon did not exit within 10s of SIGTERM"; exit 1; }
    sleep 0.1
done
wait "$DAEMON_PID" 2>/dev/null || {
    echo "serve_smoke: FAIL: daemon exited non-zero on SIGTERM:"; cat "$TMP/daemon.err"; exit 1; }
grep -q "drained cleanly" "$TMP/daemon.err" || {
    echo "serve_smoke: FAIL: no clean-drain line in daemon stderr:"; cat "$TMP/daemon.err"; exit 1; }
DAEMON_PID=""

echo "serve_smoke: PASS"
