package heteropar_test

import (
	"strings"
	"testing"

	heteropar "repro"
)

const demoSrc = `
#define N 256
float a[N]; float b[N]; float total;
void main(void) {
    for (int i = 0; i < N; i++) {
        a[i] = sqrt(i * 1.0 + 1.0) * 2.0;
    }
    for (int j = 0; j < N; j++) {
        b[j] = a[j] * a[j] + 1.0;
    }
    total = 0.0;
    for (int k = 0; k < N; k++) {
        total += b[k];
    }
}
`

func TestParallelizeEndToEnd(t *testing.T) {
	rep, err := heteropar.Parallelize(demoSrc, heteropar.Options{
		Platform: heteropar.PlatformA(),
		Scenario: heteropar.Accelerator,
	})
	if err != nil {
		t.Fatalf("Parallelize: %v", err)
	}
	if rep.MeasuredSpeedup <= 1 {
		t.Errorf("measured speedup %.2f should exceed 1", rep.MeasuredSpeedup)
	}
	if rep.MeasuredSpeedup > rep.TheoreticalLimit() {
		t.Errorf("speedup %.2f above the theoretical limit %.2f", rep.MeasuredSpeedup, rep.TheoreticalLimit())
	}
	if rep.EstimatedSpeedup <= 1 {
		t.Errorf("estimated speedup %.2f should exceed 1", rep.EstimatedSpeedup)
	}
	if rep.NumTasks() < 1 {
		t.Errorf("spec should have tasks")
	}
	annotated := rep.AnnotatedSource()
	if !strings.Contains(annotated, "void main(void)") {
		t.Errorf("annotated source lost the program:\n%s", annotated)
	}
	spec := rep.ParallelSpec()
	if !strings.Contains(spec, "task 0") {
		t.Errorf("spec missing tasks:\n%s", spec)
	}
	if rep.PlanSummary() == "" {
		t.Errorf("plan summary empty")
	}
}

func TestParallelizeWithStoreAndWorkers(t *testing.T) {
	store := heteropar.NewSolutionStore(1024)
	opts := heteropar.Options{
		Platform:      heteropar.PlatformA(),
		Scenario:      heteropar.Accelerator,
		RegionWorkers: 4,
		Store:         store,
	}
	rep, err := heteropar.Parallelize(demoSrc, opts)
	if err != nil {
		t.Fatalf("Parallelize: %v", err)
	}
	st := store.Stats()
	if st.Misses == 0 || st.Entries == 0 {
		t.Fatalf("store not consulted: %+v", st)
	}
	// A second run over the warm store re-solves nothing and returns
	// the same plan.
	rep2, err := heteropar.Parallelize(demoSrc, opts)
	if err != nil {
		t.Fatalf("warm Parallelize: %v", err)
	}
	st2 := store.Stats()
	if st2.Misses != st.Misses {
		t.Errorf("warm run re-solved %d regions; want 0", st2.Misses-st.Misses)
	}
	if st2.Hits <= st.Hits {
		t.Errorf("warm run recorded no store hits")
	}
	if rep.PlanSummary() != rep2.PlanSummary() {
		t.Errorf("warm plan differs from cold plan")
	}
}

func TestParallelizeHomogeneousBaseline(t *testing.T) {
	rep, err := heteropar.Parallelize(demoSrc, heteropar.Options{
		Platform: heteropar.PlatformB(),
		Scenario: heteropar.SlowerCores,
		Approach: heteropar.Homogeneous,
	})
	if err != nil {
		t.Fatalf("Parallelize: %v", err)
	}
	// The homogeneous baseline on the slower-cores scenario is allowed to
	// lose to sequential (that is the paper's point), but it must produce
	// a valid report.
	if rep.MeasuredMakespanNs <= 0 {
		t.Errorf("no makespan measured")
	}
}

func TestParallelizeSkipSimulation(t *testing.T) {
	rep, err := heteropar.Parallelize(demoSrc, heteropar.Options{SkipSimulation: true})
	if err != nil {
		t.Fatalf("Parallelize: %v", err)
	}
	if rep.MeasuredSpeedup != 0 || rep.MeasuredMakespanNs != 0 {
		t.Errorf("simulation fields should stay zero when skipped")
	}
	if rep.EstimatedSpeedup <= 0 {
		t.Errorf("estimate missing")
	}
}

func TestParallelizeErrors(t *testing.T) {
	if _, err := heteropar.Parallelize("int x = ;", heteropar.Options{}); err == nil {
		t.Errorf("syntax error not reported")
	}
	if _, err := heteropar.Parallelize("int f(void) { return 1; }", heteropar.Options{}); err == nil {
		t.Errorf("missing main not reported")
	}
	if _, err := heteropar.Parallelize(
		"void main(void) { int x = 1 / 0; }", heteropar.Options{}); err == nil {
		t.Errorf("runtime error during profiling not reported")
	}
	bad := heteropar.NewPlatform("bad")
	if _, err := heteropar.Parallelize(demoSrc, heteropar.Options{Platform: bad}); err == nil {
		t.Errorf("invalid platform not reported")
	}
}

func TestCustomPlatform(t *testing.T) {
	pf := heteropar.NewPlatform("tri",
		heteropar.ProcClass{Name: "slow", MHz: 100, Count: 1, CPIFactor: 1},
		heteropar.ProcClass{Name: "fast", MHz: 400, Count: 2, CPIFactor: 1},
	)
	rep, err := heteropar.Parallelize(demoSrc, heteropar.Options{Platform: pf})
	if err != nil {
		t.Fatalf("Parallelize: %v", err)
	}
	if rep.TheoreticalLimit() != 9 { // (100 + 2*400)/100
		t.Errorf("limit = %g, want 9", rep.TheoreticalLimit())
	}
}

func TestGanttAndEnergyReporting(t *testing.T) {
	rep, err := heteropar.Parallelize(demoSrc, heteropar.Options{})
	if err != nil {
		t.Fatalf("Parallelize: %v", err)
	}
	g := rep.Gantt(80)
	if !strings.Contains(g, "core0") || !strings.Contains(g, "legend:") {
		t.Errorf("gantt missing rows/legend:\n%s", g)
	}
	if rep.MeasuredEnergyUJ <= 0 || rep.SequentialEnergyUJ <= 0 {
		t.Errorf("energy not reported: par=%g seq=%g", rep.MeasuredEnergyUJ, rep.SequentialEnergyUJ)
	}
	if rep.Measured == nil || len(rep.Measured.Trace) == 0 {
		t.Errorf("trace missing")
	}
	// Skipping the simulation yields an empty gantt.
	rep2, err := heteropar.Parallelize(demoSrc, heteropar.Options{SkipSimulation: true})
	if err != nil {
		t.Fatalf("Parallelize: %v", err)
	}
	if rep2.Gantt(80) != "" {
		t.Errorf("gantt should be empty without simulation")
	}
}

func TestPipeliningOptionViaFacade(t *testing.T) {
	src := `
#define N 256
float x[N]; float y[N]; float a1; float a2;
void main(void) {
    for (int i = 0; i < N; i++) { x[i] = sin(i * 0.1); }
    for (int n = 0; n < N; n++) {
        a1 = a1 * 0.9 + x[n] * 0.1;
        a2 = a2 * 0.8 + a1 * a1 + sqrt(fabs(a1) + 1.0);
        y[n] = a2 * a2 + sqrt(fabs(a2) + 2.0);
    }
}
`
	plain, err := heteropar.Parallelize(src, heteropar.Options{})
	if err != nil {
		t.Fatalf("plain: %v", err)
	}
	piped, err := heteropar.Parallelize(src, heteropar.Options{EnablePipelining: true})
	if err != nil {
		t.Fatalf("piped: %v", err)
	}
	if piped.MeasuredSpeedup <= plain.MeasuredSpeedup {
		t.Errorf("pipelining should raise the measured speedup: %.2f vs %.2f",
			piped.MeasuredSpeedup, plain.MeasuredSpeedup)
	}
}

func TestGenerateGoFromReport(t *testing.T) {
	rep, err := heteropar.Parallelize(demoSrc, heteropar.Options{SkipSimulation: true})
	if err != nil {
		t.Fatalf("Parallelize: %v", err)
	}
	par, err := rep.GenerateGo()
	if err != nil {
		t.Fatalf("GenerateGo: %v", err)
	}
	seq, err := rep.GenerateSequentialGo()
	if err != nil {
		t.Fatalf("GenerateSequentialGo: %v", err)
	}
	for _, src := range []string{par, seq} {
		if !strings.Contains(src, "package main") || !strings.Contains(src, "checksum") {
			t.Errorf("generated source malformed")
		}
	}
	if !strings.Contains(par, "sync") {
		t.Errorf("parallel source should use sync")
	}
}
