package heteropar_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	heteropar "repro"
)

// TestObserverEndToEnd runs the full flow with an observer attached and
// checks that every pipeline phase left a span, that the Chrome export
// is valid balanced JSON, and that the simulator contributed per-core
// occupancy slices.
func TestObserverEndToEnd(t *testing.T) {
	o := heteropar.NewObserver()
	rep, err := heteropar.Parallelize(demoSrc, heteropar.Options{
		Platform: heteropar.PlatformA(),
		Scenario: heteropar.Accelerator,
		Observer: o,
	})
	if err != nil {
		t.Fatalf("Parallelize: %v", err)
	}
	names := map[string]bool{}
	for _, n := range o.Tracer.SpanNames() {
		names[n] = true
	}
	for _, phase := range []string{
		"parallelize-flow", "compile", "profile", "htg-build",
		"parallelize", "ilp-solve", "taskspec", "simulate",
	} {
		if !names[phase] {
			t.Errorf("missing span for phase %q (got %v)", phase, o.Tracer.SpanNames())
		}
	}
	if o.Tracer.NumSlices() == 0 {
		t.Errorf("no occupancy slices exported from the simulation")
	}
	if got := o.Metrics.Counter("ilp.solves").Value(); got != int64(rep.Result.Stats.NumILPs) {
		t.Errorf("ilp.solves = %d, want %d", got, rep.Result.Stats.NumILPs)
	}

	var buf bytes.Buffer
	if err := o.Tracer.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var trace struct {
		TraceEvents []struct {
			Ph  string  `json:"ph"`
			PID int     `json:"pid"`
			TID int     `json:"tid"`
			Dur float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	begins, ends, complete := 0, 0, 0
	for _, ev := range trace.TraceEvents {
		switch ev.Ph {
		case "B":
			begins++
		case "E":
			ends++
		case "X":
			complete++
			if ev.Dur <= 0 {
				t.Errorf("occupancy slice with non-positive duration %f", ev.Dur)
			}
		}
	}
	if begins == 0 || begins != ends {
		t.Errorf("unbalanced trace: %d begin vs %d end events", begins, ends)
	}
	if complete == 0 {
		t.Errorf("no occupancy X events in the chrome trace")
	}

	if table := rep.SolverStatsTable(); !strings.Contains(table, "region") {
		t.Errorf("SolverStatsTable missing header:\n%s", table)
	}
	if stats := o.Metrics.RenderTable(); !strings.Contains(stats, "ilp.solves") {
		t.Errorf("metrics table missing ilp.solves:\n%s", stats)
	}
}

// TestObserverNilIsNoOp checks the disabled path: no observer, same
// result, nothing to export.
func TestObserverNilIsNoOp(t *testing.T) {
	rep, err := heteropar.Parallelize(demoSrc, heteropar.Options{})
	if err != nil {
		t.Fatalf("Parallelize: %v", err)
	}
	if rep.MeasuredSpeedup <= 1 {
		t.Errorf("speedup %.2f", rep.MeasuredSpeedup)
	}
	if rep.Gantt(-5) == "" {
		t.Errorf("Gantt with non-positive width should fall back to a default, not be empty")
	}
}
