package mpsoc

import (
	"testing"

	"repro/internal/core"
	"repro/internal/htg"
	"repro/internal/interp"
	"repro/internal/minic"
	"repro/internal/platform"
)

func buildGraph(t *testing.T, src string) *htg.Graph {
	t.Helper()
	prog, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	in := interp.New(prog)
	prof, err := in.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	g, err := htg.Build(prog, prof, htg.Config{})
	if err != nil {
		t.Fatalf("htg: %v", err)
	}
	return g
}

const simLoopSrc = `
#define N 512
float a[N]; float b[N];
void main(void) {
    for (int i = 0; i < N; i++) {
        float x = i * 0.5;
        a[i] = x * x + sqrt(x + 1.0) * 3.0;
    }
    for (int j = 0; j < N; j++) {
        b[j] = a[j] * 2.0 + sqrt(a[j] + 4.0);
    }
}
`

func TestSequentialBaselineMatchesCostModel(t *testing.T) {
	g := buildGraph(t, simLoopSrc)
	pf := platform.ConfigA()
	sim := New(pf, false)
	main := platform.ScenarioAccelerator.MainClass(pf)
	seq := sim.SequentialBaseline(g, main)
	want := float64(g.Root.TotalCount) * g.Root.CostNanosOn(pf.Classes[main])
	if seq != want {
		t.Errorf("baseline %g != cost model %g", seq, want)
	}
	// Running the sequential solution must reproduce the same number.
	seqSol := &core.Solution{Node: g.Root, Kind: core.KindSequential, MainClass: main, NumTasks: 1}
	res, err := sim.Run(seqSol, main)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if diff := res.MakespanNs - seq; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("sequential makespan %g != baseline %g", res.MakespanNs, seq)
	}
}

func parallelize(t *testing.T, g *htg.Graph, pf *platform.Platform, sc platform.Scenario, ap core.Approach) *core.Result {
	t.Helper()
	res, err := core.Parallelize(g, pf, sc.MainClass(pf), ap, core.Config{})
	if err != nil {
		t.Fatalf("parallelize: %v", err)
	}
	return res
}

func TestHeteroSpeedupWithinTheoreticalLimit(t *testing.T) {
	g := buildGraph(t, simLoopSrc)
	pf := platform.ConfigA()
	main := platform.ScenarioAccelerator.MainClass(pf)
	res := parallelize(t, g, pf, platform.ScenarioAccelerator, core.Heterogeneous)
	sim := New(pf, false)
	meas, err := sim.Run(res.Best, main)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	seq := sim.SequentialBaseline(g, main)
	sp := Speedup(seq, meas.MakespanNs)
	limit := pf.TheoreticalSpeedup(main)
	if sp <= 1 {
		t.Errorf("heterogeneous speedup %.2f should exceed 1", sp)
	}
	if sp > limit {
		t.Errorf("speedup %.2f exceeds theoretical limit %.2f (simulator too optimistic)", sp, limit)
	}
	t.Logf("hetero accelerator speedup: %.2fx (limit %.2fx)", sp, limit)
}

func TestHomoRoundRobinSuffersOnSkewedPlatform(t *testing.T) {
	g := buildGraph(t, simLoopSrc)
	pf := platform.ConfigA()
	// Scenario II: fast main core.
	main := platform.ScenarioSlowerCores.MainClass(pf)
	hom := parallelize(t, g, pf, platform.ScenarioSlowerCores, core.Homogeneous)
	het := parallelize(t, g, pf, platform.ScenarioSlowerCores, core.Heterogeneous)
	simH := New(pf, true)
	measHom, err := simH.Run(hom.Best, main)
	if err != nil {
		t.Fatalf("sim hom: %v", err)
	}
	simHet := New(pf, false)
	measHet, err := simHet.Run(het.Best, main)
	if err != nil {
		t.Fatalf("sim het: %v", err)
	}
	seq := simHet.SequentialBaseline(g, main)
	spHom := Speedup(seq, measHom.MakespanNs)
	spHet := Speedup(seq, measHet.MakespanNs)
	t.Logf("slower-cores scenario: homo %.2fx, hetero %.2fx", spHom, spHet)
	if spHet <= spHom {
		t.Errorf("hetero (%.2f) should beat homo (%.2f) on a skewed platform", spHet, spHom)
	}
	if spHet < 1 {
		t.Errorf("hetero speedup %.2f dropped below 1 (paper result 4: never below 1)", spHet)
	}
}

func TestUtilizationBounds(t *testing.T) {
	g := buildGraph(t, simLoopSrc)
	pf := platform.ConfigB()
	main := platform.ScenarioAccelerator.MainClass(pf)
	res := parallelize(t, g, pf, platform.ScenarioAccelerator, core.Heterogeneous)
	sim := New(pf, false)
	meas, err := sim.Run(res.Best, main)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	for i, u := range meas.Utilization {
		if u < -1e-9 || u > 1+1e-9 {
			t.Errorf("core %d utilization %.3f out of [0,1]", i, u)
		}
	}
	if meas.MakespanNs <= 0 {
		t.Errorf("makespan must be positive")
	}
	if out := meas.FormatUtilization(pf); len(out) == 0 {
		t.Errorf("FormatUtilization empty")
	}
}

func TestMakespanLowerBounds(t *testing.T) {
	// The makespan can never beat total-work / aggregate-speed.
	g := buildGraph(t, simLoopSrc)
	pf := platform.ConfigA()
	main := platform.ScenarioAccelerator.MainClass(pf)
	res := parallelize(t, g, pf, platform.ScenarioAccelerator, core.Heterogeneous)
	sim := New(pf, false)
	meas, err := sim.Run(res.Best, main)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	seq := sim.SequentialBaseline(g, main)
	bound := seq / pf.TheoreticalSpeedup(main)
	if meas.MakespanNs < bound-1e-6 {
		t.Errorf("makespan %.0f beats the work/speed bound %.0f", meas.MakespanNs, bound)
	}
}

func TestBusTransfersCounted(t *testing.T) {
	// Two dependent loops in different tasks must move data over the bus.
	g := buildGraph(t, simLoopSrc)
	pf := platform.ConfigA()
	main := platform.ScenarioAccelerator.MainClass(pf)
	res := parallelize(t, g, pf, platform.ScenarioAccelerator, core.Heterogeneous)
	if res.Best.NumTasks < 2 {
		t.Skip("no parallelism extracted; nothing to transfer")
	}
	sim := New(pf, false)
	meas, err := sim.Run(res.Best, main)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	if meas.Transfers == 0 || meas.BytesMoved == 0 {
		t.Errorf("expected bus traffic, got %d transfers / %.0f bytes", meas.Transfers, meas.BytesMoved)
	}
}

func TestMeasuredVsEstimatedAgreeRoughly(t *testing.T) {
	g := buildGraph(t, simLoopSrc)
	pf := platform.ConfigA()
	main := platform.ScenarioAccelerator.MainClass(pf)
	res := parallelize(t, g, pf, platform.ScenarioAccelerator, core.Heterogeneous)
	sim := New(pf, false)
	meas, err := sim.Run(res.Best, main)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	ratio := meas.MakespanNs / res.Best.TimeNs
	if ratio < 0.3 || ratio > 3.5 {
		t.Errorf("measured %.0f vs estimated %.0f diverge too much (ratio %.2f)",
			meas.MakespanNs, res.Best.TimeNs, ratio)
	}
}

// TestDependentTasksSerialize builds a two-task plan whose second task
// consumes the first task's output: the simulator must serialize them and
// charge a bus transfer, so the makespan is at least the sum of both
// durations.
func TestDependentTasksSerialize(t *testing.T) {
	g := buildGraph(t, `
float a[256]; float b[256];
void main(void) {
    for (int i = 0; i < 256; i++) { a[i] = i * 0.5; }
    for (int j = 0; j < 256; j++) { b[j] = a[j] * 2.0; }
}
`)
	pf := platform.ConfigA()
	prod := g.Root.Children[0]
	cons := g.Root.Children[1]
	sol := &core.Solution{
		Node:      g.Root,
		Kind:      core.KindTaskParallel,
		MainClass: 2,
		NumTasks:  2,
		ProcsUsed: []int{0, 0, 2},
		Tasks: []*core.TaskPlan{
			{Class: 2, Items: []*core.ItemPlan{{Child: prod}}},
			{Class: 2, Items: []*core.ItemPlan{{Child: cons}}},
		},
	}
	sim := New(pf, false)
	meas, err := sim.Run(sol, 2)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	c2 := pf.Classes[2]
	prodNs := float64(prod.TotalCount) * prod.CostNanosOn(c2)
	consNs := float64(cons.TotalCount) * cons.CostNanosOn(c2)
	if meas.MakespanNs < prodNs+consNs {
		t.Errorf("dependent tasks overlapped: makespan %.0f < %.0f + %.0f",
			meas.MakespanNs, prodNs, consNs)
	}
	if meas.Transfers == 0 {
		t.Errorf("cross-task dependence should use the bus")
	}
}

// TestIndependentTasksOverlap: without an edge, two equal tasks on two
// fast cores run concurrently.
func TestIndependentTasksOverlap(t *testing.T) {
	g := buildGraph(t, `
float a[256]; float b[256];
void main(void) {
    for (int i = 0; i < 256; i++) { a[i] = i * 0.5; }
    for (int j = 0; j < 256; j++) { b[j] = j * 2.0; }
}
`)
	pf := platform.ConfigA()
	one := g.Root.Children[0]
	two := g.Root.Children[1]
	sol := &core.Solution{
		Node:      g.Root,
		Kind:      core.KindTaskParallel,
		MainClass: 2,
		NumTasks:  2,
		ProcsUsed: []int{0, 0, 2},
		Tasks: []*core.TaskPlan{
			{Class: 2, Items: []*core.ItemPlan{{Child: one}}},
			{Class: 2, Items: []*core.ItemPlan{{Child: two}}},
		},
	}
	sim := New(pf, false)
	meas, err := sim.Run(sol, 2)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	c2 := pf.Classes[2]
	oneNs := float64(one.TotalCount) * one.CostNanosOn(c2)
	twoNs := float64(two.TotalCount) * two.CostNanosOn(c2)
	// Allow fork + boundary-communication overheads, but require genuine
	// overlap: clearly below the serial sum.
	if meas.MakespanNs > 0.9*(oneNs+twoNs) {
		t.Errorf("independent tasks did not overlap: makespan %.0f vs serial %.0f",
			meas.MakespanNs, oneNs+twoNs)
	}
}

// TestBusContentionSerializesTransfers: two simultaneous transfers share
// one bus, so total transfer time adds up.
func TestBusContentionSerializesTransfers(t *testing.T) {
	pf := platform.ConfigA()
	sim := New(pf, false)
	start := 0.0
	a1 := sim.transfer(start, 8000, 1)
	a2 := sim.transfer(start, 8000, 1)
	single := pf.CommCostNs(8000)
	if a1 < start+single-1e-9 {
		t.Errorf("first transfer too fast: %g < %g", a1, single)
	}
	if a2 < a1+single-1e-9 {
		t.Errorf("second transfer overlapped the bus: %g < %g", a2, a1+single)
	}
}

// TestEnergyAccounting: the parallel run must consume more instantaneous
// power but can still win total energy by shortening the idle-burn window;
// at minimum the accounting must be positive, and the sequential baseline
// energy must exceed pure main-core active energy (idle cores burn too).
func TestEnergyAccounting(t *testing.T) {
	g := buildGraph(t, simLoopSrc)
	pf := platform.ConfigA()
	main := platform.ScenarioAccelerator.MainClass(pf)
	res := parallelize(t, g, pf, platform.ScenarioAccelerator, core.Heterogeneous)
	sim := New(pf, false)
	meas, err := sim.Run(res.Best, main)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	if meas.EnergyUJ <= 0 {
		t.Fatalf("no energy accounted")
	}
	seqE := sim.SequentialEnergyUJ(g, main)
	span := sim.SequentialBaseline(g, main)
	mainActive := pf.Classes[main].ActivePowerMW() * span / 1e6
	if seqE <= mainActive {
		t.Errorf("sequential energy %.1f must include idle burn beyond main-core %.1f", seqE, mainActive)
	}
	// The parallel run on the slow-main scenario is ~10x shorter; even with
	// all cores active its energy must undercut the sequential baseline's
	// long idle burn.
	if meas.EnergyUJ >= seqE {
		t.Errorf("parallel energy %.1f should beat sequential %.1f here", meas.EnergyUJ, seqE)
	}
	if meas.EDP() <= 0 {
		t.Errorf("EDP must be positive")
	}
}
