// Package mpsoc is an event-driven heterogeneous MPSoC simulator, the
// stand-in for the cycle-accurate CoMET virtual platform the paper
// evaluates on. It executes the hierarchical task plans produced by the
// parallelizer on a configurable platform: cores grouped in processor
// classes with different clocks, a shared bus with contention for
// inter-task communication, and per-spawn task-creation overhead.
//
// Durations are recomputed from HTG cycle counts and the class of the core
// a task actually lands on — not from the ILP's own estimates — so the
// simulator independently "measures" each solution, including plans that
// were balanced under wrong assumptions (the homogeneous baseline mapped
// onto a heterogeneous platform).
package mpsoc

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/htg"
	"repro/internal/obs"
	"repro/internal/platform"
)

// Core is one processing unit instance.
type Core struct {
	ID    int
	Class int
	// freeAt is the simulation time the core becomes idle.
	freeAt float64
	// busyNs accumulates busy time for utilization reporting.
	busyNs float64
}

// Sim is one simulation instance.
type Sim struct {
	pf    *platform.Platform
	cores []*Core
	// busFreeAt serializes bus transfers (shared-bus contention).
	busFreeAt float64
	// transfers counts bus transactions.
	transfers int
	// bytesMoved sums transferred bytes.
	bytesMoved float64
	// roundRobin maps logical classes of a homogeneous plan onto physical
	// cores in index order (the homogeneous baseline has no pre-mapping).
	roundRobin bool
	rrNext     int
	// trace records execution segments for Gantt rendering.
	trace []Segment
	// label is the annotation applied to the next busy interval.
	label string
}

// Segment is one traced busy interval (core -1 = the shared bus).
type Segment struct {
	Core    int
	StartNs float64
	EndNs   float64
	Label   string
}

// Result reports one measured execution.
type Result struct {
	// MakespanNs is the simulated end-to-end execution time.
	MakespanNs float64
	// Utilization per core: busy time / makespan.
	Utilization []float64
	// Transfers is the number of bus transactions performed.
	Transfers int
	// BytesMoved is the total communication volume.
	BytesMoved float64
	// Trace lists the recorded execution segments (Gantt data).
	Trace []Segment
	// EnergyUJ is the estimated energy in microjoules: active core energy
	// plus idle draw of the remaining cores over the makespan plus bus
	// transfer energy. Heterogeneous pre-mapping often wins energy as well
	// as time, because work migrates to the most efficient-at-speed cores
	// and the makespan (idle-burn window) shrinks.
	EnergyUJ float64
}

// EDP returns the energy-delay product in microjoule-milliseconds, the
// usual single-figure merit when trading speedup against energy.
func (r *Result) EDP() float64 { return r.EnergyUJ * r.MakespanNs / 1e6 }

// New creates a simulator over pf. roundRobin selects the physical mapping
// mode for plans whose task classes are meaningless (homogeneous baseline).
func New(pf *platform.Platform, roundRobin bool) *Sim {
	s := &Sim{pf: pf, roundRobin: roundRobin}
	id := 0
	for cls, pc := range pf.Classes {
		for i := 0; i < pc.Count; i++ {
			s.cores = append(s.cores, &Core{ID: id, Class: cls})
			id++
		}
	}
	return s
}

// Run executes the solution with its main task on a core of mainClass
// (real platform class) and returns the measured result.
func (s *Sim) Run(sol *core.Solution, mainClass int) (*Result, error) {
	main := s.coreOfClass(mainClass)
	if main == nil {
		return nil, fmt.Errorf("mpsoc: no core of class %d", mainClass)
	}
	end := s.execSolution(sol, main, 0)
	util := make([]float64, len(s.cores))
	for i, c := range s.cores {
		if end > 0 {
			util[i] = c.busyNs / end
		}
	}
	energy := 0.0
	for _, c := range s.cores {
		pc := s.pf.Classes[c.Class]
		idle := end - c.busyNs
		if idle < 0 {
			idle = 0
		}
		// mW * ns = picojoules; /1e6 -> microjoules.
		energy += (pc.ActivePowerMW()*c.busyNs + pc.IdlePowerMW()*idle) / 1e6
	}
	energy += s.bytesMoved * platform.BusEnergyPJPerByte / 1e6
	return &Result{
		MakespanNs:  end,
		Utilization: util,
		Transfers:   s.transfers,
		BytesMoved:  s.bytesMoved,
		EnergyUJ:    energy,
		Trace:       s.trace,
	}, nil
}

// SequentialEnergyUJ estimates the energy of the sequential baseline: the
// main core active for the whole run, every other core idling.
func (s *Sim) SequentialEnergyUJ(g *htg.Graph, mainClass int) float64 {
	span := s.SequentialBaseline(g, mainClass)
	energy := 0.0
	seen := false
	for _, c := range s.cores {
		pc := s.pf.Classes[c.Class]
		if !seen && c.Class == mainClass {
			energy += pc.ActivePowerMW() * span / 1e6
			seen = true
			continue
		}
		energy += pc.IdlePowerMW() * span / 1e6
	}
	return energy
}

// SequentialBaseline measures the fully sequential execution of the graph
// root on a core of mainClass.
func (s *Sim) SequentialBaseline(g *htg.Graph, mainClass int) float64 {
	pc := s.pf.Classes[mainClass]
	return float64(g.Root.TotalCount) * g.Root.CostNanosOn(pc)
}

func (s *Sim) coreOfClass(class int) *Core {
	for _, c := range s.cores {
		if c.Class == class {
			return c
		}
	}
	return nil
}

// reserve picks the earliest-available core of the requested class other
// than exclude. In round-robin mode the class is ignored and cores are
// handed out in index order, emulating an OS scheduler with no mapping
// hints.
func (s *Sim) reserve(class int, exclude map[int]bool) *Core {
	if s.roundRobin {
		for range s.cores {
			c := s.cores[s.rrNext%len(s.cores)]
			s.rrNext++
			if !exclude[c.ID] {
				return c
			}
		}
		return nil
	}
	var best *Core
	for _, c := range s.cores {
		if c.Class != class || exclude[c.ID] {
			continue
		}
		if best == nil || c.freeAt < best.freeAt {
			best = c
		}
	}
	return best
}

// busy blocks the core for dur starting no earlier than t; returns the
// finish time. The segment is traced under the current label.
func (s *Sim) busy(c *Core, t, dur float64) float64 {
	start := math.Max(t, c.freeAt)
	c.freeAt = start + dur
	c.busyNs += dur
	if dur > 0 {
		s.trace = append(s.trace, Segment{Core: c.ID, StartNs: start, EndNs: c.freeAt, Label: s.label})
	}
	return c.freeAt
}

// labeled sets the annotation for subsequently traced segments.
func (s *Sim) labeled(label string) { s.label = label }

// transfer moves bytes over the shared bus, ready at t; returns arrival.
func (s *Sim) transfer(t float64, bytes int, times float64) float64 {
	if bytes <= 0 || times <= 0 {
		return t
	}
	dur := s.pf.CommCostNs(bytes) * times
	start := math.Max(t, s.busFreeAt)
	s.busFreeAt = start + dur
	s.transfers += int(times)
	s.bytesMoved += float64(bytes) * times
	s.trace = append(s.trace, Segment{Core: -1, StartNs: start, EndNs: s.busFreeAt, Label: "bus"})
	return s.busFreeAt
}

// execSolution runs sol with its main task on core main, starting at t0.
// It returns the completion time.
func (s *Sim) execSolution(sol *core.Solution, main *Core, t0 float64) float64 {
	if sol.Kind == core.KindSequential || len(sol.Tasks) == 0 {
		dur := s.nodeDuration(sol.Node, main.Class, 1)
		s.labeled(nodeLabel(sol.Node))
		return s.busy(main, t0, dur)
	}
	if sol.Kind == core.KindPipelined {
		return s.execPipeline(sol, main, t0)
	}
	// Fork: creation of the extra tasks is serialized on the main core.
	spawns := s.spawnCount(sol)
	nExtra := float64(len(sol.Tasks) - 1)
	s.labeled("fork")
	forkDone := s.busy(main, t0, spawns*s.pf.TaskCreateNs*nExtra)

	// Allocate cores: task 0 = main; others by class (or round robin).
	used := map[int]bool{main.ID: true}
	taskCores := make([]*Core, len(sol.Tasks))
	taskCores[0] = main
	for i := 1; i < len(sol.Tasks); i++ {
		c := s.reserve(sol.Tasks[i].Class, used)
		if c == nil {
			// Over-subscribed (should not happen for budget-feasible
			// plans): fall back to the least-loaded core.
			c = s.leastLoaded()
		}
		used[c.ID] = true
		taskCores[i] = c
	}

	// Execute items in topological order across tasks, respecting
	// dependence edges between the underlying HTG children.
	finishOfChild := map[*htg.Node]float64{}
	taskCursor := make([]float64, len(sol.Tasks))
	taskOfChild := map[*htg.Node]int{}
	for ti, tp := range sol.Tasks {
		taskCursor[ti] = forkDone
		for _, it := range tp.Items {
			if it.Child != nil && it.ChunkFrac == 0 {
				taskOfChild[it.Child] = ti
			}
		}
	}
	// In-communication: non-main tasks receive their input data once the
	// fork completes.
	for ti := 1; ti < len(sol.Tasks); ti++ {
		inBytes := 0
		times := 1.0
		for _, it := range sol.Tasks[ti].Items {
			if it.Child != nil {
				if it.ChunkFrac > 0 {
					inBytes += int(float64(it.Child.InBytes) * it.ChunkFrac)
				} else {
					inBytes += it.Child.InBytes
					if float64(it.Child.TotalCount) > times {
						times = float64(it.Child.TotalCount)
					}
				}
			}
		}
		if it := sol.Tasks[ti]; len(it.Items) > 0 && inBytes > 0 {
			_ = it
			taskCursor[ti] = s.transfer(taskCursor[ti], inBytes, spawnTimes(sol, times))
		}
	}

	for ti, tp := range sol.Tasks {
		for _, it := range tp.Items {
			ready := taskCursor[ti]
			// Wait for producers in other tasks.
			if it.Child != nil && it.ChunkFrac == 0 {
				ready = math.Max(ready, s.producersReady(sol, it.Child, taskOfChild, ti, finishOfChild))
			}
			var end float64
			c := taskCores[ti]
			switch {
			case it.ChunkFrac > 0:
				dur := s.nodeDuration(it.Child, c.Class, it.ChunkFrac)
				s.labeled("chunk:" + nodeLabel(it.Child))
				end = s.busy(c, ready, dur)
			case it.Sub != nil && it.Sub.Kind != core.KindSequential:
				end = s.execSolution(it.Sub, c, ready)
			default:
				dur := s.nodeDuration(it.Child, c.Class, 1)
				s.labeled(nodeLabel(it.Child))
				end = s.busy(c, ready, dur)
			}
			taskCursor[ti] = end
			if it.Child != nil && it.ChunkFrac == 0 {
				finishOfChild[it.Child] = end
			}
		}
	}
	// Join: non-main tasks ship their live-out data back; the region ends
	// when everything has arrived.
	end := taskCursor[0]
	for ti := 1; ti < len(sol.Tasks); ti++ {
		t := taskCursor[ti]
		outBytes := 0
		for _, it := range sol.Tasks[ti].Items {
			if it.Child != nil {
				if it.ChunkFrac > 0 {
					outBytes += int(float64(it.Child.OutBytes) * it.ChunkFrac)
				} else {
					outBytes += it.Child.OutBytes
				}
			}
		}
		if outBytes > 0 {
			t = s.transfer(t, outBytes, spawnTimes(sol, 1))
		}
		end = math.Max(end, t)
	}
	// The main core is blocked until the join completes.
	if end > main.freeAt {
		main.freeAt = end
	}
	return end
}

// execPipeline models a software pipeline: iteration i's stage k overlaps
// iteration i+1's stage k-1 once the pipe is full, so the makespan is the
// fill (one pass through all stages) plus (iterations-1) times the
// bottleneck stage, including its per-iteration forwarding transfer.
func (s *Sim) execPipeline(sol *core.Solution, main *Core, t0 float64) float64 {
	iters := 1.0
	if sol.Node != nil {
		for _, c := range sol.Node.Children {
			if c.Count > iters {
				iters = c.Count
			}
		}
	}
	spawns := s.spawnCount(sol)
	nExtra := float64(len(sol.Tasks) - 1)
	start := s.busy(main, t0, spawns*s.pf.TaskCreateNs*nExtra)

	used := map[int]bool{main.ID: true}
	stageCores := make([]*Core, len(sol.Tasks))
	stageCores[0] = main
	for i := 1; i < len(sol.Tasks); i++ {
		c := s.reserve(sol.Tasks[i].Class, used)
		if c == nil {
			c = s.leastLoaded()
		}
		used[c.ID] = true
		stageCores[i] = c
	}

	// Which stage owns which child, to price cross-stage forwarding.
	stageOf := map[*htg.Node]int{}
	for si, tp := range sol.Tasks {
		for _, it := range tp.Items {
			if it.Child != nil {
				stageOf[it.Child] = si
			}
		}
	}
	fill := 0.0
	bottleneck := 0.0
	for si, tp := range sol.Tasks {
		perIter := 0.0
		for _, it := range tp.Items {
			perIter += s.nodeDuration(it.Child, stageCores[si].Class, 1) / iters
		}
		// Forwarding: flow edges leaving this stage, once per iteration.
		commIter := 0.0
		for _, it := range tp.Items {
			if it.Child == nil {
				continue
			}
			for _, e := range it.Child.Edges {
				if to, ok := stageOf[e.To]; ok && to != si && e.Bytes > 0 {
					commIter += s.pf.CommCostNs(e.Bytes / int(iters+1))
				}
			}
		}
		stageTime := perIter + commIter
		fill += stageTime
		if stageTime > bottleneck {
			bottleneck = stageTime
		}
	}
	end := start + fill + (iters-1)*bottleneck
	// All stage cores are busy for the steady-state span.
	for _, c := range stageCores {
		if end > c.freeAt {
			from := math.Max(start, c.freeAt)
			c.busyNs += end - from
			c.freeAt = end
			s.trace = append(s.trace, Segment{Core: c.ID, StartNs: from, EndNs: end, Label: "pipeline"})
		}
	}
	// Bus usage: one forwarding transfer per iteration per crossing edge.
	for si, tp := range sol.Tasks {
		for _, it := range tp.Items {
			if it.Child == nil {
				continue
			}
			for _, e := range it.Child.Edges {
				if to, ok := stageOf[e.To]; ok && to != si && e.Bytes > 0 {
					s.transfers += int(iters)
					s.bytesMoved += float64(e.Bytes)
				}
			}
		}
	}
	return end
}

// producersReady returns the time all cross-task producers of child have
// finished and shipped their data.
func (s *Sim) producersReady(sol *core.Solution, child *htg.Node,
	taskOfChild map[*htg.Node]int, consumerTask int, finish map[*htg.Node]float64) float64 {
	ready := 0.0
	if child.Parent == nil {
		return ready
	}
	for _, sib := range child.Parent.Children {
		for _, e := range sib.Edges {
			if e.To != child {
				continue
			}
			pt, ok := taskOfChild[e.From]
			if !ok || pt == consumerTask {
				continue // same task: program order already serializes
			}
			f, done := finish[e.From]
			if !done {
				continue // producer not yet simulated; topological order
				// of tasks items makes this rare; treat as ready
			}
			arrive := f
			if e.Bytes > 0 {
				arrive = s.transfer(f, e.Bytes, float64(e.To.TotalCount))
			}
			if arrive > ready {
				ready = arrive
			}
		}
	}
	return ready
}

// nodeDuration converts a fraction of an HTG node's total work to time on
// a class.
func (s *Sim) nodeDuration(n *htg.Node, class int, frac float64) float64 {
	if n == nil {
		return 0
	}
	pc := s.pf.Classes[class]
	return float64(n.TotalCount) * n.CostNanosOn(pc) * frac
}

// spawnCount returns the number of times the task set of sol is created.
func (s *Sim) spawnCount(sol *core.Solution) float64 {
	if sol.Node == nil {
		return 1
	}
	n := float64(sol.Node.TotalCount)
	if sol.Kind == core.KindTaskParallel && sol.Node.Kind == htg.KindLoop {
		// Statement-level loop parallelization forks per iteration.
		iters := 0.0
		for _, c := range sol.Node.Children {
			if c.Count > iters {
				iters = c.Count
			}
		}
		if iters > 1 {
			n *= iters
		}
	}
	if n < 1 {
		n = 1
	}
	return n
}

// spawnTimes bounds communication repetitions for boundary transfers.
func spawnTimes(sol *core.Solution, times float64) float64 {
	if sol.Kind == core.KindChunked {
		return 1
	}
	if times < 1 {
		return 1
	}
	return times
}

func (s *Sim) leastLoaded() *Core {
	best := s.cores[0]
	for _, c := range s.cores[1:] {
		if c.freeAt < best.freeAt {
			best = c
		}
	}
	return best
}

// nodeLabel names a node for trace output.
func nodeLabel(n *htg.Node) string {
	if n == nil {
		return "work"
	}
	return n.Label
}

// ExportOccupancy synthesizes per-core occupancy tracks (plus the
// shared bus) from the recorded execution trace onto the tracer's
// virtual timeline, for the Chrome trace export. Safe on a nil tracer.
func (r *Result) ExportOccupancy(tr *obs.Tracer, pf *platform.Platform) {
	if tr == nil || r == nil {
		return
	}
	names := map[int]string{-1: "bus"}
	id := 0
	for _, pc := range pf.Classes {
		for i := 0; i < pc.Count; i++ {
			names[id] = fmt.Sprintf("core%d %s", id, pc.Name)
			id++
		}
	}
	for _, seg := range r.Trace {
		track, ok := names[seg.Core]
		if !ok {
			track = fmt.Sprintf("core%d", seg.Core)
		}
		label := seg.Label
		if label == "" {
			label = "work"
		}
		tr.Slice(track, label, seg.StartNs, seg.EndNs)
	}
}

// RenderGantt draws the traced execution as an ASCII timeline, one row per
// core (plus the shared bus), scaled to the given width.
func RenderGantt(pf *platform.Platform, res *Result, width int) string {
	if width <= 10 {
		width = 72
	}
	if res.MakespanNs <= 0 || len(res.Trace) == 0 {
		return "(no trace)\n"
	}
	scale := float64(width) / res.MakespanNs
	rows := map[int][]byte{}
	names := map[int]string{-1: "bus"}
	id := 0
	for _, pc := range pf.Classes {
		for i := 0; i < pc.Count; i++ {
			names[id] = fmt.Sprintf("core%d %s", id, pc.Name)
			id++
		}
	}
	rowFor := func(core int) []byte {
		if r, ok := rows[core]; ok {
			return r
		}
		r := make([]byte, width)
		for i := range r {
			r[i] = '.'
		}
		rows[core] = r
		return r
	}
	glyph := func(label string) byte {
		switch {
		case label == "bus":
			return '~'
		case label == "fork":
			return 'f'
		case len(label) >= 6 && label[:6] == "chunk:":
			return '#'
		case label == "pipeline":
			return '='
		default:
			return 'x'
		}
	}
	for _, seg := range res.Trace {
		r := rowFor(seg.Core)
		a := int(seg.StartNs * scale)
		b := int(seg.EndNs * scale)
		if b >= width {
			b = width - 1
		}
		g := glyph(seg.Label)
		for i := a; i <= b && i < width; i++ {
			r[i] = g
		}
	}
	keys := make([]int, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var sb strings.Builder
	fmt.Fprintf(&sb, "0 ns %s %.0f ns\n", strings.Repeat(" ", width-12), res.MakespanNs)
	for _, k := range keys {
		name := names[k]
		if name == "" {
			name = fmt.Sprintf("core%d", k)
		}
		fmt.Fprintf(&sb, "%-18s |%s|\n", name, rows[k])
	}
	sb.WriteString("legend: x=task  #=chunk  f=fork  ~=bus  ==pipeline  .=idle\n")
	return sb.String()
}

// Speedup is a convenience: measured sequential baseline over measured
// parallel makespan.
func Speedup(seqNs, parNs float64) float64 {
	if parNs <= 0 {
		return 1
	}
	return seqNs / parNs
}

// FormatUtilization renders per-core utilization sorted by core id.
func (r *Result) FormatUtilization(pf *platform.Platform) string {
	type cu struct {
		id   int
		name string
		u    float64
	}
	var list []cu
	id := 0
	for _, pc := range pf.Classes {
		for i := 0; i < pc.Count; i++ {
			u := 0.0
			if id < len(r.Utilization) {
				u = r.Utilization[id]
			}
			list = append(list, cu{id, pc.Name, u})
			id++
		}
	}
	sort.Slice(list, func(i, j int) bool { return list[i].id < list[j].id })
	out := ""
	for _, e := range list {
		out += fmt.Sprintf("core %d (%s): %5.1f%%\n", e.id, e.name, e.u*100)
	}
	return out
}
