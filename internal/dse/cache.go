package dse

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/core"
	"repro/internal/htg"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/solstore"
)

// HTGHash returns a canonical content hash of an Augmented Hierarchical
// Task Graph: a depth-first walk over the tree hashing, per node, the
// kind, label, profiled counts, cost-model cycles, boundary
// communication volumes, loop-parallelism facts and every data-flow
// edge (endpoint IDs, kind, bytes). Two graphs with equal hashes are
// indistinguishable to the parallelizer and the simulator, which makes
// the hash a valid solution-cache key component.
func HTGHash(g *htg.Graph) string {
	h := sha256.New()
	buf := make([]byte, 8)
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf, v)
		h.Write(buf)
	}
	wf := func(v float64) { w64(math.Float64bits(v)) }
	ws := func(s string) {
		w64(uint64(len(s)))
		h.Write([]byte(s))
	}
	var walk func(n *htg.Node)
	walk = func(n *htg.Node) {
		w64(uint64(n.ID))
		w64(uint64(n.Kind))
		ws(n.Label)
		wf(n.Count)
		w64(uint64(n.TotalCount))
		wf(n.SelfCycles)
		wf(n.SubtreeCycles)
		w64(uint64(n.InBytes))
		w64(uint64(n.OutBytes))
		if n.Loop != nil {
			w64(1)
			if n.Loop.Parallel {
				w64(1)
			} else {
				w64(0)
			}
		} else {
			w64(0)
		}
		w64(uint64(len(n.Edges)))
		for _, e := range n.Edges {
			w64(uint64(e.From.ID))
			w64(uint64(e.To.ID))
			w64(uint64(e.Kind))
			w64(uint64(e.Bytes))
		}
		w64(uint64(len(n.Children)))
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(g.Root)
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

// CacheKey derives the content address of one sweep evaluation:
// everything that determines the outcome — program (canonical HTG
// hash), platform (fingerprint), resolved main-core class and the
// parallelizer configuration. Scenario enters through the resolved
// main class, so two scenarios that pick the same class on a platform
// (e.g. any scenario on a single-class platform) correctly share one
// entry.
func CacheKey(htgHash string, pf *platform.Platform, mainClass int, cfg core.Config) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("v1|%s|%s|%d|%s",
		htgHash, pf.Fingerprint(), mainClass, cfg.Fingerprint())))
	return fmt.Sprintf("%x", h[:16])
}

// Outcome is the cached result of one (program, platform, main class,
// config) evaluation: everything the sweep reports, so a cache hit
// skips the ILP solves, the simulation and the GA search. All fields
// are deterministic for a given key; wall-clock quantities are
// deliberately excluded.
type Outcome struct {
	// Speedup is the simulator-measured speedup of the ILP plan over
	// sequential execution on the main core; EstimatedSpeedup the
	// parallelizer's own cost-model prediction.
	Speedup          float64 `json:"speedup"`
	EstimatedSpeedup float64 `json:"estimated_speedup"`
	// MakespanNs and SequentialNs are the simulated parallel and
	// sequential execution times.
	MakespanNs   float64 `json:"makespan_ns"`
	SequentialNs float64 `json:"sequential_ns"`
	// EnergyUJ is the simulated energy of the parallel execution (from
	// the platform's ProcClass power fields); SequentialEnergyUJ the
	// sequential baseline's.
	EnergyUJ           float64 `json:"energy_uj"`
	SequentialEnergyUJ float64 `json:"sequential_energy_uj"`
	// NumTasks is the task count of the chosen root solution; NumILPs
	// the number of ILPs solved to find it.
	NumTasks int `json:"num_tasks"`
	NumILPs  int `json:"num_ilps"`
	// GASpeedup is the estimated speedup of the best task→core mapping
	// the genetic algorithm found; GAGapPct the relative objective gap
	// to the ILP's estimate in percent (positive = GA worse).
	GASpeedup float64 `json:"ga_speedup"`
	GAGapPct  float64 `json:"ga_gap_pct"`
}

// dseKeyPrefix namespaces whole-solution outcomes inside the shared
// store; region keys carry a "region|" prefix (see core), so the two
// populations can never collide.
const dseKeyPrefix = "dse|"

// Cache is a concurrency-safe, content-addressed store of evaluation
// outcomes. Its in-memory interior is a solstore.Store — usually the
// same sharded store the parallelizer consults for region subproblems,
// so one size-bounded arena serves both whole-solution recalls and
// cross-point region reuse — optionally backed by a directory of
// <key>.json files so later runs start warm. Hit/miss counts flow into
// the obs metrics registry under dse.cache.*.
type Cache struct {
	store   *solstore.Store
	dir     string
	metrics *obs.Registry

	mu     sync.Mutex
	hits   int
	misses int
	// storeHits/storeMisses record the cache's own contribution to the
	// interior store's counters (each Get performs exactly one store
	// lookup). Callers sharing the store with region solves subtract
	// these to recover pure region-solve traffic.
	storeHits   int
	storeMisses int
}

// NewCache creates a cache over a private interior store. dir may be
// empty (memory-only); otherwise it is created on first Put. metrics
// may be nil.
func NewCache(dir string, metrics *obs.Registry) *Cache {
	return NewCacheOn(nil, dir, metrics)
}

// NewCacheOn creates a cache whose interior is the given shared store,
// so whole-solution outcomes and region subproblems live in one
// bounded arena. A nil store gets a private default store.
func NewCacheOn(store *solstore.Store, dir string, metrics *obs.Registry) *Cache {
	if store == nil {
		store = solstore.New(solstore.Options{Metrics: metrics})
	}
	return &Cache{store: store, dir: dir, metrics: metrics}
}

// Store returns the cache's interior solution store (never nil), for
// sharing with the parallelizer's region-solve path.
func (c *Cache) Store() *solstore.Store { return c.store }

// Get looks the key up in the interior store, then on disk. Every call
// counts as exactly one hit or miss.
func (c *Cache) Get(key string) (Outcome, bool) {
	var out Outcome
	v, ok := c.store.Get(dseKeyPrefix + key)
	c.mu.Lock()
	if ok {
		c.storeHits++
	} else {
		c.storeMisses++
	}
	c.mu.Unlock()
	if ok {
		out, ok = v.(Outcome)
	}
	if !ok && c.dir != "" {
		if data, err := os.ReadFile(filepath.Join(c.dir, key+".json")); err == nil {
			if json.Unmarshal(data, &out) == nil {
				ok = true
				c.store.Put(dseKeyPrefix+key, out)
			}
		}
	}
	c.mu.Lock()
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	c.mu.Unlock()
	if ok {
		c.metrics.Counter("dse.cache.hits").Inc()
	} else {
		c.metrics.Counter("dse.cache.misses").Inc()
	}
	return out, ok
}

// Put stores the outcome in the interior store and, when a directory
// is configured, persists it as <key>.json (atomically via rename).
func (c *Cache) Put(key string, out Outcome) error {
	c.store.Put(dseKeyPrefix+key, out)
	if c.dir == "" {
		return nil
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return fmt.Errorf("dse: cache dir: %w", err)
	}
	data, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(c.dir, key+".json.tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("dse: cache write: %w", err)
	}
	return os.Rename(tmp, filepath.Join(c.dir, key+".json"))
}

// Stats returns the hit/miss counts since creation.
func (c *Cache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// StoreTraffic returns how many interior-store hits and misses this
// cache's Gets have generated since creation.
func (c *Cache) StoreTraffic() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.storeHits, c.storeMisses
}

// HitRate returns hits/(hits+misses), 0 when empty.
func (c *Cache) HitRate() float64 {
	h, m := c.Stats()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
