package dse

import (
	"testing"

	"repro/internal/dataflow"
	"repro/internal/platform"
)

// TestGAProblemCoversAllConflicts is the race audit for the GA baseline.
// The GA never emits a core.Solution (its result is a unit-to-core
// assignment scheduled with list order), so the task-plan verifier in
// internal/analysis cannot inspect it; instead this test checks the
// scheduling problem itself: every pair of root statements with
// conflicting accesses (a flow, anti or output dependence between their
// def/use sets) must induce a dependence between every pair of their
// work units, otherwise the list scheduler is free to run them
// unordered — a race by construction.
func TestGAProblemCoversAllConflicts(t *testing.T) {
	g := buildGraph(t, tinyProgram)
	pf := platform.ConfigA()
	p := buildGAProblem(g, pf, 0)

	unitsOfChild := map[int][]int{}
	for ui, u := range p.units {
		unitsOfChild[u.child] = append(unitsOfChild[u.child], ui)
	}
	depOn := func(to, from int) bool {
		for _, d := range p.deps[to] {
			if d.unit == from {
				return true
			}
		}
		return false
	}

	kids := g.Root.Children
	conflicts := 0
	for i := 0; i < len(kids); i++ {
		for j := i + 1; j < len(kids); j++ {
			if kids[i].Acc == nil || kids[j].Acc == nil {
				continue
			}
			if !dataflow.DependsOn(kids[i].Acc, kids[j].Acc).Exists() {
				continue
			}
			conflicts++
			for _, to := range unitsOfChild[j] {
				for _, from := range unitsOfChild[i] {
					if !depOn(to, from) {
						t.Errorf("conflicting statements %q -> %q: unit %d does not depend on unit %d",
							kids[i].Label, kids[j].Label, to, from)
					}
				}
			}
		}
	}
	if conflicts == 0 {
		t.Fatal("fixture has no conflicting statement pairs; the audit checked nothing")
	}

	// Chunk units of one DOALL loop must stay mutually independent —
	// that independence is what the GA's speedup comes from, and a
	// spurious dependence here would mask missing ones above.
	for _, units := range unitsOfChild {
		for _, a := range units {
			for _, b := range units {
				if a != b && depOn(a, b) {
					t.Errorf("chunk units %d and %d of one DOALL loop depend on each other", a, b)
				}
			}
		}
	}
}
