package dse

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/htg"
	"repro/internal/platform"
)

// GAConfig tunes the genetic-algorithm mapping baseline. The zero value
// selects the defaults noted per field.
type GAConfig struct {
	// Population is the number of individuals per generation (default 32).
	Population int
	// Generations is the number of evolution steps (default 60).
	Generations int
	// Elite is the number of best individuals copied unchanged into the
	// next generation (default 2) — the "elitist" part.
	Elite int
	// BiasRate is the probability that an initial gene is drawn
	// proportionally to class speed scores instead of uniformly
	// (default 0.5) — the "bias" part: fast cores attract work early.
	BiasRate float64
	// CrossoverRate is the probability a child is produced by uniform
	// crossover rather than cloning (default 0.9).
	CrossoverRate float64
	// Tournament is the selection tournament size (default 3).
	Tournament int
}

func (c GAConfig) withDefaults() GAConfig {
	if c.Population <= 0 {
		c.Population = 32
	}
	if c.Generations <= 0 {
		c.Generations = 60
	}
	if c.Elite <= 0 {
		c.Elite = 2
	}
	if c.Elite > c.Population {
		c.Elite = c.Population
	}
	if c.BiasRate <= 0 {
		c.BiasRate = 0.5
	}
	if c.CrossoverRate <= 0 {
		c.CrossoverRate = 0.9
	}
	if c.Tournament <= 0 {
		c.Tournament = 3
	}
	return c
}

// gaUnit is one schedulable work unit of the flattened mapping problem:
// a top-level HTG child, or one iteration chunk of a parallel (DOALL)
// top-level loop.
type gaUnit struct {
	node *htg.Node
	// frac is the fraction of the node's work this unit covers (1 for
	// whole statements, 1/k for chunks).
	frac float64
	// child indexes the originating root child, for dependence lookup.
	child int
}

// GAResult is the outcome of one GA search.
type GAResult struct {
	// MakespanNs is the best mapping's estimated execution time;
	// Speedup the corresponding estimated speedup over sequential
	// execution on the main class.
	MakespanNs float64
	Speedup    float64
	// Assignment maps each work unit to a core index.
	Assignment []int
	// Units is the number of schedulable work units.
	Units int
	// Generations actually evolved (0 when the problem is trivial).
	Generations int
}

// gaProblem is the immutable evaluation context shared by all fitness
// calls of one search.
type gaProblem struct {
	pf        *platform.Platform
	coreClass []int // core index -> class index
	mainCore  int
	units     []gaUnit
	// deps[i] lists (unit index, comm ns) pairs unit i must wait for
	// when mapped to a different core.
	deps    [][]gaDep
	seqNs   float64
	costOf  [][]float64 // unit -> class -> duration ns
	inComm  []float64   // boundary in-communication ns (off-main only)
	outComm []float64
}

type gaDep struct {
	unit   int
	commNs float64
}

// RunGA searches task→core mappings for the root region of g on pf with
// the main task on mainClass, using a seeded bias-elitist genetic
// algorithm. It is a cheap, inexact alternative to the ILP backend: the
// chromosome assigns every top-level work unit (statement nodes, and
// iteration chunks of DOALL loops) to a physical core, and fitness is
// the makespan of a deterministic list schedule under the same
// cost-model quantities the ILP consumes (per-class execution times,
// shared-bus communication costs, task-creation overhead).
//
// Identical (graph, platform, mainClass, cfg, seed) inputs produce an
// identical result.
func RunGA(g *htg.Graph, pf *platform.Platform, mainClass int, cfg GAConfig, seed int64) GAResult {
	cfg = cfg.withDefaults()
	p := buildGAProblem(g, pf, mainClass)
	res := GAResult{MakespanNs: p.seqNs, Speedup: 1, Units: len(p.units)}
	if len(p.units) < 2 || len(p.coreClass) < 2 {
		if len(p.units) > 0 {
			res.Assignment = make([]int, len(p.units))
			for i := range res.Assignment {
				res.Assignment[i] = p.mainCore
			}
		}
		return res
	}
	rng := rand.New(rand.NewSource(seed))
	n := len(p.units)
	pop := make([][]int, cfg.Population)
	// Biased initialization, plus two seeded individuals: all-sequential
	// (the guaranteed-feasible fallback) and a greedy LPT mapping.
	for i := range pop {
		pop[i] = p.randomIndividual(rng, cfg.BiasRate)
	}
	seq := make([]int, n)
	for i := range seq {
		seq[i] = p.mainCore
	}
	pop[0] = seq
	pop[1] = p.greedyLPT()
	fit := make([]float64, cfg.Population)
	for i, ind := range pop {
		fit[i] = p.makespan(ind)
	}
	best := append([]int(nil), pop[argmin(fit)]...)
	bestFit := fit[argmin(fit)]

	next := make([][]int, cfg.Population)
	for gen := 0; gen < cfg.Generations; gen++ {
		order := sortedByFitness(fit)
		// Elitism: the top individuals survive unchanged.
		for e := 0; e < cfg.Elite; e++ {
			next[e] = append(next[e][:0], pop[order[e]]...)
		}
		for i := cfg.Elite; i < cfg.Population; i++ {
			a := p.tournament(rng, fit, cfg.Tournament)
			child := append([]int(nil), pop[a]...)
			if rng.Float64() < cfg.CrossoverRate {
				b := p.tournament(rng, fit, cfg.Tournament)
				for gi := range child {
					if rng.Intn(2) == 0 {
						child[gi] = pop[b][gi]
					}
				}
			}
			// Mutation: expected one gene reassignment per child.
			for gi := range child {
				if rng.Float64() < 1/float64(n) {
					child[gi] = rng.Intn(len(p.coreClass))
				}
			}
			next[i] = child
		}
		pop, next = next, pop
		for i, ind := range pop {
			fit[i] = p.makespan(ind)
			if fit[i] < bestFit {
				bestFit = fit[i]
				best = append(best[:0], ind...)
			}
		}
	}
	res.MakespanNs = bestFit
	if bestFit > 0 {
		res.Speedup = p.seqNs / bestFit
	}
	res.Assignment = best
	res.Generations = cfg.Generations
	return res
}

// buildGAProblem flattens the root region into work units: every child
// is one unit, except profitable DOALL loops, which split into one
// chunk unit per core (the same granularity trick the exact backend's
// chunk ILP exploits).
func buildGAProblem(g *htg.Graph, pf *platform.Platform, mainClass int) *gaProblem {
	p := &gaProblem{pf: pf}
	for cls, pc := range pf.Classes {
		for i := 0; i < pc.Count; i++ {
			p.coreClass = append(p.coreClass, cls)
		}
	}
	// The first core of the main class hosts the main task.
	for ci, cls := range p.coreClass {
		if cls == mainClass {
			p.mainCore = ci
			break
		}
	}
	root := g.Root
	p.seqNs = float64(root.TotalCount) * root.CostNanosOn(pf.Classes[mainClass])
	nCores := len(p.coreClass)
	for childIdx, child := range root.Children {
		if child.Kind == htg.KindLoop && child.Loop != nil && child.Loop.Parallel && nCores > 1 {
			frac := 1.0 / float64(nCores)
			for k := 0; k < nCores; k++ {
				p.units = append(p.units, gaUnit{node: child, frac: frac, child: childIdx})
			}
			continue
		}
		p.units = append(p.units, gaUnit{node: child, frac: 1, child: childIdx})
	}
	// Per-unit, per-class durations and boundary communication volumes.
	p.costOf = make([][]float64, len(p.units))
	p.inComm = make([]float64, len(p.units))
	p.outComm = make([]float64, len(p.units))
	for ui, u := range p.units {
		p.costOf[ui] = make([]float64, len(pf.Classes))
		for cls := range pf.Classes {
			p.costOf[ui][cls] = float64(u.node.TotalCount) * u.node.CostNanosOn(pf.Classes[cls]) * u.frac
		}
		p.inComm[ui] = pf.CommCostNs(int(float64(u.node.InBytes) * u.frac))
		p.outComm[ui] = pf.CommCostNs(int(float64(u.node.OutBytes) * u.frac))
	}
	// Dependences: data-flow edges between distinct root children; chunk
	// units of one loop are mutually independent by construction.
	unitsOfChild := map[int][]int{}
	for ui, u := range p.units {
		unitsOfChild[u.child] = append(unitsOfChild[u.child], ui)
	}
	p.deps = make([][]gaDep, len(p.units))
	for fromIdx, child := range root.Children {
		for _, e := range child.Edges {
			toIdx := -1
			for ci, sib := range root.Children {
				if sib == e.To {
					toIdx = ci
					break
				}
			}
			if toIdx < 0 || toIdx == fromIdx {
				continue
			}
			comm := pf.CommCostNs(e.Bytes)
			for _, to := range unitsOfChild[toIdx] {
				for _, from := range unitsOfChild[fromIdx] {
					p.deps[to] = append(p.deps[to], gaDep{unit: from, commNs: comm})
				}
			}
		}
	}
	return p
}

// makespan list-schedules the units in program order under the given
// core assignment and returns the estimated completion time, including
// serialized task-creation overhead on the main core, boundary and
// cross-core dependence communication on the shared bus, and per-class
// execution times.
func (p *gaProblem) makespan(assign []int) float64 {
	nCores := len(p.coreClass)
	used := make([]bool, nCores)
	for _, c := range assign {
		used[c] = true
	}
	extra := 0
	for c, u := range used {
		if u && c != p.mainCore {
			extra++
		}
	}
	forkDone := float64(extra) * p.pf.TaskCreateNs
	coreFree := make([]float64, nCores)
	for c := range coreFree {
		coreFree[c] = forkDone
	}
	finish := make([]float64, len(p.units))
	end := forkDone
	for ui := range p.units {
		core := assign[ui]
		ready := coreFree[core]
		for _, d := range p.deps[ui] {
			arrive := finish[d.unit]
			if assign[d.unit] != core {
				arrive += d.commNs
			}
			if arrive > ready {
				ready = arrive
			}
		}
		dur := p.costOf[ui][p.coreClass[core]]
		if core != p.mainCore {
			dur += p.inComm[ui] + p.outComm[ui]
		}
		finish[ui] = ready + dur
		coreFree[core] = finish[ui]
		if finish[ui] > end {
			end = finish[ui]
		}
	}
	return end
}

// randomIndividual draws genes uniformly, or — with probability
// BiasRate per gene — proportionally to class speed scores, biasing the
// initial population toward fast cores.
func (p *gaProblem) randomIndividual(rng *rand.Rand, biasRate float64) []int {
	total := 0.0
	for _, cls := range p.coreClass {
		total += p.pf.Classes[cls].SpeedScore()
	}
	ind := make([]int, len(p.units))
	for i := range ind {
		if rng.Float64() < biasRate {
			pick := rng.Float64() * total
			acc := 0.0
			ind[i] = len(p.coreClass) - 1
			for c, cls := range p.coreClass {
				acc += p.pf.Classes[cls].SpeedScore()
				if pick <= acc {
					ind[i] = c
					break
				}
			}
		} else {
			ind[i] = rng.Intn(len(p.coreClass))
		}
	}
	return ind
}

// greedyLPT assigns units in decreasing-cost order to the core that
// finishes them earliest (longest processing time first), a classic
// deterministic seed.
func (p *gaProblem) greedyLPT() []int {
	order := make([]int, len(p.units))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return p.costOf[order[a]][p.coreClass[p.mainCore]] > p.costOf[order[b]][p.coreClass[p.mainCore]]
	})
	coreFree := make([]float64, len(p.coreClass))
	assign := make([]int, len(p.units))
	for _, ui := range order {
		best, bestEnd := 0, math.Inf(1)
		for c, cls := range p.coreClass {
			end := coreFree[c] + p.costOf[ui][cls]
			if end < bestEnd {
				best, bestEnd = c, end
			}
		}
		assign[ui] = best
		coreFree[best] = bestEnd
	}
	return assign
}

func (p *gaProblem) tournament(rng *rand.Rand, fit []float64, k int) int {
	best := rng.Intn(len(fit))
	for i := 1; i < k; i++ {
		c := rng.Intn(len(fit))
		if fit[c] < fit[best] {
			best = c
		}
	}
	return best
}

func argmin(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// sortedByFitness returns population indices best-first, ties broken by
// index for determinism.
func sortedByFitness(fit []float64) []int {
	order := make([]int, len(fit))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return fit[order[a]] < fit[order[b]] })
	return order
}
