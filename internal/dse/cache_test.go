package dse

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/platform"
)

func TestCacheKeySensitivity(t *testing.T) {
	pf := platform.ConfigA()
	cfg := core.Config{}
	base := CacheKey("abcd", pf, 0, cfg)
	if len(base) != 32 {
		t.Fatalf("key length = %d, want 32 hex chars", len(base))
	}
	if CacheKey("abcd", pf, 0, cfg) != base {
		t.Errorf("key not stable across calls")
	}
	if CacheKey("ffff", pf, 0, cfg) == base {
		t.Errorf("HTG hash does not affect key")
	}
	if CacheKey("abcd", pf, 1, cfg) == base {
		t.Errorf("main class does not affect key")
	}
	other := platform.ConfigB()
	if CacheKey("abcd", other, 0, cfg) == base {
		t.Errorf("platform does not affect key")
	}
	cfg2 := core.Config{MaxILPNodes: 150, ILPTimeout: 30 * time.Second}
	if CacheKey("abcd", pf, 0, cfg2) == base {
		t.Errorf("config does not affect key")
	}
	// Zero config and explicit defaults share a key (Fingerprint resolves
	// defaults first).
	if CacheKey("abcd", pf, 0, core.Config{Tracer: obs.NewTracer()}) != base {
		t.Errorf("observability wiring leaked into the cache key")
	}
}

func TestCacheMemoryRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCache("", reg)
	key := "deadbeef"
	if _, ok := c.Get(key); ok {
		t.Fatalf("empty cache reported a hit")
	}
	want := Outcome{Speedup: 2.5, EstimatedSpeedup: 2.75, NumTasks: 7, GASpeedup: 2.1, GAGapPct: 23.6}
	if err := c.Put(key, want); err != nil {
		t.Fatalf("put: %v", err)
	}
	got, ok := c.Get(key)
	if !ok || got != want {
		t.Fatalf("get = %+v ok=%v, want %+v", got, ok, want)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
	if got := c.HitRate(); got != 0.5 {
		t.Errorf("hit rate = %g, want 0.5", got)
	}
	if v := reg.Counter("dse.cache.hits").Value(); v != 1 {
		t.Errorf("obs hit counter = %d, want 1", v)
	}
	if v := reg.Counter("dse.cache.misses").Value(); v != 1 {
		t.Errorf("obs miss counter = %d, want 1", v)
	}
}

func TestCacheDiskWarmStart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	want := Outcome{Speedup: 3.25, MakespanNs: 1234.5, EnergyUJ: 9.875, NumILPs: 3}

	first := NewCache(dir, nil)
	if err := first.Put("cafe0123", want); err != nil {
		t.Fatalf("put: %v", err)
	}

	// A fresh cache over the same directory — a second process — starts
	// warm.
	second := NewCache(dir, nil)
	got, ok := second.Get("cafe0123")
	if !ok {
		t.Fatalf("disk-backed entry not found on warm start")
	}
	if got != want {
		t.Fatalf("disk round-trip changed outcome: %+v != %+v", got, want)
	}
	// The entry was promoted to memory: a second Get hits without disk.
	if _, ok := second.Get("cafe0123"); !ok {
		t.Fatalf("promoted entry lost")
	}
	if hits, misses := second.Stats(); hits != 2 || misses != 0 {
		t.Errorf("warm stats = %d hits / %d misses, want 2/0", hits, misses)
	}
}

func TestCacheNilSafety(t *testing.T) {
	// nil metrics registry must not panic (obs registries are nil-safe).
	c := NewCache("", nil)
	c.Get("k")
	if err := c.Put("k", Outcome{}); err != nil {
		t.Fatalf("put: %v", err)
	}
	c.Get("k")
}
