// Package dse is the design-space exploration engine: it sweeps a
// generated space of heterogeneous platform configurations (processor
// class clock mixes, per-class core counts, main-core scenarios) over a
// set of benchmarks, running the full parallelize→simulate pipeline for
// every point on a worker pool, and reports the Pareto-optimal
// configurations under (speedup, core count, energy).
//
// The paper evaluates two hand-picked four-core platforms; its ILP
// formulation is parameterized over arbitrary class mixes, which leaves
// open the question this package answers: which heterogeneous
// configuration is worth building for a given workload. Three
// ingredients keep the sweep tractable on one machine:
//
//   - a worker-pool executor (one ILP pipeline per sweep point, all
//     points independent),
//   - a content-addressed solution cache keyed by (canonical HTG hash,
//     platform fingerprint, main class, parallelizer config), so
//     repeated points and re-runs hit instead of re-solving,
//   - a seeded bias-elitist genetic algorithm that searches task→core
//     mappings directly as a cheap baseline next to the exact ILP,
//     following Quan & Pimentel (arXiv:1406.7539); the per-point
//     quality gap quantifies what the heuristic gives up.
package dse

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/platform"
)

// Point is one design point of the swept space: a concrete platform
// plus the scenario that selects its main core.
type Point struct {
	// ID names the point deterministically (derived from the class mix
	// and scenario), e.g. "100x1+500x2/acc".
	ID string
	// Platform is the candidate MPSoC configuration.
	Platform *platform.Platform
	// Scenario selects the class hosting the sequential main task.
	Scenario platform.Scenario
}

// SpaceSpec describes the platform space to generate: every subset of
// the clock menu up to MaxClasses classes, every per-class core count in
// [1, MaxCoresPerClass] whose total stays within [MinTotalCores,
// MaxTotalCores], crossed with the scenarios.
type SpaceSpec struct {
	// ClocksMHz is the menu of class clock frequencies.
	ClocksMHz []float64
	// MaxClasses bounds the number of distinct classes per platform.
	MaxClasses int
	// MaxCoresPerClass bounds each class's core count.
	MaxCoresPerClass int
	// MinTotalCores / MaxTotalCores bound the platform size. Platforms
	// with a single core are never interesting (no parallelism), so
	// MinTotalCores is clamped to at least 2.
	MinTotalCores, MaxTotalCores int
	// Scenarios lists the main-core selection policies to cross in.
	Scenarios []platform.Scenario
}

// DefaultSpace is the shipped sweep space: clock menu spanning the
// paper's 100–500 MHz range, up to three classes of up to four cores
// each, two to eight cores total, both evaluation scenarios. It
// enumerates to a few thousand points before sampling.
func DefaultSpace() SpaceSpec {
	return SpaceSpec{
		ClocksMHz:        []float64{100, 200, 250, 300, 400, 500},
		MaxClasses:       3,
		MaxCoresPerClass: 4,
		MinTotalCores:    2,
		MaxTotalCores:    8,
		Scenarios:        []platform.Scenario{platform.ScenarioAccelerator, platform.ScenarioSlowerCores},
	}
}

func (s SpaceSpec) withDefaults() SpaceSpec {
	if len(s.ClocksMHz) == 0 {
		s = DefaultSpace()
	}
	if s.MaxClasses <= 0 {
		s.MaxClasses = 3
	}
	if s.MaxCoresPerClass <= 0 {
		s.MaxCoresPerClass = 4
	}
	if s.MinTotalCores < 2 {
		s.MinTotalCores = 2
	}
	if s.MaxTotalCores <= 0 {
		s.MaxTotalCores = 8
	}
	if len(s.Scenarios) == 0 {
		s.Scenarios = []platform.Scenario{platform.ScenarioAccelerator, platform.ScenarioSlowerCores}
	}
	return s
}

// Enumerate generates every point of the space in a deterministic
// order: clock subsets in ascending lexicographic order, core-count
// vectors in odometer order, scenarios in spec order.
func (s SpaceSpec) Enumerate() []Point {
	s = s.withDefaults()
	clocks := append([]float64(nil), s.ClocksMHz...)
	sort.Float64s(clocks)
	var points []Point
	var subset []float64
	var pick func(start int)
	pick = func(start int) {
		if len(subset) > 0 {
			counts := make([]int, len(subset))
			s.emitCounts(subset, counts, 0, &points)
		}
		if len(subset) == s.MaxClasses {
			return
		}
		for i := start; i < len(clocks); i++ {
			subset = append(subset, clocks[i])
			pick(i + 1)
			subset = subset[:len(subset)-1]
		}
	}
	pick(0)
	return points
}

// emitCounts fills counts[i:] with every admissible per-class count
// vector and emits the resulting platforms crossed with the scenarios.
func (s SpaceSpec) emitCounts(clocks []float64, counts []int, i int, out *[]Point) {
	if i == len(counts) {
		total := 0
		for _, c := range counts {
			total += c
		}
		if total < s.MinTotalCores || total > s.MaxTotalCores {
			return
		}
		pf := buildPlatform(clocks, counts)
		for _, sc := range s.Scenarios {
			*out = append(*out, Point{
				ID:       pointID(clocks, counts, sc),
				Platform: pf,
				Scenario: sc,
			})
		}
		return
	}
	for c := 1; c <= s.MaxCoresPerClass; c++ {
		counts[i] = c
		s.emitCounts(clocks, counts, i+1, out)
	}
	counts[i] = 0
}

// Generate enumerates the space and, when it holds more than n points,
// draws a seeded uniform sample of n points. The returned slice is
// always sorted by point ID, so equal (spec, n, seed) inputs produce
// byte-identical sweeps.
func (s SpaceSpec) Generate(n int, seed int64) []Point {
	all := s.Enumerate()
	if n > 0 && len(all) > n {
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
		all = all[:n]
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	return all
}

// buildPlatform constructs the platform for one clock/count mix, using
// the library's default bus and task-creation overheads (the paper's
// shared-bus platform model) so points differ only in the class mix.
func buildPlatform(clocks []float64, counts []int) *platform.Platform {
	base := platform.ConfigA()
	pf := &platform.Platform{
		Name:          mixName(clocks, counts),
		BusLatencyNs:  base.BusLatencyNs,
		BusBytesPerNs: base.BusBytesPerNs,
		TaskCreateNs:  base.TaskCreateNs,
	}
	for i, mhz := range clocks {
		pf.Classes = append(pf.Classes, platform.ProcClass{
			Name:      fmt.Sprintf("ARM@%.0fMHz", mhz),
			MHz:       mhz,
			Count:     counts[i],
			CPIFactor: 1,
		})
	}
	return pf
}

func mixName(clocks []float64, counts []int) string {
	name := ""
	for i, mhz := range clocks {
		if i > 0 {
			name += "+"
		}
		name += fmt.Sprintf("%.0fx%d", mhz, counts[i])
	}
	return name
}

func pointID(clocks []float64, counts []int, sc platform.Scenario) string {
	tag := "acc"
	if sc == platform.ScenarioSlowerCores {
		tag = "slow"
	}
	return mixName(clocks, counts) + "/" + tag
}
