package dse

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Formats accepted by Render.
const (
	FormatCSV      = "csv"
	FormatMarkdown = "md"
	FormatJSON     = "json"
)

// ValidFormat reports whether Render accepts format. Callers that run
// long sweeps should check it up front instead of failing after the fact.
func ValidFormat(format string) bool {
	switch format {
	case FormatCSV, FormatMarkdown, FormatJSON:
		return true
	}
	return false
}

// Render serializes the sweep result in the requested format. Output
// is byte-identical for identical sweep inputs: rows follow the
// deterministic (point ID, workload) job order, floats use fixed
// precision, and run-dependent quantities (wall time, cache hits) are
// excluded.
func (r *SweepResult) Render(format string) (string, error) {
	switch format {
	case FormatCSV:
		return r.renderCSV(), nil
	case FormatMarkdown:
		return r.renderMarkdown(), nil
	case FormatJSON:
		return r.renderJSON()
	}
	return "", fmt.Errorf("dse: unknown output format %q (want csv, md or json)", format)
}

func (r *SweepResult) renderCSV() string {
	var sb strings.Builder
	sb.WriteString("point,scenario,cores,benchmark,speedup,est_speedup,ga_speedup,ga_gap_pct,energy_uj,seq_energy_uj,tasks,ilps\n")
	for _, row := range r.Rows {
		o := row.Outcome
		fmt.Fprintf(&sb, "%s,%s,%d,%s,%.4f,%.4f,%.4f,%.2f,%.3f,%.3f,%d,%d\n",
			row.Point.Platform.Name, row.Point.Scenario, row.Point.Platform.NumCores(),
			row.Bench, o.Speedup, o.EstimatedSpeedup, o.GASpeedup, o.GAGapPct,
			o.EnergyUJ, o.SequentialEnergyUJ, o.NumTasks, o.NumILPs)
	}
	return sb.String()
}

func (r *SweepResult) renderMarkdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# Design-space exploration\n\n")
	fmt.Fprintf(&sb, "%d points × %d benchmarks (%s), %d evaluations. Median GA-vs-ILP gap: %.1f%%.\n\n",
		len(r.Summaries), len(r.Workloads), strings.Join(r.Workloads, ", "),
		len(r.Rows), r.MedianGAGapPct())

	sb.WriteString("## Pareto front (maximize speedup, minimize cores and energy)\n\n")
	sb.WriteString("| platform | scenario | cores | geomean speedup | limit | mean energy (µJ) | median GA gap |\n")
	sb.WriteString("|---|---|---:|---:|---:|---:|---:|\n")
	for _, s := range r.Front {
		fmt.Fprintf(&sb, "| %s | %s | %d | %.3f | %.2f | %.2f | %.1f%% |\n",
			s.Point.Platform.Name, s.Point.Scenario, s.Cores, s.GeoSpeedup,
			s.Limit, s.MeanEnergyUJ, s.MedianGAGapPct)
	}

	sb.WriteString("\n## All points\n\n")
	sb.WriteString("| platform | scenario | cores | geomean speedup | limit | mean energy (µJ) | median GA gap | pareto |\n")
	sb.WriteString("|---|---|---:|---:|---:|---:|---:|:---:|\n")
	for _, s := range r.Summaries {
		mark := ""
		if s.Pareto {
			mark = "★"
		}
		fmt.Fprintf(&sb, "| %s | %s | %d | %.3f | %.2f | %.2f | %.1f%% | %s |\n",
			s.Point.Platform.Name, s.Point.Scenario, s.Cores, s.GeoSpeedup,
			s.Limit, s.MeanEnergyUJ, s.MedianGAGapPct, mark)
	}
	return sb.String()
}

// jsonReport is the JSON output shape (deterministic field order via
// struct definition; no run-dependent fields).
type jsonReport struct {
	Workloads      []string         `json:"workloads"`
	MedianGAGapPct float64          `json:"median_ga_gap_pct"`
	Front          []jsonSummary    `json:"pareto_front"`
	Points         []jsonSummary    `json:"points"`
	Rows           []jsonReportLine `json:"rows"`
}

type jsonSummary struct {
	Platform       string  `json:"platform"`
	Scenario       string  `json:"scenario"`
	Cores          int     `json:"cores"`
	GeoSpeedup     float64 `json:"geomean_speedup"`
	Limit          float64 `json:"theoretical_limit"`
	MeanEnergyUJ   float64 `json:"mean_energy_uj"`
	MedianGAGapPct float64 `json:"median_ga_gap_pct"`
	Pareto         bool    `json:"pareto"`
}

type jsonReportLine struct {
	Platform  string  `json:"platform"`
	Scenario  string  `json:"scenario"`
	Benchmark string  `json:"benchmark"`
	Outcome   Outcome `json:"outcome"`
}

func (r *SweepResult) renderJSON() (string, error) {
	rep := jsonReport{Workloads: r.Workloads, MedianGAGapPct: r.MedianGAGapPct()}
	conv := func(s PointSummary) jsonSummary {
		return jsonSummary{
			Platform: s.Point.Platform.Name, Scenario: s.Point.Scenario.String(),
			Cores: s.Cores, GeoSpeedup: s.GeoSpeedup, Limit: s.Limit,
			MeanEnergyUJ: s.MeanEnergyUJ, MedianGAGapPct: s.MedianGAGapPct,
			Pareto: s.Pareto,
		}
	}
	for _, s := range r.Front {
		rep.Front = append(rep.Front, conv(s))
	}
	for _, s := range r.Summaries {
		rep.Points = append(rep.Points, conv(s))
	}
	for _, row := range r.Rows {
		rep.Rows = append(rep.Rows, jsonReportLine{
			Platform: row.Point.Platform.Name, Scenario: row.Point.Scenario.String(),
			Benchmark: row.Bench, Outcome: row.Outcome,
		})
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	return string(data) + "\n", nil
}
