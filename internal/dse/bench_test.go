package dse

import (
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/experiments"
	"repro/internal/htg"
	"repro/internal/interp"
	"repro/internal/minic"
	"repro/internal/platform"
	"repro/internal/solstore"
)

// benchPair returns a scenario pair on one multi-class platform — the
// canonical cross-point region-reuse case — plus a prepared workload.
func benchPair(b *testing.B) ([]Point, *Workload) {
	b.Helper()
	spec := tinySpace()
	spec.Scenarios = []platform.Scenario{platform.ScenarioAccelerator, platform.ScenarioSlowerCores}
	var pair []Point
	for _, p := range spec.Enumerate() {
		if len(p.Platform.Classes) < 2 {
			continue
		}
		if len(pair) == 1 && pair[0].Platform.Fingerprint() == p.Platform.Fingerprint() {
			pair = append(pair, p)
			break
		}
		pair = pair[:0]
		pair = append(pair, p)
	}
	if len(pair) != 2 {
		b.Fatal("no scenario pair enumerated")
	}
	prog, err := minic.Compile(tinyProgram)
	if err != nil {
		b.Fatal(err)
	}
	prof, err := interp.New(prog).Run()
	if err != nil {
		b.Fatal(err)
	}
	g, err := htg.Build(prog, prof, htg.Config{})
	if err != nil {
		b.Fatal(err)
	}
	w := PrepareWorkload(&experiments.Prepared{
		Bench: &bench.Benchmark{Name: "tiny1", Source: tinyProgram},
		Graph: g,
	})
	return pair, w
}

func sweepOnce(b *testing.B, pair []Point, w *Workload, store *solstore.Store) *SweepResult {
	b.Helper()
	eng := &Engine{Workers: 1, Config: cheapConfig(), GA: cheapGA(), Seed: 42,
		Cache: NewCache("", nil), Store: store, SkipAudit: true}
	res, err := eng.Run(context.Background(), pair, []*Workload{w})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkSweepPointCold measures a two-point sweep where every layer
// starts cold: the whole-solution cache and the region store are fresh
// each iteration (the second point still reuses the first's regions).
func BenchmarkSweepPointCold(b *testing.B) {
	pair, w := benchPair(b)
	var res *SweepResult
	for i := 0; i < b.N; i++ {
		res = sweepOnce(b, pair, w, solstore.New(solstore.Options{}))
	}
	b.ReportMetric(100*res.RegionHitRate(), "region-hit-%")
	b.ReportMetric(float64(res.RegionDedups), "dedups")
}

// BenchmarkSweepPointWarm measures the same sweep against a region
// store warmed by one priming sweep, with a fresh whole-solution cache
// each iteration: every region ILP is served from the store.
func BenchmarkSweepPointWarm(b *testing.B) {
	pair, w := benchPair(b)
	store := solstore.New(solstore.Options{})
	sweepOnce(b, pair, w, store)
	b.ResetTimer()
	var res *SweepResult
	for i := 0; i < b.N; i++ {
		res = sweepOnce(b, pair, w, store)
	}
	b.ReportMetric(100*res.RegionHitRate(), "region-hit-%")
	b.ReportMetric(float64(res.RegionDedups), "dedups")
}
