package dse

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/platform"
	"repro/internal/solstore"
)

var update = flag.Bool("update", false, "rewrite golden files")

// tinyProgram2 is a second sweep workload with a different shape: a
// producer loop, a sequential reduction, and a consumer loop depending
// on both.
const tinyProgram2 = `
int x[64];
int y[64];
int acc;

void main(void) {
    for (int i = 0; i < 64; i++) {
        x[i] = i * 3 + 1;
    }
    acc = 0;
    for (int j = 0; j < 64; j++) {
        acc = acc + x[j] * x[j];
    }
    for (int k = 0; k < 64; k++) {
        y[k] = x[k] + acc;
    }
}
`

func testWorkload(t *testing.T, name, src string) *Workload {
	t.Helper()
	g := buildGraph(t, src)
	return PrepareWorkload(&experiments.Prepared{
		Bench: &bench.Benchmark{Name: name, Source: src},
		Graph: g,
	})
}

// cheapConfig keeps per-point ILP solves in the low milliseconds; the
// generous timeout means the deterministic node cap, never the wall
// clock, truncates the search.
func cheapConfig() core.Config {
	return core.Config{
		MaxItemsPerILP:   6,
		MaxCandsPerClass: 2,
		MaxILPNodes:      20,
		ILPTimeout:       30 * time.Second,
		ILPRelGap:        0.1,
	}
}

func cheapGA() GAConfig {
	return GAConfig{Population: 12, Generations: 12}
}

func TestEngineSweepDeterministicAndCached(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point sweep; skipped in -short mode")
	}
	points := tinySpace().Enumerate()
	workloads := []*Workload{
		testWorkload(t, "tiny1", tinyProgram),
		testWorkload(t, "tiny2", tinyProgram2),
	}

	run := func(workers int) (*SweepResult, *Cache) {
		cache := NewCache("", nil)
		eng := &Engine{Workers: workers, Config: cheapConfig(), GA: cheapGA(), Seed: 42, Cache: cache}
		res, err := eng.Run(context.Background(), points, workloads)
		if err != nil {
			t.Fatalf("sweep: %v", err)
		}
		return res, cache
	}

	r1, c1 := run(2)
	r2, _ := run(1) // different worker count must not change results

	if len(r1.Rows) != len(points)*len(workloads) {
		t.Fatalf("got %d rows, want %d", len(r1.Rows), len(points)*len(workloads))
	}
	if len(r1.Summaries) != len(points) {
		t.Fatalf("got %d summaries, want %d", len(r1.Summaries), len(points))
	}
	if len(r1.Front) == 0 || len(r1.Front) > len(points) {
		t.Fatalf("front size %d out of range", len(r1.Front))
	}

	for _, format := range []string{FormatCSV, FormatMarkdown, FormatJSON} {
		a, err := r1.Render(format)
		if err != nil {
			t.Fatalf("render %s: %v", format, err)
		}
		b, err := r2.Render(format)
		if err != nil {
			t.Fatalf("render %s: %v", format, err)
		}
		if a != b {
			t.Errorf("%s output differs between identical sweeps (worker counts 2 vs 1)", format)
		}
	}

	// Warm re-run over the same cache: every job hits, and the rendered
	// report is byte-identical to the cold run.
	eng := &Engine{Workers: 2, Config: cheapConfig(), GA: cheapGA(), Seed: 42, Cache: c1}
	r3, err := eng.Run(context.Background(), points, workloads)
	if err != nil {
		t.Fatalf("warm sweep: %v", err)
	}
	if r3.CacheMisses != 0 || r3.CacheHits != len(r1.Rows) {
		t.Errorf("warm run: %d hits / %d misses, want %d/0", r3.CacheHits, r3.CacheMisses, len(r1.Rows))
	}
	if r3.HitRate() != 1 {
		t.Errorf("warm hit rate = %g, want 1", r3.HitRate())
	}
	cold, _ := r1.Render(FormatCSV)
	warm, _ := r3.Render(FormatCSV)
	if cold != warm {
		t.Errorf("warm (cached) CSV differs from cold CSV")
	}
}

func TestEngineParallelWorkersDeterminism(t *testing.T) {
	// A multi-worker sweep must render byte-identically to a sequential
	// one: results are indexed by job slot and the GA seed derives from
	// the cache key, not from scheduling order. Single-class points keep
	// this cheap enough to run under -race in -short mode.
	spec := tinySpace()
	spec.ClocksMHz = []float64{100, 250, 500}
	spec.MaxClasses = 1
	points := spec.Enumerate()
	if len(points) != 3 {
		t.Fatalf("got %d single-class points, want 3", len(points))
	}
	w := testWorkload(t, "tiny2", tinyProgram2)
	render := func(workers int) string {
		eng := &Engine{Workers: workers, Config: cheapConfig(), GA: cheapGA(), Seed: 42, Cache: NewCache("", nil)}
		res, err := eng.Run(context.Background(), points, []*Workload{w})
		if err != nil {
			t.Fatalf("sweep with %d workers: %v", workers, err)
		}
		csv, err := res.Render(FormatCSV)
		if err != nil {
			t.Fatal(err)
		}
		return csv
	}
	if render(4) != render(1) {
		t.Errorf("4-worker sweep differs from sequential sweep")
	}
}

func TestEngineIntraRunCacheHits(t *testing.T) {
	// Both scenarios of a single-class platform resolve to the same main
	// class, so the second scenario's jobs hit the cache within one run.
	spec := tinySpace()
	spec.MaxClasses = 1
	spec.Scenarios = nil // withDefaults: both scenarios
	points := spec.Enumerate()
	if len(points)%2 != 0 || len(points) == 0 {
		t.Fatalf("expected scenario-paired points, got %d", len(points))
	}
	w := testWorkload(t, "tiny1", tinyProgram)
	eng := &Engine{Workers: 1, Config: cheapConfig(), GA: cheapGA(), Seed: 1, Cache: NewCache("", nil)}
	res, err := eng.Run(context.Background(), points, []*Workload{w})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if res.CacheHits != len(points)/2 {
		t.Errorf("intra-run hits = %d, want %d (one per duplicate scenario)", res.CacheHits, len(points)/2)
	}
}

// TestEngineCrossPointRegionReuse checks the shared region-solve store
// pays off across sweep points: two points on the same platform with
// different main classes miss the whole-solution cache but share their
// entire region workload (the parallelizer solves every region for
// every class), and a second sweep over a warm store re-solves nothing.
func TestEngineCrossPointRegionReuse(t *testing.T) {
	spec := tinySpace()
	spec.Scenarios = []platform.Scenario{platform.ScenarioAccelerator, platform.ScenarioSlowerCores}
	var pair []Point
	for _, p := range spec.Enumerate() {
		if len(p.Platform.Classes) < 2 {
			continue
		}
		if len(pair) == 1 && pair[0].Platform.Fingerprint() == p.Platform.Fingerprint() &&
			pair[0].Scenario.MainClass(pair[0].Platform) != p.Scenario.MainClass(p.Platform) {
			pair = append(pair, p)
			break
		}
		pair = pair[:0]
		pair = append(pair, p)
	}
	if len(pair) != 2 {
		t.Fatalf("no scenario pair with distinct main classes enumerated")
	}
	w := testWorkload(t, "tiny1", tinyProgram)
	store := solstore.New(solstore.Options{})

	run := func() *SweepResult {
		eng := &Engine{Workers: 1, Config: cheapConfig(), GA: cheapGA(), Seed: 42,
			Cache: NewCache("", nil), Store: store}
		res, err := eng.Run(context.Background(), pair, []*Workload{w})
		if err != nil {
			t.Fatalf("sweep: %v", err)
		}
		return res
	}

	cold := run()
	if cold.CacheHits != 0 {
		t.Fatalf("distinct main classes still hit the whole-solution cache (%d hits)", cold.CacheHits)
	}
	if cold.RegionMisses == 0 {
		t.Errorf("cold sweep recorded no region-store misses; store not consulted")
	}
	if cold.RegionHits == 0 {
		t.Errorf("second point reused no region solves; want cross-point hits")
	}

	// Fresh whole-solution cache, warm shared store: every region solve
	// of every point is served from the store.
	warm := run()
	if warm.CacheMisses != len(warm.Rows) {
		t.Fatalf("fresh cache unexpectedly hit (%d misses, want %d)", warm.CacheMisses, len(warm.Rows))
	}
	if warm.RegionMisses != 0 {
		t.Errorf("warm sweep re-solved %d regions; want 0", warm.RegionMisses)
	}
	if warm.RegionHits == 0 {
		t.Errorf("warm sweep recorded no region-store hits")
	}
	if warm.RegionHitRate() != 1 {
		t.Errorf("warm region hit rate = %g, want 1", warm.RegionHitRate())
	}
}

// TestEngineSharedStoreDefault checks the cooperation default: with no
// explicit Store the engine threads the cache's interior store through
// the parallelizer, so region reuse needs no extra wiring.
func TestEngineSharedStoreDefault(t *testing.T) {
	cache := NewCache("", nil)
	spec := tinySpace()
	spec.MaxClasses = 1
	points := spec.Enumerate()
	w := testWorkload(t, "tiny2", tinyProgram2)
	eng := &Engine{Workers: 1, Config: cheapConfig(), GA: cheapGA(), Seed: 7, Cache: cache}
	res, err := eng.Run(context.Background(), points, []*Workload{w})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if res.RegionMisses == 0 {
		t.Errorf("cache's interior store saw no region traffic; engine did not share it")
	}
	if got := cache.Store().Len(); got == 0 {
		t.Errorf("interior store empty after sweep")
	}
}

func TestEngineCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w := testWorkload(t, "tiny1", tinyProgram)
	eng := &Engine{Config: cheapConfig(), GA: cheapGA()}
	if _, err := eng.Run(ctx, tinySpace().Enumerate(), []*Workload{w}); err != context.Canceled {
		t.Fatalf("cancelled sweep returned %v, want context.Canceled", err)
	}
}

func TestEngineEmptySweep(t *testing.T) {
	eng := &Engine{}
	if _, err := eng.Run(context.Background(), nil, nil); err == nil {
		t.Fatalf("empty sweep did not error")
	}
}

// TestEngineGolden pins the exact rendered CSV of a fixed one-point
// sweep. Run with -update to regenerate after intentional changes.
func TestEngineGolden(t *testing.T) {
	points := tinySpace().Enumerate()
	var pt Point
	for _, p := range points {
		if p.ID == "500x2/acc" {
			pt = p
		}
	}
	if pt.Platform == nil {
		t.Fatalf("point 500x2/acc not enumerated")
	}
	w := testWorkload(t, "tiny1", tinyProgram)
	eng := &Engine{Workers: 1, Config: cheapConfig(), GA: cheapGA(), Seed: 42, Cache: NewCache("", nil)}
	res, err := eng.Run(context.Background(), []Point{pt}, []*Workload{w})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	got, err := res.Render(FormatCSV)
	if err != nil {
		t.Fatalf("render: %v", err)
	}
	golden := filepath.Join("testdata", "golden_sweep.csv")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("CSV drifted from golden file:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
