package dse

import (
	"math"
	"sort"
)

// dominates reports whether a is at least as good as b on every
// objective (speedup up, cores down, energy down) and strictly better
// on at least one.
func dominates(a, b PointSummary) bool {
	if a.GeoSpeedup < b.GeoSpeedup || a.Cores > b.Cores || a.MeanEnergyUJ > b.MeanEnergyUJ {
		return false
	}
	return a.GeoSpeedup > b.GeoSpeedup || a.Cores < b.Cores || a.MeanEnergyUJ < b.MeanEnergyUJ
}

// ParetoFront extracts the non-dominated subset of summaries under
// (maximize geometric-mean speedup, minimize total cores, minimize mean
// energy). The result is deterministically ordered: best speedup first,
// then fewer cores, then lower energy, then point ID. Duplicate
// objective vectors all survive (none dominates the other), so equal
// platforms reached through different scenarios stay distinguishable.
func ParetoFront(summaries []PointSummary) []PointSummary {
	var front []PointSummary
	for i, s := range summaries {
		dominated := false
		for j, t := range summaries {
			if i == j {
				continue
			}
			if dominates(t, s) {
				dominated = true
				break
			}
		}
		if !dominated {
			s.Pareto = true
			front = append(front, s)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		a, b := front[i], front[j]
		if a.GeoSpeedup != b.GeoSpeedup {
			return a.GeoSpeedup > b.GeoSpeedup
		}
		if a.Cores != b.Cores {
			return a.Cores < b.Cores
		}
		if a.MeanEnergyUJ != b.MeanEnergyUJ {
			return a.MeanEnergyUJ < b.MeanEnergyUJ
		}
		return a.Point.ID < b.Point.ID
	})
	return front
}

// median returns the middle value (mean of the two middles for even
// lengths); 0 for empty input.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func logOf(x float64) float64 { return math.Log(x) }
func expOf(x float64) float64 { return math.Exp(x) }
