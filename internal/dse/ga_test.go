package dse

import (
	"reflect"
	"testing"

	"repro/internal/platform"
)

func TestGADeterministicForSeed(t *testing.T) {
	g := buildGraph(t, tinyProgram)
	pf := platform.Homogeneous("quad", 250, 4)
	cfg := GAConfig{Population: 16, Generations: 20}

	a := RunGA(g, pf, 0, cfg, 12345)
	b := RunGA(g, pf, 0, cfg, 12345)
	if a.MakespanNs != b.MakespanNs || a.Speedup != b.Speedup {
		t.Fatalf("same seed diverged: %.3f/%.4f vs %.3f/%.4f",
			a.MakespanNs, a.Speedup, b.MakespanNs, b.Speedup)
	}
	if !reflect.DeepEqual(a.Assignment, b.Assignment) {
		t.Fatalf("same seed produced different assignments:\n%v\n%v", a.Assignment, b.Assignment)
	}
	if a.Generations != cfg.Generations {
		t.Errorf("evolved %d generations, want %d", a.Generations, cfg.Generations)
	}
}

func TestGANeverWorseThanSequential(t *testing.T) {
	// The population is seeded with the all-sequential individual, so
	// the elitist GA can never end below speedup 1.
	g := buildGraph(t, tinyProgram)
	pf := platform.Homogeneous("quad", 250, 4)
	for _, seed := range []int64{1, 2, 3, 99} {
		res := RunGA(g, pf, 0, GAConfig{Population: 12, Generations: 10}, seed)
		if res.Speedup < 1 {
			t.Errorf("seed %d: speedup %.4f < 1 despite sequential seed individual", seed, res.Speedup)
		}
		if res.Units < 2 {
			t.Errorf("seed %d: only %d schedulable units; DOALL chunking missing", seed, res.Units)
		}
		if len(res.Assignment) != res.Units {
			t.Errorf("seed %d: assignment length %d != units %d", seed, len(res.Assignment), res.Units)
		}
		for i, c := range res.Assignment {
			if c < 0 || c >= pf.NumCores() {
				t.Fatalf("seed %d: unit %d mapped to invalid core %d", seed, i, c)
			}
		}
	}
}

func TestGAFindsParallelism(t *testing.T) {
	// tinyProgram's two DOALL loops dominate its runtime; a working GA
	// must beat sequential execution on a 4-core machine.
	g := buildGraph(t, tinyProgram)
	pf := platform.Homogeneous("quad", 250, 4)
	res := RunGA(g, pf, 0, GAConfig{Population: 24, Generations: 40}, 7)
	if res.Speedup <= 1.05 {
		t.Errorf("GA speedup %.4f on 4 cores; expected > 1.05 for DOALL-dominated program", res.Speedup)
	}
}

func TestGATrivialCases(t *testing.T) {
	g := buildGraph(t, tinyProgram)
	// Single core: nothing to search.
	uni := platform.Homogeneous("uni", 250, 1)
	res := RunGA(g, uni, 0, GAConfig{}, 1)
	if res.Speedup != 1 || res.Generations != 0 {
		t.Errorf("single-core GA = speedup %.4f after %d generations, want 1.0 after 0",
			res.Speedup, res.Generations)
	}
	for _, c := range res.Assignment {
		if c != 0 {
			t.Errorf("single-core assignment uses core %d", c)
		}
	}
}
