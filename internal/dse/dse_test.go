package dse

import (
	"strings"
	"testing"

	"repro/internal/htg"
	"repro/internal/interp"
	"repro/internal/minic"
	"repro/internal/platform"
)

// tinyProgram is a fast-to-analyze workload with one DOALL hot loop, a
// sequential reduction, and cross-statement data flow — enough
// structure to exercise the parallelizer, the GA flattening and the
// cache without slowing the suite down.
const tinyProgram = `
int a[96];
int b[96];
int total;

void main(void) {
    for (int i = 0; i < 96; i++) {
        a[i] = (i * 7) % 23;
    }
    for (int j = 0; j < 96; j++) {
        b[j] = a[j] * a[j] + j;
    }
    total = 0;
    for (int k = 0; k < 96; k++) {
        total = total + b[k];
    }
}
`

// buildGraph compiles, profiles and HTG-builds src.
func buildGraph(t *testing.T, src string) *htg.Graph {
	t.Helper()
	prog, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	prof, err := interp.New(prog).Run()
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	g, err := htg.Build(prog, prof, htg.Config{})
	if err != nil {
		t.Fatalf("htg: %v", err)
	}
	return g
}

// tinySpace is a 5-point space that enumerates in milliseconds.
func tinySpace() SpaceSpec {
	return SpaceSpec{
		ClocksMHz:        []float64{100, 500},
		MaxClasses:       2,
		MaxCoresPerClass: 2,
		MinTotalCores:    2,
		MaxTotalCores:    3,
		Scenarios:        []platform.Scenario{platform.ScenarioAccelerator},
	}
}

func TestSpaceEnumerate(t *testing.T) {
	points := tinySpace().Enumerate()
	// {100}x2, {500}x2, {100,500} with counts (1,1),(1,2),(2,1).
	if len(points) != 5 {
		ids := make([]string, len(points))
		for i, p := range points {
			ids[i] = p.ID
		}
		t.Fatalf("enumerated %d points, want 5: %v", len(points), ids)
	}
	seen := map[string]bool{}
	for _, pt := range points {
		if seen[pt.ID] {
			t.Errorf("duplicate point ID %s", pt.ID)
		}
		seen[pt.ID] = true
		if err := pt.Platform.Validate(); err != nil {
			t.Errorf("point %s platform invalid: %v", pt.ID, err)
		}
		n := pt.Platform.NumCores()
		if n < 2 || n > 3 {
			t.Errorf("point %s has %d cores, want 2..3", pt.ID, n)
		}
	}
	for _, want := range []string{"100x2/acc", "500x2/acc", "100x1+500x1/acc", "100x1+500x2/acc", "100x2+500x1/acc"} {
		if !seen[want] {
			t.Errorf("missing expected point %s", want)
		}
	}
}

func TestSpaceGenerateDeterministicSampling(t *testing.T) {
	spec := DefaultSpace()
	full := spec.Enumerate()
	if len(full) < 400 {
		t.Fatalf("default space enumerates only %d points, want hundreds", len(full))
	}
	a := spec.Generate(200, 42)
	b := spec.Generate(200, 42)
	if len(a) != 200 || len(b) != 200 {
		t.Fatalf("sample sizes %d/%d, want 200", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("same seed diverged at %d: %s vs %s", i, a[i].ID, b[i].ID)
		}
	}
	// Samples are sorted by ID (deterministic sweep order).
	for i := 1; i < len(a); i++ {
		if a[i-1].ID >= a[i].ID {
			t.Fatalf("sample not sorted at %d: %s >= %s", i, a[i-1].ID, a[i].ID)
		}
	}
	c := spec.Generate(200, 7)
	diff := false
	for i := range a {
		if a[i].ID != c[i].ID {
			diff = true
			break
		}
	}
	if !diff {
		t.Errorf("different seeds produced the identical sample")
	}
	// Requesting more points than exist returns the full enumeration.
	all := spec.Generate(len(full)+10, 1)
	if len(all) != len(full) {
		t.Errorf("oversized request returned %d points, want %d", len(all), len(full))
	}
}

func TestHTGHash(t *testing.T) {
	g1 := buildGraph(t, tinyProgram)
	g2 := buildGraph(t, tinyProgram)
	if HTGHash(g1) != HTGHash(g2) {
		t.Errorf("identical programs hash differently")
	}
	other := buildGraph(t, strings.Replace(tinyProgram, "a[i] = (i * 7) % 23;", "a[i] = (i * 5) % 23;", 1))
	if HTGHash(g1) == HTGHash(other) {
		t.Errorf("different programs share a hash")
	}
	if len(HTGHash(g1)) != 32 {
		t.Errorf("hash length = %d, want 32 hex chars", len(HTGHash(g1)))
	}
}

func TestParetoFront(t *testing.T) {
	mk := func(id string, sp float64, cores int, e float64) PointSummary {
		return PointSummary{
			Point: Point{ID: id, Platform: platform.Homogeneous(id, 100, cores)},
			Cores: cores, GeoSpeedup: sp, MeanEnergyUJ: e,
		}
	}
	sums := []PointSummary{
		mk("a", 4.0, 4, 100), // front: best speedup
		mk("b", 3.0, 2, 60),  // front: fewer cores, less energy
		mk("c", 2.9, 2, 70),  // dominated by b
		mk("d", 4.0, 4, 120), // dominated by a
		mk("e", 1.0, 2, 10),  // front: cheapest energy
	}
	front := ParetoFront(sums)
	if len(front) != 3 {
		ids := make([]string, len(front))
		for i, s := range front {
			ids[i] = s.Point.ID
		}
		t.Fatalf("front = %v, want [a b e]", ids)
	}
	if front[0].Point.ID != "a" || front[1].Point.ID != "b" || front[2].Point.ID != "e" {
		t.Errorf("front order wrong: %s %s %s", front[0].Point.ID, front[1].Point.ID, front[2].Point.ID)
	}
	for _, s := range front {
		if !s.Pareto {
			t.Errorf("front member %s not marked Pareto", s.Point.ID)
		}
	}
	// Identical objective vectors both survive.
	dup := []PointSummary{mk("x", 2, 2, 50), mk("y", 2, 2, 50)}
	if got := ParetoFront(dup); len(got) != 2 {
		t.Errorf("equal points pruned: %d survivors, want 2", len(got))
	}
}

func TestMedian(t *testing.T) {
	if got := median(nil); got != 0 {
		t.Errorf("median(nil) = %g", got)
	}
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %g, want 2", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("even median = %g, want 2.5", got)
	}
}
