package dse

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mpsoc"
	"repro/internal/obs"
	"repro/internal/solstore"
)

// Workload is one prepared benchmark of the sweep: the analysis
// artifacts (compiled program, profile, HTG) are built once and shared
// read-only by every sweep point.
type Workload struct {
	Name     string
	Prepared *experiments.Prepared
	// Hash is the canonical HTG hash, the program's cache-key component.
	Hash string
}

// PrepareWorkload compiles, profiles and hashes one named bundled
// benchmark via the experiments package's prepared-benchmark path.
func PrepareWorkload(p *experiments.Prepared) *Workload {
	return &Workload{Name: p.Bench.Name, Prepared: p, Hash: HTGHash(p.Graph)}
}

// SweepConfig is the default parallelizer budget for sweep points: a
// much smaller problem size (clustering, candidate and task-bound caps)
// and branch-and-bound allowance than the single-program default — the
// sweep solves hundreds of pipelines, each within a few percent of its
// full-budget solution — with a timeout high enough that the
// deterministic node cap, never the wall clock, truncates searches.
// That keeps sweep outputs byte-identical across runs.
func SweepConfig() core.Config {
	return core.Config{
		MaxItemsPerILP:    8,
		MaxCandsPerClass:  3,
		MaxTasksPerRegion: 4,
		MaxILPNodes:       60,
		ILPTimeout:        120 * time.Second,
		ILPRelGap:         0.05,
	}
}

// Engine runs the sweep: every (point, workload) pair is one job on a
// bounded worker pool.
type Engine struct {
	// Workers bounds pool size (default runtime.NumCPU()).
	Workers int
	// Config is the parallelizer configuration (default SweepConfig()).
	Config core.Config
	// GA tunes the genetic-algorithm baseline (defaults apply).
	GA GAConfig
	// Seed derives every stochastic decision (the GA's randomness);
	// equal seeds give byte-identical sweep results.
	Seed int64
	// Cache, when non-nil, short-circuits repeated evaluations.
	Cache *Cache
	// Store, when non-nil, is the shared region-solve store threaded
	// into every evaluation's parallelizer config so neighboring sweep
	// points reuse region subproblems (and, when Cache is nil, it also
	// serves as the interior of the run's whole-solution cache). When
	// nil, the run shares the cache's interior store instead, so the
	// two layers always cooperate by default.
	Store *solstore.Store
	// Obs receives phase spans and solver/cache metrics (may be nil).
	Obs *obs.Observer
	// SkipAudit disables the per-evaluation race-and-budget audit of every
	// produced solution (internal/analysis); cached rows are re-audited on
	// recall only through their original evaluation.
	SkipAudit bool
}

// Row is one evaluated (point, workload) pair.
type Row struct {
	Point    Point
	Bench    string
	Outcome  Outcome
	CacheHit bool
}

// PointSummary aggregates one point across all workloads.
type PointSummary struct {
	Point Point
	// Cores is the platform's total core count.
	Cores int
	// GeoSpeedup is the geometric-mean measured speedup across
	// workloads (the sweep's merit figure).
	GeoSpeedup float64
	// MeanEnergyUJ is the arithmetic-mean simulated energy.
	MeanEnergyUJ float64
	// Limit is the platform's theoretical speedup bound for the
	// scenario.
	Limit float64
	// MedianGAGapPct is the median GA-vs-ILP objective gap.
	MedianGAGapPct float64
	// Pareto marks membership in the sweep's Pareto front.
	Pareto bool
}

// SweepResult is the complete outcome of one sweep.
type SweepResult struct {
	Rows      []Row
	Summaries []PointSummary
	// Front is the Pareto-optimal subset of Summaries under
	// (maximize GeoSpeedup, minimize Cores, minimize MeanEnergyUJ),
	// best speedup first.
	Front []PointSummary
	// CacheHits / CacheMisses count this run's whole-solution cache
	// outcomes.
	CacheHits, CacheMisses int
	// RegionHits / RegionMisses / RegionDedups count this run's
	// region-solve store outcomes (whole-solution cache traffic
	// excluded): hits are region ILPs served from the shared store
	// instead of re-solved, dedups are concurrent duplicate solves
	// collapsed in flight. Cross-point reuse shows up here — two
	// points sharing a platform share their entire region workload.
	RegionHits, RegionMisses, RegionDedups int
	// Workloads lists the swept benchmark names in order.
	Workloads []string
}

// HitRate returns the run's cache hit rate in [0, 1].
func (r *SweepResult) HitRate() float64 {
	n := r.CacheHits + r.CacheMisses
	if n == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(n)
}

// RegionHitRate returns the run's region-solve store hit rate in
// [0, 1].
func (r *SweepResult) RegionHitRate() float64 {
	n := r.RegionHits + r.RegionMisses
	if n == 0 {
		return 0
	}
	return float64(r.RegionHits) / float64(n)
}

// MedianGAGapPct returns the median per-row GA-vs-ILP gap of the sweep.
func (r *SweepResult) MedianGAGapPct() float64 {
	gaps := make([]float64, 0, len(r.Rows))
	for _, row := range r.Rows {
		gaps = append(gaps, row.Outcome.GAGapPct)
	}
	return median(gaps)
}

// Run executes the sweep over points × workloads. Jobs are independent
// and scheduled on min(Workers, NumCPU-bounded default) goroutines; a
// cancelled context stops the sweep at the next job boundary and
// returns the context error. The result is deterministic for equal
// (points, workloads, Config, GA, Seed) regardless of worker count.
func (e *Engine) Run(ctx context.Context, points []Point, workloads []*Workload) (*SweepResult, error) {
	if len(points) == 0 || len(workloads) == 0 {
		return nil, fmt.Errorf("dse: empty sweep (%d points, %d workloads)", len(points), len(workloads))
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.NumCPU() //repolint:allow numcpu (pool width only: points are independent and folded in point order)
	}
	store := e.Store
	cache := e.Cache
	if cache == nil {
		cache = NewCacheOn(store, "", e.Obs.M())
	}
	if store == nil {
		store = cache.Store()
	}
	sweep := e.Obs.T().Start("dse-sweep",
		obs.Int("points", len(points)),
		obs.Int("workloads", len(workloads)),
		obs.Int("workers", workers))
	defer sweep.End()

	type job struct{ pi, wi int }
	jobs := make([]job, 0, len(points)*len(workloads))
	for pi := range points {
		for wi := range workloads {
			jobs = append(jobs, job{pi, wi})
		}
	}
	rows := make([]Row, len(jobs))
	jobCh := make(chan int)
	var (
		wg      sync.WaitGroup
		errOnce sync.Once
		firstEr error
	)
	startHits, startMisses := cache.Stats()
	startStore := store.Stats()
	startTrafHits, startTrafMisses := cache.StoreTraffic()
	// Live sweep progress for the /metrics scrape surface: completed
	// jobs, throughput, remaining-work ETA and the running cache hit
	// ratio. All derived read-only from job completions — telemetry
	// only, never an input to any evaluation.
	m := e.Obs.M()
	completed := m.Counter("dse.points.completed")
	m.Gauge("dse.points.total").Set(float64(len(jobs)))
	sweepStart := time.Now() //repolint:allow timenow (throughput/ETA telemetry only)
	noteProgress := func() {
		if m == nil {
			return
		}
		done := float64(completed.Value())
		elapsed := time.Since(sweepStart).Seconds() //repolint:allow timenow
		if elapsed > 0 {
			rate := done / elapsed
			m.Gauge("dse.points.per_sec").Set(rate)
			if rate > 0 {
				m.Gauge("dse.sweep.eta_seconds").Set((float64(len(jobs)) - done) / rate)
			}
		}
		liveHits, liveMisses := cache.Stats()
		if n := liveHits - startHits + liveMisses - startMisses; n > 0 {
			m.Gauge("dse.cache.hit_ratio").Set(float64(liveHits-startHits) / float64(n))
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ji := range jobCh {
				j := jobs[ji]
				row, err := e.evaluate(points[j.pi], workloads[j.wi], cache, store)
				if err != nil {
					errOnce.Do(func() { firstEr = err })
					continue
				}
				rows[ji] = row
				completed.Inc()
				noteProgress()
			}
		}()
	}
	cancelled := false
feed:
	for ji := range jobs {
		// Check cancellation before offering the job so an
		// already-cancelled context never schedules new work (a select
		// with two ready cases picks randomly).
		select {
		case <-ctx.Done():
			cancelled = true
			break feed
		default:
		}
		select {
		case <-ctx.Done():
			cancelled = true
			break feed
		case jobCh <- ji:
		}
	}
	close(jobCh)
	wg.Wait()
	if cancelled {
		return nil, ctx.Err()
	}
	if firstEr != nil {
		return nil, firstEr
	}
	endHits, endMisses := cache.Stats()
	endStore := store.Stats()

	res := &SweepResult{Rows: rows, CacheHits: endHits - startHits, CacheMisses: endMisses - startMisses}
	// The store's counters mix region-solve traffic with the cache's
	// own lookups when the two layers share it; subtract the cache's
	// contribution so the Region* counters isolate region reuse.
	res.RegionHits = int(endStore.Hits - startStore.Hits)
	res.RegionMisses = int(endStore.Misses - startStore.Misses)
	res.RegionDedups = int(endStore.Dedups - startStore.Dedups)
	if cache.Store() == store {
		endTrafHits, endTrafMisses := cache.StoreTraffic()
		res.RegionHits -= endTrafHits - startTrafHits
		res.RegionMisses -= endTrafMisses - startTrafMisses
	}
	for _, w := range workloads {
		res.Workloads = append(res.Workloads, w.Name)
	}
	res.Summaries = summarize(points, workloads, rows)
	res.Front = ParetoFront(res.Summaries)
	mark := map[string]bool{}
	for _, s := range res.Front {
		mark[s.Point.ID] = true
	}
	for i := range res.Summaries {
		res.Summaries[i].Pareto = mark[res.Summaries[i].Point.ID]
	}
	e.Obs.M().Gauge("dse.cache.hit_rate").Set(res.HitRate())
	e.Obs.M().Gauge("dse.region_store.hit_rate").Set(res.RegionHitRate())
	e.Obs.M().Gauge("dse.ga.median_gap_pct").Set(res.MedianGAGapPct())
	sweep.SetAttr(
		obs.Int("cache_hits", res.CacheHits),
		obs.Int("cache_misses", res.CacheMisses),
		obs.Int("region_hits", res.RegionHits),
		obs.Int("region_misses", res.RegionMisses),
		obs.Int("region_dedups", res.RegionDedups),
		obs.Float("ga_median_gap_pct", res.MedianGAGapPct()))
	return res, nil
}

// evaluate runs (or recalls) one sweep job: ILP parallelization,
// simulation, and the GA baseline with its quality gap.
func (e *Engine) evaluate(pt Point, w *Workload, cache *Cache, store *solstore.Store) (Row, error) {
	mainClass := pt.Scenario.MainClass(pt.Platform)
	key := CacheKey(w.Hash, pt.Platform, mainClass, e.Config)
	if out, ok := cache.Get(key); ok {
		return Row{Point: pt, Bench: w.Name, Outcome: out, CacheHit: true}, nil
	}
	span := e.Obs.T().Start("dse-point",
		obs.String("point", pt.ID), obs.String("bench", w.Name))
	defer span.End()
	start := time.Now() //repolint:allow timenow (row-duration telemetry only)

	cfg := e.Config
	cfg.Metrics = e.Obs.M()
	cfg.Events = e.Obs.E()
	if cfg.Store == nil {
		// Share region subproblems across sweep points: two points on
		// the same platform (or any pair whose regions reduce to the
		// same solver-visible numbers) reuse each other's region
		// solves. Output-neutral, so the whole-solution CacheKey is
		// unaffected.
		cfg.Store = store
	}
	if !e.SkipAudit {
		cfg.Audit = analysis.AuditResult
	}
	res, err := core.Parallelize(w.Prepared.Graph, pt.Platform, mainClass, core.Heterogeneous, cfg)
	if err != nil {
		return Row{}, fmt.Errorf("dse: %s on %s: %w", w.Name, pt.ID, err)
	}
	sim := mpsoc.New(pt.Platform, false)
	meas, err := sim.Run(res.Best, mainClass)
	if err != nil {
		return Row{}, fmt.Errorf("dse: simulate %s on %s: %w", w.Name, pt.ID, err)
	}
	seq := sim.SequentialBaseline(w.Prepared.Graph, mainClass)
	ilpEst := res.EstimatedSpeedup(w.Prepared.Graph)
	ga := RunGA(w.Prepared.Graph, pt.Platform, mainClass, e.GA, gaSeed(e.Seed, key))
	gap := 0.0
	if ilpEst > 0 {
		gap = 100 * (ilpEst - ga.Speedup) / ilpEst
	}
	out := Outcome{
		Speedup:            mpsoc.Speedup(seq, meas.MakespanNs),
		EstimatedSpeedup:   ilpEst,
		MakespanNs:         meas.MakespanNs,
		SequentialNs:       seq,
		EnergyUJ:           meas.EnergyUJ,
		SequentialEnergyUJ: sim.SequentialEnergyUJ(w.Prepared.Graph, mainClass),
		NumTasks:           res.Best.NumTasks,
		NumILPs:            res.Stats.NumILPs,
		GASpeedup:          ga.Speedup,
		GAGapPct:           gap,
	}
	if err := cache.Put(key, out); err != nil {
		return Row{}, err
	}
	e.Obs.M().Histogram("dse.point.duration").Observe(time.Since(start))
	span.SetAttr(obs.Float("speedup", out.Speedup), obs.Float("ga_gap_pct", gap))
	return Row{Point: pt, Bench: w.Name, Outcome: out}, nil
}

// gaSeed mixes the sweep seed with a job's cache key so each job gets
// an independent, order-insensitive random stream.
func gaSeed(seed int64, key string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", seed, key)
	return int64(h.Sum64())
}

// summarize folds rows into per-point aggregates in point order.
func summarize(points []Point, workloads []*Workload, rows []Row) []PointSummary {
	nw := len(workloads)
	out := make([]PointSummary, len(points))
	for pi, pt := range points {
		s := PointSummary{
			Point: pt,
			Cores: pt.Platform.NumCores(),
			Limit: pt.Platform.TheoreticalSpeedup(pt.Scenario.MainClass(pt.Platform)),
		}
		logSum := 0.0
		gaps := make([]float64, 0, nw)
		for wi := 0; wi < nw; wi++ {
			o := rows[pi*nw+wi].Outcome
			sp := o.Speedup
			if sp <= 0 {
				sp = 1e-9
			}
			logSum += logOf(sp)
			s.MeanEnergyUJ += o.EnergyUJ
			gaps = append(gaps, o.GAGapPct)
		}
		s.GeoSpeedup = expOf(logSum / float64(nw))
		s.MeanEnergyUJ /= float64(nw)
		s.MedianGAGapPct = median(gaps)
		out[pi] = s
	}
	return out
}
