package analysis

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/htg"
	"repro/internal/minic"
	"repro/internal/platform"
)

// testPlatform: one main core (class 0) and one faster helper (class 1).
func testPlatform() *platform.Platform {
	return &platform.Platform{
		Name: "verify-test",
		Classes: []platform.ProcClass{
			{Name: "main@100", MHz: 100, Count: 1, CPIFactor: 1},
			{Name: "help@500", MHz: 500, Count: 1, CPIFactor: 1},
		},
		BusLatencyNs:  50,
		BusBytesPerNs: 1,
		TaskCreateNs:  100,
	}
}

func globalInt(name string) *minic.Symbol {
	return &minic.Symbol{Name: name, Kind: minic.SymGlobal, Type: minic.ScalarType(minic.Int)}
}

// fixture builds a two-child region: A writes x, B reads x (flow
// dependence A -> B with a matching HTG edge), plus the fork-join plan
// that runs A on the main core and B on the helper.
type fixture struct {
	root, a, b *htg.Node
	sol        *core.Solution
}

func makeFixture() *fixture {
	x := globalInt("x")
	a := &htg.Node{
		ID: 1, Kind: htg.KindSimple, Label: "A",
		Count: 1, TotalCount: 1, SelfCycles: 1000, SubtreeCycles: 1000,
		Acc: &dataflow.Accesses{Reads: dataflow.SymSet{}, Writes: dataflow.SymSet{x: true}},
	}
	b := &htg.Node{
		ID: 2, Kind: htg.KindSimple, Label: "B",
		Count: 1, TotalCount: 1, SelfCycles: 2000, SubtreeCycles: 2000,
		Acc:     &dataflow.Accesses{Reads: dataflow.SymSet{x: true}, Writes: dataflow.SymSet{}},
		InBytes: 4, OutBytes: 4,
	}
	a.Edges = []*htg.Edge{{From: a, To: b, Kind: dataflow.DepFlow, Bytes: 4}}
	root := &htg.Node{
		ID: 0, Kind: htg.KindRoot, Label: "main",
		Count: 1, TotalCount: 1, SubtreeCycles: 3000,
		Children: []*htg.Node{a, b},
	}
	a.Parent, b.Parent = root, root
	sol := &core.Solution{
		Node:      root,
		Kind:      core.KindTaskParallel,
		MainClass: 0,
		// Generously above any recomputation: the audit only rejects
		// claims *below* what the cost model supports.
		TimeNs:    1e12,
		ProcsUsed: []int{1, 1},
		NumTasks:  2,
		Tasks: []*core.TaskPlan{
			{Class: 0, Items: []*core.ItemPlan{{Child: a}}},
			{Class: 1, Items: []*core.ItemPlan{{Child: b}}},
		},
	}
	return &fixture{root: root, a: a, b: b, sol: sol}
}

func hasViolation(vs []Violation, kind string) bool {
	for _, v := range vs {
		if v.Kind == kind {
			return true
		}
	}
	return false
}

func TestVerifyCleanPlan(t *testing.T) {
	f := makeFixture()
	if vs := VerifySolution(f.sol, testPlatform()); len(vs) != 0 {
		t.Fatalf("clean plan flagged: %v", vs)
	}
}

// Dropping the ordering edge leaves the conflicting pair unsynchronized:
// the simulator would never wait for A before running B.
func TestVerifyCatchesDroppedOrderingEdge(t *testing.T) {
	f := makeFixture()
	f.a.Edges = nil
	vs := VerifySolution(f.sol, testPlatform())
	if !hasViolation(vs, "race") {
		t.Fatalf("dropped edge not reported as race: %v", vs)
	}
}

// Swapping the tasks puts the producer in a later task than the consumer:
// the simulator runs tasks in index order, so B would read stale data.
func TestVerifyCatchesProducerAfterConsumer(t *testing.T) {
	f := makeFixture()
	f.sol.Tasks = []*core.TaskPlan{
		{Class: 0, Items: []*core.ItemPlan{{Child: f.b}}},
		{Class: 1, Items: []*core.ItemPlan{{Child: f.a}}},
	}
	vs := VerifySolution(f.sol, testPlatform())
	if !hasViolation(vs, "race") {
		t.Fatalf("producer-after-consumer not reported: %v", vs)
	}
}

// Within one task, items must appear in dependence order.
func TestVerifyCatchesSameTaskOrder(t *testing.T) {
	f := makeFixture()
	f.sol.Tasks = []*core.TaskPlan{
		{Class: 0, Items: []*core.ItemPlan{{Child: f.b}, {Child: f.a}}},
	}
	f.sol.NumTasks = 1
	f.sol.ProcsUsed = []int{1, 0}
	vs := VerifySolution(f.sol, testPlatform())
	if !hasViolation(vs, "order") {
		t.Fatalf("same-task misordering not reported: %v", vs)
	}
}

// Mapping two extracted tasks onto a class with a single unit overdraws
// the Eq. 16 budget.
func TestVerifyCatchesOverBudgetMapping(t *testing.T) {
	f := makeFixture()
	c := &htg.Node{
		ID: 3, Kind: htg.KindSimple, Label: "C",
		Count: 1, TotalCount: 1, SubtreeCycles: 500,
		Acc:    &dataflow.Accesses{Reads: dataflow.SymSet{}, Writes: dataflow.SymSet{}},
		Parent: f.root,
	}
	f.root.Children = append(f.root.Children, c)
	f.sol.Tasks = append(f.sol.Tasks, &core.TaskPlan{
		Class: 1, Items: []*core.ItemPlan{{Child: c}},
	})
	f.sol.NumTasks = 3
	f.sol.ProcsUsed = []int{1, 2} // honest accounting; still over budget
	vs := VerifySolution(f.sol, testPlatform())
	if !hasViolation(vs, "budget") {
		t.Fatalf("over-budget class mapping not reported: %v", vs)
	}
}

// Under-reporting the processor allocation is caught even when the real
// allocation would fit the budget.
func TestVerifyCatchesProcsMismatch(t *testing.T) {
	f := makeFixture()
	f.sol.ProcsUsed = []int{1, 0}
	vs := VerifySolution(f.sol, testPlatform())
	if !hasViolation(vs, "procs") {
		t.Fatalf("processor accounting mismatch not reported: %v", vs)
	}
}

// A claimed makespan below the cost-model recomputation is rejected.
func TestVerifyCatchesUnderstatedCost(t *testing.T) {
	f := makeFixture()
	f.sol.TimeNs = 1
	vs := VerifySolution(f.sol, testPlatform())
	if !hasViolation(vs, "cost") {
		t.Fatalf("understated cost not reported: %v", vs)
	}
}

// Splitting the iteration space of a loop that carries dependences is a
// race regardless of the bookkeeping.
func TestVerifyCatchesChunkedNonDOALL(t *testing.T) {
	loop := &htg.Node{
		ID: 1, Kind: htg.KindLoop, Label: "for_1",
		Count: 1, TotalCount: 1, SubtreeCycles: 10000,
		Loop: &dataflow.LoopInfo{Parallel: false, Reason: "loop carries a dependence across iterations"},
	}
	body := &htg.Node{
		ID: 2, Kind: htg.KindSimple, Label: "body",
		Count: 64, TotalCount: 64, SubtreeCycles: 150,
		Acc:    &dataflow.Accesses{Reads: dataflow.SymSet{}, Writes: dataflow.SymSet{}},
		Parent: loop,
	}
	loop.Children = []*htg.Node{body}
	sol := &core.Solution{
		Node: loop, Kind: core.KindChunked, MainClass: 0,
		TimeNs: 1e12, ProcsUsed: []int{1, 1}, NumTasks: 2,
		Tasks: []*core.TaskPlan{
			{Class: 0, Items: []*core.ItemPlan{{Child: loop, ChunkFrac: 0.5}}},
			{Class: 1, Items: []*core.ItemPlan{{Child: loop, ChunkFrac: 0.5}}},
		},
	}
	vs := VerifySolution(sol, testPlatform())
	if !hasViolation(vs, "race") {
		t.Fatalf("chunked non-DOALL loop not reported: %v", vs)
	}
	// With the parallelism proven, the same plan is clean.
	loop.Loop = &dataflow.LoopInfo{Parallel: true}
	if vs := VerifySolution(sol, testPlatform()); len(vs) != 0 {
		t.Fatalf("clean chunked plan flagged: %v", vs)
	}
	// ...unless the fractions fail to cover the iteration space.
	sol.Tasks[1].Items[0].ChunkFrac = 0.25
	if vs := VerifySolution(sol, testPlatform()); !hasViolation(vs, "structure") {
		t.Fatalf("short chunk coverage not reported: %v", vs)
	}
}

// AuditResult adapts violations into a hard error for the Audit hook.
func TestAuditResultReportsError(t *testing.T) {
	f := makeFixture()
	f.a.Edges = nil
	res := &core.Result{
		Best:     f.sol,
		Sets:     map[*htg.Node]*core.SolutionSet{},
		Platform: testPlatform(),
	}
	err := AuditResult(res)
	if err == nil {
		t.Fatal("corrupted result passed the audit")
	}
}
