package analysis

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/dataflow"
	"repro/internal/htg"
	"repro/internal/interp"
	"repro/internal/minic"
	"repro/internal/platform"
)

// TestSectionSoundnessUTDSP is the end-to-end soundness oracle for the
// array-section analysis: every UTDSP benchmark is executed by the
// reference interpreter with concrete footprint recording, and every HTG
// node's statically derived sections must over-approximate the elements the
// node actually touched. The sweep runs under both platform configs and
// both scenarios — sections are platform-independent, and the sweep pins
// that graph construction is too. Every edge the section analysis dropped
// is additionally re-proven disjoint by the verifier's independent
// enumerator. An under-approximation is minimized to the deepest violating
// statement and fails the suite hard.
func TestSectionSoundnessUTDSP(t *testing.T) {
	specs := []struct {
		name string
		pf   func() *platform.Platform
		sc   platform.Scenario
	}{
		{"A/I", platform.ConfigA, platform.ScenarioAccelerator},
		{"A/II", platform.ConfigA, platform.ScenarioSlowerCores},
		{"B/I", platform.ConfigB, platform.ScenarioAccelerator},
		{"B/II", platform.ConfigB, platform.ScenarioSlowerCores},
	}
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := minic.Compile(b.Source)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			in := interp.New(prog)
			in.RecordFootprints = true
			prof, err := in.Run()
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if len(prof.Footprints) == 0 {
				t.Fatalf("no footprints recorded")
			}
			for _, spec := range specs {
				_ = spec.pf().Name // sections must not depend on the platform
				_ = spec.sc
				g, err := htg.Build(prog, prof, htg.Config{})
				if err != nil {
					t.Fatalf("%s: Build: %v", spec.name, err)
				}
				checkGraphSections(t, b.Name+" "+spec.name, g, prof)
				for _, viol := range VerifyGraphSections(g) {
					t.Errorf("%s %s: %s", b.Name, spec.name, viol)
				}
			}
		})
	}
}

// checkGraphSections asserts, node by node, that static sections cover the
// dynamic footprint. Symbols are visited in ID order for deterministic
// failure output.
func checkGraphSections(t *testing.T, tag string, g *htg.Graph, prof *interp.Profile) {
	t.Helper()
	globals := make(map[*minic.Symbol]bool)
	for _, gd := range g.Program.Globals {
		globals[gd.Sym] = true
	}
	for _, n := range g.Nodes() {
		if n.Stmt == nil || n.Acc == nil {
			continue
		}
		fp := prof.Footprints[n.Stmt]
		if fp == nil {
			continue // never executed
		}
		checkSide(t, tag, g, n, fp.Reads, n.Acc.Reads, secMap(n, false), globals, "read", prof)
		checkSide(t, tag, g, n, fp.Writes, n.Acc.Writes, secMap(n, true), globals, "write", prof)
	}
}

func secMap(n *htg.Node, write bool) map[*minic.Symbol]dataflow.Section {
	if n.Secs == nil {
		return nil
	}
	if write {
		return n.Secs.Writes
	}
	return n.Secs.Reads
}

func checkSide(t *testing.T, tag string, g *htg.Graph, n *htg.Node,
	dyn map[*minic.Symbol]map[int]struct{}, acc dataflow.SymSet,
	secs map[*minic.Symbol]dataflow.Section, globals map[*minic.Symbol]bool,
	side string, prof *interp.Profile) {
	t.Helper()
	syms := make([]*minic.Symbol, 0, len(dyn))
	//repolint:allow maprange — order restored by the sort below.
	for sym := range dyn {
		syms = append(syms, sym)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i].ID < syms[j].ID })
	for _, sym := range syms {
		if !acc.Has(sym) {
			// Roots invisible to the node's access summary must be
			// callee-private locals; a global escaping the summary is an
			// under-approximation one level below the sections.
			if globals[sym] {
				t.Fatalf("%s: node n%d %q dynamically %ss global %s outside its access summary\n%s",
					tag, n.ID, n.Label, side, sym.Name, minimizeViolation(g, n, sym, dyn[sym], side, prof))
			}
			continue
		}
		sec := dataflow.SecOf(secs, sym)
		for _, off := range sortedOffsets(dyn[sym]) {
			if !sec.ContainsFlat(int64(off), sym) {
				t.Fatalf("%s: node n%d %q: static %s section %s of %s misses element %d\n%s",
					tag, n.ID, n.Label, side, sec, sym.Name, off,
					minimizeViolation(g, n, sym, dyn[sym], side, prof))
			}
		}
	}
}

func sortedOffsets(set map[int]struct{}) []int {
	out := make([]int, 0, len(set))
	//repolint:allow maprange — order restored by the sort below.
	for off := range set {
		out = append(out, off)
	}
	sort.Ints(out)
	return out
}

// minimizeViolation descends from the violating node's statement into its
// sub-statements, re-deriving sections per statement, to locate the deepest
// statement whose own sections still under-approximate its own footprint.
// The resulting chain is the minimized reproduction: the smallest program
// fragment that exhibits the unsoundness, with concrete counterexample
// elements.
func minimizeViolation(g *htg.Graph, n *htg.Node, sym *minic.Symbol,
	offsets map[int]struct{}, side string, prof *interp.Profile) string {
	var sb strings.Builder
	sb.WriteString("minimized repro:\n")
	cur := n.Stmt
	for depth := 0; cur != nil && depth < 32; depth++ {
		fmt.Fprintf(&sb, "  %s%s at %s\n", strings.Repeat("  ", depth), stmtKind(cur), cur.NodePos())
		next := deepestViolating(g, cur, sym, side, prof)
		if next == nil {
			break
		}
		cur = next
	}
	if cur != nil {
		secs := dataflow.StmtSections(cur, g.Sums, g.Secs)
		sec := dataflow.WholeSection
		if secs != nil {
			m := secs.Reads
			if side == "write" {
				m = secs.Writes
			}
			sec = dataflow.SecOf(m, sym)
		}
		offs := sortedOffsets(offsets)
		if len(offs) > 8 {
			offs = offs[:8]
		}
		fmt.Fprintf(&sb, "  deepest stmt claims %s %s of %s; dynamic elements %v\n",
			side, sec, sym.Name, offs)
	}
	return sb.String()
}

// deepestViolating returns a child statement of s whose own derived section
// for sym still misses part of its own dynamic footprint, or nil when the
// violation does not localize further.
func deepestViolating(g *htg.Graph, s minic.Stmt, sym *minic.Symbol, side string, prof *interp.Profile) minic.Stmt {
	for _, c := range childStmts(s) {
		fp := prof.Footprints[c]
		if fp == nil {
			continue
		}
		dyn := fp.Reads
		if side == "write" {
			dyn = fp.Writes
		}
		set, ok := dyn[sym]
		if !ok {
			continue
		}
		secs := dataflow.StmtSections(c, g.Sums, g.Secs)
		sec := dataflow.WholeSection
		if secs != nil {
			m := secs.Reads
			if side == "write" {
				m = secs.Writes
			}
			sec = dataflow.SecOf(m, sym)
		}
		for _, off := range sortedOffsets(set) {
			if !sec.ContainsFlat(int64(off), sym) {
				return c
			}
		}
	}
	return nil
}

func childStmts(s minic.Stmt) []minic.Stmt {
	switch st := s.(type) {
	case *minic.BlockStmt:
		return st.Stmts
	case *minic.ForStmt:
		var out []minic.Stmt
		if st.Init != nil {
			out = append(out, st.Init)
		}
		out = append(out, st.Body.Stmts...)
		return out
	case *minic.WhileStmt:
		return st.Body.Stmts
	case *minic.IfStmt:
		out := append([]minic.Stmt{}, st.Then.Stmts...)
		if st.Else != nil {
			out = append(out, st.Else)
		}
		return out
	}
	return nil
}

func stmtKind(s minic.Stmt) string {
	return strings.TrimPrefix(fmt.Sprintf("%T", s), "*minic.")
}
