package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/htg"
	"repro/internal/minic"
	"repro/internal/platform"
)

// Violation is one structural defect found in a parallelization solution:
// a conflicting-access pair without an enforced ordering, a cyclic task
// dependence, an overdrawn per-class core budget, a processor-accounting
// mismatch, or a claimed critical-path cost the platform cost model cannot
// reproduce.
type Violation struct {
	// Node is the HTG region node the defective solution belongs to.
	Node *htg.Node
	// Sol is the offending solution (the outermost one when the defect is
	// found while recursing into sub-solutions).
	Sol *core.Solution
	// Kind classifies the defect: "race", "order", "cycle", "budget",
	// "procs", "cost", "class" or "structure".
	Kind string
	// Msg describes the defect.
	Msg string
}

// String renders the violation for error output.
func (v Violation) String() string {
	label := "<root>"
	if v.Node != nil && v.Node.Label != "" {
		label = v.Node.Label
	}
	if v.Sol == nil {
		return fmt.Sprintf("%s: %s: %s", label, v.Kind, v.Msg)
	}
	return fmt.Sprintf("%s: %s: %s [%s]", label, v.Kind, v.Msg, v.Sol)
}

// costRelTol absorbs the floating-point drift between the ILP's constraint
// accumulation order and the verifier's recomputation. costAbsTolNs guards
// near-zero costs. claimedRelTol is looser: incumbents pass the solver's
// feasibility check at 1e-5 over rows whose big-M coefficients dwarf the
// final objective, so a claimed makespan may sit a few parts in 1e5 below
// the exact recomputation without being corrupt. Genuine corruption (a
// dropped task, a wrong class) moves the cost by whole percents.
const (
	costRelTol    = 1e-6
	costAbsTolNs  = 1e-3
	claimedRelTol = 1e-4
)

// VerifySolution audits one solution tree against the platform cost model:
// every pair of items with conflicting accesses (write/read, write/write
// per the dataflow def/use sets) must carry an ordering the simulator
// enforces, the induced cross-task dependence graph must be acyclic, the
// per-class processor allocation must match a recomputation and fit the
// platform's core budgets (Eq. 12-16), and the claimed critical-path cost
// must be reachable from an independent recomputation of the cost model.
// Sub-solutions of items are verified recursively.
func VerifySolution(sol *core.Solution, pf *platform.Platform) []Violation {
	v := &verifier{pf: pf, seen: map[*core.Solution]bool{}}
	v.solution(sol)
	return v.out
}

// VerifyResult audits the chosen solution plus every candidate in every
// per-node parallel set of a core.Result, against the result's own
// platform (the uniform pseudo-platform for the homogeneous baseline).
// The returned violations are deterministic: sets are visited in HTG node
// ID order, candidates in set order.
func VerifyResult(res *core.Result) []Violation {
	v := &verifier{pf: res.Platform, seen: map[*core.Solution]bool{}}
	if res.Best == nil {
		v.add(nil, nil, "structure", "result has no chosen solution")
	} else {
		v.solution(res.Best)
	}
	nodes := make([]*htg.Node, 0, len(res.Sets))
	//repolint:allow maprange — order restored by the sort below.
	for n := range res.Sets {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	for _, n := range nodes {
		set := res.Sets[n]
		for c, cands := range set.ByClass {
			for _, cand := range cands {
				if cand.MainClass != c {
					v.add(n, cand, "structure",
						fmt.Sprintf("candidate filed under class %d has main class %d", c, cand.MainClass))
				}
				v.solution(cand)
			}
		}
	}
	return v.out
}

// AuditResult adapts VerifyResult to the core.Config.Audit hook: it
// returns nil for a clean result and an error carrying every violation
// otherwise, turning structural defects into hard errors.
func AuditResult(res *core.Result) error {
	vs := VerifyResult(res)
	if len(vs) == 0 {
		return nil
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "analysis: solution audit found %d violation(s):", len(vs))
	for i, viol := range vs {
		if i == 20 {
			fmt.Fprintf(&sb, "\n  ... %d more", len(vs)-i)
			break
		}
		sb.WriteString("\n  " + viol.String())
	}
	return fmt.Errorf("%s", sb.String())
}

// verifier carries the audit state; seen memoizes sub-solutions shared
// between candidate sets so each is verified once.
type verifier struct {
	pf   *platform.Platform
	out  []Violation
	seen map[*core.Solution]bool
	// fps memoizes per-statement footprints enumerated by the independent
	// section re-derivation (sections.go); nil entries are failed proofs.
	fps map[minic.Stmt]*footprint
}

func (v *verifier) add(n *htg.Node, sol *core.Solution, kind, msg string) {
	v.out = append(v.out, Violation{Node: n, Sol: sol, Kind: kind, Msg: msg})
}

func (v *verifier) solution(sol *core.Solution) {
	if sol == nil || v.seen[sol] {
		return
	}
	v.seen[sol] = true
	if sol.MainClass < 0 || sol.MainClass >= len(v.pf.Classes) {
		v.add(sol.Node, sol, "structure", fmt.Sprintf("main class %d out of range", sol.MainClass))
		return
	}
	switch sol.Kind {
	case core.KindSequential:
		v.sequential(sol, 1)
	case core.KindTaskParallel:
		v.taskParallel(sol)
	case core.KindChunked:
		v.chunked(sol)
	case core.KindPipelined:
		v.pipelined(sol)
	default:
		v.add(sol.Node, sol, "structure", fmt.Sprintf("unknown solution kind %d", int(sol.Kind)))
	}
}

// sequential checks the closed-form sequential cost and the trivial
// processor allocation. frac scales the expected cost for iteration-chunk
// candidates (1 for whole-node solutions).
func (v *verifier) sequential(sol *core.Solution, frac float64) {
	if sol.NumTasks != 1 || len(sol.Tasks) != 0 {
		v.add(sol.Node, sol, "structure", "sequential solution with a task plan")
		return
	}
	if sol.Node == nil {
		v.add(nil, sol, "structure", "sequential solution without a node")
		return
	}
	want := float64(sol.Node.TotalCount) * sol.Node.CostNanosOn(v.pf.Classes[sol.MainClass]) * frac
	if math.Abs(sol.TimeNs-want) > want*costRelTol+costAbsTolNs {
		v.add(sol.Node, sol, "cost",
			fmt.Sprintf("sequential cost %.3fns differs from cost-model %.3fns", sol.TimeNs, want))
	}
	for c := range v.pf.Classes {
		want := 0
		if c == sol.MainClass {
			want = 1
		}
		if got := procAt(sol.ProcsUsed, c); got != want {
			v.add(sol.Node, sol, "procs",
				fmt.Sprintf("sequential solution claims %d class-%d unit(s), want %d", got, c, want))
		}
	}
}

// checkClaimed flags a claimed critical-path cost below what the cost
// model supports. (A claim above the recomputation is legal: the solver
// may stop at a feasible incumbent whose auxiliary variables carry slack.)
func (v *verifier) checkClaimed(sol *core.Solution, recomputed float64) {
	if recomputed > sol.TimeNs*(1+claimedRelTol)+costAbsTolNs {
		v.add(sol.Node, sol, "cost",
			fmt.Sprintf("claimed cost %.3fns is below the cost-model recomputation %.3fns", sol.TimeNs, recomputed))
	}
}

// shape validates the invariants shared by every parallel kind and returns
// false when the plan is too malformed to analyze further.
func (v *verifier) shape(sol *core.Solution) bool {
	if sol.Node == nil {
		v.add(nil, sol, "structure", "parallel solution without a node")
		return false
	}
	if sol.NumTasks != len(sol.Tasks) {
		v.add(sol.Node, sol, "structure",
			fmt.Sprintf("NumTasks=%d but %d task plans", sol.NumTasks, len(sol.Tasks)))
	}
	if len(sol.Tasks) == 0 {
		v.add(sol.Node, sol, "structure", "parallel solution without tasks")
		return false
	}
	for ti, tp := range sol.Tasks {
		if tp.Class < 0 || tp.Class >= len(v.pf.Classes) {
			v.add(sol.Node, sol, "structure", fmt.Sprintf("task %d class %d out of range", ti, tp.Class))
			return false
		}
	}
	if sol.Tasks[0].Class != sol.MainClass {
		v.add(sol.Node, sol, "class",
			fmt.Sprintf("main task runs on class %d, solution's main class is %d", sol.Tasks[0].Class, sol.MainClass))
	}
	return true
}

// procsAndBudget recomputes the per-class processor allocation (each
// task's own unit plus the maximum extra units its items' sub-solutions
// hold concurrently) and checks it against both the solution's claim and
// the platform budgets of Eq. 16.
func (v *verifier) procsAndBudget(sol *core.Solution) {
	nC := len(v.pf.Classes)
	re := make([]int, nC)
	for _, tp := range sol.Tasks {
		re[tp.Class]++
		extraMax := make([]int, nC)
		for _, it := range tp.Items {
			if it.Sub == nil {
				continue
			}
			for c, e := range it.Sub.ExtraProcs() {
				if c < nC && e > extraMax[c] {
					extraMax[c] = e
				}
			}
		}
		for c := range extraMax {
			re[c] += extraMax[c]
		}
	}
	for c := 0; c < nC; c++ {
		if got := procAt(sol.ProcsUsed, c); got != re[c] {
			v.add(sol.Node, sol, "procs",
				fmt.Sprintf("claimed %d class-%d unit(s), recomputed %d", got, c, re[c]))
		}
		if re[c] > v.pf.Classes[c].Count {
			v.add(sol.Node, sol, "budget",
				fmt.Sprintf("needs %d unit(s) of class %d (%s), platform has %d",
					re[c], c, v.pf.Classes[c].Name, v.pf.Classes[c].Count))
		}
	}
}

// place maps every statement item's HTG child to its (task, position) and
// recurses into sub-solutions; duplicate and missing children are
// structural violations. requireAll demands that every child of the region
// node is planned (true for statement and pipeline regions).
func (v *verifier) place(sol *core.Solution, requireAll bool) (taskOf, posOf map[*htg.Node]int) {
	taskOf = map[*htg.Node]int{}
	posOf = map[*htg.Node]int{}
	for ti, tp := range sol.Tasks {
		for pi, it := range tp.Items {
			if it.Child == nil {
				v.add(sol.Node, sol, "structure", fmt.Sprintf("task %d holds an item without a node", ti))
				continue
			}
			if it.ChunkFrac > 0 {
				v.add(sol.Node, sol, "structure",
					fmt.Sprintf("iteration chunk of %s inside a statement-level plan", it.Child.Label))
				continue
			}
			if prev, dup := taskOf[it.Child]; dup {
				v.add(sol.Node, sol, "structure",
					fmt.Sprintf("%s planned twice (tasks %d and %d)", it.Child.Label, prev, ti))
				continue
			}
			taskOf[it.Child] = ti
			posOf[it.Child] = pi
			if it.Sub != nil {
				if it.Sub.MainClass != tp.Class {
					v.add(sol.Node, sol, "class",
						fmt.Sprintf("%s's chosen candidate runs on class %d but its task %d is mapped to class %d",
							it.Child.Label, it.Sub.MainClass, ti, tp.Class))
				}
				v.solution(it.Sub)
			}
		}
	}
	if requireAll {
		for _, c := range sol.Node.Children {
			if _, ok := taskOf[c]; !ok {
				v.add(sol.Node, sol, "structure", fmt.Sprintf("child %s missing from the plan", c.Label))
			}
		}
	}
	return taskOf, posOf
}

// hasEdge reports a dependence edge from a to a later sibling b.
func hasEdge(a, b *htg.Node) bool {
	for _, e := range a.Edges {
		if e.To == b {
			return true
		}
	}
	return false
}

// maxChildIters returns the loop trip count the cost model uses: the
// maximum per-entry execution count over the children, at least 1.
func maxChildIters(n *htg.Node) float64 {
	iters := 0.0
	for _, c := range n.Children {
		if c.Count > iters {
			iters = c.Count
		}
	}
	if iters < 1 {
		iters = 1
	}
	return iters
}

// itemCost is the execution cost of one planned item on its task's class:
// the chosen sub-solution's cost, or the sequential cost-model time.
func (v *verifier) itemCost(it *core.ItemPlan, class int) float64 {
	if it.Sub != nil {
		return it.Sub.TimeNs
	}
	if it.Child == nil {
		return 0
	}
	frac := it.ChunkFrac
	if frac == 0 {
		frac = 1
	}
	return float64(it.Child.TotalCount) * it.Child.CostNanosOn(v.pf.Classes[class]) * frac
}

// taskParallel audits a fork-join statement partition: conflicting-access
// ordering, cross-task cycle-freeness, processor budgets, and the Eq. 8-11
// critical-path recomputation.
func (v *verifier) taskParallel(sol *core.Solution) {
	if !v.shape(sol) {
		return
	}
	node := sol.Node
	taskOf, posOf := v.place(sol, true)

	// Every conflicting pair needs an ordering the simulator enforces:
	// same task = program order of the task's items; different tasks = a
	// dependence edge consumed by producersReady AND the producer's task
	// simulated first (lower task index).
	kids := node.Children
	for i := 0; i < len(kids); i++ {
		for j := i + 1; j < len(kids); j++ {
			a, b := kids[i], kids[j]
			ta, aok := taskOf[a]
			tb, bok := taskOf[b]
			if !aok || !bok || a.Acc == nil || b.Acc == nil {
				continue
			}
			d := dataflow.DependsOn(a.Acc, b.Acc)
			if !d.Exists() {
				continue
			}
			if ta == tb {
				if posOf[a] >= posOf[b] {
					v.add(node, sol, "order",
						fmt.Sprintf("%s must run before %s (%s dependence) but task %d lists them in the wrong order",
							a.Label, b.Label, d.Kind, ta))
				}
				continue
			}
			if !hasEdge(a, b) {
				// The whole-symbol test conflicts but the HTG carries no
				// edge: the builder's section analysis claimed disjoint
				// elements. Re-prove that claim by independent concrete
				// enumeration before excusing the pair; an unprovable
				// missing edge is a race.
				if v.sectionExcused(a, b) {
					continue
				}
				v.add(node, sol, "race",
					fmt.Sprintf("%s (task %d) and %s (task %d) conflict (%s) but no dependence edge orders them",
						a.Label, ta, b.Label, tb, d.Kind))
			}
			if ta > tb {
				v.add(node, sol, "race",
					fmt.Sprintf("%s produces for %s (%s) but its task %d is simulated after the consumer's task %d",
						a.Label, b.Label, d.Kind, ta, tb))
			}
		}
	}

	// Cycle-freeness of the induced cross-task dependence graph.
	if cyc := taskCycle(sol.Tasks, node.Children, taskOf); cyc != nil {
		v.add(node, sol, "cycle",
			fmt.Sprintf("cross-task dependences form a cycle through tasks %v", cyc))
	}

	v.procsAndBudget(sol)

	// Critical-path recomputation (Eq. 8-11): per-task costs with spawn
	// overhead and boundary in-communication, predecessor chains over the
	// cross-task edges, out-communication at the join.
	spawnCount := float64(node.TotalCount)
	if node.Kind == htg.KindLoop {
		spawnCount *= maxChildIters(node)
	}
	spawnNs := spawnCount * v.pf.TaskCreateNs
	nT := len(sol.Tasks)
	cost := make([]float64, nT)
	outSum := make([]float64, nT)
	for ti, tp := range sol.Tasks {
		for _, it := range tp.Items {
			cost[ti] += v.itemCost(it, tp.Class)
			if ti != 0 && it.Child != nil {
				cost[ti] += v.pf.CommCostNs(it.Child.InBytes) * float64(it.Child.TotalCount)
				outSum[ti] += v.pf.CommCostNs(it.Child.OutBytes) * float64(it.Child.TotalCount)
			}
		}
		if ti != 0 {
			cost[ti] += spawnNs
		}
	}
	comm := make([]float64, nT)
	pred := make([][]bool, nT)
	for i := range pred {
		pred[i] = make([]bool, nT)
	}
	for _, a := range node.Children {
		ta, ok := taskOf[a]
		if !ok {
			continue
		}
		for _, e := range a.Edges {
			tb, ok := taskOf[e.To]
			if !ok || tb == ta {
				continue
			}
			if e.Bytes > 0 {
				comm[ta] += v.pf.CommCostNs(e.Bytes) * float64(e.To.TotalCount)
			}
			if ta < tb {
				pred[ta][tb] = true
			}
		}
	}
	accum := append([]float64(nil), cost...)
	for t := 0; t < nT; t++ {
		for u := 0; u < t; u++ {
			if pred[u][t] && accum[u]+comm[u]+cost[t] > accum[t] {
				accum[t] = accum[u] + comm[u] + cost[t]
			}
		}
	}
	exec := 0.0
	for t := 0; t < nT; t++ {
		if e := accum[t] + outSum[t]; e > exec {
			exec = e
		}
	}
	v.checkClaimed(sol, exec)
}

// taskCycle detects a cycle in the cross-task dependence digraph and
// returns the task indices on it (nil when acyclic).
func taskCycle(tasks []*core.TaskPlan, kids []*htg.Node, taskOf map[*htg.Node]int) []int {
	nT := len(tasks)
	adj := make([][]bool, nT)
	for i := range adj {
		adj[i] = make([]bool, nT)
	}
	for _, a := range kids {
		ta, ok := taskOf[a]
		if !ok {
			continue
		}
		for _, e := range a.Edges {
			if tb, ok := taskOf[e.To]; ok && tb != ta {
				adj[ta][tb] = true
			}
		}
	}
	state := make([]int, nT) // 0 new, 1 on stack, 2 done
	var stack []int
	var dfs func(t int) []int
	dfs = func(t int) []int {
		state[t] = 1
		stack = append(stack, t)
		for u := 0; u < nT; u++ {
			if !adj[t][u] {
				continue
			}
			if state[u] == 1 {
				for i, s := range stack {
					if s == u {
						return append(append([]int(nil), stack[i:]...), u)
					}
				}
			}
			if state[u] == 0 {
				if cyc := dfs(u); cyc != nil {
					return cyc
				}
			}
		}
		stack = stack[:len(stack)-1]
		state[t] = 2
		return nil
	}
	for t := 0; t < nT; t++ {
		if state[t] == 0 {
			if cyc := dfs(t); cyc != nil {
				return cyc
			}
		}
	}
	return nil
}

// chunked audits a DOALL iteration split: the loop must be provably
// parallel, the chunk fractions must cover the iteration space, and the
// makespan must match the per-task chunk-cost recomputation.
func (v *verifier) chunked(sol *core.Solution) {
	if !v.shape(sol) {
		return
	}
	node := sol.Node
	if node.Kind != htg.KindLoop || node.Loop == nil || !node.Loop.Parallel {
		reason := "it is not a loop"
		if node.Kind == htg.KindLoop {
			reason = "its iterations carry dependences"
			if node.Loop != nil && node.Loop.Reason != "" {
				reason = node.Loop.Reason
			}
		}
		v.add(node, sol, "race",
			fmt.Sprintf("iteration space of %s split across tasks but %s", node.Label, reason))
	}
	spawnNs := float64(node.TotalCount) * v.pf.TaskCreateNs
	fracSum := 0.0
	nT := len(sol.Tasks)
	cost := make([]float64, nT)
	for ti, tp := range sol.Tasks {
		for _, it := range tp.Items {
			if it.Child != node || it.ChunkFrac <= 0 {
				v.add(node, sol, "structure",
					fmt.Sprintf("task %d holds a non-chunk item in a chunked plan", ti))
				continue
			}
			fracSum += it.ChunkFrac
			if it.Sub != nil {
				if it.Sub.MainClass != tp.Class {
					v.add(node, sol, "class",
						fmt.Sprintf("chunk candidate runs on class %d but task %d is mapped to class %d",
							it.Sub.MainClass, ti, tp.Class))
				}
				if it.Sub.Kind == core.KindSequential {
					v.seen[it.Sub] = true
					v.sequential(it.Sub, it.ChunkFrac)
				} else {
					v.solution(it.Sub)
				}
			}
			cost[ti] += v.itemCost(it, tp.Class)
			if ti != 0 {
				cost[ti] += v.pf.CommCostNs(int(float64(node.InBytes)*it.ChunkFrac)) * float64(node.TotalCount)
				cost[ti] += v.pf.CommCostNs(int(float64(node.OutBytes)*it.ChunkFrac)) * float64(node.TotalCount)
			}
		}
		if ti != 0 {
			cost[ti] += spawnNs
		}
	}
	if math.Abs(fracSum-1) > 1e-6 {
		v.add(node, sol, "structure",
			fmt.Sprintf("chunk fractions cover %.6f of the iteration space, want 1", fracSum))
	}
	exec := 0.0
	for _, c := range cost {
		if c > exec {
			exec = c
		}
	}
	v.checkClaimed(sol, exec)
	v.procsAndBudget(sol)
}

// pipelined audits a software pipeline: stages must be monotone in program
// order, no loop-carried flow dependence may run backwards across stages,
// and the claimed makespan must match iterations x bottleneck + fill.
func (v *verifier) pipelined(sol *core.Solution) {
	if !v.shape(sol) {
		return
	}
	node := sol.Node
	if node.Kind != htg.KindLoop {
		v.add(node, sol, "structure", "pipelined solution for a non-loop node")
		return
	}
	iters := maxChildIters(node)
	taskOf, posOf := v.place(sol, true)

	kids := node.Children
	for i := 0; i < len(kids); i++ {
		for j := i + 1; j < len(kids); j++ {
			a, b := kids[i], kids[j]
			ta, aok := taskOf[a]
			tb, bok := taskOf[b]
			if !aok || !bok || a.Acc == nil || b.Acc == nil {
				continue
			}
			// A backward loop-carried flow (later child feeds an earlier
			// one in the next iteration) disqualifies pipelining entirely —
			// unless concrete enumeration re-proves the flow's element sets
			// disjoint (the builder dropped it by section analysis).
			if back := dataflow.DependsOn(b.Acc, a.Acc); back.Kind.Has(dataflow.DepFlow) && !v.flowExcused(b, a) {
				v.add(node, sol, "race",
					fmt.Sprintf("%s feeds %s across iterations: backward flow forbids pipelining", b.Label, a.Label))
			}
			d := dataflow.DependsOn(a.Acc, b.Acc)
			if !d.Exists() {
				continue
			}
			switch {
			case ta == tb:
				if posOf[a] >= posOf[b] {
					v.add(node, sol, "order",
						fmt.Sprintf("%s must run before %s (%s dependence) but stage %d lists them in the wrong order",
							a.Label, b.Label, d.Kind, ta))
				}
			case ta > tb:
				if !v.sectionExcused(a, b) {
					v.add(node, sol, "order",
						fmt.Sprintf("%s (stage %d) precedes %s (stage %d) in program order: stages must be monotone",
							a.Label, ta, b.Label, tb))
				}
			default:
				if !hasEdge(a, b) && !v.sectionExcused(a, b) {
					v.add(node, sol, "race",
						fmt.Sprintf("%s (stage %d) and %s (stage %d) conflict (%s) without a forwarding edge",
							a.Label, ta, b.Label, tb, d.Kind))
				}
			}
		}
	}

	// Makespan recomputation: per-iteration stage times including the
	// forwarding cost of edges leaving each stage; the pipeline runs
	// iters x bottleneck plus one fill pass plus the spawn overhead.
	spawnNs := float64(node.TotalCount) * v.pf.TaskCreateNs
	nT := len(sol.Tasks)
	stage := make([]float64, nT)
	for ti, tp := range sol.Tasks {
		for _, it := range tp.Items {
			stage[ti] += v.itemCost(it, tp.Class) / iters
			if it.Child == nil {
				continue
			}
			for _, e := range it.Child.Edges {
				if to, ok := taskOf[e.To]; ok && to != ti && e.Bytes > 0 {
					stage[ti] += v.pf.CommCostNs(e.Bytes) * float64(e.To.TotalCount) / iters
				}
			}
		}
	}
	bottleneck, fill := 0.0, spawnNs
	for _, st := range stage {
		fill += st
		if st > bottleneck {
			bottleneck = st
		}
	}
	v.checkClaimed(sol, iters*bottleneck+fill)
	v.procsAndBudget(sol)
}

// procAt reads a processor vector defensively.
func procAt(procs []int, c int) int {
	if c < 0 || c >= len(procs) {
		return 0
	}
	return procs[c]
}
