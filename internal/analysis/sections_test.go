package analysis

import (
	"strings"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/htg"
	"repro/internal/interp"
	"repro/internal/minic"
)

// mainStmts compiles src and returns main's top-level statements.
func mainStmts(t *testing.T, src string) (*minic.Program, []minic.Stmt) {
	t.Helper()
	prog, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog, prog.Func("main").Body.Stmts
}

func elemsOf(fp *footprint, m map[*minic.Symbol]elemSet, name string) []int {
	//repolint:allow maprange — keyed lookup by name, single match.
	for sym, set := range m {
		if sym.Name == name {
			out := make([]int, 0, len(set))
			for i := 0; i < 1<<16; i++ {
				if _, ok := set[i]; ok {
					out = append(out, i)
				}
			}
			return out
		}
	}
	return nil
}

// TestEnumFootprintLoop: the enumerator unrolls a constant loop and records
// the exact element sets, including through a call with a row-view
// argument.
func TestEnumFootprintLoop(t *testing.T) {
	_, stmts := mainStmts(t, `
float m[4][8]; float v[8];

void fill(float row[8], float x) {
    for (int k = 0; k < 8; k++) { row[k] = x; }
}

void main(void) {
    for (int i = 0; i < 3; i++) {
        fill(m[i], 1.0);
    }
    for (int j = 2; j < 8; j += 2) {
        v[j] = v[j - 1] + 1.0;
    }
}
`)
	fp, ok := enumFootprint(stmts[0])
	if !ok {
		t.Fatalf("loop with call should enumerate")
	}
	writes := elemsOf(fp, fp.writes, "m")
	if len(writes) != 24 || writes[0] != 0 || writes[23] != 23 {
		t.Errorf("rows 0-2 of m (elements 0..23) expected, got %d elems %v", len(writes), writes)
	}
	fp2, ok := enumFootprint(stmts[1])
	if !ok {
		t.Fatalf("strided loop should enumerate")
	}
	if got := elemsOf(fp2, fp2.writes, "v"); len(got) != 3 || got[0] != 2 || got[2] != 6 {
		t.Errorf("writes {2,4,6} expected, got %v", got)
	}
	if got := elemsOf(fp2, fp2.reads, "v"); len(got) != 3 || got[0] != 1 || got[2] != 5 {
		t.Errorf("reads {1,3,5} expected, got %v", got)
	}
}

// TestEnumFootprintSymbolicBoundFails: a loop bound read from an unknown
// global scalar cannot be enumerated — the proof must fail, not guess.
func TestEnumFootprintSymbolicBoundFails(t *testing.T) {
	_, stmts := mainStmts(t, `
float a[64]; int n;
void main(void) {
    for (int i = 0; i < n; i++) { a[i] = 0.0; }
}
`)
	if _, ok := enumFootprint(stmts[0]); ok {
		t.Fatalf("symbolic loop bound must not enumerate")
	}
}

// TestEnumFootprintUnknownBranchUnions: an unknown condition (array-valued)
// enumerates both arms, so the footprint covers both possible writes.
func TestEnumFootprintUnknownBranchUnions(t *testing.T) {
	_, stmts := mainStmts(t, `
float a[8]; float b[8];
void main(void) {
    if (b[0] > 0.0) { a[1] = 1.0; } else { a[5] = 2.0; }
}
`)
	fp, ok := enumFootprint(stmts[0])
	if !ok {
		t.Fatalf("unknown branch should still enumerate")
	}
	if got := elemsOf(fp, fp.writes, "a"); len(got) != 2 || got[0] != 1 || got[1] != 5 {
		t.Errorf("both arms' writes expected, got %v", got)
	}
	if got := elemsOf(fp, fp.reads, "b"); len(got) != 1 || got[0] != 0 {
		t.Errorf("condition read of b[0] expected, got %v", got)
	}
}

// TestVerifyGraphSectionsFlagsBogusDrop: a fabricated dropped edge between
// two statements that truly overlap must be reported — the enumerator is a
// genuine second opinion, not a rubber stamp.
func TestVerifyGraphSectionsFlagsBogusDrop(t *testing.T) {
	src := `
float u[64];
void main(void) {
    u[0] = 1.0;
    u[63] = 2.0;
    for (int i = 0; i < 64; i++) { u[i] = u[i] + 1.0; }
}
`
	prog, err := minic.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := interp.New(prog).Run()
	if err != nil {
		t.Fatal(err)
	}
	g, err := htg.Build(prog, prof, htg.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The genuine drops (disjoint single-element writes) must all be
	// re-proven.
	if len(g.Dropped) == 0 {
		t.Fatalf("expected the section analysis to drop the disjoint write pair")
	}
	if vs := VerifyGraphSections(g); len(vs) != 0 {
		t.Fatalf("genuine drops flagged: %v", vs)
	}
	// Fabricate a drop between the first write and the sweep loop — they
	// overlap at u[0], so the enumerator must refuse to excuse it.
	kids := g.Root.Children
	g.Dropped = append(g.Dropped, &htg.DroppedEdge{
		From: kids[0], To: kids[2], Kind: dataflow.DepFlow, WholeBytes: 4,
	})
	vs := VerifyGraphSections(g)
	if len(vs) != 1 {
		t.Fatalf("fabricated overlapping drop not flagged: %v", vs)
	}
	if vs[0].Kind != "section" || !strings.Contains(vs[0].Msg, "cannot be re-proven disjoint") {
		t.Errorf("unexpected violation: %v", vs[0])
	}
}
