package analysis

import (
	"fmt"
	"sort"

	"repro/internal/dataflow"
	"repro/internal/minic"
)

// Lint runs the advisory passes over a checked program and returns
// positioned warnings ordered by source position. The program must have
// passed minic.Check (symbols resolved); running Lint on an unchecked AST
// panics on nil symbols.
func Lint(prog *minic.Program) []minic.Diagnostic {
	sums := dataflow.Summarize(prog)
	l := &linter{prog: prog, sums: sums}
	for _, f := range prog.Funcs {
		l.lintFunc(f)
	}
	sort.SliceStable(l.diags, func(i, j int) bool {
		a, b := l.diags[i].Pos, l.diags[j].Pos
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	return l.diags
}

// LintSource parses, checks and lints src. Semantic errors are returned as
// error-severity diagnostics (the program is invalid and must be rejected);
// otherwise the lint warnings are returned. The error return is non-nil
// only for syntax errors, where no AST exists to report on.
func LintSource(src string) ([]minic.Diagnostic, error) {
	prog, err := minic.Parse(src)
	if err != nil {
		return nil, err
	}
	if diags := minic.CheckAll(prog); len(diags) > 0 {
		return diags, nil
	}
	return Lint(prog), nil
}

type linter struct {
	prog  *minic.Program
	sums  dataflow.Summaries
	diags []minic.Diagnostic
}

func (l *linter) warnf(pos minic.Pos, code, format string, args ...any) {
	l.diags = append(l.diags, minic.Diagnostic{
		Pos: pos, Sev: minic.SevWarning, Code: code, Msg: fmt.Sprintf(format, args...),
	})
}

func (l *linter) lintFunc(f *minic.FuncDecl) {
	l.checkUninit(f)
	l.checkBounds(f)
	l.checkUnused(f)
	l.checkUnreachable(f.Body)
}

// ---------------------------------------------------------------------------
// Pass 1: use of uninitialized variables (definite-assignment analysis).

// assignState tracks, per local symbol, whether it is definitely assigned
// (on every path) or maybe assigned (on some path) at the current point.
type assignState map[*minic.Symbol]uint8

const (
	maybeAssigned uint8 = 1 << iota
	defAssigned
)

func (s assignState) clone() assignState {
	c := make(assignState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// mergeBranches folds the two successor states of an if/else back into s:
// definitely assigned only where both branches assign, maybe assigned
// where either does.
func (s assignState) mergeBranches(a, b assignState) {
	for sym, av := range a {
		v := s[sym] | (av & maybeAssigned) | (av >> 1) // definite implies maybe
		if av&defAssigned != 0 && b[sym]&defAssigned != 0 {
			v |= defAssigned
		}
		s[sym] = v
	}
	for sym, bv := range b {
		s[sym] |= (bv & maybeAssigned) | (bv >> 1)
	}
}

// mergeMaybe folds a state reached on some-but-not-all paths (a loop body)
// into s, demoting its assignments to maybe.
func (s assignState) mergeMaybe(a assignState) {
	for sym, av := range a {
		if av != 0 {
			s[sym] |= maybeAssigned
		}
	}
}

// uninitChecker walks one function in execution order. Only reads of
// locals that are neither definitely nor maybe assigned are reported: a
// variable assigned on some earlier path is given the benefit of the
// doubt, which keeps the pass quiet on the common
// "declare; assign in loop; use after" shape while still catching reads
// that no execution can have initialized.
type uninitChecker struct {
	l        *linter
	locals   map[*minic.Symbol]bool
	reported map[*minic.Symbol]bool
}

func (l *linter) checkUninit(f *minic.FuncDecl) {
	u := &uninitChecker{
		l:        l,
		locals:   map[*minic.Symbol]bool{},
		reported: map[*minic.Symbol]bool{},
	}
	state := assignState{}
	u.block(f.Body, state)
}

func (u *uninitChecker) block(b *minic.BlockStmt, state assignState) {
	for _, s := range b.Stmts {
		u.stmt(s, state)
	}
}

func (u *uninitChecker) stmt(s minic.Stmt, state assignState) {
	switch st := s.(type) {
	case *minic.DeclStmt:
		if st.Init != nil {
			u.expr(st.Init, state)
		}
		for _, e := range st.List {
			u.expr(e, state)
		}
		if st.Sym != nil {
			u.locals[st.Sym] = true
			if st.Init != nil || len(st.List) > 0 {
				state[st.Sym] = defAssigned | maybeAssigned
			} else {
				state[st.Sym] = 0
			}
		}
	case *minic.ExprStmt:
		u.expr(st.X, state)
	case *minic.BlockStmt:
		u.block(st, state)
	case *minic.IfStmt:
		u.expr(st.Cond, state)
		thenSt := state.clone()
		u.block(st.Then, thenSt)
		elseSt := state.clone()
		if st.Else != nil {
			u.stmt(st.Else, elseSt)
		}
		state.mergeBranches(thenSt, elseSt)
	case *minic.ForStmt:
		if st.Init != nil {
			u.stmt(st.Init, state)
		}
		if st.Cond != nil {
			u.expr(st.Cond, state)
		}
		bodySt := state.clone()
		u.block(st.Body, bodySt)
		if st.Post != nil {
			u.expr(st.Post, bodySt)
		}
		state.mergeMaybe(bodySt)
	case *minic.WhileStmt:
		if st.DoWhile {
			// The body runs at least once: its assignments stay definite.
			u.block(st.Body, state)
			u.expr(st.Cond, state)
			return
		}
		u.expr(st.Cond, state)
		bodySt := state.clone()
		u.block(st.Body, bodySt)
		state.mergeMaybe(bodySt)
	case *minic.ReturnStmt:
		if st.Value != nil {
			u.expr(st.Value, state)
		}
	case *minic.BreakStmt, *minic.ContinueStmt:
	}
}

func (u *uninitChecker) expr(e minic.Expr, state assignState) {
	switch ex := e.(type) {
	case *minic.IntLit, *minic.FloatLit:
	case *minic.VarRef:
		u.read(ex.Sym, ex.Pos, state)
	case *minic.IndexExpr:
		for _, ix := range ex.Indices {
			u.expr(ix, state)
		}
		u.read(ex.Array.Sym, ex.Pos, state)
	case *minic.UnaryExpr:
		u.expr(ex.X, state)
	case *minic.BinaryExpr:
		u.expr(ex.X, state)
		u.expr(ex.Y, state)
	case *minic.CondExpr:
		u.expr(ex.Cond, state)
		thenSt := state.clone()
		u.expr(ex.Then, thenSt)
		elseSt := state.clone()
		u.expr(ex.Else, elseSt)
		state.mergeBranches(thenSt, elseSt)
	case *minic.CallExpr:
		u.call(ex, state)
	case *minic.AssignExpr:
		// RHS and any index expressions of the LHS are evaluated first.
		u.expr(ex.RHS, state)
		switch lhs := ex.LHS.(type) {
		case *minic.VarRef:
			if ex.Op != minic.TokAssign {
				u.read(lhs.Sym, lhs.Pos, state) // compound assignment reads first
			}
			u.assign(lhs.Sym, state)
		case *minic.IndexExpr:
			for _, ix := range lhs.Indices {
				u.expr(ix, state)
			}
			if ex.Op != minic.TokAssign {
				u.read(lhs.Array.Sym, lhs.Pos, state)
			}
			// An element write initializes "the array" for this
			// conservative, element-insensitive pass.
			u.assign(lhs.Array.Sym, state)
		}
	case *minic.IncDecExpr:
		switch x := ex.X.(type) {
		case *minic.VarRef:
			u.read(x.Sym, x.Pos, state)
			u.assign(x.Sym, state)
		case *minic.IndexExpr:
			for _, ix := range x.Indices {
				u.expr(ix, state)
			}
			u.read(x.Array.Sym, x.Pos, state)
			u.assign(x.Array.Sym, state)
		}
	case *minic.CastExpr:
		u.expr(ex.X, state)
	}
}

// call applies a callee's effect summary to array arguments: a read-effect
// parameter reads the argument array, a write-effect parameter initializes
// it. Scalar arguments are plain reads.
func (u *uninitChecker) call(ex *minic.CallExpr, state assignState) {
	if ex.Builtin != "" || ex.Fn == nil {
		for _, a := range ex.Args {
			u.expr(a, state)
		}
		return
	}
	eff := u.l.sums[ex.Fn]
	for i, a := range ex.Args {
		if i >= len(ex.Fn.Params) || !ex.Fn.Params[i].Type.IsArray() {
			u.expr(a, state)
			continue
		}
		var sym *minic.Symbol
		pos := a.NodePos()
		switch arg := a.(type) {
		case *minic.VarRef:
			sym = arg.Sym
		case *minic.IndexExpr:
			sym = arg.Array.Sym
			for _, ix := range arg.Indices {
				u.expr(ix, state)
			}
		}
		if sym == nil {
			continue
		}
		if eff == nil || eff.ParamRead[i] {
			u.read(sym, pos, state)
		}
		if eff == nil || eff.ParamWrite[i] {
			u.assign(sym, state)
		}
	}
}

func (u *uninitChecker) read(sym *minic.Symbol, pos minic.Pos, state assignState) {
	if sym == nil || !u.locals[sym] || state[sym] != 0 || u.reported[sym] {
		return
	}
	u.reported[sym] = true
	noun := "variable"
	if sym.Type.IsArray() {
		noun = "array"
	}
	u.l.warnf(pos, "uninit", "%s %s is used before it is assigned", noun, sym.Name)
}

func (u *uninitChecker) assign(sym *minic.Symbol, state assignState) {
	if sym == nil || !u.locals[sym] {
		return
	}
	state[sym] = defAssigned | maybeAssigned
}

// ---------------------------------------------------------------------------
// Pass 2: constant out-of-bounds indexing (interval analysis).
//
// The interval arithmetic and loop-range derivation are shared with the
// array-section dependence analysis (dataflow.Interval / dataflow.LoopRange)
// so lint and sections agree on one tested implementation.

type boundsChecker struct {
	l *linter
	// env maps induction variables in scope to their value range.
	env map[*minic.Symbol]dataflow.Interval
}

func (l *linter) checkBounds(f *minic.FuncDecl) {
	b := &boundsChecker{l: l, env: map[*minic.Symbol]dataflow.Interval{}}
	b.stmt(f.Body)
}

func (b *boundsChecker) stmt(s minic.Stmt) {
	switch st := s.(type) {
	case *minic.DeclStmt:
		if st.Init != nil {
			b.expr(st.Init)
		}
		for _, e := range st.List {
			b.expr(e)
		}
	case *minic.ExprStmt:
		b.expr(st.X)
	case *minic.BlockStmt:
		for _, inner := range st.Stmts {
			b.stmt(inner)
		}
	case *minic.IfStmt:
		b.expr(st.Cond)
		b.stmt(st.Then)
		if st.Else != nil {
			b.stmt(st.Else)
		}
	case *minic.ForStmt:
		if st.Init != nil {
			b.stmt(st.Init)
		}
		if st.Cond != nil {
			b.expr(st.Cond)
		}
		ind, iv, _, ok := dataflow.LoopRange(st, b.l.sums)
		if ok {
			prev, had := b.env[ind]
			b.env[ind] = iv
			b.stmt(st.Body)
			if st.Post != nil {
				b.expr(st.Post)
			}
			if had {
				b.env[ind] = prev
			} else {
				delete(b.env, ind)
			}
			return
		}
		b.stmt(st.Body)
		if st.Post != nil {
			b.expr(st.Post)
		}
	case *minic.WhileStmt:
		b.expr(st.Cond)
		b.stmt(st.Body)
	case *minic.ReturnStmt:
		if st.Value != nil {
			b.expr(st.Value)
		}
	case *minic.BreakStmt, *minic.ContinueStmt:
	}
}

func (b *boundsChecker) expr(e minic.Expr) {
	switch ex := e.(type) {
	case *minic.IntLit, *minic.FloatLit, *minic.VarRef:
	case *minic.IndexExpr:
		b.checkIndex(ex)
		for _, ix := range ex.Indices {
			b.expr(ix)
		}
	case *minic.UnaryExpr:
		b.expr(ex.X)
	case *minic.BinaryExpr:
		b.expr(ex.X)
		b.expr(ex.Y)
	case *minic.CondExpr:
		b.expr(ex.Cond)
		b.expr(ex.Then)
		b.expr(ex.Else)
	case *minic.CallExpr:
		for _, a := range ex.Args {
			b.expr(a)
		}
	case *minic.AssignExpr:
		b.expr(ex.LHS)
		b.expr(ex.RHS)
	case *minic.IncDecExpr:
		b.expr(ex.X)
	case *minic.CastExpr:
		b.expr(ex.X)
	}
}

// checkIndex bounds every dimension of one array access whose index is
// affine in interval-known symbols.
func (b *boundsChecker) checkIndex(ex *minic.IndexExpr) {
	sym := ex.Array.Sym
	if sym == nil || !sym.Type.IsArray() {
		return
	}
	for d, ixExpr := range ex.Indices {
		if d >= len(sym.Type.Dims) {
			return
		}
		extent := int64(sym.Type.Dims[d])
		if extent <= 0 {
			continue // unsized parameter dimension
		}
		af := dataflow.ToAffine(ixExpr)
		if !af.OK {
			continue
		}
		rng, known := dataflow.EvalAffine(af, b.env)
		if !known {
			continue
		}
		lo, hi := rng.Lo, rng.Hi
		if lo >= 0 && hi < extent {
			continue
		}
		if lo == hi {
			b.l.warnf(ex.Pos, "bounds",
				"index %d of %s dimension %d is out of bounds [0, %d)", lo, sym.Name, d, extent)
		} else {
			b.l.warnf(ex.Pos, "bounds",
				"index of %s dimension %d ranges %d..%d, outside [0, %d)", sym.Name, d, lo, hi, extent)
		}
	}
}

// ---------------------------------------------------------------------------
// Pass 3: unused locals.

func (l *linter) checkUnused(f *minic.FuncDecl) {
	reads := dataflow.StmtAccesses(f.Body, l.sums).Reads
	var walk func(s minic.Stmt)
	walk = func(s minic.Stmt) {
		switch st := s.(type) {
		case *minic.DeclStmt:
			if st.Sym != nil && !reads.Has(st.Sym) {
				l.warnf(st.Pos, "unused", "local %s is declared but never read", st.Name)
			}
		case *minic.BlockStmt:
			for _, inner := range st.Stmts {
				walk(inner)
			}
		case *minic.IfStmt:
			walk(st.Then)
			if st.Else != nil {
				walk(st.Else)
			}
		case *minic.ForStmt:
			if st.Init != nil {
				walk(st.Init)
			}
			walk(st.Body)
		case *minic.WhileStmt:
			walk(st.Body)
		}
	}
	walk(f.Body)
}

// ---------------------------------------------------------------------------
// Pass 4: unreachable statements.

// checkUnreachable reports the first statement in each block that follows
// a terminating statement.
func (l *linter) checkUnreachable(b *minic.BlockStmt) {
	terminated := false
	for _, s := range b.Stmts {
		if terminated {
			l.warnf(s.NodePos(), "unreachable", "unreachable statement")
			terminated = false // one report per dead region
		}
		if terminates(s) {
			terminated = true
		}
		switch st := s.(type) {
		case *minic.BlockStmt:
			l.checkUnreachable(st)
		case *minic.IfStmt:
			l.checkUnreachable(st.Then)
			if st.Else != nil {
				switch e := st.Else.(type) {
				case *minic.BlockStmt:
					l.checkUnreachable(e)
				case *minic.IfStmt:
					l.checkUnreachable(&minic.BlockStmt{Stmts: []minic.Stmt{e}})
				}
			}
		case *minic.ForStmt:
			l.checkUnreachable(st.Body)
		case *minic.WhileStmt:
			l.checkUnreachable(st.Body)
		}
	}
}

// terminates reports whether control never flows past s.
func terminates(s minic.Stmt) bool {
	switch st := s.(type) {
	case *minic.ReturnStmt, *minic.BreakStmt, *minic.ContinueStmt:
		return true
	case *minic.BlockStmt:
		for _, inner := range st.Stmts {
			if terminates(inner) {
				return true
			}
		}
		return false
	case *minic.IfStmt:
		return st.Else != nil && terminates(st.Then) && terminates(st.Else)
	}
	return false
}
