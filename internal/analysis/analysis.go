// Package analysis is the repo's correctness net: static diagnostics over
// mini-C programs and structural verification of parallelization solutions.
//
// It bundles two independent layers:
//
//   - Lint: advisory, position-sorted warnings over a type-checked program
//     (use of uninitialized variables, constant out-of-bounds indexing via
//     interval analysis over induction variables, unused locals, unreachable
//     statements). Invalid programs are rejected earlier by minic.CheckAll;
//     Lint assumes a checked AST.
//
//   - Verify: a post-hoc audit of every solution the ILP (or GA) layer
//     produces. For each pair of items with a conflicting access
//     (write/read, write/write on the same symbol per dataflow def/use
//     sets) there must be an ordering the simulator actually enforces; the
//     audit also re-checks cycle-freeness of the induced task dependence
//     graph, per-class core budgets (Eq. 12-16 of the source paper), and
//     that each solution's claimed critical-path cost matches an
//     independent recomputation from the platform cost model. Violations
//     are hard errors in -verify mode and in tests, and the audit runs by
//     default inside core.Parallelize via the Config.Audit hook so cached
//     DSE solutions are covered too.
package analysis
