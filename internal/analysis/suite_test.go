package analysis

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/platform"
)

// suiteConfig bounds the ILP search so the whole UTDSP sweep stays within
// CI budgets. The node cap is deliberately tight: truncated searches return
// feasible-but-suboptimal incumbents, which is exactly the regime where
// extraction bugs (mis-decoded mappings, unbudgeted inner parallelism)
// historically surfaced.
func suiteConfig() core.Config {
	return core.Config{
		MaxItemsPerILP:    8,
		MaxCandsPerClass:  3,
		MaxTasksPerRegion: 4,
		MaxILPNodes:       60,
		ILPRelGap:         0.05,
		EnablePipelining:  true,
	}
}

// TestVerifySuiteUTDSP runs the race checker over every solution the
// parallelizer produces for the full UTDSP benchmark suite — the best
// solution and every cached candidate in every per-node set — under both
// platform configurations and both main-core scenarios (I: accelerator,
// II: slower cores). The audit is installed through the core.Config.Audit
// hook, the same wiring production uses, so a violation fails Parallelize
// itself. In -short mode only platform config A is swept.
func TestVerifySuiteUTDSP(t *testing.T) {
	platforms := []*platform.Platform{platform.ConfigA(), platform.ConfigB()}
	if testing.Short() {
		platforms = platforms[:1]
	}
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			p, err := experiments.Prepare(b)
			if err != nil {
				t.Fatal(err)
			}
			for _, pf := range platforms {
				for _, sc := range []platform.Scenario{platform.ScenarioAccelerator, platform.ScenarioSlowerCores} {
					cfg := suiteConfig()
					cfg.Audit = AuditResult
					res, err := core.Parallelize(p.Graph, pf, sc.MainClass(pf), core.Heterogeneous, cfg)
					if err != nil {
						t.Errorf("%s %s: %v", pf.Name, sc, err)
						continue
					}
					if n := len(res.Sets); n == 0 {
						t.Errorf("%s %s: no solution sets audited", pf.Name, sc)
					}
				}
			}
		})
	}
}
