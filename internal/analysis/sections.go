package analysis

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/htg"
	"repro/internal/minic"
)

// This file re-derives statement memory footprints by concrete enumeration,
// independently of the dataflow package's interval/GCD/Banerjee section
// analysis. The HTG builder drops a dependence edge when the symbolic
// section tests prove the two statements touch disjoint array elements; the
// verifier refuses to take that on faith. Instead it re-executes the two
// statements abstractly — unrolling constant-bound loops, folding integer
// scalars, following calls — and collects the exact set of elements each
// one reads and writes. Only when the enumerated footprints are disjoint
// for every conflicting symbol is the missing edge excused. Anything the
// enumerator cannot pin down concretely (symbolic bounds, unknown index
// values, float-driven control flow, budget exhaustion) makes the proof
// fail, never succeed.
//
// Enumeration starts from an empty environment: scalar globals and values
// read out of arrays are unknown. Unknown branch conditions enumerate both
// arms (a footprint over-approximation, still sound for disjointness);
// unknown loop bounds or index expressions abort the proof.

// enumBudget bounds the number of expression evaluations one statement may
// spend before the enumerator gives up; enumMaxDepth bounds call nesting.
const (
	enumBudget   = 1 << 22
	enumMaxDepth = 64
)

// elemSet is a set of flat element offsets within one array.
type elemSet map[int]struct{}

// footprint is the enumerated memory footprint of one statement, keyed by
// the root symbol that owns the backing store.
type footprint struct {
	reads  map[*minic.Symbol]elemSet
	writes map[*minic.Symbol]elemSet
}

func (fp *footprint) add(sym *minic.Symbol, off int, write bool) {
	m := fp.reads
	if write {
		m = fp.writes
	}
	s, ok := m[sym]
	if !ok {
		s = make(elemSet)
		m[sym] = s
	}
	s[off] = struct{}{}
}

// eval is an abstract integer value: a known constant or unknown.
type eval struct {
	known bool
	i     int64
}

func known(i int64) eval { return eval{known: true, i: i} }

var unknown = eval{}

// arrRef is a view into an array: the owning root symbol, the flat offset
// of the view, and the view's dimensions (parameter dims may have an
// unsized leading extent of 0).
type arrRef struct {
	root *minic.Symbol
	off  int
	dims []int
}

// enumFrame is one function activation during enumeration.
type enumFrame struct {
	scalars map[*minic.Symbol]eval
	arrays  map[*minic.Symbol]arrRef
	ret     eval
}

func newEnumFrame() *enumFrame {
	return &enumFrame{scalars: make(map[*minic.Symbol]eval), arrays: make(map[*minic.Symbol]arrRef)}
}

type enumCtl int

const (
	enumNone enumCtl = iota
	enumBreak
	enumContinue
	enumReturn
)

type enumerator struct {
	fp      *footprint
	budget  int
	depth   int
	globals map[*minic.Symbol]eval // scalar globals assigned during enumeration
	failed  bool
}

// enumFootprint enumerates the concrete footprint of s. ok is false when
// the statement could not be fully enumerated; the footprint is then
// unusable for disjointness proofs.
func enumFootprint(s minic.Stmt) (*footprint, bool) {
	e := &enumerator{
		fp:      &footprint{reads: make(map[*minic.Symbol]elemSet), writes: make(map[*minic.Symbol]elemSet)},
		budget:  enumBudget,
		globals: make(map[*minic.Symbol]eval),
	}
	e.stmt(s, newEnumFrame())
	if e.failed {
		return nil, false
	}
	return e.fp, true
}

func (e *enumerator) fail() eval {
	e.failed = true
	return unknown
}

func (e *enumerator) tick() bool {
	e.budget--
	if e.budget < 0 {
		e.failed = true
	}
	return !e.failed
}

func (e *enumerator) stmt(s minic.Stmt, fr *enumFrame) enumCtl {
	if e.failed || !e.tick() {
		return enumNone
	}
	switch st := s.(type) {
	case *minic.DeclStmt:
		if st.Type.IsArray() {
			fr.arrays[st.Sym] = arrRef{root: st.Sym, dims: st.Sym.Type.Dims}
			for i := range st.List {
				e.expr(st.List[i], fr)
				e.fp.add(st.Sym, i, true)
			}
			return enumNone
		}
		if st.Init != nil {
			fr.scalars[st.Sym] = e.expr(st.Init, fr)
		} else {
			fr.scalars[st.Sym] = known(0)
		}
		return enumNone
	case *minic.ExprStmt:
		e.expr(st.X, fr)
		return enumNone
	case *minic.BlockStmt:
		return e.block(st, fr)
	case *minic.IfStmt:
		c := e.expr(st.Cond, fr)
		if c.known {
			if c.i != 0 {
				return e.block(st.Then, fr)
			}
			if st.Else != nil {
				return e.stmt(st.Else, fr)
			}
			return enumNone
		}
		var els minic.Stmt
		if st.Else != nil {
			els = st.Else
		}
		return e.bothBranches(st.Then, els, fr)
	case *minic.ForStmt:
		if st.Init != nil {
			e.stmt(st.Init, fr)
		}
		for !e.failed {
			if st.Cond != nil {
				c := e.expr(st.Cond, fr)
				if !c.known {
					e.fail()
					return enumNone
				}
				if c.i == 0 {
					break
				}
			}
			ctl := e.block(st.Body, fr)
			if ctl == enumBreak {
				break
			}
			if ctl == enumReturn {
				return enumReturn
			}
			if st.Post != nil {
				e.expr(st.Post, fr)
			}
			if !e.tick() {
				return enumNone
			}
		}
		return enumNone
	case *minic.WhileStmt:
		first := st.DoWhile
		for !e.failed {
			if !first {
				c := e.expr(st.Cond, fr)
				if !c.known {
					e.fail()
					return enumNone
				}
				if c.i == 0 {
					break
				}
			}
			first = false
			ctl := e.block(st.Body, fr)
			if ctl == enumBreak {
				break
			}
			if ctl == enumReturn {
				return enumReturn
			}
			if st.DoWhile {
				c := e.expr(st.Cond, fr)
				if !c.known {
					e.fail()
					return enumNone
				}
				if c.i == 0 {
					break
				}
			}
			if !e.tick() {
				return enumNone
			}
		}
		return enumNone
	case *minic.ReturnStmt:
		if st.Value != nil {
			fr.ret = e.expr(st.Value, fr)
		}
		return enumReturn
	case *minic.BreakStmt:
		return enumBreak
	case *minic.ContinueStmt:
		return enumContinue
	}
	e.fail()
	return enumNone
}

func (e *enumerator) block(b *minic.BlockStmt, fr *enumFrame) enumCtl {
	for _, s := range b.Stmts {
		if e.failed {
			return enumNone
		}
		if ctl := e.stmt(s, fr); ctl != enumNone {
			return ctl
		}
	}
	return enumNone
}

// bothBranches enumerates both arms of an unknown condition on cloned
// scalar environments and keeps only the scalar facts the arms agree on.
// Control flow escaping either arm (break/continue/return) cannot be
// merged and aborts the proof.
func (e *enumerator) bothBranches(then, els minic.Stmt, fr *enumFrame) enumCtl {
	savedScalars := cloneEvalMap(fr.scalars)
	savedGlobals := cloneEvalMap(e.globals)
	if ctl := e.stmt(then, fr); ctl != enumNone {
		e.fail()
		return enumNone
	}
	thenScalars, thenGlobals := fr.scalars, e.globals
	fr.scalars, e.globals = savedScalars, savedGlobals
	if els != nil {
		if ctl := e.stmt(els, fr); ctl != enumNone {
			e.fail()
			return enumNone
		}
	}
	fr.scalars = mergeEvalMaps(thenScalars, fr.scalars)
	e.globals = mergeEvalMaps(thenGlobals, e.globals)
	return enumNone
}

func cloneEvalMap(m map[*minic.Symbol]eval) map[*minic.Symbol]eval {
	out := make(map[*minic.Symbol]eval, len(m))
	//repolint:allow maprange — clone, order-insensitive.
	for k, v := range m {
		out[k] = v
	}
	return out
}

// mergeEvalMaps keeps entries both maps agree on and demotes the rest to
// unknown.
func mergeEvalMaps(a, b map[*minic.Symbol]eval) map[*minic.Symbol]eval {
	out := make(map[*minic.Symbol]eval, len(a))
	//repolint:allow maprange — map merge, order-insensitive.
	for k, va := range a {
		if vb, ok := b[k]; ok && va.known && vb.known && va.i == vb.i {
			out[k] = va
		} else {
			out[k] = unknown
		}
	}
	//repolint:allow maprange — map merge, order-insensitive.
	for k := range b {
		if _, ok := out[k]; !ok {
			out[k] = unknown
		}
	}
	return out
}

// arrayOf resolves an array symbol to its view: frame bindings for locals
// and parameters, an identity view for globals.
func (e *enumerator) arrayOf(sym *minic.Symbol, fr *enumFrame) arrRef {
	if ref, ok := fr.arrays[sym]; ok {
		return ref
	}
	return arrRef{root: sym, dims: sym.Type.Dims}
}

// flatIndex evaluates a full index expression against a view and returns
// the flat offset into the root array. Unknown or out-of-range indices
// abort the proof.
func (e *enumerator) flatIndex(ref arrRef, ix *minic.IndexExpr, fr *enumFrame) (int, bool) {
	if len(ix.Indices) != len(ref.dims) {
		e.fail()
		return 0, false
	}
	off := 0
	for d, ie := range ix.Indices {
		iv := e.expr(ie, fr)
		if !iv.known {
			e.fail()
			return 0, false
		}
		i := int(iv.i)
		if i < 0 || (ref.dims[d] > 0 && i >= ref.dims[d]) {
			e.fail()
			return 0, false
		}
		stride := 1
		for _, d2 := range ref.dims[d+1:] {
			if d2 <= 0 {
				e.fail()
				return 0, false
			}
			stride *= d2
		}
		off += i * stride
	}
	total := ref.off + off
	if ref.root != nil && ref.root.Type.NumElems() > 0 && total >= ref.root.Type.NumElems() {
		e.fail()
		return 0, false
	}
	return total, true
}

func (e *enumerator) expr(x minic.Expr, fr *enumFrame) eval {
	if e.failed || !e.tick() {
		return unknown
	}
	switch ex := x.(type) {
	case *minic.IntLit:
		return known(ex.Value)
	case *minic.FloatLit:
		return unknown
	case *minic.VarRef:
		if ex.Sym.Type.IsArray() {
			// Bare array reference outside a call argument: nothing to do.
			return unknown
		}
		if v, ok := fr.scalars[ex.Sym]; ok {
			return v
		}
		if v, ok := e.globals[ex.Sym]; ok {
			return v
		}
		return unknown
	case *minic.IndexExpr:
		ref := e.arrayOf(ex.Array.Sym, fr)
		off, ok := e.flatIndex(ref, ex, fr)
		if !ok {
			return unknown
		}
		e.fp.add(ref.root, off, false)
		return unknown
	case *minic.UnaryExpr:
		v := e.expr(ex.X, fr)
		if !v.known {
			return unknown
		}
		switch ex.Op {
		case minic.TokMinus:
			return known(-v.i)
		case minic.TokPlus:
			return v
		case minic.TokNot:
			if v.i == 0 {
				return known(1)
			}
			return known(0)
		case minic.TokTilde:
			return known(^v.i)
		}
		return unknown
	case *minic.BinaryExpr:
		return e.binary(ex, fr)
	case *minic.CondExpr:
		c := e.expr(ex.Cond, fr)
		if c.known {
			if c.i != 0 {
				return e.expr(ex.Then, fr)
			}
			return e.expr(ex.Else, fr)
		}
		// Unknown selector: enumerate both arms for their accesses, merge
		// scalar effects conservatively.
		savedScalars := cloneEvalMap(fr.scalars)
		savedGlobals := cloneEvalMap(e.globals)
		e.expr(ex.Then, fr)
		thenScalars, thenGlobals := fr.scalars, e.globals
		fr.scalars, e.globals = savedScalars, savedGlobals
		e.expr(ex.Else, fr)
		fr.scalars = mergeEvalMaps(thenScalars, fr.scalars)
		e.globals = mergeEvalMaps(thenGlobals, e.globals)
		return unknown
	case *minic.CallExpr:
		return e.call(ex, fr)
	case *minic.AssignExpr:
		return e.assign(ex, fr)
	case *minic.IncDecExpr:
		return e.incDec(ex, fr)
	case *minic.CastExpr:
		v := e.expr(ex.X, fr)
		if ex.To == minic.Int && v.known {
			return v
		}
		return unknown
	}
	e.fail()
	return unknown
}

func (e *enumerator) binary(ex *minic.BinaryExpr, fr *enumFrame) eval {
	if ex.Op == minic.TokAndAnd || ex.Op == minic.TokOrOr {
		x := e.expr(ex.X, fr)
		if x.known {
			if ex.Op == minic.TokAndAnd && x.i == 0 {
				return known(0)
			}
			if ex.Op == minic.TokOrOr && x.i != 0 {
				return known(1)
			}
			y := e.expr(ex.Y, fr)
			if !y.known {
				return unknown
			}
			if y.i != 0 {
				return known(1)
			}
			return known(0)
		}
		// Unknown left side: the right side may or may not run; enumerate
		// it for footprint coverage but discard its scalar effects only if
		// it has none we can represent — conservatively merge.
		savedScalars := cloneEvalMap(fr.scalars)
		savedGlobals := cloneEvalMap(e.globals)
		e.expr(ex.Y, fr)
		fr.scalars = mergeEvalMaps(savedScalars, fr.scalars)
		e.globals = mergeEvalMaps(savedGlobals, e.globals)
		return unknown
	}
	x := e.expr(ex.X, fr)
	y := e.expr(ex.Y, fr)
	if e.failed || !x.known || !y.known {
		return unknown
	}
	b2i := func(b bool) eval {
		if b {
			return known(1)
		}
		return known(0)
	}
	switch ex.Op {
	case minic.TokPlus:
		return known(x.i + y.i)
	case minic.TokMinus:
		return known(x.i - y.i)
	case minic.TokStar:
		return known(x.i * y.i)
	case minic.TokSlash:
		if y.i == 0 {
			return e.fail()
		}
		return known(x.i / y.i)
	case minic.TokPercent:
		if y.i == 0 {
			return e.fail()
		}
		return known(x.i % y.i)
	case minic.TokAmp:
		return known(x.i & y.i)
	case minic.TokPipe:
		return known(x.i | y.i)
	case minic.TokCaret:
		return known(x.i ^ y.i)
	case minic.TokShl:
		return known(x.i << uint(y.i&63))
	case minic.TokShr:
		return known(x.i >> uint(y.i&63))
	case minic.TokEq:
		return b2i(x.i == y.i)
	case minic.TokNeq:
		return b2i(x.i != y.i)
	case minic.TokLt:
		return b2i(x.i < y.i)
	case minic.TokGt:
		return b2i(x.i > y.i)
	case minic.TokLe:
		return b2i(x.i <= y.i)
	case minic.TokGe:
		return b2i(x.i >= y.i)
	}
	return unknown
}

func (e *enumerator) assign(ex *minic.AssignExpr, fr *enumFrame) eval {
	rhs := e.expr(ex.RHS, fr)
	switch lhs := ex.LHS.(type) {
	case *minic.VarRef:
		out := rhs
		if ex.Op != minic.TokAssign {
			cur := e.expr(lhs, fr)
			out = e.foldCompound(ex.Op, cur, rhs)
		}
		if lhs.Sym.Type.Base == minic.Float {
			out = unknown // floats are not tracked
		}
		e.setScalar(lhs.Sym, out, fr)
		return out
	case *minic.IndexExpr:
		ref := e.arrayOf(lhs.Array.Sym, fr)
		off, ok := e.flatIndex(ref, lhs, fr)
		if !ok {
			return unknown
		}
		if ex.Op != minic.TokAssign {
			e.fp.add(ref.root, off, false)
		}
		e.fp.add(ref.root, off, true)
		return unknown
	}
	e.fail()
	return unknown
}

func (e *enumerator) setScalar(sym *minic.Symbol, v eval, fr *enumFrame) {
	if _, ok := fr.scalars[sym]; ok {
		fr.scalars[sym] = v
		return
	}
	e.globals[sym] = v
}

func (e *enumerator) foldCompound(op minic.TokenKind, cur, rhs eval) eval {
	if !cur.known || !rhs.known {
		return unknown
	}
	switch op {
	case minic.TokPlusEq:
		return known(cur.i + rhs.i)
	case minic.TokMinusEq:
		return known(cur.i - rhs.i)
	case minic.TokStarEq:
		return known(cur.i * rhs.i)
	case minic.TokSlashEq:
		if rhs.i == 0 {
			return e.fail()
		}
		return known(cur.i / rhs.i)
	case minic.TokPercentEq:
		if rhs.i == 0 {
			return e.fail()
		}
		return known(cur.i % rhs.i)
	case minic.TokShlEq:
		return known(cur.i << uint(rhs.i&63))
	case minic.TokShrEq:
		return known(cur.i >> uint(rhs.i&63))
	case minic.TokAndEq:
		return known(cur.i & rhs.i)
	case minic.TokOrEq:
		return known(cur.i | rhs.i)
	case minic.TokXorEq:
		return known(cur.i ^ rhs.i)
	}
	return unknown
}

func (e *enumerator) incDec(ex *minic.IncDecExpr, fr *enumFrame) eval {
	delta := int64(1)
	if ex.Op == minic.TokDec {
		delta = -1
	}
	switch lhs := ex.X.(type) {
	case *minic.VarRef:
		cur := e.expr(lhs, fr)
		out := unknown
		if cur.known {
			out = known(cur.i + delta)
		}
		e.setScalar(lhs.Sym, out, fr)
		return out
	case *minic.IndexExpr:
		ref := e.arrayOf(lhs.Array.Sym, fr)
		off, ok := e.flatIndex(ref, lhs, fr)
		if !ok {
			return unknown
		}
		e.fp.add(ref.root, off, false)
		e.fp.add(ref.root, off, true)
		return unknown
	}
	e.fail()
	return unknown
}

func (e *enumerator) call(ex *minic.CallExpr, fr *enumFrame) eval {
	if ex.Builtin != "" {
		for _, a := range ex.Args {
			e.expr(a, fr)
		}
		return unknown
	}
	if ex.Fn == nil {
		e.fail()
		return unknown
	}
	e.depth++
	defer func() { e.depth-- }()
	if e.depth > enumMaxDepth {
		e.fail()
		return unknown
	}
	callee := newEnumFrame()
	for i := range ex.Fn.Params {
		p := &ex.Fn.Params[i]
		if !p.Type.IsArray() {
			callee.scalars[p.Sym] = e.expr(ex.Args[i], fr)
			continue
		}
		ref, ok := e.argRef(ex.Args[i], p, fr)
		if !ok {
			return unknown
		}
		callee.arrays[p.Sym] = ref
	}
	e.stmt(ex.Fn.Body, callee)
	return callee.ret
}

// argRef resolves an array argument to a view on the caller's array: the
// whole array for a bare reference, a sub-array with a concrete offset for
// a partial (row) index.
func (e *enumerator) argRef(a minic.Expr, p *minic.Param, fr *enumFrame) (arrRef, bool) {
	switch arg := a.(type) {
	case *minic.VarRef:
		ref := e.arrayOf(arg.Sym, fr)
		return arrRef{root: ref.root, off: ref.off, dims: p.Type.Dims}, true
	case *minic.IndexExpr:
		base := e.arrayOf(arg.Array.Sym, fr)
		if len(arg.Indices) >= len(base.dims) {
			e.fail()
			return arrRef{}, false
		}
		off := base.off
		for d, ie := range arg.Indices {
			iv := e.expr(ie, fr)
			if !iv.known || iv.i < 0 || (base.dims[d] > 0 && iv.i >= int64(base.dims[d])) {
				e.fail()
				return arrRef{}, false
			}
			stride := 1
			for _, d2 := range base.dims[d+1:] {
				if d2 <= 0 {
					e.fail()
					return arrRef{}, false
				}
				stride *= d2
			}
			off += int(iv.i) * stride
		}
		return arrRef{root: base.root, off: off, dims: p.Type.Dims}, true
	}
	e.fail()
	return arrRef{}, false
}

// disjointSets reports whether two element sets share no offset.
func disjointSets(a, b elemSet) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	//repolint:allow maprange — membership probe, order-insensitive.
	for off := range a {
		if _, ok := b[off]; ok {
			return false
		}
	}
	return true
}

// footprintOf memoizes enumeration per statement (nil = enumeration
// failed).
func (v *verifier) footprintOf(s minic.Stmt) (*footprint, bool) {
	if v.fps == nil {
		v.fps = make(map[minic.Stmt]*footprint)
	}
	fp, seen := v.fps[s]
	if !seen {
		fp, _ = enumFootprint(s)
		v.fps[s] = fp
	}
	return fp, fp != nil
}

// conflictDisjoint checks one direction of a conflict: every symbol both
// written by a and touched per bAcc must be an array whose enumerated
// element sets are disjoint.
func conflictDisjoint(syms []*minic.Symbol, aw, br map[*minic.Symbol]elemSet) bool {
	for _, sym := range syms {
		if !sym.Type.IsArray() {
			return false // scalar conflicts have no sections to compare
		}
		if !disjointSets(aw[sym], br[sym]) {
			return false
		}
	}
	return true
}

// sectionExcused reports whether the conflict DependsOn sees between a and
// b is refuted by independent concrete enumeration: both statements
// enumerate fully and every conflicting symbol's element sets are disjoint
// for all three dependence kinds (flow, anti, output).
func (v *verifier) sectionExcused(a, b *htg.Node) bool {
	if a == nil || b == nil || a.Stmt == nil || b.Stmt == nil || a.Acc == nil || b.Acc == nil {
		return false
	}
	fa, aok := v.footprintOf(a.Stmt)
	fb, bok := v.footprintOf(b.Stmt)
	if !aok || !bok {
		return false
	}
	return conflictDisjoint(a.Acc.Writes.Intersect(b.Acc.Reads), fa.writes, fb.reads) &&
		conflictDisjoint(a.Acc.Reads.Intersect(b.Acc.Writes), fa.reads, fb.writes) &&
		conflictDisjoint(a.Acc.Writes.Intersect(b.Acc.Writes), fa.writes, fb.writes)
}

// flowExcused reports whether the flow conflict (a writes, b reads) alone
// is refuted by enumeration.
func (v *verifier) flowExcused(a, b *htg.Node) bool {
	if a == nil || b == nil || a.Stmt == nil || b.Stmt == nil || a.Acc == nil || b.Acc == nil {
		return false
	}
	fa, aok := v.footprintOf(a.Stmt)
	fb, bok := v.footprintOf(b.Stmt)
	if !aok || !bok {
		return false
	}
	return conflictDisjoint(a.Acc.Writes.Intersect(b.Acc.Reads), fa.writes, fb.reads)
}

// VerifyGraphSections re-proves every dependence edge the section analysis
// dropped during HTG construction, using the concrete enumerator as a
// second, independent implementation. A dropped edge the enumerator cannot
// re-prove disjoint is reported as a violation — the graph may be missing
// a real ordering constraint.
func VerifyGraphSections(g *htg.Graph) []Violation {
	v := &verifier{seen: map[*core.Solution]bool{}}
	for _, d := range g.Dropped {
		if !v.sectionExcused(d.From, d.To) {
			v.out = append(v.out, Violation{
				Node: d.From.Parent,
				Kind: "section",
				Msg: fmt.Sprintf("dropped %s dependence %s -> %s cannot be re-proven disjoint by enumeration",
					d.Kind, d.From.Label, d.To.Label),
			})
		}
	}
	return v.out
}
