package analysis

import (
	"strings"
	"testing"

	"repro/internal/minic"
)

func lintSrc(t *testing.T, src string) []minic.Diagnostic {
	t.Helper()
	prog, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return Lint(prog)
}

func hasDiag(diags []minic.Diagnostic, code, substr string) bool {
	for _, d := range diags {
		if d.Code == code && strings.Contains(d.Msg, substr) {
			return true
		}
	}
	return false
}

func countCode(diags []minic.Diagnostic, code string) int {
	n := 0
	for _, d := range diags {
		if d.Code == code {
			n++
		}
	}
	return n
}

func TestLintUninitStraightLine(t *testing.T) {
	diags := lintSrc(t, `
void main(void) {
    int x;
    int y = x + 1;
    x = 2;
    y = y + x;
}
`)
	if !hasDiag(diags, "uninit", "variable x is used before it is assigned") {
		t.Fatalf("missing uninit warning for x: %v", diags)
	}
	if countCode(diags, "uninit") != 1 {
		t.Errorf("want exactly 1 uninit warning, got %v", diags)
	}
}

func TestLintUninitBranchesAndLoops(t *testing.T) {
	// x assigned only in one branch and read after: maybe-assigned, no
	// warning (the pass only reports reads no path can have initialized).
	// z assigned in the loop and read after: also quiet. w is never
	// assigned anywhere before its read: warned.
	diags := lintSrc(t, `
int c;
void main(void) {
    int x; int z; int w;
    if (c > 0) { x = 1; }
    c = x;
    for (int i = 0; i < 4; i++) { z = i; }
    c = c + z;
    c = c + w;
    w = 0;
}
`)
	if hasDiag(diags, "uninit", "variable x") {
		t.Errorf("x is maybe-assigned, should not be reported: %v", diags)
	}
	if hasDiag(diags, "uninit", "variable z") {
		t.Errorf("z is assigned in the loop, should not be reported: %v", diags)
	}
	if !hasDiag(diags, "uninit", "variable w is used before it is assigned") {
		t.Errorf("missing uninit warning for w: %v", diags)
	}
}

func TestLintUninitArrayThroughCall(t *testing.T) {
	// fill writes its parameter: calling it initializes the array, so the
	// later read is fine. scan only reads: calling it first warns.
	diags := lintSrc(t, `
float acc;
void fill(float v[8]) { for (int i = 0; i < 8; i++) { v[i] = 0.0; } }
void scan(float v[8]) { for (int i = 0; i < 8; i++) { acc += v[i]; } }
void main(void) {
    float a[8]; float b[8];
    fill(a);
    scan(a);
    scan(b);
}
`)
	if hasDiag(diags, "uninit", "array a") {
		t.Errorf("a is initialized by fill: %v", diags)
	}
	if !hasDiag(diags, "uninit", "array b is used before it is assigned") {
		t.Errorf("missing uninit warning for b: %v", diags)
	}
}

func TestLintBoundsConstant(t *testing.T) {
	diags := lintSrc(t, `
float a[64];
void main(void) {
    a[64] = 1.0;
    a[63] = 2.0;
}
`)
	if !hasDiag(diags, "bounds", "index 64 of a dimension 0 is out of bounds [0, 64)") {
		t.Fatalf("missing constant bounds warning: %v", diags)
	}
	if countCode(diags, "bounds") != 1 {
		t.Errorf("a[63] is in bounds, want exactly 1 bounds warning: %v", diags)
	}
}

func TestLintBoundsInduction(t *testing.T) {
	// i ranges 0..64: a[i] overruns on the last iteration; b[i+1] is the
	// classic off-by-one; c[i-1] underruns on the first iteration.
	diags := lintSrc(t, `
float a[64]; float b[64]; float c[64];
void main(void) {
    for (int i = 0; i <= 64; i++) {
        a[i] = 1.0;
    }
    for (int j = 0; j < 64; j++) {
        b[j + 1] = 1.0;
        c[j - 1] = 1.0;
    }
}
`)
	if !hasDiag(diags, "bounds", "index of a dimension 0 ranges 0..64") {
		t.Errorf("missing overrun warning for a: %v", diags)
	}
	if !hasDiag(diags, "bounds", "index of b dimension 0 ranges 1..64") {
		t.Errorf("missing off-by-one warning for b: %v", diags)
	}
	if !hasDiag(diags, "bounds", "index of c dimension 0 ranges -1..62") {
		t.Errorf("missing underrun warning for c: %v", diags)
	}
}

func TestLintBoundsQuietOnValidLoops(t *testing.T) {
	diags := lintSrc(t, `
float a[8][8]; float b[8][8];
void main(void) {
    for (int i = 0; i < 8; i++) {
        for (int j = 0; j < 8; j++) {
            a[i][j] = b[7 - i][j] * 2.0;
        }
    }
    for (int k = 62; k >= 0; k--) {
        a[0][k / 8] = 0.0;
    }
}
`)
	if n := countCode(diags, "bounds"); n != 0 {
		t.Fatalf("valid accesses flagged: %v", diags)
	}
}

func TestLintBoundsNonUnitStride(t *testing.T) {
	// i takes 0,2,...,62: i+1 peaks at 63, in bounds for a[64].
	diags := lintSrc(t, `
float a[64];
void main(void) {
    for (int i = 0; i < 64; i += 2) {
        a[i + 1] = 1.0;
    }
}
`)
	if n := countCode(diags, "bounds"); n != 0 {
		t.Fatalf("stride-2 access wrongly flagged: %v", diags)
	}
}

func TestLintUnusedLocal(t *testing.T) {
	diags := lintSrc(t, `
int g;
void main(void) {
    int dead;
    int sink = 0;
    sink = sink + g;
    g = sink;
}
`)
	if !hasDiag(diags, "unused", "local dead is declared but never read") {
		t.Fatalf("missing unused warning: %v", diags)
	}
	if hasDiag(diags, "unused", "sink") {
		t.Errorf("sink is read, should not be reported: %v", diags)
	}
}

func TestLintUnreachable(t *testing.T) {
	diags := lintSrc(t, `
int g;
void main(void) {
    for (int i = 0; i < 4; i++) {
        if (g > 0) {
            break;
            g = 1;
        }
    }
    return;
    g = 2;
}
`)
	if countCode(diags, "unreachable") != 2 {
		t.Fatalf("want 2 unreachable warnings (after break, after return): %v", diags)
	}
}

func TestLintDiagnosticsSorted(t *testing.T) {
	diags := lintSrc(t, `
float a[4];
void main(void) {
    int dead;
    a[9] = 1.0;
    return;
    a[0] = 0.0;
}
`)
	if len(diags) < 3 {
		t.Fatalf("expected at least 3 warnings, got %v", diags)
	}
	for i := 1; i < len(diags); i++ {
		prev, cur := diags[i-1].Pos, diags[i].Pos
		if cur.Line < prev.Line || (cur.Line == prev.Line && cur.Col < prev.Col) {
			t.Fatalf("diagnostics not sorted by position: %v", diags)
		}
	}
	for _, d := range diags {
		if d.Sev != minic.SevWarning {
			t.Errorf("lint must emit warnings, got %v", d)
		}
	}
}

func TestLintSourceReportsSemanticErrors(t *testing.T) {
	diags, err := LintSource(`void main(void) { x = 1; y = 2; }`)
	if err != nil {
		t.Fatalf("unexpected syntax error: %v", err)
	}
	if len(diags) != 2 {
		t.Fatalf("want both semantic errors, got %v", diags)
	}
	for _, d := range diags {
		if d.Sev != minic.SevError {
			t.Errorf("semantic problems must be errors: %v", d)
		}
	}
}
