// Package costmodel assigns architectural cycle costs to mini-C statements
// and expressions. Combined with a processor class's clock frequency and
// CPI factor it yields the per-class execution times the Augmented
// Hierarchical Task Graph is annotated with ("this information is
// automatically extracted by target platform simulation ... once per
// processor class").
//
// The table models an in-order 32-bit embedded RISC pipeline (ARM9-like):
// single-cycle ALU ops, multi-cycle multiply/divide, load/store latencies
// assuming on-chip SRAM/L1 hits, and software math-library costs for the
// float builtins.
package costmodel

import (
	"fmt"

	"repro/internal/minic"
	"repro/internal/platform"
)

// Table holds per-operation cycle counts.
type Table struct {
	IntALU     float64 // add/sub/bitwise/shift/compare
	IntMul     float64
	IntDiv     float64 // also modulo
	FloatAdd   float64 // add/sub/compare
	FloatMul   float64
	FloatDiv   float64
	Load       float64 // scalar load
	Store      float64 // scalar store
	AddrCalc   float64 // per array dimension
	Branch     float64 // taken-branch / loop back-edge overhead
	CallFixed  float64 // call/return overhead
	PerArg     float64 // argument marshalling
	Convert    float64 // int<->float conversion
	SqrtCost   float64
	TrigCost   float64 // sin/cos/tan/atan/atan2
	ExpLogCost float64
	PowCost    float64
	RoundCost  float64 // floor/ceil
	SimpleMath float64 // fabs/abs/min/max
}

// Default returns the reference cycle table.
func Default() *Table {
	return &Table{
		IntALU:     1,
		IntMul:     3,
		IntDiv:     20,
		FloatAdd:   4,
		FloatMul:   5,
		FloatDiv:   25,
		Load:       2,
		Store:      2,
		AddrCalc:   1,
		Branch:     2,
		CallFixed:  10,
		PerArg:     1,
		Convert:    2,
		SqrtCost:   35,
		TrigCost:   60,
		ExpLogCost: 55,
		PowCost:    90,
		RoundCost:  6,
		SimpleMath: 2,
	}
}

// Model computes statement costs against a table. The model is purely
// static per statement execution: dynamic counts come from the profiler.
type Model struct {
	T *Table
}

// NewModel builds a model over table t (Default() if nil).
func NewModel(t *Table) *Model {
	if t == nil {
		t = Default()
	}
	return &Model{T: t}
}

// isFloatExpr reports whether e produces (or operates on) float values.
// It relies on resolved symbols, so the program must be checked.
func isFloatExpr(e minic.Expr) bool {
	switch ex := e.(type) {
	case *minic.IntLit:
		return false
	case *minic.FloatLit:
		return true
	case *minic.VarRef:
		return ex.Sym != nil && ex.Sym.Type.Base == minic.Float
	case *minic.IndexExpr:
		return ex.Array.Sym != nil && ex.Array.Sym.Type.Base == minic.Float
	case *minic.UnaryExpr:
		if ex.Op == minic.TokNot || ex.Op == minic.TokTilde {
			return false
		}
		return isFloatExpr(ex.X)
	case *minic.BinaryExpr:
		switch ex.Op {
		case minic.TokEq, minic.TokNeq, minic.TokLt, minic.TokGt, minic.TokLe,
			minic.TokGe, minic.TokAndAnd, minic.TokOrOr, minic.TokPercent,
			minic.TokAmp, minic.TokPipe, minic.TokCaret, minic.TokShl, minic.TokShr:
			return false
		}
		return isFloatExpr(ex.X) || isFloatExpr(ex.Y)
	case *minic.CondExpr:
		return isFloatExpr(ex.Then) || isFloatExpr(ex.Else)
	case *minic.CallExpr:
		if ex.Fn != nil {
			return ex.Fn.Result.Base == minic.Float
		}
		switch ex.Builtin {
		case "abs", "min", "max":
			for _, a := range ex.Args {
				if isFloatExpr(a) {
					return true
				}
			}
			return false
		}
		return true
	case *minic.AssignExpr:
		return isFloatExpr(ex.LHS)
	case *minic.IncDecExpr:
		return isFloatExpr(ex.X)
	case *minic.CastExpr:
		return ex.To == minic.Float
	}
	return false
}

// ExprCycles returns the cycle cost of evaluating e once. Function call
// bodies are NOT included: calls to user functions contribute only the
// call overhead, because the HTG represents the callee hierarchically and
// accounts its cost through the hierarchy.
func (m *Model) ExprCycles(e minic.Expr) float64 {
	t := m.T
	switch ex := e.(type) {
	case *minic.IntLit, *minic.FloatLit:
		return 0 // immediates fold into consuming instructions
	case *minic.VarRef:
		return t.Load
	case *minic.IndexExpr:
		c := t.Load + float64(len(ex.Indices))*t.AddrCalc
		for _, ix := range ex.Indices {
			c += m.ExprCycles(ix)
		}
		return c
	case *minic.UnaryExpr:
		c := m.ExprCycles(ex.X)
		if isFloatExpr(ex.X) && ex.Op == minic.TokMinus {
			return c + t.FloatAdd
		}
		return c + t.IntALU
	case *minic.BinaryExpr:
		c := m.ExprCycles(ex.X) + m.ExprCycles(ex.Y)
		return c + m.binOpCycles(ex)
	case *minic.CondExpr:
		// Expected cost: condition + branch + average of the two arms.
		return m.ExprCycles(ex.Cond) + t.Branch +
			0.5*(m.ExprCycles(ex.Then)+m.ExprCycles(ex.Else))
	case *minic.CallExpr:
		c := float64(len(ex.Args)) * t.PerArg
		for _, a := range ex.Args {
			switch a.(type) {
			case *minic.VarRef, *minic.IndexExpr:
				// Array arguments pass a base pointer: PerArg covers it;
				// scalar variable loads still cost a load.
				c += t.Load
			default:
				c += m.ExprCycles(a)
			}
		}
		if ex.Builtin != "" {
			return c + m.builtinCycles(ex.Builtin)
		}
		return c + t.CallFixed
	case *minic.AssignExpr:
		c := m.ExprCycles(ex.RHS) + m.lvalueCycles(ex.LHS) + t.Store
		if ex.Op != minic.TokAssign {
			// Compound assignment re-reads the target and applies an op.
			c += t.Load + m.binOpCycles(&minic.BinaryExpr{Op: compoundBase(ex.Op), X: ex.LHS, Y: ex.RHS})
		}
		return c
	case *minic.IncDecExpr:
		return m.lvalueCycles(ex.X) + t.Load + t.IntALU + t.Store
	case *minic.CastExpr:
		return m.ExprCycles(ex.X) + t.Convert
	}
	return 0
}

// lvalueCycles is the address-computation cost of an assignment target
// (the value load is charged separately where needed).
func (m *Model) lvalueCycles(e minic.Expr) float64 {
	if ix, ok := e.(*minic.IndexExpr); ok {
		c := float64(len(ix.Indices)) * m.T.AddrCalc
		for _, sub := range ix.Indices {
			c += m.ExprCycles(sub)
		}
		return c
	}
	return 0
}

// binOpCycles prices the operation itself (operand evaluation excluded).
func (m *Model) binOpCycles(ex *minic.BinaryExpr) float64 {
	t := m.T
	isF := isFloatExpr(ex.X) || isFloatExpr(ex.Y)
	switch ex.Op {
	case minic.TokStar:
		if isF {
			return t.FloatMul
		}
		return t.IntMul
	case minic.TokSlash:
		if isF {
			return t.FloatDiv
		}
		return t.IntDiv
	case minic.TokPercent:
		return t.IntDiv
	case minic.TokPlus, minic.TokMinus:
		if isF {
			return t.FloatAdd
		}
		return t.IntALU
	case minic.TokEq, minic.TokNeq, minic.TokLt, minic.TokGt, minic.TokLe, minic.TokGe:
		if isF {
			return t.FloatAdd
		}
		return t.IntALU
	case minic.TokAndAnd, minic.TokOrOr:
		return t.IntALU + t.Branch // short-circuit branch
	default:
		return t.IntALU
	}
}

func (m *Model) builtinCycles(name string) float64 {
	t := m.T
	switch name {
	case "sqrt":
		return t.SqrtCost
	case "sin", "cos", "tan", "atan", "atan2":
		return t.TrigCost
	case "exp", "log":
		return t.ExpLogCost
	case "pow":
		return t.PowCost
	case "floor", "ceil":
		return t.RoundCost
	default: // fabs, abs, min, max
		return t.SimpleMath
	}
}

func compoundBase(k minic.TokenKind) minic.TokenKind {
	switch k {
	case minic.TokPlusEq:
		return minic.TokPlus
	case minic.TokMinusEq:
		return minic.TokMinus
	case minic.TokStarEq:
		return minic.TokStar
	case minic.TokSlashEq:
		return minic.TokSlash
	case minic.TokPercentEq:
		return minic.TokPercent
	case minic.TokShlEq:
		return minic.TokShl
	case minic.TokShrEq:
		return minic.TokShr
	case minic.TokAndEq:
		return minic.TokAmp
	case minic.TokOrEq:
		return minic.TokPipe
	case minic.TokXorEq:
		return minic.TokCaret
	}
	return k
}

// StmtSelfCycles returns the cycle cost of one execution of statement s
// itself, excluding any nested statements (those are separate HTG nodes).
// For control statements this is the header cost: condition evaluation plus
// branch overhead; for loops it is charged once per iteration via the
// profiler's counts on the header node.
func (m *Model) StmtSelfCycles(s minic.Stmt) float64 {
	t := m.T
	switch st := s.(type) {
	case *minic.DeclStmt:
		c := 0.0
		if st.Init != nil {
			c += m.ExprCycles(st.Init) + t.Store
		}
		for _, e := range st.List {
			c += m.ExprCycles(e) + t.Store
		}
		return c
	case *minic.ExprStmt:
		return m.ExprCycles(st.X)
	case *minic.BlockStmt:
		return 0
	case *minic.IfStmt:
		return m.ExprCycles(st.Cond) + t.Branch
	case *minic.ForStmt:
		// Per-iteration header cost: condition + post + back-edge.
		c := t.Branch
		if st.Cond != nil {
			c += m.ExprCycles(st.Cond)
		}
		if st.Post != nil {
			c += m.ExprCycles(st.Post)
		}
		return c
	case *minic.WhileStmt:
		return m.ExprCycles(st.Cond) + t.Branch
	case *minic.ReturnStmt:
		c := t.Branch
		if st.Value != nil {
			c += m.ExprCycles(st.Value)
		}
		return c
	case *minic.BreakStmt, *minic.ContinueStmt:
		return t.Branch
	}
	return 0
}

// NanosOn converts a cycle count to nanoseconds on processor class pc.
func NanosOn(pc platform.ProcClass, cycles float64) float64 {
	return pc.CyclesToNanos(cycles)
}

// Validate sanity-checks a table.
func (t *Table) Validate() error {
	vals := map[string]float64{
		"IntALU": t.IntALU, "IntMul": t.IntMul, "IntDiv": t.IntDiv,
		"FloatAdd": t.FloatAdd, "FloatMul": t.FloatMul, "FloatDiv": t.FloatDiv,
		"Load": t.Load, "Store": t.Store, "Branch": t.Branch,
	}
	for name, v := range vals {
		if v <= 0 {
			return fmt.Errorf("cost table: %s must be positive, got %g", name, v)
		}
	}
	return nil
}
