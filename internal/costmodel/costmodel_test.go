package costmodel

import (
	"testing"

	"repro/internal/minic"
	"repro/internal/platform"
)

// stmtOf compiles a one-statement main and returns that statement.
func stmtOf(t *testing.T, body string) minic.Stmt {
	t.Helper()
	src := "float fa[16]; float fb[16]; int ia[16]; float fs; int is;\n" +
		"void main(void) { " + body + " }"
	prog, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("compile %q: %v", body, err)
	}
	return prog.Func("main").Body.Stmts[0]
}

func cyclesOf(t *testing.T, body string) float64 {
	t.Helper()
	m := NewModel(nil)
	return m.StmtSelfCycles(stmtOf(t, body))
}

func TestFloatOpsCostMoreThanInt(t *testing.T) {
	intMul := cyclesOf(t, "is = ia[1] * ia[2];")
	floatMul := cyclesOf(t, "fs = fa[1] * fb[2];")
	if floatMul <= intMul {
		t.Errorf("float multiply (%g) should cost more than int multiply (%g)", floatMul, intMul)
	}
	intDiv := cyclesOf(t, "is = ia[1] / ia[2];")
	intAdd := cyclesOf(t, "is = ia[1] + ia[2];")
	if intDiv <= intAdd {
		t.Errorf("int divide (%g) should cost more than int add (%g)", intDiv, intAdd)
	}
}

func TestBuiltinCosts(t *testing.T) {
	sqrtC := cyclesOf(t, "fs = sqrt(fa[0]);")
	fabsC := cyclesOf(t, "fs = fabs(fa[0]);")
	powC := cyclesOf(t, "fs = pow(fa[0], fa[1]);")
	if sqrtC <= fabsC {
		t.Errorf("sqrt (%g) should cost more than fabs (%g)", sqrtC, fabsC)
	}
	if powC <= sqrtC {
		t.Errorf("pow (%g) should cost more than sqrt (%g)", powC, sqrtC)
	}
}

func TestTwoDimIndexCostsMore(t *testing.T) {
	src := `float m[4][4]; float v[4]; float s;
void main(void) { s = m[1][2]; s = v[1]; }`
	prog, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := NewModel(nil)
	stmts := prog.Func("main").Body.Stmts
	two := m.StmtSelfCycles(stmts[0])
	one := m.StmtSelfCycles(stmts[1])
	if two <= one {
		t.Errorf("2-D access (%g) should cost more than 1-D (%g)", two, one)
	}
}

func TestCompoundAssignChargesReadModifyWrite(t *testing.T) {
	compound := cyclesOf(t, "fs += fa[0];")
	plain := cyclesOf(t, "fs = fa[0];")
	if compound <= plain {
		t.Errorf("compound assign (%g) should cost more than plain (%g)", compound, plain)
	}
}

func TestLoopHeaderCost(t *testing.T) {
	s := stmtOf(t, "for (int i = 0; i < 10; i++) { is = 1; }")
	m := NewModel(nil)
	c := m.StmtSelfCycles(s)
	if c <= 0 {
		t.Errorf("loop header should have positive per-iteration cost, got %g", c)
	}
	// The header cost must exclude the body.
	heavyBody := stmtOf(t, "for (int i = 0; i < 10; i++) { fs = sqrt(fa[0]) + pow(fa[1], fa[2]); }")
	if m.StmtSelfCycles(heavyBody) != c {
		t.Errorf("loop header cost should not include the body")
	}
}

func TestUserCallChargesOverheadOnly(t *testing.T) {
	src := `float heavy(float x) { float r = x; for (int i = 0; i < 100; i++) { r = r * 1.001 + sqrt(r); } return r; }
float s;
void main(void) { s = heavy(2.0); }`
	prog, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := NewModel(nil)
	callCost := m.StmtSelfCycles(prog.Func("main").Body.Stmts[0])
	if callCost > 50 {
		t.Errorf("call site should charge only overhead, got %g cycles", callCost)
	}
}

func TestClassScaling(t *testing.T) {
	m := NewModel(nil)
	s := stmtOf(t, "fs = fa[0] * fb[0] + fa[1];")
	cycles := m.StmtSelfCycles(s)
	slow := platform.ProcClass{Name: "slow", MHz: 100, Count: 1, CPIFactor: 1}
	fast := platform.ProcClass{Name: "fast", MHz: 500, Count: 1, CPIFactor: 1}
	ns1 := NanosOn(slow, cycles)
	ns2 := NanosOn(fast, cycles)
	if ns1/ns2 < 4.9 || ns1/ns2 > 5.1 {
		t.Errorf("100 vs 500 MHz should be 5x apart, got %g", ns1/ns2)
	}
}

func TestTernaryAveragesArms(t *testing.T) {
	m := NewModel(nil)
	cheap := m.StmtSelfCycles(stmtOf(t, "fs = is > 0 ? 1.0 : 2.0;"))
	expensive := m.StmtSelfCycles(stmtOf(t, "fs = is > 0 ? sqrt(fa[0]) : pow(fa[0], fa[1]);"))
	if expensive <= cheap {
		t.Errorf("expensive ternary arms should raise cost: %g vs %g", expensive, cheap)
	}
}

func TestTableValidate(t *testing.T) {
	tab := Default()
	if err := tab.Validate(); err != nil {
		t.Fatalf("default table invalid: %v", err)
	}
	tab.FloatDiv = 0
	if err := tab.Validate(); err == nil {
		t.Errorf("zero FloatDiv should be rejected")
	}
}

func TestShortCircuitAndBranchCosts(t *testing.T) {
	and := cyclesOf(t, "is = ia[0] > 0 && ia[1] > 0;")
	bit := cyclesOf(t, "is = (ia[0] > 0) & (ia[1] > 0);")
	if and <= bit {
		t.Errorf("&& (%g) should cost more than & (%g) due to branching", and, bit)
	}
}
