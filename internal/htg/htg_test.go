package htg

import (
	"strings"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/interp"
	"repro/internal/minic"
)

func build(t *testing.T, src string) *Graph {
	t.Helper()
	prog, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	in := interp.New(prog)
	prof, err := in.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	g, err := Build(prog, prof, Config{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func findByLabel(n *Node, label string) *Node {
	if strings.Contains(n.Label, label) {
		return n
	}
	for _, c := range n.Children {
		if r := findByLabel(c, label); r != nil {
			return r
		}
	}
	return nil
}

const pipelineSrc = `
float a[64]; float b[64]; float c[64]; float s;

void main(void) {
    for (int i = 0; i < 64; i++) {
        a[i] = i * 1.5;
    }
    for (int j = 0; j < 64; j++) {
        b[j] = a[j] * 2.0;
    }
    for (int k = 0; k < 64; k++) {
        c[k] = a[k] + 1.0;
    }
    for (int m = 0; m < 64; m++) {
        s += b[m] + c[m];
    }
}
`

func TestHierarchyShape(t *testing.T) {
	g := build(t, pipelineSrc)
	if g.Root.Kind != KindRoot {
		t.Fatalf("root kind %v", g.Root.Kind)
	}
	if len(g.Root.Children) != 4 {
		t.Fatalf("root should have 4 loop children, got %d", len(g.Root.Children))
	}
	for i, c := range g.Root.Children {
		if c.Kind != KindLoop {
			t.Errorf("child %d kind = %v, want loop", i, c.Kind)
		}
		if c.Count != 1 {
			t.Errorf("child %d count = %g, want 1", i, c.Count)
		}
	}
	// Loop body statement executes 64x per loop execution.
	loop := g.Root.Children[0]
	var body *Node
	for _, c := range loop.Children {
		if c.Kind == KindSimple && strings.Contains(c.Label, "a[") {
			body = c
		}
	}
	if body == nil {
		t.Fatalf("body node not found")
	}
	if body.Count != 64 {
		t.Errorf("body count = %g, want 64", body.Count)
	}
}

func TestDependenceEdgesBetweenLoops(t *testing.T) {
	g := build(t, pipelineSrc)
	kids := g.Root.Children
	// loop0 defines a, used by loop1 and loop2; loops 1,2 feed loop3.
	edgeTo := func(from *Node, to *Node) *Edge {
		for _, e := range from.Edges {
			if e.To == to {
				return e
			}
		}
		return nil
	}
	if e := edgeTo(kids[0], kids[1]); e == nil || !e.Kind.Has(dataflow.DepFlow) || e.Bytes != 64*4 {
		t.Errorf("loop0->loop1 edge wrong: %+v", e)
	}
	if e := edgeTo(kids[0], kids[2]); e == nil || !e.Kind.Has(dataflow.DepFlow) {
		t.Errorf("loop0->loop2 edge missing")
	}
	if e := edgeTo(kids[1], kids[2]); e != nil && e.Kind.Has(dataflow.DepFlow) {
		t.Errorf("loop1->loop2 should have no flow dependence")
	}
	if e := edgeTo(kids[1], kids[3]); e == nil {
		t.Errorf("loop1->loop3 edge missing")
	}
	if e := edgeTo(kids[2], kids[3]); e == nil {
		t.Errorf("loop2->loop3 edge missing")
	}
}

func TestLoopInfoAttached(t *testing.T) {
	g := build(t, pipelineSrc)
	for i, c := range g.Root.Children[:3] {
		if c.Loop == nil || !c.Loop.Parallel {
			t.Errorf("loop %d should be DOALL: %+v", i, c.Loop)
		}
	}
	red := g.Root.Children[3]
	if red.Loop == nil || !red.Loop.Parallel || len(red.Loop.Reductions) != 1 {
		t.Errorf("loop 3 should be a parallel reduction: %+v", red.Loop)
	}
}

func TestSubtreeCyclesAdditive(t *testing.T) {
	g := build(t, pipelineSrc)
	rootCycles := g.Root.SubtreeCycles
	sum := g.Root.SelfCycles
	for _, c := range g.Root.Children {
		sum += c.Count * c.SubtreeCycles
	}
	if rootCycles != sum {
		t.Errorf("root subtree cycles %g != sum %g", rootCycles, sum)
	}
	if rootCycles <= 0 {
		t.Errorf("root cycles must be positive")
	}
	// Each of the four loops does similar work; totals should be same
	// order of magnitude.
	c0 := g.Root.Children[0].SubtreeCycles
	for i, c := range g.Root.Children {
		if c.SubtreeCycles < c0/4 || c.SubtreeCycles > c0*4 {
			t.Errorf("loop %d cycles %g wildly different from loop 0 (%g)", i, c.SubtreeCycles, c0)
		}
	}
}

func TestCallBecomesHierarchical(t *testing.T) {
	g := build(t, `
float v[32]; float s;
void fill(float a[32]) {
    for (int i = 0; i < 32; i++) { a[i] = i * 0.5; }
}
float total(float a[32]) {
    float r = 0.0;
    for (int i = 0; i < 32; i++) { r += a[i]; }
    return r;
}
void main(void) {
    fill(v);
    s = total(v);
}
`)
	fill := findByLabel(g.Root, "call fill")
	if fill == nil || fill.Kind != KindCall {
		t.Fatalf("fill call not hierarchical")
	}
	if !fill.IsHierarchical() {
		t.Fatalf("fill should have children")
	}
	tot := findByLabel(g.Root, "call total")
	if tot == nil || !tot.IsHierarchical() {
		t.Fatalf("total call not hierarchical (assignment form)")
	}
	// There must be a flow edge fill -> total through v.
	found := false
	for _, e := range fill.Edges {
		if e.To == tot && e.Kind.Has(dataflow.DepFlow) {
			found = true
		}
	}
	if !found {
		t.Errorf("missing flow edge fill->total")
	}
}

func TestRecursionStaysSimple(t *testing.T) {
	g := build(t, `
int r;
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
void main(void) {
    r = fib(10);
}
`)
	// fib is recursive: the call must be atomic but still carry its cost.
	call := g.Root.Children[0]
	if call.IsHierarchical() {
		// One inlining level is fine (depth guard), but the recursive call
		// inside must not expand into itself endlessly - Build returning at
		// all proves the guard works.
		t.Log("top-level call expanded one level; recursion guard held")
	}
	if g.Root.SubtreeCycles <= 0 {
		t.Errorf("recursive program should still have positive cost")
	}
}

func TestIfIsAtomicButPriced(t *testing.T) {
	g := build(t, `
int a[100]; int evens;
void main(void) {
    for (int i = 0; i < 100; i++) {
        if (i % 2 == 0) {
            evens = evens + i;
        } else {
            a[i] = i;
        }
    }
}
`)
	loop := g.Root.Children[0]
	var ifNode *Node
	for _, c := range loop.Children {
		if c.Label == "if" {
			ifNode = c
		}
	}
	if ifNode == nil {
		t.Fatalf("if node missing")
	}
	if ifNode.IsHierarchical() {
		t.Errorf("if should be atomic")
	}
	if ifNode.SubtreeCycles <= ifNode.SelfCycles {
		t.Errorf("if subtree cost (%g) should include branch bodies beyond header (%g)",
			ifNode.SubtreeCycles, ifNode.SelfCycles)
	}
}

func TestRegionBoundaryBytes(t *testing.T) {
	g := build(t, `
float x; float y;
void main(void) {
    float t = x * 2.0;   // reads x (external): in-bytes
    y = t + 1.0;         // writes y (external): out-bytes
}
`)
	first := g.Root.Children[0]
	second := g.Root.Children[1]
	if first.InBytes < 4 {
		t.Errorf("first statement should import x: in=%d", first.InBytes)
	}
	if second.OutBytes < 4 {
		t.Errorf("second statement should export y: out=%d", second.OutBytes)
	}
	// t is region-local: the edge carries 4 bytes.
	if len(first.Edges) != 1 || first.Edges[0].Bytes != 4 {
		t.Errorf("t edge wrong: %+v", first.Edges)
	}
}

func TestDOTOutput(t *testing.T) {
	g := build(t, pipelineSrc)
	dot := g.DOT()
	if !strings.Contains(dot, "digraph htg") || !strings.Contains(dot, "->") {
		t.Errorf("DOT output malformed")
	}
}

func TestDeadCodeHasZeroCount(t *testing.T) {
	g := build(t, `
int a;
void main(void) {
    if (0) {
        a = 1;
    }
    a = 2;
}
`)
	ifNode := g.Root.Children[0]
	if ifNode.TotalCount != 1 {
		t.Errorf("if executes once, got %d", ifNode.TotalCount)
	}
	// The never-taken branch contributes no weighted cost beyond the header.
	if ifNode.SubtreeCycles > ifNode.SelfCycles {
		t.Errorf("dead branch should not add cost: subtree=%g self=%g",
			ifNode.SubtreeCycles, ifNode.SelfCycles)
	}
}
