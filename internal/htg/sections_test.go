package htg

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/interp"
	"repro/internal/minic"
)

// buildCfg compiles, profiles and builds with an explicit config.
func buildCfg(t *testing.T, src string, cfg Config) *Graph {
	t.Helper()
	prog, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	prof, err := interp.New(prog).Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	g, err := Build(prog, prof, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

const disjointHalvesSrc = `
float u[64];

void main(void) {
    u[0] = 1.0;
    u[63] = 2.0;
    for (int i = 0; i < 64; i++) {
        u[i] = u[i] + 1.0;
    }
}
`

// TestSectionsDropDisjointEdge: the two single-element writes are disjoint;
// the section analysis drops the output-dependence edge the whole-symbol
// test draws between them, while both keep their (overlapping) edges to the
// sweep loop.
func TestSectionsDropDisjointEdge(t *testing.T) {
	g := buildCfg(t, disjointHalvesSrc, Config{})
	dropped, saved := g.SharpenStats()
	if dropped == 0 {
		t.Fatalf("expected at least one dropped edge")
	}
	if saved <= 0 {
		t.Errorf("expected positive bytes saved, got %d", saved)
	}
	// The sweep loop still depends on both writes — with one-element flow.
	kids := g.Root.Children
	if len(kids) != 3 {
		t.Fatalf("expected 3 root children, got %d", len(kids))
	}
	for i := 0; i < 2; i++ {
		found := false
		for _, e := range kids[i].Edges {
			if e.To == kids[2] {
				found = true
				if e.Bytes >= e.WholeBytes {
					t.Errorf("edge %d->2 not sharpened: bytes=%d whole=%d", i, e.Bytes, e.WholeBytes)
				}
				if e.Bytes != 4 {
					t.Errorf("edge %d->2 should carry one element (4B), got %d", i, e.Bytes)
				}
			}
		}
		if !found {
			t.Errorf("missing edge from write %d to sweep loop", i)
		}
	}
	// No edge between the two disjoint writes.
	for _, e := range kids[0].Edges {
		if e.To == kids[1] {
			t.Errorf("disjoint writes still linked: %v", e.Kind)
		}
	}
}

// TestDisableSectionsRestoresWholeSymbol: with DisableSections the graph
// matches the historical whole-symbol behavior.
func TestDisableSectionsRestoresWholeSymbol(t *testing.T) {
	g := buildCfg(t, disjointHalvesSrc, Config{DisableSections: true})
	if n, _ := g.SharpenStats(); n != 0 || len(g.Dropped) != 0 {
		t.Fatalf("disabled sections must not drop edges")
	}
	kids := g.Root.Children
	found := false
	for _, e := range kids[0].Edges {
		if e.To == kids[1] {
			found = true
		}
	}
	if !found {
		t.Errorf("whole-symbol output dependence between the writes should exist when disabled")
	}
	for _, n := range g.Nodes() {
		for _, e := range n.Edges {
			if e.Bytes != e.WholeBytes {
				t.Errorf("disabled sections must not shrink bytes: %d vs %d", e.Bytes, e.WholeBytes)
			}
		}
	}
}

// TestSectionReportDeterministic: the -sections report is byte-identical
// across rebuilds of the same program.
func TestSectionReportDeterministic(t *testing.T) {
	var first string
	for run := 0; run < 5; run++ {
		g := buildCfg(t, disjointHalvesSrc, Config{})
		rep := g.SectionReport()
		if run == 0 {
			first = rep
			if first == "" {
				t.Fatalf("empty section report")
			}
			continue
		}
		if rep != first {
			t.Fatalf("section report differs between runs:\n%s\nvs\n%s", first, rep)
		}
	}
}

// TestSectionsSharpenBenchmarks: across the UTDSP suite, section analysis
// must strictly gain somewhere (dropped edge or reduced bytes) and must
// never add edges or grow bytes relative to the whole-symbol graphs.
func TestSectionsSharpenBenchmarks(t *testing.T) {
	totalDropped, totalSaved := 0, 0
	for _, b := range bench.All() {
		g := buildCfg(t, b.Source, Config{})
		gOff := buildCfg(t, b.Source, Config{DisableSections: true})
		edges := func(g *Graph) (n, bytes int) {
			for _, nd := range g.Nodes() {
				for _, e := range nd.Edges {
					n++
					bytes += e.Bytes
				}
			}
			return
		}
		nOn, bOn := edges(g)
		nOff, bOff := edges(gOff)
		if nOn > nOff {
			t.Errorf("%s: sections added edges (%d > %d)", b.Name, nOn, nOff)
		}
		if bOn > bOff {
			t.Errorf("%s: sections grew comm bytes (%d > %d)", b.Name, bOn, bOff)
		}
		d, s := g.SharpenStats()
		totalDropped += d
		totalSaved += s
	}
	if totalDropped == 0 && totalSaved == 0 {
		t.Errorf("section analysis bought nothing across the whole suite")
	}
}

// BenchmarkDeps measures full dependence analysis + HTG construction with
// section sharpening over the benchmark suite, reporting edges-dropped and
// bytes-saved counters alongside ns/op.
func BenchmarkDeps(b *testing.B) {
	type prepared struct {
		prog *minic.Program
		prof *interp.Profile
	}
	var progs []prepared
	for _, bm := range bench.All() {
		prog, err := minic.Compile(bm.Source)
		if err != nil {
			b.Fatalf("compile %s: %v", bm.Name, err)
		}
		prof, err := interp.New(prog).Run()
		if err != nil {
			b.Fatalf("run %s: %v", bm.Name, err)
		}
		progs = append(progs, prepared{prog, prof})
	}
	b.ResetTimer()
	dropped, saved := 0, 0
	for i := 0; i < b.N; i++ {
		dropped, saved = 0, 0
		for _, p := range progs {
			g, err := Build(p.prog, p.prof, Config{})
			if err != nil {
				b.Fatal(err)
			}
			d, s := g.SharpenStats()
			dropped += d
			saved += s
		}
	}
	b.ReportMetric(float64(dropped), "edges-dropped")
	b.ReportMetric(float64(saved), "bytes-saved")
}
