// Package htg builds the Augmented Hierarchical Task Graph of Section III:
// a tree whose hierarchy mirrors the source program's control structure.
// Simple nodes represent atomic statements; hierarchical nodes (loops,
// calls, whole function bodies) contain child nodes one level deeper and a
// pair of communication in/out nodes that encapsulate data flowing across
// the region boundary. Every node is annotated with profiled execution
// counts, cost-model cycles (convertible to per-processor-class execution
// times) and data-flow edges to its siblings carrying communicated bytes.
package htg

import (
	"fmt"
	"strings"

	"repro/internal/costmodel"
	"repro/internal/dataflow"
	"repro/internal/interp"
	"repro/internal/minic"
	"repro/internal/platform"
)

// NodeKind classifies HTG nodes.
type NodeKind int

// Node kinds.
const (
	// KindSimple is an atomic statement (assignment, conditional treated as
	// a unit, recursive call, ...).
	KindSimple NodeKind = iota
	// KindLoop is a for/while statement whose children are the loop body's
	// statement nodes.
	KindLoop
	// KindCall is a call statement whose children mirror the callee's body
	// (the function granularity level of Figure 1).
	KindCall
	// KindRoot is a function body region (the SEQ node of Figure 1).
	KindRoot
)

// String names the kind.
func (k NodeKind) String() string {
	switch k {
	case KindSimple:
		return "simple"
	case KindLoop:
		return "loop"
	case KindCall:
		return "call"
	case KindRoot:
		return "root"
	}
	return fmt.Sprintf("NodeKind(%d)", int(k))
}

// Edge is a data-flow edge between sibling nodes (or between a region's
// communication boundary and a child, when From/To is nil).
type Edge struct {
	From, To *Node
	Kind     dataflow.DepKind
	// Bytes is the flow-dependence volume communicated when From and To
	// execute in different tasks, shrunk to the overlapping array section
	// when the section analysis can bound both endpoints.
	Bytes int
	// WholeBytes is the flow volume of the whole-symbol dependence test
	// (what Bytes was before section sharpening; equal to Bytes when the
	// analysis could not sharpen).
	WholeBytes int
}

// DroppedEdge records a sibling dependence the whole-symbol test reported
// but the section analysis proved disjoint — the parallelism the sharper
// analysis buys, kept for reporting and for the verifier's re-derivation.
type DroppedEdge struct {
	From, To *Node
	Kind     dataflow.DepKind
	// WholeBytes is the flow volume the whole-symbol test would have
	// communicated along the dropped edge.
	WholeBytes int
}

// Node is one HTG node.
type Node struct {
	ID    int
	Kind  NodeKind
	Stmt  minic.Stmt // underlying statement; nil only for the root region
	Label string

	Parent   *Node
	Children []*Node

	// Count is the number of executions of this node per single execution
	// of its parent (profiled average; 0 when the node never ran).
	Count float64
	// TotalCount is the absolute profiled execution count.
	TotalCount int64
	// SelfCycles is the cost-model cycle count of one execution of the
	// node's own statement (headers only for hierarchical nodes).
	SelfCycles float64
	// SubtreeCycles is the cycle count of one full execution of the node
	// including all nested children (SelfCycles + sum over children of
	// child.Count * child.SubtreeCycles).
	SubtreeCycles float64

	// Acc aggregates the reads/writes of the whole subtree.
	Acc *dataflow.Accesses
	// Secs holds the per-symbol array sections of the subtree's accesses
	// (nil when section analysis is disabled).
	Secs *dataflow.Sections

	// Edges lists dependences from this node to later siblings.
	Edges []*Edge

	// InBytes is the volume of data flowing into this node from outside
	// its parent region (upward-exposed uses); OutBytes the volume flowing
	// out (defs that are live after the region).
	InBytes  int
	OutBytes int

	// Loop holds iteration-parallelism facts for KindLoop nodes.
	Loop *dataflow.LoopInfo
}

// IsHierarchical reports whether the node has children to parallelize.
func (n *Node) IsHierarchical() bool { return len(n.Children) > 0 }

// CostNanosOn returns the execution time of one full execution of the node
// on the given processor class.
func (n *Node) CostNanosOn(pc platform.ProcClass) float64 {
	return pc.CyclesToNanos(n.SubtreeCycles)
}

// Graph is a complete HTG for one program.
type Graph struct {
	Program *minic.Program
	Root    *Node
	// Sums holds the interprocedural effect summaries used during
	// construction (needed again by the parallelizer).
	Sums dataflow.Summaries
	// Secs holds the interprocedural section summaries (nil when section
	// analysis is disabled).
	Secs dataflow.SectionSummaries
	// Model is the cost model used for annotation.
	Model *costmodel.Model
	// Dropped lists the dependences removed by the section analysis, in
	// construction order.
	Dropped []*DroppedEdge
	nodes   []*Node
}

// SharpenStats summarizes what the section analysis bought: the number of
// dropped edges and the total communication bytes removed (dropped edges'
// whole-symbol flow volume plus the shrinkage of surviving edges).
func (g *Graph) SharpenStats() (dropped, bytesSaved int) {
	for _, d := range g.Dropped {
		bytesSaved += d.WholeBytes
	}
	for _, n := range g.nodes {
		for _, e := range n.Edges {
			bytesSaved += e.WholeBytes - e.Bytes
		}
	}
	return len(g.Dropped), bytesSaved
}

// Nodes returns all nodes in construction order.
func (g *Graph) Nodes() []*Node { return g.nodes }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// Builder configuration.
type Config struct {
	// Model is the cost model (Default when nil).
	Model *costmodel.Model
	// MaxCallDepth bounds call inlining in the hierarchy (default 6).
	MaxCallDepth int
	// DisableSections turns off the array-section dependence sharpening,
	// reverting to whole-symbol edges (for comparison and debugging).
	DisableSections bool
}

// Build extracts the HTG of prog's main function, annotated with prof's
// execution counts.
func Build(prog *minic.Program, prof *interp.Profile, cfg Config) (*Graph, error) {
	main := prog.Func("main")
	if main == nil {
		return nil, fmt.Errorf("htg: program has no main function")
	}
	if cfg.Model == nil {
		cfg.Model = costmodel.NewModel(nil)
	}
	if cfg.MaxCallDepth == 0 {
		cfg.MaxCallDepth = 6
	}
	g := &Graph{
		Program: prog,
		Sums:    dataflow.Summarize(prog),
		Model:   cfg.Model,
	}
	if !cfg.DisableSections {
		g.Secs = dataflow.SummarizeSections(prog, g.Sums)
	}
	b := &builder{g: g, prof: prof, cfg: cfg}
	root := b.newNode(KindRoot, nil, "main")
	root.TotalCount = 1
	root.Count = 1
	b.buildRegion(root, main.Body.Stmts, 1, map[*minic.FuncDecl]bool{main: true})
	b.annotateCosts(root)
	g.Root = root
	return g, nil
}

type builder struct {
	g    *Graph
	prof *interp.Profile
	cfg  Config
}

func (b *builder) newNode(kind NodeKind, stmt minic.Stmt, label string) *Node {
	n := &Node{ID: len(b.g.nodes), Kind: kind, Stmt: stmt, Label: label}
	b.g.nodes = append(b.g.nodes, n)
	return n
}

func (b *builder) count(s minic.Stmt) int64 {
	if b.prof == nil {
		return 1
	}
	return b.prof.Count(s)
}

// buildRegion creates child nodes for the statements of a region owned by
// parent, whose own total execution count is parentCount.
func (b *builder) buildRegion(parent *Node, stmts []minic.Stmt, parentCount int64, inStack map[*minic.FuncDecl]bool) {
	for _, s := range stmts {
		b.buildStmt(parent, s, parentCount, inStack)
	}
	b.linkSiblings(parent)
}

// buildStmt appends the node(s) for statement s to parent.
func (b *builder) buildStmt(parent *Node, s minic.Stmt, parentCount int64, inStack map[*minic.FuncDecl]bool) {
	total := b.count(s)
	switch st := s.(type) {
	case *minic.BlockStmt:
		// Flatten nested bare blocks into the parent region.
		for _, inner := range st.Stmts {
			b.buildStmt(parent, inner, parentCount, inStack)
		}
		return
	case *minic.ForStmt:
		n := b.newNode(KindLoop, s, loopLabel(st))
		b.attach(parent, n, total, parentCount)
		if st.Init != nil {
			// The init statement runs once per loop execution.
			b.buildStmt(n, st.Init, total, inStack)
		}
		b.buildRegionInto(n, st.Body.Stmts, total, inStack)
		b.linkSiblings(n)
		n.Loop = dataflow.AnalyzeLoop(st, b.g.Sums)
		return
	case *minic.WhileStmt:
		n := b.newNode(KindLoop, s, "while")
		b.attach(parent, n, total, parentCount)
		b.buildRegionInto(n, st.Body.Stmts, total, inStack)
		b.linkSiblings(n)
		return
	case *minic.ExprStmt:
		if call := directCall(st.X); call != nil && call.Fn != nil &&
			!inStack[call.Fn] && len(inStack) < b.cfg.MaxCallDepth {
			n := b.newNode(KindCall, s, "call "+call.Name)
			b.attach(parent, n, total, parentCount)
			calleeCount := int64(1)
			if b.prof != nil {
				calleeCount = b.prof.FuncCount[call.Fn]
			}
			if calleeCount == 0 {
				calleeCount = 1
			}
			inStack[call.Fn] = true
			b.buildRegionInto(n, call.Fn.Body.Stmts, calleeCount, inStack)
			delete(inStack, call.Fn)
			b.linkSiblings(n)
			return
		}
	}
	// Everything else (assignments, conditionals, declarations, returns,
	// calls in complex expressions, recursive calls) is a simple node.
	n := b.newNode(KindSimple, s, stmtLabel(s))
	b.attach(parent, n, total, parentCount)
}

// buildRegionInto is buildRegion without the sibling linking (callers link
// after appending extra children).
func (b *builder) buildRegionInto(parent *Node, stmts []minic.Stmt, parentCount int64, inStack map[*minic.FuncDecl]bool) {
	for _, s := range stmts {
		b.buildStmt(parent, s, parentCount, inStack)
	}
}

func (b *builder) attach(parent *Node, n *Node, total, parentCount int64) {
	n.Parent = parent
	n.TotalCount = total
	if parentCount > 0 {
		n.Count = float64(total) / float64(parentCount)
	}
	parent.Children = append(parent.Children, n)
}

// directCall unwraps "f(...)" or "x = f(...)" expression statements.
func directCall(e minic.Expr) *minic.CallExpr {
	switch ex := e.(type) {
	case *minic.CallExpr:
		return ex
	case *minic.AssignExpr:
		if ex.Op == minic.TokAssign {
			if c, ok := ex.RHS.(*minic.CallExpr); ok {
				return c
			}
		}
	}
	return nil
}

// linkSiblings computes access aggregates and dependence edges among the
// children of parent, plus region-boundary communication volumes. With
// section analysis enabled, each whole-symbol dependence is re-tested
// against the endpoints' array sections: provably disjoint conflicts are
// dropped (recorded in Graph.Dropped), surviving flow edges carry the
// overlapping section's bytes instead of the whole symbol's.
func (b *builder) linkSiblings(parent *Node) {
	kids := parent.Children
	for _, k := range kids {
		if k.Acc == nil {
			k.Acc = dataflow.StmtAccesses(k.Stmt, b.g.Sums)
		}
		if k.Secs == nil && b.g.Secs != nil {
			k.Secs = dataflow.StmtSections(k.Stmt, b.g.Sums, b.g.Secs)
		}
	}
	for i := 0; i < len(kids); i++ {
		for j := i + 1; j < len(kids); j++ {
			whole := dataflow.DependsOn(kids[i].Acc, kids[j].Acc)
			d := whole
			if b.g.Secs != nil {
				d = dataflow.DependsOnSections(kids[i].Acc, kids[j].Acc, kids[i].Secs, kids[j].Secs)
			}
			if d.Exists() {
				kids[i].Edges = append(kids[i].Edges, &Edge{
					From: kids[i], To: kids[j], Kind: d.Kind,
					Bytes: d.FlowBytes, WholeBytes: whole.FlowBytes,
				})
			} else if whole.Exists() {
				b.g.Dropped = append(b.g.Dropped, &DroppedEdge{
					From: kids[i], To: kids[j], Kind: whole.Kind, WholeBytes: whole.FlowBytes,
				})
			}
		}
	}
	// Region boundary volumes: a child's upward-exposed uses come from
	// outside (or from the region entry), its defs of externally visible
	// symbols flow out. "External" means not declared by a sibling.
	declared := dataflow.SymSet{}
	for _, k := range kids {
		if d, ok := k.Stmt.(*minic.DeclStmt); ok && d.Sym != nil {
			declared.Add(d.Sym)
		}
	}
	definedBefore := dataflow.SymSet{}
	for _, k := range kids {
		in := 0
		for sym := range k.Acc.Reads {
			if !definedBefore.Has(sym) && !declared.Has(sym) {
				in += sym.Type.SizeBytes()
			}
		}
		k.InBytes = in
		out := 0
		for sym := range k.Acc.Writes {
			if !declared.Has(sym) {
				out += sym.Type.SizeBytes()
			}
		}
		k.OutBytes = out
		for sym := range k.Acc.Writes {
			definedBefore.Add(sym)
		}
	}
}

// annotateCosts fills SelfCycles and SubtreeCycles bottom-up.
func (b *builder) annotateCosts(n *Node) {
	if n.Stmt != nil {
		n.SelfCycles = b.g.Model.StmtSelfCycles(n.Stmt)
	}
	// Hierarchical nodes: the self cost covers only the header; nested
	// statement costs come from the children. Simple nodes that hide
	// nested statements (conditionals) need their full subtree priced.
	if n.Kind == KindSimple {
		n.SubtreeCycles = b.simpleSubtreeCycles(n.Stmt, n.TotalCount)
		return
	}
	sum := n.SelfCycles
	if n.Kind == KindLoop {
		// Header executes once per iteration (plus once for the final
		// failing test); approximate with the body count.
		iters := 0.0
		for _, c := range n.Children {
			if c.Count > iters {
				iters = c.Count
			}
		}
		if iters < 1 {
			iters = 1
		}
		sum = n.SelfCycles * iters
	}
	for _, c := range n.Children {
		b.annotateCosts(c)
		sum += c.Count * c.SubtreeCycles
	}
	n.SubtreeCycles = sum
}

// simpleSubtreeCycles prices an atomic node including everything nested in
// it (conditional branches weighted by profile, nested loops by counts,
// called functions by their bodies).
func (b *builder) simpleSubtreeCycles(s minic.Stmt, ownCount int64) float64 {
	self := b.g.Model.StmtSelfCycles(s)
	total := self * relWeight(s, ownCount, b)
	switch st := s.(type) {
	case *minic.IfStmt:
		for _, inner := range st.Then.Stmts {
			total += b.simpleSubtreeCycles(inner, ownCount)
		}
		if st.Else != nil {
			total += b.simpleSubtreeCycles(st.Else, ownCount)
		}
	case *minic.BlockStmt:
		for _, inner := range st.Stmts {
			total += b.simpleSubtreeCycles(inner, ownCount)
		}
	case *minic.ForStmt:
		if st.Init != nil {
			total += b.simpleSubtreeCycles(st.Init, ownCount)
		}
		for _, inner := range st.Body.Stmts {
			total += b.simpleSubtreeCycles(inner, ownCount)
		}
	case *minic.WhileStmt:
		for _, inner := range st.Body.Stmts {
			total += b.simpleSubtreeCycles(inner, ownCount)
		}
	case *minic.ExprStmt:
		if call := directCall(st.X); call != nil && call.Fn != nil {
			total += b.calleeCycles(call.Fn, ownCount, map[*minic.FuncDecl]bool{})
		}
	}
	return total
}

// relWeight converts absolute profile counts into executions per single
// execution of the atomic node that owns this subtree.
func relWeight(s minic.Stmt, ownCount int64, b *builder) float64 {
	if ownCount <= 0 {
		return 0
	}
	c := b.count(s)
	if c == 0 {
		return 0
	}
	return float64(c) / float64(ownCount)
}

// calleeCycles prices one average invocation of fn (guarding recursion).
func (b *builder) calleeCycles(fn *minic.FuncDecl, siteCount int64, seen map[*minic.FuncDecl]bool) float64 {
	if seen[fn] {
		return 0
	}
	seen[fn] = true
	defer delete(seen, fn)
	calls := int64(1)
	if b.prof != nil && b.prof.FuncCount[fn] > 0 {
		calls = b.prof.FuncCount[fn]
	}
	total := 0.0
	var walk func(s minic.Stmt)
	walk = func(s minic.Stmt) {
		total += b.g.Model.StmtSelfCycles(s) * float64(b.count(s))
		switch st := s.(type) {
		case *minic.BlockStmt:
			for _, inner := range st.Stmts {
				walk(inner)
			}
		case *minic.IfStmt:
			for _, inner := range st.Then.Stmts {
				walk(inner)
			}
			if st.Else != nil {
				walk(st.Else)
			}
		case *minic.ForStmt:
			if st.Init != nil {
				walk(st.Init)
			}
			for _, inner := range st.Body.Stmts {
				walk(inner)
			}
		case *minic.WhileStmt:
			for _, inner := range st.Body.Stmts {
				walk(inner)
			}
		case *minic.ExprStmt:
			if call := directCall(st.X); call != nil && call.Fn != nil {
				total += b.calleeCycles(call.Fn, b.count(s), seen) * float64(b.count(s))
			}
		}
	}
	for _, s := range fn.Body.Stmts {
		walk(s)
	}
	return total / float64(calls)
}

func loopLabel(fs *minic.ForStmt) string {
	if fs.Init != nil {
		if d, ok := fs.Init.(*minic.DeclStmt); ok {
			return "for " + d.Name
		}
	}
	return "for"
}

func stmtLabel(s minic.Stmt) string {
	switch st := s.(type) {
	case *minic.DeclStmt:
		return "decl " + st.Name
	case *minic.ExprStmt:
		pr := &minic.Printer{}
		lbl := pr.Expr(st.X)
		if len(lbl) > 40 {
			lbl = lbl[:37] + "..."
		}
		return lbl
	case *minic.IfStmt:
		return "if"
	case *minic.ReturnStmt:
		return "return"
	case *minic.WhileStmt:
		return "while"
	case *minic.ForStmt:
		return "for"
	}
	return fmt.Sprintf("%T", s)
}

// DOT renders the graph in Graphviz format for inspection.
func (g *Graph) DOT() string {
	var sb strings.Builder
	sb.WriteString("digraph htg {\n  node [shape=box, fontsize=10];\n")
	var walk func(n *Node)
	walk = func(n *Node) {
		shape := "box"
		if n.IsHierarchical() {
			shape = "folder"
		}
		fmt.Fprintf(&sb, "  n%d [label=%q, shape=%s];\n",
			n.ID, fmt.Sprintf("%s\\ncount=%.1f cyc=%.0f", n.Label, n.Count, n.SubtreeCycles), shape)
		for _, c := range n.Children {
			fmt.Fprintf(&sb, "  n%d -> n%d [style=dotted, arrowhead=none];\n", n.ID, c.ID)
			walk(c)
		}
		for _, e := range n.Edges {
			fmt.Fprintf(&sb, "  n%d -> n%d [label=\"%s %dB\"];\n", e.From.ID, e.To.ID, e.Kind, e.Bytes)
		}
	}
	walk(g.Root)
	sb.WriteString("}\n")
	return sb.String()
}
