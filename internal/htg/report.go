package htg

import (
	"fmt"
	"strings"

	"repro/internal/dataflow"
	"repro/internal/minic"
)

// SectionReport renders every sibling dependence with its array sections
// and communication volumes before/after sharpening, plus the dependences
// the section analysis dropped. The output is deterministic: nodes are
// visited in construction order and symbols in (Name, ID) order, so equal
// inputs yield byte-identical reports.
func (g *Graph) SectionReport() string {
	var sb strings.Builder
	dropped, saved := g.SharpenStats()
	fmt.Fprintf(&sb, "sections: dropped=%d bytes_saved=%d\n", dropped, saved)
	var walk func(n *Node)
	walk = func(n *Node) {
		if len(n.Edges) > 0 || regionHasDrops(g, n) {
			fmt.Fprintf(&sb, "region n%d %s\n", n.ID, n.Label)
			for _, c := range n.Children {
				for _, e := range c.Edges {
					fmt.Fprintf(&sb, "  edge n%d -> n%d %s bytes=%d whole=%d\n",
						e.From.ID, e.To.ID, e.Kind, e.Bytes, e.WholeBytes)
					writeConflictSections(&sb, e.From, e.To)
				}
			}
			for _, d := range g.Dropped {
				if d.From.Parent == n {
					fmt.Fprintf(&sb, "  dropped n%d -x n%d %s whole=%d\n",
						d.From.ID, d.To.ID, d.Kind, d.WholeBytes)
					writeConflictSections(&sb, d.From, d.To)
				}
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(g.Root)
	return sb.String()
}

func regionHasDrops(g *Graph, n *Node) bool {
	for _, d := range g.Dropped {
		if d.From.Parent == n {
			return true
		}
	}
	return false
}

// writeConflictSections lists, per conflicting symbol, the writer/reader
// sections on both endpoints of a (possibly dropped) dependence.
func writeConflictSections(sb *strings.Builder, from, to *Node) {
	line := func(tag string, sym *minic.Symbol, a, b dataflow.Section) {
		fmt.Fprintf(sb, "    %s %s %s ~ %s\n", tag, sym.Name, a.String(), b.String())
	}
	var fw, fr, tw, tr map[*minic.Symbol]dataflow.Section
	if from.Secs != nil {
		fw, fr = from.Secs.Writes, from.Secs.Reads
	}
	if to.Secs != nil {
		tw, tr = to.Secs.Writes, to.Secs.Reads
	}
	for _, sym := range from.Acc.Writes.Intersect(to.Acc.Reads) {
		if sym.Type.IsArray() {
			line("flow", sym, dataflow.SecOf(fw, sym), dataflow.SecOf(tr, sym))
		}
	}
	for _, sym := range from.Acc.Reads.Intersect(to.Acc.Writes) {
		if sym.Type.IsArray() {
			line("anti", sym, dataflow.SecOf(fr, sym), dataflow.SecOf(tw, sym))
		}
	}
	for _, sym := range from.Acc.Writes.Intersect(to.Acc.Writes) {
		if sym.Type.IsArray() {
			line("out ", sym, dataflow.SecOf(fw, sym), dataflow.SecOf(tw, sym))
		}
	}
}
