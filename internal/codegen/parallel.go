package codegen

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/htg"
	"repro/internal/minic"
)

// emitSolution emits the Go realization of a solution tree rooted at a
// region (the main function body or a call region). Task-parallel regions
// become goroutine groups; chunked loop solutions become partitioned
// loops; anything else falls back to sequential emission.
func (g *Generator) emitSolution(sol *core.Solution) error {
	if sol == nil || len(sol.Tasks) == 0 || sol.Kind == core.KindSequential {
		return fmt.Errorf("codegen: emitSolution needs a parallel solution")
	}
	if sol.Kind == core.KindChunked {
		return g.emitChunked(sol)
	}
	// Task-parallel region. Loop nodes use per-iteration fork-join
	// semantics that the static backend does not implement; run them
	// sequentially (the simulator still models them).
	if sol.Node != nil && sol.Node.Kind == htg.KindLoop {
		return g.seqNode(sol.Node)
	}
	if sol.NumTasks <= 1 {
		// All parallelism is inside the items.
		for _, it := range sol.Tasks[0].Items {
			if err := g.emitItem(it); err != nil {
				return err
			}
		}
		return nil
	}
	// Channels synchronize cross-task data-flow edges. Items are in
	// topological order within tasks, so closing/receiving in program
	// order cannot deadlock.
	taskOf := map[*htg.Node]int{}
	for ti, tp := range sol.Tasks {
		for _, it := range tp.Items {
			if it.Child != nil && it.ChunkFrac == 0 {
				taskOf[it.Child] = ti
			}
		}
	}
	type edge struct {
		ch       string
		from, to *htg.Node
	}
	var edges []edge
	for child, ti := range taskOf {
		for _, e := range child.Edges {
			tj, ok := taskOf[e.To]
			if !ok || tj == ti {
				continue
			}
			g.tmp++
			edges = append(edges, edge{ch: fmt.Sprintf("dep%d", g.tmp), from: child, to: e.To})
		}
	}
	g.l("{")
	g.ind++
	for _, e := range edges {
		g.l("%s := make(chan struct{})", e.ch)
	}
	g.l("var regionWG sync.WaitGroup")
	emitTask := func(tp *core.TaskPlan) error {
		for _, it := range tp.Items {
			// Wait for producers in other tasks.
			for _, e := range edges {
				if it.Child != nil && e.to == it.Child {
					g.l("<-%s", e.ch)
				}
			}
			if err := g.emitItem(it); err != nil {
				return err
			}
			for _, e := range edges {
				if it.Child != nil && e.from == it.Child {
					g.l("close(%s)", e.ch)
				}
			}
		}
		return nil
	}
	for ti := 1; ti < len(sol.Tasks); ti++ {
		g.l("regionWG.Add(1)")
		g.l("go func() {")
		g.ind++
		g.l("defer regionWG.Done()")
		if err := emitTask(sol.Tasks[ti]); err != nil {
			return err
		}
		g.ind--
		g.l("}()")
	}
	if err := emitTask(sol.Tasks[0]); err != nil {
		return err
	}
	g.l("regionWG.Wait()")
	g.ind--
	g.l("}")
	return nil
}

// emitItem emits one work unit of a task.
func (g *Generator) emitItem(it *core.ItemPlan) error {
	if it.ChunkFrac > 0 {
		return fmt.Errorf("codegen: stray chunk item outside a chunked solution")
	}
	if it.Sub != nil && it.Sub.Kind != core.KindSequential && len(it.Sub.Tasks) > 0 {
		switch it.Sub.Kind {
		case core.KindChunked:
			return g.emitChunked(it.Sub)
		case core.KindTaskParallel:
			if it.Sub.Node != nil && it.Sub.Node.Kind != htg.KindLoop {
				return g.emitSolution(it.Sub)
			}
		}
		// Pipelined / loop-level fork-join: sequential fallback.
	}
	return g.seqNode(it.Child)
}

// seqNode emits the node's statement sequentially.
func (g *Generator) seqNode(n *htg.Node) error {
	if n == nil || n.Stmt == nil {
		return nil
	}
	return g.stmt(n.Stmt)
}

// emitChunked partitions a DOALL loop's iteration space across goroutines
// according to the chunk counts of the solution's tasks.
func (g *Generator) emitChunked(sol *core.Solution) error {
	loop, ok := sol.Node.Stmt.(*minic.ForStmt)
	if !ok || sol.Node.Loop == nil || !sol.Node.Loop.Parallel {
		return g.seqNode(sol.Node)
	}
	info := sol.Node.Loop
	lo, hi, ok := g.loopBounds(loop, info)
	if !ok || info.Step != 1 {
		return g.seqNode(sol.Node) // non-canonical loop: sequential fallback
	}
	// Fractions per task.
	fracs := make([]float64, len(sol.Tasks))
	for ti, tp := range sol.Tasks {
		for _, it := range tp.Items {
			fracs[ti] += it.ChunkFrac
		}
	}
	g.tmp++
	id := g.tmp
	g.l("{")
	g.ind++
	g.l("lo%d := %s", id, lo)
	g.l("hi%d := %s", id, hi)
	g.l("span%d := hi%d - lo%d", id, id, id)
	g.l("if span%d < 0 { span%d = 0 }", id, id)
	g.l("var chunkWG%d sync.WaitGroup", id)
	// Cumulative boundaries: task ti covers [cum, cum+frac). The extra
	// tasks are spawned first; the main task's share runs inline.
	bounds := make([][2]float64, len(sol.Tasks))
	cum := 0.0
	for ti := range sol.Tasks {
		from := cum
		cum += fracs[ti]
		to := cum
		if ti == len(sol.Tasks)-1 {
			to = 1.0 // absorb rounding
		}
		bounds[ti] = [2]float64{from, to}
	}
	for ti := 1; ti < len(sol.Tasks); ti++ {
		g.l("chunkWG%d.Add(1)", id)
		g.l("go func() {")
		g.ind++
		g.l("defer chunkWG%d.Done()", id)
		if err := g.chunkBody(loop, info, id, bounds[ti][0], bounds[ti][1]); err != nil {
			return err
		}
		g.ind--
		g.l("}()")
	}
	if err := g.chunkBody(loop, info, id, bounds[0][0], bounds[0][1]); err != nil {
		return err
	}
	g.l("chunkWG%d.Wait()", id)
	g.ind--
	g.l("}")
	return nil
}

// chunkBody emits the loop body over the sub-range [from, to) of the
// iteration space, with reduction accumulators privatized and merged
// under the global reduction mutex.
func (g *Generator) chunkBody(loop *minic.ForStmt, info *dataflow.LoopInfo, id int, from, to float64) error {
	g.tmp++
	sub := g.tmp
	g.l("start%d := lo%d + int64(float64(span%d)*%v)", sub, id, id, from)
	g.l("end%d := lo%d + int64(float64(span%d)*%v)", sub, id, id, to)
	// Privatize reductions.
	oldRenames := g.renames
	g.renames = map[*minic.Symbol]string{}
	for k, v := range oldRenames {
		g.renames[k] = v
	}
	type red struct {
		local string
		sym   *minic.Symbol
		op    dataflow.ReductionOp
	}
	var reds []red
	for _, r := range info.Reductions {
		g.tmp++
		local := fmt.Sprintf("red%d", g.tmp)
		g.renames[r.Sym] = local
		identity := "0"
		if r.Sym.Type.Base == minic.Float {
			identity = "0.0"
		}
		switch r.Op {
		case dataflow.ReduceMul:
			identity = "1"
			if r.Sym.Type.Base == minic.Float {
				identity = "1.0"
			}
		case dataflow.ReduceMin:
			identity = "int64(1) << 62"
			if r.Sym.Type.Base == minic.Float {
				g.usesMath = true
				identity = "math.Inf(1)"
			}
		case dataflow.ReduceMax:
			identity = "-(int64(1) << 62)"
			if r.Sym.Type.Base == minic.Float {
				g.usesMath = true
				identity = "math.Inf(-1)"
			}
		}
		g.l("%s := %s(%s)", local, goScalar(r.Sym.Type.Base), identity)
		reds = append(reds, red{local: local, sym: r.Sym, op: r.Op})
	}
	ind := gname(info.IndVar.Name)
	g.l("for %s := start%d; %s < end%d; %s++ {", ind, sub, ind, sub, ind)
	g.ind++
	for _, s := range loop.Body.Stmts {
		if err := g.stmt(s); err != nil {
			return err
		}
	}
	g.ind--
	g.l("}")
	g.renames = oldRenames
	// Merge reduction partials.
	if len(reds) > 0 {
		g.l("redMu.Lock()")
		for _, r := range reds {
			target := g.rename(r.sym)
			switch r.op {
			case dataflow.ReduceAdd:
				g.l("%s += %s", target, r.local)
			case dataflow.ReduceMul:
				g.l("%s *= %s", target, r.local)
			case dataflow.ReduceMin:
				if r.sym.Type.Base == minic.Float {
					g.usesMath = true
					g.l("%s = math.Min(%s, %s)", target, target, r.local)
				} else {
					g.l("%s = imin(%s, %s)", target, target, r.local)
				}
			case dataflow.ReduceMax:
				if r.sym.Type.Base == minic.Float {
					g.usesMath = true
					g.l("%s = math.Max(%s, %s)", target, target, r.local)
				} else {
					g.l("%s = imax(%s, %s)", target, target, r.local)
				}
			}
		}
		g.l("redMu.Unlock()")
	}
	return nil
}

// loopBounds extracts the canonical bounds of "for (i = LO; i < HI; i++)"
// (or <=, adding one). Returns Go expressions.
func (g *Generator) loopBounds(loop *minic.ForStmt, info *dataflow.LoopInfo) (lo, hi string, ok bool) {
	switch init := loop.Init.(type) {
	case *minic.DeclStmt:
		if init.Sym != info.IndVar || init.Init == nil {
			return "", "", false
		}
		lo = g.exprConv(init.Init, minic.Int)
	case *minic.ExprStmt:
		asn, isAsn := init.X.(*minic.AssignExpr)
		if !isAsn || asn.Op != minic.TokAssign {
			return "", "", false
		}
		vr, isVar := asn.LHS.(*minic.VarRef)
		if !isVar || vr.Sym != info.IndVar {
			return "", "", false
		}
		lo = g.exprConv(asn.RHS, minic.Int)
	default:
		return "", "", false
	}
	cond, isBin := loop.Cond.(*minic.BinaryExpr)
	if !isBin {
		return "", "", false
	}
	switch cond.Op {
	case minic.TokLt:
		hi = g.exprConv(cond.Y, minic.Int)
	case minic.TokLe:
		hi = "(" + g.exprConv(cond.Y, minic.Int) + " + 1)"
	default:
		return "", "", false
	}
	return lo, hi, true
}
