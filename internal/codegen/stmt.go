package codegen

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/minic"
)

// exprType mirrors the checker's typing rules (the program is checked, so
// symbols are resolved; we only need the int/float distinction).
func exprType(e minic.Expr) minic.BasicKind {
	switch ex := e.(type) {
	case *minic.IntLit:
		return minic.Int
	case *minic.FloatLit:
		return minic.Float
	case *minic.VarRef:
		return ex.Sym.Type.Base
	case *minic.IndexExpr:
		return ex.Array.Sym.Type.Base
	case *minic.UnaryExpr:
		if ex.Op == minic.TokNot || ex.Op == minic.TokTilde {
			return minic.Int
		}
		return exprType(ex.X)
	case *minic.BinaryExpr:
		switch ex.Op {
		case minic.TokEq, minic.TokNeq, minic.TokLt, minic.TokGt, minic.TokLe,
			minic.TokGe, minic.TokAndAnd, minic.TokOrOr, minic.TokPercent,
			minic.TokAmp, minic.TokPipe, minic.TokCaret, minic.TokShl, minic.TokShr:
			return minic.Int
		}
		if exprType(ex.X) == minic.Float || exprType(ex.Y) == minic.Float {
			return minic.Float
		}
		return minic.Int
	case *minic.CondExpr:
		if exprType(ex.Then) == minic.Float || exprType(ex.Else) == minic.Float {
			return minic.Float
		}
		return exprType(ex.Then)
	case *minic.CallExpr:
		if ex.Fn != nil {
			return ex.Fn.Result.Base
		}
		switch ex.Builtin {
		case "abs", "min", "max":
			for _, a := range ex.Args {
				if exprType(a) == minic.Float {
					return minic.Float
				}
			}
			return minic.Int
		}
		return minic.Float
	case *minic.AssignExpr:
		return exprType(ex.LHS)
	case *minic.IncDecExpr:
		return exprType(ex.X)
	case *minic.CastExpr:
		return ex.To
	}
	return minic.Int
}

// expr renders e as a Go expression of its natural type (int64 or float64).
func (g *Generator) expr(e minic.Expr) string {
	switch ex := e.(type) {
	case *minic.IntLit:
		return fmt.Sprintf("int64(%d)", ex.Value)
	case *minic.FloatLit:
		s := strconv.FormatFloat(ex.Value, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return "float64(" + s + ")"
	case *minic.VarRef:
		return g.rename(ex.Sym)
	case *minic.IndexExpr:
		var sb strings.Builder
		sb.WriteString(g.rename(ex.Array.Sym))
		for _, ix := range ex.Indices {
			fmt.Fprintf(&sb, "[%s]", g.exprConv(ix, minic.Int))
		}
		return sb.String()
	case *minic.UnaryExpr:
		switch ex.Op {
		case minic.TokMinus:
			return "(-" + g.expr(ex.X) + ")"
		case minic.TokNot:
			return fmt.Sprintf("b2i(!(%s))", g.cond(ex.X))
		case minic.TokTilde:
			return fmt.Sprintf("(^%s)", g.exprConv(ex.X, minic.Int))
		}
	case *minic.BinaryExpr:
		return g.binary(ex)
	case *minic.CondExpr:
		t := exprType(ex)
		return fmt.Sprintf("tern(%s, func() %s { return %s }, func() %s { return %s })",
			g.cond(ex.Cond), goScalar(t), g.exprConv(ex.Then, t), goScalar(t), g.exprConv(ex.Else, t))
	case *minic.CallExpr:
		return g.call(ex)
	case *minic.CastExpr:
		return g.exprConv(ex.X, ex.To)
	case *minic.AssignExpr, *minic.IncDecExpr:
		// Only valid as statements in the generated code; the parser keeps
		// them out of value positions in all shipped programs.
		return "/* assignment in value position unsupported */"
	}
	return "0"
}

func goScalar(k minic.BasicKind) string {
	if k == minic.Float {
		return "float64"
	}
	return "int64"
}

// exprConv renders e converted to the requested scalar kind, mirroring the
// interpreter's AsInt/AsFloat semantics (float->int truncates).
func (g *Generator) exprConv(e minic.Expr, to minic.BasicKind) string {
	from := exprType(e)
	s := g.expr(e)
	if from == to {
		return s
	}
	if to == minic.Float {
		return "float64(" + s + ")"
	}
	return "int64(" + s + ")"
}

// cond renders e as a Go boolean.
func (g *Generator) cond(e minic.Expr) string {
	switch ex := e.(type) {
	case *minic.BinaryExpr:
		switch ex.Op {
		case minic.TokEq, minic.TokNeq, minic.TokLt, minic.TokGt, minic.TokLe, minic.TokGe:
			op := map[minic.TokenKind]string{
				minic.TokEq: "==", minic.TokNeq: "!=", minic.TokLt: "<",
				minic.TokGt: ">", minic.TokLe: "<=", minic.TokGe: ">=",
			}[ex.Op]
			k := minic.Int
			if exprType(ex.X) == minic.Float || exprType(ex.Y) == minic.Float {
				k = minic.Float
			}
			return fmt.Sprintf("(%s %s %s)", g.exprConv(ex.X, k), op, g.exprConv(ex.Y, k))
		case minic.TokAndAnd:
			return fmt.Sprintf("(%s && %s)", g.cond(ex.X), g.cond(ex.Y))
		case minic.TokOrOr:
			return fmt.Sprintf("(%s || %s)", g.cond(ex.X), g.cond(ex.Y))
		}
	case *minic.UnaryExpr:
		if ex.Op == minic.TokNot {
			return "(!" + g.cond(ex.X) + ")"
		}
	case *minic.IntLit:
		if ex.Value != 0 {
			return "true"
		}
		return "false"
	}
	if exprType(e) == minic.Float {
		return "(" + g.expr(e) + " != 0.0)"
	}
	return "(" + g.expr(e) + " != 0)"
}

func (g *Generator) binary(ex *minic.BinaryExpr) string {
	switch ex.Op {
	case minic.TokEq, minic.TokNeq, minic.TokLt, minic.TokGt, minic.TokLe,
		minic.TokGe, minic.TokAndAnd, minic.TokOrOr:
		return "b2i(" + g.cond(ex) + ")"
	case minic.TokPercent:
		return fmt.Sprintf("(%s %% %s)", g.exprConv(ex.X, minic.Int), g.exprConv(ex.Y, minic.Int))
	}
	k := minic.Int
	if exprType(ex.X) == minic.Float || exprType(ex.Y) == minic.Float {
		k = minic.Float
	}
	x, y := g.exprConv(ex.X, k), g.exprConv(ex.Y, k)
	switch ex.Op {
	case minic.TokPlus:
		return fmt.Sprintf("(%s + %s)", x, y)
	case minic.TokMinus:
		return fmt.Sprintf("(%s - %s)", x, y)
	case minic.TokStar:
		return fmt.Sprintf("(%s * %s)", x, y)
	case minic.TokSlash:
		return fmt.Sprintf("(%s / %s)", x, y)
	case minic.TokAmp:
		return fmt.Sprintf("(%s & %s)", g.exprConv(ex.X, minic.Int), g.exprConv(ex.Y, minic.Int))
	case minic.TokPipe:
		return fmt.Sprintf("(%s | %s)", g.exprConv(ex.X, minic.Int), g.exprConv(ex.Y, minic.Int))
	case minic.TokCaret:
		return fmt.Sprintf("(%s ^ %s)", g.exprConv(ex.X, minic.Int), g.exprConv(ex.Y, minic.Int))
	case minic.TokShl:
		return fmt.Sprintf("(%s << (uint64(%s) & 63))", g.exprConv(ex.X, minic.Int), g.exprConv(ex.Y, minic.Int))
	case minic.TokShr:
		return fmt.Sprintf("(%s >> (uint64(%s) & 63))", g.exprConv(ex.X, minic.Int), g.exprConv(ex.Y, minic.Int))
	}
	return "0"
}

func (g *Generator) call(ex *minic.CallExpr) string {
	if ex.Builtin != "" {
		return g.builtin(ex)
	}
	args := make([]string, len(ex.Args))
	for i, a := range ex.Args {
		p := ex.Fn.Params[i]
		if p.Type.IsArray() {
			if vr, isVar := a.(*minic.VarRef); isVar && vr.Sym.Kind == minic.SymParam {
				args[i] = g.expr(a) // already a pointer inside the callee
			} else {
				args[i] = "&" + g.expr(a)
			}
			continue
		}
		args[i] = g.exprConv(a, p.Type.Base)
	}
	return fmt.Sprintf("%s(%s)", gname(ex.Fn.Name), strings.Join(args, ", "))
}

func (g *Generator) builtin(ex *minic.CallExpr) string {
	g.usesMath = true
	f := func(i int) string { return g.exprConv(ex.Args[i], minic.Float) }
	switch ex.Builtin {
	case "fabs":
		return "math.Abs(" + f(0) + ")"
	case "sqrt":
		return "math.Sqrt(" + f(0) + ")"
	case "sin":
		return "math.Sin(" + f(0) + ")"
	case "cos":
		return "math.Cos(" + f(0) + ")"
	case "tan":
		return "math.Tan(" + f(0) + ")"
	case "exp":
		return "math.Exp(" + f(0) + ")"
	case "log":
		return "math.Log(" + f(0) + ")"
	case "floor":
		return "math.Floor(" + f(0) + ")"
	case "ceil":
		return "math.Ceil(" + f(0) + ")"
	case "pow":
		return "math.Pow(" + f(0) + ", " + f(1) + ")"
	case "atan":
		return "math.Atan(" + f(0) + ")"
	case "atan2":
		return "math.Atan2(" + f(0) + ", " + f(1) + ")"
	case "abs", "min", "max":
		allInt := true
		for _, a := range ex.Args {
			if exprType(a) == minic.Float {
				allInt = false
			}
		}
		if allInt {
			switch ex.Builtin {
			case "abs":
				return "iabs(" + g.exprConv(ex.Args[0], minic.Int) + ")"
			case "min":
				return fmt.Sprintf("imin(%s, %s)", g.exprConv(ex.Args[0], minic.Int), g.exprConv(ex.Args[1], minic.Int))
			default:
				return fmt.Sprintf("imax(%s, %s)", g.exprConv(ex.Args[0], minic.Int), g.exprConv(ex.Args[1], minic.Int))
			}
		}
		switch ex.Builtin {
		case "abs":
			return "math.Abs(" + f(0) + ")"
		case "min":
			return "math.Min(" + f(0) + ", " + f(1) + ")"
		default:
			return "math.Max(" + f(0) + ", " + f(1) + ")"
		}
	}
	return "0"
}

// rename maps a symbol to its Go name, honoring active substitutions
// (reduction partials in chunk bodies).
func (g *Generator) rename(sym *minic.Symbol) string {
	if g.renames != nil {
		if r, ok := g.renames[sym]; ok {
			return r
		}
	}
	return gname(sym.Name)
}

// stmt emits one statement.
func (g *Generator) stmt(s minic.Stmt) error {
	switch st := s.(type) {
	case *minic.DeclStmt:
		name := g.rename(st.Sym)
		g.l("var %s %s", name, goType(st.Type))
		switch {
		case st.Init != nil:
			g.l("%s = %s", name, g.exprConv(st.Init, st.Type.Base))
		case st.List != nil:
			for i, e := range st.List {
				if len(st.Type.Dims) == 2 {
					g.l("%s[%d][%d] = %s", name, i/st.Type.Dims[1], i%st.Type.Dims[1], g.exprConv(e, st.Type.Base))
				} else {
					g.l("%s[%d] = %s", name, i, g.exprConv(e, st.Type.Base))
				}
			}
		}
		g.l("_ = %s", name)
		return nil
	case *minic.ExprStmt:
		return g.exprStmt(st.X)
	case *minic.BlockStmt:
		g.l("{")
		g.ind++
		for _, inner := range st.Stmts {
			if err := g.stmt(inner); err != nil {
				return err
			}
		}
		g.ind--
		g.l("}")
		return nil
	case *minic.IfStmt:
		g.l("if %s {", g.cond(st.Cond))
		g.ind++
		for _, inner := range st.Then.Stmts {
			if err := g.stmt(inner); err != nil {
				return err
			}
		}
		g.ind--
		if st.Else != nil {
			g.l("} else {")
			g.ind++
			if err := g.stmt(st.Else); err != nil {
				return err
			}
			g.ind--
		}
		g.l("}")
		return nil
	case *minic.ForStmt:
		return g.forStmt(st)
	case *minic.WhileStmt:
		if st.DoWhile {
			g.l("for {")
			g.ind++
			for _, inner := range st.Body.Stmts {
				if err := g.stmt(inner); err != nil {
					return err
				}
			}
			g.l("if !%s {", g.cond(st.Cond))
			g.line(g.ind+1, "break")
			g.l("}")
			g.ind--
			g.l("}")
			return nil
		}
		g.l("for %s {", g.cond(st.Cond))
		g.ind++
		for _, inner := range st.Body.Stmts {
			if err := g.stmt(inner); err != nil {
				return err
			}
		}
		g.ind--
		g.l("}")
		return nil
	case *minic.ReturnStmt:
		if st.Value == nil {
			g.l("return")
		} else {
			g.l("return %s", g.exprConv(st.Value, g.curFnResult))
		}
		return nil
	case *minic.BreakStmt:
		g.l("break")
		return nil
	case *minic.ContinueStmt:
		g.l("continue")
		return nil
	}
	return fmt.Errorf("codegen: unhandled statement %T", s)
}

// exprStmt emits assignments and increments as Go statements.
func (g *Generator) exprStmt(e minic.Expr) error {
	switch ex := e.(type) {
	case *minic.AssignExpr:
		lhs := g.expr(ex.LHS)
		lk := exprType(ex.LHS)
		if ex.Op == minic.TokAssign {
			g.l("%s = %s", lhs, g.exprConv(ex.RHS, lk))
			return nil
		}
		bin := &minic.BinaryExpr{Op: compoundBase(ex.Op), X: ex.LHS, Y: ex.RHS}
		g.l("%s = %s", lhs, g.exprConv(bin, lk))
		return nil
	case *minic.IncDecExpr:
		lhs := g.expr(ex.X)
		op := "+"
		if ex.Op == minic.TokDec {
			op = "-"
		}
		if exprType(ex.X) == minic.Float {
			g.l("%s = %s %s 1.0", lhs, lhs, op)
		} else {
			g.l("%s = %s %s 1", lhs, lhs, op)
		}
		return nil
	case *minic.CallExpr:
		g.l("%s", g.call(ex))
		return nil
	}
	// Pure expression statement: evaluate into the void.
	g.l("_ = %s", g.expr(e))
	return nil
}

func compoundBase(k minic.TokenKind) minic.TokenKind {
	switch k {
	case minic.TokPlusEq:
		return minic.TokPlus
	case minic.TokMinusEq:
		return minic.TokMinus
	case minic.TokStarEq:
		return minic.TokStar
	case minic.TokSlashEq:
		return minic.TokSlash
	case minic.TokPercentEq:
		return minic.TokPercent
	case minic.TokShlEq:
		return minic.TokShl
	case minic.TokShrEq:
		return minic.TokShr
	case minic.TokAndEq:
		return minic.TokAmp
	case minic.TokOrEq:
		return minic.TokPipe
	case minic.TokXorEq:
		return minic.TokCaret
	}
	return k
}

func (g *Generator) forStmt(st *minic.ForStmt) error {
	g.l("{")
	g.ind++
	if st.Init != nil {
		if err := g.stmt(st.Init); err != nil {
			return err
		}
	}
	cond := "true"
	if st.Cond != nil {
		cond = g.cond(st.Cond)
	}
	g.l("for %s {", cond)
	g.ind++
	for _, inner := range st.Body.Stmts {
		if err := g.stmt(inner); err != nil {
			return err
		}
	}
	if st.Post != nil {
		if err := g.exprStmt(st.Post); err != nil {
			return err
		}
	}
	g.ind--
	g.l("}")
	g.ind--
	g.l("}")
	return nil
}
