package codegen

import (
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/htg"
	"repro/internal/interp"
	"repro/internal/minic"
	"repro/internal/platform"
)

// runGo writes src to a temp module and executes it, returning the printed
// checksum.
func runGo(t *testing.T, src string, race bool) float64 {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module gen\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	args := []string{"run"}
	if race {
		args = append(args, "-race")
	}
	args = append(args, ".")
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run failed: %v\n--- output ---\n%s\n--- source ---\n%s", err, out, numbered(src))
	}
	var sum float64
	if _, err := fmt.Sscanf(lastLine(string(out)), "checksum %e", &sum); err != nil {
		t.Fatalf("cannot parse checksum from %q", out)
	}
	return sum
}

func lastLine(s string) string {
	lines := strings.Split(strings.TrimSpace(s), "\n")
	return lines[len(lines)-1]
}

func numbered(src string) string {
	var sb strings.Builder
	for i, l := range strings.Split(src, "\n") {
		fmt.Fprintf(&sb, "%4d %s\n", i+1, l)
	}
	return sb.String()
}

func interpChecksum(t *testing.T, prog *minic.Program) float64 {
	t.Helper()
	in := interp.New(prog)
	if _, err := in.Run(); err != nil {
		t.Fatalf("interp: %v", err)
	}
	return in.GlobalChecksum()
}

func relClose(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*(1+math.Max(math.Abs(a), math.Abs(b)))
}

// TestSequentialCodegenMatchesInterpreter generates plain Go for every
// benchmark and checks the executed checksum against the interpreter.
func TestSequentialCodegenMatchesInterpreter(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles generated programs")
	}
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog, err := minic.Compile(b.Source)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			src, err := Sequential(prog)
			if err != nil {
				t.Fatalf("codegen: %v", err)
			}
			got := runGo(t, src, false)
			want := interpChecksum(t, prog)
			if !relClose(got, want) {
				t.Errorf("checksum mismatch: generated %.9e, interpreter %.9e", got, want)
			}
		})
	}
}

// TestParallelCodegenPreservesSemantics extracts parallelism, emits the
// goroutine implementation, executes it and compares the checksum with the
// sequential meaning. mult_10 runs under the race detector: the DOALL
// analysis guarantees disjoint writes, and -race enforces it.
func TestParallelCodegenPreservesSemantics(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles generated programs")
	}
	pf := platform.ConfigA()
	raceFor := map[string]bool{"mult_10": true}
	for _, name := range []string{"mult_10", "fir_256", "spectral", "bound_value"} {
		name := name
		t.Run(name, func(t *testing.T) {
			b := bench.ByName(name)
			prog, err := minic.Compile(b.Source)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			in := interp.New(prog)
			prof, err := in.Run()
			if err != nil {
				t.Fatalf("profile: %v", err)
			}
			want := in.GlobalChecksum()
			g, err := htg.Build(prog, prof, htg.Config{})
			if err != nil {
				t.Fatalf("htg: %v", err)
			}
			res, err := core.Parallelize(g, pf, pf.SlowestClass(), core.Heterogeneous, core.Config{})
			if err != nil {
				t.Fatalf("parallelize: %v", err)
			}
			src, err := Parallel(prog, res.Best)
			if err != nil {
				t.Fatalf("codegen: %v", err)
			}
			if !strings.Contains(src, "go func()") {
				t.Logf("note: no goroutines emitted for %s (fully sequential fallback)", name)
			}
			got := runGo(t, src, raceFor[name])
			if !relClose(got, want) {
				t.Errorf("parallel execution changed the result: got %.9e, want %.9e", got, want)
			}
		})
	}
}

// TestGeneratedSourceShape sanity-checks structural properties without
// compiling.
func TestGeneratedSourceShape(t *testing.T) {
	prog, err := minic.Compile(`
#define N 64
float a[N]; float s;
void main(void) {
    for (int i = 0; i < N; i++) { a[i] = i * 0.5; }
    s = 0.0;
    for (int i = 0; i < N; i++) { s += a[i]; }
}
`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	src, err := Sequential(prog)
	if err != nil {
		t.Fatalf("codegen: %v", err)
	}
	for _, want := range []string{"package main", "var a [64]float64", "func main()", "checksum"} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source missing %q:\n%s", want, src)
		}
	}
	if strings.Contains(src, "sync") {
		t.Errorf("sequential output must not import sync")
	}
}

// TestKeywordMangling: mini-C variables named like Go keywords must not
// break the generated program.
func TestKeywordMangling(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles generated programs")
	}
	prog, err := minic.Compile(`
int range; int chan;
void main(void) {
    range = 3;
    chan = range * 2;
}
`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	src, err := Sequential(prog)
	if err != nil {
		t.Fatalf("codegen: %v", err)
	}
	got := runGo(t, src, false)
	want := interpChecksum(t, prog)
	if !relClose(got, want) {
		t.Errorf("checksum mismatch: %.9e vs %.9e", got, want)
	}
}
