// Package solstore is a shared, sharded, size-bounded solution store
// with single-flight deduplication: the cache architecture the repo's
// scale story hangs on (the 200×3 DSE sweep is 38m23s cold vs 17ms
// warm — caching, not raw solving, is what makes repeated evaluation
// cheap).
//
// The store maps canonical fingerprints (region-solve keys, whole-sweep
// outcome keys) to arbitrary immutable values. It is safe for heavy
// concurrent use:
//
//   - keys are distributed over 2^k shards by FNV-1a hash, so unrelated
//     solves never contend on one lock;
//   - each shard is an LRU over its own entries with a per-shard
//     capacity, so the store is size-bounded and eviction in one shard
//     never touches another;
//   - GetOrCompute collapses concurrent computations of the same key
//     into one ("single flight"): the first caller computes, everyone
//     else blocks on that computation and shares its value. This is
//     what keeps a parallel region sweep from solving the same ILP
//     twice just because two workers reached identical subproblems at
//     the same moment.
//
// Hit/miss/dedup/eviction counters and per-shard entry gauges flow into
// an optional obs.Registry under solstore.*, so the CLIs' -stats views
// and the DSE reports can show store effectiveness.
package solstore

import (
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/obs"
)

// Options configures a Store.
type Options struct {
	// Capacity bounds the total number of entries across all shards
	// (rounded up to a multiple of the shard count). Non-positive
	// selects DefaultCapacity.
	Capacity int
	// Shards is the number of independent LRU shards; rounded up to a
	// power of two. Non-positive selects DefaultShards.
	Shards int
	// Metrics, when non-nil, receives solstore.* counters and per-shard
	// entry gauges.
	Metrics *obs.Registry
	// Events, when non-nil, receives structured store events: one
	// "store-eviction" per LRU eviction (with the evicted key) and one
	// "worker-stall" per GetOrCompute call that blocked on another
	// caller's in-flight computation.
	Events *obs.EventLog
}

// Defaults for Options.
const (
	DefaultCapacity = 4096
	DefaultShards   = 8
)

// Store is the sharded LRU + single-flight store. The zero value is not
// usable; construct with New. All methods are safe for concurrent use
// and safe on a nil *Store (Get misses, Put drops, GetOrCompute
// computes every time), so call sites need no enabled/disabled branch.
type Store struct {
	shards []*shard
	mask   uint32

	hits      *obs.Counter
	misses    *obs.Counter
	dedups    *obs.Counter
	evictions *obs.Counter
	events    *obs.EventLog
}

// entry is one cached value on a shard's LRU list.
type entry struct {
	key        string
	val        any
	prev, next *entry // most-recently-used list; head = hottest
}

// call is one in-flight computation other callers can wait on.
type call struct {
	done chan struct{}
	val  any
}

// shard is one LRU with its own lock and in-flight table.
type shard struct {
	mu       sync.Mutex
	cap      int
	items    map[string]*entry
	head     *entry // most recently used
	tail     *entry // least recently used
	inflight map[string]*call

	evictions int64
	// trackEvicted records evicted keys for event emission; off when the
	// store has no event sink so eviction stays allocation-free.
	trackEvicted bool
	evictedKeys  []string
	entries      *obs.Gauge
}

// New creates a store. A nil metrics registry disables telemetry.
func New(opts Options) *Store {
	capTotal := opts.Capacity
	if capTotal <= 0 {
		capTotal = DefaultCapacity
	}
	n := opts.Shards
	if n <= 0 {
		n = DefaultShards
	}
	// Round the shard count up to a power of two for mask indexing.
	pow := 1
	for pow < n {
		pow <<= 1
	}
	n = pow
	perShard := (capTotal + n - 1) / n
	// Without a registry, back the counters with standalone instances so
	// Stats() still reads live values (Registry.Counter on nil returns a
	// nil no-op counter, which would freeze Stats at zero).
	counter := func(name string) *obs.Counter {
		if c := opts.Metrics.Counter(name); c != nil {
			return c
		}
		return &obs.Counter{}
	}
	s := &Store{
		shards:    make([]*shard, n),
		mask:      uint32(n - 1),
		hits:      counter("solstore.hits"),
		misses:    counter("solstore.misses"),
		dedups:    counter("solstore.dedups"),
		evictions: counter("solstore.evictions"),
		events:    opts.Events,
	}
	for i := range s.shards {
		s.shards[i] = &shard{
			cap:          perShard,
			items:        map[string]*entry{},
			inflight:     map[string]*call{},
			trackEvicted: opts.Events != nil,
			entries:      opts.Metrics.Gauge(shardGaugeName(i)),
		}
	}
	return s
}

// shardGaugeName names the per-shard entry gauge.
func shardGaugeName(i int) string {
	return "solstore.shard." + twoDigits(i) + ".entries"
}

// twoDigits formats small shard indices without fmt (hot path free of
// allocations; shard counts are tiny).
func twoDigits(i int) string {
	if i < 10 {
		return string([]byte{'0', byte('0' + i)})
	}
	if i < 100 {
		return string([]byte{byte('0' + i/10), byte('0' + i%10)})
	}
	return string([]byte{byte('0' + i/100), byte('0' + (i/10)%10), byte('0' + i%10)})
}

// shardFor picks the shard of a key.
func (s *Store) shardFor(key string) *shard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return s.shards[h.Sum32()&s.mask]
}

// Get returns the cached value for key, marking it most recently used.
func (s *Store) Get(key string) (any, bool) {
	if s == nil {
		return nil, false
	}
	sh := s.shardFor(key)
	sh.mu.Lock()
	e, ok := sh.items[key]
	var val any
	if ok {
		sh.moveToFront(e)
		val = e.val // read under the lock: put may update e.val in place
	}
	sh.mu.Unlock()
	if ok {
		s.hits.Inc()
		return val, true
	}
	s.misses.Inc()
	return nil, false
}

// Put stores val under key (refreshing recency when the key exists),
// evicting least-recently-used entries past the shard capacity.
func (s *Store) Put(key string, val any) {
	if s == nil {
		return
	}
	sh := s.shardFor(key)
	sh.mu.Lock()
	sh.put(key, val)
	sh.mu.Unlock()
	s.noteEvictions(sh)
}

// GetOrCompute returns the value for key, computing it with fn on a
// miss. Concurrent callers with the same key wait for the first
// caller's fn instead of recomputing ("single flight"); its value is
// stored and shared. fn runs without any store lock held, so it may
// itself use the store (under a different key). The second return
// reports whether the value came from cache or an in-flight
// computation rather than this caller's own fn.
func (s *Store) GetOrCompute(key string, fn func() any) (any, bool) {
	if s == nil {
		return fn(), false
	}
	sh := s.shardFor(key)
	sh.mu.Lock()
	if e, ok := sh.items[key]; ok {
		sh.moveToFront(e)
		val := e.val // read under the lock: put may update e.val in place
		sh.mu.Unlock()
		s.hits.Inc()
		return val, true
	}
	if c, ok := sh.inflight[key]; ok {
		sh.mu.Unlock()
		s.dedups.Inc()
		var start time.Time
		if s.events != nil {
			start = time.Now() //repolint:allow timenow (telemetry only, never solver-visible)
		}
		<-c.done
		if s.events != nil {
			s.events.Emit("worker-stall", key, map[string]any{
				"wait_ms": float64(time.Since(start).Nanoseconds()) / 1e6, //repolint:allow timenow
			})
		}
		return c.val, true
	}
	c := &call{done: make(chan struct{})}
	sh.inflight[key] = c
	sh.mu.Unlock()
	s.misses.Inc()

	c.val = fn()
	sh.mu.Lock()
	sh.put(key, c.val)
	delete(sh.inflight, key)
	sh.mu.Unlock()
	close(c.done)
	s.noteEvictions(sh)
	return c.val, false
}

// noteEvictions forwards a shard's eviction delta to the global counter
// and emits one "store-eviction" event per evicted key. Events are
// emitted after the shard lock is released so a slow event sink never
// blocks other store traffic.
func (s *Store) noteEvictions(sh *shard) {
	sh.mu.Lock()
	n := sh.evictions
	sh.evictions = 0
	keys := sh.evictedKeys
	sh.evictedKeys = nil
	sh.mu.Unlock()
	if n > 0 {
		s.evictions.Add(n)
	}
	for _, k := range keys {
		s.events.Emit("store-eviction", k, nil)
	}
}

// put inserts or refreshes an entry; caller holds sh.mu.
func (sh *shard) put(key string, val any) {
	if e, ok := sh.items[key]; ok {
		e.val = val
		sh.moveToFront(e)
		return
	}
	e := &entry{key: key, val: val}
	sh.items[key] = e
	sh.pushFront(e)
	for len(sh.items) > sh.cap {
		lru := sh.tail
		sh.unlink(lru)
		delete(sh.items, lru.key)
		sh.evictions++
		if sh.trackEvicted {
			sh.evictedKeys = append(sh.evictedKeys, lru.key)
		}
	}
	sh.entries.Set(float64(len(sh.items)))
}

// pushFront links e as the most recently used entry; caller holds sh.mu.
func (sh *shard) pushFront(e *entry) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

// unlink removes e from the recency list; caller holds sh.mu.
func (sh *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// moveToFront refreshes e's recency; caller holds sh.mu.
func (sh *shard) moveToFront(e *entry) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}

// Len returns the total number of cached entries.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.items)
		sh.mu.Unlock()
	}
	return n
}

// Stats is a point-in-time snapshot of the store's effectiveness.
type Stats struct {
	// Hits and Misses count Get/GetOrCompute lookups; Dedups the
	// GetOrCompute calls that joined another caller's in-flight
	// computation instead of running their own.
	Hits, Misses, Dedups int64
	// Evictions counts LRU evictions; Entries the live entries.
	Evictions int64
	Entries   int
	// Shards is the shard count; ShardEntries the per-shard live entry
	// counts in shard order.
	Shards       int
	ShardEntries []int
}

// Stats snapshots the counters. On a store built without a metrics
// registry the counters are nil and read as zero except Entries, which
// is always live.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	st := Stats{
		Hits:      s.hits.Value(),
		Misses:    s.misses.Value(),
		Dedups:    s.dedups.Value(),
		Evictions: s.evictions.Value(),
		Shards:    len(s.shards),
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		n := len(sh.items)
		sh.mu.Unlock()
		st.Entries += n
		st.ShardEntries = append(st.ShardEntries, n)
	}
	return st
}

// HitRate returns Hits/(Hits+Misses), 0 when empty.
func (st Stats) HitRate() float64 {
	n := st.Hits + st.Misses
	if n == 0 {
		return 0
	}
	return float64(st.Hits) / float64(n)
}
