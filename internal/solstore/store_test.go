package solstore

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

// TestPutGetRoundTrip checks the basic contract: what goes in comes out,
// misses report false, and metrics count both.
func TestPutGetRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Options{Capacity: 32, Shards: 4, Metrics: reg})
	s.Put("a", 1)
	s.Put("b", "two")
	if v, ok := s.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v; want 1, true", v, ok)
	}
	if v, ok := s.Get("b"); !ok || v.(string) != "two" {
		t.Fatalf("Get(b) = %v, %v; want two, true", v, ok)
	}
	if _, ok := s.Get("c"); ok {
		t.Fatalf("Get(c) hit; want miss")
	}
	st := s.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v; want 2 hits, 1 miss, 2 entries", st)
	}
	if reg.Counter("solstore.hits").Value() != 2 {
		t.Fatalf("registry hits = %d; want 2", reg.Counter("solstore.hits").Value())
	}
}

// TestNilStoreSafe checks that every method is a safe no-op on a nil
// store, so call sites can thread an optional store without branching.
func TestNilStoreSafe(t *testing.T) {
	var s *Store
	s.Put("k", 1)
	if _, ok := s.Get("k"); ok {
		t.Fatalf("nil store Get hit")
	}
	v, hit := s.GetOrCompute("k", func() any { return 7 })
	if hit || v.(int) != 7 {
		t.Fatalf("nil store GetOrCompute = %v, %v; want 7, false", v, hit)
	}
	if s.Len() != 0 || s.Stats().Entries != 0 {
		t.Fatalf("nil store not empty")
	}
}

// TestConcurrentGetPut hammers the store from many goroutines over a
// shared key set. Run under -race this is the data-race gate for the
// shard locking.
func TestConcurrentGetPut(t *testing.T) {
	s := New(Options{Capacity: 128, Shards: 8})
	const goroutines = 16
	const ops = 400
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				key := fmt.Sprintf("k%03d", (g*7+i)%64)
				if i%3 == 0 {
					s.Put(key, g*ops+i)
				} else {
					if v, ok := s.Get(key); ok {
						if _, isInt := v.(int); !isInt {
							t.Errorf("Get(%s) returned %T; want int", key, v)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if n := s.Len(); n == 0 || n > 64 {
		t.Fatalf("Len() = %d; want 1..64", n)
	}
}

// TestSingleflightCollapse launches many concurrent GetOrCompute calls
// for the same key and checks exactly one computation ran, everyone got
// its value, and the joiners were counted as dedups.
func TestSingleflightCollapse(t *testing.T) {
	s := New(Options{Capacity: 16, Shards: 1})
	var computed atomic.Int64
	release := make(chan struct{})
	const callers = 12

	var wg sync.WaitGroup
	vals := make([]int, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _ := s.GetOrCompute("hot", func() any {
				computed.Add(1)
				<-release // hold the computation open so others must join
				return 42
			})
			vals[i] = v.(int)
		}(i)
	}
	// Wait until the first caller is inside fn (computed == 1), then
	// release; joiners registered before or after release both share it.
	for computed.Load() == 0 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	if got := computed.Load(); got != 1 {
		t.Fatalf("fn ran %d times; want 1", got)
	}
	for i, v := range vals {
		if v != 42 {
			t.Fatalf("caller %d got %d; want 42", i, v)
		}
	}
	st := s.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d; want 1 (the computing caller)", st.Misses)
	}
	if st.Dedups+st.Hits != callers-1 {
		t.Fatalf("dedups(%d)+hits(%d) = %d; want %d joiners",
			st.Dedups, st.Hits, st.Dedups+st.Hits, callers-1)
	}
	if st.Dedups == 0 {
		t.Fatalf("dedups = 0; want at least one in-flight join")
	}
}

// TestLRUEvictionDeterminism fills one shard past capacity in a fixed
// order and checks exactly the least-recently-used keys were evicted —
// twice, asserting identical survivor sets both times.
func TestLRUEvictionDeterminism(t *testing.T) {
	survivors := func() []string {
		s := New(Options{Capacity: 4, Shards: 1})
		for i := 0; i < 8; i++ {
			s.Put(fmt.Sprintf("k%d", i), i)
		}
		// Touch k4 so it outlives the younger k5 under further inserts.
		s.Get("k4")
		s.Put("k8", 8)
		s.Put("k9", 9)
		var alive []string
		for i := 0; i <= 9; i++ {
			k := fmt.Sprintf("k%d", i)
			if _, ok := s.Get(k); ok {
				alive = append(alive, k)
			}
		}
		return alive
	}

	// After inserting k0..k7 at cap 4 the survivors are k4..k7; touching
	// k4 moves it ahead of k5/k6, so k8 evicts k5 and k9 evicts k6.
	want := []string{"k4", "k7", "k8", "k9"}

	first := survivors()
	second := survivors()
	if fmt.Sprint(first) != fmt.Sprint(want) {
		t.Fatalf("survivors = %v; want %v", first, want)
	}
	if fmt.Sprint(second) != fmt.Sprint(first) {
		t.Fatalf("eviction nondeterministic: %v vs %v", second, first)
	}

	s := New(Options{Capacity: 4, Shards: 1, Metrics: obs.NewRegistry()})
	for i := 0; i < 8; i++ {
		s.Put(fmt.Sprintf("k%d", i), i)
	}
	if st := s.Stats(); st.Evictions != 4 || st.Entries != 4 {
		t.Fatalf("stats = %+v; want 4 evictions, 4 entries", st)
	}
}

// TestDistinctKeysDistinctValues is the fingerprint-collision sanity
// check: near-identical keys (one byte apart, same length — the shape a
// weak fingerprint would collide on) must resolve to their own values.
func TestDistinctKeysDistinctValues(t *testing.T) {
	s := New(Options{Capacity: 4096, Shards: 8})
	const n = 512
	for i := 0; i < n; i++ {
		s.Put(fmt.Sprintf("region|fp%04d|cfg", i), i)
	}
	for i := 0; i < n; i++ {
		v, ok := s.Get(fmt.Sprintf("region|fp%04d|cfg", i))
		if !ok || v.(int) != i {
			t.Fatalf("key %d resolved to %v, %v; want %d, true", i, v, ok, i)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len() = %d; want %d", s.Len(), n)
	}
}

// TestGetOrComputeConcurrentDistinctKeys checks the singleflight table
// does not serialize different keys: distinct keys compute exactly once
// each under concurrency.
func TestGetOrComputeConcurrentDistinctKeys(t *testing.T) {
	s := New(Options{Capacity: 256, Shards: 4})
	var computed atomic.Int64
	var wg sync.WaitGroup
	const keys = 32
	const callersPerKey = 4
	for k := 0; k < keys; k++ {
		for c := 0; c < callersPerKey; c++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				v, _ := s.GetOrCompute(fmt.Sprintf("key%02d", k), func() any {
					computed.Add(1)
					return k * 10
				})
				if v.(int) != k*10 {
					t.Errorf("key %d got %v", k, v)
				}
			}(k)
		}
	}
	wg.Wait()
	if got := computed.Load(); got != keys {
		t.Fatalf("computed %d times; want %d (once per key)", got, keys)
	}
}

// TestSingleflightRacesEviction is the server-shaped load test: many
// goroutines GetOrCompute the *same* hot key while a writer floods the
// single shard with unique Puts, so the hot entry is repeatedly evicted
// — including while computations of it are in flight. The singleflight
// table must stay consistent with the LRU under that interleaving:
// every caller gets the correct value (never another key's), no call
// deadlocks, and an in-flight computation whose freshly-stored entry is
// evicted simply recomputes on the next miss. Run under -race (make
// race) this is the concurrency gate for the inflight/LRU interaction.
func TestSingleflightRacesEviction(t *testing.T) {
	// One shard with a tiny capacity so the flood below evicts the hot
	// key almost immediately after every insert.
	s := New(Options{Capacity: 4, Shards: 1})
	const (
		readers = 8
		rounds  = 300
	)
	var computed atomic.Int64
	stop := make(chan struct{})

	// Eviction pressure: unique keys through the same shard.
	var flood sync.WaitGroup
	flood.Add(1)
	go func() {
		defer flood.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s.Put(fmt.Sprintf("cold%06d", i), i)
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				v, _ := s.GetOrCompute("hot", func() any {
					computed.Add(1)
					runtime.Gosched() // widen the in-flight window
					return "hotval"
				})
				if v.(string) != "hotval" {
					t.Errorf("GetOrCompute(hot) = %v; want hotval", v)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	flood.Wait()

	// Eviction must have actually raced the singleflight: the hot key
	// was computed more than once (evicted between rounds) but far
	// fewer times than the raw call count (singleflight + cache hits).
	if got := computed.Load(); got == 0 || got >= readers*rounds {
		t.Fatalf("hot key computed %d times; want in (0, %d)", got, readers*rounds)
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions; the flood failed to pressure the shard")
	}
	if st.Hits+st.Dedups+st.Misses < readers*rounds {
		t.Fatalf("accounting lost calls: hits %d + dedups %d + misses %d < %d",
			st.Hits, st.Dedups, st.Misses, readers*rounds)
	}
}

// TestShardGaugeNames pins the zero-padded gauge naming used by -stats.
func TestShardGaugeNames(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Options{Capacity: 8, Shards: 2, Metrics: reg})
	s.Put("x", 1)
	found := false
	for i := 0; i < 2; i++ {
		if reg.Gauge(shardGaugeName(i)).Value() == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no shard gauge recorded the entry")
	}
	if shardGaugeName(0) != "solstore.shard.00.entries" {
		t.Fatalf("gauge name = %q", shardGaugeName(0))
	}
}
