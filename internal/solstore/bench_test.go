package solstore

import (
	"fmt"
	"testing"
)

// benchKeys builds n distinct region-style keys once per bench.
func benchKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("region|%032x", i)
	}
	return keys
}

// BenchmarkStoreGetHit measures the warm lookup path: every Get is
// served from the store.
func BenchmarkStoreGetHit(b *testing.B) {
	s := New(Options{Capacity: 1 << 12})
	keys := benchKeys(1 << 10)
	for i, k := range keys {
		s.Put(k, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Get(keys[i&(len(keys)-1)]); !ok {
			b.Fatal("unexpected miss")
		}
	}
	b.ReportMetric(100*s.Stats().HitRate(), "hit-%")
}

// BenchmarkStorePutEvict measures the insert path under steady-state
// LRU pressure: the working set is 4x the capacity, so most Puts evict.
func BenchmarkStorePutEvict(b *testing.B) {
	s := New(Options{Capacity: 1 << 10})
	keys := benchKeys(1 << 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put(keys[i&(len(keys)-1)], i)
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(s.Stats().Evictions)/float64(b.N), "evictions/op")
	}
}

// BenchmarkStoreGetOrCompute measures the singleflight path with a
// churning key set: half the lookups compute, half are served.
func BenchmarkStoreGetOrCompute(b *testing.B) {
	s := New(Options{Capacity: 1 << 12})
	keys := benchKeys(1 << 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i&(len(keys)-1)]
		s.GetOrCompute(k, func() any { return i })
	}
	b.StopTimer()
	st := s.Stats()
	b.ReportMetric(100*st.HitRate(), "hit-%")
	b.ReportMetric(float64(st.Dedups), "dedups")
}

// BenchmarkStoreParallelMixed measures the sharded store under
// concurrent mixed traffic (the region-scheduler access pattern):
// every goroutine interleaves hits, misses and inserts.
func BenchmarkStoreParallelMixed(b *testing.B) {
	s := New(Options{Capacity: 1 << 12, Shards: 8})
	keys := benchKeys(1 << 11)
	for i := 0; i < len(keys); i += 2 {
		s.Put(keys[i], i)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			k := keys[i&(len(keys)-1)]
			if i%3 == 0 {
				s.Put(k, i)
			} else {
				s.Get(k)
			}
			i++
		}
	})
	b.StopTimer()
	b.ReportMetric(100*s.Stats().HitRate(), "hit-%")
}
