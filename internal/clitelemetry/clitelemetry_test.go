package clitelemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestStartFullWiring starts both sinks and checks the server serves
// the registry while events stream to the JSONL file.
func TestStartFullWiring(t *testing.T) {
	events := filepath.Join(t.TempDir(), "events.jsonl")
	reg := obs.NewRegistry()
	reg.Counter("demo.count").Inc()

	tele, err := Start("demotool", "127.0.0.1:0", events, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer tele.Close()
	if tele.Events == nil {
		t.Fatal("no event log with both sinks requested")
	}
	tele.Events.Emit("demo-event", "x", map[string]any{"n": 1})

	addr := tele.Addr()
	if addr == "" {
		t.Fatal("no server address")
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "heteropar_demo_count 1") {
		t.Errorf("/metrics missing the registry:\n%s", body)
	}

	tele.Close()
	data, err := os.ReadFile(events)
	if err != nil {
		t.Fatal(err)
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(strings.SplitN(strings.TrimSpace(string(data)), "\n", 2)[0]), &ev); err != nil {
		t.Fatalf("events file is not JSONL: %v\n%s", err, data)
	}
	if ev["kind"] != "demo-event" {
		t.Errorf("event = %v", ev)
	}
}

// TestStartNoSinks keeps the zero-flag path allocation-light: no
// server, no event log, but a usable Out writer.
func TestStartNoSinks(t *testing.T) {
	tele, err := Start("demotool", "", "", obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer tele.Close()
	if tele.Events != nil {
		t.Error("event log created with no sink")
	}
	if tele.Addr() != "" {
		t.Error("server started with no address")
	}
	if tele.Out == nil {
		t.Error("no Out writer")
	}
	var sb strings.Builder
	tele.SetOut(&sb)
	fmt.Fprint(tele.Out, "probe\n")
	if sb.String() != "probe\n" {
		t.Errorf("SetOut writer got %q", sb.String())
	}
}

// TestStartBadEventsPath surfaces file errors instead of half-starting.
func TestStartBadEventsPath(t *testing.T) {
	if _, err := Start("demotool", "", filepath.Join(t.TempDir(), "no", "such", "dir", "e.jsonl"), obs.NewRegistry()); err == nil {
		t.Fatal("unwritable events path accepted")
	}
}

// TestValidateStoreCap pins the shared -store-cap contract.
func TestValidateStoreCap(t *testing.T) {
	if err := ValidateStoreCap(0, "disables the store"); err != nil {
		t.Errorf("0 rejected: %v", err)
	}
	if err := ValidateStoreCap(128, "disables the store"); err != nil {
		t.Errorf("positive rejected: %v", err)
	}
	err := ValidateStoreCap(-1, "selects the default sizing")
	if err == nil {
		t.Fatal("negative accepted")
	}
	for _, want := range []string{"-store-cap", ">= 0", "-1", "selects the default sizing"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

// TestCloseNil keeps Close nil-safe for error paths.
func TestCloseNil(t *testing.T) {
	var tele *Telemetry
	tele.Close()
}
