// Package clitelemetry is the one place the command-line tools wire
// their shared observability flags: -metrics-addr (live /metrics,
// /healthz, /events, /debug/pprof/ endpoint) and -events (JSONL event
// stream). heteropar, heteropardse and heteropard all start the same
// sinks the same way; this package keeps the flag semantics identical
// across them instead of each main.go growing its own copy.
//
// Telemetry is strictly out-of-band: starting or skipping these sinks
// never changes tool output, only what is observable while the tool
// runs.
package clitelemetry

import (
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
	"repro/internal/solstore"
)

// Telemetry bundles a CLI's observability wiring: the single shared
// writer every human-readable telemetry block goes through (so -stats
// tables and -v span lines interleave at line granularity, never
// mid-line), the event log feeding the sinks, plus the optional live
// HTTP server and JSONL event file behind them.
type Telemetry struct {
	// Out is the shared human-readable telemetry writer (stderr,
	// serialized). Solver tables, metrics tables and span logging all
	// route through it; stdout stays reserved for program results.
	Out *obs.SyncWriter

	// Events is the structured event log, non-nil whenever any sink
	// (file or server ring) wants events. Hand it to the pipeline via
	// Options.EventLog / Observer.Events.
	Events *obs.EventLog

	server    *obs.Server
	eventFile *os.File
}

// Start opens the optional telemetry endpoints for the named tool: a
// live /metrics + /debug/pprof server on metricsAddr and a JSONL event
// stream to eventsPath (either may be empty). Out defaults to a
// serialized stderr writer; pass the result's Out to everything that
// prints human-readable telemetry.
func Start(name, metricsAddr, eventsPath string, reg *obs.Registry) (*Telemetry, error) {
	t := &Telemetry{Out: obs.NewSyncWriter(os.Stderr)}
	if eventsPath != "" {
		f, err := os.Create(eventsPath)
		if err != nil {
			return nil, fmt.Errorf("events: %w", err)
		}
		t.eventFile = f
		t.Events = obs.NewEventLog(f)
	} else if metricsAddr != "" {
		// No file sink, but the server's /events endpoint still wants
		// the in-memory ring.
		t.Events = obs.NewEventLog(nil)
	}
	if metricsAddr != "" {
		srv, err := obs.NewServer(metricsAddr, reg, t.Events)
		if err != nil {
			t.Close()
			return nil, err
		}
		t.server = srv
		fmt.Fprintf(t.Out, "%s: serving /metrics, /healthz, /events, /debug/pprof/ on http://%s\n", name, srv.Addr())
	}
	return t, nil
}

// Addr returns the live telemetry server's bound address ("" when
// -metrics-addr was not given).
func (t *Telemetry) Addr() string {
	if t == nil || t.server == nil {
		return ""
	}
	return t.server.Addr()
}

// SetOut redirects the human-readable writer (tests).
func (t *Telemetry) SetOut(w io.Writer) { t.Out = obs.NewSyncWriter(w) }

// Close stops the server and flushes the event file. Nil-safe.
func (t *Telemetry) Close() {
	if t == nil {
		return
	}
	_ = t.server.Close()
	if t.eventFile != nil {
		_ = t.eventFile.Close()
	}
}

// ValidateStoreCap enforces the shared -store-cap flag contract: the
// capacity must be >= 0, and what 0 means is tool-specific (heteropar
// disables the store, heteropardse and heteropard pick the default
// sizing) — callers pass that meaning so the error spells it out. A
// negative capacity is always a configuration mistake, never a silent
// cache-off.
func ValidateStoreCap(n int, zeroMeaning string) error {
	if n < 0 {
		return fmt.Errorf("-store-cap must be >= 0 (got %d); 0 %s, and the default capacity is %d entries",
			n, zeroMeaning, solstore.DefaultCapacity)
	}
	return nil
}
