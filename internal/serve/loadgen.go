package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// LoadOptions configures one load-generation run against a daemon.
type LoadOptions struct {
	// BaseURL is the daemon base ("http://127.0.0.1:8380").
	BaseURL string
	// Benchmarks are the bundled benchmark names replayed round-robin
	// (request i asks for Benchmarks[i % len]); a mixed workload over
	// the ten UTDSP kernels is the intended shape.
	Benchmarks []string
	// Concurrency is the number of in-flight requests (default 8).
	Concurrency int
	// Requests is the total request count (default 100).
	Requests int
	// Platform ("A"/"B"), Scenario ("acc"/"slow") and Approach
	// ("het"/"hom") apply to every request; empty picks daemon
	// defaults.
	Platform string
	Scenario string
	Approach string
	// TimeoutMs is the per-request server-side wait cap (0 = daemon
	// default).
	TimeoutMs int
	// Client overrides the HTTP client (default: a dedicated client
	// with a generous timeout).
	Client *http.Client
}

// LoadReport aggregates one load run: per-status counts and the
// client-observed latency distribution.
type LoadReport struct {
	// Requests is the number sent; Errors counts transport failures
	// (connection refused, timeout) — HTTP error statuses are tallied
	// in StatusCounts, not here.
	Requests int
	Errors   int
	// StatusCounts maps HTTP status → count.
	StatusCounts map[int]int
	// Elapsed is the whole run's wall time; RPS the completed requests
	// per second over it.
	Elapsed time.Duration
	RPS     float64
	// Latency is the client-observed per-request latency distribution
	// (P50/P90/P99 precomputed).
	Latency obs.HistogramSnapshot
}

// RunLoad replays the mixed workload against a daemon and reports
// throughput and latency percentiles. It returns an error only for
// invalid options; per-request failures are tallied in the report.
func RunLoad(ctx context.Context, opts LoadOptions) (*LoadReport, error) {
	if opts.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: empty base URL")
	}
	if len(opts.Benchmarks) == 0 {
		return nil, fmt.Errorf("loadgen: no benchmarks")
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 8
	}
	if opts.Requests <= 0 {
		opts.Requests = 100
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Minute}
	}

	bodies := make([][]byte, len(opts.Benchmarks))
	for i, name := range opts.Benchmarks {
		req := Request{
			Bench:     name,
			Scenario:  opts.Scenario,
			Approach:  opts.Approach,
			TimeoutMs: opts.TimeoutMs,
		}
		if opts.Platform != "" {
			req.Platform = json.RawMessage(fmt.Sprintf("%q", opts.Platform))
		}
		buf, err := json.Marshal(&req)
		if err != nil {
			return nil, fmt.Errorf("loadgen: %w", err)
		}
		bodies[i] = buf
	}
	url := strings.TrimSuffix(opts.BaseURL, "/") + "/v1/parallelize"

	hist := &obs.Histogram{}
	rep := &LoadReport{Requests: opts.Requests, StatusCounts: map[int]int{}}
	var mu sync.Mutex

	start := now()
	var wg sync.WaitGroup
	for c := 0; c < opts.Concurrency; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Static request partition: worker c sends requests c,
			// c+C, c+2C, ... so the benchmark mix is identical run
			// over run regardless of scheduling.
			for i := c; i < opts.Requests; i += opts.Concurrency {
				if ctx.Err() != nil {
					mu.Lock()
					rep.Errors++
					mu.Unlock()
					continue
				}
				body := bodies[i%len(bodies)]
				t0 := now()
				status, err := postOnce(ctx, client, url, body)
				d := since(t0)
				mu.Lock()
				if err != nil {
					rep.Errors++
				} else {
					rep.StatusCounts[status]++
					hist.Observe(d)
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	rep.Elapsed = since(start)
	rep.Latency = hist.Snapshot()
	if rep.Elapsed > 0 {
		rep.RPS = float64(rep.Latency.Count) / rep.Elapsed.Seconds()
	}
	return rep, nil
}

// postOnce sends one request and fully drains the response so the
// client's connection pool can reuse the socket.
func postOnce(ctx context.Context, client *http.Client, url string, body []byte) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	return resp.StatusCode, nil
}

// Render formats the report as the human-readable loadgen summary.
func (r *LoadReport) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "requests:   %d (%d transport errors)\n", r.Requests, r.Errors)
	codes := make([]int, 0, len(r.StatusCounts))
	for c := range r.StatusCounts {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Fprintf(&sb, "  HTTP %d:  %d\n", c, r.StatusCounts[c])
	}
	fmt.Fprintf(&sb, "elapsed:    %v\n", r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&sb, "throughput: %.1f requests/sec\n", r.RPS)
	l := r.Latency
	fmt.Fprintf(&sb, "latency:    p50=%v p90=%v p99=%v min=%v max=%v\n",
		l.P50.Round(time.Microsecond), l.P90.Round(time.Microsecond), l.P99.Round(time.Microsecond),
		l.Min.Round(time.Microsecond), l.Max.Round(time.Microsecond))
	return sb.String()
}
