package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	heteropar "repro"
	"repro/internal/obs"
)

// newTestServer builds a server plus an httptest listener; the caller
// may replace s.solve before issuing requests.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return s, ts
}

// post sends one parallelize request and returns status, body.
func post(t *testing.T, baseURL string, req Request) (int, []byte) {
	t.Helper()
	buf, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/parallelize", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// stubSolve installs a controllable solve: it blocks until release is
// closed and counts invocations.
func stubSolve(s *Server, calls *atomic.Int64, release <-chan struct{}) {
	s.solve = func(spec *jobSpec) outcome {
		calls.Add(1)
		if release != nil {
			<-release
		}
		return outcome{res: &Result{Program: spec.name, Scenario: spec.scenarioStr, Approach: spec.approachStr}, code: 200}
	}
}

// TestDaemonMatchesFacadeBytes is the parity gate: the daemon's
// response for a bundled benchmark must be byte-identical to encoding
// the facade's report directly — the same bytes `heteropar -json`
// prints (both paths share ResultOf/Encode; the CI smoke test compares
// against the actual CLI binary).
func TestDaemonMatchesFacadeBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline solve in -short mode")
	}
	rep, err := heteropar.Parallelize(benchSource(t, "mult_10"), heteropar.Options{
		Platform: heteropar.PlatformA(),
		Scenario: heteropar.Accelerator,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := ResultOf(rep, "mult_10", "acc", "het").Encode()

	_, ts := newTestServer(t, Config{Workers: 2})
	status, body := post(t, ts.URL, Request{Bench: "mult_10"})
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	if !bytes.Equal(body, want) {
		t.Errorf("daemon response differs from facade encoding:\n--- daemon ---\n%s--- facade ---\n%s", body, want)
	}

	// A repeat request is a cache hit with the very same bytes.
	status, again := post(t, ts.URL, Request{Bench: "mult_10"})
	if status != http.StatusOK || !bytes.Equal(again, want) {
		t.Errorf("cached response differs (status %d):\n%s", status, again)
	}
}

// benchSource fetches a bundled benchmark's source through the public
// request path, so the test exercises the same resolution the daemon
// uses.
func benchSource(t *testing.T, name string) string {
	t.Helper()
	spec, err := specOf(&Request{Bench: name})
	if err != nil {
		t.Fatal(err)
	}
	return spec.source
}

// TestCoalesceIdenticalRequests issues N concurrent identical requests
// against a blocked solver and checks exactly one solve ran and the
// coalesce counter recorded N-1 joins.
func TestCoalesceIdenticalRequests(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, Config{Workers: 2, Metrics: reg})
	var calls atomic.Int64
	release := make(chan struct{})
	stubSolve(s, &calls, release)

	const n = 8
	var wg sync.WaitGroup
	statuses := make([]int, n)
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], bodies[i] = post(t, ts.URL, Request{Bench: "fir_256"})
		}(i)
	}
	// Wait until the leader is inside the solve, then let everyone
	// pile onto the same job before releasing it.
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	for reg.Counter("serve.coalesce.hits").Value() < n-1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("solve ran %d times for %d identical requests; want 1", got, n)
	}
	if got := reg.Counter("serve.coalesce.hits").Value(); got != n-1 {
		t.Fatalf("coalesce counter = %d; want %d", got, n-1)
	}
	for i := 0; i < n; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d body %s", i, statuses[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d got different bytes", i)
		}
	}
}

// TestOverloadSheds429 saturates a 1-worker/1-slot queue and checks the
// excess unique request is rejected with 429 + Retry-After while the
// admitted solves still complete — overload sheds at the door without
// starving in-flight work.
func TestOverloadSheds429(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Metrics: reg})
	var calls atomic.Int64
	release := make(chan struct{})
	stubSolve(s, &calls, release)

	// Occupy the worker and the single queue slot with distinct jobs.
	var wg sync.WaitGroup
	admitted := []string{"fir_256", "mult_10"}
	results := make([]int, len(admitted))
	for i, name := range admitted {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			results[i], _ = post(t, ts.URL, Request{Bench: name})
		}(i, name)
	}
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	waitFor(t, func() bool { return len(s.queue) == 1 }, "queue slot occupied")

	// A third unique job finds pool and queue full.
	req, _ := json.Marshal(&Request{Bench: "iir_4"})
	resp, err := http.Post(ts.URL+"/v1/parallelize", "application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429; body %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatalf("429 without Retry-After header")
	}

	// The rejected request must not have disturbed the admitted ones.
	close(release)
	wg.Wait()
	for i, st := range results {
		if st != http.StatusOK {
			t.Fatalf("admitted request %d (%s) got %d", i, admitted[i], st)
		}
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("solve ran %d times; want 2 (the admitted jobs)", got)
	}
}

// TestDrainRejectsNewAndFinishesInflight covers graceful shutdown: an
// in-flight solve completes and its waiter gets the result, while work
// submitted after Drain starts is rejected with 503.
func TestDrainRejectsNewAndFinishesInflight(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	var calls atomic.Int64
	release := make(chan struct{})
	stubSolve(s, &calls, release)

	var inflightStatus atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		st, _ := post(t, ts.URL, Request{Bench: "fir_256"})
		inflightStatus.Store(int64(st))
	}()
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	waitFor(t, func() bool {
		s.drainMu.RLock()
		defer s.drainMu.RUnlock()
		return s.draining
	}, "draining flag")

	if st, body := post(t, ts.URL, Request{Bench: "mult_10"}); st != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request: status %d body %s; want 503", st, body)
	}

	close(release)
	wg.Wait()
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if st := inflightStatus.Load(); st != http.StatusOK {
		t.Fatalf("in-flight request finished with %d; want 200", st)
	}
}

// TestDeadlineAbandonsWaitNotSolve checks timeout_ms: the client gets
// 504 while the solve continues, finishes, and serves the retry from
// cache.
func TestDeadlineAbandonsWaitNotSolve(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, Config{Workers: 1, Metrics: reg})
	var calls atomic.Int64
	release := make(chan struct{})
	stubSolve(s, &calls, release)

	status, body := post(t, ts.URL, Request{Bench: "fir_256", TimeoutMs: 50})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d body %s; want 504", status, body)
	}
	close(release)

	// The abandoned solve lands in the store; the retry is a cache hit
	// with zero additional solves.
	spec, err := specOf(&Request{Bench: "fir_256"})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		_, ok := s.cachedOutcome(spec.key)
		return ok
	}, "abandoned solve to land in the store")
	if st, body := post(t, ts.URL, Request{Bench: "fir_256"}); st != http.StatusOK {
		t.Fatalf("retry: status %d body %s; want 200 from cache", st, body)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("solve ran %d times; want 1 (retry from cache)", got)
	}
	if reg.Counter("serve.cache.hits").Value() == 0 {
		t.Fatal("retry did not count as a cache hit")
	}
}

// TestAsyncLifecycle submits with async=true and polls the job to
// completion; the final GET serves the canonical result bytes.
func TestAsyncLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	var calls atomic.Int64
	release := make(chan struct{})
	stubSolve(s, &calls, release)

	status, body := post(t, ts.URL, Request{Bench: "fir_256", Async: true})
	if status != http.StatusAccepted {
		t.Fatalf("async submit: status %d body %s; want 202", status, body)
	}
	var st jobStatus
	if err := json.Unmarshal(body, &st); err != nil || st.ID == "" {
		t.Fatalf("async envelope %s: %v", body, err)
	}
	if st.Status != "queued" && st.Status != "running" {
		t.Fatalf("fresh job status %q", st.Status)
	}

	get := func() (int, []byte) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}
	if code, b := get(); code != http.StatusOK || !bytes.Contains(b, []byte(`"status"`)) {
		t.Fatalf("pending poll: %d %s", code, b)
	}
	close(release)
	waitFor(t, func() bool {
		code, b := get()
		return code == http.StatusOK && bytes.Contains(b, []byte(`"program"`))
	}, "job completion")

	if _, b := get(); !bytes.Contains(b, []byte(`"program": "fir_256"`)) {
		t.Fatalf("completed job body: %s", b)
	}
	if calls.Load() != 1 {
		t.Fatalf("solve ran %d times", calls.Load())
	}
}

// TestRequestValidation walks the 4xx surface.
func TestRequestValidation(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	var calls atomic.Int64
	stubSolve(s, &calls, nil)

	cases := []struct {
		name string
		req  Request
		want int
	}{
		{"empty", Request{}, 400},
		{"unknown bench", Request{Bench: "nope"}, 400},
		{"both inputs", Request{Bench: "fir_256", Source: "void main() {}"}, 400},
		{"bad scenario", Request{Bench: "fir_256", Scenario: "fast"}, 400},
		{"bad approach", Request{Bench: "fir_256", Approach: "magic"}, 400},
		{"bad platform", Request{Bench: "fir_256", Platform: json.RawMessage(`"C"`)}, 400},
		{"negative workers", Request{Bench: "fir_256", RegionWorkers: -1}, 400},
		{"negative timeout", Request{Bench: "fir_256", TimeoutMs: -5}, 400},
	}
	for _, tc := range cases {
		if st, body := post(t, ts.URL, tc.req); st != tc.want {
			t.Errorf("%s: status %d body %s; want %d", tc.name, st, body, tc.want)
		}
	}
	if calls.Load() != 0 {
		t.Fatalf("invalid requests reached the solver (%d calls)", calls.Load())
	}

	// Method and job-id errors.
	resp, err := http.Get(ts.URL + "/v1/parallelize")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/parallelize = %d; want 405", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/doesnotexist")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job = %d; want 404", resp.StatusCode)
	}
}

// TestInvalidStoreCapacity checks the daemon-side -store-cap edge
// semantics: negative capacity is a configuration error, never a
// silent cache-off.
func TestInvalidStoreCapacity(t *testing.T) {
	if _, err := New(Config{StoreCapacity: -1}); err == nil {
		t.Fatal("New accepted a negative store capacity")
	} else if !strings.Contains(err.Error(), ">= 0") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// TestMetricsEndpoint drives traffic and checks the serve.* families
// appear on /metrics as structurally valid Prometheus text.
func TestMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, Config{Workers: 1, Metrics: reg})
	var calls atomic.Int64
	stubSolve(s, &calls, nil)

	if st, body := post(t, ts.URL, Request{Bench: "fir_256"}); st != http.StatusOK {
		t.Fatalf("seed request: %d %s", st, body)
	}
	post(t, ts.URL, Request{Bench: "nope"}) // a 400 for the status counter

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		`heteropar_serve_requests{code="200",endpoint="parallelize"} 1`,
		`heteropar_serve_requests{code="400",endpoint="parallelize"} 1`,
		"heteropar_serve_request_latency_seconds_count",
		"heteropar_serve_solve_latency_seconds_count",
		"heteropar_serve_queue_depth",
		"heteropar_serve_inflight",
		"heteropar_serve_coalesce_hits",
		"heteropar_serve_cache_hits",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if err := obs.CheckPromText(bytes.NewReader(body)); err != nil {
		t.Errorf("invalid Prometheus text: %v", err)
	}
}

// TestRetryAfterSeconds pins the backpressure estimate policy.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		queued, workers int
		mean            time.Duration
		want            int
	}{
		{0, 4, 0, 1},                      // empty queue, no history: minimum
		{0, 4, 500 * time.Millisecond, 1}, // sub-second rounds up to 1
		{8, 4, time.Second, 3},            // 2 batches ahead + own slot
		{100, 4, 2 * time.Second, 52},     // long backlog
		{1000, 1, 10 * time.Second, 60},   // clamped at the ceiling
		{5, 0, time.Second, 6},            // degenerate worker count
	}
	for _, tc := range cases {
		if got := retryAfterSeconds(tc.queued, tc.workers, tc.mean); got != tc.want {
			t.Errorf("retryAfterSeconds(%d, %d, %v) = %d; want %d",
				tc.queued, tc.workers, tc.mean, got, tc.want)
		}
	}
}

// waitFor polls cond with a deadline to keep failed tests from hanging.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := now().Add(10 * time.Second)
	for !cond() {
		if now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestJobKeyContentAddressing checks the fingerprint: equal inputs
// share a key; any solver-visible difference (source, platform,
// resolved main class, approach) separates them; output-neutral knobs
// (region workers, timeout) do not.
func TestJobKeyContentAddressing(t *testing.T) {
	key := func(req Request) string {
		t.Helper()
		spec, err := specOf(&req)
		if err != nil {
			t.Fatal(err)
		}
		return spec.key
	}
	base := key(Request{Bench: "fir_256"})
	if base != key(Request{Bench: "fir_256", RegionWorkers: 4, TimeoutMs: 1000, Async: true}) {
		t.Error("output-neutral knobs changed the job key")
	}
	if base == key(Request{Bench: "mult_10"}) {
		t.Error("different programs share a key")
	}
	if base == key(Request{Bench: "fir_256", Platform: json.RawMessage(`"B"`)}) {
		t.Error("different platforms share a key")
	}
	if base == key(Request{Bench: "fir_256", Scenario: "slow"}) {
		t.Error("different main classes share a key")
	}
	if base == key(Request{Bench: "fir_256", Approach: "hom"}) {
		t.Error("different approaches share a key")
	}
}
