package serve

import "time"

// Wall-clock policy: every wall-clock read of this package lives in
// this file. The repolint wallclock sweep confines time.Now / time.Since
// / time.Until for repro/internal/serve to clock.go (the
// wallclockConfined policy in cmd/repolint), so a new wall-clock read
// anywhere else in the package fails `make lint` instead of slipping in
// behind an ad-hoc //repolint:allow waiver.
//
// Wall time in the serving layer is strictly out-of-band: it feeds
// request latency histograms, queue-wait deadlines and Retry-After
// estimates — never the solver, whose results stay byte-identical for
// equal inputs regardless of when or how slowly they were computed.

// now returns the current wall-clock time.
func now() time.Time { return time.Now() }

// since returns the wall-clock time elapsed since t.
func since(t time.Time) time.Duration { return time.Since(t) }
