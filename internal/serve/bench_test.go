package serve

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/obs"
)

// BenchmarkServeLoadgen measures daemon throughput for the mixed
// ten-benchmark UTDSP workload against a warm store: the first
// iteration pays the ten cold solves, then b.ResetTimer, so the
// steady-state number is the serving overhead (HTTP + coalesce + cache
// lookup) the daemon adds on top of the 17ms-warm solve path. benchjson
// exports the rps and latency metrics into BENCH_ilp.json's serve
// suite.
func BenchmarkServeLoadgen(b *testing.B) {
	s, err := New(Config{Workers: 4, Metrics: obs.NewRegistry()})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer func() {
		ts.Close()
		_ = s.Drain(context.Background())
	}()

	opts := LoadOptions{
		BaseURL:     ts.URL,
		Benchmarks:  benchNames(),
		Concurrency: 8,
		Requests:    len(benchNames()),
	}
	// Warm the store: one pass pays every cold solve.
	if _, err := RunLoad(context.Background(), opts); err != nil {
		b.Fatal(err)
	}

	opts.Requests = 200
	b.ResetTimer()
	var rps, p50, p99 float64
	for i := 0; i < b.N; i++ {
		rep, err := RunLoad(context.Background(), opts)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Errors > 0 || rep.StatusCounts[200] != rep.Requests {
			b.Fatalf("load run degraded: %+v", rep)
		}
		rps = rep.RPS
		p50 = float64(rep.Latency.P50.Nanoseconds())
		p99 = float64(rep.Latency.P99.Nanoseconds())
	}
	// ns/op is the wall time of one whole 200-request load run — the
	// number the bench gate holds to its 2x tolerance.
	b.ReportMetric(rps, "req/s")
	b.ReportMetric(p50, "p50-ns")
	b.ReportMetric(p99, "p99-ns")
}
