package serve

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"strings"

	heteropar "repro"
	"repro/internal/bench"
	"repro/internal/platform"
)

// Request is the JSON body of POST /v1/parallelize. Exactly one of
// Bench (a bundled UTDSP benchmark name) or Source (inline mini-C) must
// be set; everything else is optional with the same defaults as the
// heteropar CLI.
type Request struct {
	// Bench selects a bundled benchmark by name (see `heteropar -list`).
	Bench string `json:"bench,omitempty"`
	// Source is inline mini-C source; Program optionally labels it in
	// the result (default "source.c").
	Source  string `json:"source,omitempty"`
	Program string `json:"program,omitempty"`
	// Platform is "A", "B" or an inline platform JSON object (the
	// `-platform file.json` schema). Default "A".
	Platform json.RawMessage `json:"platform,omitempty"`
	// Scenario is "acc" (default) or "slow"; Approach "het" (default)
	// or "hom".
	Scenario string `json:"scenario,omitempty"`
	Approach string `json:"approach,omitempty"`
	// RegionWorkers bounds per-solve region concurrency (0 = server
	// default). Output is byte-identical at any width, so the field is
	// not part of the job's content address.
	RegionWorkers int `json:"region_workers,omitempty"`
	// TimeoutMs caps how long this request waits for its result (queue
	// wait + solve). The solve itself is never abandoned: it runs to
	// completion and lands in the store, so a timed-out client can
	// retry cheaply. 0 means the server default.
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// Async makes the POST return 202 + a job id immediately; fetch the
	// result with GET /v1/jobs/{id}.
	Async bool `json:"async,omitempty"`
}

// jobSpec is a validated, resolved request: everything a worker needs
// to run the solve, plus the job's content address.
type jobSpec struct {
	name     string
	source   string
	platform *platform.Platform
	scenario heteropar.Scenario
	approach heteropar.Approach
	// scenarioStr / approachStr are the canonical request tokens echoed
	// into the result document.
	scenarioStr   string
	approachStr   string
	regionWorkers int
	// key is the job's content address: requests with equal keys are
	// interchangeable (identical result bytes), which is what makes
	// coalescing and result caching sound.
	key string
}

// specOf validates and resolves a request. Errors are client errors
// (HTTP 400).
func specOf(req *Request) (*jobSpec, error) {
	spec := &jobSpec{}
	switch {
	case req.Bench != "" && req.Source != "":
		return nil, fmt.Errorf("both bench %q and source given; pass one input", req.Bench)
	case req.Bench != "":
		b := bench.ByName(req.Bench)
		if b == nil {
			return nil, fmt.Errorf("unknown benchmark %q (bundled: %s)", req.Bench, strings.Join(benchNames(), ", "))
		}
		spec.name, spec.source = b.Name, b.Source
	case req.Source != "":
		spec.name, spec.source = req.Program, req.Source
		if spec.name == "" {
			spec.name = "source.c"
		}
	default:
		return nil, fmt.Errorf("empty request: set bench or source")
	}

	pf, err := resolvePlatform(req.Platform)
	if err != nil {
		return nil, err
	}
	if err := pf.Validate(); err != nil {
		return nil, err
	}
	spec.platform = pf

	switch req.Scenario {
	case "", "acc":
		spec.scenario, spec.scenarioStr = heteropar.Accelerator, "acc"
	case "slow":
		spec.scenario, spec.scenarioStr = heteropar.SlowerCores, "slow"
	default:
		return nil, fmt.Errorf("unknown scenario %q (want acc or slow)", req.Scenario)
	}
	switch req.Approach {
	case "", "het":
		spec.approach, spec.approachStr = heteropar.Heterogeneous, "het"
	case "hom":
		spec.approach, spec.approachStr = heteropar.Homogeneous, "hom"
	default:
		return nil, fmt.Errorf("unknown approach %q (want het or hom)", req.Approach)
	}
	if req.RegionWorkers < 0 {
		return nil, fmt.Errorf("region_workers must be >= 0 (got %d)", req.RegionWorkers)
	}
	if req.TimeoutMs < 0 {
		return nil, fmt.Errorf("timeout_ms must be >= 0 (got %d)", req.TimeoutMs)
	}
	spec.regionWorkers = req.RegionWorkers
	spec.key = jobKey(spec)
	return spec, nil
}

// resolvePlatform maps the request's platform field — absent, "A", "B"
// or an inline platform object — onto a platform description.
func resolvePlatform(raw json.RawMessage) (*platform.Platform, error) {
	if len(raw) == 0 {
		return heteropar.PlatformA(), nil
	}
	var name string
	if err := json.Unmarshal(raw, &name); err == nil {
		switch {
		case strings.EqualFold(name, "A"):
			return heteropar.PlatformA(), nil
		case strings.EqualFold(name, "B"):
			return heteropar.PlatformB(), nil
		}
		return nil, fmt.Errorf("unknown platform %q (want A, B or an inline platform object)", name)
	}
	pf, err := platform.FromJSON(raw)
	if err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	return pf, nil
}

// jobKey derives the job's content address with the same fingerprint
// machinery the solution store is keyed on: the program source, the
// platform fingerprint (every solver-visible platform field), the
// resolved main class and the approach. Scenario enters through the
// resolved main class — two scenarios that pick the same class on a
// platform correctly share one entry — and output-neutral knobs
// (region workers, timeouts) are excluded, so every cache or coalesce
// hit is guaranteed byte-identical to a fresh solve.
func jobKey(spec *jobSpec) string {
	mainClass := spec.scenario.MainClass(spec.platform)
	h := sha256.Sum256([]byte(fmt.Sprintf("servejob|v1|%d|%s|%s|%d|%s",
		len(spec.source), spec.source, spec.platform.Fingerprint(), mainClass, spec.approachStr)))
	return fmt.Sprintf("%x", h[:16])
}

// benchNames lists the bundled benchmark names in sorted order.
func benchNames() []string {
	var names []string
	for _, b := range bench.All() {
		names = append(names, b.Name)
	}
	return names
}
