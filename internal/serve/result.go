package serve

import (
	"encoding/json"

	heteropar "repro"
)

// Result is the canonical machine-readable outcome of one parallelize
// run: the document `heteropar -json` prints and the daemon's
// `POST /v1/parallelize` returns. The two paths share this one type and
// encoder so their outputs are byte-identical for equal inputs — the
// serving layer is a transport, never a second source of truth.
//
// Every field is deterministic for a given (program, platform,
// scenario, approach): wall-clock quantities such as ILP solve time are
// deliberately excluded, so equal requests yield equal bytes whether
// they were solved cold, replayed from the store, or coalesced onto
// another request's solve.
type Result struct {
	// Program names the input (bundled benchmark name or caller-supplied
	// label); Platform is the target platform's name.
	Program  string `json:"program"`
	Platform string `json:"platform"`
	// Scenario and Approach use the CLI flag vocabulary: "acc"/"slow"
	// and "het"/"hom".
	Scenario string `json:"scenario"`
	Approach string `json:"approach"`
	// MainClass is the resolved main processor class index;
	// MainClassName its platform name.
	MainClass     int    `json:"main_class"`
	MainClassName string `json:"main_class_name"`
	// Tasks is the flattened task count of the chosen plan.
	Tasks int `json:"tasks"`
	// NumILPs / NumVars / NumConstraints summarize the ILP work.
	NumILPs        int `json:"num_ilps"`
	NumVars        int `json:"num_vars"`
	NumConstraints int `json:"num_constraints"`
	// SequentialNs and MakespanNs are the simulated sequential baseline
	// and parallel execution times.
	SequentialNs float64 `json:"sequential_ns"`
	MakespanNs   float64 `json:"makespan_ns"`
	// MeasuredSpeedup (simulator), EstimatedSpeedup (cost model) and
	// TheoreticalSpeedup (platform bound) mirror the CLI summary lines.
	MeasuredSpeedup    float64 `json:"measured_speedup"`
	EstimatedSpeedup   float64 `json:"estimated_speedup"`
	TheoreticalSpeedup float64 `json:"theoretical_speedup"`
	// EnergyUJ and SequentialEnergyUJ are the simulated energies of the
	// parallel execution and the sequential baseline.
	EnergyUJ           float64 `json:"energy_uj"`
	SequentialEnergyUJ float64 `json:"sequential_energy_uj"`
}

// ResultOf distills a facade report into the canonical result.
// scenario and approach are the flag-vocabulary tokens of the request
// ("acc"/"slow", "het"/"hom").
func ResultOf(rep *heteropar.Report, program, scenario, approach string) *Result {
	return &Result{
		Program:            program,
		Platform:           rep.Result.Platform.Name,
		Scenario:           scenario,
		Approach:           approach,
		MainClass:          rep.MainClass,
		MainClassName:      rep.Result.Platform.Classes[rep.MainClass].Name,
		Tasks:              rep.NumTasks(),
		NumILPs:            rep.Result.Stats.NumILPs,
		NumVars:            rep.Result.Stats.NumVars,
		NumConstraints:     rep.Result.Stats.NumConstraints,
		SequentialNs:       rep.SequentialNs,
		MakespanNs:         rep.MeasuredMakespanNs,
		MeasuredSpeedup:    rep.MeasuredSpeedup,
		EstimatedSpeedup:   rep.EstimatedSpeedup,
		TheoreticalSpeedup: rep.TheoreticalLimit(),
		EnergyUJ:           rep.MeasuredEnergyUJ,
		SequentialEnergyUJ: rep.SequentialEnergyUJ,
	}
}

// Encode renders the result as the canonical JSON document: two-space
// indentation, struct field order, one trailing newline. Both the CLI
// and the daemon emit exactly these bytes.
func (r *Result) Encode() []byte {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		// A flat struct of strings/ints/floats cannot fail to marshal;
		// keep the signature allocation-free for callers anyway.
		return []byte("{}\n")
	}
	return append(buf, '\n')
}
