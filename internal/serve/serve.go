// Package serve is the parallelizer-as-a-service layer: it wraps the
// facade heteropar.Parallelize behind an HTTP/JSON API so many clients
// share one long-running process — and, through it, one warm solution
// store. The repo's own measurements make caching the scale story (the
// 200×3 DSE sweep is 38m23s cold vs 17ms warm), so the daemon's job is
// to keep that store hot and to protect the solver pool behind it:
//
//   - POST /v1/parallelize — solve one (program, platform, scenario,
//     approach) job; the response bytes are identical to
//     `heteropar -json` for the same inputs. With "async": true the
//     call returns 202 + a job id instead of waiting.
//   - GET /v1/jobs/{id} — poll an async job; returns the canonical
//     result document once the job is done.
//   - /metrics, /healthz, /events, /debug/pprof/ — the obs telemetry
//     surface, mounted on the same listener.
//
// Three mechanisms keep the daemon stable under heavy traffic:
//
// Coalescing. Jobs are content-addressed by the same fingerprint
// machinery the solution store uses (source, platform fingerprint,
// resolved main class, approach). A request whose key matches a
// queued or running job joins it instead of enqueueing a second solve
// — N concurrent identical requests cost exactly one solve — and a
// request whose key is already in the store is answered from cache
// without touching the pool at all.
//
// Admission control. Unique jobs pass through a bounded queue feeding
// a fixed worker pool. When the queue is full the request is rejected
// immediately with 429 and a Retry-After estimated from the observed
// solve latency, so overload sheds load at the door instead of
// starving the solves already in flight. Every request carries a
// deadline (request field or server default) propagated via context;
// a client that times out abandons only its wait — the solve runs to
// completion and lands in the store for the retry.
//
// Graceful shutdown. Drain stops admission (503 for new work), closes
// the queue, and waits for in-flight solves to finish, so a SIGTERM
// never wastes work the store could have kept.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	heteropar "repro"
	"repro/internal/obs"
	"repro/internal/solstore"
)

// Defaults for Config.
const (
	DefaultWorkers    = 4
	DefaultQueueDepth = 64
	DefaultTimeout    = 2 * time.Minute
)

// storeKeyPrefix namespaces whole-job results inside the shared store;
// region keys carry "region|" and DSE outcomes "dse|", so the three
// populations never collide.
const storeKeyPrefix = "serve|"

// Config configures a Server.
type Config struct {
	// Workers is the solver pool size (DefaultWorkers when <= 0).
	Workers int
	// QueueDepth bounds the admission queue (DefaultQueueDepth when
	// <= 0). Requests beyond queued+running capacity get 429.
	QueueDepth int
	// DefaultTimeout caps a request's wait (queue + solve) when the
	// request sets no timeout_ms (DefaultTimeout when <= 0).
	DefaultTimeout time.Duration
	// StoreCapacity sizes the shared solution store when Store is nil:
	// 0 selects solstore.DefaultCapacity; negative is rejected by New
	// (misconfiguring the cache off would silently discard the scale
	// story, so it is an error, not a fallback).
	StoreCapacity int
	// Store, when non-nil, is the shared solution store to use —
	// whole-job results, DSE outcomes and region subproblems can share
	// one bounded arena. StoreCapacity is ignored in that case.
	Store *solstore.Store
	// RegionWorkers is the per-solve region concurrency handed to the
	// facade when a request does not set region_workers.
	RegionWorkers int
	// Metrics receives the serve.* families plus the facade's solver
	// and store metrics; a nil registry disables metric collection
	// (the /metrics endpoint then serves an empty body).
	Metrics *obs.Registry
	// Events, when non-nil, receives serve-job-* events next to the
	// facade's solver/store events, and backs the /events endpoint.
	Events *obs.EventLog
}

// Server is the daemon core. It implements http.Handler; the caller
// owns the listener (net/http.Server, httptest.Server, ...). Create
// with New, stop with Drain.
type Server struct {
	cfg    Config
	store  *solstore.Store
	reg    *obs.Registry
	events *obs.EventLog
	mux    *http.ServeMux

	queue   chan *job
	workers sync.WaitGroup

	// drainMu guards draining and the queue close: enqueues take the
	// read side, Drain the write side, so a send on a closed queue is
	// impossible.
	drainMu  sync.RWMutex
	draining bool

	// jobsMu guards jobs, the registry of queued and running jobs that
	// doubles as the coalescing singleflight table. Completed jobs
	// leave the registry; their results live in the store under the
	// same content address.
	jobsMu sync.Mutex
	jobs   map[string]*job

	requests     *obs.CounterVec   // serve.requests{endpoint,code}
	latency      *obs.HistogramVec // serve.request.latency{endpoint}
	solveLatency *obs.Histogram    // serve.solve.latency
	queueDepth   *obs.Gauge        // serve.queue.depth
	inflight     *obs.Gauge        // serve.inflight
	coalesceHits *obs.Counter      // serve.coalesce.hits
	cacheHits    *obs.Counter      // serve.cache.hits

	// solve runs one job; swapped by tests for controllable latency.
	solve func(spec *jobSpec) outcome
}

// job is one queued-or-running solve that any number of requests wait
// on.
type job struct {
	spec *jobSpec
	done chan struct{}
	out  outcome

	mu      sync.Mutex
	running bool
}

// outcome is a finished job: either the canonical result or an error
// with the HTTP status it maps to. Outcomes are stored whole — errors
// included — because for equal inputs the pipeline fails or succeeds
// deterministically.
type outcome struct {
	res    *Result
	errMsg string
	code   int
}

// New builds a server and starts its worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.StoreCapacity < 0 {
		return nil, fmt.Errorf("serve: store capacity must be >= 0 (got %d); 0 selects the default (%d entries)",
			cfg.StoreCapacity, solstore.DefaultCapacity)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = DefaultTimeout
	}
	store := cfg.Store
	if store == nil {
		store = solstore.New(solstore.Options{
			Capacity: cfg.StoreCapacity,
			Metrics:  cfg.Metrics,
			Events:   cfg.Events,
		})
	}
	s := &Server{
		cfg:          cfg,
		store:        store,
		reg:          cfg.Metrics,
		events:       cfg.Events,
		queue:        make(chan *job, cfg.QueueDepth),
		jobs:         map[string]*job{},
		requests:     cfg.Metrics.CounterVec("serve.requests", "endpoint", "code"),
		latency:      cfg.Metrics.HistogramVec("serve.request.latency", "endpoint"),
		solveLatency: cfg.Metrics.Histogram("serve.solve.latency"),
		queueDepth:   cfg.Metrics.Gauge("serve.queue.depth"),
		inflight:     cfg.Metrics.Gauge("serve.inflight"),
		coalesceHits: cfg.Metrics.Counter("serve.coalesce.hits"),
		cacheHits:    cfg.Metrics.Counter("serve.cache.hits"),
	}
	s.solve = s.realSolve

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/parallelize", s.handleParallelize)
	s.mux.HandleFunc("/v1/jobs/", s.handleJob)
	s.mux.Handle("/", obs.TelemetryHandler(cfg.Metrics, cfg.Events))

	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s, nil
}

// Store returns the server's solution store (never nil), for sharing
// with other consumers or inspecting stats.
func (s *Server) Store() *solstore.Store { return s.store }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Drain gracefully shuts the pool down: new work is rejected with 503,
// already-admitted jobs run to completion (every waiter gets its
// response), and the call returns once the pool is idle or ctx
// expires. Safe to call more than once.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.drainMu.Unlock()
	idle := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
}

// handleParallelize serves POST /v1/parallelize.
func (s *Server) handleParallelize(w http.ResponseWriter, r *http.Request) {
	start := now()
	code := s.parallelize(w, r)
	s.requests.With("parallelize", strconv.Itoa(code)).Inc()
	s.latency.With("parallelize").Observe(since(start))
}

// parallelize runs the request lifecycle and returns the status code
// served (for the per-status counter).
func (s *Server) parallelize(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodPost {
		return s.fail(w, http.StatusMethodNotAllowed, "use POST with a JSON body")
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		return s.fail(w, http.StatusBadRequest, "read body: %v", err)
	}
	var req Request
	if err := json.Unmarshal(body, &req); err != nil {
		return s.fail(w, http.StatusBadRequest, "parse request: %v", err)
	}
	spec, err := specOf(&req)
	if err != nil {
		return s.fail(w, http.StatusBadRequest, "%v", err)
	}

	// Cache: a finished job with this content address answers
	// immediately, no pool involvement.
	if out, ok := s.cachedOutcome(spec.key); ok {
		s.cacheHits.Inc()
		if req.Async {
			return s.writeJSON(w, http.StatusAccepted, jobStatus{ID: spec.key, Status: "done"})
		}
		return s.writeOutcome(w, out)
	}

	j, admitted := s.admit(spec)
	switch {
	case j == nil && admitted: // draining
		return s.fail(w, http.StatusServiceUnavailable, "server is draining; retry against another instance")
	case j == nil: // queue full
		w.Header().Set("Retry-After", strconv.Itoa(
			retryAfterSeconds(len(s.queue), s.cfg.Workers, s.solveLatency.Mean())))
		return s.fail(w, http.StatusTooManyRequests, "queue full (%d queued, %d workers); retry after the advertised delay",
			len(s.queue), s.cfg.Workers)
	}

	if req.Async {
		return s.writeJSON(w, http.StatusAccepted, jobStatus{ID: spec.key, Status: j.status()})
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	select {
	case <-j.done:
		return s.writeOutcome(w, j.out)
	case <-ctx.Done():
		// The wait is abandoned, never the solve: it finishes and is
		// cached under the job id, so a retry is a cache hit.
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return s.fail(w, http.StatusGatewayTimeout,
				"deadline exceeded waiting for job %s; the solve continues — retry or poll /v1/jobs/%s", spec.key, spec.key)
		}
		return s.fail(w, 499, "client closed request while waiting for job %s", spec.key) // nginx's 499, for the status counter
	}
}

// handleJob serves GET /v1/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	start := now()
	code := s.jobLookup(w, r)
	s.requests.With("jobs", strconv.Itoa(code)).Inc()
	s.latency.With("jobs").Observe(since(start))
}

func (s *Server) jobLookup(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodGet {
		return s.fail(w, http.StatusMethodNotAllowed, "use GET /v1/jobs/{id}")
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id == "" || strings.Contains(id, "/") {
		return s.fail(w, http.StatusBadRequest, "want /v1/jobs/{id}")
	}
	s.jobsMu.Lock()
	j := s.jobs[id]
	s.jobsMu.Unlock()
	if j != nil {
		return s.writeJSON(w, http.StatusOK, jobStatus{ID: id, Status: j.status()})
	}
	if out, ok := s.cachedOutcome(id); ok {
		return s.writeOutcome(w, out)
	}
	return s.fail(w, http.StatusNotFound, "unknown job %s (never submitted, or its result aged out of the store)", id)
}

// jobStatus is the envelope for async submissions and pending polls.
type jobStatus struct {
	ID     string `json:"id"`
	Status string `json:"status"`
}

// cachedOutcome looks a finished job up in the store.
func (s *Server) cachedOutcome(key string) (outcome, bool) {
	v, ok := s.store.Get(storeKeyPrefix + key)
	if !ok {
		return outcome{}, false
	}
	out, ok := v.(outcome)
	return out, ok
}

// admit coalesces the spec onto an existing job or enqueues a new one.
// Returns (job, _) on success; (nil, true) when draining; (nil, false)
// when the queue is full.
func (s *Server) admit(spec *jobSpec) (*job, bool) {
	s.jobsMu.Lock()
	if j, ok := s.jobs[spec.key]; ok {
		s.jobsMu.Unlock()
		s.coalesceHits.Inc()
		s.events.Emit("serve-job-coalesced", spec.key, map[string]any{"program": spec.name})
		return j, false
	}
	j := &job{spec: spec, done: make(chan struct{})}
	s.jobs[spec.key] = j
	s.jobsMu.Unlock()

	s.drainMu.RLock()
	draining := s.draining
	enqueued := false
	if !draining {
		select {
		case s.queue <- j:
			enqueued = true
		default:
		}
	}
	s.drainMu.RUnlock()

	if enqueued {
		s.queueDepth.Set(float64(len(s.queue)))
		s.events.Emit("serve-job-queued", spec.key, map[string]any{"program": spec.name, "queue_depth": len(s.queue)})
		return j, false
	}
	// Rejected at the door. Followers may already have joined between
	// the registry insert and the failed enqueue, so fail the job —
	// they get the overload outcome too — before unregistering it.
	code := http.StatusTooManyRequests
	msg := "queue full"
	if draining {
		code, msg = http.StatusServiceUnavailable, "server is draining"
	}
	j.finish(outcome{errMsg: msg, code: code})
	s.jobsMu.Lock()
	delete(s.jobs, spec.key)
	s.jobsMu.Unlock()
	return nil, draining
}

// worker drains the queue until Drain closes it.
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.queueDepth.Set(float64(len(s.queue)))
		j.setRunning()
		s.inflight.Add(1)
		t0 := now()
		out := s.solve(j.spec)
		d := since(t0)
		s.inflight.Add(-1)
		s.solveLatency.Observe(d)
		// Publish to the store before closing the registry entry, so a
		// request arriving between the two always finds one or the
		// other — never a gap.
		s.store.Put(storeKeyPrefix+j.spec.key, out)
		j.finish(out)
		s.jobsMu.Lock()
		delete(s.jobs, j.spec.key)
		s.jobsMu.Unlock()
		s.events.Emit("serve-job-done", j.spec.key, map[string]any{
			"program":  j.spec.name,
			"code":     out.code,
			"solve_ms": float64(d.Nanoseconds()) / 1e6,
		})
	}
}

// realSolve runs the full pipeline through the facade, sharing the
// server's store so region subproblems reuse across jobs.
func (s *Server) realSolve(spec *jobSpec) outcome {
	workers := spec.regionWorkers
	if workers == 0 {
		workers = s.cfg.RegionWorkers
	}
	rep, err := heteropar.Parallelize(spec.source, heteropar.Options{
		Platform:      spec.platform,
		Scenario:      spec.scenario,
		Approach:      spec.approach,
		RegionWorkers: workers,
		Store:         s.store,
		Metrics:       s.reg,
		EventLog:      s.events,
	})
	if err != nil {
		return outcome{errMsg: err.Error(), code: http.StatusUnprocessableEntity}
	}
	return outcome{res: ResultOf(rep, spec.name, spec.scenarioStr, spec.approachStr), code: http.StatusOK}
}

// retryAfterSeconds estimates when a rejected client should retry: the
// time for the current backlog to clear through the pool at the
// observed mean solve latency, clamped to [1s, 60s]. A pure function
// of its inputs so the policy is unit-testable.
func retryAfterSeconds(queued, workers int, meanSolve time.Duration) int {
	if workers < 1 {
		workers = 1
	}
	if meanSolve <= 0 {
		meanSolve = time.Second
	}
	est := time.Duration(queued/workers+1) * meanSolve
	sec := int((est + time.Second - 1) / time.Second)
	if sec < 1 {
		sec = 1
	}
	if sec > 60 {
		sec = 60
	}
	return sec
}

// writeOutcome serves a finished job: the canonical result bytes on
// success, the error envelope otherwise.
func (s *Server) writeOutcome(w http.ResponseWriter, out outcome) int {
	if out.errMsg != "" {
		return s.fail(w, out.code, "%s", out.errMsg)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(out.code)
	_, _ = w.Write(out.res.Encode())
	return out.code
}

// writeJSON serves an envelope document (status, error).
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	buf, _ := json.Marshal(v)
	_, _ = w.Write(append(buf, '\n'))
	return code
}

// fail serves the error envelope {"error": "..."}.
func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) int {
	return s.writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// status reports queued/running for the async envelope.
func (j *job) status() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	select {
	case <-j.done:
		return "done"
	default:
	}
	if j.running {
		return "running"
	}
	return "queued"
}

func (j *job) setRunning() {
	j.mu.Lock()
	j.running = true
	j.mu.Unlock()
}

func (j *job) finish(out outcome) {
	j.out = out
	close(j.done)
}
