package serve

import (
	"context"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunLoadAgainstStubDaemon(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4})
	var calls atomic.Int64
	stubSolve(s, &calls, nil)

	rep, err := RunLoad(context.Background(), LoadOptions{
		BaseURL:     ts.URL,
		Benchmarks:  []string{"fir_256", "mult_10", "iir_4"},
		Concurrency: 4,
		Requests:    24,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 24 || rep.Errors != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.StatusCounts[200] != 24 {
		t.Fatalf("status counts %v; want 24 x 200", rep.StatusCounts)
	}
	// Three unique jobs; everything else coalesces or hits the cache.
	if got := calls.Load(); got != 3 {
		t.Errorf("solve ran %d times for 3 unique benchmarks", got)
	}
	if rep.Latency.Count != 24 {
		t.Errorf("latency count %d; want 24", rep.Latency.Count)
	}
	if rep.RPS <= 0 || rep.Elapsed <= 0 {
		t.Errorf("throughput not computed: rps=%v elapsed=%v", rep.RPS, rep.Elapsed)
	}

	out := rep.Render()
	for _, want := range []string{"HTTP 200:  24", "throughput:", "p50="} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q:\n%s", want, out)
		}
	}
}

func TestRunLoadOptionValidation(t *testing.T) {
	if _, err := RunLoad(context.Background(), LoadOptions{Benchmarks: []string{"fir_256"}}); err == nil {
		t.Error("empty base URL accepted")
	}
	if _, err := RunLoad(context.Background(), LoadOptions{BaseURL: "http://x"}); err == nil {
		t.Error("empty benchmark list accepted")
	}
}

func TestRunLoadCountsTransportErrors(t *testing.T) {
	// Port 1 on loopback: nothing listens, connections are refused.
	rep, err := RunLoad(context.Background(), LoadOptions{
		BaseURL:     "http://127.0.0.1:1",
		Benchmarks:  []string{"fir_256"},
		Concurrency: 2,
		Requests:    4,
		Client:      &http.Client{Timeout: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 4 {
		t.Fatalf("errors = %d; want 4", rep.Errors)
	}
}
