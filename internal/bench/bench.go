// Package bench ships the evaluation workloads of Section VI: the ten
// benchmark programs (nine UTDSP-suite kernels plus the boundary-value
// problem) re-implemented in the mini-C subset with embedded inputs, so the
// whole evaluation is self-contained and reproducible offline.
//
// The kernels preserve the dependence structure of the originals — which is
// everything the parallelizer observes: DOALL block/row/channel loops in
// the data-parallel codes, per-sample recurrences in the filters, and the
// two-phase producer/consumer shape of the spectral estimator.
package bench

import (
	"fmt"
	"sort"
)

// Benchmark is one evaluation program.
type Benchmark struct {
	Name        string
	Description string
	Source      string
	// PaperHeteroA / PaperHomoA are the approximate speedups read off
	// Figure 7(a) (configuration A, accelerator scenario) for the
	// heterogeneous and homogeneous tools; used in EXPERIMENTS.md to
	// compare shapes, never as pass/fail truth.
	PaperHeteroA float64
	PaperHomoA   float64
}

var registry = map[string]*Benchmark{}

func register(b *Benchmark) {
	if _, dup := registry[b.Name]; dup {
		panic(fmt.Sprintf("bench: duplicate benchmark %q", b.Name))
	}
	registry[b.Name] = b
}

// All returns every benchmark sorted by name (paper table order).
func All() []*Benchmark {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Benchmark, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}

// ByName returns the named benchmark or nil.
func ByName(name string) *Benchmark { return registry[name] }

func init() {
	register(&Benchmark{
		Name:         "adpcm_enc",
		Description:  "ADPCM speech encoder over independent 120-sample blocks",
		PaperHeteroA: 8.0,
		PaperHomoA:   3.4,
		Source: `
/* ADPCM encoder: blockwise IMA-style quantization. Blocks reset the
 * predictor (streaming with block headers), so blocks are independent. */
#define NBLOCKS 12
#define BLOCK 120
#define TOTAL 1440

int input[TOTAL];
int code_out[TOTAL];
int checksum;

int idx_adjust[8] = {-1, -1, -1, -1, 2, 4, 6, 8};

int step_for(int index) {
    int step = 7;
    for (int i = 0; i < index; i++) {
        step = step + (step >> 1);
        if (step > 32767) { step = 32767; }
    }
    return step;
}

void main(void) {
    for (int i = 0; i < TOTAL; i++) {
        input[i] = (i * 37 + (i * i) % 97) % 4096 - 2048;
    }
    for (int b = 0; b < NBLOCKS; b++) {
        int pred = 0;
        int index = 0;
        for (int j = 0; j < BLOCK; j++) {
            int sample = input[b * BLOCK + j];
            int step = 7 + index * 3;
            int diff = sample - pred;
            int sign = 0;
            if (diff < 0) { sign = 8; diff = -diff; }
            int code = 0;
            if (diff >= step) { code = 4; diff = diff - step; }
            if (diff >= step / 2) { code = code + 2; diff = diff - step / 2; }
            if (diff >= step / 4) { code = code + 1; }
            int delta = step / 8 + (code & 1) * (step / 4) + ((code >> 1) & 1) * (step / 2) + ((code >> 2) & 1) * step;
            if (sign > 0) { pred = pred - delta; } else { pred = pred + delta; }
            if (pred > 2047) { pred = 2047; }
            if (pred < -2048) { pred = -2048; }
            index = index + idx_adjust[code & 7];
            if (index < 0) { index = 0; }
            if (index > 88) { index = 88; }
            code_out[b * BLOCK + j] = code | sign;
        }
    }
    checksum = 0;
    for (int i = 0; i < TOTAL; i++) {
        checksum = checksum + code_out[i] * (i % 13 + 1);
    }
}
`,
	})

	register(&Benchmark{
		Name:         "bound_value",
		Description:  "1-D boundary value problem via Jacobi relaxation sweeps",
		PaperHeteroA: 11.5,
		PaperHomoA:   3.6,
		Source: `
/* Boundary value problem: u'' = f on [0,1], u(0)=a, u(1)=b, solved by
 * Jacobi relaxation. Each sweep is a DOALL over grid points. */
#define N 1024
#define SWEEPS 10

float u[N];
float unew[N];
float rhs[N];
float residual;

void main(void) {
    for (int i = 0; i < N; i++) {
        float x = i * 0.0009765625;
        rhs[i] = x * (1.0 - x) * 4.0;
        u[i] = 0.0;
    }
    u[0] = 1.0;
    u[N - 1] = 2.0;
    unew[0] = 1.0;
    unew[N - 1] = 2.0;
    for (int s = 0; s < SWEEPS; s++) {
        for (int i = 1; i < N - 1; i++) {
            unew[i] = 0.5 * (u[i - 1] + u[i + 1]) - 0.0000004768 * rhs[i];
        }
        for (int i = 1; i < N - 1; i++) {
            u[i] = unew[i];
        }
    }
    residual = 0.0;
    for (int i = 1; i < N - 1; i++) {
        float r = u[i - 1] - 2.0 * u[i] + u[i + 1] - 0.00000095 * rhs[i];
        residual += r * r;
    }
}
`,
	})

	register(&Benchmark{
		Name:         "compress",
		Description:  "image compression: separable 8x8 block DCT + quantization",
		PaperHeteroA: 12.0,
		PaperHomoA:   3.7,
		Source: `
/* DCT-based image compression on a 96x96 image: 12x12 independent 8x8
 * blocks; separable DCT (rows then columns) and uniform quantization.
 * The block-row loop is the hot DOALL. */
#define W 96
#define BROWS 12

float image[96][96];
int packed[96][96];
float cosbasis[8][8];
float checksum;

void main(void) {
    for (int u = 0; u < 8; u++) {
        for (int x = 0; x < 8; x++) {
            cosbasis[u][x] = cos((2.0 * x + 1.0) * u * 0.19634954);
        }
    }
    for (int i = 0; i < W; i++) {
        for (int j = 0; j < W; j++) {
            image[i][j] = (i * 7 + j * 13) % 256 - 128.0 + sin(i * 0.3) * 20.0;
        }
    }
    for (int br = 0; br < BROWS; br++) {
        float tmp[8][8];
        float coef[8][8];
        for (int bc = 0; bc < 12; bc++) {
            for (int u = 0; u < 8; u++) {
                for (int x = 0; x < 8; x++) {
                    float acc = 0.0;
                    for (int y = 0; y < 8; y++) {
                        acc += cosbasis[x][y] * image[br * 8 + u][bc * 8 + y];
                    }
                    tmp[u][x] = acc;
                }
            }
            for (int u = 0; u < 8; u++) {
                for (int v = 0; v < 8; v++) {
                    float acc2 = 0.0;
                    for (int y = 0; y < 8; y++) {
                        acc2 += cosbasis[u][y] * tmp[y][v];
                    }
                    coef[u][v] = acc2;
                }
            }
            for (int u = 0; u < 8; u++) {
                for (int v = 0; v < 8; v++) {
                    int q = 4 + u + v;
                    packed[br * 8 + u][bc * 8 + v] = (int)(coef[u][v] / q);
                }
            }
        }
    }
    checksum = 0.0;
    for (int i = 0; i < W; i++) {
        float rowsum = 0.0;
        for (int j = 0; j < W; j++) {
            rowsum += packed[i][j] * ((i + j) % 7 + 1);
        }
        checksum += rowsum;
    }
}
`,
	})

	register(&Benchmark{
		Name:         "edge_detect",
		Description:  "Sobel edge detection over a 96x96 image",
		PaperHeteroA: 9.0,
		PaperHomoA:   3.5,
		Source: `
/* Sobel edge detection: 3x3 convolution, thresholding. Row loop DOALL. */
#define W 96

float img[96][96];
int edges[96][96];
int strong;

void main(void) {
    for (int i = 0; i < W; i++) {
        for (int j = 0; j < W; j++) {
            img[i][j] = ((i * 31 + j * 17) % 255) * 1.0 + cos(j * 0.2) * 12.0;
        }
    }
    for (int i = 1; i < W - 1; i++) {
        for (int j = 1; j < W - 1; j++) {
            float gx = img[i - 1][j + 1] + 2.0 * img[i][j + 1] + img[i + 1][j + 1]
                     - img[i - 1][j - 1] - 2.0 * img[i][j - 1] - img[i + 1][j - 1];
            float gy = img[i + 1][j - 1] + 2.0 * img[i + 1][j] + img[i + 1][j + 1]
                     - img[i - 1][j - 1] - 2.0 * img[i - 1][j] - img[i - 1][j + 1];
            float mag = sqrt(gx * gx + gy * gy);
            if (mag > 140.0) {
                edges[i][j] = 1;
            } else {
                edges[i][j] = 0;
            }
        }
    }
    strong = 0;
    for (int i = 0; i < W; i++) {
        int rowc = 0;
        for (int j = 0; j < W; j++) {
            rowc = rowc + edges[i][j];
        }
        strong = strong + rowc;
    }
}
`,
	})

	register(&Benchmark{
		Name:         "filterbank",
		Description:  "bank of 8 FIR filters (32 taps) over 384 samples",
		PaperHeteroA: 8.5,
		PaperHomoA:   3.3,
		Source: `
/* Filter bank: 8 FIR band filters applied to one input stream. The output
 * sample loop is DOALL; every sample evaluates all 8 filters. */
#define NS 384
#define NF 8
#define TAPS 32

float x[416];
float y[384][8];
float h[8][32];
float energy;

void main(void) {
    for (int f = 0; f < NF; f++) {
        for (int k = 0; k < TAPS; k++) {
            h[f][k] = sin((f + 1) * (k + 1) * 0.049) / (k + 1.0);
        }
    }
    for (int i = 0; i < 416; i++) {
        x[i] = sin(i * 0.11) + 0.5 * sin(i * 0.37) + 0.25 * sin(i * 0.71);
    }
    for (int n = 0; n < NS; n++) {
        for (int f = 0; f < NF; f++) {
            float acc = 0.0;
            for (int k = 0; k < TAPS; k++) {
                acc += h[f][k] * x[n + k];
            }
            y[n][f] = acc;
        }
    }
    energy = 0.0;
    for (int n = 0; n < NS; n++) {
        float rowsum = 0.0;
        for (int f = 0; f < NF; f++) {
            rowsum += y[n][f] * y[n][f];
        }
        energy += rowsum;
    }
}
`,
	})

	register(&Benchmark{
		Name:         "fir_256",
		Description:  "256-tap FIR filter over 384 output samples",
		PaperHeteroA: 10.0,
		PaperHomoA:   3.6,
		Source: `
/* 256-tap low-pass FIR. Output sample loop DOALL. */
#define TAPS 256
#define NS 384

float h[TAPS];
float x[640];
float y[NS];
float energy;

void main(void) {
    for (int k = 0; k < TAPS; k++) {
        h[k] = sin((k + 1) * 0.0123) / (k + 1.0) * 0.8;
    }
    for (int i = 0; i < 640; i++) {
        x[i] = sin(i * 0.05) + 0.3 * sin(i * 0.31) + 0.1 * sin(i * 0.83);
    }
    for (int n = 0; n < NS; n++) {
        float acc = 0.0;
        for (int k = 0; k < TAPS; k++) {
            acc += h[k] * x[n + k];
        }
        y[n] = acc;
    }
    energy = 0.0;
    for (int n = 0; n < NS; n++) {
        energy += y[n] * y[n];
    }
}
`,
	})

	register(&Benchmark{
		Name:         "iir_4",
		Description:  "4-section cascaded IIR biquad over 12 independent channels",
		PaperHeteroA: 9.0,
		PaperHomoA:   3.4,
		Source: `
/* Cascaded IIR (4 biquad sections). Each channel carries its own filter
 * state, so the channel loop is DOALL while samples stay sequential. */
#define NCH 12
#define NS 384

float xin[12][384];
float yout[12][384];
float b0[4] = {0.2183, 0.2183, 0.2183, 0.2183};
float b1[4] = {0.4366, 0.4366, 0.4366, 0.4366};
float a1[4] = {-0.0943, -0.1225, -0.2349, -0.4519};
float a2[4] = {0.0675, 0.1129, 0.2248, 0.4711};
float energy;

void main(void) {
    for (int c = 0; c < NCH; c++) {
        for (int n = 0; n < NS; n++) {
            xin[c][n] = sin(n * 0.07 * (c + 1)) + 0.2 * sin(n * 0.41);
        }
    }
    for (int c = 0; c < NCH; c++) {
        float z1[4] = {0.0, 0.0, 0.0, 0.0};
        float z2[4] = {0.0, 0.0, 0.0, 0.0};
        for (int n = 0; n < NS; n++) {
            float s = xin[c][n];
            for (int k = 0; k < 4; k++) {
                float w = s - a1[k] * z1[k] - a2[k] * z2[k];
                s = b0[k] * w + b1[k] * z1[k] + b0[k] * z2[k];
                z2[k] = z1[k];
                z1[k] = w;
            }
            yout[c][n] = s;
        }
    }
    energy = 0.0;
    for (int c = 0; c < NCH; c++) {
        float chsum = 0.0;
        for (int n = 0; n < NS; n++) {
            chsum += yout[c][n] * yout[c][n];
        }
        energy += chsum;
    }
}
`,
	})

	register(&Benchmark{
		Name:         "latnrm_32",
		Description:  "32-stage normalized lattice filter, 6 channels, heavy state",
		PaperHeteroA: 5.0,
		PaperHomoA:   2.8,
		Source: `
/* Normalized lattice filter (32 stages). The stage recurrence serializes
 * each sample; only the 4-way channel loop is parallel, and the per-channel
 * state is large, so communication weighs in (the paper reports below-
 * average speedups for this one). */
#define NCH 4
#define NS 384
#define ORDER 32

float xin[4][384];
float yout[4][384];
float kcoef[ORDER];
float state[4][32];
float energy;

void main(void) {
    for (int k = 0; k < ORDER; k++) {
        kcoef[k] = 0.9 / (k + 2.0);
    }
    for (int c = 0; c < NCH; c++) {
        for (int n = 0; n < NS; n++) {
            xin[c][n] = sin(n * 0.09 * (c + 1));
        }
        for (int k = 0; k < ORDER; k++) {
            state[c][k] = 0.0;
        }
    }
    for (int c = 0; c < NCH; c++) {
        for (int n = 0; n < NS; n++) {
            float f = xin[c][n];
            for (int k = ORDER - 1; k >= 0; k--) {
                float g = state[c][k];
                float fnew = f - kcoef[k] * g;
                state[c][k] = g + kcoef[k] * fnew;
                f = fnew;
            }
            /* shift the delay line */
            for (int k = ORDER - 1; k > 0; k--) {
                state[c][k] = state[c][k - 1];
            }
            state[c][0] = f;
            yout[c][n] = f;
        }
    }
    energy = 0.0;
    for (int c = 0; c < NCH; c++) {
        float chsum = 0.0;
        for (int n = 0; n < NS; n++) {
            chsum += yout[c][n] * yout[c][n];
        }
        energy += chsum;
    }
}
`,
	})

	register(&Benchmark{
		Name:         "mult_10",
		Description:  "batch of 48 independent 10x10 matrix multiplications",
		PaperHeteroA: 11.5,
		PaperHomoA:   3.7,
		Source: `
/* Batched 10x10 matrix multiply (48 pairs), the UTDSP mult_10 kernel run
 * over a work batch. The batch loop is the hot DOALL. */
#define BATCH 48
#define DIM 10

float amat[480][10];
float bmat[480][10];
float cmat[480][10];
float checksum;

void main(void) {
    for (int i = 0; i < 480; i++) {
        for (int j = 0; j < DIM; j++) {
            amat[i][j] = ((i + j * 3) % 17) * 0.25 - 2.0;
            bmat[i][j] = ((i * 2 + j) % 13) * 0.5 - 3.0;
        }
    }
    for (int b = 0; b < BATCH; b++) {
        for (int r = 0; r < DIM; r++) {
            for (int col = 0; col < DIM; col++) {
                float acc = 0.0;
                for (int k = 0; k < DIM; k++) {
                    acc += amat[b * 10 + r][k] * bmat[b * 10 + k][col];
                }
                cmat[b * 10 + r][col] = acc;
            }
        }
    }
    checksum = 0.0;
    for (int i = 0; i < 480; i++) {
        float rowsum = 0.0;
        for (int j = 0; j < DIM; j++) {
            rowsum += cmat[i][j] * ((i % 5) + 1);
        }
        checksum += rowsum;
    }
}
`,
	})

	register(&Benchmark{
		Name:         "spectral",
		Description:  "spectral estimation: autocorrelation + periodogram, two phases",
		PaperHeteroA: 6.0,
		PaperHomoA:   3.0,
		Source: `
/* Spectral estimation via the autocorrelation method: phase 1 computes 64
 * autocorrelation lags of a 512-sample frame, phase 2 the power spectrum
 * at 64 frequencies. The phases are dependent, so the full spectrum flows
 * across the phase boundary (higher communication load, lower speedup -
 * as the paper observes). */
#define NS 512
#define LAGS 64
#define NFREQ 64

float frame[NS];
float autoc[LAGS];
float spectrum[NFREQ];
float peak;

void main(void) {
    for (int i = 0; i < NS; i++) {
        frame[i] = sin(i * 0.123) + 0.6 * sin(i * 0.271) + 0.3 * sin(i * 0.533);
    }
    for (int lag = 0; lag < LAGS; lag++) {
        float acc = 0.0;
        for (int i = 0; i < NS - lag; i++) {
            acc += frame[i] * frame[i + lag];
        }
        autoc[lag] = acc / NS;
    }
    for (int f = 0; f < NFREQ; f++) {
        float acc = autoc[0];
        for (int lag = 1; lag < LAGS; lag++) {
            acc += 2.0 * autoc[lag] * cos(0.0490873852 * f * lag);
        }
        spectrum[f] = acc;
    }
    peak = 0.0;
    for (int f = 0; f < NFREQ; f++) {
        peak = max(peak, spectrum[f]);
    }
}
`,
	})
}
