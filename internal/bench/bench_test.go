package bench

import (
	"math"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/htg"
	"repro/internal/interp"
	"repro/internal/minic"
)

// paperOrder is the exact benchmark list of Table I.
var paperOrder = []string{
	"adpcm_enc", "bound_value", "compress", "edge_detect", "filterbank",
	"fir_256", "iir_4", "latnrm_32", "mult_10", "spectral",
}

func TestRegistryComplete(t *testing.T) {
	if len(All()) != len(paperOrder) {
		t.Fatalf("registry has %d benchmarks, want %d", len(All()), len(paperOrder))
	}
	for _, name := range paperOrder {
		b := ByName(name)
		if b == nil {
			t.Errorf("missing benchmark %q", name)
			continue
		}
		if b.Description == "" || b.Source == "" {
			t.Errorf("%s: empty description or source", name)
		}
		if b.PaperHeteroA <= b.PaperHomoA {
			t.Errorf("%s: paper hetero (%g) must exceed homo (%g) in Fig 7(a)",
				name, b.PaperHeteroA, b.PaperHomoA)
		}
	}
	if ByName("nope") != nil {
		t.Errorf("unknown name should return nil")
	}
}

func TestAllBenchmarksCompileAndRun(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog, err := minic.Compile(b.Source)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			in := interp.New(prog)
			prof, err := in.Run()
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			sum := in.GlobalChecksum()
			if sum == 0 || math.IsNaN(sum) || math.IsInf(sum, 0) {
				t.Errorf("degenerate checksum %g", sum)
			}
			if prof.OpCount < 10000 {
				t.Errorf("suspiciously little work: %d ops", prof.OpCount)
			}
			if prof.OpCount > 30_000_000 {
				t.Errorf("workload too heavy for the harness: %d ops", prof.OpCount)
			}
			// Determinism.
			if _, err := in.Run(); err != nil {
				t.Fatalf("second run: %v", err)
			}
			if sum2 := in.GlobalChecksum(); sum2 != sum {
				t.Errorf("non-deterministic checksum: %g vs %g", sum, sum2)
			}
		})
	}
}

// TestHotLoopsAreDOALL verifies the dependence structure each kernel was
// designed with: the hot loop of the data-parallel benchmarks must be
// recognized as DOALL, and the recurrences must not be.
func TestHotLoopsAreDOALL(t *testing.T) {
	wantDOALL := map[string]bool{
		"adpcm_enc":   true,
		"bound_value": true, // the sweep loops inside the sequential outer
		"compress":    true,
		"edge_detect": true,
		"filterbank":  true,
		"fir_256":     true,
		"iir_4":       true,
		"latnrm_32":   true, // channel loop
		"mult_10":     true,
		"spectral":    true, // lag loop
	}
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog, err := minic.Compile(b.Source)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			sums := dataflow.Summarize(prog)
			found := false
			var walk func(s minic.Stmt)
			walk = func(s minic.Stmt) {
				if fs, ok := s.(*minic.ForStmt); ok {
					if info := dataflow.AnalyzeLoop(fs, sums); info.Parallel {
						found = true
					}
					for _, inner := range fs.Body.Stmts {
						walk(inner)
					}
					return
				}
				if blk, ok := s.(*minic.BlockStmt); ok {
					for _, inner := range blk.Stmts {
						walk(inner)
					}
				}
				if is, ok := s.(*minic.IfStmt); ok {
					for _, inner := range is.Then.Stmts {
						walk(inner)
					}
				}
			}
			for _, s := range prog.Func("main").Body.Stmts {
				walk(s)
			}
			if found != wantDOALL[b.Name] {
				t.Errorf("DOALL loop found=%v, want %v", found, wantDOALL[b.Name])
			}
		})
	}
}

func TestGraphsBuild(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog, err := minic.Compile(b.Source)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			in := interp.New(prog)
			prof, err := in.Run()
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			g, err := htg.Build(prog, prof, htg.Config{})
			if err != nil {
				t.Fatalf("htg: %v", err)
			}
			if g.Root.SubtreeCycles <= 0 {
				t.Errorf("no cost annotated")
			}
			if len(g.Root.Children) < 2 {
				t.Errorf("root should have several phases, got %d", len(g.Root.Children))
			}
		})
	}
}
