package ilp

import (
	"math"
	"testing"
	"time"
)

// TestChunkLPPerformance replicates the parallelizer's chunk-region model
// shape and requires the root relaxation to solve quickly.
func TestChunkLPPerformance(t *testing.T) {
	m := NewModel()
	K, T, C := 12, 4, 3
	speeds := []float64{1, 2.5, 5}
	counts := []float64{1, 1, 2}
	W := 430100.0
	x := make([][]VarID, K)
	pv := make([][]VarID, K)
	for n := 0; n < K; n++ {
		x[n] = make([]VarID, T)
		for tt := 0; tt < T; tt++ {
			x[n][tt] = m.AddBinary("x", 0)
		}
		pv[n] = make([]VarID, C)
		for c := 0; c < C; c++ {
			pv[n][c] = m.AddBinary("p", 0)
		}
	}
	mp := make([][]VarID, T)
	used := make([]VarID, T)
	for tt := 0; tt < T; tt++ {
		mp[tt] = make([]VarID, C)
		for c := 0; c < C; c++ {
			mp[tt][c] = m.AddBinary("map", 0)
		}
		used[tt] = m.AddBinary("used", 0)
	}
	contrib := make([][]VarID, K)
	for n := 0; n < K; n++ {
		contrib[n] = make([]VarID, T)
		for tt := 0; tt < T; tt++ {
			contrib[n][tt] = m.AddVar("ctr", 0, math.Inf(1), 0)
		}
	}
	cost := make([]VarID, T)
	for tt := 0; tt < T; tt++ {
		cost[tt] = m.AddVar("cost", 0, math.Inf(1), 0)
	}
	exectime := m.AddVar("exectime", 0, W*0.999, 1)
	for n := 0; n < K; n++ {
		var terms []Term
		for tt := 0; tt < T; tt++ {
			terms = append(terms, Term{x[n][tt], 1})
		}
		m.AddCons("eq2", terms, EQ, 1)
		terms = nil
		for c := 0; c < C; c++ {
			terms = append(terms, Term{pv[n][c], 1})
		}
		m.AddCons("eq4", terms, EQ, 1)
	}
	for tt := 0; tt < T; tt++ {
		var terms []Term
		for c := 0; c < C; c++ {
			terms = append(terms, Term{mp[tt][c], 1})
		}
		m.AddCons("eq13", terms, EQ, 1)
	}
	m.AddCons("main", []Term{{mp[0][0], 1}}, EQ, 1)
	for n := 0; n+1 < K; n++ {
		var terms []Term
		for tt := 1; tt < T; tt++ {
			terms = append(terms, Term{x[n+1][tt], float64(tt)}, Term{x[n][tt], -float64(tt)})
		}
		m.AddCons("eq10", terms, GE, 0)
	}
	for tt := 0; tt < T; tt++ {
		for n := 0; n < K; n++ {
			m.AddCons("used", []Term{{used[tt], 1}, {x[n][tt], -1}}, GE, 0)
		}
	}
	for n := 0; n < K; n++ {
		worst := W / 12
		for tt := 0; tt < T; tt++ {
			for c := 0; c < C; c++ {
				m.AddCons("eq18", []Term{{pv[n][c], 1}, {x[n][tt], -1}, {mp[tt][c], -1}}, GE, -1)
			}
			terms := []Term{{contrib[n][tt], 1}, {x[n][tt], -worst}}
			for c := 0; c < C; c++ {
				terms = append(terms, Term{pv[n][c], -W / 12 / speeds[c]})
			}
			m.AddCons("eq8", terms, GE, -worst)
		}
	}
	for tt := 0; tt < T; tt++ {
		terms := []Term{{cost[tt], 1}}
		if tt != 0 {
			terms = append(terms, Term{used[tt], -2500})
		}
		for n := 0; n < K; n++ {
			terms = append(terms, Term{contrib[n][tt], -1})
		}
		m.AddCons("cost", terms, GE, 0)
		m.AddCons("eq11", []Term{{exectime, 1}, {cost[tt], -1}}, GE, 0)
	}
	for c := 0; c < C; c++ {
		var terms []Term
		for tt := 0; tt < T; tt++ {
			terms = append(terms, Term{mp[tt][c], 1})
		}
		m.AddCons("eq16", terms, LE, counts[c]+float64(T)) // loose
	}
	// Strengthening cuts like the parallelizer's.
	for c := 0; c < C; c++ {
		terms := []Term{{exectime, counts[c]}}
		for n := 0; n < K; n++ {
			terms = append(terms, Term{pv[n][c], -W / 12 / speeds[c]})
		}
		m.AddCons("cut_classwork", terms, GE, 0)
	}
	{
		var terms []Term
		for tt := 0; tt < T; tt++ {
			terms = append(terms, Term{cost[tt], 1})
		}
		for n := 0; n < K; n++ {
			for c := 0; c < C; c++ {
				terms = append(terms, Term{pv[n][c], -W / 12 / speeds[c]})
			}
		}
		m.AddCons("cut_conservation", terms, GE, 0)
	}
	start := time.Now()
	lp := solveLP(m, nil, nil, time.Time{})
	t.Logf("root LP: status=%v obj=%.0f iters=%d in %v (vars=%d cons=%d)",
		lp.Status, lp.Obj, lp.Iters, time.Since(start), m.NumVars(), m.NumCons())
	if time.Since(start) > 500*time.Millisecond {
		t.Errorf("root LP too slow")
	}
	start = time.Now()
	res := Solve(m, Options{MaxNodes: 3000, Deadline: time.Now().Add(4 * time.Second), RelGap: 0.05})
	t.Logf("MILP: status=%v obj=%.0f nodes=%d lpIters=%d in %v",
		res.Status, res.Obj, res.Nodes, res.LPIters, time.Since(start))
	if res.Status != StatusOptimal && res.Status != StatusFeasible {
		t.Errorf("expected a solution, got %v", res.Status)
	}
}
