package ilp

import (
	"testing"
	"time"
)

// TestChunkLPSmoke keeps a single generous wall-clock bound on the
// production chunk-region model: the root relaxation and a truncated
// MILP solve must finish comfortably within CI noise margins. Detailed
// timing lives in the benchmarks below (and in BENCH_ilp.json via
// `make bench-json`), not in assertions.
func TestChunkLPSmoke(t *testing.T) {
	m := BenchChunkModel()
	start := time.Now()
	lp := SolveRelaxation(m)
	if lp.Status != LPOptimal {
		t.Fatalf("root LP status %v", lp.Status)
	}
	t.Logf("root LP: obj=%.0f iters=%d in %v (vars=%d cons=%d)",
		lp.Obj, lp.Iters, time.Since(start), m.NumVars(), m.NumCons())
	start = time.Now()
	res := Solve(m, Options{MaxNodes: 3000, Deadline: time.Now().Add(5 * time.Second), RelGap: 0.05})
	t.Logf("MILP: status=%v obj=%.0f nodes=%d lpIters=%d warm=%d/%d cuts=%d in %v",
		res.Status, res.Obj, res.Nodes, res.LPIters, res.WarmHits, res.WarmStarts,
		res.Cuts, time.Since(start))
	if res.Status != StatusOptimal && res.Status != StatusFeasible {
		t.Errorf("expected a solution, got %v", res.Status)
	}
	if elapsed := time.Since(start); elapsed > 8*time.Second {
		t.Errorf("MILP smoke took %v, want < 8s", elapsed)
	}
}

// BenchmarkRootRelaxation times the cold root LP solve of the chunk
// model — the compile + revised-simplex path every B&B solve starts with.
func BenchmarkRootRelaxation(b *testing.B) {
	m := BenchChunkModel()
	b.ResetTimer()
	iters := 0
	for i := 0; i < b.N; i++ {
		lp := SolveRelaxation(m)
		if lp.Status != LPOptimal {
			b.Fatalf("status %v", lp.Status)
		}
		iters = lp.Iters
	}
	b.ReportMetric(float64(iters), "lp-iters/op")
}

// benchSolve runs the full MILP solve under opt and reports solver
// effort counters next to ns/op.
func benchSolve(b *testing.B, m *Model, opt Options) {
	b.Helper()
	var res Result
	for i := 0; i < b.N; i++ {
		res = Solve(m, opt)
		if res.Status != StatusOptimal && res.Status != StatusFeasible {
			b.Fatalf("status %v", res.Status)
		}
	}
	b.ReportMetric(float64(res.Nodes), "nodes/op")
	b.ReportMetric(float64(res.LPIters), "lp-iters/op")
	if res.WarmStarts > 0 {
		b.ReportMetric(100*float64(res.WarmHits)/float64(res.WarmStarts), "warm-hit-%")
	}
}

// BenchmarkChunkMILP solves the production chunk model to a 5% gap, the
// parallelizer's configuration.
func BenchmarkChunkMILP(b *testing.B) {
	m := BenchChunkModel()
	b.ResetTimer()
	benchSolve(b, m, Options{MaxNodes: 3000, RelGap: 0.05})
}

// BenchmarkChunkMILPCold disables warm starts and cuts: the
// every-node-from-scratch baseline the tentpole rewrite replaces.
func BenchmarkChunkMILPCold(b *testing.B) {
	m := BenchChunkModel()
	b.ResetTimer()
	benchSolve(b, m, Options{MaxNodes: 3000, RelGap: 0.05, DisableWarmStart: true, DisableCuts: true})
}

// BenchmarkKnapsackMILP stresses node throughput on a weak-bound
// knapsack: nearly every node warm-starts from its parent.
func BenchmarkKnapsackMILP(b *testing.B) {
	m := BenchKnapsackModel(60, 7)
	b.ResetTimer()
	benchSolve(b, m, Options{MaxNodes: 5000})
}

// BenchmarkAssignmentMILP exercises the cover/clique cut separator on
// set-partitioning rows with capacity knapsacks.
func BenchmarkAssignmentMILP(b *testing.B) {
	m := BenchAssignmentModel(14, 4, 3)
	b.ResetTimer()
	benchSolve(b, m, Options{MaxNodes: 5000})
}

// BenchmarkChunkMILPParallel2 runs the deterministic two-wide search.
func BenchmarkChunkMILPParallel2(b *testing.B) {
	m := BenchChunkModel()
	b.ResetTimer()
	benchSolve(b, m, Options{MaxNodes: 3000, RelGap: 0.05, Workers: 2})
}
