package ilp

import (
	"math"
	"slices"
	"time"
)

// Nonbasic/basic variable status in the revised simplex.
const (
	nbLower int8 = iota // nonbasic at lower bound
	nbUpper             // nonbasic at upper bound
	inBase              // basic
)

// lpFailed is an internal status: the warm start could not be used
// (singular basis, dual infeasibility beyond tolerance) and the caller
// must fall back to a cold solve. It never escapes the package.
const lpFailed LPStatus = -1

// lpCutoff is an internal status: the dual objective — a monotonically
// rising lower bound on the relaxation optimum — crossed the caller's
// cutoff (the incumbent), so the node is pruned without solving the LP
// to optimality. It never escapes the package.
const lpCutoff LPStatus = -2

// lpSolver is one revised-simplex workspace bound to a compiled problem.
// It is reused across branch-and-bound nodes (only bounds change) and is
// NOT safe for concurrent use — the parallel search gives each worker its
// own instance.
type lpSolver struct {
	p *prob

	lo, hi []float64 // working bounds (structural part varies per node)
	cost   []float64 // current objective (len n; slacks 0)

	basis []int // row -> column
	stat  []int8
	xB    []float64 // value of the basic variable per row
	d     []float64 // reduced costs per column

	f luFactor

	// scratch
	w, rho, alpha []float64
	// touched lists the alpha entries written by the last priceRow (the
	// only valid ones); inTouched is its membership mask. touchedBuf is
	// the sparse path's backing; allCols (0..n-1, read-only) stands in
	// for touched when the dense path priced every column.
	touched    []int32
	touchedBuf []int32
	allCols    []int32
	inTouched  []bool

	iters    int
	bland    bool
	fValid   bool // f factorizes the current s.basis
	deadline time.Time
	// iterCap, when positive, bounds one simplex run below maxIters —
	// branch-and-bound node solves are disposable (an IterLimit node is
	// pruned), so they get a modest deterministic budget instead of
	// grinding through degenerate or infeasible relaxations.
	iterCap int
	// cutoff, when finite, aborts the dual simplex with lpCutoff as soon
	// as the objective (a lower bound while dual feasible) exceeds it.
	cutoff float64
}

func newLPSolver(p *prob) *lpSolver {
	s := &lpSolver{p: p}
	s.lo = make([]float64, p.n)
	s.hi = make([]float64, p.n)
	s.cost = make([]float64, p.n)
	s.basis = make([]int, p.m)
	s.stat = make([]int8, p.n)
	s.xB = make([]float64, p.m)
	s.d = make([]float64, p.n)
	s.w = make([]float64, p.m)
	s.rho = make([]float64, p.m)
	s.alpha = make([]float64, p.n)
	s.touchedBuf = make([]int32, 0, p.n)
	s.touched = s.touchedBuf
	s.allCols = make([]int32, p.n)
	for j := range s.allCols {
		s.allCols[j] = int32(j)
	}
	s.inTouched = make([]bool, p.n)
	s.cutoff = math.Inf(1)
	return s
}

// priceRow computes the pivot row alpha = eᵣB⁻ᵀ·[A|I] of the current
// basis. The unit right-hand side often makes rho sparse; then alpha is
// scattered from rho's nonzero rows through the CSR mirror (plus the
// unit slack column of each such row) instead of dotting every column.
// When rho comes back dense — tightly coupled bases like the assignment
// rows — the scatter (and the sort it needs) costs more than it saves,
// so the full column sweep is used instead. Either way only the entries
// listed in s.touched are valid afterwards, ascending so callers scan
// columns in the same order as a full 0..n sweep; untouched columns are
// exactly zero, and both paths accumulate each alpha[j] in ascending
// row order, so the choice never changes the computed values.
func (s *lpSolver) priceRow(r int) {
	p := s.p
	for _, j := range s.touched {
		s.alpha[j] = 0
		s.inTouched[j] = false
	}
	for i := range s.rho {
		s.rho[i] = 0
	}
	s.rho[r] = 1
	s.f.btran(s.rho)
	nnz := 0
	for i := 0; i < p.m; i++ {
		if s.rho[i] != 0 {
			nnz++
		}
	}
	if nnz*4 > p.m {
		// Dense path: dot every column (values identical to the scatter).
		for j := 0; j < p.n; j++ {
			s.alpha[j] = p.colDot(s.rho, j)
		}
		s.touched = s.allCols
		return
	}
	s.touched = s.touchedBuf[:0]
	for i := 0; i < p.m; i++ {
		t := s.rho[i]
		if t == 0 {
			continue
		}
		for at := p.rowPtr[i]; at < p.rowPtr[i+1]; at++ {
			j := p.rowCol[at]
			if !s.inTouched[j] {
				s.inTouched[j] = true
				s.touched = append(s.touched, j)
			}
			s.alpha[j] += t * p.rowVal[at]
		}
		sj := int32(p.nStruct + i)
		s.inTouched[sj] = true
		s.touched = append(s.touched, sj)
		s.alpha[sj] = t
	}
	slices.Sort(s.touched)
	s.touchedBuf = s.touched
}

// objVal computes the true objective (original costs) of the current
// basic solution.
func (s *lpSolver) objVal() float64 {
	p := s.p
	z := 0.0
	for j := 0; j < p.nStruct; j++ {
		if c := p.obj[j]; c != 0 && s.stat[j] != inBase {
			z += c * s.nbVal(j)
		}
	}
	for i, j := range s.basis {
		if j < p.nStruct {
			if c := p.obj[j]; c != 0 {
				z += c * s.xB[i]
			}
		}
	}
	return z
}

// setBounds installs per-node structural bounds (nil = problem defaults);
// slack bounds always come from the problem.
func (s *lpSolver) setBounds(lo, hi []float64) {
	if lo == nil {
		lo = s.p.lo[:s.p.nStruct]
	}
	if hi == nil {
		hi = s.p.hi[:s.p.nStruct]
	}
	copy(s.lo[:s.p.nStruct], lo)
	copy(s.hi[:s.p.nStruct], hi)
	copy(s.lo[s.p.nStruct:], s.p.lo[s.p.nStruct:])
	copy(s.hi[s.p.nStruct:], s.p.hi[s.p.nStruct:])
}

// nbVal returns the value of nonbasic column j.
func (s *lpSolver) nbVal(j int) float64 {
	if s.stat[j] == nbUpper {
		return s.hi[j]
	}
	return s.lo[j]
}

// computeXB recomputes the basic values from the bounds and basis:
// xB = B⁻¹(b − A_N x_N).
func (s *lpSolver) computeXB() {
	p := s.p
	copy(s.xB, p.b)
	for j := 0; j < p.n; j++ {
		if s.stat[j] == inBase {
			continue
		}
		v := s.nbVal(j)
		if v == 0 {
			continue
		}
		if r, ok := p.slackCol(j); ok {
			s.xB[r] -= v
			continue
		}
		for at := p.colPtr[j]; at < p.colPtr[j+1]; at++ {
			s.xB[p.rowIdx[at]] -= p.colVal[at] * v
		}
	}
	s.f.ftran(s.xB)
}

// computeDuals refreshes every reduced cost from the current basis:
// y = B⁻ᵀ c_B, d_j = c_j − y·A_j.
func (s *lpSolver) computeDuals() {
	p := s.p
	allZero := true
	for i := 0; i < p.m; i++ {
		c := s.cost[s.basis[i]]
		s.rho[i] = c
		if c != 0 {
			allZero = false
		}
	}
	if !allZero {
		s.f.btran(s.rho)
	}
	for j := 0; j < p.n; j++ {
		if s.stat[j] == inBase {
			s.d[j] = 0
			continue
		}
		if allZero {
			s.d[j] = s.cost[j]
			continue
		}
		s.d[j] = s.cost[j] - p.colDot(s.rho, j)
	}
}

// refresh refactorizes the basis and recomputes xB and d from scratch.
func (s *lpSolver) refresh() bool {
	if err := s.f.factorize(s.p, s.basis); err != nil {
		s.fValid = false
		return false
	}
	s.fValid = true
	s.computeXB()
	s.computeDuals()
	return true
}

// maxIters bounds one simplex run.
func (s *lpSolver) maxIters() int { return 60*(s.p.m+s.p.n) + 2000 }

// pertScale sizes the anti-degeneracy cost perturbation.
const pertScale = 1e-7

// perturb adds a deterministic, status-aware perturbation to the cost of
// every nonbasic column: +ε for columns at their lower bound, −ε at the
// upper. Both directions push the reduced cost strictly into dual
// feasibility, so every later dual ratio test sees a nonzero |d| and each
// pivot makes strict dual progress — the cure for the stalling that
// plagues these models, whose true objective touches a single variable
// (the makespan) and leaves every other reduced cost at zero. The true
// costs are restored (and the tiny resulting error cleaned up by a primal
// pass) before a solve returns.
func (s *lpSolver) perturb() {
	for j := 0; j < s.p.n; j++ {
		if s.stat[j] == inBase || s.lo[j] == s.hi[j] {
			continue
		}
		u := 0.5 + float64(mix64(uint64(j)+0x9e37)>>11)/(1<<53) // [0.5, 1.5)
		eps := pertScale * (1 + math.Abs(s.cost[j])) * u
		if s.stat[j] == nbUpper {
			eps = -eps
		}
		s.cost[j] += eps
	}
}

// cleanup restores the true objective after a perturbed dual run and, if
// the perturbation left any reduced cost sign-infeasible, polishes with
// the primal simplex (usually zero or a handful of iterations).
func (s *lpSolver) cleanup() LPStatus {
	p := s.p
	for j := 0; j < p.nStruct; j++ {
		s.cost[j] = p.obj[j]
	}
	for j := p.nStruct; j < p.n; j++ {
		s.cost[j] = 0
	}
	s.computeDuals()
	for j := 0; j < p.n; j++ {
		if s.stat[j] == inBase || s.lo[j] == s.hi[j] {
			continue
		}
		bad := (s.stat[j] == nbLower && s.d[j] < -epsCost) ||
			(s.stat[j] == nbUpper && s.d[j] > epsCost)
		if bad {
			s.bland = false
			return s.primal()
		}
	}
	return LPOptimal
}

func (s *lpSolver) expired(local int) bool {
	return local%128 == 0 && !s.deadline.IsZero() && time.Now().After(s.deadline) //repolint:allow timenow (solver deadline check)
}

// solveCold solves the LP from the all-slack basis. Structural variables
// start at the bound their (possibly phase-1-clamped) cost prefers.
func (s *lpSolver) solveCold() LPStatus {
	p := s.p
	// Phase-1 costs: negative-cost columns with an infinite upper bound
	// cannot be made dual feasible at a bound, so their cost is clamped
	// to zero for the dual pass; cleanup() restores the true costs and
	// polishes with the primal simplex.
	for j := 0; j < p.nStruct; j++ {
		c := p.obj[j]
		if c < 0 && math.IsInf(s.hi[j], 1) {
			c = 0
		}
		s.cost[j] = c
	}
	for j := p.nStruct; j < p.n; j++ {
		s.cost[j] = 0
	}
	for j := 0; j < p.n; j++ {
		switch {
		case s.cost[j] < 0 && !math.IsInf(s.hi[j], 1):
			s.stat[j] = nbUpper
		default:
			s.stat[j] = nbLower
		}
	}
	for i := 0; i < p.m; i++ {
		s.basis[i] = p.nStruct + i
		s.stat[p.nStruct+i] = inBase
	}
	s.bland = false
	s.perturb()
	if !s.refresh() {
		return lpFailed // cannot happen: the slack basis is the identity
	}
	st := s.dual()
	if st != LPOptimal {
		return st
	}
	// Phase 2: restore the true (unclamped, unperturbed) costs and clean
	// up with primal simplex from the now primal-feasible basis.
	return s.cleanup()
}

// solveWarm re-solves after a bound change, starting from a previously
// optimal basis (dual feasible by construction). Returns lpFailed when
// the basis cannot be reused; the caller falls back to solveCold.
func (s *lpSolver) solveWarm(basis []int32, stat []int8) LPStatus {
	p := s.p
	for j := 0; j < p.nStruct; j++ {
		s.cost[j] = p.obj[j]
	}
	for j := p.nStruct; j < p.n; j++ {
		s.cost[j] = 0
	}
	// When the requested basis is the one the solver already holds — the
	// rule along depth-first dives, where a child is solved right after
	// its parent on the same solver — the factorization (LU + eta file)
	// is still valid: only bounds changed, and B depends on the basis
	// columns alone. Skipping the O(m³) refactorization makes those
	// child re-solves nearly free.
	same := s.fValid
	for i := range s.basis {
		if s.basis[i] != int(basis[i]) {
			same = false
			break
		}
	}
	copy(s.stat, stat)
	s.bland = false
	s.perturb()
	if same {
		s.computeXB()
		s.computeDuals()
	} else {
		for i := range s.basis {
			s.basis[i] = int(basis[i])
		}
		if !s.refresh() {
			return lpFailed
		}
	}
	// The parent's optimal duals must still be sign-feasible; numerical
	// drift beyond tolerance voids the warm start.
	for j := 0; j < p.n; j++ {
		switch s.stat[j] {
		case nbLower:
			if s.d[j] < -1e-6 && !(s.lo[j] == s.hi[j]) {
				return lpFailed
			}
		case nbUpper:
			if s.d[j] > 1e-6 && !(s.lo[j] == s.hi[j]) {
				return lpFailed
			}
		}
	}
	st := s.dual()
	if st != LPOptimal {
		return st
	}
	return s.cleanup()
}

// result extracts the solution in the model's variable space.
func (s *lpSolver) result(status LPStatus) LPResult {
	res := LPResult{Status: status, Iters: s.iters}
	if status != LPOptimal {
		return res
	}
	p := s.p
	x := make([]float64, p.nStruct)
	for j := 0; j < p.nStruct; j++ {
		x[j] = s.nbVal(j)
	}
	for i, j := range s.basis {
		if j < p.nStruct {
			x[j] = s.xB[i]
		}
	}
	obj := 0.0
	for j, v := range x {
		obj += p.obj[j] * v
	}
	res.X = x
	res.Obj = obj
	return res
}

// saveBasis snapshots the basis for warm-starting child nodes.
func (s *lpSolver) saveBasis() ([]int32, []int8) {
	b := make([]int32, s.p.m)
	for i, j := range s.basis {
		b[i] = int32(j)
	}
	st := make([]int8, s.p.n)
	copy(st, s.stat)
	return b, st
}

// boundTol is the feasibility tolerance for a bound of magnitude v.
func boundTol(v float64) float64 { return epsFeas * (1 + math.Abs(v)) }

// dual runs the bounded-variable dual simplex: it drives out primal bound
// violations while keeping the reduced costs sign-feasible. Terminates
// with LPOptimal (primal feasible), LPInfeasible, or LPIterLimit.
func (s *lpSolver) dual() LPStatus {
	p := s.p
	limit := s.maxIters()
	if s.iterCap > 0 && s.iterCap < limit {
		limit = s.iterCap
	}
	degen := 0
iter:
	for local := 1; ; local++ {
		s.iters++
		if local > limit {
			return LPIterLimit
		}
		if s.expired(local) {
			return LPIterLimit
		}
		// Objective cutoff: while dual feasible, the objective is a lower
		// bound on the relaxation optimum; once it crosses the incumbent
		// the node cannot improve and the solve is abandoned. The margin
		// absorbs the cost-perturbation error.
		if local%8 == 0 && !math.IsInf(s.cutoff, 1) {
			if s.objVal() > s.cutoff+1e-6*(1+math.Abs(s.cutoff)) {
				return lpCutoff
			}
		}
		if local%512 == 0 {
			// Hygiene refresh: the eta-cap refactorization already bounds
			// error growth, so this is a rare safety net only.
			if !s.refresh() {
				return lpFailed
			}
		}
		// Leaving row: the largest bound violation.
		r := -1
		viol := 0.0
		below := false
		for i := 0; i < p.m; i++ {
			bi := s.basis[i]
			if v := s.lo[bi] - s.xB[i]; v > boundTol(s.lo[bi]) && v > viol {
				r, viol, below = i, v, true
			}
			if v := s.xB[i] - s.hi[bi]; v > boundTol(s.hi[bi]) && v > viol {
				r, viol, below = i, v, false
			}
		}
		if r < 0 {
			return LPOptimal
		}
		lv := s.basis[r]
		// Pricing row: alpha_j = (B⁻¹A)_r,j.
		s.priceRow(r)
		// Entering column: dual ratio test. Eligibility keeps the step
		// direction that repairs the violation (and demands |alpha| above
		// the pivot-stability floor epsDualPivot); the minimum |d/alpha|
		// keeps dual feasibility. Ties prefer the largest |alpha| (pivot
		// stability); Bland mode takes the lowest eligible index. The loop
		// re-picks when the FTRAN'd column contradicts the priced entry.
		q := -1
		var aq float64
		zeroed := false
		for {
			// Two tiers: candidates above the epsDualPivot stability floor
			// are preferred outright; ones in (epsPivot, epsDualPivot] are
			// kept as a fallback so a row whose only repair pivots are weak
			// is still pivoted rather than declared infeasible. Preferring
			// a stable pivot over the weak minimum ratio can push a weak
			// column's reduced cost past zero, but only by ~|alpha|·step —
			// the cleanup primal polish restores optimality either way.
			q = -1
			qw := -1
			bestRatio, bestMag := math.Inf(1), 0.0
			weakRatio, weakMag := math.Inf(1), 0.0
			for _, j32 := range s.touched {
				j := int(j32)
				if s.stat[j] == inBase || s.lo[j] == s.hi[j] {
					continue
				}
				a := s.alpha[j]
				eligible := false
				if below {
					eligible = (s.stat[j] == nbLower && a < -epsPivot) ||
						(s.stat[j] == nbUpper && a > epsPivot)
				} else {
					eligible = (s.stat[j] == nbLower && a > epsPivot) ||
						(s.stat[j] == nbUpper && a < -epsPivot)
				}
				if !eligible {
					continue
				}
				ratio := math.Abs(s.d[j] / a)
				mag := math.Abs(a)
				if mag > epsDualPivot {
					switch {
					case s.bland:
						if q < 0 {
							q = j
						}
					case ratio < bestRatio-1e-9 || (ratio <= bestRatio+1e-9 && mag > bestMag):
						q, bestRatio, bestMag = j, ratio, mag
					}
				} else {
					switch {
					case s.bland:
						if qw < 0 {
							qw = j
						}
					case ratio < weakRatio-1e-9 || (ratio <= weakRatio+1e-9 && mag > weakMag):
						qw, weakRatio, weakMag = j, ratio, mag
					}
				}
			}
			if q < 0 {
				q = qw
			}
			if q < 0 {
				if zeroed {
					// Only FTRAN-refuted candidates remained: a numerical
					// dead end, not an infeasibility certificate.
					return lpFailed
				}
				return LPInfeasible
			}
			// Entering column through the basis.
			p.gatherCol(q, s.w)
			s.f.ftran(s.w)
			aq = s.w[r]
			if math.Abs(aq) >= epsPivot {
				break
			}
			// The priced row said alpha[q] is a usable pivot; the FTRAN'd
			// column says it is numerically zero. With a non-trivial eta
			// file the priced row may be stale — refactorize and restart
			// the iteration. On a fresh factorization FTRAN is the more
			// accurate of the two, so drop the column from this pricing
			// round and take the next-best candidate; refactorizing would
			// reproduce the identical disagreement.
			if len(s.f.etas) > 0 {
				if !s.refresh() {
					return lpFailed
				}
				continue iter
			}
			s.alpha[q] = 0
			zeroed = true
		}
		bnd := s.hi[lv]
		if below {
			bnd = s.lo[lv]
		}
		t := (s.xB[r] - bnd) / aq
		if math.Abs(t) <= 1e-12 {
			degen++
			if degen > 4*(p.m+64) {
				s.bland = true
			}
		} else {
			degen = 0
		}
		enterVal := s.nbVal(q) + t
		for i := 0; i < p.m; i++ {
			if i != r {
				s.xB[i] -= t * s.w[i]
			}
		}
		s.xB[r] = enterVal
		// Dual update from the priced row.
		theta := s.d[q] / s.alpha[q]
		for _, j32 := range s.touched {
			j := int(j32)
			if s.stat[j] != inBase && s.lo[j] != s.hi[j] && s.alpha[j] != 0 {
				s.d[j] -= theta * s.alpha[j]
			}
		}
		s.d[q] = 0
		s.d[lv] = -theta
		if below {
			s.stat[lv] = nbLower
		} else {
			s.stat[lv] = nbUpper
		}
		s.basis[r] = q
		s.stat[q] = inBase
		if !s.f.update(s.w, r) {
			if err := s.f.factorize(p, s.basis); err != nil {
				s.fValid = false
				return lpFailed
			}
			s.computeXB()
			s.computeDuals()
		}
	}
}

// primal runs the bounded-variable primal simplex from a primal-feasible
// basis. Terminates with LPOptimal, LPUnbounded, or LPIterLimit.
func (s *lpSolver) primal() LPStatus {
	p := s.p
	limit := s.maxIters()
	if s.iterCap > 0 && s.iterCap < limit {
		limit = s.iterCap
	}
	blandAfter := 8*(p.m+p.n) + 300
	for local := 1; ; local++ {
		s.iters++
		if local > limit {
			return LPIterLimit
		}
		if s.expired(local) {
			return LPIterLimit
		}
		if local > blandAfter {
			s.bland = true
		}
		if local%512 == 0 {
			// Hygiene refresh: the eta-cap refactorization already bounds
			// error growth, so this is a rare safety net only.
			if !s.refresh() {
				return lpFailed
			}
		}
		// Entering variable (Dantzig; Bland after stalling).
		e := -1
		var dir float64
		best := -epsCost
		for j := 0; j < p.n; j++ {
			if s.stat[j] == inBase || s.lo[j] == s.hi[j] {
				continue
			}
			switch s.stat[j] {
			case nbLower:
				if s.d[j] < best {
					e, dir, best = j, 1, s.d[j]
					if s.bland {
						goto chosen
					}
				}
			case nbUpper:
				if -s.d[j] < best {
					e, dir, best = j, -1, -s.d[j]
					if s.bland {
						goto chosen
					}
				}
			}
		}
	chosen:
		if e < 0 {
			return LPOptimal
		}
		p.gatherCol(e, s.w)
		s.f.ftran(s.w)
		// Two-pass (Harris-style) ratio test, as in the former dense
		// solver: pass 1 finds the tightest step, pass 2 the most stable
		// pivot among rows tying within tolerance.
		const ratioTol = 1e-7
		rowLimit := func(i int) (lim float64, toUpper bool, mag float64, ok bool) {
			a := dir * s.w[i]
			mag = math.Abs(a)
			if mag <= epsPivot {
				return 0, false, 0, false
			}
			bi := s.basis[i]
			if a > 0 {
				lim = (s.xB[i] - s.lo[bi]) / a
			} else {
				if math.IsInf(s.hi[bi], 1) {
					return 0, false, 0, false
				}
				lim = (s.hi[bi] - s.xB[i]) / (-a)
				toUpper = true
			}
			if lim < 0 {
				lim = 0
			}
			return lim, toUpper, mag, true
		}
		flip := s.hi[e] - s.lo[e] // bound-to-bound flip distance
		tMax := flip
		for i := 0; i < p.m; i++ {
			if lim, _, _, ok := rowLimit(i); ok && lim < tMax {
				tMax = lim
			}
		}
		if math.IsInf(tMax, 1) {
			return LPUnbounded
		}
		leave := -1
		leaveUpper := false
		bestMag := 0.0
		for i := 0; i < p.m; i++ {
			lim, toUpper, mag, ok := rowLimit(i)
			if !ok || lim > tMax+ratioTol*(1+tMax) {
				continue
			}
			switch {
			case s.bland:
				if leave < 0 || s.basis[i] < s.basis[leave] {
					leave, leaveUpper, bestMag = i, toUpper, mag
				}
			case mag > bestMag:
				leave, leaveUpper, bestMag = i, toUpper, mag
			}
		}
		if leave < 0 && tMax < flip {
			tMax = flip
		}
		if leave < 0 {
			// Bound flip: e moves to its opposite bound.
			for i := 0; i < p.m; i++ {
				s.xB[i] -= dir * tMax * s.w[i]
			}
			if s.stat[e] == nbLower {
				s.stat[e] = nbUpper
			} else {
				s.stat[e] = nbLower
			}
			continue
		}
		for i := 0; i < p.m; i++ {
			if i != leave {
				s.xB[i] -= dir * tMax * s.w[i]
			}
		}
		enterVal := s.nbVal(e) + dir*tMax
		lv := s.basis[leave]
		if leaveUpper {
			s.stat[lv] = nbUpper
		} else {
			s.stat[lv] = nbLower
		}
		s.basis[leave] = e
		s.stat[e] = inBase
		s.xB[leave] = enterVal
		// Dual update from the pivot row of the outgoing basis.
		// The priced row is taken before the factorization update, so it
		// is the row of the OLD basis; alpha_e = w[leave].
		s.priceRow(leave)
		theta := s.d[e] / s.w[leave]
		for _, j32 := range s.touched {
			j := int(j32)
			if s.stat[j] == inBase {
				continue
			}
			if a := s.alpha[j]; a != 0 {
				s.d[j] -= theta * a
			}
		}
		s.d[e] = 0
		s.d[lv] = -theta
		if !s.f.update(s.w, leave) {
			if err := s.f.factorize(p, s.basis); err != nil {
				s.fValid = false
				return lpFailed
			}
			s.computeXB()
			s.computeDuals()
		}
	}
}
