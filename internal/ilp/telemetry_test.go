package ilp

import (
	"testing"
	"time"
)

// knapsackModel builds a small maximization-as-minimization knapsack
// with enough structure to need real branching.
func knapsackModel() *Model {
	m := NewModel()
	vals := []float64{10, 13, 7, 8, 9, 11, 6, 12}
	wts := []float64{5, 7, 3, 4, 5, 6, 2, 7}
	var terms []Term
	for i, v := range vals {
		x := m.AddBinary("x", -v) // minimize -value
		terms = append(terms, Term{Var: x, Coeff: wts[i]})
	}
	m.AddCons("cap", terms, LE, 18)
	return m
}

func TestProgressHookFires(t *testing.T) {
	m := knapsackModel()
	var incumbents, dones int
	var last ProgressEvent
	res := Solve(m, Options{
		Progress: func(ev ProgressEvent) {
			switch ev.Kind {
			case EventIncumbent:
				incumbents++
			case EventDone:
				dones++
				last = ev
			}
		},
	})
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v, want optimal", res.Status)
	}
	if dones != 1 {
		t.Errorf("done events = %d, want exactly 1", dones)
	}
	if incumbents == 0 {
		t.Errorf("no incumbent events fired")
	}
	if incumbents != res.Incumbents {
		t.Errorf("incumbent events = %d but Result.Incumbents = %d", incumbents, res.Incumbents)
	}
	if last.Nodes != res.Nodes || last.LPIters != res.LPIters {
		t.Errorf("done event counters (%d, %d) disagree with result (%d, %d)",
			last.Nodes, last.LPIters, res.Nodes, res.LPIters)
	}
	if last.Obj != res.Obj {
		t.Errorf("done event obj %g != result obj %g", last.Obj, res.Obj)
	}
}

func TestNodeCapReported(t *testing.T) {
	m := knapsackModel()
	// MaxNodes below the default forces truncation after the DFS phase
	// found an incumbent.
	res := Solve(m, Options{MaxNodes: 1, RelGap: -1})
	if res.Status == StatusOptimal {
		t.Skip("model solved within one node; cannot exercise the cap")
	}
	if !res.NodeCapped {
		t.Errorf("NodeCapped not set on truncated search (status %v, nodes %d)", res.Status, res.Nodes)
	}
	if res.TimedOut {
		t.Errorf("TimedOut set without a deadline")
	}
}

func TestTimeoutReported(t *testing.T) {
	m := knapsackModel()
	res := Solve(m, Options{Deadline: time.Now().Add(-time.Second)})
	if res.TimedOut != true {
		t.Errorf("TimedOut not set when the deadline already passed (status %v)", res.Status)
	}
	if res.NodeCapped {
		t.Errorf("NodeCapped set spuriously")
	}
}

func TestOptimalSolveHasNoTruncationFlags(t *testing.T) {
	m := knapsackModel()
	res := Solve(m, Options{})
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v, want optimal", res.Status)
	}
	if res.TimedOut || res.NodeCapped {
		t.Errorf("truncation flags set on a proven-optimal solve")
	}
	if res.Incumbents == 0 {
		t.Errorf("optimal solve should have found at least one incumbent")
	}
}

// BenchmarkSolveNoHook is the observability-disabled baseline: Options
// with a nil Progress hook must not add work or allocations to the
// branch-and-bound loop.
func BenchmarkSolveNoHook(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := Solve(knapsackModel(), Options{})
		if res.Status != StatusOptimal {
			b.Fatalf("status = %v", res.Status)
		}
	}
}

// BenchmarkSolveWithHook measures the same solve with a progress hook
// installed, for comparison against BenchmarkSolveNoHook.
func BenchmarkSolveWithHook(b *testing.B) {
	b.ReportAllocs()
	var events int
	for i := 0; i < b.N; i++ {
		res := Solve(knapsackModel(), Options{Progress: func(ProgressEvent) { events++ }})
		if res.Status != StatusOptimal {
			b.Fatalf("status = %v", res.Status)
		}
	}
	if events == 0 {
		b.Fatalf("hook never fired")
	}
}
