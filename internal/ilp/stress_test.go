package ilp

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestPlantedFeasibleLP generates random LPs around a planted feasible
// point, with wide coefficient magnitudes and all three senses; the solver
// must never report infeasible.
func TestPlantedFeasibleLP(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 2000; trial++ {
		m := NewModel()
		n := 2 + rng.Intn(10)
		x0 := make([]float64, n)
		for i := 0; i < n; i++ {
			hi := 1.0
			if rng.Intn(2) == 0 {
				hi = math.Inf(1)
			}
			m.AddVar("x", 0, hi, float64(rng.Intn(7)-3))
			if math.IsInf(hi, 1) {
				x0[i] = rng.Float64() * 10
			} else {
				x0[i] = rng.Float64()
			}
		}
		nc := 1 + rng.Intn(12)
		for c := 0; c < nc; c++ {
			var terms []Term
			lhs := 0.0
			for i := 0; i < n; i++ {
				if rng.Intn(3) == 0 {
					continue
				}
				mag := math.Pow(10, float64(rng.Intn(6)-1)) // 0.1 .. 1e4
				coeff := (rng.Float64()*2 - 1) * mag
				terms = append(terms, Term{VarID(i), coeff})
				lhs += coeff * x0[i]
			}
			if len(terms) == 0 {
				continue
			}
			switch rng.Intn(3) {
			case 0:
				m.AddCons("le", terms, LE, lhs+rng.Float64())
			case 1:
				m.AddCons("ge", terms, GE, lhs-rng.Float64())
			default:
				m.AddCons("eq", terms, EQ, lhs)
			}
		}
		res := solveLP(m, nil, nil, time.Time{})
		if res.Status == LPInfeasible {
			t.Fatalf("trial %d: planted-feasible LP reported infeasible\n%s\nx0=%v", trial, m.WriteLP(), x0)
		}
		if res.Status == LPIterLimit {
			t.Fatalf("trial %d: iteration limit", trial)
		}
		if res.Status == LPOptimal {
			if err := m.Feasible(res.X, 1e-5); err != nil {
				t.Fatalf("trial %d: optimal point infeasible: %v", trial, err)
			}
			// x0 is feasible, so the optimum must be at least as good.
			if res.Obj > m.Objective(x0)+1e-5*(1+math.Abs(m.Objective(x0))) {
				t.Fatalf("trial %d: obj %g worse than planted point %g", trial, res.Obj, m.Objective(x0))
			}
		}
	}
}
