package ilp

import (
	"errors"
	"math"
)

// luFactor maintains an invertible representation of the simplex basis
// matrix B: a dense LU factorization with partial pivoting, plus a
// product-form eta file for the pivots applied since the last
// refactorization. FTRAN solves Bx = v, BTRAN solves Bᵀy = v.
//
// The basis dimension is the row count m, which for the parallelizer's
// region models is a few hundred at most, so a dense O(m³/3) refactor
// every refactorEvery pivots and O(m²) triangular solves are cheap — the
// former dense tableau was O(m·n) per pivot over the full column space.
type luFactor struct {
	m    int
	lu   []float64 // m×m row-major, L (unit diag) and U in place
	lut  []float64 // transpose of lu: row k holds column k of L and U
	piv  []int     // row swaps applied during factorization
	etas []etaVec
	// etaIdx/etaVal back every eta's idx/val slices; truncated (not
	// freed) at refactorization so steady-state updates allocate nothing.
	etaIdx []int32
	etaVal []float64
}

// etaVec is one product-form update: after pivoting column w into basis
// row r, B_new⁻¹ = E⁻¹ B_old⁻¹ with E⁻¹ the identity except column r.
type etaVec struct {
	r    int
	diag float64 // w_r
	idx  []int32 // rows i ≠ r with w_i ≠ 0
	val  []float64
}

// refactorEvery bounds the eta file length before a fresh factorization.
// With the scatter-form triangular solves the O(m³/3) refactorization is
// the dominant cost, so the eta file is allowed to grow long: applying an
// eta is O(nnz) and the numerical-hygiene refresh in dual/primal catches
// drift well before it bites.
const refactorEvery = 96

var errSingular = errors.New("singular basis")

// factorize computes the LU decomposition of the basis given by cols
// (one column index per row) gathered from p. Existing etas are dropped.
func (f *luFactor) factorize(p *prob, basis []int) error {
	m := p.m
	f.m = m
	if cap(f.lu) < m*m {
		f.lu = make([]float64, m*m)
	}
	f.lu = f.lu[:m*m]
	for i := range f.lu {
		f.lu[i] = 0
	}
	if cap(f.piv) < m {
		f.piv = make([]int, m)
	}
	f.piv = f.piv[:m]
	f.etas = f.etas[:0]
	f.etaIdx = f.etaIdx[:0]
	f.etaVal = f.etaVal[:0]
	// Gather basis columns: lu[i*m+k] = A[i][basis[k]].
	for k, j := range basis {
		if r, ok := p.slackCol(j); ok {
			f.lu[r*m+k] = 1
			continue
		}
		for at := p.colPtr[j]; at < p.colPtr[j+1]; at++ {
			f.lu[int(p.rowIdx[at])*m+k] = p.colVal[at]
		}
	}
	// Doolittle with partial pivoting.
	for k := 0; k < m; k++ {
		pr, pv := k, math.Abs(f.lu[k*m+k])
		for i := k + 1; i < m; i++ {
			if a := math.Abs(f.lu[i*m+k]); a > pv {
				pr, pv = i, a
			}
		}
		if pv < 1e-11 {
			return errSingular
		}
		f.piv[k] = pr
		if pr != k {
			rk, rp := f.lu[k*m:k*m+m], f.lu[pr*m:pr*m+m]
			for j := 0; j < m; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
		}
		inv := 1 / f.lu[k*m+k]
		for i := k + 1; i < m; i++ {
			l := f.lu[i*m+k] * inv
			if l == 0 {
				continue
			}
			f.lu[i*m+k] = l
			ri, rk := f.lu[i*m:i*m+m], f.lu[k*m:k*m+m]
			for j := k + 1; j < m; j++ {
				ri[j] -= l * rk[j]
			}
		}
	}
	// Transposed copy: the triangular solves below walk columns of L/U
	// in scatter form, which become contiguous rows of lut.
	if cap(f.lut) < m*m {
		f.lut = make([]float64, m*m)
	}
	f.lut = f.lut[:m*m]
	const tb = 32 // cache-blocked transpose
	for ib := 0; ib < m; ib += tb {
		ie := ib + tb
		if ie > m {
			ie = m
		}
		for jb := 0; jb < m; jb += tb {
			je := jb + tb
			if je > m {
				je = m
			}
			for i := ib; i < ie; i++ {
				for j := jb; j < je; j++ {
					f.lut[j*m+i] = f.lu[i*m+j]
				}
			}
		}
	}
	return nil
}

// luSolve solves (LU)x = Pv in place. Both triangular phases run in
// scatter (outer-product) form over rows of the transposed factor:
// column k of L/U is contiguous in lut, and a zero intermediate skips
// its whole column update. Simplex right-hand sides are sparse (the
// entering column for FTRAN), so most columns are skipped outright.
func (f *luFactor) luSolve(x []float64) {
	m := f.m
	for k := 0; k < m; k++ {
		if p := f.piv[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// L y = Pv: y[k] known once reached; scatter down column k.
	for k := 0; k < m-1; k++ {
		t := x[k]
		if t == 0 {
			continue
		}
		ck := f.lut[k*m : k*m+m]
		for i := k + 1; i < m; i++ {
			x[i] -= ck[i] * t
		}
	}
	// U x = y: backward scatter up column k.
	for k := m - 1; k >= 0; k-- {
		t := x[k]
		if t == 0 {
			continue
		}
		ck := f.lut[k*m : k*m+k]
		t /= f.lut[k*m+k]
		x[k] = t
		for i := 0; i < k; i++ {
			x[i] -= ck[i] * t
		}
	}
}

// luSolveT solves (LU)ᵀw = v and applies Pᵀ in place. Scatter form over
// rows of lu: row k of U (resp. L) is column k of Uᵀ (resp. Lᵀ), so both
// phases get contiguous access plus the zero-skip — BTRAN right-hand
// sides are unit vectors, making the skip the common case.
func (f *luFactor) luSolveT(x []float64) {
	m := f.m
	// Uᵀ z = v: forward scatter along row k of U.
	for k := 0; k < m; k++ {
		t := x[k]
		if t == 0 {
			continue
		}
		rk := f.lu[k*m : k*m+m]
		t /= rk[k]
		x[k] = t
		for i := k + 1; i < m; i++ {
			x[i] -= rk[i] * t
		}
	}
	// Lᵀ w = z: backward scatter along row k of L (unit diagonal).
	for k := m - 1; k > 0; k-- {
		t := x[k]
		if t == 0 {
			continue
		}
		rk := f.lu[k*m : k*m+k]
		for i := 0; i < k; i++ {
			x[i] -= rk[i] * t
		}
	}
	for k := m - 1; k >= 0; k-- {
		if p := f.piv[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
}

// ftran solves B x = v in place (LU solve, then the eta file in order).
func (f *luFactor) ftran(x []float64) {
	f.luSolve(x)
	for e := range f.etas {
		ev := &f.etas[e]
		t := x[ev.r] / ev.diag
		if t != 0 {
			for k, i := range ev.idx {
				x[i] -= ev.val[k] * t
			}
		}
		x[ev.r] = t
	}
}

// btran solves Bᵀ y = v in place (eta file transposed in reverse order,
// then the LU transpose solve).
func (f *luFactor) btran(x []float64) {
	for e := len(f.etas) - 1; e >= 0; e-- {
		ev := &f.etas[e]
		s := x[ev.r]
		for k, i := range ev.idx {
			s -= ev.val[k] * x[i]
		}
		x[ev.r] = s / ev.diag
	}
	f.luSolveT(x)
}

// update appends the pivot (entering column w = B⁻¹a_q replacing basis
// row r) to the eta file. Returns false when the pivot is numerically
// unusable or the eta file is full — the caller must refactorize.
func (f *luFactor) update(w []float64, r int) bool {
	if len(f.etas) >= refactorEvery {
		return false
	}
	if math.Abs(w[r]) < 1e-9 {
		return false
	}
	start := len(f.etaIdx)
	for i, v := range w {
		if i != r && v != 0 {
			f.etaIdx = append(f.etaIdx, int32(i))
			f.etaVal = append(f.etaVal, v)
		}
	}
	// Slices into the arena stay valid across later appends: growth
	// reallocates the arena but earlier etas keep the old backing array.
	f.etas = append(f.etas, etaVec{r: r, diag: w[r], idx: f.etaIdx[start:len(f.etaIdx):len(f.etaIdx)], val: f.etaVal[start:len(f.etaVal):len(f.etaVal)]})
	return true
}
