package ilp

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestSimpleLP(t *testing.T) {
	// min -x - 2y s.t. x + y <= 4, x <= 3, y <= 2  -> x=2..3? optimum x=2,y=2? obj...
	// LP optimum: y=2 (coeff -2), then x <= 2 -> x=2, obj=-6.
	m := NewModel()
	x := m.AddVar("x", 0, 3, -1)
	y := m.AddVar("y", 0, 2, -2)
	m.AddCons("cap", []Term{{x, 1}, {y, 1}}, LE, 4)
	res := solveLP(m, nil, nil, time.Time{})
	if res.Status != LPOptimal {
		t.Fatalf("status %v", res.Status)
	}
	if math.Abs(res.Obj-(-6)) > 1e-6 {
		t.Errorf("obj = %g, want -6 (x=%v)", res.Obj, res.X)
	}
}

func TestLPEquality(t *testing.T) {
	// min x + y s.t. x + 2y = 4, x - y >= -1  ->  y=(x+1)... optimum:
	// from x=4-2y, obj=4-y, maximize y; x-y>=-1 -> 4-3y>=-1 -> y<=5/3.
	// obj = 4-5/3 = 7/3.
	m := NewModel()
	x := m.AddVar("x", 0, math.Inf(1), 1)
	y := m.AddVar("y", 0, math.Inf(1), 1)
	m.AddCons("eq", []Term{{x, 1}, {y, 2}}, EQ, 4)
	m.AddCons("ge", []Term{{x, 1}, {y, -1}}, GE, -1)
	res := solveLP(m, nil, nil, time.Time{})
	if res.Status != LPOptimal {
		t.Fatalf("status %v", res.Status)
	}
	if math.Abs(res.Obj-7.0/3.0) > 1e-6 {
		t.Errorf("obj = %g, want %g (x=%v)", res.Obj, 7.0/3.0, res.X)
	}
}

func TestLPInfeasible(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x", 0, 1, 1)
	m.AddCons("c1", []Term{{x, 1}}, GE, 2)
	res := solveLP(m, nil, nil, time.Time{})
	if res.Status != LPInfeasible {
		t.Fatalf("status %v, want infeasible", res.Status)
	}
}

func TestLPUnbounded(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x", 0, math.Inf(1), -1)
	y := m.AddVar("y", 0, math.Inf(1), 0)
	m.AddCons("c1", []Term{{x, 1}, {y, -1}}, LE, 1)
	res := solveLP(m, nil, nil, time.Time{})
	if res.Status != LPUnbounded {
		t.Fatalf("status %v, want unbounded", res.Status)
	}
}

func TestLPNegativeLowerBounds(t *testing.T) {
	// min x with x >= -5 (shifted bounds path).
	m := NewModel()
	x := m.AddVar("x", -5, 10, 1)
	m.AddCons("c", []Term{{x, 1}}, GE, -3)
	res := solveLP(m, nil, nil, time.Time{})
	if res.Status != LPOptimal || math.Abs(res.X[0]-(-3)) > 1e-6 {
		t.Fatalf("got %v x=%v, want x=-3", res.Status, res.X)
	}
}

func TestKnapsackMILP(t *testing.T) {
	// Classic 0/1 knapsack: values 60,100,120, weights 10,20,30, cap 50.
	// Optimum = 220 (items 2 and 3). Minimize negative value.
	m := NewModel()
	vals := []float64{60, 100, 120}
	wts := []float64{10, 20, 30}
	ids := make([]VarID, 3)
	terms := make([]Term, 3)
	for i := range vals {
		ids[i] = m.AddBinary("item", -vals[i])
		terms[i] = Term{ids[i], wts[i]}
	}
	m.AddCons("cap", terms, LE, 50)
	res := Solve(m, Options{})
	if res.Status != StatusOptimal {
		t.Fatalf("status %v", res.Status)
	}
	if math.Abs(res.Obj-(-220)) > 1e-6 {
		t.Errorf("obj = %g, want -220 (x=%v)", res.Obj, res.X)
	}
	if res.X[0] != 0 || res.X[1] != 1 || res.X[2] != 1 {
		t.Errorf("selection = %v, want [0 1 1]", res.X)
	}
}

func TestMILPInfeasible(t *testing.T) {
	m := NewModel()
	x := m.AddBinary("x", 1)
	y := m.AddBinary("y", 1)
	m.AddCons("c1", []Term{{x, 1}, {y, 1}}, GE, 3)
	res := Solve(m, Options{})
	if res.Status != StatusInfeasible {
		t.Fatalf("status %v, want infeasible", res.Status)
	}
}

func TestMILPMixed(t *testing.T) {
	// min y - 2b   s.t. y >= 1.5 b, y <= 4; b binary.
	// b=1: y=1.5, obj=-0.5. b=0: y=0, obj=0. Optimum -0.5.
	m := NewModel()
	y := m.AddVar("y", 0, 4, 1)
	b := m.AddBinary("b", -2)
	m.AddCons("link", []Term{{y, 1}, {b, -1.5}}, GE, 0)
	res := Solve(m, Options{})
	if res.Status != StatusOptimal || math.Abs(res.Obj-(-0.5)) > 1e-6 {
		t.Fatalf("status %v obj %g, want optimal -0.5", res.Status, res.Obj)
	}
}

func TestGeneralIntegerVar(t *testing.T) {
	// max 3x+2y (as min of negative) with x,y integer, x+y <= 4.7,
	// 2x + y <= 6.3 -> candidates: x=2? 2x+y<=6.3 -> y<=2.3 -> y=2;
	// x+y=4<=4.7 ok; obj=10. x=3: y<=0.3 -> 0, obj 9. So optimum 10.
	m := NewModel()
	x := m.AddInt("x", 0, 10, -3)
	y := m.AddInt("y", 0, 10, -2)
	m.AddCons("c1", []Term{{x, 1}, {y, 1}}, LE, 4.7)
	m.AddCons("c2", []Term{{x, 2}, {y, 1}}, LE, 6.3)
	res := Solve(m, Options{})
	if res.Status != StatusOptimal || math.Abs(res.Obj-(-10)) > 1e-6 {
		t.Fatalf("status %v obj %g x %v, want -10", res.Status, res.Obj, res.X)
	}
}

// bruteForceBinary enumerates all binary assignments; continuous vars must
// be absent. Returns best objective or +inf when infeasible everywhere.
func bruteForceBinary(m *Model) (float64, []float64) {
	n := len(m.Vars)
	best := math.Inf(1)
	var bestX []float64
	x := make([]float64, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			if err := m.Feasible(x, 1e-9); err == nil {
				if obj := m.Objective(x); obj < best {
					best = obj
					bestX = append([]float64(nil), x...)
				}
			}
			return
		}
		for _, v := range []float64{0, 1} {
			x[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return best, bestX
}

func randomBinaryModel(rng *rand.Rand) *Model {
	m := NewModel()
	n := 3 + rng.Intn(6) // 3..8 binaries
	ids := make([]VarID, n)
	for i := 0; i < n; i++ {
		ids[i] = m.AddBinary("b", float64(rng.Intn(21)-10))
	}
	nc := 1 + rng.Intn(5)
	for c := 0; c < nc; c++ {
		var terms []Term
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				terms = append(terms, Term{ids[i], float64(rng.Intn(11) - 5)})
			}
		}
		if len(terms) == 0 {
			terms = []Term{{ids[0], 1}}
		}
		sense := []Sense{LE, GE, EQ}[rng.Intn(3)]
		rhs := float64(rng.Intn(13) - 4)
		m.AddCons("c", terms, sense, rhs)
	}
	return m
}

func TestRandomBinaryAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 300; trial++ {
		m := randomBinaryModel(rng)
		want, _ := bruteForceBinary(m)
		res := Solve(m, Options{})
		if math.IsInf(want, 1) {
			if res.Status != StatusInfeasible {
				t.Fatalf("trial %d: brute force infeasible but solver says %v (obj %g)\n%s",
					trial, res.Status, res.Obj, m.WriteLP())
			}
			continue
		}
		if res.Status != StatusOptimal {
			t.Fatalf("trial %d: status %v, want optimal\n%s", trial, res.Status, m.WriteLP())
		}
		if math.Abs(res.Obj-want) > 1e-6 {
			t.Fatalf("trial %d: obj %g, brute force %g\n%s", trial, res.Obj, want, m.WriteLP())
		}
		if err := m.Feasible(res.X, 1e-6); err != nil {
			t.Fatalf("trial %d: solution infeasible: %v", trial, err)
		}
	}
}

func TestRandomLPFeasibilityAndBounds(t *testing.T) {
	// Property: for random LPs with bounded vars, if the solver reports
	// optimal, the point satisfies all constraints and no better vertex
	// exists among random feasible samples.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		m := NewModel()
		n := 2 + rng.Intn(5)
		ids := make([]VarID, n)
		for i := 0; i < n; i++ {
			ids[i] = m.AddVar("x", 0, float64(1+rng.Intn(10)), float64(rng.Intn(11)-5))
		}
		for c := 0; c < 1+rng.Intn(4); c++ {
			var terms []Term
			for i := 0; i < n; i++ {
				terms = append(terms, Term{ids[i], float64(rng.Intn(9) - 4)})
			}
			m.AddCons("c", terms, []Sense{LE, GE}[rng.Intn(2)], float64(rng.Intn(21)-5))
		}
		res := solveLP(m, nil, nil, time.Time{})
		if res.Status == LPIterLimit {
			t.Fatalf("trial %d: iteration limit on a tiny LP", trial)
		}
		if res.Status != LPOptimal {
			continue
		}
		if err := m.Feasible(res.X, 1e-5); err != nil {
			t.Fatalf("trial %d: optimal point infeasible: %v", trial, err)
		}
		// Sample random feasible points; none may beat the optimum.
		for s := 0; s < 200; s++ {
			x := make([]float64, n)
			for i := range x {
				x[i] = rng.Float64() * m.Vars[i].Hi
			}
			if m.Feasible(x, 1e-9) == nil && m.Objective(x) < res.Obj-1e-5 {
				t.Fatalf("trial %d: sampled point beats 'optimum': %g < %g", trial, m.Objective(x), res.Obj)
			}
		}
	}
}

func TestBigMPredecessorPattern(t *testing.T) {
	// The parallelizer's accumulated-cost pattern:
	// acc_t >= cost_t + acc_u - M(1 - pred) with binary pred. With pred
	// forced to 1 the chain must hold; with 0 it must not constrain.
	const M = 1e6
	m := NewModel()
	accU := m.AddVar("accU", 0, math.Inf(1), 0)
	accT := m.AddVar("accT", 0, math.Inf(1), 1)
	pred := m.AddBinary("pred", 0)
	m.AddCons("baseU", []Term{{accU, 1}}, GE, 10)
	// accT >= 5 + accU - M(1-pred)  <=>  accT - accU - M*pred >= 5 - M
	m.AddCons("chain", []Term{{accT, 1}, {accU, -1}, {pred, -M}}, GE, 5-M)
	m.AddCons("force", []Term{{pred, 1}}, EQ, 1)
	res := Solve(m, Options{})
	if res.Status != StatusOptimal {
		t.Fatalf("status %v", res.Status)
	}
	if math.Abs(res.Obj-15) > 1e-4 {
		t.Errorf("obj = %g, want 15 (acc chained)", res.Obj)
	}
}

func TestIncumbentPruning(t *testing.T) {
	m := NewModel()
	x := m.AddBinary("x", -1)
	y := m.AddBinary("y", -1)
	m.AddCons("c", []Term{{x, 1}, {y, 1}}, LE, 1)
	res := Solve(m, Options{Incumbent: []float64{1, 0}})
	if res.Status != StatusOptimal || math.Abs(res.Obj+1) > 1e-9 {
		t.Fatalf("status %v obj %g", res.Status, res.Obj)
	}
}

func TestDeadlineReturnsIncumbent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewModel()
	// A chunky random knapsack-ish model.
	var terms []Term
	for i := 0; i < 40; i++ {
		id := m.AddBinary("b", -float64(1+rng.Intn(100)))
		terms = append(terms, Term{id, float64(1 + rng.Intn(50))})
	}
	m.AddCons("cap", terms, LE, 300)
	res := Solve(m, Options{Deadline: time.Now().Add(-time.Second), Incumbent: make([]float64, 40)})
	if res.Status != StatusFeasible {
		t.Fatalf("status %v, want feasible (deadline already passed)", res.Status)
	}
}

func TestModelValidate(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x", 5, 1, 0)
	_ = x
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "lower bound") {
		t.Errorf("crossed bounds not caught: %v", err)
	}
	m2 := NewModel()
	m2.AddCons("c", []Term{{VarID(3), 1}}, LE, 1)
	if err := m2.Validate(); err == nil {
		t.Errorf("unknown var not caught")
	}
}

func TestWriteLP(t *testing.T) {
	m := NewModel()
	x := m.AddBinary("use task", -3)
	y := m.AddVar("slack#1", 0, 5, 1)
	m.AddCons("limit", []Term{{x, 2}, {y, -1}}, LE, 1)
	lp := m.WriteLP()
	for _, want := range []string{"min:", "use_task", "slack_1", "<= 1;", "bin use_task;"} {
		if !strings.Contains(lp, want) {
			t.Errorf("LP output missing %q:\n%s", want, lp)
		}
	}
}

func TestMergeTerms(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x", 0, 1, 0)
	m.AddCons("c", []Term{{x, 1}, {x, 2}, {x, -3}}, LE, 1)
	if len(m.Cons[0].Terms) != 0 {
		t.Errorf("terms should cancel: %v", m.Cons[0].Terms)
	}
}

func TestDegenerateCyclingGuard(t *testing.T) {
	// Beale's classic cycling example for textbook simplex; Bland's rule
	// must terminate it.
	m := NewModel()
	x1 := m.AddVar("x1", 0, math.Inf(1), -0.75)
	x2 := m.AddVar("x2", 0, math.Inf(1), 150)
	x3 := m.AddVar("x3", 0, math.Inf(1), -0.02)
	x4 := m.AddVar("x4", 0, math.Inf(1), 6)
	m.AddCons("r1", []Term{{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}}, LE, 0)
	m.AddCons("r2", []Term{{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}}, LE, 0)
	m.AddCons("r3", []Term{{x3, 1}}, LE, 1)
	res := solveLP(m, nil, nil, time.Time{})
	if res.Status != LPOptimal {
		t.Fatalf("status %v", res.Status)
	}
	if math.Abs(res.Obj-(-0.05)) > 1e-6 {
		t.Errorf("obj = %g, want -0.05", res.Obj)
	}
}
