// Package ilp is a self-contained 0/1 mixed-integer linear programming
// solver: a bounded-variable two-phase primal simplex for the LP
// relaxations and a best-first branch-and-bound search for integrality.
//
// It replaces the lp_solve / CPLEX back ends of the paper's tool flow. The
// parallelizer builds one Model per (hierarchical node, main processor
// class, task bound) combination, mirroring the equations of Section IV,
// and reads back the optimal node-to-task and task-to-class assignment.
//
// The solver guarantees optimality when it terminates within its node
// budget (Status == StatusOptimal); with a budget or deadline it degrades
// to the best incumbent found (StatusFeasible).
package ilp

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// VarKind distinguishes continuous from integral variables.
type VarKind int

// Variable kinds.
const (
	Continuous VarKind = iota
	Integer            // general integer within bounds
	Binary             // {0,1}
)

// Var is one decision variable.
type Var struct {
	Name string
	Kind VarKind
	Lo   float64
	Hi   float64 // math.Inf(1) for unbounded
	Obj  float64 // objective coefficient (minimization)
	// Priority steers branch-and-bound: among fractional integral
	// variables, the highest priority class is branched first (default 0).
	Priority int
}

// SetPriority sets the branching priority of v and returns the model for
// chaining.
func (m *Model) SetPriority(v VarID, prio int) { m.Vars[v].Priority = prio }

// VarID indexes a variable within its model.
type VarID int

// Sense is the relational operator of a constraint.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // <=
	GE              // >=
	EQ              // ==
)

// String renders the sense.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return "="
	}
}

// Term is one linear term Coeff * Var.
type Term struct {
	Var   VarID
	Coeff float64
}

// Constraint is a linear constraint sum(terms) Sense RHS.
type Constraint struct {
	Name  string
	Terms []Term
	Sense Sense
	RHS   float64
}

// Model is an ILP under construction. The objective is always minimized.
type Model struct {
	Vars []Var
	Cons []Constraint
}

// NewModel creates an empty model.
func NewModel() *Model { return &Model{} }

// AddVar adds a continuous variable with bounds [lo, hi].
func (m *Model) AddVar(name string, lo, hi, obj float64) VarID {
	m.Vars = append(m.Vars, Var{Name: name, Kind: Continuous, Lo: lo, Hi: hi, Obj: obj})
	return VarID(len(m.Vars) - 1)
}

// AddBinary adds a 0/1 variable.
func (m *Model) AddBinary(name string, obj float64) VarID {
	m.Vars = append(m.Vars, Var{Name: name, Kind: Binary, Lo: 0, Hi: 1, Obj: obj})
	return VarID(len(m.Vars) - 1)
}

// AddInt adds a bounded general-integer variable.
func (m *Model) AddInt(name string, lo, hi, obj float64) VarID {
	m.Vars = append(m.Vars, Var{Name: name, Kind: Integer, Lo: lo, Hi: hi, Obj: obj})
	return VarID(len(m.Vars) - 1)
}

// AddCons adds a constraint. Terms with duplicate variables are merged.
func (m *Model) AddCons(name string, terms []Term, sense Sense, rhs float64) {
	merged := mergeTerms(terms)
	m.Cons = append(m.Cons, Constraint{Name: name, Terms: merged, Sense: sense, RHS: rhs})
}

func mergeTerms(terms []Term) []Term {
	byVar := map[VarID]float64{}
	order := make([]VarID, 0, len(terms))
	for _, t := range terms {
		if _, seen := byVar[t.Var]; !seen {
			order = append(order, t.Var)
		}
		byVar[t.Var] += t.Coeff
	}
	out := make([]Term, 0, len(order))
	for _, v := range order {
		if byVar[v] != 0 {
			out = append(out, Term{Var: v, Coeff: byVar[v]})
		}
	}
	return out
}

// NumVars returns the variable count.
func (m *Model) NumVars() int { return len(m.Vars) }

// NumCons returns the constraint count.
func (m *Model) NumCons() int { return len(m.Cons) }

// NumIntegral returns the count of integer/binary variables.
func (m *Model) NumIntegral() int {
	n := 0
	for _, v := range m.Vars {
		if v.Kind != Continuous {
			n++
		}
	}
	return n
}

// Validate reports structural errors.
func (m *Model) Validate() error {
	for i, v := range m.Vars {
		if v.Lo > v.Hi {
			return fmt.Errorf("variable %d (%s): lower bound %g above upper %g", i, v.Name, v.Lo, v.Hi)
		}
		if math.IsInf(v.Lo, -1) {
			return fmt.Errorf("variable %d (%s): free variables are not supported (shift or split)", i, v.Name)
		}
	}
	for i, c := range m.Cons {
		for _, t := range c.Terms {
			if int(t.Var) < 0 || int(t.Var) >= len(m.Vars) {
				return fmt.Errorf("constraint %d (%s): unknown variable id %d", i, c.Name, t.Var)
			}
			if math.IsNaN(t.Coeff) || math.IsInf(t.Coeff, 0) {
				return fmt.Errorf("constraint %d (%s): bad coefficient %g", i, c.Name, t.Coeff)
			}
		}
		if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
			return fmt.Errorf("constraint %d (%s): bad rhs %g", i, c.Name, c.RHS)
		}
	}
	return nil
}

// EvalCons computes the left-hand-side value of constraint c at point x.
func (m *Model) EvalCons(c *Constraint, x []float64) float64 {
	lhs := 0.0
	for _, t := range c.Terms {
		lhs += t.Coeff * x[t.Var]
	}
	return lhs
}

// Feasible checks x against all constraints and bounds within tol.
func (m *Model) Feasible(x []float64, tol float64) error {
	if len(x) != len(m.Vars) {
		return fmt.Errorf("point has %d entries, model has %d variables", len(x), len(m.Vars))
	}
	for i, v := range m.Vars {
		if x[i] < v.Lo-tol || x[i] > v.Hi+tol {
			return fmt.Errorf("variable %s = %g outside [%g, %g]", v.Name, x[i], v.Lo, v.Hi)
		}
		if v.Kind != Continuous && math.Abs(x[i]-math.Round(x[i])) > tol {
			return fmt.Errorf("variable %s = %g not integral", v.Name, x[i])
		}
	}
	for i := range m.Cons {
		c := &m.Cons[i]
		lhs := m.EvalCons(c, x)
		// Scale the tolerance with the row magnitude so nanosecond-scale
		// cost rows are not held to absolute unit tolerances.
		scale := 1.0
		for _, t := range c.Terms {
			if a := math.Abs(t.Coeff); a > scale {
				scale = a
			}
		}
		rtol := tol * scale
		switch c.Sense {
		case LE:
			if lhs > c.RHS+rtol {
				return fmt.Errorf("constraint %s violated: %g > %g", c.Name, lhs, c.RHS)
			}
		case GE:
			if lhs < c.RHS-rtol {
				return fmt.Errorf("constraint %s violated: %g < %g", c.Name, lhs, c.RHS)
			}
		case EQ:
			if math.Abs(lhs-c.RHS) > rtol {
				return fmt.Errorf("constraint %s violated: %g != %g", c.Name, lhs, c.RHS)
			}
		}
	}
	return nil
}

// Objective evaluates the objective at x.
func (m *Model) Objective(x []float64) float64 {
	obj := 0.0
	for i, v := range m.Vars {
		obj += v.Obj * x[i]
	}
	return obj
}

// WriteLP renders the model in lp_solve-compatible LP format, the
// interchange format the paper's tool emits for its external solvers.
func (m *Model) WriteLP() string {
	var sb strings.Builder
	sb.WriteString("/* generated by repro/internal/ilp */\n")
	sb.WriteString("min: ")
	first := true
	for i, v := range m.Vars {
		if v.Obj == 0 {
			continue
		}
		writeCoeff(&sb, v.Obj, m.varName(i), &first)
	}
	if first {
		sb.WriteString("0")
	}
	sb.WriteString(";\n")
	for i := range m.Cons {
		c := &m.Cons[i]
		if c.Name != "" {
			fmt.Fprintf(&sb, "%s: ", sanitizeName(c.Name))
		}
		first := true
		for _, t := range c.Terms {
			writeCoeff(&sb, t.Coeff, m.varName(int(t.Var)), &first)
		}
		if first {
			sb.WriteString("0")
		}
		fmt.Fprintf(&sb, " %s %g;\n", c.Sense, c.RHS)
	}
	// Bounds for non-default ranges.
	for i, v := range m.Vars {
		if v.Kind == Binary {
			continue
		}
		if v.Lo != 0 {
			fmt.Fprintf(&sb, "%s >= %g;\n", m.varName(i), v.Lo)
		}
		if !math.IsInf(v.Hi, 1) {
			fmt.Fprintf(&sb, "%s <= %g;\n", m.varName(i), v.Hi)
		}
	}
	var bins, ints []string
	for i, v := range m.Vars {
		switch v.Kind {
		case Binary:
			bins = append(bins, m.varName(i))
		case Integer:
			ints = append(ints, m.varName(i))
		}
	}
	sort.Strings(bins)
	sort.Strings(ints)
	if len(bins) > 0 {
		fmt.Fprintf(&sb, "bin %s;\n", strings.Join(bins, ", "))
	}
	if len(ints) > 0 {
		fmt.Fprintf(&sb, "int %s;\n", strings.Join(ints, ", "))
	}
	return sb.String()
}

func writeCoeff(sb *strings.Builder, c float64, name string, first *bool) {
	switch {
	case *first:
		if c == 1 {
			sb.WriteString(name)
		} else if c == -1 {
			sb.WriteString("-" + name)
		} else {
			fmt.Fprintf(sb, "%g %s", c, name)
		}
		*first = false
	case c >= 0:
		if c == 1 {
			fmt.Fprintf(sb, " + %s", name)
		} else {
			fmt.Fprintf(sb, " + %g %s", c, name)
		}
	default:
		if c == -1 {
			fmt.Fprintf(sb, " - %s", name)
		} else {
			fmt.Fprintf(sb, " - %g %s", -c, name)
		}
	}
}

func (m *Model) varName(i int) string {
	n := m.Vars[i].Name
	if n == "" {
		return fmt.Sprintf("x%d", i)
	}
	return sanitizeName(n)
}

func sanitizeName(n string) string {
	var sb strings.Builder
	for _, r := range n {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "v"
	}
	return sb.String()
}
