package ilp

import (
	"math"
	"sort"
)

// cut is one globally valid inequality  Σ coeff·x ≤ rhs  over structural
// columns, generated at the branch-and-bound root to tighten the
// relaxation before the search starts.
type cut struct {
	terms []cutTerm
	rhs   float64
}

type cutTerm struct {
	v     int32
	coeff float64
}

// Cut-generation limits: the generator is deliberately lightweight — it
// only fires on clearly violated, cheaply detectable structures.
const (
	cutMinViol     = 0.02 // minimum fractional violation to emit a cut
	cutMaxPerKind  = 32   // covers / cliques per round
	cutMaxRowTerms = 64   // widest row examined
	cutRounds      = 3    // root separation rounds
)

// genCuts separates cover and clique cuts from the fractional root point
// x. Everything is deterministic: rows are scanned in model order,
// candidates sorted with index tie-breaks.
func genCuts(mod *Model, x []float64) []cut {
	cuts := coverCuts(mod, x)
	cuts = append(cuts, cliqueCuts(mod, x)...)
	return cuts
}

// binaryLERow extracts constraint i as a pure-binary ≤ row with positive
// coefficients when it has that shape (GE rows with all-negative
// coefficients are negated into it).
func binaryLERow(mod *Model, c *Constraint) ([]Term, float64, bool) {
	if len(c.Terms) < 2 || len(c.Terms) > cutMaxRowTerms || c.Sense == EQ {
		return nil, 0, false
	}
	sign := 1.0
	if c.Sense == GE {
		sign = -1
	}
	terms := make([]Term, 0, len(c.Terms))
	for _, t := range c.Terms {
		v := &mod.Vars[t.Var]
		if v.Kind != Binary {
			return nil, 0, false
		}
		co := sign * t.Coeff
		if co <= 0 {
			return nil, 0, false
		}
		terms = append(terms, Term{Var: t.Var, Coeff: co})
	}
	return terms, sign * c.RHS, true
}

// coverCuts separates minimal-cover inequalities from binary knapsack
// rows: for a cover C with Σ_{C} a_j > b, at most |C|−1 of its variables
// can be 1 simultaneously.
func coverCuts(mod *Model, x []float64) []cut {
	var out []cut
	for i := range mod.Cons {
		if len(out) >= cutMaxPerKind {
			break
		}
		terms, rhs, ok := binaryLERow(mod, &mod.Cons[i])
		if !ok || rhs <= 0 {
			continue
		}
		// Greedy cover: most fractional-active variables first.
		idx := make([]int, len(terms))
		for k := range idx {
			idx[k] = k
		}
		sort.Slice(idx, func(a, b int) bool {
			xa, xb := x[terms[idx[a]].Var], x[terms[idx[b]].Var]
			if xa != xb {
				return xa > xb
			}
			return terms[idx[a]].Var < terms[idx[b]].Var
		})
		weight, active := 0.0, 0.0
		var cover []int32
		for _, k := range idx {
			cover = append(cover, int32(terms[k].Var))
			weight += terms[k].Coeff
			active += x[terms[k].Var]
			if weight > rhs+1e-9 {
				break
			}
		}
		if weight <= rhs+1e-9 {
			continue // the whole row fits: no cover exists
		}
		if active <= float64(len(cover)-1)+cutMinViol {
			continue // not violated at x
		}
		ct := cut{rhs: float64(len(cover) - 1)}
		sort.Slice(cover, func(a, b int) bool { return cover[a] < cover[b] })
		for _, v := range cover {
			ct.terms = append(ct.terms, cutTerm{v: v, coeff: 1})
		}
		out = append(out, ct)
	}
	return out
}

// cliqueCuts builds a pairwise conflict graph from set-packing rows
// (Σ x ≤ 1 or = 1 over binaries) and binary knapsack rows whose
// coefficient pairs exceed the capacity, then grows violated fractional
// edges into maximal cliques: Σ_{clique} x ≤ 1.
func cliqueCuts(mod *Model, x []float64) []cut {
	n := len(mod.Vars)
	adj := make([]map[int32]bool, n)
	conflict := func(a, b VarID) {
		if a == b {
			return
		}
		i, j := int32(a), int32(b)
		if adj[i] == nil {
			adj[i] = map[int32]bool{}
		}
		if adj[j] == nil {
			adj[j] = map[int32]bool{}
		}
		adj[i][j] = true
		adj[j][i] = true
	}
	type edge struct{ a, b int32 }
	var seeds []edge
	for ci := range mod.Cons {
		c := &mod.Cons[ci]
		if len(c.Terms) < 2 || len(c.Terms) > cutMaxRowTerms {
			continue
		}
		// Set-packing shape: unit coefficients, rhs 1, LE or EQ.
		packing := c.Sense != GE && c.RHS == 1
		allBin := true
		for _, t := range c.Terms {
			if mod.Vars[t.Var].Kind != Binary || t.Coeff != 1 {
				packing = false
			}
			if mod.Vars[t.Var].Kind != Binary {
				allBin = false
			}
		}
		if packing {
			for a := 0; a < len(c.Terms); a++ {
				for b := a + 1; b < len(c.Terms); b++ {
					conflict(c.Terms[a].Var, c.Terms[b].Var)
				}
			}
			continue
		}
		// Knapsack pairs: a_i + a_j > rhs forces x_i + x_j ≤ 1.
		if terms, rhs, ok := binaryLERow(mod, c); ok && allBin {
			for a := 0; a < len(terms); a++ {
				for b := a + 1; b < len(terms); b++ {
					if terms[a].Coeff+terms[b].Coeff > rhs+1e-9 {
						conflict(terms[a].Var, terms[b].Var)
						va, vb := int32(terms[a].Var), int32(terms[b].Var)
						if x[va]+x[vb] > 1+cutMinViol {
							seeds = append(seeds, edge{va, vb})
						}
					}
				}
			}
		}
	}
	var out []cut
	seen := map[string]bool{}
	for _, e := range seeds {
		if len(out) >= cutMaxPerKind {
			break
		}
		clique := []int32{e.a, e.b}
		// Candidates: common neighbors, most active first.
		var cands []int32
		for v := range adj[e.a] { //repolint:allow maprange (candidates re-sorted deterministically below)
			if adj[e.b][v] {
				cands = append(cands, v)
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			if x[cands[i]] != x[cands[j]] {
				return x[cands[i]] > x[cands[j]]
			}
			return cands[i] < cands[j]
		})
		for _, v := range cands {
			all := true
			for _, u := range clique {
				if !adj[v][u] {
					all = false
					break
				}
			}
			if all {
				clique = append(clique, v)
			}
		}
		active := 0.0
		for _, v := range clique {
			active += x[v]
		}
		if active <= 1+cutMinViol {
			continue
		}
		sort.Slice(clique, func(i, j int) bool { return clique[i] < clique[j] })
		key := cliqueKey(clique)
		if seen[key] {
			continue
		}
		seen[key] = true
		ct := cut{rhs: 1}
		for _, v := range clique {
			ct.terms = append(ct.terms, cutTerm{v: v, coeff: 1})
		}
		out = append(out, ct)
	}
	return out
}

func cliqueKey(clique []int32) string {
	b := make([]byte, 0, len(clique)*4)
	for _, v := range clique {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

// cutViolated reports whether point x violates the cut (used by the audit
// tests; cuts must never cut off an integral feasible point).
func (c *cut) violated(x []float64, tol float64) bool {
	lhs := 0.0
	for _, t := range c.terms {
		lhs += t.coeff * x[t.v]
	}
	return lhs > c.rhs+tol
}

var _ = math.Inf
