package ilp

import (
	"container/heap"
	"fmt"
	"math"
	"sync"
	"time"
)

// Status is the outcome of a MILP solve.
type Status int

// MILP outcomes.
const (
	StatusOptimal    Status = iota // proven optimal
	StatusFeasible                 // incumbent found, search truncated
	StatusInfeasible               // no integral feasible point exists
	StatusUnbounded
	StatusNoSolution // search truncated before any incumbent was found
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusFeasible:
		return "feasible"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusNoSolution:
		return "no-solution"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// ProgressKind labels a solver progress event.
type ProgressKind int

// Progress event kinds.
const (
	// EventIncumbent fires when the search finds a new best integral point.
	EventIncumbent ProgressKind = iota
	// EventDone fires exactly once, after the search finishes.
	EventDone
)

// ProgressEvent is one solver milestone reported to Options.Progress.
type ProgressEvent struct {
	Kind ProgressKind
	// Nodes and LPIters are the exploration counters at event time.
	Nodes   int
	LPIters int
	// Obj is the incumbent objective (meaningless before the first
	// incumbent); Gap the relative optimality gap when known.
	Obj float64
	Gap float64
}

// Options tunes the branch-and-bound search.
type Options struct {
	// MaxNodes caps explored B&B nodes (0 = default 200000).
	MaxNodes int
	// Deadline aborts the search when exceeded (zero = none). On abort the
	// best incumbent is returned with StatusFeasible.
	Deadline time.Time
	// IntTol is the integrality tolerance (default 1e-6).
	IntTol float64
	// Incumbent optionally provides a known feasible point to prune with.
	Incumbent []float64
	// RelGap terminates the search once the relative optimality gap of the
	// incumbent drops to or below this value (0 = prove optimality).
	RelGap float64
	// Workers sets the width of the best-first search rounds: up to
	// Workers nodes are taken from the frontier per round and their LP
	// relaxations solved concurrently on a bounded pool, results folded
	// back in deterministic frontier order. 0 or 1 = serial. The search
	// trajectory (and therefore Result) depends on Workers and Seed but
	// never on scheduling: equal options give byte-identical results.
	Workers int
	// Seed perturbs the tie order among equal-bound frontier nodes. Any
	// fixed seed (including the 0 default) is deterministic.
	Seed int64
	// DisableCuts skips root cover/clique cut separation.
	DisableCuts bool
	// DisableWarmStart forces every node relaxation to solve from
	// scratch (benchmark baseline; warm starts are on by default).
	DisableWarmStart bool
	// Progress, when non-nil, receives one event per incumbent improvement
	// and a final summary event. The hook runs inline on the solve loop and
	// must be cheap; a nil hook costs a single pointer test (nothing is
	// allocated on the hot path).
	Progress func(ProgressEvent)
}

// Result is the outcome of Solve.
type Result struct {
	Status Status
	X      []float64
	Obj    float64
	// Nodes is the number of B&B nodes explored; LPIters the total simplex
	// iterations across relaxations.
	Nodes   int
	LPIters int
	// LPItersRoot, LPItersDive and LPItersSearch split LPIters across the
	// solve phases: root relaxation (plus cut re-solves), the
	// depth-first incumbent dive, and the best-first search.
	LPItersRoot   int
	LPItersDive   int
	LPItersSearch int
	// Cuts counts root cutting planes added to the relaxation.
	Cuts int
	// WarmStarts counts node relaxations attempted from the parent basis;
	// WarmHits those that succeeded without falling back to a cold solve.
	WarmStarts int
	WarmHits   int
	// Gap is the final relative optimality gap: 0 when proven optimal,
	// otherwise recomputed from the best remaining frontier bound on
	// every truncated exit (it is only meaningful once an incumbent
	// exists).
	Gap float64
	// Incumbents counts integral improvements found during the search
	// (seeded Options.Incumbent points are not counted).
	Incumbents int
	// TimedOut and NodeCapped report why a truncated search stopped:
	// the Options.Deadline passed or the MaxNodes budget ran out.
	TimedOut   bool
	NodeCapped bool
}

// bbNode is one open branch-and-bound subproblem. The bound slices and
// the parent basis are shared, never mutated.
type bbNode struct {
	lo, hi []float64
	bound  float64 // LP relaxation value (lower bound for minimization)
	depth  int
	seq    int64  // creation order: the final deterministic tie-break
	prio   uint64 // seeded tie-break among equal bounds
	basis  []int32
	stat   []int8
}

type nodeHeap []*bbNode

func (h nodeHeap) Len() int      { return len(h) }
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].bound != h[j].bound {
		return h[i].bound < h[j].bound
	}
	if h[i].depth != h[j].depth {
		return h[i].depth > h[j].depth // deeper first among equal bounds
	}
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h *nodeHeap) Push(x any) { *h = append(*h, x.(*bbNode)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// mix64 is splitmix64: the seeded tie-break hash.
func mix64(v uint64) uint64 {
	v += 0x9e3779b97f4a7c15
	v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9
	v = (v ^ (v >> 27)) * 0x94d049bb133111eb
	return v ^ (v >> 31)
}

// Solve minimizes the model's objective subject to its constraints, bounds
// and integrality requirements.
func Solve(mod *Model, opt Options) Result {
	res := solve(mod, opt)
	if opt.Progress != nil {
		opt.Progress(ProgressEvent{
			Kind:    EventDone,
			Nodes:   res.Nodes,
			LPIters: res.LPIters,
			Obj:     res.Obj,
			Gap:     res.Gap,
		})
	}
	return res
}

// noteIncumbent records an integral improvement and fires the progress
// hook when one is installed.
func noteIncumbent(opt *Options, res *Result) {
	res.Incumbents++
	if opt.Progress != nil {
		opt.Progress(ProgressEvent{
			Kind:    EventIncumbent,
			Nodes:   res.Nodes,
			LPIters: res.LPIters,
			Obj:     res.Obj,
		})
	}
}

// nodeIterCap bounds the simplex iterations of one node relaxation.
// Node solves are disposable — an IterLimit node is pruned and its bound
// folded into the final gap — so a modest deterministic budget stops
// degenerate or infeasible relaxations from grinding through the full
// maxIters allowance. Typical warm-started nodes use a few dozen
// iterations; the cap only bites on pathological ones.
const nodeIterCap = 2000

// searcher carries the per-solve state: the compiled problem, the worker
// solvers and the node sequence counter.
type searcher struct {
	mod     *Model
	p       *prob
	opt     Options
	solvers []*lpSolver
	seq     int64
	// prunedBound is the minimum known lower bound among subtrees pruned
	// by the node iteration cap (not by infeasibility or cutoff). Any
	// optimality or infeasibility claim must account for it.
	prunedBound float64
}

func (sc *searcher) newNode(lo, hi []float64, bound float64, depth int, basis []int32, stat []int8) *bbNode {
	sc.seq++
	return &bbNode{
		lo: lo, hi: hi, bound: bound, depth: depth,
		seq:   sc.seq,
		prio:  mix64(uint64(sc.seq) ^ uint64(sc.opt.Seed)),
		basis: basis, stat: stat,
	}
}

// nodeLP is the outcome of one node relaxation.
type nodeLP struct {
	res     LPResult
	basis   []int32
	stat    []int8
	warm    bool
	warmHit bool
}

// solveNode solves one node's relaxation on solver s, warm-starting from
// the parent basis when available. cutoff is the incumbent objective at
// round start: the dual simplex abandons the node as soon as its rising
// lower bound crosses it.
func (sc *searcher) solveNode(s *lpSolver, nd *bbNode, cutoff float64) nodeLP {
	s.setBounds(nd.lo, nd.hi)
	s.deadline = sc.opt.Deadline
	s.iterCap = nodeIterCap
	s.cutoff = cutoff
	s.iters = 0
	out := nodeLP{}
	st := lpFailed
	if nd.basis != nil && !sc.opt.DisableWarmStart {
		out.warm = true
		st = s.solveWarm(nd.basis, nd.stat)
	}
	if st == lpFailed {
		st = s.solveCold()
	} else if out.warm {
		out.warmHit = true
	}
	if st == lpFailed {
		st = LPIterLimit
	}
	out.res = s.result(st)
	if st == LPOptimal {
		out.basis, out.stat = s.saveBasis()
	}
	return out
}

func solve(mod *Model, opt Options) Result {
	if err := mod.Validate(); err != nil {
		return Result{Status: StatusInfeasible}
	}
	if opt.MaxNodes == 0 {
		opt.MaxNodes = 200000
	}
	if opt.IntTol == 0 {
		opt.IntTol = 1e-6
	}
	if opt.Workers < 1 {
		opt.Workers = 1
	}
	res := Result{Status: StatusNoSolution, Obj: math.Inf(1)}
	if opt.Incumbent != nil {
		if err := mod.Feasible(opt.Incumbent, 1e-6); err == nil {
			res.Status = StatusFeasible
			res.X = append([]float64(nil), opt.Incumbent...)
			res.Obj = mod.Objective(opt.Incumbent)
		}
	}

	rootLo, rootHi, ok := mergeBounds(mod, nil, nil)
	if !ok {
		if res.Status == StatusFeasible {
			return res
		}
		res.Status = StatusInfeasible
		return res
	}
	sc := &searcher{mod: mod, p: compile(mod), opt: opt, prunedBound: math.Inf(1)}
	root := newLPSolver(sc.p)
	root.deadline = opt.Deadline
	root.setBounds(rootLo, rootHi)
	st := root.solveCold()
	if st == lpFailed {
		st = LPIterLimit
	}
	rootLP := root.result(st)
	res.LPIters += rootLP.Iters
	res.LPItersRoot += rootLP.Iters
	switch rootLP.Status {
	case LPInfeasible:
		if res.Status == StatusFeasible {
			return res // trust the provided incumbent
		}
		res.Status = StatusInfeasible
		return res
	case LPUnbounded:
		res.Status = StatusUnbounded
		return res
	case LPIterLimit:
		return res
	}
	relGap := func(bound float64) float64 {
		g := (res.Obj - bound) / math.Max(1e-9, math.Abs(res.Obj))
		if g < 0 {
			g = 0
		}
		return g
	}
	if !opt.Deadline.IsZero() && time.Now().After(opt.Deadline) { //repolint:allow timenow (solver deadline check)
		// Out of time before the search even started: report the seeded
		// incumbent (if any) against the root bound.
		res.TimedOut = true
		if res.Status == StatusFeasible {
			res.Gap = relGap(rootLP.Obj)
		}
		return res
	}

	// Root cut separation: cover/clique cuts are globally valid, so they
	// tighten every node relaxation of the search.
	if !opt.DisableCuts && mod.NumIntegral() > 0 {
		for round := 0; round < cutRounds; round++ {
			if pickBranchVar(mod, rootLP.X, opt.IntTol) < 0 {
				break // integral already
			}
			cuts := genCuts(mod, rootLP.X)
			if len(cuts) == 0 {
				break
			}
			sc.p = sc.p.appendCuts(cuts)
			res.Cuts += len(cuts)
			root = newLPSolver(sc.p)
			root.deadline = opt.Deadline
			root.setBounds(rootLo, rootHi)
			st = root.solveCold()
			if st != LPOptimal {
				break // numerical trouble: keep the last good relaxation
			}
			lp := root.result(st)
			res.LPIters += lp.Iters
			res.LPItersRoot += lp.Iters
			rootLP = lp
		}
	}

	sc.solvers = make([]*lpSolver, opt.Workers)
	for i := range sc.solvers {
		sc.solvers[i] = newLPSolver(sc.p)
	}

	// Phase 1: depth-first dive until a first incumbent exists. DFS with
	// backtracking reaches integral leaves quickly, unlike pure best-first
	// which can spread across an exponential frontier when the relaxation
	// is symmetric. Each step warm-starts from its parent's basis.
	dfsBudget := opt.MaxNodes / 4
	if dfsBudget < 200 {
		dfsBudget = 200
	}
	if dfsBudget > opt.MaxNodes {
		// Tiny node budgets (design-space sweeps run with MaxNodes ~20)
		// must bound the incumbent dive too, or phase 1 alone costs 200
		// LP solves per ILP regardless of the cap.
		dfsBudget = opt.MaxNodes
	}
	rootBasis, rootStat := root.saveBasis()
	sc.dive(rootLo, rootHi, rootLP, rootBasis, rootStat, &res, dfsBudget)

	// Phase 2: best-first search for optimality (or the requested gap),
	// Workers nodes per round.
	open := &nodeHeap{}
	heap.Init(open)
	if frac := pickBranchVar(mod, rootLP.X, opt.IntTol); frac < 0 {
		// Integral root: the dive already recorded it (or failed to snap,
		// in which case no better point exists below the root).
		if res.Status == StatusFeasible {
			res.Status = StatusOptimal
			res.Gap = 0
			return res
		}
		if res.Status == StatusNoSolution {
			res.Status = StatusInfeasible
		}
		return res
	}
	sc.branch(open, &bbNode{lo: rootLo, hi: rootHi, depth: 0, basis: rootBasis, stat: rootStat}, rootLP)

	gap := relGap

	truncated := false
	batch := make([]*bbNode, 0, opt.Workers)
	lps := make([]nodeLP, opt.Workers)
	for open.Len() > 0 {
		if res.Nodes >= opt.MaxNodes {
			truncated = true
			res.NodeCapped = true
			break
		}
		if !opt.Deadline.IsZero() && time.Now().After(opt.Deadline) { //repolint:allow timenow (solver deadline check)
			truncated = true
			res.TimedOut = true
			break
		}
		// Fill the round: up to Workers nodes in frontier order, bounded
		// by the remaining node budget; prune against the incumbent as
		// they come off the heap.
		batch = batch[:0]
		width := opt.Workers
		if left := opt.MaxNodes - res.Nodes; left < width {
			width = left
		}
		for len(batch) < width && open.Len() > 0 {
			nd := heap.Pop(open).(*bbNode)
			if nd.bound >= res.Obj-1e-9 {
				continue // pruned by incumbent
			}
			batch = append(batch, nd)
		}
		if len(batch) == 0 {
			break
		}
		// The first batch node holds the global frontier minimum: batch
		// fill pops in bound order and children only weaken bounds.
		lb := batch[0].bound
		if sc.prunedBound < lb {
			lb = sc.prunedBound
		}
		if res.Status == StatusFeasible && gap(lb) <= opt.RelGap {
			res.Gap = gap(lb)
			return res
		}
		// Solve the round's relaxations concurrently. Batch item k is
		// pinned to solver k (the batch never exceeds the worker count),
		// so each solver sees the same node sequence on every run: a
		// solver's numerical state (LU factors, eta file) feeds the
		// warm-start shortcut, and racy work assignment would leak
		// scheduling into pivot choices. The cutoff is fixed at round
		// start, so the folded outcome is reproducible bit for bit.
		cutoff := res.Obj - 1e-9
		if opt.Workers > 1 && len(batch) > 1 {
			var wg sync.WaitGroup
			wg.Add(len(batch))
			for k := range batch {
				go func(k int) {
					defer wg.Done()
					lps[k] = sc.solveNode(sc.solvers[k], batch[k], cutoff)
				}(k)
			}
			wg.Wait()
		} else {
			for k, nd := range batch {
				lps[k] = sc.solveNode(sc.solvers[0], nd, cutoff)
			}
		}
		// Fold the round in frontier order: deterministic incumbent and
		// branching sequence regardless of goroutine scheduling.
		for k, nd := range batch {
			out := &lps[k]
			res.Nodes++
			res.LPIters += out.res.Iters
			res.LPItersSearch += out.res.Iters
			if out.warm {
				res.WarmStarts++
				if out.warmHit {
					res.WarmHits++
				}
			}
			if out.res.Status != LPOptimal {
				// Infeasible or cutoff nodes prune soundly; iteration-
				// limited ones surrender their parent bound to the gap.
				if out.res.Status == LPIterLimit && nd.bound < sc.prunedBound {
					sc.prunedBound = nd.bound
				}
				continue
			}
			if out.res.Obj >= res.Obj-1e-9 {
				continue
			}
			frac := pickBranchVar(mod, out.res.X, opt.IntTol)
			if frac < 0 {
				// Integral: new incumbent. Snap to exact integers first.
				x := snap(mod, out.res.X, opt.IntTol)
				if err := mod.Feasible(x, 1e-5); err == nil {
					obj := mod.Objective(x)
					if obj < res.Obj {
						res.Obj = obj
						res.X = x
						res.Status = StatusFeasible
						noteIncumbent(&opt, &res)
					}
				}
				continue
			}
			nd.basis, nd.stat = out.basis, out.stat
			sc.branch(open, nd, out.res)
		}
	}

	// Every exit path recomputes the final gap from the best remaining
	// bound: the frontier minimum and the bounds of iteration-pruned
	// subtrees. An empty frontier with no such prunes proves the
	// incumbent optimal (or the model integrally infeasible).
	remaining := sc.prunedBound
	if open.Len() > 0 && (*open)[0].bound < remaining {
		remaining = (*open)[0].bound
	}
	switch {
	case res.Status == StatusFeasible:
		if !truncated && remaining >= res.Obj-1e-9 {
			res.Status = StatusOptimal
			res.Gap = 0
		} else if remaining >= res.Obj-1e-9 {
			res.Gap = 0
		} else {
			res.Gap = gap(remaining)
		}
	case res.Status == StatusNoSolution && !truncated &&
		open.Len() == 0 && math.IsInf(sc.prunedBound, 1):
		res.Status = StatusInfeasible
	}
	return res
}

// branch splits nd on the most fractional variable of lp and pushes both
// children, sharing the parent's bound slices and basis.
func (sc *searcher) branch(open *nodeHeap, nd *bbNode, lp LPResult) {
	frac := pickBranchVar(sc.mod, lp.X, sc.opt.IntTol)
	if frac < 0 {
		return
	}
	v := lp.X[frac]
	floorV := math.Floor(v)
	dnHi := append([]float64(nil), nd.hi...)
	dnHi[frac] = floorV
	upLo := append([]float64(nil), nd.lo...)
	upLo[frac] = floorV + 1
	heap.Push(open, sc.newNode(nd.lo, dnHi, lp.Obj, nd.depth+1, nd.basis, nd.stat))
	heap.Push(open, sc.newNode(upLo, nd.hi, lp.Obj, nd.depth+1, nd.basis, nd.stat))
}

// dive explores depth-first (rounding-guided child first) until it finds
// one integral feasible point or exhausts its LP-solve budget. Every node
// warm-starts from its parent's basis, so a dive of depth d costs d short
// dual-simplex re-solves instead of d cold two-phase solves.
func (sc *searcher) dive(rootLo, rootHi []float64, rootLP LPResult,
	rootBasis []int32, rootStat []int8, res *Result, budget int) {
	if res.Status == StatusFeasible {
		return // caller-provided incumbent suffices
	}
	opt := &sc.opt
	type dfsNode struct {
		nd *bbNode
		// lp, when non-nil, is the already-solved relaxation of this node.
		lp *nodeLP
	}
	rootNode := &bbNode{lo: rootLo, hi: rootHi, bound: rootLP.Obj, basis: rootBasis, stat: rootStat}
	rootOut := nodeLP{res: rootLP, basis: rootBasis, stat: rootStat}
	stack := []dfsNode{{nd: rootNode, lp: &rootOut}}
	s := sc.solvers[0]
	for len(stack) > 0 && budget > 0 {
		if !opt.Deadline.IsZero() && time.Now().After(opt.Deadline) { //repolint:allow timenow (solver deadline check)
			return
		}
		node := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out := node.lp
		if out == nil {
			budget--
			solved := sc.solveNode(s, node.nd, res.Obj-1e-9)
			res.LPIters += solved.res.Iters
			res.LPItersDive += solved.res.Iters
			if solved.warm {
				res.WarmStarts++
				if solved.warmHit {
					res.WarmHits++
				}
			}
			out = &solved
		}
		if out.res.Status == LPIterLimit && node.nd.bound < sc.prunedBound {
			sc.prunedBound = node.nd.bound
		}
		if out.res.Status != LPOptimal || out.res.Obj >= res.Obj-1e-9 {
			continue
		}
		frac := pickBranchVar(sc.mod, out.res.X, opt.IntTol)
		if frac < 0 {
			x := snap(sc.mod, out.res.X, opt.IntTol)
			if err := sc.mod.Feasible(x, 1e-5); err == nil {
				if obj := sc.mod.Objective(x); obj < res.Obj {
					res.Obj = obj
					res.X = x
					res.Status = StatusFeasible
					noteIncumbent(opt, res)
				}
				return
			}
			continue
		}
		v := out.res.X[frac]
		floorV := math.Floor(v)
		dnHi := append([]float64(nil), node.nd.hi...)
		dnHi[frac] = floorV
		upLo := append([]float64(nil), node.nd.lo...)
		upLo[frac] = floorV + 1
		down := dfsNode{nd: &bbNode{lo: node.nd.lo, hi: dnHi, bound: out.res.Obj, basis: out.basis, stat: out.stat}}
		up := dfsNode{nd: &bbNode{lo: upLo, hi: node.nd.hi, bound: out.res.Obj, basis: out.basis, stat: out.stat}}
		// Push the less likely child first so the rounding-preferred child
		// is explored next (LIFO).
		if v-floorV >= 0.5 {
			stack = append(stack, down, up)
		} else {
			stack = append(stack, up, down)
		}
	}
}

// pickBranchVar returns the fractional integral variable to branch on:
// the most fractional one within the highest priority class that has any
// fractional variable. Returns -1 when the point is integral.
func pickBranchVar(mod *Model, x []float64, tol float64) int {
	best := -1
	bestDist := tol
	bestPrio := math.MinInt32
	for i, v := range mod.Vars {
		if v.Kind == Continuous {
			continue
		}
		f := x[i] - math.Floor(x[i])
		dist := math.Min(f, 1-f)
		if dist <= tol {
			continue
		}
		if v.Priority > bestPrio || (v.Priority == bestPrio && dist > bestDist) {
			best = i
			bestDist = dist
			bestPrio = v.Priority
		}
	}
	return best
}

// snap rounds near-integral entries of integral variables exactly.
func snap(mod *Model, x []float64, tol float64) []float64 {
	out := append([]float64(nil), x...)
	for i, v := range mod.Vars {
		if v.Kind == Continuous {
			continue
		}
		r := math.Round(out[i])
		if math.Abs(out[i]-r) <= 10*tol {
			out[i] = r
		}
	}
	return out
}
