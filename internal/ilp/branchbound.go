package ilp

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Status is the outcome of a MILP solve.
type Status int

// MILP outcomes.
const (
	StatusOptimal    Status = iota // proven optimal
	StatusFeasible                 // incumbent found, search truncated
	StatusInfeasible               // no integral feasible point exists
	StatusUnbounded
	StatusNoSolution // search truncated before any incumbent was found
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusFeasible:
		return "feasible"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusNoSolution:
		return "no-solution"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// ProgressKind labels a solver progress event.
type ProgressKind int

// Progress event kinds.
const (
	// EventIncumbent fires when the search finds a new best integral point.
	EventIncumbent ProgressKind = iota
	// EventDone fires exactly once, after the search finishes.
	EventDone
)

// ProgressEvent is one solver milestone reported to Options.Progress.
type ProgressEvent struct {
	Kind ProgressKind
	// Nodes and LPIters are the exploration counters at event time.
	Nodes   int
	LPIters int
	// Obj is the incumbent objective (meaningless before the first
	// incumbent); Gap the relative optimality gap when known.
	Obj float64
	Gap float64
}

// Options tunes the branch-and-bound search.
type Options struct {
	// MaxNodes caps explored B&B nodes (0 = default 200000).
	MaxNodes int
	// Deadline aborts the search when exceeded (zero = none). On abort the
	// best incumbent is returned with StatusFeasible.
	Deadline time.Time
	// IntTol is the integrality tolerance (default 1e-6).
	IntTol float64
	// Incumbent optionally provides a known feasible point to prune with.
	Incumbent []float64
	// RelGap terminates the search once the relative optimality gap of the
	// incumbent drops to or below this value (0 = prove optimality).
	RelGap float64
	// Progress, when non-nil, receives one event per incumbent improvement
	// and a final summary event. The hook runs inline on the solve loop and
	// must be cheap; a nil hook costs a single pointer test (nothing is
	// allocated on the hot path).
	Progress func(ProgressEvent)
}

// Result is the outcome of Solve.
type Result struct {
	Status Status
	X      []float64
	Obj    float64
	// Nodes is the number of B&B nodes explored; LPIters the total simplex
	// iterations across relaxations.
	Nodes   int
	LPIters int
	// Gap is the final relative optimality gap (0 when proven optimal).
	Gap float64
	// Incumbents counts integral improvements found during the search
	// (seeded Options.Incumbent points are not counted).
	Incumbents int
	// TimedOut and NodeCapped report why a truncated search stopped:
	// the Options.Deadline passed or the MaxNodes budget ran out.
	TimedOut   bool
	NodeCapped bool
}

// bbNode is one open branch-and-bound subproblem.
type bbNode struct {
	lo, hi []float64
	bound  float64 // LP relaxation value (lower bound for minimization)
	depth  int
}

type nodeHeap []*bbNode

func (h nodeHeap) Len() int      { return len(h) }
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].bound != h[j].bound {
		return h[i].bound < h[j].bound
	}
	return h[i].depth > h[j].depth // deeper first among equal bounds
}
func (h *nodeHeap) Push(x any) { *h = append(*h, x.(*bbNode)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Solve minimizes the model's objective subject to its constraints, bounds
// and integrality requirements.
func Solve(mod *Model, opt Options) Result {
	res := solve(mod, opt)
	if opt.Progress != nil {
		opt.Progress(ProgressEvent{
			Kind:    EventDone,
			Nodes:   res.Nodes,
			LPIters: res.LPIters,
			Obj:     res.Obj,
			Gap:     res.Gap,
		})
	}
	return res
}

// noteIncumbent records an integral improvement and fires the progress
// hook when one is installed.
func noteIncumbent(opt *Options, res *Result) {
	res.Incumbents++
	if opt.Progress != nil {
		opt.Progress(ProgressEvent{
			Kind:    EventIncumbent,
			Nodes:   res.Nodes,
			LPIters: res.LPIters,
			Obj:     res.Obj,
		})
	}
}

func solve(mod *Model, opt Options) Result {
	if err := mod.Validate(); err != nil {
		return Result{Status: StatusInfeasible}
	}
	if opt.MaxNodes == 0 {
		opt.MaxNodes = 200000
	}
	if opt.IntTol == 0 {
		opt.IntTol = 1e-6
	}
	res := Result{Status: StatusNoSolution, Obj: math.Inf(1)}
	if opt.Incumbent != nil {
		if err := mod.Feasible(opt.Incumbent, 1e-6); err == nil {
			res.Status = StatusFeasible
			res.X = append([]float64(nil), opt.Incumbent...)
			res.Obj = mod.Objective(opt.Incumbent)
		}
	}

	n := len(mod.Vars)
	rootLo := make([]float64, n)
	rootHi := make([]float64, n)
	for i, v := range mod.Vars {
		rootLo[i], rootHi[i] = v.Lo, v.Hi
	}
	rootLP := solveLP(mod, rootLo, rootHi, opt.Deadline)
	res.LPIters += rootLP.Iters
	switch rootLP.Status {
	case LPInfeasible:
		if res.Status == StatusFeasible {
			return res // trust the provided incumbent
		}
		res.Status = StatusInfeasible
		return res
	case LPUnbounded:
		res.Status = StatusUnbounded
		return res
	case LPIterLimit:
		return res
	}

	// Phase 1: depth-first search until a first incumbent exists. DFS with
	// backtracking reaches integral leaves quickly, unlike pure best-first
	// which can spread across an exponential frontier when the relaxation
	// is symmetric.
	dfsBudget := opt.MaxNodes / 4
	if dfsBudget < 200 {
		dfsBudget = 200
	}
	if dfsBudget > opt.MaxNodes {
		// Tiny node budgets (design-space sweeps run with MaxNodes ~20)
		// must bound the incumbent dive too, or phase 1 alone costs 200
		// LP solves per ILP regardless of the cap.
		dfsBudget = opt.MaxNodes
	}
	dfsForIncumbent(mod, rootLo, rootHi, rootLP, opt, &res, dfsBudget)

	// Phase 2: best-first search for optimality (or the requested gap).
	open := &nodeHeap{{lo: rootLo, hi: rootHi, bound: rootLP.Obj}}
	heap.Init(open)

	gapOK := func(bound float64) bool {
		if res.Status != StatusFeasible {
			return false
		}
		gap := (res.Obj - bound) / math.Max(1e-9, math.Abs(res.Obj))
		return gap <= opt.RelGap
	}

	truncated := false
	for open.Len() > 0 {
		if res.Nodes >= opt.MaxNodes {
			truncated = true
			res.NodeCapped = true
			break
		}
		if !opt.Deadline.IsZero() && time.Now().After(opt.Deadline) { //repolint:allow timenow (solver deadline check)
			truncated = true
			res.TimedOut = true
			break
		}
		node := heap.Pop(open).(*bbNode)
		if node.bound >= res.Obj-1e-9 {
			continue // pruned by incumbent
		}
		if gapOK(node.bound) {
			// node.bound is the minimum over the frontier (heap order), so
			// the global bound proves the incumbent is within RelGap.
			res.Gap = (res.Obj - node.bound) / math.Max(1e-9, math.Abs(res.Obj))
			return res
		}
		res.Nodes++
		lp := solveLP(mod, node.lo, node.hi, opt.Deadline)
		res.LPIters += lp.Iters
		if lp.Status != LPOptimal {
			continue // infeasible/limit: prune
		}
		if lp.Obj >= res.Obj-1e-9 {
			continue
		}
		frac := pickBranchVar(mod, lp.X, opt.IntTol)
		if frac < 0 {
			// Integral: new incumbent. Snap to exact integers first.
			x := snap(mod, lp.X, opt.IntTol)
			if err := mod.Feasible(x, 1e-5); err == nil {
				obj := mod.Objective(x)
				if obj < res.Obj {
					res.Obj = obj
					res.X = x
					res.Status = StatusFeasible
					noteIncumbent(&opt, &res)
				}
			}
			continue
		}
		v := lp.X[frac]
		floorV := math.Floor(v)
		// Down branch: x <= floor(v).
		dnHi := append([]float64(nil), node.hi...)
		dnHi[frac] = floorV
		heap.Push(open, &bbNode{lo: node.lo, hi: dnHi, bound: lp.Obj, depth: node.depth + 1})
		// Up branch: x >= ceil(v).
		upLo := append([]float64(nil), node.lo...)
		upLo[frac] = floorV + 1
		heap.Push(open, &bbNode{lo: upLo, hi: node.hi, bound: lp.Obj, depth: node.depth + 1})
	}

	if !truncated && open.Len() == 0 && res.Status == StatusFeasible {
		res.Status = StatusOptimal
		res.Gap = 0
		return res
	}
	if !truncated && res.Status == StatusNoSolution && open.Len() == 0 {
		res.Status = StatusInfeasible
		return res
	}
	// Truncated: compute the remaining gap.
	if open.Len() > 0 && res.Status == StatusFeasible && math.Abs(res.Obj) > 1e-12 {
		bestBound := (*open)[0].bound
		res.Gap = (res.Obj - bestBound) / math.Max(1e-9, math.Abs(res.Obj))
		if res.Gap < 0 {
			res.Gap = 0
		}
	}
	return res
}

// dfsForIncumbent explores depth-first (rounding-guided child first) until
// it finds one integral feasible point or exhausts its LP-solve budget.
func dfsForIncumbent(mod *Model, rootLo, rootHi []float64, rootLP LPResult,
	opt Options, res *Result, budget int) {
	if res.Status == StatusFeasible {
		return // caller-provided incumbent suffices
	}
	type dfsNode struct {
		lo, hi []float64
		// lp, when non-nil, is the already-solved relaxation of this node.
		lp *LPResult
	}
	stack := []dfsNode{{lo: rootLo, hi: rootHi, lp: &rootLP}}
	for len(stack) > 0 && budget > 0 {
		if !opt.Deadline.IsZero() && time.Now().After(opt.Deadline) { //repolint:allow timenow (solver deadline check)
			return
		}
		node := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		lp := node.lp
		if lp == nil {
			budget--
			solved := solveLP(mod, node.lo, node.hi, opt.Deadline)
			res.LPIters += solved.Iters
			lp = &solved
		}
		if lp.Status != LPOptimal || lp.Obj >= res.Obj-1e-9 {
			continue
		}
		frac := pickBranchVar(mod, lp.X, opt.IntTol)
		if frac < 0 {
			x := snap(mod, lp.X, opt.IntTol)
			if err := mod.Feasible(x, 1e-5); err == nil {
				if obj := mod.Objective(x); obj < res.Obj {
					res.Obj = obj
					res.X = x
					res.Status = StatusFeasible
					noteIncumbent(&opt, res)
				}
				return
			}
			continue
		}
		v := lp.X[frac]
		floorV := math.Floor(v)
		dnHi := append([]float64(nil), node.hi...)
		dnHi[frac] = floorV
		upLo := append([]float64(nil), node.lo...)
		upLo[frac] = floorV + 1
		down := dfsNode{lo: node.lo, hi: dnHi}
		up := dfsNode{lo: upLo, hi: node.hi}
		// Push the less likely child first so the rounding-preferred child
		// is explored next (LIFO).
		if v-floorV >= 0.5 {
			stack = append(stack, down, up)
		} else {
			stack = append(stack, up, down)
		}
	}
}

// pickBranchVar returns the fractional integral variable to branch on:
// the most fractional one within the highest priority class that has any
// fractional variable. Returns -1 when the point is integral.
func pickBranchVar(mod *Model, x []float64, tol float64) int {
	best := -1
	bestDist := tol
	bestPrio := math.MinInt32
	for i, v := range mod.Vars {
		if v.Kind == Continuous {
			continue
		}
		f := x[i] - math.Floor(x[i])
		dist := math.Min(f, 1-f)
		if dist <= tol {
			continue
		}
		if v.Priority > bestPrio || (v.Priority == bestPrio && dist > bestDist) {
			best = i
			bestDist = dist
			bestPrio = v.Priority
		}
	}
	return best
}

// snap rounds near-integral entries of integral variables exactly.
func snap(mod *Model, x []float64, tol float64) []float64 {
	out := append([]float64(nil), x...)
	for i, v := range mod.Vars {
		if v.Kind == Continuous {
			continue
		}
		r := math.Round(out[i])
		if math.Abs(out[i]-r) <= 10*tol {
			out[i] = r
		}
	}
	return out
}
