package ilp

import (
	"testing"
	"time"
)

// The final-gap contract: Result.Gap is recomputed on every exit path —
// zero on proven optimality, the distance to the best remaining frontier
// (or iteration-capped) bound on any truncated exit.

// TestGapZeroOnOptimal: proving optimality must report a zero gap.
func TestGapZeroOnOptimal(t *testing.T) {
	m := BenchKnapsackModel(24, 3)
	res := Solve(m, Options{})
	if res.Status != StatusOptimal {
		t.Fatalf("status %v, want optimal", res.Status)
	}
	if res.Gap != 0 {
		t.Errorf("optimal solve reported gap %g, want 0", res.Gap)
	}
}

// TestGapOnNodeCap: a search truncated by MaxNodes with an incumbent in
// hand must flag NodeCapped and report a positive, finite gap derived
// from the remaining frontier.
func TestGapOnNodeCap(t *testing.T) {
	m := BenchKnapsackModel(60, 7)
	res := Solve(m, Options{MaxNodes: 40})
	if res.Status != StatusFeasible {
		t.Fatalf("status %v, want feasible (truncated)", res.Status)
	}
	if !res.NodeCapped {
		t.Error("NodeCapped not set on MaxNodes truncation")
	}
	if !(res.Gap > 0) || res.Gap > 10 {
		t.Errorf("truncated exit gap %g, want in (0, 10]", res.Gap)
	}
}

// TestGapOnRelGapExit: stopping at a target gap must report a gap no
// worse than the target.
func TestGapOnRelGapExit(t *testing.T) {
	m := BenchChunkModel()
	res := Solve(m, Options{MaxNodes: 3000, RelGap: 0.25})
	if res.Status != StatusFeasible && res.Status != StatusOptimal {
		t.Fatalf("status %v, want a solution", res.Status)
	}
	if res.Status == StatusFeasible && res.Gap > 0.25+1e-9 {
		t.Errorf("RelGap=0.25 exit reported gap %g", res.Gap)
	}
	if res.Status == StatusOptimal && res.Gap != 0 {
		t.Errorf("optimal exit reported gap %g, want 0", res.Gap)
	}
}

// TestGapOnDeadline: an expired deadline with a seeded incumbent must
// return the incumbent as feasible, flag the timeout, and still report a
// gap against the root bound rather than a stale zero.
func TestGapOnDeadline(t *testing.T) {
	m := BenchKnapsackModel(40, 11)
	opt := Solve(m, Options{})
	if opt.Status != StatusOptimal {
		t.Fatalf("reference solve: %v", opt.Status)
	}
	res := Solve(m, Options{
		Deadline:  time.Now().Add(-time.Second), //repolint:allow timenow (constructing an already-expired deadline)
		Incumbent: opt.X,
	})
	if res.Status != StatusFeasible {
		t.Fatalf("status %v, want feasible from seeded incumbent", res.Status)
	}
	if !res.TimedOut {
		t.Error("TimedOut not set on expired deadline")
	}
	if res.Gap < 0 {
		t.Errorf("deadline exit gap %g, want >= 0", res.Gap)
	}
}
