package ilp

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// TestQuickMergeTermsInvariants: merging preserves the linear functional
// and never leaves duplicate or zero-coefficient terms.
func TestQuickMergeTermsInvariants(t *testing.T) {
	f := func(coeffs []int8, vars []uint8) bool {
		n := len(coeffs)
		if len(vars) < n {
			n = len(vars)
		}
		terms := make([]Term, 0, n)
		for i := 0; i < n; i++ {
			terms = append(terms, Term{Var: VarID(vars[i] % 8), Coeff: float64(coeffs[i])})
		}
		merged := mergeTerms(terms)
		// No duplicates, no zeros.
		seen := map[VarID]bool{}
		for _, m := range merged {
			if m.Coeff == 0 {
				return false
			}
			if seen[m.Var] {
				return false
			}
			seen[m.Var] = true
		}
		// Same functional at an arbitrary point x_v = v+1.
		eval := func(ts []Term) float64 {
			s := 0.0
			for _, t := range ts {
				s += t.Coeff * float64(t.Var+1)
			}
			return s
		}
		return math.Abs(eval(terms)-eval(merged)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickObjectiveLinearity: Objective is linear in each coordinate.
func TestQuickObjectiveLinearity(t *testing.T) {
	m := NewModel()
	a := m.AddVar("a", 0, 10, 2)
	b := m.AddVar("b", 0, 10, -3)
	c := m.AddBinary("c", 5)
	_ = a
	_ = b
	_ = c
	f := func(x0, x1, x2, y0, y1, y2 float64) bool {
		x := []float64{x0, x1, x2}
		y := []float64{y0, y1, y2}
		sum := []float64{x0 + y0, x1 + y1, x2 + y2}
		lhs := m.Objective(sum)
		rhs := m.Objective(x) + m.Objective(y)
		if math.IsNaN(lhs) || math.IsInf(lhs, 0) {
			return true // overflow inputs are out of scope
		}
		return math.Abs(lhs-rhs) <= 1e-6*(1+math.Abs(lhs))
	}
	cfg := &quick.Config{
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(rng.Float64()*200 - 100)
			}
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSolveNeverBeatsPlantedOptimum: for random binary models built
// around a planted feasible point, the solver's optimum is never worse
// than the planted point (and its solution is always feasible).
func TestQuickSolveNeverBeatsPlantedOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 120; trial++ {
		m := NewModel()
		n := 2 + rng.Intn(6)
		planted := make([]float64, n)
		for i := 0; i < n; i++ {
			m.AddBinary("b", float64(rng.Intn(15)-7))
			planted[i] = float64(rng.Intn(2))
		}
		for c := 0; c < 1+rng.Intn(4); c++ {
			var terms []Term
			lhs := 0.0
			for i := 0; i < n; i++ {
				coeff := float64(rng.Intn(9) - 4)
				terms = append(terms, Term{VarID(i), coeff})
				lhs += coeff * planted[i]
			}
			if rng.Intn(2) == 0 {
				m.AddCons("le", terms, LE, lhs)
			} else {
				m.AddCons("ge", terms, GE, lhs)
			}
		}
		res := Solve(m, Options{})
		if res.Status != StatusOptimal {
			t.Fatalf("trial %d: %v (planted point exists)", trial, res.Status)
		}
		if err := m.Feasible(res.X, 1e-6); err != nil {
			t.Fatalf("trial %d: solution infeasible: %v", trial, err)
		}
		if res.Obj > m.Objective(planted)+1e-6 {
			t.Fatalf("trial %d: obj %g worse than planted %g", trial, res.Obj, m.Objective(planted))
		}
	}
}
