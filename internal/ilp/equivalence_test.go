package ilp

import (
	"fmt"
	"math"
	"testing"
	"time"
)

// ---- seeded model generation ----------------------------------------

// eqvRng is a splitmix64 stream for deterministic model generation.
type eqvRng struct{ s uint64 }

func (r *eqvRng) next() uint64 {
	r.s++
	return mix64(r.s)
}

// f64 returns a uniform float in [0, 1).
func (r *eqvRng) f64() float64 { return float64(r.next()>>11) / (1 << 53) }

// intn returns a uniform int in [0, n).
func (r *eqvRng) intn(n int) int { return int(r.next() % uint64(n)) }

// randomModel builds a feasible bounded model: every constraint's RHS is
// derived from a reference point inside the box, so the dense reference
// and the revised solver must both report LPOptimal.
func randomModel(seed uint64, nVars, nCons int, integral bool) *Model {
	rng := &eqvRng{s: seed * 0x9e3779b97f4a7c15}
	m := NewModel()
	ref := make([]float64, nVars)
	for j := 0; j < nVars; j++ {
		hi := 1 + float64(rng.intn(9))
		obj := math.Round((rng.f64()*20-5)*8) / 8
		if integral && rng.intn(3) > 0 {
			m.AddInt(fmt.Sprintf("x%d", j), 0, hi, obj)
		} else {
			m.AddVar(fmt.Sprintf("x%d", j), 0, hi, obj)
		}
		ref[j] = rng.f64() * hi
	}
	for i := 0; i < nCons; i++ {
		nTerms := 2 + rng.intn(nVars/2+1)
		var terms []Term
		act := 0.0
		seen := map[int]bool{}
		for len(terms) < nTerms {
			j := rng.intn(nVars)
			if seen[j] {
				continue
			}
			seen[j] = true
			c := math.Round((rng.f64()*8-3)*4) / 4
			if c == 0 {
				c = 1
			}
			terms = append(terms, Term{Var: VarID(j), Coeff: c})
			act += c * ref[j]
		}
		switch rng.intn(3) {
		case 0:
			m.AddCons(fmt.Sprintf("le%d", i), terms, LE, act+rng.f64()*2)
		case 1:
			m.AddCons(fmt.Sprintf("ge%d", i), terms, GE, act-rng.f64()*2)
		default:
			m.AddCons(fmt.Sprintf("eq%d", i), terms, EQ, act)
		}
	}
	return m
}

// ---- LP equivalence: dense reference vs revised simplex -------------

func objClose(a, b float64) bool {
	return math.Abs(a-b) <= 1e-4*(1+math.Max(math.Abs(a), math.Abs(b)))
}

// TestLPEquivalenceSeeded solves a spread of seeded random relaxations
// with both engines and requires identical status and matching optima.
func TestLPEquivalenceSeeded(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		nVars := 4 + int(seed%13)
		nCons := 3 + int((seed*7)%11)
		m := randomModel(seed, nVars, nCons, false)
		ref := densSolveLP(m, nil, nil)
		got := SolveRelaxation(m)
		if ref.Status != LPOptimal || got.Status != LPOptimal {
			t.Fatalf("seed %d: status dense=%v revised=%v", seed, ref.Status, got.Status)
		}
		if !objClose(ref.Obj, got.Obj) {
			t.Errorf("seed %d: objective dense=%.9g revised=%.9g", seed, ref.Obj, got.Obj)
		}
	}
}

// TestLPEquivalenceBranchBounds replays branch-and-bound-style bound
// overrides — the warm-start path's input — against the dense reference.
func TestLPEquivalenceBranchBounds(t *testing.T) {
	for seed := uint64(1); seed <= 15; seed++ {
		m := randomModel(seed+100, 8+int(seed%6), 6+int(seed%5), true)
		base := SolveRelaxation(m)
		if base.Status != LPOptimal {
			continue
		}
		// Branch on the first fractional integer variable both ways.
		frac := pickBranchVar(m, base.X, 1e-6)
		if frac < 0 {
			continue
		}
		v := base.X[frac]
		n := m.NumVars()
		for dir := 0; dir < 2; dir++ {
			lo := make([]float64, n)
			hi := make([]float64, n)
			for j := range lo {
				lo[j] = math.Inf(-1)
				hi[j] = math.Inf(1)
			}
			if dir == 0 {
				hi[frac] = math.Floor(v)
			} else {
				lo[frac] = math.Ceil(v)
			}
			ref := densSolveLP(m, lo, hi)
			got := solveLP(m, lo, hi, time.Time{})
			if ref.Status != got.Status {
				t.Fatalf("seed %d dir %d: status dense=%v revised=%v", seed, dir, ref.Status, got.Status)
			}
			if ref.Status == LPOptimal && !objClose(ref.Obj, got.Obj) {
				t.Errorf("seed %d dir %d: objective dense=%.9g revised=%.9g", seed, dir, ref.Obj, got.Obj)
			}
		}
	}
}

// TestLPEquivalenceProductionModels checks the engines agree on the
// models the parallelizer actually emits.
func TestLPEquivalenceProductionModels(t *testing.T) {
	models := map[string]*Model{
		"chunk":      BenchChunkModel(),
		"knapsack":   BenchKnapsackModel(24, 3),
		"assignment": BenchAssignmentModel(8, 3, 2),
	}
	for name, m := range models {
		ref := densSolveLP(m, nil, nil)
		got := SolveRelaxation(m)
		if ref.Status != got.Status {
			t.Fatalf("%s: status dense=%v revised=%v", name, ref.Status, got.Status)
		}
		if ref.Status == LPOptimal && !objClose(ref.Obj, got.Obj) {
			t.Errorf("%s: objective dense=%.9g revised=%.9g", name, ref.Obj, got.Obj)
		}
	}
}

// ---- MILP correctness against brute force ---------------------------

// TestMILPMatchesBruteForce cross-checks full branch-and-bound solves
// against exhaustive enumeration on small seeded binary models.
func TestMILPMatchesBruteForce(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		rng := &eqvRng{s: seed * 31}
		m := NewModel()
		n := 8 + int(seed%5)
		ref := make([]float64, n)
		for j := 0; j < n; j++ {
			m.AddBinary(fmt.Sprintf("b%d", j), math.Round((rng.f64()*20-6)*4)/4)
			ref[j] = float64(rng.intn(2))
		}
		for i := 0; i < 4+int(seed%4); i++ {
			var terms []Term
			act := 0.0
			for j := 0; j < n; j++ {
				if rng.intn(2) == 0 {
					continue
				}
				c := float64(1 + rng.intn(4))
				terms = append(terms, Term{Var: VarID(j), Coeff: c})
				act += c * ref[j]
			}
			if len(terms) < 2 {
				continue
			}
			m.AddCons(fmt.Sprintf("c%d", i), terms, LE, act+float64(rng.intn(3)))
		}
		want, _ := bruteForceBinary(m)
		res := Solve(m, Options{})
		if math.IsInf(want, 1) {
			if res.Status != StatusInfeasible && res.Status != StatusNoSolution {
				t.Errorf("seed %d: brute force infeasible, solver %v obj=%g", seed, res.Status, res.Obj)
			}
			continue
		}
		if res.Status != StatusOptimal {
			t.Fatalf("seed %d: status %v, want optimal (brute force %g)", seed, res.Status, want)
		}
		if !objClose(res.Obj, want) {
			t.Errorf("seed %d: solver obj %.9g, brute force %.9g", seed, res.Obj, want)
		}
	}
}

// ---- parallel search determinism ------------------------------------

// resultKey serializes everything that must be reproducible: status,
// objective and solution bit patterns, and every effort counter.
func resultKey(res Result) string {
	s := fmt.Sprintf("st=%v obj=%x nodes=%d lpIters=%d/%d/%d/%d cuts=%d warm=%d/%d inc=%d gap=%x",
		res.Status, math.Float64bits(res.Obj), res.Nodes,
		res.LPIters, res.LPItersRoot, res.LPItersDive, res.LPItersSearch,
		res.Cuts, res.WarmHits, res.WarmStarts, res.Incumbents, math.Float64bits(res.Gap))
	for _, v := range res.X {
		s += fmt.Sprintf(" %x", math.Float64bits(v))
	}
	return s
}

// TestParallelDeterminism requires the worker pool to produce bitwise
// identical results run-to-run for a fixed (Workers, Seed): batch items
// are pinned to solvers, the incumbent cutoff is frozen per round, and
// results fold in frontier order, so goroutine scheduling never reaches
// the numerics. (Different worker counts may legitimately differ on
// truncated searches: each width explores a different node sequence.)
func TestParallelDeterminism(t *testing.T) {
	models := map[string]*Model{
		"chunk":    BenchChunkModel(),
		"knapsack": BenchKnapsackModel(40, 11),
	}
	widths := []int{1, 2, 4}
	maxNodes := 800
	if testing.Short() {
		// Keep the race-detector run (make race) in seconds: one width,
		// smaller budget — the full matrix runs in plain `go test`.
		delete(models, "chunk")
		models["chunk-small"] = BenchAssignmentModel(10, 3, 5)
		widths = []int{2}
		maxNodes = 200
	}
	for name, m := range models {
		for _, workers := range widths {
			opt := Options{MaxNodes: maxNodes, RelGap: 0.02, Seed: 42, Workers: workers}
			a := resultKey(Solve(m, opt))
			b := resultKey(Solve(m, opt))
			if a != b {
				t.Errorf("%s workers=%d: two runs differ:\n%s\n%s", name, workers, a, b)
			}
		}
	}
}

// TestParallelDeterminismSeedSensitivity pins down that Seed changes the
// tie-break order (so it is actually wired through) without changing the
// objective on a model solved to optimality.
func TestParallelDeterminismSeedSensitivity(t *testing.T) {
	m := BenchKnapsackModel(40, 11)
	a := Solve(m, Options{Workers: 2, Seed: 1})
	b := Solve(m, Options{Workers: 2, Seed: 99})
	if a.Status != StatusOptimal || b.Status != StatusOptimal {
		t.Fatalf("status %v / %v, want optimal", a.Status, b.Status)
	}
	if !objClose(a.Obj, b.Obj) {
		t.Errorf("objective depends on seed: %.9g vs %.9g", a.Obj, b.Obj)
	}
}
