package ilp

// The dense two-phase tableau simplex this package shipped before the
// revised-simplex rewrite, kept verbatim (modulo renames) as a test-only
// reference implementation. The equivalence suite solves the same
// relaxations with both engines and requires the objectives to agree to
// the audit tolerance — the strongest guard that the sparse rewrite
// changed the cost of solving, not the solutions.

import (
	"math"
)

// dense simplex variable status
const (
	densAtLower = iota
	densAtUpper
	densInBasis
)

// densTableau is one dense bounded-variable tableau instance.
type densTableau struct {
	m, n   int         // rows, total columns (structural+slack+artificial)
	nOrig  int         // structural variable count
	tab    [][]float64 // m x n: B^-1 A
	arhs   []float64   // current values of basic variables per row
	basis  []int       // column basic in each row
	status []int       // per column
	row    []int       // column -> row when basic
	up     []float64   // upper bounds in shifted space
	cost   []float64   // phase-2 costs in shifted space
	shift  []float64   // original lower bounds of structural vars
	iters  int
	bland  bool
}

// densSolveLP solves the LP relaxation of mod with the given bound
// overrides (nil to use model bounds) using the dense reference engine.
func densSolveLP(mod *Model, loOv, hiOv []float64) LPResult {
	m := len(mod.Cons)
	nOrig := len(mod.Vars)

	lo := make([]float64, nOrig)
	hi := make([]float64, nOrig)
	for i, v := range mod.Vars {
		lo[i], hi[i] = v.Lo, v.Hi
		if loOv != nil && loOv[i] > lo[i] {
			lo[i] = loOv[i]
		}
		if hiOv != nil && hiOv[i] < hi[i] {
			hi[i] = hiOv[i]
		}
		if lo[i] > hi[i]+epsFeas {
			return LPResult{Status: LPInfeasible}
		}
	}

	// Shifted space: x' = x - lo, u' = hi - lo, rhs' = rhs - A*lo.
	type rowSpec struct {
		coeff map[int]float64
		sense Sense
		rhs   float64
	}
	rows := make([]rowSpec, m)
	for i := range mod.Cons {
		c := &mod.Cons[i]
		rs := rowSpec{coeff: map[int]float64{}, sense: c.Sense, rhs: c.RHS}
		for _, t := range c.Terms {
			rs.coeff[int(t.Var)] += t.Coeff
			rs.rhs -= t.Coeff * lo[t.Var]
		}
		rows[i] = rs
	}
	// Row equilibration, as in the production compile step.
	for i := range rows {
		maxc := 0.0
		for _, c := range rows[i].coeff { //repolint:allow maprange (max reduction, order-insensitive)
			if a := math.Abs(c); a > maxc {
				maxc = a
			}
		}
		if maxc > 0 && (maxc > 16 || maxc < 1.0/16) {
			inv := 1 / maxc
			for j := range rows[i].coeff { //repolint:allow maprange (uniform scaling, order-insensitive)
				rows[i].coeff[j] *= inv
			}
			rows[i].rhs *= inv
		}
	}
	// Normalize rhs >= 0.
	for i := range rows {
		if rows[i].rhs < 0 {
			for j := range rows[i].coeff { //repolint:allow maprange (uniform negation, order-insensitive)
				rows[i].coeff[j] = -rows[i].coeff[j]
			}
			rows[i].rhs = -rows[i].rhs
			switch rows[i].sense {
			case LE:
				rows[i].sense = GE
			case GE:
				rows[i].sense = LE
			}
		}
	}
	// Column layout: structural | slacks/surplus | artificials.
	nSlack := 0
	for _, r := range rows {
		if r.sense != EQ {
			nSlack++
		}
	}
	nArt := 0
	for _, r := range rows {
		if r.sense != LE {
			nArt++
		}
	}
	n := nOrig + nSlack + nArt
	sx := &densTableau{
		m: m, n: n, nOrig: nOrig,
		tab:    make([][]float64, m),
		arhs:   make([]float64, m),
		basis:  make([]int, m),
		status: make([]int, n),
		row:    make([]int, n),
		up:     make([]float64, n),
		cost:   make([]float64, n),
		shift:  lo,
	}
	for j := 0; j < n; j++ {
		sx.row[j] = -1
		sx.up[j] = math.Inf(1)
	}
	for j := 0; j < nOrig; j++ {
		sx.up[j] = hi[j] - lo[j]
		sx.cost[j] = mod.Vars[j].Obj
	}
	slackAt := nOrig
	artAt := nOrig + nSlack
	for i, r := range rows {
		t := make([]float64, n)
		for j, c := range r.coeff { //repolint:allow maprange (scatter to dense row, order-insensitive)
			t[j] = c
		}
		switch r.sense {
		case LE:
			t[slackAt] = 1
			sx.basis[i] = slackAt
			slackAt++
		case GE:
			t[slackAt] = -1
			slackAt++
			t[artAt] = 1
			sx.basis[i] = artAt
			artAt++
		case EQ:
			t[artAt] = 1
			sx.basis[i] = artAt
			artAt++
		}
		sx.tab[i] = t
		sx.arhs[i] = r.rhs
		sx.status[sx.basis[i]] = densInBasis
		sx.row[sx.basis[i]] = i
	}

	// Phase 1: minimize sum of artificials.
	if nArt > 0 {
		phase1 := make([]float64, n)
		for j := nOrig + nSlack; j < n; j++ {
			phase1[j] = 1
		}
		st := sx.run(phase1)
		if st == LPIterLimit {
			return LPResult{Status: LPIterLimit, Iters: sx.iters}
		}
		sum := 0.0
		maxRhs := 0.0
		for i := range sx.arhs {
			if sx.basis[i] >= nOrig+nSlack {
				sum += sx.arhs[i]
			}
			if a := math.Abs(sx.arhs[i]); a > maxRhs {
				maxRhs = a
			}
		}
		if st == LPUnbounded {
			// Phase-1 objective is bounded below by 0; unbounded indicates
			// a numerical failure.
			return LPResult{Status: LPIterLimit, Iters: sx.iters}
		}
		if sum > 1e-6*(1+maxRhs) {
			return LPResult{Status: LPInfeasible, Iters: sx.iters}
		}
		// Freeze artificials at zero.
		for j := nOrig + nSlack; j < n; j++ {
			sx.up[j] = 0
		}
	}

	// Phase 2 with the real objective.
	st := sx.run(sx.cost)
	if st == LPIterLimit {
		return LPResult{Status: LPIterLimit, Iters: sx.iters}
	}
	if st == LPUnbounded {
		return LPResult{Status: LPUnbounded, Iters: sx.iters}
	}
	// Extract the solution in original space.
	x := make([]float64, nOrig)
	for j := 0; j < nOrig; j++ {
		var v float64
		switch sx.status[j] {
		case densInBasis:
			v = sx.arhs[sx.row[j]]
		case densAtUpper:
			v = sx.up[j]
		default:
			v = 0
		}
		x[j] = v + lo[j]
	}
	obj := 0.0
	for j, v := range mod.Vars {
		obj += v.Obj * x[j]
	}
	return LPResult{Status: LPOptimal, X: x, Obj: obj, Iters: sx.iters}
}

// run optimizes the given cost vector over the current basis, returning
// LPOptimal, LPUnbounded or LPIterLimit.
func (sx *densTableau) run(cost []float64) LPStatus {
	// Reduced costs dj = c_j - cB^T tab[:,j], computed fresh.
	dj := make([]float64, sx.n)
	copy(dj, cost)
	for i := 0; i < sx.m; i++ {
		cb := cost[sx.basis[i]]
		if cb == 0 {
			continue
		}
		trow := sx.tab[i]
		for j := 0; j < sx.n; j++ {
			dj[j] -= cb * trow[j]
		}
	}
	maxItersD := 60*(sx.m+sx.n) + 2000
	blandAfter := 8*(sx.m+sx.n) + 300
	localIters := 0
	for {
		sx.iters++
		localIters++
		if localIters > maxItersD {
			return LPIterLimit
		}
		if localIters > blandAfter {
			sx.bland = true
		}
		// Periodically recompute reduced costs from scratch: incremental
		// updates accumulate error over long degenerate stretches.
		if localIters%64 == 0 {
			copy(dj, cost)
			for i := 0; i < sx.m; i++ {
				cb := cost[sx.basis[i]]
				if cb == 0 {
					continue
				}
				trow := sx.tab[i]
				for j := 0; j < sx.n; j++ {
					dj[j] -= cb * trow[j]
				}
			}
		}
		// Entering variable. Variables with no movement range (frozen
		// artificials) are never eligible.
		e := -1
		var dir float64
		best := -epsCost
		for j := 0; j < sx.n; j++ {
			if sx.status[j] != densInBasis && sx.up[j] <= 0 {
				continue
			}
			switch sx.status[j] {
			case densAtLower:
				if dj[j] < best {
					e, dir, best = j, 1, dj[j]
					if sx.bland {
						goto chosen
					}
				}
			case densAtUpper:
				if -dj[j] < best {
					e, dir, best = j, -1, -dj[j]
					if sx.bland {
						goto chosen
					}
				}
			}
		}
	chosen:
		if e < 0 {
			return LPOptimal
		}
		// Two-pass (Harris-style) ratio test.
		const ratioTol = 1e-7
		rowLimit := func(i int) (lim float64, to int, mag float64, ok bool) {
			a := dir * sx.tab[i][e]
			mag = math.Abs(a)
			if mag <= epsPivot {
				return 0, 0, 0, false
			}
			if a > 0 {
				lim = sx.arhs[i] / a
				to = densAtLower
			} else {
				ub := sx.up[sx.basis[i]]
				if math.IsInf(ub, 1) {
					return 0, 0, 0, false
				}
				lim = (ub - sx.arhs[i]) / (-a)
				to = densAtUpper
			}
			if lim < 0 {
				lim = 0
			}
			return lim, to, mag, true
		}
		tMax := sx.up[e] // bound-to-bound flip distance
		for i := 0; i < sx.m; i++ {
			if lim, _, _, ok := rowLimit(i); ok && lim < tMax {
				tMax = lim
			}
		}
		if math.IsInf(tMax, 1) {
			return LPUnbounded
		}
		leave := -1
		leaveTo := densAtLower
		bestMag := 0.0
		if tMax < sx.up[e]-epsPivot || tMax <= sx.up[e] {
			for i := 0; i < sx.m; i++ {
				lim, to, mag, ok := rowLimit(i)
				if !ok || lim > tMax+ratioTol*(1+tMax) {
					continue
				}
				switch {
				case sx.bland:
					if leave < 0 || sx.basis[i] < sx.basis[leave] {
						leave, leaveTo, bestMag = i, to, mag
					}
				case mag > bestMag:
					leave, leaveTo, bestMag = i, to, mag
				}
			}
			// A strict bound flip only happens when no row limits the step.
			if leave < 0 && tMax < sx.up[e] {
				tMax = sx.up[e]
			}
		}
		if leave < 0 {
			// Bound flip: e moves to its other bound.
			t := sx.up[e]
			for i := 0; i < sx.m; i++ {
				sx.arhs[i] -= dir * t * sx.tab[i][e]
			}
			if sx.status[e] == densAtLower {
				sx.status[e] = densAtUpper
			} else {
				sx.status[e] = densAtLower
			}
			continue
		}
		// Pivot: update values first.
		t := tMax
		for i := 0; i < sx.m; i++ {
			if i != leave {
				sx.arhs[i] -= dir * t * sx.tab[i][e]
			}
		}
		enterVal := t
		if dir < 0 {
			enterVal = sx.up[e] - t
		}
		lv := sx.basis[leave]
		sx.status[lv] = leaveTo
		sx.row[lv] = -1
		sx.basis[leave] = e
		sx.status[e] = densInBasis
		sx.row[e] = leave
		sx.arhs[leave] = enterVal
		// Gauss-Jordan on the tableau and reduced costs.
		prow := sx.tab[leave]
		piv := prow[e]
		inv := 1 / piv
		for j := 0; j < sx.n; j++ {
			prow[j] *= inv
		}
		prow[e] = 1
		for i := 0; i < sx.m; i++ {
			if i == leave {
				continue
			}
			f := sx.tab[i][e]
			if f == 0 {
				continue
			}
			trow := sx.tab[i]
			for j := 0; j < sx.n; j++ {
				trow[j] -= f * prow[j]
			}
			trow[e] = 0
		}
		f := dj[e]
		if f != 0 {
			for j := 0; j < sx.n; j++ {
				dj[j] -= f * prow[j]
			}
			dj[e] = 0
		}
	}
}
