package ilp

import "math"

// prob is the compiled sparse form of a Model, built once per Solve and
// shared read-only by every branch-and-bound node (and every worker).
//
// All constraints are equalities over an extended column space: row i of
// the original model becomes  a_i·x + s_i = b_i  where s_i is the row's
// slack column with bounds chosen by the original sense:
//
//	LE:  s_i ∈ [0, +inf)
//	GE:  s_i ∈ (-inf, 0]
//	EQ:  s_i ∈ [0, 0]
//
// Structural columns are stored compressed (CSC); slack columns are unit
// vectors and never materialized. Rows are equilibrated (scaled by their
// largest structural coefficient magnitude) so nanosecond-scale cost rows
// and unit assignment rows meet the same tolerances.
type prob struct {
	m       int // rows
	nStruct int // structural columns (the model's variables)
	n       int // total columns: nStruct + m (one slack per row)

	// CSC storage of the structural part of A (after row scaling).
	colPtr []int32
	rowIdx []int32
	colVal []float64

	// CSR mirror of the same entries, for row-wise pricing: the priced
	// row rho = eᵣB⁻ᵀ is sparse, so alpha = rho·[A|I] is scattered from
	// rho's nonzero rows instead of dotted against every column.
	rowPtr []int32
	rowCol []int32
	rowVal []float64

	obj []float64 // structural objective coefficients (slacks cost 0)
	b   []float64 // scaled right-hand sides

	// Default bounds per column (structural from the model, slacks from
	// the sense). Branch-and-bound nodes override the structural part.
	lo, hi []float64

	integral []bool // structural columns required integral
}

// slackCol reports whether column j is a slack and for which row.
func (p *prob) slackCol(j int) (int, bool) {
	if j >= p.nStruct {
		return j - p.nStruct, true
	}
	return -1, false
}

// compile builds the sparse problem from a model.
func compile(mod *Model) *prob {
	m := len(mod.Cons)
	ns := len(mod.Vars)
	p := &prob{
		m:        m,
		nStruct:  ns,
		n:        ns + m,
		obj:      make([]float64, ns),
		b:        make([]float64, m),
		lo:       make([]float64, ns+m),
		hi:       make([]float64, ns+m),
		integral: make([]bool, ns),
	}
	for j, v := range mod.Vars {
		p.obj[j] = v.Obj
		p.lo[j] = v.Lo
		p.hi[j] = v.Hi
		p.integral[j] = v.Kind != Continuous
	}
	// Per-row scale: 1/maxabs coefficient when the row is badly scaled.
	scale := make([]float64, m)
	for i := range mod.Cons {
		maxc := 0.0
		for _, t := range mod.Cons[i].Terms {
			if a := math.Abs(t.Coeff); a > maxc {
				maxc = a
			}
		}
		scale[i] = 1
		if maxc > 0 && (maxc > 16 || maxc < 1.0/16) {
			scale[i] = 1 / maxc
		}
	}
	// Count column occupancy, then fill CSC.
	counts := make([]int32, ns)
	for i := range mod.Cons {
		for _, t := range mod.Cons[i].Terms {
			counts[t.Var]++
		}
	}
	p.colPtr = make([]int32, ns+1)
	for j := 0; j < ns; j++ {
		p.colPtr[j+1] = p.colPtr[j] + counts[j]
	}
	nnz := p.colPtr[ns]
	p.rowIdx = make([]int32, nnz)
	p.colVal = make([]float64, nnz)
	next := make([]int32, ns)
	copy(next, p.colPtr[:ns])
	for i := range mod.Cons {
		c := &mod.Cons[i]
		for _, t := range c.Terms {
			at := next[t.Var]
			p.rowIdx[at] = int32(i)
			p.colVal[at] = t.Coeff * scale[i]
			next[t.Var] = at + 1
		}
		p.b[i] = c.RHS * scale[i]
		si := ns + i
		switch c.Sense {
		case LE:
			p.lo[si], p.hi[si] = 0, math.Inf(1)
		case GE:
			p.lo[si], p.hi[si] = math.Inf(-1), 0
		case EQ:
			p.lo[si], p.hi[si] = 0, 0
		}
	}
	p.buildCSR()
	return p
}

// buildCSR fills the row-major mirror from the CSC arrays. Column
// indices stay ascending within each row, so a row scatter accumulates
// alpha[j] in the same (ascending-row) term order as colDot — the two
// pricings produce bitwise-identical values.
func (p *prob) buildCSR() {
	counts := make([]int32, p.m)
	for _, i := range p.rowIdx {
		counts[i]++
	}
	p.rowPtr = make([]int32, p.m+1)
	for i := 0; i < p.m; i++ {
		p.rowPtr[i+1] = p.rowPtr[i] + counts[i]
	}
	nnz := p.rowPtr[p.m]
	p.rowCol = make([]int32, nnz)
	p.rowVal = make([]float64, nnz)
	next := make([]int32, p.m)
	copy(next, p.rowPtr[:p.m])
	for j := 0; j < p.nStruct; j++ {
		for at := p.colPtr[j]; at < p.colPtr[j+1]; at++ {
			i := p.rowIdx[at]
			p.rowCol[next[i]] = int32(j)
			p.rowVal[next[i]] = p.colVal[at]
			next[i]++
		}
	}
}

// appendCuts returns a new prob extending p with the given globally valid
// rows (each a LE cut over structural columns). The receiver is unchanged;
// lpSolvers bound to the old prob must be re-initialized.
func (p *prob) appendCuts(cuts []cut) *prob {
	m2 := p.m + len(cuts)
	q := &prob{
		m:        m2,
		nStruct:  p.nStruct,
		n:        p.nStruct + m2,
		obj:      p.obj,
		integral: p.integral,
		b:        make([]float64, m2),
		lo:       make([]float64, p.nStruct+m2),
		hi:       make([]float64, p.nStruct+m2),
	}
	copy(q.b, p.b)
	copy(q.lo, p.lo[:p.nStruct])
	copy(q.hi, p.hi[:p.nStruct])
	copy(q.lo[p.nStruct:], p.lo[p.nStruct:])
	copy(q.hi[p.nStruct:], p.hi[p.nStruct:])
	for k, c := range cuts {
		i := p.m + k
		q.b[i] = c.rhs
		si := q.nStruct + i
		q.lo[si], q.hi[si] = 0, math.Inf(1) // LE slack
	}
	// Rebuild CSC with the cut terms appended per column.
	counts := make([]int32, p.nStruct)
	for j := 0; j < p.nStruct; j++ {
		counts[j] = p.colPtr[j+1] - p.colPtr[j]
	}
	for _, c := range cuts {
		for _, t := range c.terms {
			counts[t.v]++
		}
	}
	q.colPtr = make([]int32, p.nStruct+1)
	for j := 0; j < p.nStruct; j++ {
		q.colPtr[j+1] = q.colPtr[j] + counts[j]
	}
	q.rowIdx = make([]int32, q.colPtr[p.nStruct])
	q.colVal = make([]float64, q.colPtr[p.nStruct])
	next := make([]int32, p.nStruct)
	copy(next, q.colPtr[:p.nStruct])
	for j := 0; j < p.nStruct; j++ {
		for at := p.colPtr[j]; at < p.colPtr[j+1]; at++ {
			q.rowIdx[next[j]] = p.rowIdx[at]
			q.colVal[next[j]] = p.colVal[at]
			next[j]++
		}
	}
	for k, c := range cuts {
		i := int32(p.m + k)
		for _, t := range c.terms {
			q.rowIdx[next[t.v]] = i
			q.colVal[next[t.v]] = t.coeff
			next[t.v]++
		}
	}
	q.buildCSR()
	return q
}

// gatherCol scatters column j of [A|I] into the dense vector dst
// (len m), zeroing it first.
func (p *prob) gatherCol(j int, dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
	if r, ok := p.slackCol(j); ok {
		dst[r] = 1
		return
	}
	for at := p.colPtr[j]; at < p.colPtr[j+1]; at++ {
		dst[p.rowIdx[at]] = p.colVal[at]
	}
}

// colDot returns rho · A_j for column j of [A|I].
func (p *prob) colDot(rho []float64, j int) float64 {
	if r, ok := p.slackCol(j); ok {
		return rho[r]
	}
	s := 0.0
	for at := p.colPtr[j]; at < p.colPtr[j+1]; at++ {
		s += rho[p.rowIdx[at]] * p.colVal[at]
	}
	return s
}
