package ilp

import "math"

// This file builds the reference models used by the solver benchmarks
// (internal/ilp perf benchmarks and cmd/benchjson). They live in the
// package proper — not a _test.go file — so the JSON benchmark harness
// can share them.

// BenchChunkModel replicates the parallelizer's chunk-region ILP shape
// (Eq. 2–18 of the paper plus the strengthening cuts the parallelizer
// adds): K chunk items over T tasks and C processor classes, minimizing
// the region makespan. It is the solver's production hot-path workload.
func BenchChunkModel() *Model {
	m := NewModel()
	K, T, C := 12, 4, 3
	speeds := []float64{1, 2.5, 5}
	counts := []float64{1, 1, 2}
	W := 430100.0
	x := make([][]VarID, K)
	pv := make([][]VarID, K)
	for n := 0; n < K; n++ {
		x[n] = make([]VarID, T)
		for tt := 0; tt < T; tt++ {
			x[n][tt] = m.AddBinary("x", 0)
		}
		pv[n] = make([]VarID, C)
		for c := 0; c < C; c++ {
			pv[n][c] = m.AddBinary("p", 0)
		}
	}
	mp := make([][]VarID, T)
	used := make([]VarID, T)
	for tt := 0; tt < T; tt++ {
		mp[tt] = make([]VarID, C)
		for c := 0; c < C; c++ {
			mp[tt][c] = m.AddBinary("map", 0)
		}
		used[tt] = m.AddBinary("used", 0)
	}
	contrib := make([][]VarID, K)
	for n := 0; n < K; n++ {
		contrib[n] = make([]VarID, T)
		for tt := 0; tt < T; tt++ {
			contrib[n][tt] = m.AddVar("ctr", 0, math.Inf(1), 0)
		}
	}
	cost := make([]VarID, T)
	for tt := 0; tt < T; tt++ {
		cost[tt] = m.AddVar("cost", 0, math.Inf(1), 0)
	}
	exectime := m.AddVar("exectime", 0, W*0.999, 1)
	for n := 0; n < K; n++ {
		var terms []Term
		for tt := 0; tt < T; tt++ {
			terms = append(terms, Term{x[n][tt], 1})
		}
		m.AddCons("eq2", terms, EQ, 1)
		terms = nil
		for c := 0; c < C; c++ {
			terms = append(terms, Term{pv[n][c], 1})
		}
		m.AddCons("eq4", terms, EQ, 1)
	}
	for tt := 0; tt < T; tt++ {
		var terms []Term
		for c := 0; c < C; c++ {
			terms = append(terms, Term{mp[tt][c], 1})
		}
		m.AddCons("eq13", terms, EQ, 1)
	}
	m.AddCons("main", []Term{{mp[0][0], 1}}, EQ, 1)
	for n := 0; n+1 < K; n++ {
		var terms []Term
		for tt := 1; tt < T; tt++ {
			terms = append(terms, Term{x[n+1][tt], float64(tt)}, Term{x[n][tt], -float64(tt)})
		}
		m.AddCons("eq10", terms, GE, 0)
	}
	for tt := 0; tt < T; tt++ {
		for n := 0; n < K; n++ {
			m.AddCons("used", []Term{{used[tt], 1}, {x[n][tt], -1}}, GE, 0)
		}
	}
	for n := 0; n < K; n++ {
		worst := W / 12
		for tt := 0; tt < T; tt++ {
			for c := 0; c < C; c++ {
				m.AddCons("eq18", []Term{{pv[n][c], 1}, {x[n][tt], -1}, {mp[tt][c], -1}}, GE, -1)
			}
			terms := []Term{{contrib[n][tt], 1}, {x[n][tt], -worst}}
			for c := 0; c < C; c++ {
				terms = append(terms, Term{pv[n][c], -W / 12 / speeds[c]})
			}
			m.AddCons("eq8", terms, GE, -worst)
		}
	}
	for tt := 0; tt < T; tt++ {
		terms := []Term{{cost[tt], 1}}
		if tt != 0 {
			terms = append(terms, Term{used[tt], -2500})
		}
		for n := 0; n < K; n++ {
			terms = append(terms, Term{contrib[n][tt], -1})
		}
		m.AddCons("cost", terms, GE, 0)
		m.AddCons("eq11", []Term{{exectime, 1}, {cost[tt], -1}}, GE, 0)
	}
	for c := 0; c < C; c++ {
		var terms []Term
		for tt := 0; tt < T; tt++ {
			terms = append(terms, Term{mp[tt][c], 1})
		}
		m.AddCons("eq16", terms, LE, counts[c]+float64(T)) // loose
	}
	// Strengthening cuts like the parallelizer's.
	for c := 0; c < C; c++ {
		terms := []Term{{exectime, counts[c]}}
		for n := 0; n < K; n++ {
			terms = append(terms, Term{pv[n][c], -W / 12 / speeds[c]})
		}
		m.AddCons("cut_classwork", terms, GE, 0)
	}
	{
		var terms []Term
		for tt := 0; tt < T; tt++ {
			terms = append(terms, Term{cost[tt], 1})
		}
		for n := 0; n < K; n++ {
			for c := 0; c < C; c++ {
				terms = append(terms, Term{pv[n][c], -W / 12 / speeds[c]})
			}
		}
		m.AddCons("cut_conservation", terms, GE, 0)
	}
	return m
}

// BenchKnapsackModel builds a deterministic n-item 0/1 knapsack with a
// weak LP bound: many equal-ish value densities keep the search tree
// busy, exercising warm starts and node throughput rather than the root
// relaxation. seed varies the instance deterministically.
func BenchKnapsackModel(n int, seed uint64) *Model {
	m := NewModel()
	rng := seed
	next := func(mod int) float64 {
		rng = mix64(rng)
		return float64(int(rng%uint64(mod)) + 1)
	}
	var terms []Term
	for i := 0; i < n; i++ {
		w := next(60) + 20
		v := w + next(7) // density near 1: hard for the bound
		id := m.AddBinary("b", -v)
		terms = append(terms, Term{id, w})
	}
	m.AddCons("cap", terms, LE, 12*float64(n))
	return m
}

// BenchAssignmentModel builds a t-task × c-class assignment model with
// set-partitioning rows and class-capacity knapsacks — the shape the root
// cover/clique cut separator targets.
func BenchAssignmentModel(t, c int, seed uint64) *Model {
	m := NewModel()
	rng := seed
	next := func(mod int) float64 {
		rng = mix64(rng)
		return float64(int(rng%uint64(mod)) + 1)
	}
	x := make([][]VarID, t)
	for i := 0; i < t; i++ {
		x[i] = make([]VarID, c)
		var row []Term
		for j := 0; j < c; j++ {
			x[i][j] = m.AddBinary("x", next(9))
			row = append(row, Term{x[i][j], 1})
		}
		m.AddCons("assign", row, EQ, 1)
	}
	for j := 0; j < c; j++ {
		var row []Term
		for i := 0; i < t; i++ {
			row = append(row, Term{x[i][j], next(5) + 2})
		}
		m.AddCons("cap", row, LE, 3*float64(t)/float64(c)+4)
	}
	return m
}
