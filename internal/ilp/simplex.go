package ilp

import (
	"fmt"
	"time"
)

// LPStatus is the outcome of an LP relaxation solve.
type LPStatus int

// LP outcomes.
const (
	LPOptimal LPStatus = iota
	LPInfeasible
	LPUnbounded
	LPIterLimit
)

// String names the status.
func (s LPStatus) String() string {
	switch s {
	case LPOptimal:
		return "optimal"
	case LPInfeasible:
		return "infeasible"
	case LPUnbounded:
		return "unbounded"
	case LPIterLimit:
		return "iteration-limit"
	case lpFailed:
		return "failed"
	}
	return fmt.Sprintf("LPStatus(%d)", int(s))
}

// LPResult carries the relaxation optimum.
type LPResult struct {
	Status LPStatus
	X      []float64 // values in original variable space
	Obj    float64
	Iters  int
}

const (
	epsFeas  = 1e-7 // feasibility tolerance
	epsPivot = 1e-9 // minimum pivot magnitude
	epsCost  = 1e-9 // reduced-cost optimality tolerance
	// epsDualPivot is the dual ratio test's pivot-stability floor. A
	// priced entry in (epsPivot, epsDualPivot] is dominated by the
	// rounding error of BTRAN-then-dot pricing — selecting it routinely
	// picks columns whose FTRAN'd value comes back below epsPivot,
	// forcing a refactorize-and-retry loop that reproduces the same
	// disagreement forever. Candidates above the floor are therefore
	// preferred; the weak ones stay available as a fallback so the floor
	// never manufactures an infeasibility verdict.
	epsDualPivot = 1e-7
)

// SolveRelaxation solves the LP relaxation of mod with its own bounds
// (exported for diagnostics and tests).
func SolveRelaxation(mod *Model) LPResult { return solveLP(mod, nil, nil, time.Time{}) }

// mergeBounds combines the model bounds with per-node overrides
// (overrides only ever tighten). Returns false when a variable's range
// becomes empty.
func mergeBounds(mod *Model, loOv, hiOv []float64) (lo, hi []float64, ok bool) {
	n := len(mod.Vars)
	lo = make([]float64, n)
	hi = make([]float64, n)
	for i, v := range mod.Vars {
		lo[i], hi[i] = v.Lo, v.Hi
		if loOv != nil && loOv[i] > lo[i] {
			lo[i] = loOv[i]
		}
		if hiOv != nil && hiOv[i] < hi[i] {
			hi[i] = hiOv[i]
		}
		if lo[i] > hi[i]+epsFeas {
			return nil, nil, false
		}
	}
	return lo, hi, true
}

// solveLP solves the LP relaxation of mod with the given bound overrides
// (nil to use model bounds) under an optional wall-clock deadline. It
// compiles the model and solves cold; the branch-and-bound hot path keeps
// a compiled problem and warm-starts instead of calling this.
func solveLP(mod *Model, loOv, hiOv []float64, deadline time.Time) LPResult {
	lo, hi, ok := mergeBounds(mod, loOv, hiOv)
	if !ok {
		return LPResult{Status: LPInfeasible}
	}
	s := newLPSolver(compile(mod))
	s.setBounds(lo, hi)
	s.deadline = deadline
	st := s.solveCold()
	if st == lpFailed {
		st = LPIterLimit
	}
	return s.result(st)
}
