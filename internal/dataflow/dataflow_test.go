package dataflow

import (
	"strings"
	"testing"

	"repro/internal/minic"
)

func compile(t *testing.T, src string) (*minic.Program, Summaries) {
	t.Helper()
	prog, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog, Summarize(prog)
}

func symByName(t *testing.T, set SymSet, name string) *minic.Symbol {
	t.Helper()
	for s := range set {
		if s.Name == name {
			return s
		}
	}
	return nil
}

func TestStmtAccessesScalar(t *testing.T) {
	prog, sums := compile(t, `
int a; int b; int c;
void main(void) { c = a + b; }
`)
	s := prog.Func("main").Body.Stmts[0]
	acc := StmtAccesses(s, sums)
	if symByName(t, acc.Reads, "a") == nil || symByName(t, acc.Reads, "b") == nil {
		t.Errorf("reads missing: %v", acc.Reads)
	}
	if symByName(t, acc.Writes, "c") == nil {
		t.Errorf("writes missing c")
	}
	if symByName(t, acc.Writes, "a") != nil {
		t.Errorf("a should not be written")
	}
}

func TestCompoundAssignReadsTarget(t *testing.T) {
	prog, sums := compile(t, `int a; int b; void main(void) { a += b; }`)
	acc := StmtAccesses(prog.Func("main").Body.Stmts[0], sums)
	if symByName(t, acc.Reads, "a") == nil {
		t.Errorf("compound assignment must read its target")
	}
}

func TestInterproceduralEffects(t *testing.T) {
	prog, sums := compile(t, `
int g1; int g2;
void writer(int v[4]) { v[0] = g1; }
int reader(int v[4]) { return v[1] + g2; }
void main(void) {
    int a[4]; int b[4];
    writer(a);
    int x = reader(b);
}
`)
	writer := prog.Func("writer")
	eff := sums[writer]
	if !eff.ParamWrite[0] || eff.ParamRead[0] {
		t.Errorf("writer param effects wrong: %+v", eff)
	}
	if symByName(t, eff.GlobalRead, "g1") == nil {
		t.Errorf("writer should read g1")
	}
	main := prog.Func("main")
	// writer(a) writes a; reader(b) reads b and g2.
	callW := StmtAccesses(main.Body.Stmts[2], sums)
	if symByName(t, callW.Writes, "a") == nil {
		t.Errorf("call to writer should write a: %v", callW.Writes)
	}
	if symByName(t, callW.Reads, "a") != nil {
		t.Errorf("call to writer should not read a")
	}
	callR := StmtAccesses(main.Body.Stmts[3], sums)
	if symByName(t, callR.Reads, "b") == nil || symByName(t, callR.Reads, "g2") == nil {
		t.Errorf("call to reader should read b and g2: %v", callR.Reads)
	}
	if symByName(t, callR.Writes, "b") != nil {
		t.Errorf("reader should not write b")
	}
}

func TestRecursiveSummaryTerminates(t *testing.T) {
	prog, sums := compile(t, `
int g;
int odd(int n) { if (n == 0) { return 0; } g = g + 1; return even(n - 1); }
int even(int n) { if (n == 0) { return 1; } return odd(n - 1); }
void main(void) { int r = odd(5); }
`)
	_ = prog
	// Just reaching here proves termination; odd/even both touch g
	// transitively.
	odd := prog.Func("odd")
	if symByName(t, sums[odd].GlobalWrite, "g") == nil {
		t.Errorf("odd should write g")
	}
	even := prog.Func("even")
	if symByName(t, sums[even].GlobalWrite, "g") == nil {
		t.Errorf("even should transitively write g")
	}
}

func TestDependsOnKinds(t *testing.T) {
	prog, sums := compile(t, `
int a; int b; int c;
void main(void) {
    a = 1;      // s0
    b = a + 1;  // s1: flow on a
    a = 2;      // s2: anti on a (vs s1), output vs s0
    c = c + 1;  // s3: independent of s0..s2
}
`)
	stmts := prog.Func("main").Body.Stmts
	accs := make([]*Accesses, len(stmts))
	for i, s := range stmts {
		accs[i] = StmtAccesses(s, sums)
	}
	d01 := DependsOn(accs[0], accs[1])
	if !d01.Kind.Has(DepFlow) || d01.FlowBytes != 4 {
		t.Errorf("s0->s1 should be a 4-byte flow dep, got %v %d", d01.Kind, d01.FlowBytes)
	}
	d12 := DependsOn(accs[1], accs[2])
	if !d12.Kind.Has(DepAnti) || d12.Kind.Has(DepFlow) {
		t.Errorf("s1->s2 should be anti-only, got %v", d12.Kind)
	}
	d02 := DependsOn(accs[0], accs[2])
	if !d02.Kind.Has(DepOutput) {
		t.Errorf("s0->s2 should be output dep, got %v", d02.Kind)
	}
	d03 := DependsOn(accs[0], accs[3])
	if d03.Exists() {
		t.Errorf("s0->s3 should be independent, got %v", d03.Kind)
	}
}

func TestFlowBytesForArrays(t *testing.T) {
	prog, sums := compile(t, `
float m[8][8]; float s;
void fill(float x[8][8]) { x[0][0] = 1.0; }
float use(float x[8][8]) { return x[0][0]; }
void main(void) {
    fill(m);
    s = use(m);
}
`)
	stmts := prog.Func("main").Body.Stmts
	a := StmtAccesses(stmts[0], sums)
	b := StmtAccesses(stmts[1], sums)
	d := DependsOn(a, b)
	if !d.Kind.Has(DepFlow) {
		t.Fatalf("expected flow dep through m")
	}
	if d.FlowBytes != 8*8*4 {
		t.Errorf("flow bytes = %d, want %d", d.FlowBytes, 8*8*4)
	}
}

func loopOf(t *testing.T, src string) (*minic.ForStmt, Summaries) {
	t.Helper()
	prog, sums := compile(t, src)
	for _, s := range prog.Func("main").Body.Stmts {
		if fs, ok := s.(*minic.ForStmt); ok {
			return fs, sums
		}
	}
	t.Fatalf("no for loop in main")
	return nil, nil
}

func TestDoallSimple(t *testing.T) {
	fs, sums := loopOf(t, `
float a[64]; float b[64];
void main(void) {
    for (int i = 0; i < 64; i++) {
        a[i] = b[i] * 2.0;
    }
}
`)
	info := AnalyzeLoop(fs, sums)
	if !info.Parallel {
		t.Fatalf("loop should be parallel: %s", info.Reason)
	}
	if info.IndVar == nil || info.IndVar.Name != "i" || info.Step != 1 {
		t.Errorf("induction variable not recognized: %+v", info)
	}
}

func TestDoallWithPrivateTemp(t *testing.T) {
	fs, sums := loopOf(t, `
float a[64]; float b[64];
void main(void) {
    for (int i = 0; i < 64; i++) {
        float t = b[i] * 2.0;
        a[i] = t + 1.0;
    }
}
`)
	info := AnalyzeLoop(fs, sums)
	if !info.Parallel {
		t.Fatalf("loop with private temp should be parallel: %s", info.Reason)
	}
	if len(info.Private) != 1 || info.Private[0].Name != "t" {
		t.Errorf("private scalars: %v", info.Private)
	}
}

func TestReductionRecognized(t *testing.T) {
	fs, sums := loopOf(t, `
float a[64]; float s;
void main(void) {
    for (int i = 0; i < 64; i++) {
        s += a[i];
    }
}
`)
	info := AnalyzeLoop(fs, sums)
	if !info.Parallel {
		t.Fatalf("reduction loop should be parallel: %s", info.Reason)
	}
	if len(info.Reductions) != 1 || info.Reductions[0].Op != ReduceAdd {
		t.Errorf("reductions: %+v", info.Reductions)
	}
}

func TestReductionForms(t *testing.T) {
	cases := []struct {
		body string
		op   ReductionOp
	}{
		{"s = s + a[i];", ReduceAdd},
		{"s = a[i] + s;", ReduceAdd},
		{"s *= a[i];", ReduceMul},
		{"s = min(s, a[i]);", ReduceMin},
		{"s = max(a[i], s);", ReduceMax},
	}
	for _, tc := range cases {
		fs, sums := loopOf(t, `
float a[64]; float s;
void main(void) { for (int i = 0; i < 64; i++) { `+tc.body+` } }
`)
		info := AnalyzeLoop(fs, sums)
		if !info.Parallel {
			t.Errorf("%s: should be parallel: %s", tc.body, info.Reason)
			continue
		}
		if len(info.Reductions) != 1 || info.Reductions[0].Op != tc.op {
			t.Errorf("%s: reductions %+v, want op %v", tc.body, info.Reductions, tc.op)
		}
	}
}

func TestLoopCarriedArray(t *testing.T) {
	fs, sums := loopOf(t, `
float a[64];
void main(void) {
    for (int i = 1; i < 64; i++) {
        a[i] = a[i - 1] * 0.5;
    }
}
`)
	info := AnalyzeLoop(fs, sums)
	if info.Parallel {
		t.Fatalf("recurrence must not be parallel")
	}
	if !strings.Contains(info.Reason, "shifted indices") {
		t.Errorf("reason: %s", info.Reason)
	}
}

func TestLoopCarriedScalar(t *testing.T) {
	fs, sums := loopOf(t, `
float a[64]; float prev;
void main(void) {
    for (int i = 0; i < 64; i++) {
        a[i] = prev;
        prev = a[i] + 1.0;
    }
}
`)
	info := AnalyzeLoop(fs, sums)
	if info.Parallel {
		t.Fatalf("scalar recurrence must not be parallel")
	}
}

func TestLoopWithBreakNotParallel(t *testing.T) {
	fs, sums := loopOf(t, `
float a[64];
void main(void) {
    for (int i = 0; i < 64; i++) {
        if (a[i] > 10.0) { break; }
        a[i] = 1.0;
    }
}
`)
	info := AnalyzeLoop(fs, sums)
	if info.Parallel {
		t.Fatalf("loop with break must not be parallel")
	}
}

func TestLoopWriteThroughCallNotParallel(t *testing.T) {
	fs, sums := loopOf(t, `
float a[64];
void touch(float v[64], int i) { v[i] = 1.0; }
void main(void) {
    for (int i = 0; i < 64; i++) {
        touch(a, i);
    }
}
`)
	info := AnalyzeLoop(fs, sums)
	if info.Parallel {
		t.Fatalf("write through call must be conservative")
	}
	if !strings.Contains(info.Reason, "through a call") {
		t.Errorf("reason: %s", info.Reason)
	}
}

func TestLoopIndexIndependentOfInduction(t *testing.T) {
	fs, sums := loopOf(t, `
float a[64]; int k;
void main(void) {
    for (int i = 0; i < 64; i++) {
        a[k] = 1.0;
    }
}
`)
	info := AnalyzeLoop(fs, sums)
	if info.Parallel {
		t.Fatalf("induction-independent write index must not be parallel")
	}
}

func TestNestedLoopBodyStillParallel(t *testing.T) {
	// Outer loop over rows with an inner sequential loop is a classic DOALL.
	fs, sums := loopOf(t, `
float m[8][8]; float v[8]; float r[8];
void main(void) {
    for (int i = 0; i < 8; i++) {
        float acc = 0.0;
        for (int j = 0; j < 8; j++) {
            acc = acc + m[i][j] * v[j];
        }
        r[i] = acc;
    }
}
`)
	info := AnalyzeLoop(fs, sums)
	if !info.Parallel {
		t.Fatalf("matrix-vector outer loop should be parallel: %s", info.Reason)
	}
}

func TestAffine(t *testing.T) {
	prog, _ := compile(t, `
void main(void) {
    int i = 1; int j = 2;
    int a = 2 * i + j - 3;
    int b = i * j;
}
`)
	stmts := prog.Func("main").Body.Stmts
	aDecl := stmts[2].(*minic.DeclStmt)
	af := ToAffine(aDecl.Init)
	if !af.OK || af.Const != -3 {
		t.Fatalf("affine: %+v", af)
	}
	iSym := stmts[0].(*minic.DeclStmt).Sym
	jSym := stmts[1].(*minic.DeclStmt).Sym
	if af.CoeffOf(iSym) != 2 || af.CoeffOf(jSym) != 1 {
		t.Errorf("coeffs: i=%d j=%d", af.CoeffOf(iSym), af.CoeffOf(jSym))
	}
	bDecl := stmts[3].(*minic.DeclStmt)
	if bf := ToAffine(bDecl.Init); bf.OK {
		t.Errorf("i*j should not be affine")
	}
}

func TestInductionVariants(t *testing.T) {
	cases := []struct {
		hdr  string
		step int64
	}{
		{"for (int i = 0; i < 10; i++)", 1},
		{"for (int i = 10; i > 0; i--)", -1},
		{"for (int i = 0; i < 10; i += 2)", 2},
		{"for (int i = 0; i < 10; i = i + 3)", 3},
	}
	for _, tc := range cases {
		fs, sums := loopOf(t, `
float a[64];
void main(void) { `+tc.hdr+` { a[0] = 1.0; } }
`)
		info := AnalyzeLoop(fs, sums)
		if info.IndVar == nil {
			t.Errorf("%s: induction variable not found", tc.hdr)
			continue
		}
		if info.Step != tc.step {
			t.Errorf("%s: step = %d, want %d", tc.hdr, info.Step, tc.step)
		}
	}
}

func TestDepKindString(t *testing.T) {
	if (DepFlow | DepAnti).String() != "FA" {
		t.Errorf("String: %s", (DepFlow | DepAnti).String())
	}
	if DepKind(0).String() != "-" {
		t.Errorf("empty kind should be -")
	}
}
