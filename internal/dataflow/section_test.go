package dataflow

import (
	"strings"
	"testing"

	"repro/internal/minic"
)

// secProg bundles one compiled program with its summaries so multiple
// statements can be sectioned against the same symbol identities.
type secProg struct {
	prog *minic.Program
	sums Summaries
	secs SectionSummaries
}

func compileSections(t *testing.T, src string) *secProg {
	t.Helper()
	prog, sums := compile(t, src)
	return &secProg{prog: prog, sums: sums, secs: SummarizeSections(prog, sums)}
}

// stmt returns the access and section aggregates of the idx-th top-level
// statement of main.
func (sp *secProg) stmt(idx int) (*Accesses, *Sections) {
	st := sp.prog.Func("main").Body.Stmts[idx]
	return StmtAccesses(st, sp.sums), StmtSections(st, sp.sums, sp.secs)
}

// sectionsOf compiles src and returns the section aggregate of the idx-th
// top-level statement of main, together with its access aggregate.
func sectionsOf(t *testing.T, src string, idx int) (*Accesses, *Sections, *minic.Program) {
	t.Helper()
	sp := compileSections(t, src)
	acc, secs := sp.stmt(idx)
	return acc, secs, sp.prog
}

func globalSym(t *testing.T, prog *minic.Program, name string) *minic.Symbol {
	t.Helper()
	for _, g := range prog.Globals {
		if g.Sym != nil && g.Sym.Name == name {
			return g.Sym
		}
	}
	t.Fatalf("no global %s", name)
	return nil
}

func TestDimSectionIntersect(t *testing.T) {
	cases := []struct {
		a, b  DimSection
		empty bool
		want  DimSection
	}{
		// Even vs odd indices: GCD stride test proves disjoint.
		{DimSection{0, 62, 2, false}, DimSection{1, 63, 2, false}, true, DimSection{}},
		// Same parity progressions overlap on the common range.
		{DimSection{0, 62, 2, false}, DimSection{10, 70, 2, false}, false, DimSection{10, 62, 2, false}},
		// Steps 2 and 3 meet every 6, first at 4 (x≡0 mod 2, x≡1 mod 3).
		{DimSection{0, 30, 2, false}, DimSection{1, 30, 3, false}, false, DimSection{4, 28, 6, false}},
		// Separated intervals.
		{DimSection{0, 9, 1, false}, DimSection{10, 19, 1, false}, true, DimSection{}},
		// Single points.
		{point(0), point(63), true, DimSection{}},
		{point(5), point(5), false, point(5)},
		// Negative bases keep residue arithmetic honest.
		{DimSection{-7, 5, 3, false}, DimSection{-4, 8, 3, false}, false, DimSection{-4, 5, 3, false}},
	}
	for i, tc := range cases {
		got, ok := tc.a.intersect(tc.b)
		if ok == tc.empty {
			t.Errorf("case %d %v ∩ %v: empty=%v, want %v", i, tc.a, tc.b, !ok, tc.empty)
			continue
		}
		if !tc.empty && got != tc.want {
			t.Errorf("case %d %v ∩ %v = %v, want %v", i, tc.a, tc.b, got, tc.want)
		}
		// Intersection must be symmetric.
		got2, ok2 := tc.b.intersect(tc.a)
		if ok2 != ok || (ok && got2 != got) {
			t.Errorf("case %d not symmetric: %v vs %v", i, got, got2)
		}
	}
}

func TestDimSectionIntersectExhaustive(t *testing.T) {
	// Cross-check the CRT intersection against brute-force enumeration for
	// a grid of small progressions.
	members := func(d DimSection) map[int64]bool {
		m := map[int64]bool{}
		for x := d.Lo; x <= d.Hi; x += d.Step {
			m[x] = true
		}
		return m
	}
	for lo1 := int64(0); lo1 < 4; lo1++ {
		for s1 := int64(1); s1 <= 4; s1++ {
			for lo2 := int64(0); lo2 < 4; lo2++ {
				for s2 := int64(1); s2 <= 4; s2++ {
					a := DimSection{Lo: lo1, Hi: lo1 + 3*s1, Step: s1}
					b := DimSection{Lo: lo2, Hi: lo2 + 3*s2, Step: s2}
					got, ok := a.intersect(b)
					want := map[int64]bool{}
					bm := members(b)
					for x := range members(a) { //repolint:allow maprange (test set intersect)
						if bm[x] {
							want[x] = true
						}
					}
					if !ok {
						if len(want) != 0 {
							t.Fatalf("%v ∩ %v reported empty, want %v", a, b, want)
						}
						continue
					}
					gm := members(got)
					if len(gm) != len(want) {
						t.Fatalf("%v ∩ %v = %v (%d elems), want %d", a, b, got, len(gm), len(want))
					}
					for x := range want { //repolint:allow maprange (membership check)
						if !gm[x] {
							t.Fatalf("%v ∩ %v = %v misses %d", a, b, got, x)
						}
					}
				}
			}
		}
	}
}

func TestDimSectionUnionSound(t *testing.T) {
	a := DimSection{Lo: 0, Hi: 20, Step: 4}
	b := DimSection{Lo: 2, Hi: 14, Step: 6}
	u := a.union(b)
	for x := a.Lo; x <= a.Hi; x += a.Step {
		if mod64(x-u.Lo, u.Step) != 0 || x < u.Lo || x > u.Hi {
			t.Fatalf("union %v misses %d of %v", u, x, a)
		}
	}
	for x := b.Lo; x <= b.Hi; x += b.Step {
		if mod64(x-u.Lo, u.Step) != 0 || x < u.Lo || x > u.Hi {
			t.Fatalf("union %v misses %d of %v", u, x, b)
		}
	}
}

// TestSectionsLoopWrite: the canonical init loop writes exactly [0:63:1].
func TestSectionsLoopWrite(t *testing.T) {
	_, secs, prog := sectionsOf(t, `
float a[64]; float b[64];
void main(void) {
    for (int i = 0; i < 64; i++) {
        a[i] = b[i + 1] * 2.0;
    }
}
`, 0)
	a := globalSym(t, prog, "a")
	b := globalSym(t, prog, "b")
	if got := SecOf(secs.Writes, a).String(); got != "[0:63:1]" {
		t.Errorf("write section of a: %s", got)
	}
	if got := SecOf(secs.Reads, b).String(); got != "[1:64:1]" {
		t.Errorf("read section of b: %s", got)
	}
}

// TestSectionsStrided: non-unit strides and scaled indices produce stepped
// progressions; 2i over i in [0:31] is [0:62:2].
func TestSectionsStrided(t *testing.T) {
	_, secs, prog := sectionsOf(t, `
float a[64];
void main(void) {
    for (int i = 0; i < 32; i++) {
        a[2 * i] = 1.0;
    }
}
`, 0)
	a := globalSym(t, prog, "a")
	if got := SecOf(secs.Writes, a).String(); got != "[0:62:2]" {
		t.Errorf("write section: %s", got)
	}
}

// TestSectionsDisjointSingleElements: u[0] and u[63] are single-point
// disjoint sections — the false output dependence the HTG used to draw.
func TestSectionsDisjointSingleElements(t *testing.T) {
	src := `
float u[64];
void main(void) {
    u[0] = 1.0;
    u[63] = 2.0;
}
`
	sp := compileSections(t, src)
	accA, secA := sp.stmt(0)
	accB, secB := sp.stmt(1)
	prog := sp.prog
	u := globalSym(t, prog, "u")
	if !SecOf(secA.Writes, u).DisjointWith(SecOf(secB.Writes, u), u) {
		t.Fatalf("u[0] and u[63] should be disjoint")
	}
	d := DependsOnSections(accA, accB, secA, secB)
	if d.Exists() {
		t.Errorf("sharpened dependence should vanish, got %v", d.Kind)
	}
	// The whole-symbol test still sees an output dependence.
	if !DependsOn(accA, accB).Kind.Has(DepOutput) {
		t.Errorf("whole-symbol test should report an output dependence")
	}
}

// TestSectionsOverlapBytes: a one-element overlap shrinks flow bytes from
// the whole array to a single element.
func TestSectionsOverlapBytes(t *testing.T) {
	src := `
float u[64];
float s;
void main(void) {
    u[0] = 1.0;
    for (int i = 0; i < 64; i++) {
        s = s + u[i];
    }
}
`
	sp := compileSections(t, src)
	accA, secA := sp.stmt(0)
	accB, secB := sp.stmt(1)
	prog := sp.prog
	u := globalSym(t, prog, "u")
	d := DependsOnSections(accA, accB, secA, secB)
	if !d.Kind.Has(DepFlow) {
		t.Fatalf("flow dependence must remain")
	}
	if d.FlowBytes != u.Type.ElemBytes() {
		t.Errorf("flow bytes: got %d, want %d", d.FlowBytes, u.Type.ElemBytes())
	}
	if whole := DependsOn(accA, accB); whole.FlowBytes != u.Type.SizeBytes() {
		t.Errorf("whole-symbol flow bytes: got %d, want %d", whole.FlowBytes, u.Type.SizeBytes())
	}
}

// TestSectionsInterprocedural: sections flow through a callee's parameter
// summary — init(x) writing x[0:15] does not conflict with a later read of
// x[16:31].
func TestSectionsInterprocedural(t *testing.T) {
	src := `
float x[32]; float y[16];
void init(float v[32]) {
    for (int i = 0; i < 16; i++) {
        v[i] = 0.0;
    }
}
void main(void) {
    init(x);
    for (int j = 0; j < 16; j++) {
        y[j] = x[j + 16];
    }
}
`
	sp := compileSections(t, src)
	accA, secA := sp.stmt(0)
	accB, secB := sp.stmt(1)
	prog := sp.prog
	x := globalSym(t, prog, "x")
	if got := SecOf(secA.Writes, x).String(); got != "[0:15:1]" {
		t.Fatalf("callee write section of x: %s", got)
	}
	if d := DependsOnSections(accA, accB, secA, secB); d.Exists() {
		t.Errorf("disjoint halves should not depend, got %v", d.Kind)
	}
	if !DependsOn(accA, accB).Kind.Has(DepFlow) {
		t.Errorf("whole-symbol test should report flow")
	}
}

// TestSectionsGlobalThroughCall: a callee touching a global contributes its
// section, not the whole symbol.
func TestSectionsGlobalThroughCall(t *testing.T) {
	src := `
float g[64];
void touch(void) {
    g[0] = 1.0;
}
void main(void) {
    touch();
    g[63] = 2.0;
}
`
	sp := compileSections(t, src)
	accA, secA := sp.stmt(0)
	accB, secB := sp.stmt(1)
	prog := sp.prog
	g := globalSym(t, prog, "g")
	if got := SecOf(secA.Writes, g).String(); got != "[0:0:1]" {
		t.Fatalf("global write section through call: %s", got)
	}
	if d := DependsOnSections(accA, accB, secA, secB); d.Exists() {
		t.Errorf("disjoint global writes should not depend, got %v", d.Kind)
	}
}

// TestSectionsRecursionFallsBack: a recursive callee cannot be summarized
// section-precisely; the caller degrades to Whole (sound, no sharpening).
func TestSectionsRecursionFallsBack(t *testing.T) {
	src := `
float a[8];
void rec(int n) {
    if (n > 0) {
        a[0] = a[0] + 1.0;
        rec(n - 1);
    }
}
void main(void) {
    rec(3);
    a[7] = 2.0;
}
`
	sp := compileSections(t, src)
	accA, secA := sp.stmt(0)
	accB, secB := sp.stmt(1)
	prog := sp.prog
	a := globalSym(t, prog, "a")
	if !SecOf(secA.Writes, a).Whole {
		t.Fatalf("recursive callee should degrade to whole, got %s", SecOf(secA.Writes, a))
	}
	if d := DependsOnSections(accA, accB, secA, secB); !d.Kind.Has(DepOutput) {
		t.Errorf("whole fallback must keep the output dependence")
	}
}

// TestSectionsSymbolicBoundFallsBack: a loop bound read from a scalar
// variable is not constant; sections degrade to Whole rather than guessing.
func TestSectionsSymbolicBoundFallsBack(t *testing.T) {
	src := `
float a[64]; int n;
void main(void) {
    for (int i = 0; i < n; i++) {
        a[i] = 0.0;
    }
    a[63] = 1.0;
}
`
	sp := compileSections(t, src)
	accA, secA := sp.stmt(0)
	accB, secB := sp.stmt(1)
	prog := sp.prog
	a := globalSym(t, prog, "a")
	// The write section must cover the entire array (whole symbol or a
	// whole dimension — both are the conservative fallback).
	sec := SecOf(secA.Writes, a)
	if sec.DisjointWith(Section{Dims: []DimSection{point(63)}}, a) {
		t.Fatalf("symbolic bound fallback excludes element 63, got %s", sec)
	}
	if d := DependsOnSections(accA, accB, secA, secB); !d.Kind.Has(DepOutput) {
		t.Errorf("whole fallback must keep the dependence")
	}
}

// TestSectionsTriangularNestFallsBack: the inner bound of a triangular nest
// depends on the outer induction variable — not constant, so the inner
// index cannot be sectioned beyond the outer interval contribution; the
// write stays sound (covers everything the nest touches).
func TestSectionsTriangularNestFallsBack(t *testing.T) {
	src := `
float a[64];
void main(void) {
    for (int i = 0; i < 8; i++) {
        for (int j = 0; j < i; j++) {
            a[8 * i + j] = 0.0;
        }
    }
    a[0] = 1.0;
}
`
	_, secA, prog := sectionsOf(t, src, 0)
	a := globalSym(t, prog, "a")
	sec := SecOf(secA.Writes, a)
	// The inner loop's range is not derivable (bound = i), so the index
	// 8i+j is unresolvable and the dimension must be whole.
	if got := sec.String(); got != "[*]" && got != "[whole]" {
		t.Errorf("triangular nest should fall back to whole dimension, got %s", got)
	}
	// Whatever the representation, it must not be disjoint from any
	// element the nest actually writes (e.g. index 9 = 8·1+1... pinned via
	// a probe section).
	probe := Section{Dims: []DimSection{point(9)}}
	if sec.DisjointWith(probe, a) {
		t.Errorf("fallback section excludes a written element")
	}
}

// TestSectionsRowView: passing a matrix row to a callee pins the leading
// dimension and inherits the callee's section on the trailing one.
func TestSectionsRowView(t *testing.T) {
	src := `
float m[4][8];
void fill(float row[8]) {
    for (int i = 0; i < 8; i++) {
        row[i] = 0.0;
    }
}
void main(void) {
    fill(m[0]);
    m[3][0] = 1.0;
}
`
	sp := compileSections(t, src)
	accA, secA := sp.stmt(0)
	accB, secB := sp.stmt(1)
	prog := sp.prog
	m := globalSym(t, prog, "m")
	if got := SecOf(secA.Writes, m).String(); got != "[0:0:1][0:7:1]" {
		t.Fatalf("row-view section: %s", got)
	}
	if d := DependsOnSections(accA, accB, secA, secB); d.Exists() {
		t.Errorf("different rows should not depend, got %v", d.Kind)
	}
}

// TestSectionsNegativeStepLoop: countdown loops produce the same section as
// their forward twins.
func TestSectionsNegativeStepLoop(t *testing.T) {
	_, secs, prog := sectionsOf(t, `
float a[64];
void main(void) {
    for (int i = 63; i >= 0; i -= 3) {
        a[i] = 0.0;
    }
}
`, 0)
	a := globalSym(t, prog, "a")
	// i takes 63, 60, ..., 0: the progression [0:63:3].
	if got := SecOf(secs.Writes, a).String(); got != "[0:63:3]" {
		t.Errorf("write section: %s", got)
	}
}

// TestSectionStringDeterministic: report strings are identical across many
// recomputations (map iteration must never leak into output).
func TestSectionStringDeterministic(t *testing.T) {
	src := `
float a[16]; float b[16]; float c[16];
void main(void) {
    for (int i = 0; i < 16; i++) {
        a[i] = b[i] + c[i];
        c[i] = a[i] * 2.0;
    }
}
`
	var first string
	for run := 0; run < 10; run++ {
		_, secs, prog := sectionsOf(t, src, 0)
		var sb strings.Builder
		for _, name := range []string{"a", "b", "c"} {
			sym := globalSym(t, prog, name)
			sb.WriteString(name + " R" + SecOf(secs.Reads, sym).String() + " W" + SecOf(secs.Writes, sym).String() + "\n")
		}
		if run == 0 {
			first = sb.String()
			continue
		}
		if sb.String() != first {
			t.Fatalf("section report differs between runs:\n%s\nvs\n%s", first, sb.String())
		}
	}
}
