package dataflow

import (
	"strings"
	"testing"

	"repro/internal/minic"
)

// TestPrivateScalarReadAfterLoop: a scalar that is privatizable inside the
// body but also read after the loop. Body-local analysis still classifies
// the loop as DOALL with the scalar private — the value flowing out of the
// loop is the transform's last-value copy-out concern, not a carried
// dependence between iterations.
func TestPrivateScalarReadAfterLoop(t *testing.T) {
	fs, sums := loopOf(t, `
float a[64]; float t;
void main(void) {
    for (int i = 0; i < 64; i++) {
        t = a[i] * 2.0;
        a[i] = t + 1.0;
    }
    a[0] = t;
}
`)
	info := AnalyzeLoop(fs, sums)
	if !info.Parallel {
		t.Fatalf("loop should be parallel: %s", info.Reason)
	}
	if len(info.Private) != 1 || info.Private[0].Name != "t" {
		t.Errorf("t should be the single private scalar, got %v", info.Private)
	}
	if info.Private[0].Kind != minic.SymGlobal {
		t.Errorf("privatized symbol should be the global t, got kind %v", info.Private[0].Kind)
	}
}

// TestReductionOnGlobal: a global accumulated with the s = s + e form is a
// recognized reduction, not a private and not a carried-dependence failure.
func TestReductionOnGlobal(t *testing.T) {
	fs, sums := loopOf(t, `
float a[64]; float sum;
void main(void) {
    for (int i = 0; i < 64; i++) {
        sum = sum + a[i];
    }
}
`)
	info := AnalyzeLoop(fs, sums)
	if !info.Parallel {
		t.Fatalf("global reduction loop should be parallel: %s", info.Reason)
	}
	if len(info.Reductions) != 1 || info.Reductions[0].Sym.Name != "sum" || info.Reductions[0].Op != ReduceAdd {
		t.Fatalf("reductions: %+v", info.Reductions)
	}
	if info.Reductions[0].Sym.Kind != minic.SymGlobal {
		t.Errorf("reduction symbol should be global, got kind %v", info.Reductions[0].Sym.Kind)
	}
	for _, p := range info.Private {
		if p.Name == "sum" {
			t.Errorf("reduction accumulator must not also be privatized")
		}
	}
}

// TestReductionGlobalAlsoReadElsewhere: the same global used both as a
// reduction accumulator and as a plain operand in another statement of the
// body is disqualified — the loop carries a real dependence.
func TestReductionGlobalAlsoReadElsewhere(t *testing.T) {
	fs, sums := loopOf(t, `
float a[64]; float b[64]; float sum;
void main(void) {
    for (int i = 0; i < 64; i++) {
        sum = sum + a[i];
        b[i] = sum;
    }
}
`)
	info := AnalyzeLoop(fs, sums)
	if info.Parallel {
		t.Fatalf("loop reading the accumulator mid-iteration must not be parallel")
	}
	if !strings.Contains(info.Reason, "sum") {
		t.Errorf("reason should name the accumulator: %q", info.Reason)
	}
}

// TestNegativeStrideCarriedDep: a countdown loop whose body reads the
// element the previous iteration wrote (a[i] = f(a[i+1])) carries a flow
// dependence across iterations and must be rejected as shifted indices.
func TestNegativeStrideCarriedDep(t *testing.T) {
	fs, sums := loopOf(t, `
float a[64];
void main(void) {
    for (int i = 62; i >= 0; i--) {
        a[i] = a[i + 1] * 0.5;
    }
}
`)
	info := AnalyzeLoop(fs, sums)
	if info.IndVar == nil || info.IndVar.Name != "i" || info.Step != -1 {
		t.Fatalf("negative-stride induction not recognized: %+v", info)
	}
	if info.Parallel {
		t.Fatalf("carried dependence with negative stride must not be parallel")
	}
	if !strings.Contains(info.Reason, "shifted indices") {
		t.Errorf("reason should report shifted indices: %q", info.Reason)
	}
}

// TestNegativeStrideIndependent: the same countdown shape without the
// shift is a DOALL — direction of traversal alone is no dependence.
func TestNegativeStrideIndependent(t *testing.T) {
	fs, sums := loopOf(t, `
float a[64]; float b[64];
void main(void) {
    for (int i = 63; i >= 0; i--) {
        a[i] = b[i] + 1.0;
    }
}
`)
	info := AnalyzeLoop(fs, sums)
	if !info.Parallel {
		t.Fatalf("independent countdown loop should be parallel: %s", info.Reason)
	}
	if info.Step != -1 {
		t.Errorf("step: got %d, want -1", info.Step)
	}
}

// TestIntersectAndSortedDeterministic: set-to-slice conversions come back
// ordered by (Name, ID) regardless of insertion order.
func TestIntersectAndSortedDeterministic(t *testing.T) {
	syms := []*minic.Symbol{
		{Name: "z", ID: 0, Type: minic.ScalarType(minic.Int)},
		{Name: "a", ID: 3, Type: minic.ScalarType(minic.Int)},
		{Name: "a", ID: 1, Type: minic.ScalarType(minic.Int)},
		{Name: "m", ID: 2, Type: minic.ScalarType(minic.Int)},
	}
	sa, sb := SymSet{}, SymSet{}
	for _, s := range syms {
		sa.Add(s)
		sb.Add(s)
	}
	wantOrder := []*minic.Symbol{syms[2], syms[1], syms[3], syms[0]} // a#1, a#3, m, z
	check := func(label string, got []*minic.Symbol) {
		t.Helper()
		if len(got) != len(wantOrder) {
			t.Fatalf("%s: got %d symbols, want %d", label, len(got), len(wantOrder))
		}
		for i := range got {
			if got[i] != wantOrder[i] {
				t.Fatalf("%s: position %d: got %v, want %v", label, i, got[i], wantOrder[i])
			}
		}
	}
	for run := 0; run < 20; run++ {
		check("Intersect", sa.Intersect(sb))
		check("Sorted", sa.Sorted())
	}
}
