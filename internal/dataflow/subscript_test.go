package dataflow

import (
	"strings"
	"testing"
)

// TestGCDAdmitsInterleaved: writes to even elements against reads of odd
// elements never collide — the GCD test (gcd(2,2)=2 does not divide 1)
// admits the loop the identical-form rule used to reject.
func TestGCDAdmitsInterleaved(t *testing.T) {
	fs, sums := loopOf(t, `
float a[64];
void main(void) {
    for (int i = 0; i < 31; i++) {
        a[2 * i] = a[2 * i + 1] * 0.5;
    }
}
`)
	info := AnalyzeLoop(fs, sums)
	if !info.Parallel {
		t.Fatalf("even/odd interleaving should be parallel: %s", info.Reason)
	}
}

// TestGCDRejectsAlignedShift: a[2i] vs a[2i+2] share elements two
// iterations apart — gcd divides the difference, Banerjee cannot exclude
// it, the loop stays serialized.
func TestGCDRejectsAlignedShift(t *testing.T) {
	fs, sums := loopOf(t, `
float a[70];
void main(void) {
    for (int i = 0; i < 32; i++) {
        a[2 * i] = a[2 * i + 2] * 0.5;
    }
}
`)
	info := AnalyzeLoop(fs, sums)
	if info.Parallel {
		t.Fatalf("aligned shift carries a dependence and must not be parallel")
	}
	if !strings.Contains(info.Reason, "shifted indices") {
		t.Errorf("reason: %q", info.Reason)
	}
}

// TestBanerjeeExcludesFarConstant: a write sweep a[i] for i in [0:9] never
// reaches the constant read a[42] — the Banerjee range test proves
// independence where the GCD test (gcd(1,0)=1) cannot.
func TestBanerjeeExcludesFarConstant(t *testing.T) {
	fs, sums := loopOf(t, `
float a[64]; float b[16];
void main(void) {
    for (int i = 0; i < 10; i++) {
        a[i] = b[i] + a[42];
    }
}
`)
	info := AnalyzeLoop(fs, sums)
	if !info.Parallel {
		t.Fatalf("read outside the write range should be parallel: %s", info.Reason)
	}
}

// TestBanerjeeInRangeConstantRejected: the same shape with the constant
// inside the write range carries a real dependence.
func TestBanerjeeInRangeConstantRejected(t *testing.T) {
	fs, sums := loopOf(t, `
float a[64]; float b[16];
void main(void) {
    for (int i = 0; i < 10; i++) {
        a[i] = b[i] + a[5];
    }
}
`)
	info := AnalyzeLoop(fs, sums)
	if info.Parallel {
		t.Fatalf("read inside the write range must not be parallel")
	}
}

// TestSymbolicInvariantBoundStaysConservative: with a symbolic loop bound
// there is no Banerjee range; a shifted pair that only the range test could
// clear must stay serialized (pinning the conservative fallback).
func TestSymbolicInvariantBoundStaysConservative(t *testing.T) {
	fs, sums := loopOf(t, `
float a[64]; int n;
void main(void) {
    for (int i = 0; i < n; i++) {
        a[i] = a[42] + 1.0;
    }
}
`)
	info := AnalyzeLoop(fs, sums)
	if info.Parallel {
		t.Fatalf("symbolic bound must fall back to serial when only the range test could prove independence")
	}
}

// TestSymbolicInvariantBoundGCDStillWorks: the GCD test needs no bounds, so
// even/odd interleaving stays parallel under a symbolic bound.
func TestSymbolicInvariantBoundGCDStillWorks(t *testing.T) {
	fs, sums := loopOf(t, `
float a[64]; int n;
void main(void) {
    for (int i = 0; i < n; i++) {
        a[2 * i] = a[2 * i + 1] * 0.5;
    }
}
`)
	info := AnalyzeLoop(fs, sums)
	if !info.Parallel {
		t.Fatalf("GCD disproof is bound-free, loop should be parallel: %s", info.Reason)
	}
}

// TestInvariantSymbolOffset: a loop-invariant symbolic offset appears with
// equal coefficients on both sides and cancels; the remaining constant
// shift is then rejected exactly like the constant case.
func TestInvariantSymbolOffset(t *testing.T) {
	fs, sums := loopOf(t, `
float a[64]; int off;
void main(void) {
    for (int i = 0; i < 16; i++) {
        a[i + off] = a[i + off + 1] * 0.5;
    }
}
`)
	info := AnalyzeLoop(fs, sums)
	if info.Parallel {
		t.Fatalf("shift by one past an invariant offset still carries a dependence")
	}
	if !strings.Contains(info.Reason, "shifted indices") {
		t.Errorf("reason: %q", info.Reason)
	}
}

// TestIterationLocalOffsetNotCancelled: a scalar recomputed every iteration
// must NOT cancel between the two sides of the dependence equation — its
// value differs between iterations, so the pair stays serialized.
func TestIterationLocalOffsetNotCancelled(t *testing.T) {
	fs, sums := loopOf(t, `
float a[64]; float b[64];
void main(void) {
    for (int i = 0; i < 16; i++) {
        int j = i * 3;
        a[j] = a[j + 1] + b[i];
    }
}
`)
	info := AnalyzeLoop(fs, sums)
	if info.Parallel {
		t.Fatalf("per-iteration offset must not be treated as invariant")
	}
}

// TestTriangularNestConservative: the outer loop of a triangular nest
// writes a[8i+j] with j bounded by i; the inner accesses are affine in two
// variables with equal coefficients of neither — the subscript tests must
// not claim independence, and the outer loop is only parallel if the
// identical-form rule applies (it does here: one write, nonzero outer
// coefficient, distinct 8i+j slices per iteration are NOT provable, so the
// analysis stays conservative through the inner loop's symbolic bound).
func TestTriangularNestConservative(t *testing.T) {
	fs, sums := loopOf(t, `
float a[64];
void main(void) {
    for (int i = 0; i < 8; i++) {
        for (int j = 0; j <= i; j++) {
            a[8 * i + j] = a[8 * i + j] + 1.0;
        }
    }
}
`)
	info := AnalyzeLoop(fs, sums)
	// The single access form 8i+j is identical on both sides with nonzero
	// outer-induction coefficient: iterations of the OUTER loop touch
	// disjoint slices (j ≤ i < 8 keeps 8i+j inside iteration i's slice...
	// but the analysis cannot know j's range). Identical forms force
	// same-(i,j) collisions only, so the outer loop is admitted.
	if !info.Parallel {
		t.Logf("conservative rejection is acceptable: %s", info.Reason)
	}
}

// TestTriangularShiftRejected: the shifted variant of the triangular nest
// (a[8i+j] vs a[8i+j+1]) must be rejected — j is written by the inner
// loop's own induction update inside the outer body, so it cannot cancel.
func TestTriangularShiftRejected(t *testing.T) {
	fs, sums := loopOf(t, `
float a[64];
void main(void) {
    for (int i = 0; i < 8; i++) {
        for (int j = 0; j <= i; j++) {
            a[8 * i + j] = a[8 * i + j + 1] + 1.0;
        }
    }
}
`)
	info := AnalyzeLoop(fs, sums)
	if info.Parallel {
		t.Fatalf("shifted triangular access must not be parallel")
	}
}

// TestNonUnitStepBanerjee: stride-4 writes against a constant read past the
// last reachable value: i ∈ {0,4,...,60} writes a[i], read a[62] is not on
// the progression — GCD gcd(1,0)=1 divides, but Banerjee over [0:60] plus
// the trimmed range still admits... the read at 62 > 60 is out of range.
func TestNonUnitStepBanerjee(t *testing.T) {
	fs, sums := loopOf(t, `
float a[64]; float b[64];
void main(void) {
    for (int i = 0; i < 64; i += 4) {
        a[i] = b[i] + a[62];
    }
}
`)
	info := AnalyzeLoop(fs, sums)
	if !info.Parallel {
		t.Fatalf("read beyond the last written index should be parallel: %s", info.Reason)
	}
}

// TestLoopRangeEdgeCases pins LoopRange on the shapes the section walker
// leans on: negative steps, non-unit strides with clipping, symbolic
// bounds, and bodies that write the induction variable.
func TestLoopRangeEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		src  string
		ok   bool
		lo   int64
		hi   int64
		step int64
	}{
		{"forward unit", `
float a[64];
void main(void) {
    for (int i = 0; i < 64; i++) { a[i] = 0.0; }
}`, true, 0, 63, 1},
		{"forward stride 3 clipped", `
float a[64];
void main(void) {
    for (int i = 0; i < 64; i += 3) { a[i] = 0.0; }
}`, true, 0, 63, 3},
		{"forward stride 5 clipped", `
float a[64];
void main(void) {
    for (int i = 2; i < 64; i += 5) { a[i] = 0.0; }
}`, true, 2, 62, 5},
		{"countdown", `
float a[64];
void main(void) {
    for (int i = 63; i >= 0; i--) { a[i] = 0.0; }
}`, true, 0, 63, -1},
		{"countdown stride 4 clipped", `
float a[64];
void main(void) {
    for (int i = 63; i > 0; i -= 4) { a[i] = 0.0; }
}`, true, 3, 63, -4},
		{"symbolic bound", `
float a[64]; int n;
void main(void) {
    for (int i = 0; i < n; i++) { a[i] = 0.0; }
}`, false, 0, 0, 0},
		{"body writes induction", `
float a[64];
void main(void) {
    for (int i = 0; i < 64; i++) { a[i] = 0.0; i = i + 1; }
}`, false, 0, 0, 0},
		{"le bound", `
float a[64];
void main(void) {
    for (int i = 0; i <= 63; i++) { a[i] = 0.0; }
}`, true, 0, 63, 1},
	}
	for _, tc := range cases {
		fs, sums := loopOf(t, tc.src)
		ind, iv, step, ok := LoopRange(fs, sums)
		if ok != tc.ok {
			t.Errorf("%s: ok=%v, want %v", tc.name, ok, tc.ok)
			continue
		}
		if !ok {
			continue
		}
		if ind == nil || iv.Lo != tc.lo || iv.Hi != tc.hi || step != tc.step {
			t.Errorf("%s: got [%d:%d] step %d, want [%d:%d] step %d",
				tc.name, iv.Lo, iv.Hi, step, tc.lo, tc.hi, tc.step)
		}
	}
}
