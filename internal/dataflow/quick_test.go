package dataflow

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/minic"
)

// TestQuickAffineLinearity: ToAffine of a randomly built linear expression
// recovers exactly the coefficients it was built from.
func TestQuickAffineLinearity(t *testing.T) {
	prog, err := minic.Compile(`void main(void) { int i = 0; int j = 0; int k = 0; i = i; j = j; k = k; }`)
	if err != nil {
		t.Fatal(err)
	}
	stmts := prog.Func("main").Body.Stmts
	syms := []*minic.Symbol{
		stmts[0].(*minic.DeclStmt).Sym,
		stmts[1].(*minic.DeclStmt).Sym,
		stmts[2].(*minic.DeclStmt).Sym,
	}
	mkRef := func(s *minic.Symbol) minic.Expr {
		return &minic.VarRef{Name: s.Name, Sym: s}
	}
	f := func(c0, c1, c2, k int8) bool {
		// Build c0*i + c1*j + c2*k + k0 syntactically.
		var e minic.Expr = &minic.IntLit{Value: int64(k)}
		coeffs := []int8{c0, c1, c2}
		for idx, c := range coeffs {
			term := &minic.BinaryExpr{
				Op: minic.TokStar,
				X:  &minic.IntLit{Value: int64(c)},
				Y:  mkRef(syms[idx]),
			}
			e = &minic.BinaryExpr{Op: minic.TokPlus, X: e, Y: term}
		}
		af := ToAffine(e)
		if !af.OK {
			return false
		}
		if af.Const != int64(k) {
			return false
		}
		for idx, c := range coeffs {
			if af.CoeffOf(syms[idx]) != int64(c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDependenceSoundness: for randomly generated straight-line
// programs, every dynamic flow dependence (observed by interpreting
// def/use traces) is covered by a static DependsOn edge.
func TestQuickDependenceSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	names := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 150; trial++ {
		// Random sequence of scalar assignments x = y + z.
		n := 2 + rng.Intn(6)
		src := "int a; int b; int c; int d;\nvoid main(void) {\n"
		type asn struct{ def, u1, u2 int }
		var asns []asn
		for i := 0; i < n; i++ {
			a := asn{rng.Intn(4), rng.Intn(4), rng.Intn(4)}
			asns = append(asns, a)
			src += fmt.Sprintf("    %s = %s + %s;\n", names[a.def], names[a.u1], names[a.u2])
		}
		src += "}\n"
		prog, err := minic.Compile(src)
		if err != nil {
			t.Fatalf("trial %d: compile: %v\n%s", trial, err, src)
		}
		sums := Summarize(prog)
		stmts := prog.Func("main").Body.Stmts
		accs := make([]*Accesses, len(stmts))
		for i, s := range stmts {
			accs[i] = StmtAccesses(s, sums)
		}
		// Dynamic truth: statement j reads what i last defined.
		lastDef := map[int]int{} // var index -> statement index
		for j, a := range asns {
			for _, use := range []int{a.u1, a.u2} {
				if i, ok := lastDef[use]; ok && i < j {
					d := DependsOn(accs[i], accs[j])
					if !d.Kind.Has(DepFlow) {
						t.Fatalf("trial %d: missing flow dep %d->%d through %s\n%s",
							trial, i, j, names[use], src)
					}
				}
			}
			lastDef[a.def] = j
		}
	}
}

// TestQuickSymSetIntersect: |A ∩ B| properties via quick.
func TestQuickSymSetIntersect(t *testing.T) {
	f := func(x, y uint8) bool {
		// Build both sets over one shared symbol universe.
		all := make([]*minic.Symbol, 8)
		for i := range all {
			all[i] = &minic.Symbol{Name: fmt.Sprintf("v%d", i), ID: i, Type: minic.ScalarType(minic.Int)}
		}
		sa, sb := SymSet{}, SymSet{}
		for i := 0; i < 8; i++ {
			if x&(1<<i) != 0 {
				sa.Add(all[i])
			}
			if y&(1<<i) != 0 {
				sb.Add(all[i])
			}
		}
		inter := sa.Intersect(sb)
		// Cardinality matches the popcount of x&y; every member in both.
		want := 0
		for i := 0; i < 8; i++ {
			if x&y&(1<<i) != 0 {
				want++
			}
		}
		if len(inter) != want {
			return false
		}
		for _, s := range inter {
			if !sa.Has(s) || !sb.Has(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
