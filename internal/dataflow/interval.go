package dataflow

import (
	"repro/internal/minic"
)

// Interval is an inclusive integer range [Lo, Hi]. It is the shared value
// abstraction behind the array-bounds lint and the array-section analysis:
// both evaluate affine index forms over per-symbol intervals, so the
// arithmetic lives here once instead of being forked per client.
type Interval struct{ Lo, Hi int64 }

// Empty reports whether the interval contains no integers.
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

// Count returns the number of integers in the interval (0 when empty).
func (iv Interval) Count() int64 {
	if iv.Empty() {
		return 0
	}
	return iv.Hi - iv.Lo + 1
}

// Add returns the element-wise sum {a+b | a in iv, b in o}.
func (iv Interval) Add(o Interval) Interval {
	return Interval{Lo: iv.Lo + o.Lo, Hi: iv.Hi + o.Hi}
}

// AddConst shifts the interval by c.
func (iv Interval) AddConst(c int64) Interval {
	return Interval{Lo: iv.Lo + c, Hi: iv.Hi + c}
}

// MulConst returns {c*a | a in iv}; a negative c flips the bounds.
func (iv Interval) MulConst(c int64) Interval {
	if c >= 0 {
		return Interval{Lo: iv.Lo * c, Hi: iv.Hi * c}
	}
	return Interval{Lo: iv.Hi * c, Hi: iv.Lo * c}
}

// Union returns the convex hull of both intervals.
func (iv Interval) Union(o Interval) Interval {
	if iv.Empty() {
		return o
	}
	if o.Empty() {
		return iv
	}
	out := iv
	if o.Lo < out.Lo {
		out.Lo = o.Lo
	}
	if o.Hi > out.Hi {
		out.Hi = o.Hi
	}
	return out
}

// Intersect returns the common sub-range (possibly empty).
func (iv Interval) Intersect(o Interval) Interval {
	out := iv
	if o.Lo > out.Lo {
		out.Lo = o.Lo
	}
	if o.Hi < out.Hi {
		out.Hi = o.Hi
	}
	return out
}

// Disjoint reports whether the two ranges share no integer.
func (iv Interval) Disjoint(o Interval) bool { return iv.Intersect(o).Empty() }

// Contains reports whether x lies in the interval.
func (iv Interval) Contains(x int64) bool { return iv.Lo <= x && x <= iv.Hi }

// EvalAffine evaluates an affine form over an interval environment and
// reports whether every symbol with a nonzero coefficient was bound. The
// result is the tightest interval containing {Const + sum c_s * v_s} for
// v_s ranging over env[s].
func EvalAffine(af Affine, env map[*minic.Symbol]Interval) (Interval, bool) {
	if !af.OK {
		return Interval{}, false
	}
	out := Interval{Lo: af.Const, Hi: af.Const}
	for _, s := range sortedCoeffSyms(af) {
		c := af.Coeffs[s]
		if c == 0 {
			continue
		}
		iv, ok := env[s]
		if !ok {
			return Interval{}, false
		}
		out = out.Add(iv.MulConst(c))
	}
	return out, true
}

// sortedCoeffSyms returns the affine form's symbols in stable order.
// Interval addition is commutative so evaluation order does not change
// results, but downstream derivations (e.g. phase anchoring) must never
// depend on map order.
func sortedCoeffSyms(af Affine) []*minic.Symbol {
	out := make([]*minic.Symbol, 0, len(af.Coeffs))
	//repolint:allow maprange — order restored by the sort below.
	for s := range af.Coeffs {
		out = append(out, s)
	}
	sortSyms(out)
	return out
}

// LoopRange derives the value range of fs's induction variable when the
// loop has a recognizable induction with constant init and bound and the
// body does not reassign it. It returns the induction symbol, its exact
// value interval over all iterations, the constant step, and ok=false when
// any of those is not derivable (symbolic bounds, body writes, no
// induction). The interval is trimmed to the values the induction variable
// actually takes: with a non-unit step the top (or bottom, for negative
// steps) is the last reachable value, so [lo:hi:step] sections anchored at
// either end stay exact.
func LoopRange(fs *minic.ForStmt, sums Summaries) (*minic.Symbol, Interval, int64, bool) {
	ind, step := inductionVar(fs)
	if ind == nil {
		return nil, Interval{}, 0, false
	}
	init, ok := initConst(fs.Init)
	if !ok {
		return nil, Interval{}, 0, false
	}
	cond, ok := fs.Cond.(*minic.BinaryExpr)
	if !ok {
		return nil, Interval{}, 0, false
	}
	bound, ok := ExprConst(cond.Y)
	if !ok {
		return nil, Interval{}, 0, false
	}
	// A body that writes the induction variable invalidates the range.
	if StmtAccesses(fs.Body, sums).Writes.Has(ind) {
		return nil, Interval{}, 0, false
	}
	var iv Interval
	switch {
	case step > 0:
		iv.Lo = init
		switch cond.Op {
		case minic.TokLt:
			iv.Hi = bound - 1
		case minic.TokLe:
			iv.Hi = bound
		case minic.TokNeq:
			if step != 1 {
				return nil, Interval{}, 0, false
			}
			iv.Hi = bound - 1
		default:
			return nil, Interval{}, 0, false
		}
		// Non-unit steps stop at the last reachable value.
		if step > 1 && iv.Hi >= iv.Lo {
			iv.Hi = iv.Lo + (iv.Hi-iv.Lo)/step*step
		}
	case step < 0:
		iv.Hi = init
		switch cond.Op {
		case minic.TokGt:
			iv.Lo = bound + 1
		case minic.TokGe:
			iv.Lo = bound
		case minic.TokNeq:
			if step != -1 {
				return nil, Interval{}, 0, false
			}
			iv.Lo = bound + 1
		default:
			return nil, Interval{}, 0, false
		}
		if step < -1 && iv.Hi >= iv.Lo {
			iv.Lo = iv.Hi - (iv.Hi-iv.Lo)/(-step)*(-step)
		}
	default:
		return nil, Interval{}, 0, false
	}
	if iv.Empty() {
		return nil, Interval{}, 0, false // loop body never runs
	}
	return ind, iv, step, true
}

// initConst extracts the constant initial value of a for-init clause.
func initConst(s minic.Stmt) (int64, bool) {
	switch init := s.(type) {
	case *minic.DeclStmt:
		if init.Init != nil {
			return ExprConst(init.Init)
		}
	case *minic.ExprStmt:
		if asn, ok := init.X.(*minic.AssignExpr); ok && asn.Op == minic.TokAssign {
			return ExprConst(asn.RHS)
		}
	}
	return 0, false
}

// ExprConst evaluates integer constant expressions (literals, unary minus
// and constant affine combinations).
func ExprConst(e minic.Expr) (int64, bool) {
	af := ToAffine(e)
	if !af.OK {
		return 0, false
	}
	for _, c := range af.Coeffs { //repolint:allow maprange (pure fold, order-insensitive)
		if c != 0 {
			return 0, false
		}
	}
	return af.Const, true
}
