package dataflow

import (
	"fmt"
	"strings"

	"repro/internal/minic"
)

// This file implements the array-section dependence analysis: per-symbol
// access regions expressed as one arithmetic progression [Lo:Hi:Step] per
// array dimension, derived from induction-variable ranges (LoopRange) and
// affine index forms (ToAffine), propagated interprocedurally through
// per-function section summaries. Two accesses to the same array are
// provably independent when their sections are disjoint in some dimension
// (interval test or GCD stride test on the progressions), which lets HTG
// edge construction drop false whole-symbol dependences and shrink the
// communicated bytes of real ones to the overlapping section.

// DimSection is the set of indices an access touches in one array
// dimension: the arithmetic progression {Lo, Lo+Step, ..., Hi} (Hi is
// always reachable: Hi ≡ Lo mod Step), or the whole dimension when the
// analysis cannot bound it.
type DimSection struct {
	Lo, Hi, Step int64
	Whole        bool
}

// point returns the single-index progression {x}.
func point(x int64) DimSection { return DimSection{Lo: x, Hi: x, Step: 1} }

// wholeDim is the unknown/full dimension.
var wholeDim = DimSection{Whole: true}

// norm materializes a Whole dimension as [0:extent-1:1] when the extent is
// known; ok=false when the dimension stays unbounded.
func (d DimSection) norm(extent int) (DimSection, bool) {
	if !d.Whole {
		return d, true
	}
	if extent > 0 {
		return DimSection{Lo: 0, Hi: int64(extent) - 1, Step: 1}, true
	}
	return d, false
}

// Count returns the number of indices in the progression (0 for Whole —
// callers must norm first).
func (d DimSection) Count() int64 {
	if d.Whole || d.Hi < d.Lo {
		return 0
	}
	return (d.Hi-d.Lo)/d.Step + 1
}

// clip aligns Hi down to the last value reachable from Lo by Step.
func (d DimSection) clip() DimSection {
	if !d.Whole && d.Hi >= d.Lo && d.Step > 1 {
		d.Hi = d.Lo + (d.Hi-d.Lo)/d.Step*d.Step
	}
	return d
}

// union returns a progression containing every index of both operands:
// hull interval with step gcd(steps, offset between anchors).
func (d DimSection) union(o DimSection) DimSection {
	if d.Whole || o.Whole {
		return wholeDim
	}
	lo, hi := d.Lo, d.Hi
	if o.Lo < lo {
		lo = o.Lo
	}
	if o.Hi > hi {
		hi = o.Hi
	}
	step := gcd64(d.Step, o.Step)
	if off := abs64(o.Lo - d.Lo); off != 0 {
		step = gcd64(step, off)
	}
	if step < 1 {
		step = 1
	}
	return DimSection{Lo: lo, Hi: hi, Step: step}.clip()
}

// intersect computes the exact intersection of two progressions (CRT).
// The second result is false when the intersection is empty.
func (d DimSection) intersect(o DimSection) (DimSection, bool) {
	if d.Whole {
		return o, true
	}
	if o.Whole {
		return d, true
	}
	if d.Hi < d.Lo || o.Hi < o.Lo {
		return DimSection{}, false
	}
	g := gcd64(d.Step, o.Step)
	diff := o.Lo - d.Lo
	if mod64(diff, g) != 0 {
		return DimSection{}, false // GCD test: residues never meet
	}
	lcm := d.Step / g * o.Step
	// Solve x ≡ d.Lo (mod d.Step), x ≡ o.Lo (mod o.Step):
	// x = d.Lo + d.Step*t with t ≡ (diff/g)·inv(d.Step/g) (mod o.Step/g).
	m := o.Step / g
	t := mod64((diff/g)*modInverse(mod64(d.Step/g, m), m), m)
	x0 := d.Lo + d.Step*t
	lo := d.Lo
	if o.Lo > lo {
		lo = o.Lo
	}
	hi := d.Hi
	if o.Hi < hi {
		hi = o.Hi
	}
	// First common element at or above lo.
	if x0 < lo {
		x0 += (lo - x0 + lcm - 1) / lcm * lcm
	}
	if x0 > hi {
		return DimSection{}, false
	}
	return DimSection{Lo: x0, Hi: hi, Step: lcm}.clip(), true
}

func (d DimSection) String() string {
	if d.Whole {
		return "[*]"
	}
	return fmt.Sprintf("[%d:%d:%d]", d.Lo, d.Hi, d.Step)
}

// Section is the region of one symbol touched by an access aggregate: one
// DimSection per array dimension, or Whole when nothing sharper than the
// full symbol is known (scalars, non-affine indices, unanalyzable calls).
type Section struct {
	Dims  []DimSection
	Whole bool
}

// WholeSection is the conservative "entire symbol" region.
var WholeSection = Section{Whole: true}

// dims returns the per-dimension view, expanding Whole to rank whole-dims.
func (s Section) dims(rank int) []DimSection {
	if !s.Whole && len(s.Dims) == rank {
		return s.Dims
	}
	out := make([]DimSection, rank)
	for i := range out {
		out[i] = wholeDim
	}
	return out
}

// Union returns a section covering both operands.
func (s Section) Union(o Section) Section {
	if s.Whole || o.Whole || len(s.Dims) != len(o.Dims) {
		return WholeSection
	}
	out := Section{Dims: make([]DimSection, len(s.Dims))}
	for i := range s.Dims {
		out.Dims[i] = s.Dims[i].union(o.Dims[i])
	}
	return out
}

// DisjointWith reports whether the two sections of sym provably share no
// element: some dimension's progressions (normalized against the array
// extent) do not intersect. Whole sections are never disjoint.
func (s Section) DisjointWith(o Section, sym *minic.Symbol) bool {
	if sym == nil || !sym.Type.IsArray() {
		return false
	}
	rank := len(sym.Type.Dims)
	sd, od := s.dims(rank), o.dims(rank)
	for i := 0; i < rank; i++ {
		a, aok := sd[i].norm(sym.Type.Dims[i])
		b, bok := od[i].norm(sym.Type.Dims[i])
		if !aok || !bok {
			continue
		}
		if _, ok := a.intersect(b); !ok {
			return true
		}
	}
	return false
}

// contains reports whether index x is on the progression.
func (d DimSection) contains(x int64) bool {
	if d.Whole {
		return true
	}
	if x < d.Lo || x > d.Hi {
		return false
	}
	step := abs64(d.Step)
	if step == 0 {
		step = 1
	}
	return (x-d.Lo)%step == 0
}

// ContainsFlat reports whether the section covers the element at flat
// offset off of sym's array (row-major). Unknown dimensions and Whole
// sections cover everything; out-of-range offsets are reported uncovered.
func (s Section) ContainsFlat(off int64, sym *minic.Symbol) bool {
	if sym == nil || !sym.Type.IsArray() {
		return false
	}
	if s.Whole {
		return true
	}
	rank := len(sym.Type.Dims)
	sd := s.dims(rank)
	rem := off
	for i := rank - 1; i >= 0; i-- {
		extent := int64(sym.Type.Dims[i])
		var idx int64
		if extent > 0 {
			idx = rem % extent
			rem /= extent
		} else {
			// Unsized dimension: only legal as the leading dim, absorbing
			// whatever offset remains.
			idx = rem
			rem = 0
		}
		d, ok := sd[i].norm(sym.Type.Dims[i])
		if !ok {
			continue // unbounded dim covers everything
		}
		if !d.contains(idx) {
			return false
		}
	}
	return rem == 0
}

// OverlapBytes over-approximates the bytes shared by the two sections of
// sym: the per-dimension intersection counts multiplied out, clamped to the
// symbol size. Disjoint sections yield 0.
func (s Section) OverlapBytes(o Section, sym *minic.Symbol) int {
	if sym == nil || !sym.Type.IsArray() {
		return sym.Type.SizeBytes()
	}
	if s.DisjointWith(o, sym) {
		return 0
	}
	rank := len(sym.Type.Dims)
	sd, od := s.dims(rank), o.dims(rank)
	elems := int64(1)
	for i := 0; i < rank; i++ {
		a, aok := sd[i].norm(sym.Type.Dims[i])
		b, bok := od[i].norm(sym.Type.Dims[i])
		if !aok || !bok {
			return sym.Type.SizeBytes() // unbounded dimension
		}
		iv, ok := a.intersect(b)
		if !ok {
			return 0
		}
		elems *= iv.Count()
	}
	bytes := elems * int64(sym.Type.ElemBytes())
	if whole := int64(sym.Type.SizeBytes()); bytes > whole {
		bytes = whole
	}
	return int(bytes)
}

func (s Section) String() string {
	if s.Whole {
		return "[whole]"
	}
	var b strings.Builder
	for _, d := range s.Dims {
		b.WriteString(d.String())
	}
	return b.String()
}

// Sections maps each symbol an access aggregate touches to the region read
// and the region written. A symbol present in the aggregate's SymSets but
// absent here is implicitly Whole — the walker only records what it can
// sharpen, so lookups must go through SecOf.
type Sections struct {
	Reads  map[*minic.Symbol]Section
	Writes map[*minic.Symbol]Section
}

// SecOf returns the recorded section of sym in m, defaulting to Whole.
func SecOf(m map[*minic.Symbol]Section, sym *minic.Symbol) Section {
	if m == nil {
		return WholeSection
	}
	if s, ok := m[sym]; ok {
		return s
	}
	return WholeSection
}

// SectionEffects is a function's interprocedural section summary: the
// region of each array parameter it reads/writes (in the parameter's own
// index space, which coincides with the caller array's when passed whole)
// and the regions of accessed globals.
type SectionEffects struct {
	ParamRead   []Section
	ParamWrite  []Section
	GlobalRead  map[*minic.Symbol]Section
	GlobalWrite map[*minic.Symbol]Section
}

// SectionSummaries maps functions to their section summaries.
type SectionSummaries map[*minic.FuncDecl]*SectionEffects

// SummarizeSections computes per-function section summaries in call-graph
// dependency order. Recursive cycles fall back to Whole for every function
// involved (a callee still being summarized reads as "unknown", and the
// walker treats unknown callees conservatively).
func SummarizeSections(prog *minic.Program, sums Summaries) SectionSummaries {
	out := SectionSummaries{}
	visiting := map[*minic.FuncDecl]bool{}
	var visit func(f *minic.FuncDecl)
	visit = func(f *minic.FuncDecl) {
		if out[f] != nil || visiting[f] {
			return
		}
		visiting[f] = true
		for _, callee := range calleesOf(f) {
			visit(callee)
		}
		w := newSecWalker(sums, out)
		w.stmt(f.Body)
		eff := &SectionEffects{
			ParamRead:   make([]Section, len(f.Params)),
			ParamWrite:  make([]Section, len(f.Params)),
			GlobalRead:  map[*minic.Symbol]Section{},
			GlobalWrite: map[*minic.Symbol]Section{},
		}
		for i := range f.Params {
			eff.ParamRead[i] = SecOf(w.out.Reads, f.Params[i].Sym)
			eff.ParamWrite[i] = SecOf(w.out.Writes, f.Params[i].Sym)
		}
		for sym, sec := range w.out.Reads { //repolint:allow maprange (map build, per-key independent)
			if sym.Kind == minic.SymGlobal {
				eff.GlobalRead[sym] = sec
			}
		}
		for sym, sec := range w.out.Writes { //repolint:allow maprange (map build, per-key independent)
			if sym.Kind == minic.SymGlobal {
				eff.GlobalWrite[sym] = sec
			}
		}
		out[f] = eff
		delete(visiting, f)
	}
	for _, f := range prog.Funcs {
		visit(f)
	}
	return out
}

// calleesOf lists the user functions f calls, in syntactic order.
func calleesOf(f *minic.FuncDecl) []*minic.FuncDecl {
	var out []*minic.FuncDecl
	var walkE func(e minic.Expr)
	var walkS func(s minic.Stmt)
	walkE = func(e minic.Expr) {
		switch ex := e.(type) {
		case *minic.IndexExpr:
			for _, ix := range ex.Indices {
				walkE(ix)
			}
		case *minic.UnaryExpr:
			walkE(ex.X)
		case *minic.BinaryExpr:
			walkE(ex.X)
			walkE(ex.Y)
		case *minic.CondExpr:
			walkE(ex.Cond)
			walkE(ex.Then)
			walkE(ex.Else)
		case *minic.CallExpr:
			if ex.Builtin == "" && ex.Fn != nil {
				out = append(out, ex.Fn)
			}
			for _, a := range ex.Args {
				walkE(a)
			}
		case *minic.AssignExpr:
			walkE(ex.LHS)
			walkE(ex.RHS)
		case *minic.IncDecExpr:
			walkE(ex.X)
		case *minic.CastExpr:
			walkE(ex.X)
		}
	}
	walkS = func(s minic.Stmt) {
		switch st := s.(type) {
		case *minic.DeclStmt:
			if st.Init != nil {
				walkE(st.Init)
			}
			for _, e := range st.List {
				walkE(e)
			}
		case *minic.ExprStmt:
			walkE(st.X)
		case *minic.BlockStmt:
			for _, inner := range st.Stmts {
				walkS(inner)
			}
		case *minic.IfStmt:
			walkE(st.Cond)
			walkS(st.Then)
			if st.Else != nil {
				walkS(st.Else)
			}
		case *minic.ForStmt:
			if st.Init != nil {
				walkS(st.Init)
			}
			if st.Cond != nil {
				walkE(st.Cond)
			}
			if st.Post != nil {
				walkE(st.Post)
			}
			walkS(st.Body)
		case *minic.WhileStmt:
			walkE(st.Cond)
			walkS(st.Body)
		case *minic.ReturnStmt:
			if st.Value != nil {
				walkE(st.Value)
			}
		}
	}
	walkS(f.Body)
	return out
}

// StmtSections computes the section aggregate of statement s: for every
// array the statement (or anything it calls) touches, the tightest
// [lo:hi:step] region the analysis can prove, Whole otherwise. The result
// is a sound over-approximation of the statement's element footprint and
// covers at least every symbol StmtAccesses records.
func StmtSections(s minic.Stmt, sums Summaries, secs SectionSummaries) *Sections {
	w := newSecWalker(sums, secs)
	w.stmt(s)
	return w.out
}

// ivRange is an induction variable's value progression within scope.
type ivRange struct {
	iv   Interval
	step int64
}

type secWalker struct {
	sums Summaries
	secs SectionSummaries
	env  map[*minic.Symbol]ivRange
	out  *Sections
}

func newSecWalker(sums Summaries, secs SectionSummaries) *secWalker {
	return &secWalker{
		sums: sums,
		secs: secs,
		env:  map[*minic.Symbol]ivRange{},
		out:  &Sections{Reads: map[*minic.Symbol]Section{}, Writes: map[*minic.Symbol]Section{}},
	}
}

// record unions sec into the read or write region of sym.
func (w *secWalker) record(sym *minic.Symbol, sec Section, write bool) {
	if sym == nil || !sym.Type.IsArray() {
		return // scalars stay whole-symbol; sections only sharpen arrays
	}
	m := w.out.Reads
	if write {
		m = w.out.Writes
	}
	if prev, ok := m[sym]; ok {
		sec = prev.Union(sec)
	}
	m[sym] = sec
}

// indexSection builds the section of one explicit array access. Row views
// (fewer indices than rank) leave trailing dimensions whole.
func (w *secWalker) indexSection(sym *minic.Symbol, indices []minic.Expr) Section {
	rank := len(sym.Type.Dims)
	dims := make([]DimSection, rank)
	for d := range dims {
		dims[d] = wholeDim
		if d < len(indices) {
			if ap, ok := w.apOf(indices[d]); ok {
				dims[d] = ap
			}
		}
	}
	return Section{Dims: dims}
}

// apOf evaluates an index expression to an arithmetic progression over the
// current induction environment. For an affine form c0 + Σ ci·vi with each
// vi ranging over the progression [loi:hii:stepi], every attained value is
// congruent to the interval minimum modulo g = gcd(|ci|·stepi), so
// [min:max:g] over-approximates the attained set (exactly when a single
// variable term is present).
func (w *secWalker) apOf(e minic.Expr) (DimSection, bool) {
	af := ToAffine(e)
	if !af.OK {
		return DimSection{}, false
	}
	lo, hi := af.Const, af.Const
	var g int64
	for _, s := range sortedCoeffSyms(af) {
		c := af.Coeffs[s]
		if c == 0 {
			continue
		}
		r, ok := w.env[s]
		if !ok {
			return DimSection{}, false
		}
		ivc := Interval{Lo: r.iv.Lo, Hi: r.iv.Hi}.MulConst(c)
		lo += ivc.Lo
		hi += ivc.Hi
		g = gcd64(g, abs64(c)*abs64(r.step))
	}
	if g < 1 {
		g = 1
	}
	return DimSection{Lo: lo, Hi: hi, Step: g}.clip(), true
}

func (w *secWalker) stmt(s minic.Stmt) {
	switch st := s.(type) {
	case *minic.DeclStmt:
		if st.Init != nil {
			w.expr(st.Init)
		}
		for _, e := range st.List {
			w.expr(e)
		}
		if st.Sym != nil && st.Sym.Type.IsArray() && len(st.List) > 0 {
			w.record(st.Sym, WholeSection, true)
		}
	case *minic.ExprStmt:
		w.expr(st.X)
	case *minic.BlockStmt:
		for _, inner := range st.Stmts {
			w.stmt(inner)
		}
	case *minic.IfStmt:
		w.expr(st.Cond)
		w.stmt(st.Then)
		if st.Else != nil {
			w.stmt(st.Else)
		}
	case *minic.ForStmt:
		w.forStmt(st)
	case *minic.WhileStmt:
		w.expr(st.Cond)
		w.stmt(st.Body)
	case *minic.ReturnStmt:
		if st.Value != nil {
			w.expr(st.Value)
		}
	case *minic.BreakStmt, *minic.ContinueStmt:
	}
}

// forStmt binds the loop's induction progression while walking the body so
// indices affine in the induction variable resolve to sections. Loops whose
// range is not derivable (symbolic bounds, body writes the induction
// variable, unrecognized shape) walk unbound and accesses involving the
// induction variable fall back to whole dimensions.
func (w *secWalker) forStmt(st *minic.ForStmt) {
	if st.Init != nil {
		w.stmt(st.Init)
	}
	if st.Cond != nil {
		w.expr(st.Cond)
	}
	ind, iv, step, ok := LoopRange(st, w.sums)
	if ok {
		prev, had := w.env[ind]
		w.env[ind] = ivRange{iv: iv, step: step}
		w.stmt(st.Body)
		if st.Post != nil {
			w.expr(st.Post)
		}
		if had {
			w.env[ind] = prev
		} else {
			delete(w.env, ind)
		}
		return
	}
	w.stmt(st.Body)
	if st.Post != nil {
		w.expr(st.Post)
	}
}

func (w *secWalker) expr(e minic.Expr) {
	switch ex := e.(type) {
	case *minic.IntLit, *minic.FloatLit, *minic.VarRef:
	case *minic.IndexExpr:
		w.record(ex.Array.Sym, w.indexSection(ex.Array.Sym, ex.Indices), false)
		for _, ix := range ex.Indices {
			w.expr(ix)
		}
	case *minic.UnaryExpr:
		w.expr(ex.X)
	case *minic.BinaryExpr:
		w.expr(ex.X)
		w.expr(ex.Y)
	case *minic.CondExpr:
		w.expr(ex.Cond)
		w.expr(ex.Then)
		w.expr(ex.Else)
	case *minic.CallExpr:
		w.call(ex)
	case *minic.AssignExpr:
		w.expr(ex.RHS)
		w.lvalue(ex.LHS, ex.Op != minic.TokAssign)
	case *minic.IncDecExpr:
		w.lvalue(ex.X, true)
	case *minic.CastExpr:
		w.expr(ex.X)
	}
}

func (w *secWalker) lvalue(e minic.Expr, alsoRead bool) {
	lv, ok := e.(*minic.IndexExpr)
	if !ok {
		return
	}
	sec := w.indexSection(lv.Array.Sym, lv.Indices)
	w.record(lv.Array.Sym, sec, true)
	if alsoRead {
		w.record(lv.Array.Sym, sec, false)
	}
	for _, ix := range lv.Indices {
		w.expr(ix)
	}
}

// call translates the callee's section summary into the caller's index
// space: a whole-array argument inherits the parameter sections verbatim; a
// row-view argument pins the leading dimensions to the view's indices and
// takes the callee's (lower-rank) parameter section for the trailing ones.
// Unknown callees (recursion cycles) degrade to Whole.
func (w *secWalker) call(ex *minic.CallExpr) {
	if ex.Builtin != "" {
		for _, a := range ex.Args {
			w.expr(a)
		}
		return
	}
	eff := w.sums[ex.Fn]
	sec := w.secs[ex.Fn]
	for i, a := range ex.Args {
		if !ex.Fn.Params[i].Type.IsArray() {
			w.expr(a)
			continue
		}
		var sym *minic.Symbol
		var lead []minic.Expr
		switch arg := a.(type) {
		case *minic.VarRef:
			sym = arg.Sym
		case *minic.IndexExpr:
			sym = arg.Array.Sym
			lead = arg.Indices
			for _, ix := range arg.Indices {
				w.expr(ix)
			}
		}
		if sym == nil {
			continue
		}
		read, write := true, true
		if eff != nil {
			read, write = eff.ParamRead[i], eff.ParamWrite[i]
		}
		var rsec, wsec Section
		rsec, wsec = WholeSection, WholeSection
		if sec != nil {
			rsec = w.argSection(sym, lead, sec.ParamRead[i])
			wsec = w.argSection(sym, lead, sec.ParamWrite[i])
		}
		if read {
			w.record(sym, rsec, false)
		}
		if write {
			w.record(sym, wsec, true)
		}
	}
	if eff != nil {
		for _, g := range eff.GlobalRead.Sorted() {
			var gs Section = WholeSection
			if sec != nil {
				gs = SecOf(sec.GlobalRead, g)
			}
			w.record(g, gs, false)
		}
		for _, g := range eff.GlobalWrite.Sorted() {
			var gs Section = WholeSection
			if sec != nil {
				gs = SecOf(sec.GlobalWrite, g)
			}
			w.record(g, gs, true)
		}
	}
}

// argSection maps a callee parameter section onto the caller's array: lead
// indices (row view) become pinned leading dimensions; the parameter's own
// dimensions fill the rest. Rank mismatches degrade to Whole.
func (w *secWalker) argSection(sym *minic.Symbol, lead []minic.Expr, psec Section) Section {
	rank := len(sym.Type.Dims)
	tailRank := rank - len(lead)
	if tailRank < 0 {
		return WholeSection
	}
	dims := make([]DimSection, rank)
	for d, ix := range lead {
		dims[d] = wholeDim
		if ap, ok := w.apOf(ix); ok {
			dims[d] = ap
		}
	}
	tail := psec.dims(tailRank)
	copy(dims[len(lead):], tail)
	return Section{Dims: dims}
}

// DependsOnSections computes the dependence of statement b on an earlier
// sibling a like DependsOn, but consults the two statements' section
// aggregates: conflicts whose sections are provably disjoint are dropped,
// and flow bytes shrink to the overlapping section. With nil sections it
// degrades exactly to DependsOn.
func DependsOnSections(a, b *Accesses, as, bs *Sections) Dep {
	var d Dep
	var aw, ar, bw, br map[*minic.Symbol]Section
	if as != nil {
		aw, ar = as.Writes, as.Reads
	}
	if bs != nil {
		bw, br = bs.Writes, bs.Reads
	}
	for _, sym := range a.Writes.Intersect(b.Reads) {
		ws, rs := SecOf(aw, sym), SecOf(br, sym)
		if ws.DisjointWith(rs, sym) {
			continue
		}
		d.Kind |= DepFlow
		d.FlowSyms = append(d.FlowSyms, sym)
		if sym.Type.IsArray() {
			d.FlowBytes += ws.OverlapBytes(rs, sym)
		} else {
			d.FlowBytes += sym.Type.SizeBytes()
		}
	}
	for _, sym := range a.Reads.Intersect(b.Writes) {
		if !SecOf(ar, sym).DisjointWith(SecOf(bw, sym), sym) {
			d.Kind |= DepAnti
			break
		}
	}
	for _, sym := range a.Writes.Intersect(b.Writes) {
		if !SecOf(aw, sym).DisjointWith(SecOf(bw, sym), sym) {
			d.Kind |= DepOutput
			break
		}
	}
	return d
}

// --- small integer helpers -------------------------------------------------

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

func gcd64(a, b int64) int64 {
	a, b = abs64(a), abs64(b)
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// mod64 is the non-negative remainder of a mod m (m > 0).
func mod64(a, m int64) int64 {
	if m <= 0 {
		return 0
	}
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

// modInverse returns a^-1 mod m for gcd(a, m) = 1 (extended Euclid);
// m = 1 yields 0.
func modInverse(a, m int64) int64 {
	if m == 1 {
		return 0
	}
	t, newT := int64(0), int64(1)
	r, newR := m, mod64(a, m)
	for newR != 0 {
		q := r / newR
		t, newT = newT, t-q*newT
		r, newR = newR, r-q*newR
	}
	return mod64(t, m)
}
