package dataflow

import (
	"repro/internal/minic"
)

// Affine is a linear form over program symbols: Const + sum Coeff[s]*s.
// It is the index representation used by the loop-carried dependence test.
type Affine struct {
	Const  int64
	Coeffs map[*minic.Symbol]int64
	// OK reports whether the expression was representable.
	OK bool
}

// CoeffOf returns the coefficient of sym (0 if absent).
func (a Affine) CoeffOf(sym *minic.Symbol) int64 { return a.Coeffs[sym] }

// EqualModulo reports whether two affine forms are identical.
func (a Affine) EqualModulo(b Affine) bool {
	if !a.OK || !b.OK || a.Const != b.Const {
		return false
	}
	for s, c := range a.Coeffs { //repolint:allow maprange (pure equality predicate)
		if c != 0 && b.Coeffs[s] != c {
			return false
		}
	}
	for s, c := range b.Coeffs { //repolint:allow maprange (pure equality predicate)
		if c != 0 && a.Coeffs[s] != c {
			return false
		}
	}
	return true
}

// ToAffine converts an index expression to affine form if possible.
func ToAffine(e minic.Expr) Affine {
	a := Affine{Coeffs: map[*minic.Symbol]int64{}, OK: true}
	if !affineInto(e, 1, &a) {
		return Affine{OK: false}
	}
	return a
}

func affineInto(e minic.Expr, scale int64, a *Affine) bool {
	switch ex := e.(type) {
	case *minic.IntLit:
		a.Const += scale * ex.Value
		return true
	case *minic.VarRef:
		if ex.Sym == nil || !ex.Sym.Type.IsScalar() || ex.Sym.Type.Base != minic.Int {
			return false
		}
		a.Coeffs[ex.Sym] += scale
		return true
	case *minic.UnaryExpr:
		if ex.Op == minic.TokMinus {
			return affineInto(ex.X, -scale, a)
		}
		return false
	case *minic.BinaryExpr:
		switch ex.Op {
		case minic.TokPlus:
			return affineInto(ex.X, scale, a) && affineInto(ex.Y, scale, a)
		case minic.TokMinus:
			return affineInto(ex.X, scale, a) && affineInto(ex.Y, -scale, a)
		case minic.TokStar:
			if c, ok := constOf(ex.X); ok {
				return affineInto(ex.Y, scale*c, a)
			}
			if c, ok := constOf(ex.Y); ok {
				return affineInto(ex.X, scale*c, a)
			}
			return false
		}
		return false
	}
	return false
}

func constOf(e minic.Expr) (int64, bool) {
	switch ex := e.(type) {
	case *minic.IntLit:
		return ex.Value, true
	case *minic.UnaryExpr:
		if ex.Op == minic.TokMinus {
			if v, ok := constOf(ex.X); ok {
				return -v, true
			}
		}
	}
	return 0, false
}

// ReductionOp classifies a recognized reduction.
type ReductionOp int

// Supported reduction operators.
const (
	ReduceAdd ReductionOp = iota
	ReduceMul
	ReduceMin
	ReduceMax
)

// Reduction is a scalar reduction recognized in a loop body: every access
// to Sym inside the body is of the form Sym = Sym op expr (or Sym op= expr)
// where expr does not read Sym.
type Reduction struct {
	Sym *minic.Symbol
	Op  ReductionOp
}

// LoopInfo is the result of analyzing a for loop for iteration-level
// parallelism.
type LoopInfo struct {
	Loop *minic.ForStmt
	// IndVar is the recognized induction variable (nil if none).
	IndVar *minic.Symbol
	// Step is the induction increment per iteration (usually 1).
	Step int64
	// Parallel reports that iterations are independent after privatizing
	// Private scalars and splitting Reductions.
	Parallel bool
	// Reason explains why the loop is not parallel (diagnostic).
	Reason string
	// Private lists variables (scalars and body-declared arrays) that are
	// private to each iteration.
	Private []*minic.Symbol
	// Reductions lists recognized scalar reductions.
	Reductions []Reduction
}

// AnalyzeLoop decides whether fs is a DOALL loop (conservatively). A loop
// qualifies when:
//   - it has a recognizable induction variable i with constant step,
//   - the body contains no break/continue/return and no while loops whose
//     trip counts could differ per iteration in uncontrolled ways (nested
//     for loops are fine),
//   - every scalar written in the body is the induction variable, a
//     privatizable local, or a recognized reduction,
//   - every array written in the body is written only at indices whose
//     affine form in i has a nonzero i coefficient, and every read of such
//     an array inside the body has an identical affine index (so iteration
//     k touches only "its" elements), and the array is not passed whole to
//     a callee inside the body.
func AnalyzeLoop(fs *minic.ForStmt, sums Summaries) *LoopInfo {
	info := &LoopInfo{Loop: fs, Parallel: false}
	ind, step := inductionVar(fs)
	if ind == nil {
		info.Reason = "no recognizable induction variable"
		return info
	}
	info.IndVar = ind
	info.Step = step

	if hasLoopExit(fs.Body) {
		info.Reason = "body contains break/continue/return"
		return info
	}

	acc := StmtAccesses(fs.Body, sums)

	// Classify written scalars.
	declared := declaredVars(fs.Body)
	reductions, redSyms, nonRed := findReductions(fs.Body, sums)
	// Iterate sorted so Private ordering and the first-reported Reason are
	// stable across runs.
	for _, sym := range acc.Writes.Sorted() {
		if !sym.Type.IsScalar() {
			continue
		}
		if sym == ind {
			continue
		}
		if declared[sym] {
			info.Private = append(info.Private, sym)
			continue
		}
		if redSyms[sym] && !nonRed[sym] {
			continue
		}
		if privatizable(fs.Body, sym, sums) {
			info.Private = append(info.Private, sym)
			continue
		}
		info.Reason = "scalar " + sym.Name + " carries a dependence across iterations"
		return info
	}
	for _, r := range reductions {
		if !nonRed[r.Sym] {
			info.Reductions = append(info.Reductions, r)
		}
	}

	// Classify arrays. Arrays declared inside the body are private to the
	// iteration (fresh storage per entry, by C scoping), so only writes to
	// arrays living outside the loop can carry dependences.
	written := SymSet{}
	for _, aa := range acc.Arrays {
		if aa.Write && !declared.Has(aa.Sym) {
			written.Add(aa.Sym)
		}
	}
	for _, sym := range declared.Sorted() {
		if sym.Type.IsArray() {
			info.Private = append(info.Private, sym)
		}
	}
	for _, sym := range acc.Writes.Sorted() {
		if sym.Type.IsScalar() || declared.Has(sym) {
			continue
		}
		if acc.WholeArrays.Has(sym) && written[sym] {
			// Written both through calls and via indices: ambiguous.
			info.Reason = "array " + sym.Name + " is written through a call"
			return info
		}
		if acc.WholeArrays.Has(sym) {
			// Written only inside callees: we cannot see indices.
			info.Reason = "array " + sym.Name + " is written through a call"
			return info
		}
	}
	// Per written array: every pair of accesses involving a write must be
	// provably independent across iterations. Identical affine forms with a
	// nonzero induction coefficient qualify (iteration k touches only "its"
	// elements); differing forms go through the GCD and Banerjee subscript
	// tests, which admit e.g. a[2i] writes against a[2i+1] reads that the
	// old identical-form rule rejected.
	lo, hi, haveRange := int64(0), int64(0), false
	if _, iv, _, ok := LoopRange(fs, sums); ok {
		lo, hi, haveRange = iv.Lo, iv.Hi, true
	}
	for _, sym := range written.Sorted() {
		var accs []ArrayAccess
		for _, aa := range acc.Arrays {
			if aa.Sym == sym {
				accs = append(accs, aa)
			}
		}
		for p := range accs {
			for q := p; q < len(accs); q++ {
				if !accs[p].Write && !accs[q].Write {
					continue
				}
				if reason := pairCarriesDep(accs[p], accs[q], ind, acc.Writes, lo, hi, haveRange); reason != "" {
					info.Reason = "array " + sym.Name + " " + reason
					return info
				}
			}
		}
	}
	info.Parallel = true
	return info
}

// pairCarriesDep decides whether two accesses to the same array may touch a
// common element in two different iterations of the loop over ind. It
// returns "" when some dimension proves independence, otherwise a
// diagnostic phrase. A dimension d proves independence when the dependence
// equation c1·i − c2·i′ = k2 − k1 (after cancelling loop-invariant terms
// with equal coefficients) has no solution — by the GCD divisibility test
// or the Banerjee range test over [lo, hi] — or when the forms are
// identical with a nonzero induction coefficient, forcing i = i′.
func pairCarriesDep(a1, a2 ArrayAccess, ind *minic.Symbol, bodyWrites SymSet, lo, hi int64, haveRange bool) string {
	nd := len(a1.Indices)
	if len(a2.Indices) < nd {
		nd = len(a2.Indices)
	}
	fallback := "is accessed at shifted indices across iterations"
	for d := 0; d < nd; d++ {
		af1, af2 := ToAffine(a1.Indices[d]), ToAffine(a2.Indices[d])
		if !af1.OK || !af2.OK {
			if d == 0 {
				fallback = "has a non-affine index"
			}
			continue
		}
		c1, c2 := af1.CoeffOf(ind), af2.CoeffOf(ind)
		// Identical forms: elements coincide only in the same iteration
		// when the induction coefficient is nonzero.
		if af1.EqualModulo(af2) {
			if c1 != 0 {
				return ""
			}
			if d == 0 {
				fallback = "is accessed at an index independent of the induction variable"
			}
			continue
		}
		// The subscript tests reason about the constant difference, which
		// requires every other symbol to cancel: equal coefficients and a
		// value that cannot change between iterations (not written in the
		// body).
		if !invariantCoeffsMatch(af1, af2, ind, bodyWrites) {
			continue
		}
		diff := af2.Const - af1.Const
		if g := gcd64(c1, c2); g != 0 && diff%g != 0 {
			return "" // GCD test: c1·i − c2·i′ = diff has no integer solution
		}
		if haveRange {
			// Banerjee bounds: range of c1·i − c2·i′ over i, i′ ∈ [lo, hi].
			min := mulMin(c1, lo, hi) - mulMax(c2, lo, hi)
			max := mulMax(c1, lo, hi) - mulMin(c2, lo, hi)
			if diff < min || diff > max {
				return ""
			}
		}
	}
	return fallback
}

// invariantCoeffsMatch reports whether every non-induction symbol appears
// with the same coefficient in both forms and is loop-invariant.
func invariantCoeffsMatch(af1, af2 Affine, ind *minic.Symbol, bodyWrites SymSet) bool {
	check := func(coeffs map[*minic.Symbol]int64) bool {
		for s, c := range coeffs { //repolint:allow maprange (pure predicate)
			if s == ind || c == 0 {
				continue
			}
			if af1.CoeffOf(s) != af2.CoeffOf(s) || bodyWrites.Has(s) {
				return false
			}
		}
		return true
	}
	return check(af1.Coeffs) && check(af2.Coeffs)
}

// mulMin / mulMax bound c·i over i ∈ [lo, hi].
func mulMin(c, lo, hi int64) int64 {
	if c >= 0 {
		return c * lo
	}
	return c * hi
}

func mulMax(c, lo, hi int64) int64 {
	if c >= 0 {
		return c * hi
	}
	return c * lo
}

// InductionVar recognizes "for (int i = e0; i < e1; i++)" patterns and
// returns the induction symbol and step (nil, 0 if unrecognized). Exported
// for the analysis package's interval-based bounds checking.
func InductionVar(fs *minic.ForStmt) (*minic.Symbol, int64) { return inductionVar(fs) }

// inductionVar recognizes "for (int i = e0; i < e1; i++)" patterns and
// returns the induction symbol and step.
func inductionVar(fs *minic.ForStmt) (*minic.Symbol, int64) {
	var sym *minic.Symbol
	switch init := fs.Init.(type) {
	case *minic.DeclStmt:
		sym = init.Sym
	case *minic.ExprStmt:
		if asn, ok := init.X.(*minic.AssignExpr); ok && asn.Op == minic.TokAssign {
			if vr, ok := asn.LHS.(*minic.VarRef); ok {
				sym = vr.Sym
			}
		}
	}
	if sym == nil || !sym.Type.IsScalar() || sym.Type.Base != minic.Int {
		return nil, 0
	}
	// Condition must compare the induction variable.
	cond, ok := fs.Cond.(*minic.BinaryExpr)
	if !ok {
		return nil, 0
	}
	condVar, okc := cond.X.(*minic.VarRef)
	if !okc || condVar.Sym != sym {
		return nil, 0
	}
	switch cond.Op {
	case minic.TokLt, minic.TokLe, minic.TokGt, minic.TokGe, minic.TokNeq:
	default:
		return nil, 0
	}
	// Post must be i++, i--, i += c, i -= c, or i = i + c.
	switch post := fs.Post.(type) {
	case *minic.IncDecExpr:
		if vr, ok := post.X.(*minic.VarRef); ok && vr.Sym == sym {
			if post.Op == minic.TokInc {
				return sym, 1
			}
			return sym, -1
		}
	case *minic.AssignExpr:
		vr, ok := post.LHS.(*minic.VarRef)
		if !ok || vr.Sym != sym {
			return nil, 0
		}
		switch post.Op {
		case minic.TokPlusEq:
			if c, ok := constOf(post.RHS); ok && c != 0 {
				return sym, c
			}
		case minic.TokMinusEq:
			if c, ok := constOf(post.RHS); ok && c != 0 {
				return sym, -c
			}
		case minic.TokAssign:
			af := ToAffine(post.RHS)
			if af.OK && af.CoeffOf(sym) == 1 && af.Const != 0 && len(af.Coeffs) == 1 {
				return sym, af.Const
			}
		}
	}
	return nil, 0
}

// hasLoopExit reports whether the block contains a break/continue/return
// at the level of this loop (nested loops encapsulate their own exits).
func hasLoopExit(b *minic.BlockStmt) bool {
	for _, s := range b.Stmts {
		switch st := s.(type) {
		case *minic.BreakStmt, *minic.ContinueStmt, *minic.ReturnStmt:
			return true
		case *minic.BlockStmt:
			if hasLoopExit(st) {
				return true
			}
		case *minic.IfStmt:
			if hasLoopExit(st.Then) {
				return true
			}
			if st.Else != nil {
				if eb, ok := st.Else.(*minic.BlockStmt); ok && hasLoopExit(eb) {
					return true
				}
				if ei, ok := st.Else.(*minic.IfStmt); ok {
					tmp := &minic.BlockStmt{Stmts: []minic.Stmt{ei}}
					if hasLoopExit(tmp) {
						return true
					}
				}
			}
		case *minic.ForStmt:
			// return inside a nested for still exits the enclosing function.
			if hasReturn(st.Body) {
				return true
			}
		case *minic.WhileStmt:
			if hasReturn(st.Body) {
				return true
			}
		}
	}
	return false
}

func hasReturn(b *minic.BlockStmt) bool {
	for _, s := range b.Stmts {
		switch st := s.(type) {
		case *minic.ReturnStmt:
			return true
		case *minic.BlockStmt:
			if hasReturn(st) {
				return true
			}
		case *minic.IfStmt:
			if hasReturn(st.Then) {
				return true
			}
			if eb, ok := st.Else.(*minic.BlockStmt); ok && hasReturn(eb) {
				return true
			}
			if ei, ok := st.Else.(*minic.IfStmt); ok && hasReturn(&minic.BlockStmt{Stmts: []minic.Stmt{ei}}) {
				return true
			}
		case *minic.ForStmt:
			if hasReturn(st.Body) {
				return true
			}
		case *minic.WhileStmt:
			if hasReturn(st.Body) {
				return true
			}
		}
	}
	return false
}

// declaredVars collects variables (scalars and arrays) declared anywhere
// inside the block; they are iteration-private by construction.
func declaredVars(b *minic.BlockStmt) SymSet {
	out := SymSet{}
	var walk func(s minic.Stmt)
	walk = func(s minic.Stmt) {
		switch st := s.(type) {
		case *minic.DeclStmt:
			if st.Sym != nil {
				out.Add(st.Sym)
			}
		case *minic.BlockStmt:
			for _, inner := range st.Stmts {
				walk(inner)
			}
		case *minic.IfStmt:
			walk(st.Then)
			if st.Else != nil {
				walk(st.Else)
			}
		case *minic.ForStmt:
			if st.Init != nil {
				walk(st.Init)
			}
			walk(st.Body)
		case *minic.WhileStmt:
			walk(st.Body)
		}
	}
	walk(b)
	return out
}

// privatizable reports whether every use of sym in the body is preceded (at
// the top statement level, unconditionally) by a def of sym in the same
// iteration, i.e. no value flows in from the previous iteration.
func privatizable(b *minic.BlockStmt, sym *minic.Symbol, sums Summaries) bool {
	defined := false
	for _, s := range b.Stmts {
		acc := StmtAccesses(s, sums)
		if acc.Reads.Has(sym) && !defined {
			return false
		}
		if acc.Writes.Has(sym) {
			// Only unconditional top-level writes count as dominating defs.
			switch st := s.(type) {
			case *minic.ExprStmt:
				if asn, ok := st.X.(*minic.AssignExpr); ok && asn.Op == minic.TokAssign {
					if vr, ok := asn.LHS.(*minic.VarRef); ok && vr.Sym == sym {
						defined = true
					}
				}
			case *minic.DeclStmt:
				if st.Sym == sym {
					defined = true
				}
			}
		}
	}
	return defined
}

// findReductions scans the top level of a loop body for reduction
// statements. It returns the recognized reductions, the set of reduction
// symbols, and the set of symbols that are additionally accessed in
// non-reduction positions (which disqualifies them).
func findReductions(b *minic.BlockStmt, sums Summaries) ([]Reduction, SymSet, SymSet) {
	var reds []Reduction
	redSyms := SymSet{}
	nonRed := SymSet{}
	var visit func(s minic.Stmt)
	visit = func(s minic.Stmt) {
		es, ok := s.(*minic.ExprStmt)
		if !ok {
			// Only this loop level is scanned: reductions inside nested
			// loops belong to the nested loop's own analysis (their
			// accumulators are typically privates of this level). Bare
			// blocks are flattened since they share the level.
			if st, isBlock := s.(*minic.BlockStmt); isBlock {
				for _, inner := range st.Stmts {
					visit(inner)
				}
			}
			return
		}
		asn, ok := es.X.(*minic.AssignExpr)
		if !ok {
			return
		}
		vr, ok := asn.LHS.(*minic.VarRef)
		if !ok || !vr.Sym.Type.IsScalar() {
			return
		}
		sym := vr.Sym
		rhsAcc := ExprAccesses(asn.RHS, sums)
		switch asn.Op {
		case minic.TokPlusEq:
			if !rhsAcc.Reads.Has(sym) {
				reds = append(reds, Reduction{Sym: sym, Op: ReduceAdd})
				redSyms.Add(sym)
				return
			}
		case minic.TokStarEq:
			if !rhsAcc.Reads.Has(sym) {
				reds = append(reds, Reduction{Sym: sym, Op: ReduceMul})
				redSyms.Add(sym)
				return
			}
		case minic.TokAssign:
			if bin, ok := asn.RHS.(*minic.BinaryExpr); ok {
				op := ReduceAdd
				recognized := false
				switch bin.Op {
				case minic.TokPlus:
					op, recognized = ReduceAdd, true
				case minic.TokStar:
					op, recognized = ReduceMul, true
				}
				if recognized {
					// s = s + e or s = e + s with e not reading s.
					if lv, ok := bin.X.(*minic.VarRef); ok && lv.Sym == sym {
						if !ExprAccesses(bin.Y, sums).Reads.Has(sym) {
							reds = append(reds, Reduction{Sym: sym, Op: op})
							redSyms.Add(sym)
							return
						}
					}
					if rv, ok := bin.Y.(*minic.VarRef); ok && rv.Sym == sym {
						if !ExprAccesses(bin.X, sums).Reads.Has(sym) {
							reds = append(reds, Reduction{Sym: sym, Op: op})
							redSyms.Add(sym)
							return
						}
					}
				}
			}
			// min/max reduction: s = min(s, e).
			if call, ok := asn.RHS.(*minic.CallExpr); ok && (call.Builtin == "min" || call.Builtin == "max") {
				for i, a := range call.Args {
					if av, ok := a.(*minic.VarRef); ok && av.Sym == sym {
						other := call.Args[1-i]
						if !ExprAccesses(other, sums).Reads.Has(sym) {
							op := ReduceMin
							if call.Builtin == "max" {
								op = ReduceMax
							}
							reds = append(reds, Reduction{Sym: sym, Op: op})
							redSyms.Add(sym)
							return
						}
					}
				}
			}
		}
	}
	for _, s := range b.Stmts {
		visit(s)
	}
	// Disqualify reduction symbols that also appear in non-reduction
	// statements: recompute accesses per statement and flag extras.
	for _, s := range b.Stmts {
		if isReductionStmt(s, redSyms, sums) {
			continue
		}
		acc := StmtAccesses(s, sums)
		for sym := range redSyms { //repolint:allow maprange (set union, order-insensitive)
			if acc.Reads.Has(sym) || acc.Writes.Has(sym) {
				nonRed.Add(sym)
			}
		}
	}
	return reds, redSyms, nonRed
}

// isReductionStmt reports whether s is exactly one recognized reduction
// statement over a symbol in redSyms.
func isReductionStmt(s minic.Stmt, redSyms SymSet, sums Summaries) bool {
	es, ok := s.(*minic.ExprStmt)
	if !ok {
		return false
	}
	asn, ok := es.X.(*minic.AssignExpr)
	if !ok {
		return false
	}
	vr, ok := asn.LHS.(*minic.VarRef)
	if !ok || !redSyms.Has(vr.Sym) {
		return false
	}
	// The RHS must not touch other reduction symbols.
	rhsAcc := ExprAccesses(asn.RHS, sums)
	for sym := range redSyms { //repolint:allow maprange (pure predicate, order-insensitive)
		if sym != vr.Sym && (rhsAcc.Reads.Has(sym) || rhsAcc.Writes.Has(sym)) {
			return false
		}
	}
	return true
}
