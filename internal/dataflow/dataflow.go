// Package dataflow computes the data-dependence information the Augmented
// Hierarchical Task Graph is annotated with: per-statement def/use sets
// (interprocedural, through function effect summaries), flow/anti/output
// dependences between sibling statements together with the number of bytes
// communicated, and loop-level analysis (induction variables, privatizable
// scalars, reductions, loop-carried dependences) that decides whether a
// loop's iterations may execute concurrently.
package dataflow

import (
	"sort"

	"repro/internal/minic"
)

// SymSet is a set of program symbols.
type SymSet map[*minic.Symbol]bool

// Add inserts s.
func (ss SymSet) Add(s *minic.Symbol) { ss[s] = true }

// Has reports membership.
func (ss SymSet) Has(s *minic.Symbol) bool { return ss[s] }

// Sorted returns the set's symbols in a stable order (by name, then by
// declaration ID for same-named symbols from different scopes). Every
// consumer that turns a SymSet into a slice, a report line, or an edge
// annotation must go through here so equal inputs yield byte-identical
// outputs across runs.
func (ss SymSet) Sorted() []*minic.Symbol {
	out := make([]*minic.Symbol, 0, len(ss))
	//repolint:allow maprange — order restored by the sort below.
	for s := range ss {
		out = append(out, s)
	}
	sortSyms(out)
	return out
}

// Intersect returns the symbols present in both sets, in stable order.
func (ss SymSet) Intersect(other SymSet) []*minic.Symbol {
	var out []*minic.Symbol
	//repolint:allow maprange — order restored by the sort below.
	for s := range ss {
		if other[s] {
			out = append(out, s)
		}
	}
	sortSyms(out)
	return out
}

// sortSyms orders symbols by (Name, ID); names alone can collide across
// scopes, the allocation ID breaks the tie deterministically.
func sortSyms(syms []*minic.Symbol) {
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].Name != syms[j].Name {
			return syms[i].Name < syms[j].Name
		}
		return syms[i].ID < syms[j].ID
	})
}

// Effects summarizes what a function reads and writes beyond its own
// locals: per-parameter read/write flags (meaningful for array parameters,
// which are passed by reference) and accessed globals.
type Effects struct {
	ParamRead   []bool
	ParamWrite  []bool
	GlobalRead  SymSet
	GlobalWrite SymSet
}

// Summaries maps every function to its effect summary.
type Summaries map[*minic.FuncDecl]*Effects

// Summarize computes effect summaries for all functions via a fixpoint over
// the call graph (handles mutual recursion).
func Summarize(prog *minic.Program) Summaries {
	sums := make(Summaries, len(prog.Funcs))
	for _, f := range prog.Funcs {
		sums[f] = &Effects{
			ParamRead:   make([]bool, len(f.Params)),
			ParamWrite:  make([]bool, len(f.Params)),
			GlobalRead:  SymSet{},
			GlobalWrite: SymSet{},
		}
	}
	changed := true
	for changed {
		changed = false
		for _, f := range prog.Funcs {
			if updateSummary(f, sums) {
				changed = true
			}
		}
	}
	return sums
}

// updateSummary recomputes f's summary; returns whether it grew.
func updateSummary(f *minic.FuncDecl, sums Summaries) bool {
	eff := sums[f]
	paramIdx := map[*minic.Symbol]int{}
	for i := range f.Params {
		paramIdx[f.Params[i].Sym] = i
	}
	acc := NewAccesses()
	collectStmt(f.Body, acc, sums)
	grew := false
	record := func(set SymSet, isWrite bool) {
		for sym := range set { //repolint:allow maprange (set union, order-insensitive)
			if i, ok := paramIdx[sym]; ok {
				if isWrite && !eff.ParamWrite[i] {
					eff.ParamWrite[i] = true
					grew = true
				}
				if !isWrite && !eff.ParamRead[i] {
					eff.ParamRead[i] = true
					grew = true
				}
				continue
			}
			if sym.Kind == minic.SymGlobal {
				target := eff.GlobalRead
				if isWrite {
					target = eff.GlobalWrite
				}
				if !target[sym] {
					target.Add(sym)
					grew = true
				}
			}
		}
	}
	record(acc.Reads, false)
	record(acc.Writes, true)
	return grew
}

// ArrayAccess is one array element access with its index expressions,
// used by the loop-carried dependence test.
type ArrayAccess struct {
	Sym     *minic.Symbol
	Indices []minic.Expr
	Write   bool
}

// Accesses aggregates the reads and writes performed by a statement
// (including everything nested inside it and inside called functions).
type Accesses struct {
	Reads  SymSet
	Writes SymSet
	// Arrays lists element-granular accesses local to the analyzed subtree
	// (calls contribute whole-array effects in Reads/Writes but no index
	// detail, so callers treat called-through arrays conservatively).
	Arrays []ArrayAccess
	// HasCall reports whether the subtree calls a user function.
	HasCall bool
	// WholeArrays contains arrays whose access detail is unknown (passed to
	// functions, so element-level reasoning must be conservative).
	WholeArrays SymSet
}

// NewAccesses returns an empty access aggregate.
func NewAccesses() *Accesses {
	return &Accesses{Reads: SymSet{}, Writes: SymSet{}, WholeArrays: SymSet{}}
}

// StmtAccesses computes the access aggregate of statement s.
func StmtAccesses(s minic.Stmt, sums Summaries) *Accesses {
	acc := NewAccesses()
	collectStmt(s, acc, sums)
	return acc
}

// ExprAccesses computes the access aggregate of expression e.
func ExprAccesses(e minic.Expr, sums Summaries) *Accesses {
	acc := NewAccesses()
	collectExpr(e, acc, sums)
	return acc
}

func collectStmt(s minic.Stmt, acc *Accesses, sums Summaries) {
	switch st := s.(type) {
	case *minic.DeclStmt:
		if st.Init != nil {
			collectExpr(st.Init, acc, sums)
		}
		for _, e := range st.List {
			collectExpr(e, acc, sums)
		}
		if st.Sym != nil {
			acc.Writes.Add(st.Sym)
		}
	case *minic.ExprStmt:
		collectExpr(st.X, acc, sums)
	case *minic.BlockStmt:
		for _, inner := range st.Stmts {
			collectStmt(inner, acc, sums)
		}
	case *minic.IfStmt:
		collectExpr(st.Cond, acc, sums)
		collectStmt(st.Then, acc, sums)
		if st.Else != nil {
			collectStmt(st.Else, acc, sums)
		}
	case *minic.ForStmt:
		if st.Init != nil {
			collectStmt(st.Init, acc, sums)
		}
		if st.Cond != nil {
			collectExpr(st.Cond, acc, sums)
		}
		if st.Post != nil {
			collectExpr(st.Post, acc, sums)
		}
		collectStmt(st.Body, acc, sums)
	case *minic.WhileStmt:
		collectExpr(st.Cond, acc, sums)
		collectStmt(st.Body, acc, sums)
	case *minic.ReturnStmt:
		if st.Value != nil {
			collectExpr(st.Value, acc, sums)
		}
	case *minic.BreakStmt, *minic.ContinueStmt:
	}
}

func collectExpr(e minic.Expr, acc *Accesses, sums Summaries) {
	switch ex := e.(type) {
	case *minic.IntLit, *minic.FloatLit:
	case *minic.VarRef:
		acc.Reads.Add(ex.Sym)
	case *minic.IndexExpr:
		acc.Reads.Add(ex.Array.Sym)
		acc.Arrays = append(acc.Arrays, ArrayAccess{Sym: ex.Array.Sym, Indices: ex.Indices})
		for _, ix := range ex.Indices {
			collectExpr(ix, acc, sums)
		}
	case *minic.UnaryExpr:
		collectExpr(ex.X, acc, sums)
	case *minic.BinaryExpr:
		collectExpr(ex.X, acc, sums)
		collectExpr(ex.Y, acc, sums)
	case *minic.CondExpr:
		collectExpr(ex.Cond, acc, sums)
		collectExpr(ex.Then, acc, sums)
		collectExpr(ex.Else, acc, sums)
	case *minic.CallExpr:
		collectCall(ex, acc, sums)
	case *minic.AssignExpr:
		// RHS first, then the target.
		collectExpr(ex.RHS, acc, sums)
		collectLValue(ex.LHS, acc, sums, ex.Op != minic.TokAssign)
	case *minic.IncDecExpr:
		collectLValue(ex.X, acc, sums, true)
	case *minic.CastExpr:
		collectExpr(ex.X, acc, sums)
	}
}

// collectLValue records a write to the assignment target; alsoRead marks
// read-modify-write forms (compound assignment, ++/--).
func collectLValue(e minic.Expr, acc *Accesses, sums Summaries, alsoRead bool) {
	switch lv := e.(type) {
	case *minic.VarRef:
		acc.Writes.Add(lv.Sym)
		if alsoRead {
			acc.Reads.Add(lv.Sym)
		}
	case *minic.IndexExpr:
		acc.Writes.Add(lv.Array.Sym)
		acc.Arrays = append(acc.Arrays, ArrayAccess{Sym: lv.Array.Sym, Indices: lv.Indices, Write: true})
		if alsoRead {
			acc.Reads.Add(lv.Array.Sym)
			acc.Arrays = append(acc.Arrays, ArrayAccess{Sym: lv.Array.Sym, Indices: lv.Indices})
		}
		for _, ix := range lv.Indices {
			collectExpr(ix, acc, sums)
		}
	}
}

func collectCall(ex *minic.CallExpr, acc *Accesses, sums Summaries) {
	if ex.Builtin != "" {
		for _, a := range ex.Args {
			collectExpr(a, acc, sums)
		}
		return
	}
	acc.HasCall = true
	eff := sums[ex.Fn]
	for i, a := range ex.Args {
		if !ex.Fn.Params[i].Type.IsArray() {
			collectExpr(a, acc, sums)
			continue
		}
		// Array argument: apply the callee's parameter effects to the
		// argument array. Index expressions of row views are still reads.
		var sym *minic.Symbol
		switch arg := a.(type) {
		case *minic.VarRef:
			sym = arg.Sym
		case *minic.IndexExpr:
			sym = arg.Array.Sym
			for _, ix := range arg.Indices {
				collectExpr(ix, acc, sums)
			}
		}
		if sym == nil {
			continue
		}
		acc.WholeArrays.Add(sym)
		if eff == nil || eff.ParamRead[i] {
			acc.Reads.Add(sym)
		}
		if eff == nil || eff.ParamWrite[i] {
			acc.Writes.Add(sym)
		}
	}
	if eff != nil {
		for g := range eff.GlobalRead { //repolint:allow maprange (set union, order-insensitive)
			acc.Reads.Add(g)
		}
		for g := range eff.GlobalWrite { //repolint:allow maprange (set union, order-insensitive)
			acc.Writes.Add(g)
		}
	}
}

// DepKind is a bit set of dependence kinds between two statements.
type DepKind uint8

// Dependence kinds.
const (
	DepFlow   DepKind = 1 << iota // a writes, b reads (true dependence)
	DepAnti                       // a reads, b writes
	DepOutput                     // both write
)

// Has reports whether k contains kind.
func (k DepKind) Has(kind DepKind) bool { return k&kind != 0 }

// String renders the kind set.
func (k DepKind) String() string {
	s := ""
	if k.Has(DepFlow) {
		s += "F"
	}
	if k.Has(DepAnti) {
		s += "A"
	}
	if k.Has(DepOutput) {
		s += "O"
	}
	if s == "" {
		return "-"
	}
	return s
}

// Dep describes the dependence of a later statement on an earlier one.
type Dep struct {
	Kind DepKind
	// FlowBytes is the number of bytes of data flowing along the true
	// dependence (0 for pure anti/output ordering constraints).
	FlowBytes int
	// FlowSyms lists the symbols carrying the flow dependence.
	FlowSyms []*minic.Symbol
}

// Exists reports whether there is any dependence at all.
func (d Dep) Exists() bool { return d.Kind != 0 }

// DependsOn computes the dependence of statement b on an earlier sibling a
// given their precomputed access aggregates.
func DependsOn(a, b *Accesses) Dep {
	var d Dep
	for _, sym := range a.Writes.Intersect(b.Reads) {
		d.Kind |= DepFlow
		d.FlowSyms = append(d.FlowSyms, sym)
		d.FlowBytes += sym.Type.SizeBytes()
	}
	if len(a.Reads.Intersect(b.Writes)) > 0 {
		d.Kind |= DepAnti
	}
	if len(a.Writes.Intersect(b.Writes)) > 0 {
		d.Kind |= DepOutput
	}
	return d
}
