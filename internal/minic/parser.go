package minic

import (
	"fmt"
	"strconv"
)

// Parser is a recursive-descent parser for mini-C.
type Parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses src into a Program (without type checking; use
// Check or Compile for a checked program).
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.parseProgram()
}

// Compile parses and type-checks src.
func Compile(src string) (*Program, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if err := Check(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) at(k TokenKind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k TokenKind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k TokenKind) (Token, error) {
	if !p.at(k) {
		return Token{}, errf(p.cur().Pos, "expected %s, found %s", k, p.cur())
	}
	return p.next(), nil
}

func (p *Parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for !p.at(TokEOF) {
		// Skip storage qualifiers at file scope.
		for p.accept(TokKwConst) || p.accept(TokKwStatic) {
		}
		base, ok := p.baseType()
		if !ok {
			return nil, errf(p.cur().Pos, "expected declaration, found %s", p.cur())
		}
		nameTok, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if p.at(TokLParen) {
			fn, err := p.parseFuncRest(base, nameTok)
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, fn)
			continue
		}
		g, err := p.parseGlobalRest(base, nameTok)
		if err != nil {
			return nil, err
		}
		prog.Globals = append(prog.Globals, g)
	}
	return prog, nil
}

// baseType consumes a type keyword if present.
func (p *Parser) baseType() (BasicKind, bool) {
	switch p.cur().Kind {
	case TokKwInt:
		p.next()
		return Int, true
	case TokKwFloat, TokKwDouble:
		p.next()
		return Float, true
	case TokKwVoid:
		p.next()
		return Void, true
	}
	return Void, false
}

// parseDims parses zero, one or two constant array dimensions.
func (p *Parser) parseDims() ([]int, error) {
	var dims []int
	for p.accept(TokLBracket) {
		if len(dims) == 2 {
			return nil, errf(p.cur().Pos, "arrays with more than two dimensions are not supported")
		}
		tok, err := p.expect(TokIntLit)
		if err != nil {
			return nil, errf(p.cur().Pos, "array dimension must be an integer constant")
		}
		v, err := strconv.ParseInt(tok.Text, 0, 64)
		if err != nil || v <= 0 {
			return nil, errf(tok.Pos, "invalid array dimension %q", tok.Text)
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		dims = append(dims, int(v))
	}
	return dims, nil
}

func (p *Parser) parseGlobalRest(base BasicKind, nameTok Token) (*GlobalDecl, error) {
	if base == Void {
		return nil, errf(nameTok.Pos, "variable %s cannot have type void", nameTok.Text)
	}
	dims, err := p.parseDims()
	if err != nil {
		return nil, err
	}
	g := &GlobalDecl{Pos: nameTok.Pos, Name: nameTok.Text, Type: Type{Base: base, Dims: dims}}
	if p.accept(TokAssign) {
		if p.at(TokLBrace) {
			g.List, err = p.parseInitList()
			if err != nil {
				return nil, err
			}
		} else {
			g.Init, err = p.parseAssignExpr()
			if err != nil {
				return nil, err
			}
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return g, nil
}

// parseInitList parses { e, e, ... } possibly nested one level for 2-D
// arrays; nested lists are flattened in row-major order.
func (p *Parser) parseInitList() ([]Expr, error) {
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	var list []Expr
	for !p.at(TokRBrace) {
		if p.at(TokLBrace) {
			sub, err := p.parseInitList()
			if err != nil {
				return nil, err
			}
			list = append(list, sub...)
		} else {
			e, err := p.parseAssignExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
		}
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	return list, nil
}

func (p *Parser) parseFuncRest(base BasicKind, nameTok Token) (*FuncDecl, error) {
	fn := &FuncDecl{Pos: nameTok.Pos, Name: nameTok.Text, Result: ScalarType(base)}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	if p.accept(TokKwVoid) && p.at(TokRParen) {
		// f(void)
	} else if !p.at(TokRParen) {
		for {
			for p.accept(TokKwConst) {
			}
			pbase, ok := p.baseType()
			if !ok {
				return nil, errf(p.cur().Pos, "expected parameter type, found %s", p.cur())
			}
			pname, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			dims, err := p.parseParamDims()
			if err != nil {
				return nil, err
			}
			fn.Params = append(fn.Params, Param{Name: pname.Text, Type: Type{Base: pbase, Dims: dims}})
			if !p.accept(TokComma) {
				break
			}
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

// parseParamDims allows an empty first dimension (int a[] or int a[][N]):
// the checker later unifies it with the argument's actual dimension.
func (p *Parser) parseParamDims() ([]int, error) {
	var dims []int
	for p.accept(TokLBracket) {
		if len(dims) == 2 {
			return nil, errf(p.cur().Pos, "arrays with more than two dimensions are not supported")
		}
		if p.accept(TokRBracket) {
			dims = append(dims, 0) // unsized; resolved against call sites
			continue
		}
		tok, err := p.expect(TokIntLit)
		if err != nil {
			return nil, err
		}
		v, _ := strconv.ParseInt(tok.Text, 0, 64)
		if v <= 0 {
			return nil, errf(tok.Pos, "invalid array dimension %q", tok.Text)
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		dims = append(dims, int(v))
	}
	return dims, nil
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	lb, err := p.expect(TokLBrace)
	if err != nil {
		return nil, err
	}
	blk := &BlockStmt{Pos: lb.Pos}
	for !p.at(TokRBrace) {
		if p.at(TokEOF) {
			return nil, errf(lb.Pos, "unterminated block")
		}
		switch p.cur().Kind {
		case TokKwConst, TokKwStatic, TokKwInt, TokKwFloat, TokKwDouble:
			// Multi-declarator declarations are spliced directly into the
			// enclosing block so all declared names share its scope.
			decls, err := p.parseDeclList()
			if err != nil {
				return nil, err
			}
			blk.Stmts = append(blk.Stmts, decls...)
		default:
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			blk.Stmts = append(blk.Stmts, s)
		}
	}
	p.next() // consume '}'
	return blk, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	tok := p.cur()
	switch tok.Kind {
	case TokLBrace:
		return p.parseBlock()
	case TokKwIf:
		return p.parseIf()
	case TokKwFor:
		return p.parseFor()
	case TokKwWhile:
		return p.parseWhile()
	case TokKwDo:
		return p.parseDoWhile()
	case TokKwReturn:
		p.next()
		rs := &ReturnStmt{Pos: tok.Pos}
		if !p.at(TokSemi) {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			rs.Value = v
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return rs, nil
	case TokKwBreak:
		p.next()
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: tok.Pos}, nil
	case TokKwContinue:
		p.next()
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: tok.Pos}, nil
	case TokSemi:
		p.next()
		return &BlockStmt{Pos: tok.Pos}, nil // empty statement
	case TokKwConst, TokKwStatic, TokKwInt, TokKwFloat, TokKwDouble:
		return p.parseDecl()
	}
	// Expression statement.
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &ExprStmt{Pos: tok.Pos, X: e}, nil
}

// parseDecl parses a declaration with exactly one declarator (used in
// for-init and single-statement contexts).
func (p *Parser) parseDecl() (Stmt, error) {
	decls, err := p.parseDeclList()
	if err != nil {
		return nil, err
	}
	if len(decls) != 1 {
		return nil, errf(decls[0].NodePos(), "multiple declarators are not allowed here")
	}
	return decls[0], nil
}

// parseDeclList parses "type d1, d2, ...;" into one DeclStmt per declarator.
func (p *Parser) parseDeclList() ([]Stmt, error) {
	for p.accept(TokKwConst) || p.accept(TokKwStatic) {
	}
	base, ok := p.baseType()
	if !ok {
		return nil, errf(p.cur().Pos, "expected type in declaration")
	}
	if base == Void {
		return nil, errf(p.cur().Pos, "variables cannot have type void")
	}
	// One or more declarators separated by commas become a block of decls.
	var decls []Stmt
	for {
		nameTok, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		dims, err := p.parseDims()
		if err != nil {
			return nil, err
		}
		d := &DeclStmt{Pos: nameTok.Pos, Name: nameTok.Text, Type: Type{Base: base, Dims: dims}}
		if p.accept(TokAssign) {
			if p.at(TokLBrace) {
				d.List, err = p.parseInitList()
			} else {
				d.Init, err = p.parseAssignExpr()
			}
			if err != nil {
				return nil, err
			}
		}
		decls = append(decls, d)
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return decls, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	tok := p.next() // 'if'
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	thenBlk, err := p.parseStmtAsBlock()
	if err != nil {
		return nil, err
	}
	is := &IfStmt{Pos: tok.Pos, Cond: cond, Then: thenBlk}
	if p.accept(TokKwElse) {
		if p.at(TokKwIf) {
			elseIf, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			is.Else = elseIf
		} else {
			elseBlk, err := p.parseStmtAsBlock()
			if err != nil {
				return nil, err
			}
			is.Else = elseBlk
		}
	}
	return is, nil
}

// parseStmtAsBlock parses a statement and wraps non-blocks in a BlockStmt so
// downstream passes always see uniform bodies.
func (p *Parser) parseStmtAsBlock() (*BlockStmt, error) {
	if p.at(TokLBrace) {
		return p.parseBlock()
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &BlockStmt{Pos: s.NodePos(), Stmts: []Stmt{s}}, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	tok := p.next() // 'for'
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	fs := &ForStmt{Pos: tok.Pos}
	if !p.at(TokSemi) {
		if p.at(TokKwInt) || p.at(TokKwFloat) || p.at(TokKwDouble) {
			d, err := p.parseDecl() // consumes the ';'
			if err != nil {
				return nil, err
			}
			fs.Init = d
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fs.Init = &ExprStmt{Pos: e.NodePos(), X: e}
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
		}
	} else {
		p.next()
	}
	if !p.at(TokSemi) {
		c, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fs.Cond = c
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if !p.at(TokRParen) {
		post, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fs.Post = post
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmtAsBlock()
	if err != nil {
		return nil, err
	}
	fs.Body = body
	return fs, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	tok := p.next() // 'while'
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmtAsBlock()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Pos: tok.Pos, Cond: cond, Body: body}, nil
}

func (p *Parser) parseDoWhile() (Stmt, error) {
	tok := p.next() // 'do'
	body, err := p.parseStmtAsBlock()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKwWhile); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &WhileStmt{Pos: tok.Pos, Cond: cond, Body: body, DoWhile: true}, nil
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)

// parseExpr parses a full expression including assignment.
func (p *Parser) parseExpr() (Expr, error) { return p.parseAssignExpr() }

var assignOps = map[TokenKind]bool{
	TokAssign: true, TokPlusEq: true, TokMinusEq: true, TokStarEq: true,
	TokSlashEq: true, TokPercentEq: true, TokShlEq: true, TokShrEq: true,
	TokAndEq: true, TokOrEq: true, TokXorEq: true,
}

func (p *Parser) parseAssignExpr() (Expr, error) {
	lhs, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	if assignOps[p.cur().Kind] {
		opTok := p.next()
		switch lhs.(type) {
		case *VarRef, *IndexExpr:
		default:
			return nil, errf(opTok.Pos, "left-hand side of assignment must be a variable or array element")
		}
		rhs, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		return &AssignExpr{Pos: opTok.Pos, Op: opTok.Kind, LHS: lhs, RHS: rhs}, nil
	}
	return lhs, nil
}

func (p *Parser) parseTernary() (Expr, error) {
	cond, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if !p.accept(TokQuestion) {
		return cond, nil
	}
	thenE, err := p.parseAssignExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokColon); err != nil {
		return nil, err
	}
	elseE, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	return &CondExpr{Pos: cond.NodePos(), Cond: cond, Then: thenE, Else: elseE}, nil
}

// binaryPrec returns the precedence of an infix operator or -1.
func binaryPrec(k TokenKind) int {
	switch k {
	case TokOrOr:
		return 1
	case TokAndAnd:
		return 2
	case TokPipe:
		return 3
	case TokCaret:
		return 4
	case TokAmp:
		return 5
	case TokEq, TokNeq:
		return 6
	case TokLt, TokGt, TokLe, TokGe:
		return 7
	case TokShl, TokShr:
		return 8
	case TokPlus, TokMinus:
		return 9
	case TokStar, TokSlash, TokPercent:
		return 10
	}
	return -1
}

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		prec := binaryPrec(p.cur().Kind)
		if prec < 0 || prec < minPrec {
			return lhs, nil
		}
		opTok := p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Pos: opTok.Pos, Op: opTok.Kind, X: lhs, Y: rhs}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	tok := p.cur()
	switch tok.Kind {
	case TokMinus, TokNot, TokTilde:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: tok.Pos, Op: tok.Kind, X: x}, nil
	case TokPlus:
		p.next()
		return p.parseUnary()
	case TokInc, TokDec:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &IncDecExpr{Pos: tok.Pos, Op: tok.Kind, X: x}, nil
	case TokLParen:
		// Cast or parenthesized expression.
		if k, n := p.castLookahead(); n > 0 {
			p.pos += n
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &CastExpr{Pos: tok.Pos, To: k, X: x}, nil
		}
	}
	return p.parsePostfix()
}

// castLookahead detects "(int)" / "(float)" / "(double)" and returns the
// target kind and the token count to skip.
func (p *Parser) castLookahead() (BasicKind, int) {
	if !p.at(TokLParen) {
		return Void, 0
	}
	if p.pos+2 < len(p.toks) && p.toks[p.pos+2].Kind == TokRParen {
		switch p.toks[p.pos+1].Kind {
		case TokKwInt:
			return Int, 3
		case TokKwFloat, TokKwDouble:
			return Float, 3
		}
	}
	return Void, 0
}

func (p *Parser) parsePostfix() (Expr, error) {
	base, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case TokLBracket:
			vr, ok := base.(*VarRef)
			if !ok {
				return nil, errf(p.cur().Pos, "indexing is only supported on named arrays")
			}
			ix := &IndexExpr{Pos: vr.Pos, Array: vr}
			for p.accept(TokLBracket) {
				if len(ix.Indices) == 2 {
					return nil, errf(p.cur().Pos, "arrays with more than two dimensions are not supported")
				}
				idx, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(TokRBracket); err != nil {
					return nil, err
				}
				ix.Indices = append(ix.Indices, idx)
			}
			base = ix
		case TokInc, TokDec:
			opTok := p.next()
			base = &IncDecExpr{Pos: opTok.Pos, Op: opTok.Kind, X: base}
		default:
			return base, nil
		}
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	tok := p.cur()
	switch tok.Kind {
	case TokIntLit:
		p.next()
		v, err := strconv.ParseInt(tok.Text, 0, 64)
		if err != nil {
			return nil, errf(tok.Pos, "invalid integer literal %q", tok.Text)
		}
		return &IntLit{Pos: tok.Pos, Value: v}, nil
	case TokCharLit:
		p.next()
		v, _ := strconv.ParseInt(tok.Text, 10, 64)
		return &IntLit{Pos: tok.Pos, Value: v}, nil
	case TokFloatLit:
		p.next()
		v, err := strconv.ParseFloat(tok.Text, 64)
		if err != nil {
			return nil, errf(tok.Pos, "invalid float literal %q", tok.Text)
		}
		return &FloatLit{Pos: tok.Pos, Value: v}, nil
	case TokIdent:
		p.next()
		if p.at(TokLParen) {
			return p.parseCall(tok)
		}
		return &VarRef{Pos: tok.Pos, Name: tok.Text}, nil
	case TokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, errf(tok.Pos, "unexpected token %s in expression", tok)
}

func (p *Parser) parseCall(nameTok Token) (Expr, error) {
	call := &CallExpr{Pos: nameTok.Pos, Name: nameTok.Text}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	if !p.at(TokRParen) {
		for {
			a, err := p.parseAssignExpr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, a)
			if !p.accept(TokComma) {
				break
			}
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return call, nil
}

var _ = fmt.Sprintf // keep fmt imported if diagnostics change
