package minic

import (
	"strings"
	"testing"
)

// TestCheckAllCollectsMultipleErrors: one pass reports every distinct
// problem with its position instead of stopping at the first.
func TestCheckAllCollectsMultipleErrors(t *testing.T) {
	prog, err := Parse(`
int a;
void main(void) {
    x = 1;
    int a; int a;
    break;
    g(2);
}
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	diags := CheckAll(prog)
	wants := []string{
		"undefined variable x",
		"a redeclared in this scope",
		"break outside a loop",
		"call to undefined function g",
	}
	if len(diags) != len(wants) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), len(wants), ErrorList(diags).Error())
	}
	for i, want := range wants {
		if !strings.Contains(diags[i].Msg, want) {
			t.Errorf("diag %d = %q, want containing %q", i, diags[i].Msg, want)
		}
		if diags[i].Sev != SevError {
			t.Errorf("diag %d severity = %v, want error", i, diags[i].Sev)
		}
		if diags[i].Pos.Line == 0 {
			t.Errorf("diag %d has no position: %+v", i, diags[i])
		}
	}
}

// TestCheckAllSuppressesCascades: an undefined name is reported once even
// when used repeatedly, and indexing it does not add a bogus type error.
func TestCheckAllSuppressesCascades(t *testing.T) {
	prog, err := Parse(`
void main(void) {
    y = x + x;
    x[0] = 2;
}
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	diags := CheckAll(prog)
	var undefinedX, undefinedY, other int
	for _, d := range diags {
		switch {
		case strings.Contains(d.Msg, "undefined variable x"):
			undefinedX++
		case strings.Contains(d.Msg, "undefined variable y"):
			undefinedY++
		default:
			other++
		}
	}
	if undefinedX != 1 || undefinedY != 1 {
		t.Errorf("undefined reports: x=%d y=%d, want 1 each\n%s", undefinedX, undefinedY, ErrorList(diags).Error())
	}
	if other != 0 {
		t.Errorf("unexpected cascade diagnostics:\n%s", ErrorList(diags).Error())
	}
}

// TestCheckErrorListFormat: Check wraps all diagnostics as an ErrorList
// whose message carries every line:col-prefixed report.
func TestCheckErrorListFormat(t *testing.T) {
	_, err := Compile(`void main(void) { x = 1; break; }`)
	if err != nil {
		var el ErrorList
		if !strings.Contains(err.Error(), "undefined variable x") ||
			!strings.Contains(err.Error(), "break outside a loop") {
			t.Fatalf("error should carry both problems: %v", err)
		}
		var ok bool
		if el, ok = err.(ErrorList); !ok {
			t.Fatalf("Check should return an ErrorList, got %T", err)
		}
		if len(el) != 2 {
			t.Fatalf("want 2 diagnostics, got %d", len(el))
		}
		return
	}
	t.Fatal("expected an error")
}

// TestCheckAllValidProgramEmpty: a valid program yields no diagnostics and
// Check returns nil.
func TestCheckAllValidProgramEmpty(t *testing.T) {
	prog, err := Parse(`int g; void main(void) { g = 1; }`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if diags := CheckAll(prog); len(diags) != 0 {
		t.Fatalf("unexpected diagnostics: %s", ErrorList(diags).Error())
	}
}
