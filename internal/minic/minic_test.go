package minic

import (
	"strings"
	"testing"
)

const tinyProg = `
#define N 8
int data[N];
float scale = 2.5;

int sum(int a[], int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        s += a[i];
    }
    return s;
}

void main(void) {
    for (int i = 0; i < N; i++) {
        data[i] = i * i;
    }
    int total = sum(data, N);
    if (total > 100) {
        total = total - 100;
    } else {
        total = 0;
    }
}
`

func mustCompile(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return prog
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("a += b1 * 3.5e2; /* c */ x <<= 2 // y")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	want := []TokenKind{TokIdent, TokPlusEq, TokIdent, TokStar, TokFloatLit,
		TokSemi, TokIdent, TokShlEq, TokIntLit, TokEOF}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %s, want %s", i, toks[i].Kind, k)
		}
	}
}

func TestLexDefineExpansion(t *testing.T) {
	toks, err := Lex("#define SIZE 16\n#define HALF (SIZE / 2)\nint a[SIZE]; x = HALF;")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	var texts []string
	for _, tok := range toks {
		texts = append(texts, tok.Text)
	}
	joined := strings.Join(texts, " ")
	if !strings.Contains(joined, "16") {
		t.Errorf("SIZE not expanded: %s", joined)
	}
	// HALF expands to ( SIZE / 2 ) and SIZE inside was already substituted
	// at definition-lex time? No: HALF's body references SIZE textually and
	// was lexed with a fresh lexer, so SIZE remains an identifier there.
	// Nested expansion is not required by the benchmarks; assert HALF
	// expanded at all.
	if strings.Contains(joined, "HALF") {
		t.Errorf("HALF not expanded: %s", joined)
	}
}

func TestLexErrors(t *testing.T) {
	cases := []string{
		"/* unterminated",
		"#include <stdio.h>",
		"#define F(x) x",
		"\"unterminated",
		"'a",
		"@",
		"1.5e",
	}
	for _, src := range cases {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q): expected error", src)
		}
	}
}

func TestLexCharAndHex(t *testing.T) {
	toks, err := Lex("'A' 0x1F '\\n'")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	if toks[0].Kind != TokCharLit || toks[0].Text != "65" {
		t.Errorf("char literal: got %v", toks[0])
	}
	if toks[1].Kind != TokIntLit || toks[1].Text != "0x1F" {
		t.Errorf("hex literal: got %v", toks[1])
	}
	if toks[2].Text != "10" {
		t.Errorf("escaped newline: got %v", toks[2])
	}
}

func TestParseAndCheckTiny(t *testing.T) {
	prog := mustCompile(t, tinyProg)
	if len(prog.Funcs) != 2 {
		t.Fatalf("want 2 functions, got %d", len(prog.Funcs))
	}
	if prog.Func("main") == nil || prog.Func("sum") == nil {
		t.Fatalf("missing functions: %+v", prog.Funcs)
	}
	if len(prog.Globals) != 2 {
		t.Fatalf("want 2 globals, got %d", len(prog.Globals))
	}
	if got := prog.Globals[0].Type.String(); got != "int[8]" {
		t.Errorf("data type: got %s, want int[8]", got)
	}
}

func TestParsePrintRoundTrip(t *testing.T) {
	srcs := []string{
		tinyProg,
		`void main(void) { int i = 0; do { i++; } while (i < 3); while (i > 0) { i--; } }`,
		`int f(int x) { return x > 0 ? x : -x; }
		 void main(void) { int y = f(-3) + (1 << 4) % 7 & 3 | 12 ^ 5; y = !y + ~y; }`,
		`void main(void) { float m[2][3] = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
		  m[1][2] = m[0][1] * 2.0; }`,
		`void main(void) { int a = 1, b = 2, c; c = a + b; if (c == 3) { c = 0; } else if (c > 3) { c = 1; } else { c = 2; } }`,
		`float g(float v[4]) { float s = 0.0; for (int i = 0; i < 4; i++) { s += v[i]; } return s; }
		 void main(void) { float v[4] = {1.0, 2.0, 3.0, 4.0}; float r = g(v); r = (float)1 + (int)r; }`,
	}
	for i, src := range srcs {
		p1, err := Compile(src)
		if err != nil {
			t.Fatalf("case %d: compile original: %v", i, err)
		}
		out1 := PrintProgram(p1)
		p2, err := Compile(out1)
		if err != nil {
			t.Fatalf("case %d: compile printed form: %v\n%s", i, err, out1)
		}
		out2 := PrintProgram(p2)
		if out1 != out2 {
			t.Errorf("case %d: print not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", i, out1, out2)
		}
	}
}

func TestCheckerErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"undefined var", `void main(void) { x = 1; }`, "undefined variable"},
		{"redeclared", `void main(void) { int a; int a; }`, "redeclared"},
		{"undefined func", `void main(void) { f(1); }`, "undefined function"},
		{"arity", `int f(int a) { return a; } void main(void) { f(1, 2); }`, "expects 1 argument"},
		{"break outside", `void main(void) { break; }`, "break outside"},
		{"continue outside", `void main(void) { continue; }`, "continue outside"},
		{"void return value", `void main(void) { return 3; }`, "cannot return a value"},
		{"missing return value", `int f(void) { return; } void main(void) { }`, "must return"},
		{"not array", `void main(void) { int a; a[0] = 1; }`, "not an array"},
		{"mod float", `void main(void) { float f = 1.0; int x = 3 % f; }`, "requires int"},
		{"too many indices", `void main(void) { int a[3]; a[0][1] = 2; }`, "too many indices"},
		{"assign array", `void main(void) { int a[3]; int b[3]; a = b; }`, "cannot assign"},
		{"dup function", `void f(void) {} void f(void) {} void main(void) {}`, "redefined"},
		{"shadow builtin", `float sqrt(float x) { return x; } void main(void) {}`, "shadows a builtin"},
		{"builtin arity", `void main(void) { float x = sqrt(1.0, 2.0); }`, "expects 1 argument"},
		{"array extent", `void f(int a[4]) {} void main(void) { int b[5]; f(b); }`, "extent mismatch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(tc.src)
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err.Error(), tc.want)
			}
		})
	}
}

func TestSymbolResolution(t *testing.T) {
	prog := mustCompile(t, `
int g;
void main(void) {
    int g;
    g = 1;
    for (int g = 0; g < 2; g++) { int h = g; h = h; }
}
`)
	main := prog.Func("main")
	// The assignment g = 1 must resolve to the local, not the global.
	es := main.Body.Stmts[1].(*ExprStmt)
	asn := es.X.(*AssignExpr)
	vr := asn.LHS.(*VarRef)
	if vr.Sym == nil || vr.Sym.Kind != SymLocal {
		t.Fatalf("g resolved to %v, want local", vr.Sym)
	}
	if prog.Globals[0].Sym == nil || prog.Globals[0].Sym.Kind != SymGlobal {
		t.Fatalf("global g symbol missing")
	}
}

func TestUnsizedParamDim(t *testing.T) {
	mustCompile(t, `
float total(float a[][4], int rows) {
    float s = 0.0;
    for (int i = 0; i < rows; i++) {
        for (int j = 0; j < 4; j++) { s += a[i][j]; }
    }
    return s;
}
void main(void) {
    float m[3][4];
    float s = total(m, 3);
}
`)
}

func TestTypePredicates(t *testing.T) {
	scalar := ScalarType(Float)
	if !scalar.IsScalar() || scalar.IsArray() {
		t.Errorf("scalar predicates wrong")
	}
	arr := Type{Base: Int, Dims: []int{4, 5}}
	if arr.NumElems() != 20 || arr.SizeBytes() != 80 {
		t.Errorf("array size: elems=%d bytes=%d", arr.NumElems(), arr.SizeBytes())
	}
	if arr.String() != "int[4][5]" {
		t.Errorf("array String: %s", arr.String())
	}
	if !arr.Equal(Type{Base: Int, Dims: []int{4, 5}}) || arr.Equal(scalar) {
		t.Errorf("Equal wrong")
	}
}

func TestTernaryAndPrecedence(t *testing.T) {
	prog := mustCompile(t, `void main(void) { int x = 1 + 2 * 3; int y = x > 4 ? x - 4 : 4 - x; }`)
	main := prog.Func("main")
	d := main.Body.Stmts[0].(*DeclStmt)
	bin := d.Init.(*BinaryExpr)
	if bin.Op != TokPlus {
		t.Fatalf("top of 1+2*3 should be +, got %s", bin.Op)
	}
	if inner, ok := bin.Y.(*BinaryExpr); !ok || inner.Op != TokStar {
		t.Fatalf("rhs of + should be *")
	}
}
