package minic

import (
	"fmt"
	"strconv"
	"strings"
)

// Printer renders AST nodes back to C source text. The output is valid
// mini-C, so parse(print(parse(src))) is a fixpoint (tested).
type Printer struct {
	sb     strings.Builder
	indent int
	// StmtComment, when non-nil, is invoked before each statement is printed
	// and may return an annotation comment line (used by the task-spec
	// emitter to label statements with task assignments).
	StmtComment func(s Stmt) string
}

// PrintProgram renders a whole program.
func PrintProgram(p *Program) string {
	pr := &Printer{}
	return pr.Program(p)
}

// Program renders p and returns the accumulated text.
func (pr *Printer) Program(p *Program) string {
	pr.sb.Reset()
	for _, g := range p.Globals {
		pr.global(g)
	}
	if len(p.Globals) > 0 {
		pr.sb.WriteByte('\n')
	}
	for i, f := range p.Funcs {
		if i > 0 {
			pr.sb.WriteByte('\n')
		}
		pr.function(f)
	}
	return pr.sb.String()
}

func (pr *Printer) line(format string, args ...any) {
	pr.sb.WriteString(strings.Repeat("    ", pr.indent))
	fmt.Fprintf(&pr.sb, format, args...)
	pr.sb.WriteByte('\n')
}

func (pr *Printer) typeAndName(t Type, name string) string {
	var sb strings.Builder
	sb.WriteString(t.Base.String())
	sb.WriteByte(' ')
	sb.WriteString(name)
	for _, d := range t.Dims {
		if d == 0 {
			sb.WriteString("[]")
		} else {
			fmt.Fprintf(&sb, "[%d]", d)
		}
	}
	return sb.String()
}

func (pr *Printer) global(g *GlobalDecl) {
	decl := pr.typeAndName(g.Type, g.Name)
	switch {
	case g.Init != nil:
		pr.line("%s = %s;", decl, pr.Expr(g.Init))
	case g.List != nil:
		pr.line("%s = %s;", decl, pr.initList(g.List))
	default:
		pr.line("%s;", decl)
	}
}

func (pr *Printer) initList(list []Expr) string {
	parts := make([]string, len(list))
	for i, e := range list {
		parts[i] = pr.Expr(e)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

func (pr *Printer) function(f *FuncDecl) {
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		params[i] = pr.typeAndName(p.Type, p.Name)
	}
	if len(params) == 0 {
		params = []string{"void"}
	}
	pr.line("%s %s(%s) {", f.Result.Base, f.Name, strings.Join(params, ", "))
	pr.indent++
	for _, s := range f.Body.Stmts {
		pr.stmt(s)
	}
	pr.indent--
	pr.line("}")
}

func (pr *Printer) stmt(s Stmt) {
	if pr.StmtComment != nil {
		if c := pr.StmtComment(s); c != "" {
			pr.line("/* %s */", c)
		}
	}
	switch st := s.(type) {
	case *DeclStmt:
		decl := pr.typeAndName(st.Type, st.Name)
		switch {
		case st.Init != nil:
			pr.line("%s = %s;", decl, pr.Expr(st.Init))
		case st.List != nil:
			pr.line("%s = %s;", decl, pr.initList(st.List))
		default:
			pr.line("%s;", decl)
		}
	case *ExprStmt:
		pr.line("%s;", pr.Expr(st.X))
	case *BlockStmt:
		if len(st.Stmts) == 0 {
			pr.line(";")
			return
		}
		pr.line("{")
		pr.indent++
		for _, inner := range st.Stmts {
			pr.stmt(inner)
		}
		pr.indent--
		pr.line("}")
	case *IfStmt:
		pr.line("if (%s) {", pr.Expr(st.Cond))
		pr.indent++
		for _, inner := range st.Then.Stmts {
			pr.stmt(inner)
		}
		pr.indent--
		if st.Else == nil {
			pr.line("}")
			return
		}
		if elseIf, ok := st.Else.(*IfStmt); ok {
			pr.sb.WriteString(strings.Repeat("    ", pr.indent))
			pr.sb.WriteString("} else ")
			// Render the else-if inline: temporarily strip indentation.
			saved := pr.indent
			pr.indent = 0
			pr.elseIfChain(elseIf, saved)
			pr.indent = saved
			return
		}
		pr.line("} else {")
		pr.indent++
		for _, inner := range st.Else.(*BlockStmt).Stmts {
			pr.stmt(inner)
		}
		pr.indent--
		pr.line("}")
	case *ForStmt:
		init := ""
		if st.Init != nil {
			init = pr.stmtInline(st.Init)
		}
		cond := ""
		if st.Cond != nil {
			cond = pr.Expr(st.Cond)
		}
		post := ""
		if st.Post != nil {
			post = pr.Expr(st.Post)
		}
		pr.line("for (%s; %s; %s) {", init, cond, post)
		pr.indent++
		for _, inner := range st.Body.Stmts {
			pr.stmt(inner)
		}
		pr.indent--
		pr.line("}")
	case *WhileStmt:
		if st.DoWhile {
			pr.line("do {")
			pr.indent++
			for _, inner := range st.Body.Stmts {
				pr.stmt(inner)
			}
			pr.indent--
			pr.line("} while (%s);", pr.Expr(st.Cond))
			return
		}
		pr.line("while (%s) {", pr.Expr(st.Cond))
		pr.indent++
		for _, inner := range st.Body.Stmts {
			pr.stmt(inner)
		}
		pr.indent--
		pr.line("}")
	case *ReturnStmt:
		if st.Value == nil {
			pr.line("return;")
		} else {
			pr.line("return %s;", pr.Expr(st.Value))
		}
	case *BreakStmt:
		pr.line("break;")
	case *ContinueStmt:
		pr.line("continue;")
	}
}

// elseIfChain prints "if (...) { ... } else ..." continuing an already
// emitted "} else " prefix at outer indentation.
func (pr *Printer) elseIfChain(st *IfStmt, outer int) {
	fmt.Fprintf(&pr.sb, "if (%s) {\n", pr.Expr(st.Cond))
	pr.indent = outer + 1
	for _, inner := range st.Then.Stmts {
		pr.stmt(inner)
	}
	pr.indent = outer
	if st.Else == nil {
		pr.line("}")
		return
	}
	if elseIf, ok := st.Else.(*IfStmt); ok {
		pr.sb.WriteString(strings.Repeat("    ", pr.indent))
		pr.sb.WriteString("} else ")
		pr.elseIfChain(elseIf, outer)
		return
	}
	pr.line("} else {")
	pr.indent = outer + 1
	for _, inner := range st.Else.(*BlockStmt).Stmts {
		pr.stmt(inner)
	}
	pr.indent = outer
	pr.line("}")
}

// stmtInline renders a simple statement without trailing semicolon/newline,
// for use inside for-headers.
func (pr *Printer) stmtInline(s Stmt) string {
	switch st := s.(type) {
	case *DeclStmt:
		decl := pr.typeAndName(st.Type, st.Name)
		if st.Init != nil {
			return fmt.Sprintf("%s = %s", decl, pr.Expr(st.Init))
		}
		return decl
	case *ExprStmt:
		return pr.Expr(st.X)
	}
	return "/* ? */"
}

// Expr renders an expression with minimal but safe parenthesization.
func (pr *Printer) Expr(e Expr) string {
	return pr.exprPrec(e, 0)
}

func (pr *Printer) exprPrec(e Expr, parent int) string {
	switch ex := e.(type) {
	case *IntLit:
		return strconv.FormatInt(ex.Value, 10)
	case *FloatLit:
		s := strconv.FormatFloat(ex.Value, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case *VarRef:
		return ex.Name
	case *IndexExpr:
		var sb strings.Builder
		sb.WriteString(ex.Array.Name)
		for _, ix := range ex.Indices {
			fmt.Fprintf(&sb, "[%s]", pr.exprPrec(ix, 0))
		}
		return sb.String()
	case *UnaryExpr:
		s := fmt.Sprintf("%s%s", ex.Op, pr.exprPrec(ex.X, 11))
		if parent > 11 {
			return "(" + s + ")"
		}
		return s
	case *BinaryExpr:
		prec := binaryPrec(ex.Op)
		s := fmt.Sprintf("%s %s %s",
			pr.exprPrec(ex.X, prec), ex.Op, pr.exprPrec(ex.Y, prec+1))
		if prec < parent {
			return "(" + s + ")"
		}
		return s
	case *CondExpr:
		s := fmt.Sprintf("%s ? %s : %s",
			pr.exprPrec(ex.Cond, 1), pr.exprPrec(ex.Then, 0), pr.exprPrec(ex.Else, 0))
		if parent > 0 {
			return "(" + s + ")"
		}
		return s
	case *CallExpr:
		args := make([]string, len(ex.Args))
		for i, a := range ex.Args {
			args[i] = pr.exprPrec(a, 0)
		}
		return fmt.Sprintf("%s(%s)", ex.Name, strings.Join(args, ", "))
	case *AssignExpr:
		s := fmt.Sprintf("%s %s %s",
			pr.exprPrec(ex.LHS, 11), ex.Op, pr.exprPrec(ex.RHS, 0))
		if parent > 0 {
			return "(" + s + ")"
		}
		return s
	case *IncDecExpr:
		s := fmt.Sprintf("%s%s", pr.exprPrec(ex.X, 11), ex.Op)
		if parent > 0 {
			return "(" + s + ")"
		}
		return s
	case *CastExpr:
		return fmt.Sprintf("(%s)%s", ex.To, pr.exprPrec(ex.X, 11))
	}
	return "/*?expr?*/"
}
