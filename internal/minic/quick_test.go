package minic

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// progGen builds random but well-formed mini-C programs: straight-line
// arithmetic over a fixed set of globals, nested loops with bounded trip
// counts, and conditionals.
type progGen struct {
	rng   *rand.Rand
	sb    strings.Builder
	depth int
}

func (g *progGen) expr(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(3) {
		case 0:
			return fmt.Sprintf("%d", g.rng.Intn(19)-9)
		case 1:
			return []string{"ga", "gb", "gc"}[g.rng.Intn(3)]
		default:
			return fmt.Sprintf("arr[%d]", g.rng.Intn(8))
		}
	}
	op := []string{"+", "-", "*"}[g.rng.Intn(3)]
	return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), op, g.expr(depth-1))
}

func (g *progGen) stmt(indent string, depth int) {
	switch g.rng.Intn(5) {
	case 0:
		fmt.Fprintf(&g.sb, "%sga = %s;\n", indent, g.expr(2))
	case 1:
		fmt.Fprintf(&g.sb, "%sarr[%d] = %s;\n", indent, g.rng.Intn(8), g.expr(2))
	case 2:
		fmt.Fprintf(&g.sb, "%sgb += %s;\n", indent, g.expr(1))
	case 3:
		if depth > 0 {
			fmt.Fprintf(&g.sb, "%sif (%s > 0) {\n", indent, g.expr(1))
			g.stmt(indent+"    ", depth-1)
			fmt.Fprintf(&g.sb, "%s} else {\n", indent)
			g.stmt(indent+"    ", depth-1)
			fmt.Fprintf(&g.sb, "%s}\n", indent)
		} else {
			fmt.Fprintf(&g.sb, "%sgc = %s;\n", indent, g.expr(1))
		}
	default:
		if depth > 0 {
			v := fmt.Sprintf("i%d", g.rng.Int31())
			fmt.Fprintf(&g.sb, "%sfor (int %s = 0; %s < %d; %s++) {\n",
				indent, v, v, 1+g.rng.Intn(5), v)
			g.stmt(indent+"    ", depth-1)
			fmt.Fprintf(&g.sb, "%s}\n", indent)
		} else {
			fmt.Fprintf(&g.sb, "%sgc = gc ^ %d;\n", indent, g.rng.Intn(255))
		}
	}
}

func genProgram(seed int64) string {
	g := &progGen{rng: rand.New(rand.NewSource(seed))}
	g.sb.WriteString("int ga; int gb; int gc;\nint arr[8];\n\nvoid main(void) {\n")
	n := 2 + g.rng.Intn(6)
	for i := 0; i < n; i++ {
		g.stmt("    ", 2)
	}
	g.sb.WriteString("}\n")
	return g.sb.String()
}

// TestQuickParsePrintFixpoint: for random generated programs,
// print(parse(src)) is a fixpoint of parse-then-print.
func TestQuickParsePrintFixpoint(t *testing.T) {
	f := func(seed int64) bool {
		src := genProgram(seed)
		p1, err := Compile(src)
		if err != nil {
			t.Logf("seed %d: generated program does not compile: %v\n%s", seed, err, src)
			return false
		}
		out1 := PrintProgram(p1)
		p2, err := Compile(out1)
		if err != nil {
			t.Logf("seed %d: printed form does not compile: %v\n%s", seed, err, out1)
			return false
		}
		out2 := PrintProgram(p2)
		if out1 != out2 {
			t.Logf("seed %d: not a fixpoint", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLexerNeverPanics: arbitrary byte strings must lex to tokens or
// a clean error, never a panic or a hang.
func TestQuickLexerNeverPanics(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		// Errors are fine; panics are not.
		_, _ = Lex(string(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickParserNeverPanics: same property one level up.
func TestQuickParserNeverPanics(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		_, _ = Compile(string(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
