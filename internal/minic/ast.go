package minic

import (
	"fmt"
	"strings"
)

// BasicKind enumerates the scalar base types of mini-C.
type BasicKind int

// Scalar base types. Double is accepted in source but treated as Float.
const (
	Void BasicKind = iota
	Int
	Float
)

// String returns the C spelling of the base type.
func (k BasicKind) String() string {
	switch k {
	case Void:
		return "void"
	case Int:
		return "int"
	case Float:
		return "float"
	}
	return fmt.Sprintf("BasicKind(%d)", int(k))
}

// Type describes a mini-C type: a scalar, or an array of a scalar with one
// or two constant dimensions.
type Type struct {
	Base BasicKind
	Dims []int // empty: scalar; len 1: 1-D array; len 2: 2-D array
}

// ScalarType returns the scalar type with base k.
func ScalarType(k BasicKind) Type { return Type{Base: k} }

// IsScalar reports whether the type has no array dimensions.
func (t Type) IsScalar() bool { return len(t.Dims) == 0 }

// IsArray reports whether the type has at least one array dimension.
func (t Type) IsArray() bool { return len(t.Dims) > 0 }

// NumElems returns the total number of elements (1 for scalars).
func (t Type) NumElems() int {
	n := 1
	for _, d := range t.Dims {
		n *= d
	}
	return n
}

// ElemBytes returns the byte size of one element (4 for int and float,
// matching a 32-bit embedded target).
func (t Type) ElemBytes() int { return 4 }

// SizeBytes returns the total byte size of a value of this type.
func (t Type) SizeBytes() int { return t.NumElems() * t.ElemBytes() }

// Equal reports structural type equality.
func (t Type) Equal(o Type) bool {
	if t.Base != o.Base || len(t.Dims) != len(o.Dims) {
		return false
	}
	for i := range t.Dims {
		if t.Dims[i] != o.Dims[i] {
			return false
		}
	}
	return true
}

// String returns a C-like spelling, e.g. "float[8][8]".
func (t Type) String() string {
	var sb strings.Builder
	sb.WriteString(t.Base.String())
	for _, d := range t.Dims {
		fmt.Fprintf(&sb, "[%d]", d)
	}
	return sb.String()
}

// Node is implemented by every AST node and reports its source position.
type Node interface {
	NodePos() Pos
}

// Expr is the interface of all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// Stmt is the interface of all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// ---------------------------------------------------------------------------
// Expressions

// IntLit is an integer literal.
type IntLit struct {
	Pos   Pos
	Value int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	Pos   Pos
	Value float64
}

// VarRef references a scalar variable or a whole array by name.
type VarRef struct {
	Pos  Pos
	Name string
	// Sym is resolved by the type checker.
	Sym *Symbol
}

// IndexExpr is an array element access a[i] or a[i][j].
type IndexExpr struct {
	Pos     Pos
	Array   *VarRef
	Indices []Expr
}

// UnaryExpr applies a prefix operator: -, !, ~, +.
type UnaryExpr struct {
	Pos Pos
	Op  TokenKind
	X   Expr
}

// BinaryExpr applies an infix operator.
type BinaryExpr struct {
	Pos  Pos
	Op   TokenKind
	X, Y Expr
}

// CondExpr is the ternary conditional c ? a : b.
type CondExpr struct {
	Pos  Pos
	Cond Expr
	Then Expr
	Else Expr
}

// CallExpr calls a user-defined or builtin function.
type CallExpr struct {
	Pos  Pos
	Name string
	Args []Expr
	// Fn is resolved by the type checker for user functions; nil for builtins.
	Fn *FuncDecl
	// Builtin is non-empty when Name refers to a math builtin.
	Builtin string
}

// AssignExpr assigns to a scalar variable or array element. Op is TokAssign
// for plain assignment or one of the compound kinds (TokPlusEq etc.).
type AssignExpr struct {
	Pos Pos
	Op  TokenKind
	LHS Expr // *VarRef or *IndexExpr
	RHS Expr
}

// IncDecExpr is i++ / i-- / ++i / --i used as a statement or for-post.
type IncDecExpr struct {
	Pos Pos
	Op  TokenKind // TokInc or TokDec
	X   Expr      // *VarRef or *IndexExpr
}

// CastExpr is an explicit (int) or (float) conversion.
type CastExpr struct {
	Pos Pos
	To  BasicKind
	X   Expr
}

// NodePos implementations.
func (e *IntLit) NodePos() Pos     { return e.Pos }
func (e *FloatLit) NodePos() Pos   { return e.Pos }
func (e *VarRef) NodePos() Pos     { return e.Pos }
func (e *IndexExpr) NodePos() Pos  { return e.Pos }
func (e *UnaryExpr) NodePos() Pos  { return e.Pos }
func (e *BinaryExpr) NodePos() Pos { return e.Pos }
func (e *CondExpr) NodePos() Pos   { return e.Pos }
func (e *CallExpr) NodePos() Pos   { return e.Pos }
func (e *AssignExpr) NodePos() Pos { return e.Pos }
func (e *IncDecExpr) NodePos() Pos { return e.Pos }
func (e *CastExpr) NodePos() Pos   { return e.Pos }

func (*IntLit) exprNode()     {}
func (*FloatLit) exprNode()   {}
func (*VarRef) exprNode()     {}
func (*IndexExpr) exprNode()  {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*CondExpr) exprNode()   {}
func (*CallExpr) exprNode()   {}
func (*AssignExpr) exprNode() {}
func (*IncDecExpr) exprNode() {}
func (*CastExpr) exprNode()   {}

// ---------------------------------------------------------------------------
// Statements

// DeclStmt declares a local variable, optionally with a scalar initializer
// or an array initializer list.
type DeclStmt struct {
	Pos  Pos
	Name string
	Type Type
	Init Expr   // scalar initializer, may be nil
	List []Expr // array initializer list, may be nil
	Sym  *Symbol
}

// ExprStmt evaluates an expression for its side effects (assignment, call,
// increment).
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// BlockStmt is a brace-delimited statement list.
type BlockStmt struct {
	Pos   Pos
	Stmts []Stmt
}

// IfStmt is if/else.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then *BlockStmt
	Else Stmt // *BlockStmt, *IfStmt, or nil
}

// ForStmt is a C for loop. Init and Post may be nil; Cond may be nil
// (infinite loop).
type ForStmt struct {
	Pos  Pos
	Init Stmt // *DeclStmt or *ExprStmt or nil
	Cond Expr
	Post Expr // AssignExpr or IncDecExpr, may be nil
	Body *BlockStmt
}

// WhileStmt is while (cond) body, or do body while (cond) when DoWhile.
type WhileStmt struct {
	Pos     Pos
	Cond    Expr
	Body    *BlockStmt
	DoWhile bool
}

// ReturnStmt returns from the current function.
type ReturnStmt struct {
	Pos   Pos
	Value Expr // nil for void return
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Pos Pos }

func (s *DeclStmt) NodePos() Pos     { return s.Pos }
func (s *ExprStmt) NodePos() Pos     { return s.Pos }
func (s *BlockStmt) NodePos() Pos    { return s.Pos }
func (s *IfStmt) NodePos() Pos       { return s.Pos }
func (s *ForStmt) NodePos() Pos      { return s.Pos }
func (s *WhileStmt) NodePos() Pos    { return s.Pos }
func (s *ReturnStmt) NodePos() Pos   { return s.Pos }
func (s *BreakStmt) NodePos() Pos    { return s.Pos }
func (s *ContinueStmt) NodePos() Pos { return s.Pos }

func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*BlockStmt) stmtNode()    {}
func (*IfStmt) stmtNode()       {}
func (*ForStmt) stmtNode()      {}
func (*WhileStmt) stmtNode()    {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

// ---------------------------------------------------------------------------
// Declarations

// Param is a function parameter. Array parameters are passed by reference
// (as in C); scalars by value.
type Param struct {
	Name string
	Type Type
	Sym  *Symbol
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Pos    Pos
	Name   string
	Result Type
	Params []Param
	Body   *BlockStmt
}

// NodePos returns the declaration position.
func (f *FuncDecl) NodePos() Pos { return f.Pos }

// GlobalDecl is a file-scope variable definition.
type GlobalDecl struct {
	Pos  Pos
	Name string
	Type Type
	Init Expr
	List []Expr
	Sym  *Symbol
}

// NodePos returns the declaration position.
func (g *GlobalDecl) NodePos() Pos { return g.Pos }

// Program is a parsed translation unit.
type Program struct {
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// SymbolKind distinguishes the storage of a symbol.
type SymbolKind int

// Symbol kinds.
const (
	SymGlobal SymbolKind = iota
	SymLocal
	SymParam
)

// Symbol is a resolved variable: the type checker allocates one per
// distinct declaration and links every reference to it.
type Symbol struct {
	Name string
	Kind SymbolKind
	Type Type
	// ID is unique per program, assigned by the checker in declaration order.
	ID int
}

// String renders the symbol for diagnostics.
func (s *Symbol) String() string {
	return fmt.Sprintf("%s#%d:%s", s.Name, s.ID, s.Type)
}
