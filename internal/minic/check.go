package minic

import "fmt"

// Builtins maps the math builtin names accepted by mini-C to an arity.
// They all take and return float except abs/min/max which are overloaded on
// int and float operands.
var Builtins = map[string]int{
	"fabs": 1, "sqrt": 1, "sin": 1, "cos": 1, "tan": 1, "exp": 1, "log": 1,
	"floor": 1, "ceil": 1, "pow": 2, "atan": 1, "atan2": 2,
	"abs": 1, "min": 2, "max": 2,
}

// checker holds the state of one type-checking pass.
type checker struct {
	prog   *Program
	scopes []map[string]*Symbol
	nextID int
	fn     *FuncDecl
	loop   int // loop nesting depth
}

// Check resolves all names, assigns Symbols and verifies types in place.
func Check(prog *Program) error {
	c := &checker{prog: prog}
	c.push()
	defer c.pop()
	// Globals first (in order; forward references between globals are not
	// allowed, matching C initializer rules).
	for _, g := range prog.Globals {
		if g.Init != nil {
			if _, err := c.exprType(g.Init); err != nil {
				return err
			}
		}
		for _, e := range g.List {
			if _, err := c.exprType(e); err != nil {
				return err
			}
		}
		if g.Type.IsArray() && g.Init != nil {
			return errf(g.Pos, "array %s needs a brace initializer", g.Name)
		}
		if len(g.List) > g.Type.NumElems() {
			return errf(g.Pos, "too many initializers for %s", g.Name)
		}
		sym, err := c.declare(g.Pos, g.Name, SymGlobal, g.Type)
		if err != nil {
			return err
		}
		g.Sym = sym
	}
	// Check for duplicate function names and that main exists when the
	// program is a whole application (library use may omit it; callers that
	// need main check separately).
	seen := map[string]bool{}
	for _, f := range prog.Funcs {
		if seen[f.Name] {
			return errf(f.Pos, "function %s redefined", f.Name)
		}
		seen[f.Name] = true
		if _, isBuiltin := Builtins[f.Name]; isBuiltin {
			return errf(f.Pos, "function %s shadows a builtin", f.Name)
		}
	}
	for _, f := range prog.Funcs {
		if err := c.checkFunc(f); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) push() { c.scopes = append(c.scopes, map[string]*Symbol{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(pos Pos, name string, kind SymbolKind, t Type) (*Symbol, error) {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		return nil, errf(pos, "%s redeclared in this scope", name)
	}
	sym := &Symbol{Name: name, Kind: kind, Type: t, ID: c.nextID}
	c.nextID++
	top[name] = sym
	return sym, nil
}

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return nil
}

func (c *checker) checkFunc(f *FuncDecl) error {
	c.fn = f
	c.push()
	defer c.pop()
	for i := range f.Params {
		p := &f.Params[i]
		// Unsized leading dimension: keep 0; the interpreter passes arrays
		// by reference so the callee only needs trailing dims for indexing.
		sym, err := c.declare(f.Pos, p.Name, SymParam, p.Type)
		if err != nil {
			return err
		}
		p.Sym = sym
	}
	return c.checkBlock(f.Body, false)
}

func (c *checker) checkBlock(b *BlockStmt, newScope bool) error {
	if newScope {
		c.push()
		defer c.pop()
	}
	for _, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch st := s.(type) {
	case *DeclStmt:
		if st.Init != nil {
			t, err := c.exprType(st.Init)
			if err != nil {
				return err
			}
			if !t.IsScalar() {
				return errf(st.Pos, "cannot initialize %s with an array value", st.Name)
			}
		}
		for _, e := range st.List {
			if _, err := c.exprType(e); err != nil {
				return err
			}
		}
		if len(st.List) > st.Type.NumElems() {
			return errf(st.Pos, "too many initializers for %s", st.Name)
		}
		sym, err := c.declare(st.Pos, st.Name, SymLocal, st.Type)
		if err != nil {
			return err
		}
		st.Sym = sym
		return nil
	case *ExprStmt:
		_, err := c.exprType(st.X)
		return err
	case *BlockStmt:
		return c.checkBlock(st, true)
	case *IfStmt:
		if _, err := c.exprType(st.Cond); err != nil {
			return err
		}
		if err := c.checkBlock(st.Then, true); err != nil {
			return err
		}
		if st.Else != nil {
			return c.checkStmt(st.Else)
		}
		return nil
	case *ForStmt:
		c.push()
		defer c.pop()
		if st.Init != nil {
			if err := c.checkStmt(st.Init); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			if _, err := c.exprType(st.Cond); err != nil {
				return err
			}
		}
		if st.Post != nil {
			if _, err := c.exprType(st.Post); err != nil {
				return err
			}
		}
		c.loop++
		defer func() { c.loop-- }()
		return c.checkBlock(st.Body, true)
	case *WhileStmt:
		if _, err := c.exprType(st.Cond); err != nil {
			return err
		}
		c.loop++
		defer func() { c.loop-- }()
		return c.checkBlock(st.Body, true)
	case *ReturnStmt:
		if st.Value == nil {
			if c.fn.Result.Base != Void {
				return errf(st.Pos, "function %s must return a %s value", c.fn.Name, c.fn.Result)
			}
			return nil
		}
		t, err := c.exprType(st.Value)
		if err != nil {
			return err
		}
		if c.fn.Result.Base == Void {
			return errf(st.Pos, "void function %s cannot return a value", c.fn.Name)
		}
		if !t.IsScalar() {
			return errf(st.Pos, "cannot return an array value")
		}
		return nil
	case *BreakStmt:
		if c.loop == 0 {
			return errf(st.Pos, "break outside a loop")
		}
		return nil
	case *ContinueStmt:
		if c.loop == 0 {
			return errf(st.Pos, "continue outside a loop")
		}
		return nil
	}
	return fmt.Errorf("unhandled statement %T", s)
}

// exprType resolves names inside e and returns its type.
func (c *checker) exprType(e Expr) (Type, error) {
	switch ex := e.(type) {
	case *IntLit:
		return ScalarType(Int), nil
	case *FloatLit:
		return ScalarType(Float), nil
	case *VarRef:
		sym := c.lookup(ex.Name)
		if sym == nil {
			return Type{}, errf(ex.Pos, "undefined variable %s", ex.Name)
		}
		ex.Sym = sym
		return sym.Type, nil
	case *IndexExpr:
		t, err := c.exprType(ex.Array)
		if err != nil {
			return Type{}, err
		}
		if !t.IsArray() {
			return Type{}, errf(ex.Pos, "%s is not an array", ex.Array.Name)
		}
		if len(ex.Indices) > len(t.Dims) {
			return Type{}, errf(ex.Pos, "too many indices for %s (%s)", ex.Array.Name, t)
		}
		for _, ix := range ex.Indices {
			it, err := c.exprType(ix)
			if err != nil {
				return Type{}, err
			}
			if !it.IsScalar() {
				return Type{}, errf(ix.NodePos(), "array index must be scalar")
			}
		}
		if len(ex.Indices) == len(t.Dims) {
			return ScalarType(t.Base), nil
		}
		// Partial indexing of a 2-D array yields a row view (only valid as a
		// call argument); represent as 1-D array of the trailing dim.
		return Type{Base: t.Base, Dims: t.Dims[len(ex.Indices):]}, nil
	case *UnaryExpr:
		t, err := c.exprType(ex.X)
		if err != nil {
			return Type{}, err
		}
		if !t.IsScalar() {
			return Type{}, errf(ex.Pos, "unary %s requires a scalar operand", ex.Op)
		}
		if ex.Op == TokNot || ex.Op == TokTilde {
			return ScalarType(Int), nil
		}
		return t, nil
	case *BinaryExpr:
		xt, err := c.exprType(ex.X)
		if err != nil {
			return Type{}, err
		}
		yt, err := c.exprType(ex.Y)
		if err != nil {
			return Type{}, err
		}
		if !xt.IsScalar() || !yt.IsScalar() {
			return Type{}, errf(ex.Pos, "binary %s requires scalar operands", ex.Op)
		}
		switch ex.Op {
		case TokEq, TokNeq, TokLt, TokGt, TokLe, TokGe, TokAndAnd, TokOrOr:
			return ScalarType(Int), nil
		case TokPercent, TokAmp, TokPipe, TokCaret, TokShl, TokShr:
			if xt.Base != Int || yt.Base != Int {
				return Type{}, errf(ex.Pos, "operator %s requires int operands", ex.Op)
			}
			return ScalarType(Int), nil
		default:
			if xt.Base == Float || yt.Base == Float {
				return ScalarType(Float), nil
			}
			return ScalarType(Int), nil
		}
	case *CondExpr:
		if _, err := c.exprType(ex.Cond); err != nil {
			return Type{}, err
		}
		tt, err := c.exprType(ex.Then)
		if err != nil {
			return Type{}, err
		}
		et, err := c.exprType(ex.Else)
		if err != nil {
			return Type{}, err
		}
		if tt.Base == Float || et.Base == Float {
			return ScalarType(Float), nil
		}
		return tt, nil
	case *CallExpr:
		return c.callType(ex)
	case *AssignExpr:
		lt, err := c.exprType(ex.LHS)
		if err != nil {
			return Type{}, err
		}
		if !lt.IsScalar() {
			return Type{}, errf(ex.Pos, "cannot assign to an array as a whole")
		}
		rt, err := c.exprType(ex.RHS)
		if err != nil {
			return Type{}, err
		}
		if !rt.IsScalar() {
			return Type{}, errf(ex.Pos, "cannot assign an array value")
		}
		if ex.Op != TokAssign && ex.Op != TokPlusEq && ex.Op != TokMinusEq &&
			ex.Op != TokStarEq && ex.Op != TokSlashEq {
			if lt.Base != Int || rt.Base != Int {
				return Type{}, errf(ex.Pos, "compound operator %s requires int operands", ex.Op)
			}
		}
		return lt, nil
	case *IncDecExpr:
		t, err := c.exprType(ex.X)
		if err != nil {
			return Type{}, err
		}
		switch ex.X.(type) {
		case *VarRef, *IndexExpr:
		default:
			return Type{}, errf(ex.Pos, "%s requires a variable or array element", ex.Op)
		}
		if !t.IsScalar() {
			return Type{}, errf(ex.Pos, "%s requires a scalar operand", ex.Op)
		}
		return t, nil
	case *CastExpr:
		t, err := c.exprType(ex.X)
		if err != nil {
			return Type{}, err
		}
		if !t.IsScalar() {
			return Type{}, errf(ex.Pos, "cannot cast an array value")
		}
		return ScalarType(ex.To), nil
	}
	return Type{}, fmt.Errorf("unhandled expression %T", e)
}

func (c *checker) callType(ex *CallExpr) (Type, error) {
	if arity, ok := Builtins[ex.Name]; ok {
		ex.Builtin = ex.Name
		if len(ex.Args) != arity {
			return Type{}, errf(ex.Pos, "builtin %s expects %d argument(s), got %d", ex.Name, arity, len(ex.Args))
		}
		allInt := true
		for _, a := range ex.Args {
			t, err := c.exprType(a)
			if err != nil {
				return Type{}, err
			}
			if !t.IsScalar() {
				return Type{}, errf(a.NodePos(), "builtin %s requires scalar arguments", ex.Name)
			}
			if t.Base != Int {
				allInt = false
			}
		}
		switch ex.Name {
		case "abs", "min", "max":
			if allInt {
				return ScalarType(Int), nil
			}
			return ScalarType(Float), nil
		case "floor", "ceil":
			return ScalarType(Float), nil
		default:
			return ScalarType(Float), nil
		}
	}
	fn := c.prog.Func(ex.Name)
	if fn == nil {
		return Type{}, errf(ex.Pos, "call to undefined function %s", ex.Name)
	}
	ex.Fn = fn
	if len(ex.Args) != len(fn.Params) {
		return Type{}, errf(ex.Pos, "function %s expects %d argument(s), got %d", ex.Name, len(fn.Params), len(ex.Args))
	}
	for i, a := range ex.Args {
		at, err := c.exprType(a)
		if err != nil {
			return Type{}, err
		}
		pt := fn.Params[i].Type
		if pt.IsArray() != at.IsArray() {
			return Type{}, errf(a.NodePos(), "argument %d of %s: have %s, want %s", i+1, ex.Name, at, pt)
		}
		if pt.IsArray() {
			if pt.Base != at.Base {
				return Type{}, errf(a.NodePos(), "argument %d of %s: element type mismatch (%s vs %s)", i+1, ex.Name, at, pt)
			}
			if len(pt.Dims) != len(at.Dims) {
				return Type{}, errf(a.NodePos(), "argument %d of %s: rank mismatch (%s vs %s)", i+1, ex.Name, at, pt)
			}
			// Trailing dims must match exactly; a 0 (unsized) param dim
			// accepts any extent.
			for d := range pt.Dims {
				if pt.Dims[d] != 0 && pt.Dims[d] != at.Dims[d] {
					return Type{}, errf(a.NodePos(), "argument %d of %s: extent mismatch (%s vs %s)", i+1, ex.Name, at, pt)
				}
			}
			// Array arguments must be direct variable or row references so
			// that aliasing is trackable by the dependence analysis.
			switch a.(type) {
			case *VarRef, *IndexExpr:
			default:
				return Type{}, errf(a.NodePos(), "array argument %d of %s must be a variable", i+1, ex.Name)
			}
		}
	}
	return fn.Result, nil
}
