package minic

import "fmt"

// Builtins maps the math builtin names accepted by mini-C to an arity.
// They all take and return float except abs/min/max which are overloaded on
// int and float operands.
var Builtins = map[string]int{
	"fabs": 1, "sqrt": 1, "sin": 1, "cos": 1, "tan": 1, "exp": 1, "log": 1,
	"floor": 1, "ceil": 1, "pow": 2, "atan": 1, "atan2": 2,
	"abs": 1, "min": 2, "max": 2,
}

// checker holds the state of one type-checking pass.
type checker struct {
	prog   *Program
	scopes []map[string]*Symbol
	nextID int
	fn     *FuncDecl
	loop   int // loop nesting depth
	diags  []Diagnostic
	// undefVars / undefFuncs suppress repeated reports for the same unknown
	// name; badSyms marks the synthesized placeholder symbols so later
	// passes can avoid piling type errors onto an already-reported name.
	undefVars  map[string]*Symbol
	undefFuncs map[string]bool
	badSyms    map[*Symbol]bool
}

// Check resolves all names, assigns Symbols and verifies types in place.
// All semantic errors are reported together: the returned error, when
// non-nil, is an ErrorList with one positioned Diagnostic per problem.
func Check(prog *Program) error {
	diags := CheckAll(prog)
	if len(diags) == 0 {
		return nil
	}
	return ErrorList(diags)
}

// CheckAll runs the full semantic check and returns every diagnostic found
// (empty for a valid program). After an error the checker keeps going with
// a placeholder symbol or type so one mistake yields one report, not a
// cascade, and the rest of the program is still checked.
func CheckAll(prog *Program) []Diagnostic {
	c := &checker{
		prog:       prog,
		undefVars:  map[string]*Symbol{},
		undefFuncs: map[string]bool{},
		badSyms:    map[*Symbol]bool{},
	}
	c.push()
	defer c.pop()
	// Globals first (in order; forward references between globals are not
	// allowed, matching C initializer rules).
	for _, g := range prog.Globals {
		if g.Init != nil {
			c.exprType(g.Init)
		}
		for _, e := range g.List {
			c.exprType(e)
		}
		if g.Type.IsArray() && g.Init != nil {
			c.errorf(g.Pos, "type", "array %s needs a brace initializer", g.Name)
		}
		if len(g.List) > g.Type.NumElems() {
			c.errorf(g.Pos, "type", "too many initializers for %s", g.Name)
		}
		g.Sym = c.declare(g.Pos, g.Name, SymGlobal, g.Type)
	}
	// Check for duplicate function names and builtin shadowing.
	seen := map[string]bool{}
	for _, f := range prog.Funcs {
		if seen[f.Name] {
			c.errorf(f.Pos, "redeclared", "function %s redefined", f.Name)
		}
		seen[f.Name] = true
		if _, isBuiltin := Builtins[f.Name]; isBuiltin {
			c.errorf(f.Pos, "redeclared", "function %s shadows a builtin", f.Name)
		}
	}
	for _, f := range prog.Funcs {
		c.checkFunc(f)
	}
	return c.diags
}

// errorf records one semantic error.
func (c *checker) errorf(pos Pos, code, format string, args ...any) {
	c.diags = append(c.diags, Diagnostic{
		Pos: pos, Sev: SevError, Code: code, Msg: fmt.Sprintf(format, args...),
	})
}

func (c *checker) push() { c.scopes = append(c.scopes, map[string]*Symbol{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

// declare binds name in the innermost scope. A redeclaration is reported
// and the original symbol is returned so every reference keeps resolving
// to one consistent symbol.
func (c *checker) declare(pos Pos, name string, kind SymbolKind, t Type) *Symbol {
	top := c.scopes[len(c.scopes)-1]
	if prev, dup := top[name]; dup {
		c.errorf(pos, "redeclared", "%s redeclared in this scope", name)
		return prev
	}
	sym := &Symbol{Name: name, Kind: kind, Type: t, ID: c.nextID}
	c.nextID++
	top[name] = sym
	return sym
}

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return nil
}

// undefined reports an unknown variable (once per name) and returns a
// placeholder int symbol so the rest of the expression still checks.
func (c *checker) undefined(pos Pos, name string) *Symbol {
	if sym, ok := c.undefVars[name]; ok {
		return sym
	}
	c.errorf(pos, "undefined", "undefined variable %s", name)
	sym := &Symbol{Name: name, Kind: SymLocal, Type: ScalarType(Int), ID: c.nextID}
	c.nextID++
	c.undefVars[name] = sym
	c.badSyms[sym] = true
	return sym
}

func (c *checker) checkFunc(f *FuncDecl) {
	c.fn = f
	c.push()
	defer c.pop()
	for i := range f.Params {
		p := &f.Params[i]
		// Unsized leading dimension: keep 0; the interpreter passes arrays
		// by reference so the callee only needs trailing dims for indexing.
		p.Sym = c.declare(f.Pos, p.Name, SymParam, p.Type)
	}
	c.checkBlock(f.Body, false)
}

func (c *checker) checkBlock(b *BlockStmt, newScope bool) {
	if newScope {
		c.push()
		defer c.pop()
	}
	for _, s := range b.Stmts {
		c.checkStmt(s)
	}
}

func (c *checker) checkStmt(s Stmt) {
	switch st := s.(type) {
	case *DeclStmt:
		if st.Init != nil {
			if t := c.exprType(st.Init); !t.IsScalar() {
				c.errorf(st.Pos, "type", "cannot initialize %s with an array value", st.Name)
			}
		}
		for _, e := range st.List {
			c.exprType(e)
		}
		if len(st.List) > st.Type.NumElems() {
			c.errorf(st.Pos, "type", "too many initializers for %s", st.Name)
		}
		st.Sym = c.declare(st.Pos, st.Name, SymLocal, st.Type)
	case *ExprStmt:
		c.exprType(st.X)
	case *BlockStmt:
		c.checkBlock(st, true)
	case *IfStmt:
		c.exprType(st.Cond)
		c.checkBlock(st.Then, true)
		if st.Else != nil {
			c.checkStmt(st.Else)
		}
	case *ForStmt:
		c.push()
		defer c.pop()
		if st.Init != nil {
			c.checkStmt(st.Init)
		}
		if st.Cond != nil {
			c.exprType(st.Cond)
		}
		if st.Post != nil {
			c.exprType(st.Post)
		}
		c.loop++
		defer func() { c.loop-- }()
		c.checkBlock(st.Body, true)
	case *WhileStmt:
		c.exprType(st.Cond)
		c.loop++
		defer func() { c.loop-- }()
		c.checkBlock(st.Body, true)
	case *ReturnStmt:
		if st.Value == nil {
			if c.fn.Result.Base != Void {
				c.errorf(st.Pos, "type", "function %s must return a %s value", c.fn.Name, c.fn.Result)
			}
			return
		}
		t := c.exprType(st.Value)
		if c.fn.Result.Base == Void {
			c.errorf(st.Pos, "type", "void function %s cannot return a value", c.fn.Name)
		} else if !t.IsScalar() {
			c.errorf(st.Pos, "type", "cannot return an array value")
		}
	case *BreakStmt:
		if c.loop == 0 {
			c.errorf(st.Pos, "control", "break outside a loop")
		}
	case *ContinueStmt:
		if c.loop == 0 {
			c.errorf(st.Pos, "control", "continue outside a loop")
		}
	default:
		c.errorf(Pos{}, "internal", "unhandled statement %T", s)
	}
}

// exprType resolves names inside e and returns its type. Errors are
// recorded on the checker; the returned type is a scalar placeholder that
// lets checking continue.
func (c *checker) exprType(e Expr) Type {
	switch ex := e.(type) {
	case *IntLit:
		return ScalarType(Int)
	case *FloatLit:
		return ScalarType(Float)
	case *VarRef:
		sym := c.lookup(ex.Name)
		if sym == nil {
			sym = c.undefined(ex.Pos, ex.Name)
		}
		ex.Sym = sym
		return sym.Type
	case *IndexExpr:
		t := c.exprType(ex.Array)
		elem := ScalarType(t.Base)
		if !t.IsArray() {
			// Suppress the follow-up when the base name was already reported
			// as undefined.
			if ex.Array.Sym == nil || !c.badSyms[ex.Array.Sym] {
				c.errorf(ex.Pos, "type", "%s is not an array", ex.Array.Name)
			}
		} else if len(ex.Indices) > len(t.Dims) {
			c.errorf(ex.Pos, "type", "too many indices for %s (%s)", ex.Array.Name, t)
		}
		for _, ix := range ex.Indices {
			if it := c.exprType(ix); !it.IsScalar() {
				c.errorf(ix.NodePos(), "type", "array index must be scalar")
			}
		}
		if !t.IsArray() || len(ex.Indices) >= len(t.Dims) {
			return elem
		}
		// Partial indexing of a 2-D array yields a row view (only valid as a
		// call argument); represent as 1-D array of the trailing dim.
		return Type{Base: t.Base, Dims: t.Dims[len(ex.Indices):]}
	case *UnaryExpr:
		t := c.exprType(ex.X)
		if !t.IsScalar() {
			c.errorf(ex.Pos, "type", "unary %s requires a scalar operand", ex.Op)
			t = ScalarType(Int)
		}
		if ex.Op == TokNot || ex.Op == TokTilde {
			return ScalarType(Int)
		}
		return t
	case *BinaryExpr:
		xt := c.exprType(ex.X)
		yt := c.exprType(ex.Y)
		if !xt.IsScalar() || !yt.IsScalar() {
			c.errorf(ex.Pos, "type", "binary %s requires scalar operands", ex.Op)
			return ScalarType(Int)
		}
		switch ex.Op {
		case TokEq, TokNeq, TokLt, TokGt, TokLe, TokGe, TokAndAnd, TokOrOr:
			return ScalarType(Int)
		case TokPercent, TokAmp, TokPipe, TokCaret, TokShl, TokShr:
			if xt.Base != Int || yt.Base != Int {
				c.errorf(ex.Pos, "type", "operator %s requires int operands", ex.Op)
			}
			return ScalarType(Int)
		default:
			if xt.Base == Float || yt.Base == Float {
				return ScalarType(Float)
			}
			return ScalarType(Int)
		}
	case *CondExpr:
		c.exprType(ex.Cond)
		tt := c.exprType(ex.Then)
		et := c.exprType(ex.Else)
		if tt.Base == Float || et.Base == Float {
			return ScalarType(Float)
		}
		return tt
	case *CallExpr:
		return c.callType(ex)
	case *AssignExpr:
		lt := c.exprType(ex.LHS)
		if !lt.IsScalar() {
			c.errorf(ex.Pos, "type", "cannot assign to an array as a whole")
			lt = ScalarType(Int)
		}
		if rt := c.exprType(ex.RHS); !rt.IsScalar() {
			c.errorf(ex.Pos, "type", "cannot assign an array value")
		} else if ex.Op != TokAssign && ex.Op != TokPlusEq && ex.Op != TokMinusEq &&
			ex.Op != TokStarEq && ex.Op != TokSlashEq {
			if lt.Base != Int || rt.Base != Int {
				c.errorf(ex.Pos, "type", "compound operator %s requires int operands", ex.Op)
			}
		}
		return lt
	case *IncDecExpr:
		t := c.exprType(ex.X)
		switch ex.X.(type) {
		case *VarRef, *IndexExpr:
		default:
			c.errorf(ex.Pos, "type", "%s requires a variable or array element", ex.Op)
		}
		if !t.IsScalar() {
			c.errorf(ex.Pos, "type", "%s requires a scalar operand", ex.Op)
			t = ScalarType(Int)
		}
		return t
	case *CastExpr:
		if t := c.exprType(ex.X); !t.IsScalar() {
			c.errorf(ex.Pos, "type", "cannot cast an array value")
		}
		return ScalarType(ex.To)
	}
	c.errorf(Pos{}, "internal", "unhandled expression %T", e)
	return ScalarType(Int)
}

func (c *checker) callType(ex *CallExpr) Type {
	if arity, ok := Builtins[ex.Name]; ok {
		ex.Builtin = ex.Name
		if len(ex.Args) != arity {
			c.errorf(ex.Pos, "arity", "builtin %s expects %d argument(s), got %d", ex.Name, arity, len(ex.Args))
		}
		allInt := true
		for _, a := range ex.Args {
			t := c.exprType(a)
			if !t.IsScalar() {
				c.errorf(a.NodePos(), "type", "builtin %s requires scalar arguments", ex.Name)
				continue
			}
			if t.Base != Int {
				allInt = false
			}
		}
		switch ex.Name {
		case "abs", "min", "max":
			if allInt {
				return ScalarType(Int)
			}
			return ScalarType(Float)
		default:
			return ScalarType(Float)
		}
	}
	fn := c.prog.Func(ex.Name)
	if fn == nil {
		if !c.undefFuncs[ex.Name] {
			c.errorf(ex.Pos, "undefined", "call to undefined function %s", ex.Name)
			c.undefFuncs[ex.Name] = true
		}
		for _, a := range ex.Args {
			c.exprType(a)
		}
		return ScalarType(Int)
	}
	ex.Fn = fn
	if len(ex.Args) != len(fn.Params) {
		c.errorf(ex.Pos, "arity", "function %s expects %d argument(s), got %d", ex.Name, len(fn.Params), len(ex.Args))
	}
	for i, a := range ex.Args {
		at := c.exprType(a)
		if i >= len(fn.Params) {
			continue
		}
		pt := fn.Params[i].Type
		if pt.IsArray() != at.IsArray() {
			c.errorf(a.NodePos(), "type", "argument %d of %s: have %s, want %s", i+1, ex.Name, at, pt)
			continue
		}
		if pt.IsArray() {
			if pt.Base != at.Base {
				c.errorf(a.NodePos(), "type", "argument %d of %s: element type mismatch (%s vs %s)", i+1, ex.Name, at, pt)
			}
			if len(pt.Dims) != len(at.Dims) {
				c.errorf(a.NodePos(), "type", "argument %d of %s: rank mismatch (%s vs %s)", i+1, ex.Name, at, pt)
			} else {
				// Trailing dims must match exactly; a 0 (unsized) param dim
				// accepts any extent.
				for d := range pt.Dims {
					if pt.Dims[d] != 0 && pt.Dims[d] != at.Dims[d] {
						c.errorf(a.NodePos(), "type", "argument %d of %s: extent mismatch (%s vs %s)", i+1, ex.Name, at, pt)
						break
					}
				}
			}
			// Array arguments must be direct variable or row references so
			// that aliasing is trackable by the dependence analysis.
			switch a.(type) {
			case *VarRef, *IndexExpr:
			default:
				c.errorf(a.NodePos(), "type", "array argument %d of %s must be a variable", i+1, ex.Name)
			}
		}
	}
	return fn.Result
}
