// Package minic implements a lexer, parser and type checker for a compact
// ANSI-C subset ("mini-C") that is rich enough to express the UTDSP-style
// benchmark kernels the parallelizer is evaluated on: functions, int/float
// scalars, one- and two-dimensional arrays with constant bounds, the usual
// statement forms (if/else, for, while, do-while, return, break, continue,
// blocks, expression statements) and the full C expression grammar including
// assignments, ternaries and calls. Simple object-like #define macros are
// expanded by the lexer.
package minic

import "fmt"

// TokenKind enumerates the lexical token classes of mini-C.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokIntLit
	TokFloatLit
	TokCharLit
	TokStringLit

	// Keywords.
	TokKwInt
	TokKwFloat
	TokKwDouble
	TokKwVoid
	TokKwIf
	TokKwElse
	TokKwFor
	TokKwWhile
	TokKwDo
	TokKwReturn
	TokKwBreak
	TokKwContinue
	TokKwConst
	TokKwStatic

	// Punctuation and operators.
	TokLParen   // (
	TokRParen   // )
	TokLBrace   // {
	TokRBrace   // }
	TokLBracket // [
	TokRBracket // ]
	TokSemi     // ;
	TokComma    // ,
	TokQuestion // ?
	TokColon    // :

	TokAssign    // =
	TokPlusEq    // +=
	TokMinusEq   // -=
	TokStarEq    // *=
	TokSlashEq   // /=
	TokPercentEq // %=
	TokShlEq     // <<=
	TokShrEq     // >>=
	TokAndEq     // &=
	TokOrEq      // |=
	TokXorEq     // ^=

	TokPlus    // +
	TokMinus   // -
	TokStar    // *
	TokSlash   // /
	TokPercent // %
	TokInc     // ++
	TokDec     // --

	TokEq  // ==
	TokNeq // !=
	TokLt  // <
	TokGt  // >
	TokLe  // <=
	TokGe  // >=

	TokAndAnd // &&
	TokOrOr   // ||
	TokNot    // !

	TokAmp   // &
	TokPipe  // |
	TokCaret // ^
	TokTilde // ~
	TokShl   // <<
	TokShr   // >>
)

var tokenNames = map[TokenKind]string{
	TokEOF:        "EOF",
	TokIdent:      "identifier",
	TokIntLit:     "integer literal",
	TokFloatLit:   "float literal",
	TokCharLit:    "char literal",
	TokStringLit:  "string literal",
	TokKwInt:      "int",
	TokKwFloat:    "float",
	TokKwDouble:   "double",
	TokKwVoid:     "void",
	TokKwIf:       "if",
	TokKwElse:     "else",
	TokKwFor:      "for",
	TokKwWhile:    "while",
	TokKwDo:       "do",
	TokKwReturn:   "return",
	TokKwBreak:    "break",
	TokKwContinue: "continue",
	TokKwConst:    "const",
	TokKwStatic:   "static",
	TokLParen:     "(",
	TokRParen:     ")",
	TokLBrace:     "{",
	TokRBrace:     "}",
	TokLBracket:   "[",
	TokRBracket:   "]",
	TokSemi:       ";",
	TokComma:      ",",
	TokQuestion:   "?",
	TokColon:      ":",
	TokAssign:     "=",
	TokPlusEq:     "+=",
	TokMinusEq:    "-=",
	TokStarEq:     "*=",
	TokSlashEq:    "/=",
	TokPercentEq:  "%=",
	TokShlEq:      "<<=",
	TokShrEq:      ">>=",
	TokAndEq:      "&=",
	TokOrEq:       "|=",
	TokXorEq:      "^=",
	TokPlus:       "+",
	TokMinus:      "-",
	TokStar:       "*",
	TokSlash:      "/",
	TokPercent:    "%",
	TokInc:        "++",
	TokDec:        "--",
	TokEq:         "==",
	TokNeq:        "!=",
	TokLt:         "<",
	TokGt:         ">",
	TokLe:         "<=",
	TokGe:         ">=",
	TokAndAnd:     "&&",
	TokOrOr:       "||",
	TokNot:        "!",
	TokAmp:        "&",
	TokPipe:       "|",
	TokCaret:      "^",
	TokTilde:      "~",
	TokShl:        "<<",
	TokShr:        ">>",
}

// String returns the canonical spelling of the token kind.
func (k TokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

var keywords = map[string]TokenKind{
	"int":      TokKwInt,
	"float":    TokKwFloat,
	"double":   TokKwDouble,
	"void":     TokKwVoid,
	"if":       TokKwIf,
	"else":     TokKwElse,
	"for":      TokKwFor,
	"while":    TokKwWhile,
	"do":       TokKwDo,
	"return":   TokKwReturn,
	"break":    TokKwBreak,
	"continue": TokKwContinue,
	"const":    TokKwConst,
	"static":   TokKwStatic,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

// String formats the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token with its source text and position.
type Token struct {
	Kind TokenKind
	Text string
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case TokIdent, TokIntLit, TokFloatLit, TokCharLit, TokStringLit:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}
