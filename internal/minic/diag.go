package minic

import "strings"

// Severity classifies a diagnostic.
type Severity int

// Severity levels. The checker only emits errors; the analysis package's
// lint passes reuse Diagnostic with SevWarning for advisory findings.
const (
	SevWarning Severity = iota
	SevError
)

// String renders the severity for report lines.
func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warning"
}

// Diagnostic is one positioned finding about a program: a semantic error
// from the checker or a warning from a lint pass.
type Diagnostic struct {
	Pos Pos
	Sev Severity
	// Code is a short stable category slug ("undefined", "redeclared",
	// "type", "arity", "uninit", "bounds", "unused", "unreachable", ...)
	// usable for filtering without parsing Msg.
	Code string
	Msg  string
}

// String renders the diagnostic as "line:col: severity: message".
func (d Diagnostic) String() string {
	return d.Pos.String() + ": " + d.Sev.String() + ": " + d.Msg
}

// ErrorList is a non-empty list of checker diagnostics wrapped as a single
// error so Compile callers keep a plain error API while seeing every
// problem, not just the first.
type ErrorList []Diagnostic

// Error joins all diagnostics, one per line.
func (el ErrorList) Error() string {
	lines := make([]string, len(el))
	for i, d := range el {
		lines[i] = d.String()
	}
	return strings.Join(lines, "\n")
}
