package minic

import (
	"fmt"
	"strings"
)

// Error is a front-end diagnostic carrying a source position.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Lexer turns mini-C source text into tokens. It strips // and /* */
// comments and expands simple object-like #define macros (the only
// preprocessor feature the benchmark sources need).
type Lexer struct {
	src     string
	off     int
	line    int
	col     int
	defines map[string][]Token // macro name -> replacement tokens
	// expansion queue for macros currently being substituted
	pending []Token
}

// NewLexer creates a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1, defines: make(map[string][]Token)}
}

// Lex tokenizes the whole input, returning tokens terminated by a TokEOF
// entry, or the first lexical error encountered.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) peekByte() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peekByteAt(i int) byte {
	if lx.off+i >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+i]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

// skipSpace consumes whitespace and comments. It returns an error for an
// unterminated block comment.
func (lx *Lexer) skipSpace() error {
	for lx.off < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peekByteAt(1) == '/':
			for lx.off < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peekByteAt(1) == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peekByte() == '*' && lx.peekByteAt(1) == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return errf(start, "unterminated block comment")
			}
		case c == '#':
			if err := lx.directive(); err != nil {
				return err
			}
		default:
			return nil
		}
	}
	return nil
}

// directive handles a preprocessor line starting at '#'. Only object-like
// #define NAME TOKENS... is supported; #include and other directives are
// rejected so that unsupported sources fail loudly.
func (lx *Lexer) directive() error {
	start := lx.pos()
	lx.advance() // '#'
	for lx.peekByte() == ' ' || lx.peekByte() == '\t' {
		lx.advance()
	}
	word := lx.readWord()
	if word != "define" {
		return errf(start, "unsupported preprocessor directive #%s (only #define is supported)", word)
	}
	for lx.peekByte() == ' ' || lx.peekByte() == '\t' {
		lx.advance()
	}
	if !isIdentStart(lx.peekByte()) {
		return errf(lx.pos(), "#define expects a macro name")
	}
	name := lx.readWord()
	if lx.peekByte() == '(' {
		return errf(lx.pos(), "function-like macros are not supported (#define %s(...))", name)
	}
	// Capture the remainder of the line and lex it as replacement tokens.
	lineStart := lx.off
	for lx.off < len(lx.src) && lx.peekByte() != '\n' {
		lx.advance()
	}
	body := strings.TrimSpace(lx.src[lineStart:lx.off])
	var repl []Token
	if body != "" {
		sub, err := Lex(body)
		if err != nil {
			return errf(start, "in #define %s: %v", name, err)
		}
		repl = sub[:len(sub)-1] // drop EOF
	}
	lx.defines[name] = repl
	return nil
}

func (lx *Lexer) readWord() string {
	start := lx.off
	for lx.off < len(lx.src) && isIdentCont(lx.peekByte()) {
		lx.advance()
	}
	return lx.src[start:lx.off]
}

// Next returns the next token, expanding macros.
func (lx *Lexer) Next() (Token, error) {
	if len(lx.pending) > 0 {
		t := lx.pending[0]
		lx.pending = lx.pending[1:]
		return t, nil
	}
	if err := lx.skipSpace(); err != nil {
		return Token{}, err
	}
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := lx.peekByte()
	switch {
	case isIdentStart(c):
		word := lx.readWord()
		if kw, ok := keywords[word]; ok {
			return Token{Kind: kw, Text: word, Pos: pos}, nil
		}
		if repl, ok := lx.defines[word]; ok {
			// Substitute the macro body, re-positioned at the use site.
			if len(repl) == 0 {
				return lx.Next()
			}
			out := make([]Token, len(repl))
			for i, t := range repl {
				t.Pos = pos
				out[i] = t
			}
			lx.pending = append(out[1:], lx.pending...)
			return out[0], nil
		}
		return Token{Kind: TokIdent, Text: word, Pos: pos}, nil
	case isDigit(c) || (c == '.' && isDigit(lx.peekByteAt(1))):
		return lx.number(pos)
	case c == '\'':
		return lx.charLit(pos)
	case c == '"':
		return lx.stringLit(pos)
	}
	return lx.operator(pos)
}

func (lx *Lexer) number(pos Pos) (Token, error) {
	start := lx.off
	isFloat := false
	if lx.peekByte() == '0' && (lx.peekByteAt(1) == 'x' || lx.peekByteAt(1) == 'X') {
		lx.advance()
		lx.advance()
		for isDigit(lx.peekByte()) ||
			(lx.peekByte() >= 'a' && lx.peekByte() <= 'f') ||
			(lx.peekByte() >= 'A' && lx.peekByte() <= 'F') {
			lx.advance()
		}
		return Token{Kind: TokIntLit, Text: lx.src[start:lx.off], Pos: pos}, nil
	}
	for isDigit(lx.peekByte()) {
		lx.advance()
	}
	if lx.peekByte() == '.' {
		isFloat = true
		lx.advance()
		for isDigit(lx.peekByte()) {
			lx.advance()
		}
	}
	if lx.peekByte() == 'e' || lx.peekByte() == 'E' {
		isFloat = true
		lx.advance()
		if lx.peekByte() == '+' || lx.peekByte() == '-' {
			lx.advance()
		}
		if !isDigit(lx.peekByte()) {
			return Token{}, errf(lx.pos(), "malformed exponent in numeric literal")
		}
		for isDigit(lx.peekByte()) {
			lx.advance()
		}
	}
	// Accept and drop C suffixes (f, F, l, L, u, U).
	text := lx.src[start:lx.off]
	for {
		c := lx.peekByte()
		if c == 'f' || c == 'F' {
			isFloat = true
			lx.advance()
			continue
		}
		if c == 'l' || c == 'L' || c == 'u' || c == 'U' {
			lx.advance()
			continue
		}
		break
	}
	kind := TokIntLit
	if isFloat {
		kind = TokFloatLit
	}
	return Token{Kind: kind, Text: text, Pos: pos}, nil
}

func (lx *Lexer) charLit(pos Pos) (Token, error) {
	lx.advance() // opening quote
	if lx.off >= len(lx.src) {
		return Token{}, errf(pos, "unterminated character literal")
	}
	var val byte
	c := lx.advance()
	if c == '\\' {
		if lx.off >= len(lx.src) {
			return Token{}, errf(pos, "unterminated character literal")
		}
		esc := lx.advance()
		switch esc {
		case 'n':
			val = '\n'
		case 't':
			val = '\t'
		case 'r':
			val = '\r'
		case '0':
			val = 0
		case '\\', '\'', '"':
			val = esc
		default:
			return Token{}, errf(pos, "unsupported escape \\%c", esc)
		}
	} else {
		val = c
	}
	if lx.off >= len(lx.src) || lx.advance() != '\'' {
		return Token{}, errf(pos, "unterminated character literal")
	}
	return Token{Kind: TokCharLit, Text: fmt.Sprintf("%d", val), Pos: pos}, nil
}

func (lx *Lexer) stringLit(pos Pos) (Token, error) {
	lx.advance() // opening quote
	var sb strings.Builder
	for {
		if lx.off >= len(lx.src) {
			return Token{}, errf(pos, "unterminated string literal")
		}
		c := lx.advance()
		if c == '"' {
			break
		}
		if c == '\\' {
			if lx.off >= len(lx.src) {
				return Token{}, errf(pos, "unterminated string literal")
			}
			esc := lx.advance()
			switch esc {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '\\', '"', '\'':
				sb.WriteByte(esc)
			default:
				return Token{}, errf(pos, "unsupported escape \\%c in string", esc)
			}
			continue
		}
		sb.WriteByte(c)
	}
	return Token{Kind: TokStringLit, Text: sb.String(), Pos: pos}, nil
}

// operator lexes punctuation, longest match first.
func (lx *Lexer) operator(pos Pos) (Token, error) {
	three := map[string]TokenKind{"<<=": TokShlEq, ">>=": TokShrEq}
	two := map[string]TokenKind{
		"+=": TokPlusEq, "-=": TokMinusEq, "*=": TokStarEq, "/=": TokSlashEq,
		"%=": TokPercentEq, "&=": TokAndEq, "|=": TokOrEq, "^=": TokXorEq,
		"++": TokInc, "--": TokDec, "==": TokEq, "!=": TokNeq, "<=": TokLe,
		">=": TokGe, "&&": TokAndAnd, "||": TokOrOr, "<<": TokShl, ">>": TokShr,
	}
	one := map[byte]TokenKind{
		'(': TokLParen, ')': TokRParen, '{': TokLBrace, '}': TokRBrace,
		'[': TokLBracket, ']': TokRBracket, ';': TokSemi, ',': TokComma,
		'?': TokQuestion, ':': TokColon, '=': TokAssign, '+': TokPlus,
		'-': TokMinus, '*': TokStar, '/': TokSlash, '%': TokPercent,
		'<': TokLt, '>': TokGt, '!': TokNot, '&': TokAmp, '|': TokPipe,
		'^': TokCaret, '~': TokTilde,
	}
	if lx.off+3 <= len(lx.src) {
		if k, ok := three[lx.src[lx.off:lx.off+3]]; ok {
			text := lx.src[lx.off : lx.off+3]
			lx.advance()
			lx.advance()
			lx.advance()
			return Token{Kind: k, Text: text, Pos: pos}, nil
		}
	}
	if lx.off+2 <= len(lx.src) {
		if k, ok := two[lx.src[lx.off:lx.off+2]]; ok {
			text := lx.src[lx.off : lx.off+2]
			lx.advance()
			lx.advance()
			return Token{Kind: k, Text: text, Pos: pos}, nil
		}
	}
	if k, ok := one[lx.peekByte()]; ok {
		c := lx.advance()
		return Token{Kind: k, Text: string(c), Pos: pos}, nil
	}
	return Token{}, errf(pos, "unexpected character %q", string(lx.peekByte()))
}
