package experiments

import (
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/platform"
)

// TestTimingPerBenchmark runs the heterogeneous tool over every benchmark
// (config A, accelerator) and logs speedup and tool time - the repo's
// broadest integration test. Skipped under -short.
func TestTimingPerBenchmark(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite integration run")
	}
	pf := platform.ConfigA()
	for _, name := range []string{"compress", "adpcm_enc", "edge_detect", "spectral", "latnrm_32", "iir_4", "filterbank", "bound_value", "mult_10", "fir_256"} {
		p, err := Prepare(bench.ByName(name))
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		het, err := Evaluate(p, pf, platform.ScenarioAccelerator, core.Heterogeneous, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%-12s hetero %6.2fx in %8v (ILPs %d, nodes %d)", name, het.Speedup,
			time.Since(start).Round(time.Millisecond), het.Stats.NumILPs, het.Stats.BBNodes)
	}
}
