package experiments

import (
	"bufio"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// goldenConfig bounds every ILP solve by deterministic node and
// iteration budgets instead of wall time: truncation points are then
// machine-independent, so the figure speedups are reproducible numbers
// worth pinning. (The production default config trades this for a 400ms
// per-solve timeout and is deliberately NOT pinned.)
func goldenConfig() core.Config {
	return core.Config{
		MaxILPNodes: 60,
		ILPTimeout:  10 * time.Minute,
	}
}

const goldenPath = "testdata/golden_figures.txt"

// TestFigureSpeedupsGolden locks the speedup of every UTDSP benchmark on
// all four figures (config A/B × accelerator/slower-cores) against the
// checked-in golden values. Any solver or pipeline change that alters a
// parallelization plan shows up here as a diff, reviewed by regenerating
// with REPRO_UPDATE_GOLDEN=1.
func TestFigureSpeedupsGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full four-figure sweep")
	}
	type row struct{ homo, hetero float64 }
	got := map[string]row{}
	var order []string
	for _, id := range []string{"7a", "7b", "8a", "8b"} {
		fig, err := RunFigure(id, nil, goldenConfig())
		if err != nil {
			t.Fatalf("figure %s: %v", id, err)
		}
		for _, r := range fig.Rows {
			key := id + " " + r.Benchmark
			got[key] = row{homo: r.Homo, hetero: r.Hetero}
			order = append(order, key)
		}
	}

	if os.Getenv("REPRO_UPDATE_GOLDEN") != "" {
		var sb strings.Builder
		for _, key := range order {
			r := got[key]
			fmt.Fprintf(&sb, "%s %.9f %.9f\n", key, r.homo, r.hetero)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %d rows", len(order))
		return
	}

	f, err := os.Open(goldenPath)
	if err != nil {
		t.Fatalf("no golden file (regenerate with REPRO_UPDATE_GOLDEN=1): %v", err)
	}
	defer f.Close()
	want := map[string]row{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) != 4 {
			continue
		}
		homo, err1 := strconv.ParseFloat(fields[2], 64)
		hetero, err2 := strconv.ParseFloat(fields[3], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("bad golden line %q", sc.Text())
		}
		want[fields[0]+" "+fields[1]] = row{homo: homo, hetero: hetero}
	}
	if len(want) != len(got) {
		t.Errorf("golden has %d rows, sweep produced %d", len(want), len(got))
	}
	const tol = 1e-6
	for _, key := range order {
		w, ok := want[key]
		if !ok {
			t.Errorf("%s: missing from golden", key)
			continue
		}
		g := got[key]
		if rel(g.homo, w.homo) > tol || rel(g.hetero, w.hetero) > tol {
			t.Errorf("%s: homo %.9f hetero %.9f, golden %.9f / %.9f",
				key, g.homo, g.hetero, w.homo, w.hetero)
		}
	}
}

func rel(a, b float64) float64 {
	return math.Abs(a-b) / (1 + math.Max(math.Abs(a), math.Abs(b)))
}
