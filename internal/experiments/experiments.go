// Package experiments regenerates the paper's evaluation artifacts: the
// speedup bar charts of Figures 7(a/b) and 8(a/b) and the ILP statistics
// of Table I, using the full tool flow (frontend -> profiler -> HTG ->
// ILP parallelization -> MPSoC simulation) on the shipped benchmark suite.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/htg"
	"repro/internal/interp"
	"repro/internal/minic"
	"repro/internal/mpsoc"
	"repro/internal/platform"
)

// Prepared bundles the analysis artifacts of one benchmark, reusable
// across figures.
type Prepared struct {
	Bench *bench.Benchmark
	Prog  *minic.Program
	Graph *htg.Graph
}

// Prepare compiles, profiles and builds the HTG of b.
func Prepare(b *bench.Benchmark) (*Prepared, error) {
	prog, err := minic.Compile(b.Source)
	if err != nil {
		return nil, fmt.Errorf("%s: compile: %w", b.Name, err)
	}
	in := interp.New(prog)
	prof, err := in.Run()
	if err != nil {
		return nil, fmt.Errorf("%s: profile: %w", b.Name, err)
	}
	g, err := htg.Build(prog, prof, htg.Config{})
	if err != nil {
		return nil, fmt.Errorf("%s: htg: %w", b.Name, err)
	}
	return &Prepared{Bench: b, Prog: prog, Graph: g}, nil
}

// Measured is one (benchmark, approach) measurement.
type Measured struct {
	// Speedup is the simulator-measured speedup over sequential execution
	// on the main core.
	Speedup float64
	// EstimatedSpeedup is the parallelizer's own cost-model prediction.
	EstimatedSpeedup float64
	// Stats are the ILP statistics (Table I).
	Stats core.Stats
	// WallTime is the parallelization wall-clock time.
	WallTime time.Duration
}

// Evaluate runs one approach on a prepared benchmark and measures it on
// the simulator.
func Evaluate(p *Prepared, pf *platform.Platform, sc platform.Scenario, ap core.Approach, cfg core.Config) (*Measured, error) {
	mainClass := sc.MainClass(pf)
	start := time.Now() //repolint:allow timenow (phase-duration telemetry only)
	res, err := core.Parallelize(p.Graph, pf, mainClass, ap, cfg)
	if err != nil {
		return nil, fmt.Errorf("%s: parallelize: %w", p.Bench.Name, err)
	}
	wall := time.Since(start)
	sim := mpsoc.New(pf, ap == core.Homogeneous)
	meas, err := sim.Run(res.Best, mainClass)
	if err != nil {
		return nil, fmt.Errorf("%s: simulate: %w", p.Bench.Name, err)
	}
	seq := sim.SequentialBaseline(p.Graph, mainClass)
	return &Measured{
		Speedup:          mpsoc.Speedup(seq, meas.MakespanNs),
		EstimatedSpeedup: res.EstimatedSpeedup(p.Graph),
		Stats:            res.Stats,
		WallTime:         wall,
	}, nil
}

// SpeedupRow is one bar pair of a speedup figure.
type SpeedupRow struct {
	Benchmark string
	Homo      float64
	Hetero    float64
}

// Figure is a regenerated speedup chart.
type Figure struct {
	ID       string
	Title    string
	Platform *platform.Platform
	Scenario platform.Scenario
	Limit    float64 // theoretical maximum (the dashed line)
	Rows     []SpeedupRow
}

// Averages returns the mean homo and hetero speedups.
func (f *Figure) Averages() (homo, hetero float64) {
	if len(f.Rows) == 0 {
		return 0, 0
	}
	for _, r := range f.Rows {
		homo += r.Homo
		hetero += r.Hetero
	}
	n := float64(len(f.Rows))
	return homo / n, hetero / n
}

// FigureSpec describes one shipped evaluation figure: which platform
// and scenario it is measured on. It is the single source of the
// paper's platform/scenario pairings, shared by this package's figure
// regeneration, cmd/paperrepro and the design-space exploration engine
// (internal/dse), so Config A/B wiring exists exactly once.
type FigureSpec struct {
	// ID is the paper's figure identifier ("7a", "7b", "8a", "8b").
	ID string
	// Title is the human-readable description.
	Title string
	// Platform constructs a fresh platform instance for the figure.
	Platform func() *platform.Platform
	// Scenario selects the main-core class.
	Scenario platform.Scenario
}

var figures = []FigureSpec{
	{"7a", "Config (A) 100/250/500/500 MHz, accelerator scenario", platform.ConfigA, platform.ScenarioAccelerator},
	{"7b", "Config (A) 100/250/500/500 MHz, slower-cores scenario", platform.ConfigA, platform.ScenarioSlowerCores},
	{"8a", "Config (B) 200/200/500/500 MHz, accelerator scenario", platform.ConfigB, platform.ScenarioAccelerator},
	{"8b", "Config (B) 200/200/500/500 MHz, slower-cores scenario", platform.ConfigB, platform.ScenarioSlowerCores},
}

// Figures returns the shipped figure specifications in paper order.
func Figures() []FigureSpec {
	return append([]FigureSpec(nil), figures...)
}

// FigureByID looks up one figure specification.
func FigureByID(id string) (FigureSpec, bool) {
	for _, spec := range figures {
		if spec.ID == id {
			return spec, true
		}
	}
	return FigureSpec{}, false
}

// FigureIDs lists the valid figure identifiers in paper order.
func FigureIDs() []string {
	ids := make([]string, len(figures))
	for i, spec := range figures {
		ids[i] = spec.ID
	}
	return ids
}

// RunFigure regenerates one figure over the given benchmarks (all when
// names is empty).
func RunFigure(id string, names []string, cfg core.Config) (*Figure, error) {
	spec, ok := FigureByID(id)
	if !ok {
		return nil, fmt.Errorf("unknown figure %q (want one of %v)", id, FigureIDs())
	}
	pf := spec.Platform()
	fig := &Figure{
		ID:       id,
		Title:    spec.Title,
		Platform: pf,
		Scenario: spec.Scenario,
		Limit:    pf.TheoreticalSpeedup(spec.Scenario.MainClass(pf)),
	}
	for _, b := range selectBenchmarks(names) {
		p, err := Prepare(b)
		if err != nil {
			return nil, err
		}
		hom, err := Evaluate(p, pf, spec.Scenario, core.Homogeneous, cfg)
		if err != nil {
			return nil, err
		}
		het, err := Evaluate(p, pf, spec.Scenario, core.Heterogeneous, cfg)
		if err != nil {
			return nil, err
		}
		fig.Rows = append(fig.Rows, SpeedupRow{
			Benchmark: b.Name,
			Homo:      hom.Speedup,
			Hetero:    het.Speedup,
		})
	}
	return fig, nil
}

func selectBenchmarks(names []string) []*bench.Benchmark {
	if len(names) == 0 {
		return bench.All()
	}
	var out []*bench.Benchmark
	for _, n := range names {
		if b := bench.ByName(n); b != nil {
			out = append(out, b)
		}
	}
	return out
}

// Render prints the figure as an ASCII bar chart with the dashed
// theoretical-limit line, mirroring the paper's layout.
func (f *Figure) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure %s: %s\n", f.ID, f.Title)
	fmt.Fprintf(&sb, "theoretical maximum speedup: %.2fx (dashed)\n\n", f.Limit)
	const width = 48
	scale := width / f.Limit
	bar := func(v float64) string {
		n := int(v*scale + 0.5)
		if n > width+8 {
			n = width + 8
		}
		if n < 0 {
			n = 0
		}
		return strings.Repeat("#", n)
	}
	limitCol := int(f.Limit*scale + 0.5)
	for _, r := range f.Rows {
		homoBar := bar(r.Homo)
		hetBar := bar(r.Hetero)
		homoBar = padWithLimit(homoBar, limitCol)
		hetBar = padWithLimit(hetBar, limitCol)
		fmt.Fprintf(&sb, "%-12s homog. %6.2fx |%s\n", r.Benchmark, r.Homo, homoBar)
		fmt.Fprintf(&sb, "%-12s heter. %6.2fx |%s\n", "", r.Hetero, hetBar)
	}
	h, t := f.Averages()
	fmt.Fprintf(&sb, "\naverage: homogeneous %.2fx, heterogeneous %.2fx\n", h, t)
	return sb.String()
}

// padWithLimit inserts the dashed limit marker at the limit column.
func padWithLimit(bar string, col int) string {
	if len(bar) >= col {
		return bar
	}
	return bar + strings.Repeat(" ", col-len(bar)) + "¦"
}

// TableRow is one line of Table I.
type TableRow struct {
	Benchmark  string
	HomoTime   time.Duration
	HomoILPs   int
	HomoVars   int
	HomoCons   int
	HeteroTime time.Duration
	HeteroILPs int
	HeteroVars int
	HeteroCons int
	// HomoStats and HeteroStats carry the complete solver telemetry
	// behind the summary columns above (branch-and-bound effort,
	// incumbents, truncations, per-region records).
	HomoStats   core.Stats
	HeteroStats core.Stats
}

// Factors returns the hetero/homo ratios (time, ILPs, vars, constraints).
func (r *TableRow) Factors() (ft, fi, fv, fc float64) {
	div := func(a, b float64) float64 {
		if b == 0 {
			return 0
		}
		return a / b
	}
	return div(float64(r.HeteroTime), float64(r.HomoTime)),
		div(float64(r.HeteroILPs), float64(r.HomoILPs)),
		div(float64(r.HeteroVars), float64(r.HomoVars)),
		div(float64(r.HeteroCons), float64(r.HomoCons))
}

// Table is the regenerated Table I.
type Table struct {
	Platform *platform.Platform
	Rows     []TableRow
}

// RunTableI regenerates the ILP statistics comparison on configuration A
// (accelerator scenario main class, as for Figure 7).
func RunTableI(names []string, cfg core.Config) (*Table, error) {
	pf := platform.ConfigA()
	sc := platform.ScenarioAccelerator
	tbl := &Table{Platform: pf}
	for _, b := range selectBenchmarks(names) {
		p, err := Prepare(b)
		if err != nil {
			return nil, err
		}
		hom, err := Evaluate(p, pf, sc, core.Homogeneous, cfg)
		if err != nil {
			return nil, err
		}
		het, err := Evaluate(p, pf, sc, core.Heterogeneous, cfg)
		if err != nil {
			return nil, err
		}
		tbl.Rows = append(tbl.Rows, TableRow{
			Benchmark:   b.Name,
			HomoTime:    hom.WallTime,
			HomoILPs:    hom.Stats.NumILPs,
			HomoVars:    hom.Stats.NumVars,
			HomoCons:    hom.Stats.NumConstraints,
			HeteroTime:  het.WallTime,
			HeteroILPs:  het.Stats.NumILPs,
			HeteroVars:  het.Stats.NumVars,
			HeteroCons:  het.Stats.NumConstraints,
			HomoStats:   hom.Stats,
			HeteroStats: het.Stats,
		})
	}
	return tbl, nil
}

// Averages returns column means over the table rows.
func (t *Table) Averages() TableRow {
	avg := TableRow{Benchmark: "average"}
	n := len(t.Rows)
	if n == 0 {
		return avg
	}
	for _, r := range t.Rows {
		avg.HomoTime += r.HomoTime
		avg.HomoILPs += r.HomoILPs
		avg.HomoVars += r.HomoVars
		avg.HomoCons += r.HomoCons
		avg.HeteroTime += r.HeteroTime
		avg.HeteroILPs += r.HeteroILPs
		avg.HeteroVars += r.HeteroVars
		avg.HeteroCons += r.HeteroCons
	}
	avg.HomoTime /= time.Duration(n)
	avg.HomoILPs /= n
	avg.HomoVars /= n
	avg.HomoCons /= n
	avg.HeteroTime /= time.Duration(n)
	avg.HeteroILPs /= n
	avg.HeteroVars /= n
	avg.HeteroCons /= n
	return avg
}

// RenderSolverStats prints a markdown table with the per-benchmark
// solver telemetry (branch-and-bound nodes, simplex iterations,
// incumbents, truncations, optimality) behind the Table I summary, one
// row per (benchmark, approach).
func (t *Table) RenderSolverStats() string {
	var sb strings.Builder
	sb.WriteString("| benchmark | approach | ILPs | B&B nodes | LP iters | incumbents | timeouts | node caps | optimal | max gap | solve time |\n")
	sb.WriteString("|---|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n")
	emit := func(bench, approach string, st core.Stats) {
		fmt.Fprintf(&sb, "| %s | %s | %d | %d | %d | %d | %d | %d | %d/%d | %.2f%% | %s |\n",
			bench, approach, st.NumILPs, st.BBNodes, st.LPIters, st.Incumbents,
			st.Timeouts, st.NodeCapHits, st.ProvedOptimal, st.NumILPs,
			100*st.MaxGap, st.SolveTime.Round(time.Microsecond))
	}
	for _, r := range t.Rows {
		emit(r.Benchmark, "homogeneous", r.HomoStats)
		emit(r.Benchmark, "heterogeneous", r.HeteroStats)
	}
	return sb.String()
}

// Render prints Table I in the paper's three-block layout.
func (t *Table) Render() string {
	var sb strings.Builder
	sb.WriteString("Table I: statistics of the ILP-based parallelization algorithms\n\n")
	fmt.Fprintf(&sb, "%-12s | %10s %6s %8s %8s | %10s %6s %8s %8s | %6s %6s %6s %6s\n",
		"Benchmark", "HomoTime", "#ILPs", "#Var", "#Constr",
		"HetTime", "#ILPs", "#Var", "#Constr",
		"fTime", "fILPs", "fVar", "fCon")
	sb.WriteString(strings.Repeat("-", 128) + "\n")
	emit := func(r TableRow) {
		ft, fi, fv, fc := r.Factors()
		fmt.Fprintf(&sb, "%-12s | %10s %6d %8d %8d | %10s %6d %8d %8d | %5.1fx %5.1fx %5.1fx %5.1fx\n",
			r.Benchmark,
			r.HomoTime.Round(time.Millisecond), r.HomoILPs, r.HomoVars, r.HomoCons,
			r.HeteroTime.Round(time.Millisecond), r.HeteroILPs, r.HeteroVars, r.HeteroCons,
			ft, fi, fv, fc)
	}
	for _, r := range t.Rows {
		emit(r)
	}
	sb.WriteString(strings.Repeat("-", 128) + "\n")
	emit(t.Averages())
	return sb.String()
}
