package experiments

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/platform"
)

// The tests here exercise the harness on small benchmark subsets; the full
// ten-benchmark sweeps live in cmd/paperrepro and the root benchmarks.

func TestPrepareAllBenchmarks(t *testing.T) {
	for _, b := range bench.All() {
		p, err := Prepare(b)
		if err != nil {
			t.Errorf("%s: %v", b.Name, err)
			continue
		}
		if p.Graph.Root.SubtreeCycles <= 0 {
			t.Errorf("%s: empty cost annotation", b.Name)
		}
	}
}

func TestFigureUnknownID(t *testing.T) {
	if _, err := RunFigure("9z", nil, core.Config{}); err == nil {
		t.Fatalf("unknown figure must error")
	}
}

func TestFigureIDsShipped(t *testing.T) {
	want := []string{"7a", "7b", "8a", "8b"}
	got := FigureIDs()
	if len(got) != len(want) {
		t.Fatalf("FigureIDs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("FigureIDs[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

// TestFig7aShapeSubset verifies the headline result on a fast subset:
// hetero beats homo clearly in the accelerator scenario, and neither
// exceeds the theoretical limit.
func TestFig7aShapeSubset(t *testing.T) {
	fig, err := RunFigure("7a", []string{"mult_10", "fir_256"}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if fig.Limit != 13.5 {
		t.Errorf("limit = %g, want 13.5", fig.Limit)
	}
	for _, r := range fig.Rows {
		if r.Hetero <= r.Homo {
			t.Errorf("%s: hetero %.2f should beat homo %.2f", r.Benchmark, r.Hetero, r.Homo)
		}
		if r.Hetero > fig.Limit || r.Homo > fig.Limit {
			t.Errorf("%s: speedup above theoretical limit", r.Benchmark)
		}
		if r.Hetero < 2*r.Homo {
			t.Errorf("%s: hetero %.2f not clearly ahead of homo %.2f on the skewed platform",
				r.Benchmark, r.Hetero, r.Homo)
		}
	}
	out := fig.Render()
	for _, want := range []string{"Figure 7a", "mult_10", "average:"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

// TestFig7bShapeSubset verifies the slower-cores scenario shape: the
// homogeneous baseline falls to (or below) 1x while the heterogeneous
// approach stays above 1x (results 3 and 4 of the paper's summary).
func TestFig7bShapeSubset(t *testing.T) {
	fig, err := RunFigure("7b", []string{"mult_10", "fir_256"}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if fig.Limit != 2.7 {
		t.Errorf("limit = %g, want 2.7", fig.Limit)
	}
	for _, r := range fig.Rows {
		if r.Homo > 1.15 {
			t.Errorf("%s: homogeneous speedup %.2f should collapse toward <=1x with a fast main core", r.Benchmark, r.Homo)
		}
		if r.Hetero < 1.0 {
			t.Errorf("%s: heterogeneous speedup %.2f fell below 1x", r.Benchmark, r.Hetero)
		}
		if r.Hetero > fig.Limit {
			t.Errorf("%s: hetero %.2f above the 2.7x limit", r.Benchmark, r.Hetero)
		}
	}
}

// TestFig8bShapeSubset: configuration B, slower-cores scenario.
func TestFig8bShapeSubset(t *testing.T) {
	fig, err := RunFigure("8b", []string{"fir_256"}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if fig.Limit != 2.8 {
		t.Errorf("limit = %g, want 2.8", fig.Limit)
	}
	r := fig.Rows[0]
	if r.Hetero < 1.0 || r.Hetero > 2.8 {
		t.Errorf("hetero %.2f outside (1, 2.8]", r.Hetero)
	}
	if r.Hetero <= r.Homo {
		t.Errorf("hetero %.2f should beat homo %.2f", r.Hetero, r.Homo)
	}
}

// TestTableIShapeSubset verifies the statistics growth factors: the
// heterogeneous formulation must create more ILPs, variables and
// constraints than the homogeneous one (Table I's third block).
func TestTableIShapeSubset(t *testing.T) {
	tbl, err := RunTableI([]string{"mult_10", "fir_256"}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tbl.Rows {
		_, fi, fv, fc := r.Factors()
		if fi <= 1 {
			t.Errorf("%s: ILP factor %.1f should exceed 1", r.Benchmark, fi)
		}
		if fv <= 1.5 {
			t.Errorf("%s: variable factor %.1f should exceed 1.5", r.Benchmark, fv)
		}
		if fc <= 1.5 {
			t.Errorf("%s: constraint factor %.1f should exceed 1.5", r.Benchmark, fc)
		}
	}
	out := tbl.Render()
	for _, want := range []string{"Table I", "average", "#ILPs"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestEvaluateHonorsScenario(t *testing.T) {
	p, err := Prepare(bench.ByName("fir_256"))
	if err != nil {
		t.Fatal(err)
	}
	pf := platform.ConfigA()
	acc, err := Evaluate(p, pf, platform.ScenarioAccelerator, core.Heterogeneous, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Evaluate(p, pf, platform.ScenarioSlowerCores, core.Heterogeneous, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Accelerator speedups are measured against a much slower baseline, so
	// they must be larger.
	if acc.Speedup <= slow.Speedup {
		t.Errorf("accelerator %.2f should exceed slower-cores %.2f", acc.Speedup, slow.Speedup)
	}
}
