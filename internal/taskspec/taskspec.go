// Package taskspec turns a chosen parallel solution into the tool-flow
// outputs of Figure 6: a parallel specification mapping labeled statements
// to tasks, a pre-mapping specification assigning tasks to processor
// classes (so the downstream mapper keeps tasks on the units they were
// optimized for), and an annotated copy of the source in an OpenMP-like
// dialect.
package taskspec

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/htg"
	"repro/internal/minic"
	"repro/internal/platform"
)

// TaskID identifies one task in the flattened specification.
type TaskID int

// TaskSpec is one task of the parallel specification.
type TaskSpec struct {
	ID TaskID
	// Class is the pre-mapped processor class (index into the platform).
	Class int
	// Labels lists the statement labels mapped to this task.
	Labels []string
	// Chunks lists the DOALL iteration shares this task executes, one entry
	// per loop it holds chunks of.
	Chunks []ChunkShare
	// Parent is the spawning task (-1 for the root main task).
	Parent TaskID
}

// ChunkShare is a task's slice of one DOALL loop's iteration space.
type ChunkShare struct {
	Loop string
	Frac float64
}

// addChunk accumulates a share of the named loop.
func (t *TaskSpec) addChunk(loop string, frac float64) {
	for i := range t.Chunks {
		if t.Chunks[i].Loop == loop {
			t.Chunks[i].Frac += frac
			return
		}
	}
	t.Chunks = append(t.Chunks, ChunkShare{Loop: loop, Frac: frac})
}

// Spec is the complete parallel + pre-mapping specification.
type Spec struct {
	Platform *platform.Platform
	Tasks    []*TaskSpec
	// StmtTask maps statements to the task executing them (for source-level
	// annotation).
	StmtTask map[minic.Stmt]TaskID
}

// Build flattens the hierarchical solution into a task list.
func Build(sol *core.Solution, pf *platform.Platform) *Spec {
	sp := &Spec{Platform: pf, StmtTask: map[minic.Stmt]TaskID{}}
	root := &TaskSpec{ID: 0, Class: sol.MainClass, Parent: -1}
	sp.Tasks = append(sp.Tasks, root)
	sp.flatten(sol, root)
	return sp
}

func (sp *Spec) newTask(class int, parent TaskID) *TaskSpec {
	t := &TaskSpec{ID: TaskID(len(sp.Tasks)), Class: class, Parent: parent}
	sp.Tasks = append(sp.Tasks, t)
	return t
}

// flatten walks the solution tree; work of task 0 of each level stays in
// `owner`, other tasks become new TaskSpecs.
func (sp *Spec) flatten(sol *core.Solution, owner *TaskSpec) {
	if sol.Kind == core.KindSequential || len(sol.Tasks) == 0 {
		sp.claimSubtree(sol.Node, owner)
		return
	}
	for ti, tp := range sol.Tasks {
		target := owner
		if ti > 0 {
			target = sp.newTask(tp.Class, owner.ID)
		}
		for _, it := range tp.Items {
			switch {
			case it.ChunkFrac > 0:
				target.addChunk(it.Child.Label, it.ChunkFrac)
			case it.Sub != nil && it.Sub.Kind != core.KindSequential:
				sp.flatten(it.Sub, target)
			default:
				sp.claimSubtree(it.Child, target)
			}
		}
	}
}

// claimSubtree assigns the node's statement (and HTG descendants) to t.
func (sp *Spec) claimSubtree(n *htg.Node, t *TaskSpec) {
	if n == nil {
		return
	}
	if n.Stmt != nil {
		if _, taken := sp.StmtTask[n.Stmt]; !taken {
			sp.StmtTask[n.Stmt] = t.ID
			t.Labels = append(t.Labels, n.Label)
		}
	}
	for _, c := range n.Children {
		sp.claimSubtree(c, t)
	}
}

// Render prints the parallel specification in the textual exchange format.
func (sp *Spec) Render() string {
	var sb strings.Builder
	sb.WriteString("# parallel specification (statements -> tasks)\n")
	sb.WriteString("# pre-mapping    (tasks -> processor classes)\n")
	for _, t := range sp.Tasks {
		cls := sp.Platform.Classes[t.Class].Name
		fmt.Fprintf(&sb, "task %d parent %d class %q\n", t.ID, t.Parent, cls)
		for _, ch := range t.Chunks {
			fmt.Fprintf(&sb, "  iterations %.1f%% of %q\n", ch.Frac*100, ch.Loop)
		}
		labels := append([]string(nil), t.Labels...)
		sort.Strings(labels)
		for _, l := range labels {
			fmt.Fprintf(&sb, "  stmt %q\n", l)
		}
	}
	return sb.String()
}

// AnnotateSource re-prints the program with task annotations ahead of each
// mapped statement, in an OpenMP-like comment dialect (the "extension of
// OpenMP which enables heterogeneous mapping" of Section V).
func (sp *Spec) AnnotateSource(prog *minic.Program) string {
	pr := &minic.Printer{}
	pr.StmtComment = func(s minic.Stmt) string {
		id, ok := sp.StmtTask[s]
		if !ok {
			return ""
		}
		t := sp.Tasks[id]
		cls := sp.Platform.Classes[t.Class].Name
		for _, ch := range t.Chunks {
			if ch.Loop == "" {
				continue
			}
			return fmt.Sprintf("#pragma omp task affinity(%s) // task %d, %.0f%% of %s", cls, id, ch.Frac*100, ch.Loop)
		}
		if id == 0 {
			return ""
		}
		return fmt.Sprintf("#pragma omp task affinity(%s) // task %d", cls, id)
	}
	return pr.Program(prog)
}

// NumTasks returns the flattened task count.
func (sp *Spec) NumTasks() int { return len(sp.Tasks) }
