package taskspec

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/htg"
	"repro/internal/interp"
	"repro/internal/minic"
	"repro/internal/platform"
)

const src = `
#define N 256
float a[N]; float b[N]; float s;
void main(void) {
    for (int i = 0; i < N; i++) {
        a[i] = sqrt(i * 1.0 + 1.0);
    }
    for (int j = 0; j < N; j++) {
        b[j] = a[j] * 2.0;
    }
    s = 0.0;
    for (int k = 0; k < N; k++) {
        s += b[k];
    }
}
`

func build(t *testing.T) (*minic.Program, *core.Result, *platform.Platform) {
	t.Helper()
	prog, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	in := interp.New(prog)
	prof, err := in.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	g, err := htg.Build(prog, prof, htg.Config{})
	if err != nil {
		t.Fatalf("htg: %v", err)
	}
	pf := platform.ConfigA()
	res, err := core.Parallelize(g, pf, pf.SlowestClass(), core.Heterogeneous, core.Config{})
	if err != nil {
		t.Fatalf("parallelize: %v", err)
	}
	return prog, res, pf
}

func TestBuildSpec(t *testing.T) {
	prog, res, pf := build(t)
	sp := Build(res.Best, pf)
	if sp.NumTasks() < 1 {
		t.Fatalf("no tasks")
	}
	// Task 0 must exist, be parentless and on the main class.
	if sp.Tasks[0].Parent != -1 {
		t.Errorf("root task parent = %d", sp.Tasks[0].Parent)
	}
	if sp.Tasks[0].Class != res.Best.MainClass {
		t.Errorf("root task class = %d, want %d", sp.Tasks[0].Class, res.Best.MainClass)
	}
	for i, task := range sp.Tasks[1:] {
		if task.Parent < 0 || int(task.Parent) >= sp.NumTasks() {
			t.Errorf("task %d has invalid parent %d", i+1, task.Parent)
		}
		if task.Class < 0 || task.Class >= len(pf.Classes) {
			t.Errorf("task %d has invalid class %d", i+1, task.Class)
		}
	}
	_ = prog
}

func TestChunkTasksCoverIterations(t *testing.T) {
	_, res, pf := build(t)
	sp := Build(res.Best, pf)
	// Sum of chunk fractions per chunked loop must not exceed 100%.
	perLoop := map[string]float64{}
	for _, task := range sp.Tasks {
		for _, ch := range task.Chunks {
			perLoop[ch.Loop] += ch.Frac
		}
	}
	for loop, frac := range perLoop {
		if frac > 1.0+1e-9 {
			t.Errorf("loop %q has %.1f%% of iterations assigned to extra tasks", loop, frac*100)
		}
	}
}

func TestRenderFormat(t *testing.T) {
	_, res, pf := build(t)
	sp := Build(res.Best, pf)
	out := sp.Render()
	if !strings.Contains(out, "task 0 parent -1") {
		t.Errorf("render missing root task:\n%s", out)
	}
	if !strings.Contains(out, "class") {
		t.Errorf("render missing class mapping")
	}
}

func TestAnnotateSourceRoundTrips(t *testing.T) {
	prog, res, pf := build(t)
	sp := Build(res.Best, pf)
	annotated := sp.AnnotateSource(prog)
	if !strings.Contains(annotated, "void main(void)") {
		t.Fatalf("annotated source lost main:\n%s", annotated)
	}
	// Annotations are comments: stripping them must leave a compilable
	// program (the parser ignores comments anyway, so just recompile).
	if _, err := minic.Compile(annotated); err != nil {
		t.Errorf("annotated source no longer compiles: %v", err)
	}
}

func TestSequentialSolutionSpec(t *testing.T) {
	prog, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	in := interp.New(prog)
	prof, err := in.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	g, err := htg.Build(prog, prof, htg.Config{})
	if err != nil {
		t.Fatalf("htg: %v", err)
	}
	pf := platform.ConfigA()
	// Force a fully sequential plan via the chunking+hierarchy ablations on
	// a single-statement region.
	res, err := core.Parallelize(g, pf, 0, core.Heterogeneous,
		core.Config{DisableChunking: true, DisableHierarchy: true})
	if err != nil {
		t.Fatalf("parallelize: %v", err)
	}
	sp := Build(res.Best, pf)
	if sp.NumTasks() < 1 {
		t.Fatalf("sequential plan still needs the main task")
	}
}
