package platform

import (
	"math"
	"strings"
	"testing"
)

func TestConfigAValidatesAndLimits(t *testing.T) {
	p := ConfigA()
	if err := p.Validate(); err != nil {
		t.Fatalf("ConfigA invalid: %v", err)
	}
	if p.NumCores() != 4 {
		t.Errorf("NumCores = %d, want 4", p.NumCores())
	}
	// Paper footnote 2: (1*100 + 1*250 + 2*500)/100 = 13.5
	slow := ScenarioAccelerator.MainClass(p)
	if got := p.TheoreticalSpeedup(slow); math.Abs(got-13.5) > 1e-9 {
		t.Errorf("accelerator limit = %g, want 13.5", got)
	}
	// Paper footnote 3: /500 = 2.7
	fast := ScenarioSlowerCores.MainClass(p)
	if got := p.TheoreticalSpeedup(fast); math.Abs(got-2.7) > 1e-9 {
		t.Errorf("slower-cores limit = %g, want 2.7", got)
	}
}

func TestConfigBLimits(t *testing.T) {
	p := ConfigB()
	if err := p.Validate(); err != nil {
		t.Fatalf("ConfigB invalid: %v", err)
	}
	// Paper footnote 4: (2*200 + 2*500)/200 = 7
	if got := p.TheoreticalSpeedup(ScenarioAccelerator.MainClass(p)); math.Abs(got-7) > 1e-9 {
		t.Errorf("accelerator limit = %g, want 7", got)
	}
	// Paper footnote 5: /500 = 2.8
	if got := p.TheoreticalSpeedup(ScenarioSlowerCores.MainClass(p)); math.Abs(got-2.8) > 1e-9 {
		t.Errorf("slower-cores limit = %g, want 2.8", got)
	}
}

func TestClassSelection(t *testing.T) {
	p := ConfigA()
	if got := p.Classes[p.SlowestClass()].MHz; got != 100 {
		t.Errorf("slowest class MHz = %g, want 100", got)
	}
	if got := p.Classes[p.FastestClass()].MHz; got != 500 {
		t.Errorf("fastest class MHz = %g, want 500", got)
	}
	if p.ClassByName("ARM@250MHz") != 1 {
		t.Errorf("ClassByName failed")
	}
	if p.ClassByName("nope") != -1 {
		t.Errorf("ClassByName should return -1 for unknown")
	}
}

func TestCyclesToNanos(t *testing.T) {
	c := ProcClass{Name: "x", MHz: 500, Count: 1, CPIFactor: 1}
	// 500 cycles at 500 MHz = 1000 ns.
	if got := c.CyclesToNanos(500); math.Abs(got-1000) > 1e-9 {
		t.Errorf("CyclesToNanos = %g, want 1000", got)
	}
	c2 := ProcClass{Name: "y", MHz: 500, Count: 1, CPIFactor: 2}
	if got := c2.CyclesToNanos(500); math.Abs(got-2000) > 1e-9 {
		t.Errorf("CPI factor ignored: %g, want 2000", got)
	}
}

func TestCommCost(t *testing.T) {
	p := ConfigA()
	if got := p.CommCostNs(0); got != 0 {
		t.Errorf("zero bytes should cost 0, got %g", got)
	}
	small := p.CommCostNs(4)
	big := p.CommCostNs(4096)
	if small <= 0 || big <= small {
		t.Errorf("comm cost not monotone: %g, %g", small, big)
	}
	if small < p.BusLatencyNs {
		t.Errorf("comm cost below startup latency: %g < %g", small, p.BusLatencyNs)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Platform)
		want string
	}{
		{"no classes", func(p *Platform) { p.Classes = nil }, "no processor classes"},
		{"bad count", func(p *Platform) { p.Classes[0].Count = 0 }, "non-positive count"},
		{"bad clock", func(p *Platform) { p.Classes[0].MHz = -1 }, "non-positive clock"},
		{"bad cpi", func(p *Platform) { p.Classes[0].CPIFactor = 0 }, "non-positive CPI"},
		{"dup name", func(p *Platform) { p.Classes[1].Name = p.Classes[0].Name }, "duplicate class"},
		{"bad bus", func(p *Platform) { p.BusBytesPerNs = 0 }, "bandwidth"},
		{"bad overhead", func(p *Platform) { p.TaskCreateNs = -1 }, "non-negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := ConfigA()
			tc.mut(p)
			err := p.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestHomogeneous(t *testing.T) {
	p := Homogeneous("h4", 500, 4)
	if err := p.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if p.NumCores() != 4 || len(p.Classes) != 1 {
		t.Errorf("unexpected shape: %v", p)
	}
	if got := p.TheoreticalSpeedup(0); math.Abs(got-4) > 1e-9 {
		t.Errorf("homogeneous limit = %g, want 4", got)
	}
}

func TestScenarioString(t *testing.T) {
	if ScenarioAccelerator.String() != "accelerator" || ScenarioSlowerCores.String() != "slower-cores" {
		t.Errorf("scenario names wrong")
	}
	if !strings.Contains(ConfigA().String(), "config-A") {
		t.Errorf("platform String missing name")
	}
}

func TestPowerModel(t *testing.T) {
	slow := ProcClass{Name: "s", MHz: 100, Count: 1, CPIFactor: 1}
	fast := ProcClass{Name: "f", MHz: 500, Count: 1, CPIFactor: 1}
	if slow.ActivePowerMW() <= 0 || fast.ActivePowerMW() <= 0 {
		t.Fatalf("derived power must be positive")
	}
	// Power grows superlinearly with clock (DVFS voltage scaling).
	ratio := fast.ActivePowerMW() / slow.ActivePowerMW()
	if ratio <= 5 {
		t.Errorf("500/100 MHz power ratio %.2f should exceed the 5x speed ratio", ratio)
	}
	// Idle draw must stay a small fraction of active draw.
	if slow.IdlePowerMW() >= slow.ActivePowerMW()/2 {
		t.Errorf("idle draw should be well below active")
	}
	// Explicit figures override the derivation.
	custom := ProcClass{Name: "c", MHz: 500, Count: 1, CPIFactor: 1, ActiveMW: 999, IdleMW: 1}
	if custom.ActivePowerMW() != 999 || custom.IdlePowerMW() != 1 {
		t.Errorf("explicit power figures ignored")
	}
}
