package platform

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// platformJSON is the on-disk platform description. Field names are
// stable and documented in README ("Custom platforms"); zero-valued
// optional fields are filled with the library defaults on load.
type platformJSON struct {
	Name          string          `json:"name"`
	Classes       []procClassJSON `json:"classes"`
	BusLatencyNs  float64         `json:"bus_latency_ns,omitempty"`
	BusBytesPerNs float64         `json:"bus_bytes_per_ns,omitempty"`
	TaskCreateNs  float64         `json:"task_create_ns,omitempty"`
}

type procClassJSON struct {
	Name      string  `json:"name"`
	MHz       float64 `json:"mhz"`
	Count     int     `json:"count"`
	CPIFactor float64 `json:"cpi_factor,omitempty"`
	ActiveMW  float64 `json:"active_mw,omitempty"`
	IdleMW    float64 `json:"idle_mw,omitempty"`
}

// MarshalJSON renders the platform in the documented file format.
func (p *Platform) MarshalJSON() ([]byte, error) {
	out := platformJSON{
		Name:          p.Name,
		BusLatencyNs:  p.BusLatencyNs,
		BusBytesPerNs: p.BusBytesPerNs,
		TaskCreateNs:  p.TaskCreateNs,
	}
	for _, c := range p.Classes {
		out.Classes = append(out.Classes, procClassJSON{
			Name: c.Name, MHz: c.MHz, Count: c.Count,
			CPIFactor: c.CPIFactor, ActiveMW: c.ActiveMW, IdleMW: c.IdleMW,
		})
	}
	return json.Marshal(out)
}

// UnmarshalJSON parses the documented file format, applying defaults for
// omitted optional fields (CPI factor 1.0, library bus/overhead figures).
// It does not validate; FromJSON and LoadFile do.
func (p *Platform) UnmarshalJSON(data []byte) error {
	var in platformJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	p.Name = in.Name
	p.Classes = nil
	for _, c := range in.Classes {
		if c.CPIFactor == 0 {
			c.CPIFactor = 1
		}
		if c.Name == "" {
			c.Name = fmt.Sprintf("ARM@%.0fMHz", c.MHz)
		}
		p.Classes = append(p.Classes, ProcClass{
			Name: c.Name, MHz: c.MHz, Count: c.Count,
			CPIFactor: c.CPIFactor, ActiveMW: c.ActiveMW, IdleMW: c.IdleMW,
		})
	}
	p.BusLatencyNs = in.BusLatencyNs
	p.BusBytesPerNs = in.BusBytesPerNs
	p.TaskCreateNs = in.TaskCreateNs
	if p.BusLatencyNs == 0 {
		p.BusLatencyNs = defaultBusLatencyNs
	}
	if p.BusBytesPerNs == 0 {
		p.BusBytesPerNs = defaultBusBytesPerNs
	}
	if p.TaskCreateNs == 0 {
		p.TaskCreateNs = defaultTaskCreateNs
	}
	return nil
}

// FromJSON parses and validates a platform description.
func FromJSON(data []byte) (*Platform, error) {
	p := &Platform{}
	if err := json.Unmarshal(data, p); err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// LoadFile reads and validates a JSON platform description from path.
func LoadFile(path string) (*Platform, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	p, err := FromJSON(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// ToJSON renders the platform as indented JSON in the file format
// LoadFile accepts.
func (p *Platform) ToJSON() ([]byte, error) {
	raw, err := json.Marshal(p)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, raw, "", "  "); err != nil {
		return nil, err
	}
	buf.WriteByte('\n')
	return buf.Bytes(), nil
}

// Fingerprint returns a short content hash of every field the
// parallelizer and simulator consume (classes in declared order with
// clocks, counts, CPI and power figures; bus parameters; overheads).
// Platforms with equal fingerprints produce identical results for the
// same input program, which makes the fingerprint a valid solution-cache
// key component. The Name is deliberately excluded.
func (p *Platform) Fingerprint() string {
	var sb strings.Builder
	for _, c := range p.Classes {
		fmt.Fprintf(&sb, "c:%g:%d:%g:%g:%g;", c.MHz, c.Count, c.CPIFactor, c.ActiveMW, c.IdleMW)
	}
	fmt.Fprintf(&sb, "bus:%g:%g;tco:%g", p.BusLatencyNs, p.BusBytesPerNs, p.TaskCreateNs)
	sum := sha256.Sum256([]byte(sb.String()))
	return fmt.Sprintf("%x", sum[:8])
}
