package platform

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	for _, p := range []*Platform{ConfigA(), ConfigB(), Homogeneous("h2", 300, 2)} {
		data, err := p.ToJSON()
		if err != nil {
			t.Fatalf("%s: ToJSON: %v", p.Name, err)
		}
		got, err := FromJSON(data)
		if err != nil {
			t.Fatalf("%s: FromJSON: %v", p.Name, err)
		}
		if got.Name != p.Name || len(got.Classes) != len(p.Classes) {
			t.Fatalf("%s: round trip changed shape: %v", p.Name, got)
		}
		for i := range p.Classes {
			if got.Classes[i] != p.Classes[i] {
				t.Errorf("%s: class %d changed: %+v != %+v", p.Name, i, got.Classes[i], p.Classes[i])
			}
		}
		if got.BusLatencyNs != p.BusLatencyNs || got.BusBytesPerNs != p.BusBytesPerNs ||
			got.TaskCreateNs != p.TaskCreateNs {
			t.Errorf("%s: bus/overhead fields changed", p.Name)
		}
		if got.Fingerprint() != p.Fingerprint() {
			t.Errorf("%s: fingerprint changed across round trip", p.Name)
		}
	}
}

func TestFromJSONDefaultsAndValidation(t *testing.T) {
	// Minimal description: optional fields filled with defaults.
	p, err := FromJSON([]byte(`{"name":"mini","classes":[{"mhz":400,"count":2}]}`))
	if err != nil {
		t.Fatalf("FromJSON: %v", err)
	}
	if p.Classes[0].CPIFactor != 1 {
		t.Errorf("CPI factor default = %g, want 1", p.Classes[0].CPIFactor)
	}
	if p.Classes[0].Name != "ARM@400MHz" {
		t.Errorf("derived class name = %q", p.Classes[0].Name)
	}
	if p.BusLatencyNs != defaultBusLatencyNs || p.BusBytesPerNs != defaultBusBytesPerNs ||
		p.TaskCreateNs != defaultTaskCreateNs {
		t.Errorf("bus/overhead defaults not applied: %+v", p)
	}

	// Invalid platforms are rejected at load time.
	if _, err := FromJSON([]byte(`{"name":"bad","classes":[]}`)); err == nil {
		t.Errorf("empty class list accepted")
	}
	if _, err := FromJSON([]byte(`{"name":"bad","classes":[{"mhz":-5,"count":1}]}`)); err == nil {
		t.Errorf("negative clock accepted")
	}
	if _, err := FromJSON([]byte(`{broken`)); err == nil {
		t.Errorf("malformed JSON accepted")
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pf.json")
	data, err := ConfigB().ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if p.Name != "config-B" || p.NumCores() != 4 {
		t.Errorf("loaded platform wrong: %v", p)
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Errorf("missing file accepted")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	a, b := ConfigA(), ConfigA()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("identical platforms disagree")
	}
	// The name must NOT matter (cache keys are content-addressed).
	b.Name = "renamed"
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("name changed the fingerprint")
	}
	// Every behavioural field must matter.
	muts := []struct {
		name string
		mut  func(*Platform)
	}{
		{"clock", func(p *Platform) { p.Classes[0].MHz = 120 }},
		{"count", func(p *Platform) { p.Classes[2].Count = 3 }},
		{"cpi", func(p *Platform) { p.Classes[1].CPIFactor = 2 }},
		{"power", func(p *Platform) { p.Classes[0].ActiveMW = 77 }},
		{"bus latency", func(p *Platform) { p.BusLatencyNs = 10 }},
		{"bus bandwidth", func(p *Platform) { p.BusBytesPerNs = 3.2 }},
		{"tco", func(p *Platform) { p.TaskCreateNs = 1 }},
	}
	for _, m := range muts {
		p := ConfigA()
		m.mut(p)
		if p.Fingerprint() == a.Fingerprint() {
			t.Errorf("%s change did not change the fingerprint", m.name)
		}
	}
	if n := len(a.Fingerprint()); n != 16 {
		t.Errorf("fingerprint length = %d, want 16 hex chars", n)
	}
}

// Tie-breaking of the class selectors: the sweep generator emits
// platforms with equal-speed classes and single-class platforms, so the
// documented "first index wins" behaviour must hold.
func TestClassSelectionTieBreaking(t *testing.T) {
	twins := &Platform{
		Name: "twins",
		Classes: []ProcClass{
			{Name: "x0", MHz: 500, Count: 1, CPIFactor: 1},
			{Name: "x1", MHz: 500, Count: 1, CPIFactor: 1},
		},
		BusLatencyNs: 1, BusBytesPerNs: 1, TaskCreateNs: 1,
	}
	if got := twins.FastestClass(); got != 0 {
		t.Errorf("FastestClass on equal classes = %d, want first index 0", got)
	}
	if got := twins.SlowestClass(); got != 0 {
		t.Errorf("SlowestClass on equal classes = %d, want first index 0", got)
	}
	// Equal SpeedScore through different (MHz, CPI) pairs ties too.
	mixed := &Platform{
		Name: "mixed",
		Classes: []ProcClass{
			{Name: "a", MHz: 500, Count: 1, CPIFactor: 2}, // score 250
			{Name: "b", MHz: 250, Count: 1, CPIFactor: 1}, // score 250
			{Name: "c", MHz: 100, Count: 1, CPIFactor: 1}, // score 100
		},
		BusLatencyNs: 1, BusBytesPerNs: 1, TaskCreateNs: 1,
	}
	if got := mixed.FastestClass(); got != 0 {
		t.Errorf("FastestClass tie = %d, want 0", got)
	}
	if got := mixed.SlowestClass(); got != 2 {
		t.Errorf("SlowestClass = %d, want 2", got)
	}
	single := Homogeneous("one", 200, 3)
	if single.FastestClass() != 0 || single.SlowestClass() != 0 {
		t.Errorf("single-class platform selectors must return 0")
	}
	// Scenarios resolve to the same main class on a single-class platform.
	if ScenarioAccelerator.MainClass(single) != ScenarioSlowerCores.MainClass(single) {
		t.Errorf("scenario main classes differ on a single-class platform")
	}
}

func TestTheoreticalSpeedupEdgeCases(t *testing.T) {
	// Equal-speed classes: limit is simply the core count from any class.
	twins := &Platform{
		Name: "twins",
		Classes: []ProcClass{
			{Name: "x0", MHz: 500, Count: 2, CPIFactor: 1},
			{Name: "x1", MHz: 500, Count: 2, CPIFactor: 1},
		},
		BusLatencyNs: 1, BusBytesPerNs: 1, TaskCreateNs: 1,
	}
	for main := range twins.Classes {
		if got := twins.TheoreticalSpeedup(main); math.Abs(got-4) > 1e-9 {
			t.Errorf("equal-class limit from class %d = %g, want 4", main, got)
		}
	}
	// Single-class platform: limit equals the core count.
	single := Homogeneous("one", 150, 5)
	if got := single.TheoreticalSpeedup(0); math.Abs(got-5) > 1e-9 {
		t.Errorf("single-class limit = %g, want 5", got)
	}
	// CPI factors cancel against clocks in the score ratio.
	mixed := &Platform{
		Name: "mixed",
		Classes: []ProcClass{
			{Name: "a", MHz: 400, Count: 1, CPIFactor: 2}, // score 200
			{Name: "b", MHz: 200, Count: 1, CPIFactor: 1}, // score 200
		},
		BusLatencyNs: 1, BusBytesPerNs: 1, TaskCreateNs: 1,
	}
	if got := mixed.TheoreticalSpeedup(0); math.Abs(got-2) > 1e-9 {
		t.Errorf("CPI-adjusted limit = %g, want 2", got)
	}
}

func TestStringMentionsAllClasses(t *testing.T) {
	s := ConfigA().String()
	for _, want := range []string{"ARM@100MHz", "ARM@250MHz", "ARM@500MHz"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %s: %s", want, s)
		}
	}
}
