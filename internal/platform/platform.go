// Package platform describes heterogeneous MPSoC targets for the
// parallelizer and the simulator: processor classes (identical processing
// units grouped by performance characteristics), per-class core counts and
// clock frequencies, the shared interconnect, and runtime overheads.
//
// It is the Go equivalent of the MPMH platform description the paper's tool
// flow consumes, and ships the two evaluation configurations of Section VI:
//
//	Configuration (A): 100 MHz (1x), 250 MHz (1x), 500 MHz (2x)
//	Configuration (B): 200 MHz (2x), 500 MHz (2x)
package platform

import (
	"fmt"
	"sort"
	"strings"
)

// ProcClass is one class of identical processing units. Same-ISA
// heterogeneity is expressed through the clock frequency and a CPI factor;
// specialized units could additionally scale individual operation costs.
type ProcClass struct {
	// Name identifies the class, e.g. "ARM@500MHz".
	Name string
	// MHz is the core clock in megahertz.
	MHz float64
	// Count is the number of processing units of this class.
	Count int
	// CPIFactor scales the architectural cycles-per-instruction baseline;
	// 1.0 models the reference pipeline. A simpler in-order core (e.g. a
	// Cortex-M3 next to an A9) would use a factor > 1.
	CPIFactor float64
	// ActiveMW is the active power draw in milliwatts (0 = derive a
	// first-order estimate from the clock: dynamic power grows
	// superlinearly with frequency because voltage scales with it).
	ActiveMW float64
	// IdleMW is the idle power draw (0 = 12% of active).
	IdleMW float64
}

// ActivePowerMW returns the active power draw, deriving the first-order
// DVFS estimate P ~ f * V(f)^2 when no explicit figure is configured.
func (pc ProcClass) ActivePowerMW() float64 {
	if pc.ActiveMW > 0 {
		return pc.ActiveMW
	}
	// Normalized V(f) = 0.8 + f/1250 (volts-ish): 100 MHz -> 0.88, 500 MHz
	// -> 1.2; P = k * f * V^2 with k chosen so a 500 MHz core draws 430 mW.
	v := 0.8 + pc.MHz/1250.0
	return 0.6 * pc.MHz * v * v / pc.CPIFactor
}

// IdlePowerMW returns the idle draw (clock-gated but powered).
func (pc ProcClass) IdlePowerMW() float64 {
	if pc.IdleMW > 0 {
		return pc.IdleMW
	}
	return 0.12 * pc.ActivePowerMW()
}

// CyclesToNanos converts cycle counts on this class to nanoseconds.
func (pc ProcClass) CyclesToNanos(cycles float64) float64 {
	return cycles * pc.CPIFactor * 1000.0 / pc.MHz
}

// SpeedScore is proportional to the class's throughput; used for
// theoretical-speedup limits (sum of scores / main score).
func (pc ProcClass) SpeedScore() float64 { return pc.MHz / pc.CPIFactor }

// Platform is a complete heterogeneous MPSoC description.
type Platform struct {
	// Name labels the configuration (e.g. "config-A").
	Name string
	// Classes lists the processor classes. Index into this slice is the
	// ClassID used throughout the parallelizer.
	Classes []ProcClass
	// BusLatencyNs is the startup latency of one shared-bus transfer.
	BusLatencyNs float64
	// BusBytesPerNs is the bus bandwidth (bytes per nanosecond).
	BusBytesPerNs float64
	// TaskCreateNs is the task-creation overhead (TCO in Eq. 8), charged
	// once per dynamic creation of a task.
	TaskCreateNs float64
}

// Validate reports configuration errors.
func (p *Platform) Validate() error {
	if len(p.Classes) == 0 {
		return fmt.Errorf("platform %q has no processor classes", p.Name)
	}
	names := map[string]bool{}
	for i, c := range p.Classes {
		if c.Count <= 0 {
			return fmt.Errorf("platform %q: class %d (%s) has non-positive count %d", p.Name, i, c.Name, c.Count)
		}
		if c.MHz <= 0 {
			return fmt.Errorf("platform %q: class %d (%s) has non-positive clock %.1f", p.Name, i, c.Name, c.MHz)
		}
		if c.CPIFactor <= 0 {
			return fmt.Errorf("platform %q: class %d (%s) has non-positive CPI factor", p.Name, i, c.Name)
		}
		if names[c.Name] {
			return fmt.Errorf("platform %q: duplicate class name %q", p.Name, c.Name)
		}
		names[c.Name] = true
	}
	if p.BusBytesPerNs <= 0 {
		return fmt.Errorf("platform %q: bus bandwidth must be positive", p.Name)
	}
	if p.BusLatencyNs < 0 || p.TaskCreateNs < 0 {
		return fmt.Errorf("platform %q: overheads must be non-negative", p.Name)
	}
	return nil
}

// NumCores returns the total number of processing units.
func (p *Platform) NumCores() int {
	n := 0
	for _, c := range p.Classes {
		n += c.Count
	}
	return n
}

// ClassByName returns the index of the named class, or -1.
func (p *Platform) ClassByName(name string) int {
	for i, c := range p.Classes {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// FastestClass returns the index of the class with the highest speed score.
func (p *Platform) FastestClass() int {
	best, bestScore := 0, -1.0
	for i, c := range p.Classes {
		if s := c.SpeedScore(); s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// SlowestClass returns the index of the class with the lowest speed score.
func (p *Platform) SlowestClass() int {
	best := 0
	bestScore := p.Classes[0].SpeedScore()
	for i, c := range p.Classes {
		if s := c.SpeedScore(); s < bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// TheoreticalSpeedup is the dashed-line limit of Figures 7 and 8: the sum
// of all core speed scores divided by the main class's score, e.g.
// (1*100 + 1*250 + 2*500)/100 = 13.5 for configuration (A) scenario (I).
func (p *Platform) TheoreticalSpeedup(mainClass int) float64 {
	total := 0.0
	for _, c := range p.Classes {
		total += float64(c.Count) * c.SpeedScore()
	}
	return total / p.Classes[mainClass].SpeedScore()
}

// BusEnergyPJPerByte is the first-order interconnect energy cost.
const BusEnergyPJPerByte = 45.0

// CommCostNs estimates the time to move bytes once over the shared bus.
func (p *Platform) CommCostNs(bytes int) float64 {
	if bytes <= 0 {
		return 0
	}
	return p.BusLatencyNs + float64(bytes)/p.BusBytesPerNs
}

// String renders a compact summary, classes sorted fastest first.
func (p *Platform) String() string {
	cls := make([]ProcClass, len(p.Classes))
	copy(cls, p.Classes)
	sort.Slice(cls, func(i, j int) bool { return cls[i].SpeedScore() > cls[j].SpeedScore() })
	parts := make([]string, len(cls))
	for i, c := range cls {
		parts[i] = fmt.Sprintf("%dx %s", c.Count, c.Name)
	}
	return fmt.Sprintf("%s [%s]", p.Name, strings.Join(parts, ", "))
}

// Scenario selects which processor class hosts the sequential main task, as
// in the paper's two evaluation scenarios.
type Scenario int

const (
	// ScenarioAccelerator (I): the main processor is a slow core; faster
	// units are attached as accelerators.
	ScenarioAccelerator Scenario = iota
	// ScenarioSlowerCores (II): the main processor is the fast core; slower
	// units exist for power/thermal reasons.
	ScenarioSlowerCores
)

// String names the scenario.
func (s Scenario) String() string {
	switch s {
	case ScenarioAccelerator:
		return "accelerator"
	case ScenarioSlowerCores:
		return "slower-cores"
	}
	return fmt.Sprintf("Scenario(%d)", int(s))
}

// MainClass resolves the scenario to a concrete class index on p.
func (s Scenario) MainClass(p *Platform) int {
	if s == ScenarioAccelerator {
		return p.SlowestClass()
	}
	return p.FastestClass()
}

// Default overhead parameters shared by the shipped configurations. The bus
// is a high-performance interconnect with an L2 shared cache, matching the
// evaluation platforms ("connected with a level 2 cache on a high
// performance bus").
const (
	defaultBusLatencyNs  = 80.0
	defaultBusBytesPerNs = 0.8   // 800 MB/s shared bus
	defaultTaskCreateNs  = 2500. // pthread-like creation cost on a slow core
)

// ConfigA returns evaluation platform configuration (A):
// four ARM cores at 100, 250, 500 and 500 MHz.
func ConfigA() *Platform {
	return &Platform{
		Name: "config-A",
		Classes: []ProcClass{
			{Name: "ARM@100MHz", MHz: 100, Count: 1, CPIFactor: 1},
			{Name: "ARM@250MHz", MHz: 250, Count: 1, CPIFactor: 1},
			{Name: "ARM@500MHz", MHz: 500, Count: 2, CPIFactor: 1},
		},
		BusLatencyNs:  defaultBusLatencyNs,
		BusBytesPerNs: defaultBusBytesPerNs,
		TaskCreateNs:  defaultTaskCreateNs,
	}
}

// ConfigB returns evaluation platform configuration (B):
// two 200 MHz and two 500 MHz ARM cores (big.LITTLE-like 2.5x gap).
func ConfigB() *Platform {
	return &Platform{
		Name: "config-B",
		Classes: []ProcClass{
			{Name: "ARM@200MHz", MHz: 200, Count: 2, CPIFactor: 1},
			{Name: "ARM@500MHz", MHz: 500, Count: 2, CPIFactor: 1},
		},
		BusLatencyNs:  defaultBusLatencyNs,
		BusBytesPerNs: defaultBusBytesPerNs,
		TaskCreateNs:  defaultTaskCreateNs,
	}
}

// Homogeneous builds an n-core single-class platform, used by tests and by
// the homogeneous-baseline comparisons.
func Homogeneous(name string, mhz float64, n int) *Platform {
	return &Platform{
		Name: name,
		Classes: []ProcClass{
			{Name: fmt.Sprintf("ARM@%.0fMHz", mhz), MHz: mhz, Count: n, CPIFactor: 1},
		},
		BusLatencyNs:  defaultBusLatencyNs,
		BusBytesPerNs: defaultBusBytesPerNs,
		TaskCreateNs:  defaultTaskCreateNs,
	}
}
