package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// EventLog is a structured, append-only telemetry event stream. Each
// Emit produces one JSON object ("JSON Lines": one object per line)
// written immediately to the configured sink, and retained in a bounded
// in-memory ring so a live server can show the recent tail of a long
// sweep without unbounded growth.
//
// Like every obs type, an EventLog is nil-safe: all methods on a nil
// receiver are free no-ops, so instrumented code emits unconditionally.
// Event timestamps are offsets from the log's epoch (not wall-clock
// readings of solver work), keeping telemetry out of the deterministic
// solver path: nothing an EventLog records ever feeds back into solver
// results.

// DefaultEventRing is the ring capacity used by NewEventLog.
const DefaultEventRing = 1024

// Event is one telemetry event. Fields marshal in a fixed order so the
// JSONL output is stable and diffable.
type Event struct {
	// Seq is the 1-based emission index (monotonic per log).
	Seq uint64
	// T is the offset from the log's epoch.
	T time.Duration
	// Kind classifies the event ("span-open", "span-close",
	// "ilp-incumbent", "store-eviction", "worker-stall", ...).
	Kind string
	// Name identifies the subject (span name, metric name, cache key).
	Name string
	// Fields holds kind-specific payload values.
	Fields map[string]any
}

// MarshalJSON renders the event as a single stable-ordered JSON object:
// seq, t_ms, kind, name, then the payload fields sorted by key.
func (e Event) MarshalJSON() ([]byte, error) {
	var buf []byte
	buf = append(buf, '{')
	buf = append(buf, fmt.Sprintf(`"seq":%d,"t_ms":%.3f,"kind":%q,"name":%q`,
		e.Seq, float64(e.T.Nanoseconds())/1e6, e.Kind, e.Name)...)
	keys := make([]string, 0, len(e.Fields))
	for k := range e.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v, err := json.Marshal(e.Fields[k])
		if err != nil {
			v = []byte(fmt.Sprintf("%q", fmt.Sprint(e.Fields[k])))
		}
		buf = append(buf, ',')
		buf = append(buf, fmt.Sprintf("%q:", k)...)
		buf = append(buf, v...)
	}
	buf = append(buf, '}')
	return buf, nil
}

// EventLog collects telemetry events. Create one with NewEventLog; a
// nil *EventLog is a valid, disabled log.
type EventLog struct {
	mu    sync.Mutex
	epoch time.Time
	w     io.Writer
	ring  []Event
	next  int // ring write position
	total uint64
	errs  int
}

// NewEventLog creates an event log retaining the last DefaultEventRing
// events in memory. w may be nil (ring only); pass e.g. an *os.File to
// stream JSONL to disk.
func NewEventLog(w io.Writer) *EventLog {
	return &EventLog{
		epoch: time.Now(),
		w:     w,
		ring:  make([]Event, 0, DefaultEventRing),
	}
}

// Emit records one event. Safe on nil and from concurrent goroutines.
// Write errors on the sink are counted, not propagated — telemetry
// must never take the pipeline down.
func (l *EventLog) Emit(kind, name string, fields map[string]any) {
	if l == nil {
		return
	}
	now := time.Now()
	l.mu.Lock()
	l.total++
	ev := Event{Seq: l.total, T: now.Sub(l.epoch), Kind: kind, Name: name, Fields: fields}
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, ev)
	} else {
		l.ring[l.next] = ev
		l.next = (l.next + 1) % cap(l.ring)
	}
	w := l.w
	var line []byte
	if w != nil {
		line, _ = ev.MarshalJSON()
		line = append(line, '\n')
	}
	if w != nil {
		if _, err := w.Write(line); err != nil {
			l.errs++
		}
	}
	l.mu.Unlock()
}

// Total returns the number of events emitted over the log's lifetime
// (including any that have rotated out of the ring).
func (l *EventLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Recent returns up to n of the most recent events, oldest first. With
// n <= 0 it returns the whole ring.
func (l *EventLog) Recent(n int) []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.ring))
	if len(l.ring) < cap(l.ring) {
		out = append(out, l.ring...)
	} else {
		out = append(out, l.ring[l.next:]...)
		out = append(out, l.ring[:l.next]...)
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// WriteJSONL renders up to n recent events (all for n <= 0) as JSON
// Lines. Safe on nil.
func (l *EventLog) WriteJSONL(w io.Writer, n int) error {
	for _, ev := range l.Recent(n) {
		line, err := ev.MarshalJSON()
		if err != nil {
			return err
		}
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			return err
		}
	}
	return nil
}

// SyncWriter serializes writes from concurrent telemetry producers onto
// one underlying writer, so -v span lines, -stats tables and worker
// log output interleave at line granularity instead of mid-line.
type SyncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewSyncWriter wraps w; a nil w yields a writer that discards.
func NewSyncWriter(w io.Writer) *SyncWriter { return &SyncWriter{w: w} }

// Write implements io.Writer with whole-call atomicity.
func (s *SyncWriter) Write(p []byte) (int, error) {
	if s == nil || s.w == nil {
		return len(p), nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
