// Package obs is the tool flow's observability layer: phase-scoped
// tracing spans, a concurrency-safe metrics registry and exporters
// (Chrome trace_event JSON for chrome://tracing / Perfetto, plus
// human-readable tables). It is stdlib-only and designed around a nil
// fast path: every method is safe on a nil receiver and does nothing,
// so instrumented code never branches on "is observability on" and the
// disabled hot path costs a single pointer test.
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Attr is one key/value annotation attached to a span.
type Attr struct {
	Key string
	Val any
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{k, v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{k, v} }

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{k, v} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{k, v} }

// Dur builds a duration attribute (exported in milliseconds).
func Dur(k string, v time.Duration) Attr {
	return Attr{k, float64(v.Nanoseconds()) / 1e6}
}

// event is one recorded begin/end marker. Events are appended under the
// tracer lock at Start and End time, so the recorded order is exactly
// the (properly nested) execution order.
type event struct {
	ph    byte // 'B' or 'E'
	name  string
	ts    time.Duration // offset from the tracer epoch
	attrs []Attr
}

// slice is one synthesized occupancy interval on a named track, in a
// virtual (simulated) timebase independent of the span wall clock.
type slice struct {
	track, label   string
	startNs, endNs float64
}

// Tracer records phase spans and synthesized occupancy slices. Create
// one with NewTracer; a nil *Tracer is a valid, free, disabled tracer.
type Tracer struct {
	mu     sync.Mutex
	epoch  time.Time
	events []event
	slices []slice
	logw   io.Writer
	elog   *EventLog
	open   int
}

// NewTracer creates an enabled tracer.
func NewTracer() *Tracer { return &Tracer{epoch: time.Now()} }

// SetLogger makes the tracer additionally print one line per finished
// span to w (the CLI's -v mode). Safe on nil.
func (t *Tracer) SetLogger(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.logw = w
	t.mu.Unlock()
}

// SetEvents makes the tracer mirror span open/close markers into the
// structured event log ("span-open" / "span-close" kinds). Safe on nil.
func (t *Tracer) SetEvents(l *EventLog) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.elog = l
	t.mu.Unlock()
}

// Span is one open phase. A nil *Span (from a nil tracer) ignores all
// calls.
type Span struct {
	t     *Tracer
	name  string
	start time.Time
	idx   int // index of the 'B' event, for attribute backfill
}

// Start opens a span. End it with (*Span).End; spans must nest
// (LIFO order) for the Chrome export to render a sensible flame view.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	now := time.Now()
	t.mu.Lock()
	idx := len(t.events)
	t.events = append(t.events, event{ph: 'B', name: name, ts: now.Sub(t.epoch), attrs: attrs})
	t.open++
	elog := t.elog
	t.mu.Unlock()
	elog.Emit("span-open", name, nil)
	return &Span{t: t, name: name, start: now, idx: idx}
}

// SetAttr attaches further attributes to the span (visible on its begin
// event); useful for results only known at the end of the phase.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	ev := &s.t.events[s.idx]
	ev.attrs = append(ev.attrs, attrs...)
	s.t.mu.Unlock()
}

// End closes the span and returns its duration.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	now := time.Now()
	d := now.Sub(s.start)
	s.t.mu.Lock()
	s.t.events = append(s.t.events, event{ph: 'E', name: s.name, ts: now.Sub(s.t.epoch)})
	s.t.open--
	logw := s.t.logw
	elog := s.t.elog
	var attrs []Attr
	if logw != nil {
		attrs = append(attrs, s.t.events[s.idx].attrs...)
	}
	s.t.mu.Unlock()
	elog.Emit("span-close", s.name, map[string]any{"dur_ms": float64(d.Nanoseconds()) / 1e6})
	if logw != nil {
		line := fmt.Sprintf("[obs] %-14s %10s", s.name, d.Round(time.Microsecond))
		for _, a := range attrs {
			line += fmt.Sprintf(" %s=%v", a.Key, a.Val)
		}
		fmt.Fprintln(logw, line)
	}
	return d
}

// Slice records one occupancy interval on a named track of the
// simulated timeline (nanoseconds of virtual time). Safe on nil.
func (t *Tracer) Slice(track, label string, startNs, endNs float64) {
	if t == nil || endNs <= startNs {
		return
	}
	t.mu.Lock()
	t.slices = append(t.slices, slice{track: track, label: label, startNs: startNs, endNs: endNs})
	t.mu.Unlock()
}

// NumSpans returns the number of completed or open spans recorded.
func (t *Tracer) NumSpans() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, ev := range t.events {
		if ev.ph == 'B' {
			n++
		}
	}
	return n
}

// NumSlices returns the number of recorded occupancy slices.
func (t *Tracer) NumSlices() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.slices)
}

// SpanNames returns the distinct names of recorded spans, sorted.
func (t *Tracer) SpanNames() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	seen := map[string]bool{}
	for _, ev := range t.events {
		if ev.ph == 'B' {
			seen[ev.name] = true
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Observer bundles the observability sinks threaded through the tool
// flow. A nil *Observer (or nil fields) disables everything.
type Observer struct {
	Tracer  *Tracer
	Metrics *Registry
	Events  *EventLog
}

// T returns the tracer (nil when disabled); safe on a nil observer.
func (o *Observer) T() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// M returns the metrics registry (nil when disabled); safe on a nil
// observer.
func (o *Observer) M() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// E returns the event log (nil when disabled); safe on a nil observer.
func (o *Observer) E() *EventLog {
	if o == nil {
		return nil
	}
	return o.Events
}
