package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server exposes live telemetry over HTTP using only the standard
// library:
//
//	/metrics       Prometheus text-format 0.0.4 of the registry
//	/healthz       liveness probe ("ok")
//	/events        recent tail of the JSONL event log (?n=100)
//	/debug/pprof/  the net/http/pprof profile handlers
//
// The server is strictly out-of-band: handlers only read snapshots, so
// scraping mid-run never perturbs solver results. Handlers are mounted
// on a private mux (not http.DefaultServeMux) so importing this package
// does not leak pprof onto unrelated servers.
type Server struct {
	reg    *Registry
	events *EventLog
	ln     net.Listener
	srv    *http.Server
}

// TelemetryHandler returns the telemetry endpoint set (/metrics,
// /healthz, /events, /debug/pprof/) as a standalone http.Handler, so a
// host server — obs.Server here, the heteropard daemon elsewhere — can
// mount the same surface on its own listener. reg and events may be
// nil; the corresponding endpoints then serve empty bodies. The
// handlers are built on a private mux, never http.DefaultServeMux, so
// importing this package does not leak pprof onto unrelated servers.
func TelemetryHandler(reg *Registry, events *EventLog) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		n := 0
		fmt.Sscanf(r.URL.Query().Get("n"), "%d", &n)
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = events.WriteJSONL(w, n)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// NewServer starts serving on addr (e.g. "localhost:9090", or
// "127.0.0.1:0" for an ephemeral port). reg and events may be nil —
// the corresponding endpoints then serve empty bodies.
func NewServer(addr string, reg *Registry, events *EventLog) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{reg: reg, events: events, ln: ln}
	s.srv = &http.Server{Handler: TelemetryHandler(reg, events), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address ("127.0.0.1:43521"); empty on a
// nil server.
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns the http base URL of the server; empty on a nil server.
func (s *Server) URL() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return "http://" + s.Addr()
}

// Close stops the listener. Safe on nil and after a prior Close.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}
