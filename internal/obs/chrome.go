package obs

import (
	"encoding/json"
	"io"
	"os"
	"sort"
)

// Chrome trace_event pids: the pipeline's wall-clock spans and the
// simulator's virtual-time occupancy tracks are separate "processes" so
// their unrelated timebases never share an axis row.
const (
	pipelinePID = 1
	simPID      = 2
)

// chromeEvent is one entry of the Chrome trace_event JSON array
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON object format, the variant Perfetto and
// chrome://tracing both load.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome exports the recorded spans and occupancy slices as Chrome
// trace_event JSON. Pipeline spans become duration begin/end ('B'/'E')
// events on one track; simulator slices become complete ('X') events,
// one track per core (virtual nanoseconds mapped to microsecond
// timestamps). Safe on a nil tracer (writes an empty trace).
func (t *Tracer) WriteChrome(w io.Writer) error {
	trace := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ns"}
	if t != nil {
		t.mu.Lock()
		events := append([]event(nil), t.events...)
		slices := append([]slice(nil), t.slices...)
		open := t.open
		t.mu.Unlock()

		trace.TraceEvents = append(trace.TraceEvents,
			metaEvent("process_name", pipelinePID, 0, "heteropar pipeline"),
			metaEvent("thread_name", pipelinePID, 1, "tool flow"))
		for _, ev := range events {
			ce := chromeEvent{
				Name: ev.name,
				Cat:  "pipeline",
				Ph:   string(ev.ph),
				TS:   float64(ev.ts.Nanoseconds()) / 1e3,
				PID:  pipelinePID,
				TID:  1,
			}
			if len(ev.attrs) > 0 {
				ce.Args = make(map[string]any, len(ev.attrs))
				for _, a := range ev.attrs {
					ce.Args[a.Key] = a.Val
				}
			}
			trace.TraceEvents = append(trace.TraceEvents, ce)
		}
		// Close any still-open spans at the last recorded timestamp so
		// the exported file stays balanced even mid-flow.
		if open > 0 && len(events) > 0 {
			var stack []string
			for _, ev := range events {
				switch ev.ph {
				case 'B':
					stack = append(stack, ev.name)
				case 'E':
					if len(stack) > 0 {
						stack = stack[:len(stack)-1]
					}
				}
			}
			last := float64(events[len(events)-1].ts.Nanoseconds()) / 1e3
			for i := len(stack) - 1; i >= 0; i-- {
				trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
					Name: stack[i], Cat: "pipeline", Ph: "E",
					TS: last, PID: pipelinePID, TID: 1,
				})
			}
		}

		if len(slices) > 0 {
			tids := map[string]int{}
			var tracks []string
			for _, s := range slices {
				if _, ok := tids[s.track]; !ok {
					tids[s.track] = 0
					tracks = append(tracks, s.track)
				}
			}
			sort.Strings(tracks)
			trace.TraceEvents = append(trace.TraceEvents,
				metaEvent("process_name", simPID, 0, "mpsoc simulator (virtual time)"))
			for i, name := range tracks {
				tids[name] = i + 1
				trace.TraceEvents = append(trace.TraceEvents,
					metaEvent("thread_name", simPID, i+1, name))
			}
			for _, s := range slices {
				trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
					Name: s.label,
					Cat:  "occupancy",
					Ph:   "X",
					TS:   s.startNs / 1e3,
					Dur:  (s.endNs - s.startNs) / 1e3,
					PID:  simPID,
					TID:  tids[s.track],
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(trace)
}

// WriteChromeFile exports the trace to path (0644).
func (t *Tracer) WriteChromeFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func metaEvent(name string, pid, tid int, value string) chromeEvent {
	return chromeEvent{
		Name: name,
		Ph:   "M",
		PID:  pid,
		TID:  tid,
		Args: map[string]any{"name": value},
	}
}
