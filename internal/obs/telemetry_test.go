package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilReceiverNoOpParity is the table-driven audit of the package's
// nil fast path: every exported method of every obs type must be a safe
// no-op on a nil receiver, so instrumented code never branches on
// "is observability on".
func TestNilReceiverNoOpParity(t *testing.T) {
	var (
		c  *Counter
		g  *Gauge
		h  *Histogram
		r  *Registry
		cv *CounterVec
		gv *GaugeVec
		hv *HistogramVec
		tr *Tracer
		sp *Span
		o  *Observer
		el *EventLog
		sv *Server
		sw *SyncWriter
	)
	cases := []struct {
		name string
		call func()
	}{
		{"Counter.Add", func() { c.Add(1) }},
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Value", func() { _ = c.Value() }},
		{"Gauge.Set", func() { g.Set(1) }},
		{"Gauge.Add", func() { g.Add(1) }},
		{"Gauge.Max", func() { g.Max(1) }},
		{"Gauge.Value", func() { _ = g.Value() }},
		{"Histogram.Observe", func() { h.Observe(time.Second) }},
		{"Histogram.Count", func() { _ = h.Count() }},
		{"Histogram.Sum", func() { _ = h.Sum() }},
		{"Histogram.Mean", func() { _ = h.Mean() }},
		{"Histogram.Min", func() { _ = h.Min() }},
		{"Histogram.Max", func() { _ = h.Max() }},
		{"Histogram.Quantile", func() { _ = h.Quantile(0.5) }},
		{"Histogram.Snapshot", func() { _ = h.Snapshot() }},
		{"Registry.Counter", func() { _ = r.Counter("x") }},
		{"Registry.Gauge", func() { _ = r.Gauge("x") }},
		{"Registry.Histogram", func() { _ = r.Histogram("x") }},
		{"Registry.CounterVec", func() { _ = r.CounterVec("x", "l") }},
		{"Registry.GaugeVec", func() { _ = r.GaugeVec("x", "l") }},
		{"Registry.HistogramVec", func() { _ = r.HistogramVec("x", "l") }},
		{"Registry.RenderTable", func() { _ = r.RenderTable() }},
		{"Registry.WritePrometheus", func() { _ = r.WritePrometheus(io.Discard) }},
		{"CounterVec.With", func() { _ = cv.With("v").Value() }},
		{"CounterVec.LabelNames", func() { _ = cv.LabelNames() }},
		{"GaugeVec.With", func() { _ = gv.With("v").Value() }},
		{"GaugeVec.LabelNames", func() { _ = gv.LabelNames() }},
		{"HistogramVec.With", func() { hv.With("v").Observe(time.Second) }},
		{"HistogramVec.LabelNames", func() { _ = hv.LabelNames() }},
		{"Tracer.Start/Span.End", func() { s := tr.Start("x"); s.SetAttr(Int("n", 1)); _ = s.End() }},
		{"Tracer.SetLogger", func() { tr.SetLogger(io.Discard) }},
		{"Tracer.SetEvents", func() { tr.SetEvents(nil) }},
		{"Tracer.Slice", func() { tr.Slice("t", "l", 0, 1) }},
		{"Tracer.NumSpans", func() { _ = tr.NumSpans() }},
		{"Tracer.NumSlices", func() { _ = tr.NumSlices() }},
		{"Tracer.SpanNames", func() { _ = tr.SpanNames() }},
		{"Span.End", func() { _ = sp.End() }},
		{"Span.SetAttr", func() { sp.SetAttr(Int("n", 1)) }},
		{"Observer.T", func() { _ = o.T() }},
		{"Observer.M", func() { _ = o.M() }},
		{"Observer.E", func() { _ = o.E() }},
		{"EventLog.Emit", func() { el.Emit("k", "n", nil) }},
		{"EventLog.Total", func() { _ = el.Total() }},
		{"EventLog.Recent", func() { _ = el.Recent(5) }},
		{"EventLog.WriteJSONL", func() { _ = el.WriteJSONL(io.Discard, 0) }},
		{"Server.Addr", func() { _ = sv.Addr() }},
		{"Server.URL", func() { _ = sv.URL() }},
		{"Server.Close", func() { _ = sv.Close() }},
		{"SyncWriter.Write", func() { _, _ = sw.Write([]byte("x")) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if p := recover(); p != nil {
					t.Errorf("nil receiver panicked: %v", p)
				}
			}()
			tc.call()
		})
	}
}

// TestHistogramQuantiles checks the log-bucket interpolation against
// a uniform sample: quantiles must land within one bucket of truth and
// stay clamped to the observed min/max.
func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	checks := []struct {
		q    float64
		want time.Duration
	}{{0.5, 500 * time.Millisecond}, {0.9, 900 * time.Millisecond}, {0.99, 990 * time.Millisecond}}
	for _, c := range checks {
		got := s.Quantile(c.q)
		// Log buckets are coarse (1-2-5 series): accept within a factor
		// of 2.5 (one bucket step).
		if got < c.want/2 || got > c.want*5/2 {
			t.Errorf("P%.0f = %v, want within one bucket of %v", 100*c.q, got, c.want)
		}
	}
	if p0 := s.Quantile(0); p0 < s.Min {
		t.Errorf("P0 = %v below observed min %v", p0, s.Min)
	}
	if p100 := s.Quantile(1); p100 > s.Max {
		t.Errorf("P100 = %v above observed max %v", p100, s.Max)
	}
}

// TestSnapshotWhileObserve hammers one histogram with concurrent
// writers while snapshots are taken; run under -race this is the
// quantile histogram's concurrency coverage. Snapshot invariants must
// hold at every instant: bucket sum >= count is guaranteed by read
// order, and count never decreases.
func TestSnapshotWhileObserve(t *testing.T) {
	h := &Histogram{}
	const writers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			d := time.Duration(seed+1) * time.Microsecond
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(d)
				}
			}
		}(w)
	}
	var last int64
	for i := 0; i < 200; i++ {
		s := h.Snapshot()
		if s.Count < last {
			t.Fatalf("snapshot count went backwards: %d -> %d", last, s.Count)
		}
		last = s.Count
		var bucketSum int64
		for _, b := range s.Buckets {
			bucketSum += b
		}
		if bucketSum < s.Count {
			t.Fatalf("bucket sum %d < count %d: quantile rank would run off the end", bucketSum, s.Count)
		}
		if s.Count > 0 && s.Min == 0 {
			t.Fatalf("count %d with uninitialized min", s.Count)
		}
		_ = s.Quantile(0.99) // must not panic mid-write
	}
	close(stop)
	wg.Wait()
}

// TestVecConcurrentWith exercises concurrent child creation and lookup
// across the three vec kinds (the -race coverage for the label table).
func TestVecConcurrentWith(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("t.counts", "model", "source")
	gv := r.GaugeVec("t.gauges", "model")
	hv := r.HistogramVec("t.hists", "model")
	models := [...]string{"tasks", "chunks", "pipeline"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m := models[(w+i)%len(models)]
				cv.With(m, "computed").Inc()
				gv.With(m).Add(1)
				hv.With(m).Observe(time.Duration(i) * time.Microsecond)
				if i%50 == 0 {
					_ = r.RenderTable()
					_ = r.WritePrometheus(io.Discard)
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, m := range models {
		total += cv.With(m, "computed").Value()
	}
	if total != 8*500 {
		t.Errorf("counter vec lost increments: %d, want %d", total, 8*500)
	}
	if got := cv.With("tasks", "computed"); got != cv.With("tasks", "computed") {
		t.Error("same label values resolved to different children")
	}
}

// TestVecLabelCanonicalization: two declaration orders address the same
// child.
func TestVecLabelCanonicalization(t *testing.T) {
	r := NewRegistry()
	a := r.CounterVec("t.v", "model", "source")
	a.With("tasks", "cached").Add(3)
	if got := a.LabelNames(); strings.Join(got, ",") != "model,source" {
		t.Fatalf("label names = %v, want sorted [model source]", got)
	}
	// Same family fetched again keeps its first label set; With in
	// declared order must hit the same child.
	if v := r.CounterVec("t.v", "model", "source").With("tasks", "cached").Value(); v != 3 {
		t.Errorf("re-fetched family child = %d, want 3", v)
	}
	// Mismatched arity must not panic; it addresses a degenerate child.
	r.CounterVec("t.v", "model", "source").With("only-one").Inc()
}

// TestWritePrometheusFormat pins the text-format essentials: TYPE
// lines, label rendering, cumulative buckets in seconds, +Inf terminal
// bucket and escaping.
func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("ilp.solves").Add(3)
	r.Gauge("dse.cache.hit_rate").Set(0.25)
	r.CounterVec("core.region.solves", "model", "source").With(`ta"sk\s`, "computed").Inc()
	h := r.Histogram("ilp.solve_time")
	h.Observe(1500 * time.Microsecond)
	h.Observe(3 * time.Millisecond)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE heteropar_ilp_solves counter\nheteropar_ilp_solves 3\n",
		"# TYPE heteropar_dse_cache_hit_rate gauge\nheteropar_dse_cache_hit_rate 0.25\n",
		`heteropar_core_region_solves{model="ta\"sk\\s",source="computed"} 1`,
		"# TYPE heteropar_ilp_solve_time_seconds histogram",
		`heteropar_ilp_solve_time_seconds_bucket{le="0.002"} 1`,
		`heteropar_ilp_solve_time_seconds_bucket{le="0.005"} 2`,
		`heteropar_ilp_solve_time_seconds_bucket{le="+Inf"} 2`,
		"heteropar_ilp_solve_time_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if err := CheckPromText(strings.NewReader(out)); err != nil {
		t.Errorf("self-check rejects own output: %v", err)
	}
}

// TestCheckPromTextRejects keeps the checker honest: a checker that
// accepts anything would make the scrape smoke test vacuous.
func TestCheckPromTextRejects(t *testing.T) {
	bad := []struct{ name, doc string }{
		{"empty", ""},
		{"no-type-line", "heteropar_x 1\n"},
		{"bad-comment", "# TIPE heteropar_x counter\nheteropar_x 1\n"},
		{"bad-kind", "# TYPE heteropar_x matrix\nheteropar_x 1\n"},
		{"bad-name", "# TYPE 9x counter\n9x 1\n"},
		{"bad-value", "# TYPE heteropar_x counter\nheteropar_x one\n"},
		{"unterminated-labels", "# TYPE heteropar_x counter\nheteropar_x{a=\"b\" 1\n"},
		{"bad-escape", "# TYPE heteropar_x counter\nheteropar_x{a=\"\\t\"} 1\n"},
		{"redeclared", "# TYPE heteropar_x counter\n# TYPE heteropar_x gauge\nheteropar_x 1\n"},
		{"bucket-of-counter", "# TYPE heteropar_x counter\nheteropar_x_bucket{le=\"+Inf\"} 1\n"},
	}
	for _, tc := range bad {
		if err := CheckPromText(strings.NewReader(tc.doc)); err == nil {
			t.Errorf("%s: checker accepted malformed document:\n%s", tc.name, tc.doc)
		}
	}
	good := "# TYPE heteropar_h histogram\n" +
		"heteropar_h_seconds_bucket{le=\"+Inf\"} 2\n"
	// _seconds is part of the family name, so this must fail...
	if err := CheckPromText(strings.NewReader(good)); err == nil {
		t.Error("suffix matching is too loose: accepted bucket of undeclared family")
	}
	// ...while the properly declared form passes.
	ok := "# TYPE heteropar_h_seconds histogram\n" +
		"heteropar_h_seconds_bucket{le=\"+Inf\"} 2\n" +
		"heteropar_h_seconds_sum 0.004\nheteropar_h_seconds_count 2\n"
	if err := CheckPromText(strings.NewReader(ok)); err != nil {
		t.Errorf("checker rejected valid document: %v", err)
	}
}

// TestEventLogRingAndJSONL covers ring rotation, total counting and the
// stable JSONL field order.
func TestEventLogRingAndJSONL(t *testing.T) {
	var file bytes.Buffer
	l := NewEventLog(&file)
	n := DefaultEventRing + 50
	for i := 0; i < n; i++ {
		l.Emit("tick", fmt.Sprintf("e%d", i), map[string]any{"i": i, "a": "x"})
	}
	if got := l.Total(); got != uint64(n) {
		t.Fatalf("total = %d, want %d", got, n)
	}
	recent := l.Recent(0)
	if len(recent) != DefaultEventRing {
		t.Fatalf("ring holds %d, want %d", len(recent), DefaultEventRing)
	}
	if first := recent[0]; first.Seq != uint64(n-DefaultEventRing+1) {
		t.Errorf("oldest retained seq = %d, want %d", first.Seq, n-DefaultEventRing+1)
	}
	if last := recent[len(recent)-1]; last.Name != fmt.Sprintf("e%d", n-1) {
		t.Errorf("newest retained = %q", last.Name)
	}
	if got := len(l.Recent(7)); got != 7 {
		t.Errorf("Recent(7) returned %d", got)
	}
	// The file sink got every line, in order, each a valid JSON object
	// with the fixed prefix field order.
	lines := strings.Split(strings.TrimRight(file.String(), "\n"), "\n")
	if len(lines) != n {
		t.Fatalf("file has %d lines, want %d", len(lines), n)
	}
	for i, line := range lines[:3] {
		if !strings.HasPrefix(line, fmt.Sprintf(`{"seq":%d,"t_ms":`, i+1)) {
			t.Errorf("line %d lacks ordered prefix: %s", i, line)
		}
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Errorf("line %d invalid JSON: %v", i, err)
		}
	}
}

// TestEventLogConcurrent emits from many goroutines; under -race this
// covers the ring and the sink serialization.
func TestEventLogConcurrent(t *testing.T) {
	l := NewEventLog(io.Discard)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				l.Emit("k", "n", nil)
				if i%100 == 0 {
					_ = l.Recent(10)
				}
			}
		}()
	}
	wg.Wait()
	if got := l.Total(); got != 8*300 {
		t.Errorf("total = %d, want %d", got, 8*300)
	}
}

// TestTracerEventMirroring: span open/close markers land in the event
// log when wired.
func TestTracerEventMirroring(t *testing.T) {
	l := NewEventLog(nil)
	tr := NewTracer()
	tr.SetEvents(l)
	sp := tr.Start("phase-x")
	sp.End()
	evs := l.Recent(0)
	if len(evs) != 2 || evs[0].Kind != "span-open" || evs[1].Kind != "span-close" {
		t.Fatalf("events = %+v, want span-open then span-close", evs)
	}
	if evs[1].Name != "phase-x" {
		t.Errorf("close name = %q", evs[1].Name)
	}
	if _, ok := evs[1].Fields["dur_ms"]; !ok {
		t.Errorf("span-close missing dur_ms: %+v", evs[1].Fields)
	}
}

// TestServerEndpoints starts a real server on an ephemeral port and
// exercises every route.
func TestServerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("ilp.solves").Add(5)
	l := NewEventLog(nil)
	l.Emit("k", "n", nil)
	srv, err := NewServer("127.0.0.1:0", r, l)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string, string) {
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	if code, body, ct := get("/metrics"); code != 200 ||
		!strings.Contains(body, "heteropar_ilp_solves 5") ||
		!strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics: code=%d ct=%q body=%q", code, ct, body)
	}
	if code, body, _ := get("/healthz"); code != 200 || !strings.HasPrefix(body, "ok") {
		t.Errorf("/healthz: code=%d body=%q", code, body)
	}
	if code, body, _ := get("/events?n=10"); code != 200 || !strings.Contains(body, `"kind":"k"`) {
		t.Errorf("/events: code=%d body=%q", code, body)
	}
	if code, _, _ := get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/: code=%d", code)
	}
	if code, _, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline: code=%d", code)
	}
}

// TestSyncWriterInterleaving: concurrent writers through one SyncWriter
// produce whole lines only.
func TestSyncWriterInterleaving(t *testing.T) {
	var buf bytes.Buffer
	w := NewSyncWriter(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			line := strings.Repeat(fmt.Sprintf("%d", g), 64) + "\n"
			for i := 0; i < 100; i++ {
				if _, err := io.WriteString(w, line); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for i, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if len(line) != 64 || strings.Count(line, line[:1]) != 64 {
			t.Fatalf("line %d interleaved: %q", i, line)
		}
	}
}
