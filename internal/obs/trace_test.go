package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNilTracerIsFreeNoOp(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("phase", Int("n", 1))
	sp.SetAttr(String("k", "v"))
	if d := sp.End(); d != 0 {
		t.Errorf("nil span duration = %v, want 0", d)
	}
	tr.Slice("core0", "work", 0, 100)
	tr.SetLogger(nil)
	if tr.NumSpans() != 0 || tr.NumSlices() != 0 || tr.SpanNames() != nil {
		t.Errorf("nil tracer recorded something")
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome on nil tracer: %v", err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("nil tracer export is not valid JSON: %v", err)
	}
	if len(out.TraceEvents) != 0 {
		t.Errorf("nil tracer exported %d events", len(out.TraceEvents))
	}
}

func TestSpanRecordingAndNames(t *testing.T) {
	tr := NewTracer()
	outer := tr.Start("compile")
	inner := tr.Start("parse", Int("tokens", 42))
	inner.SetAttr(Bool("ok", true))
	inner.End()
	outer.End()
	if got := tr.NumSpans(); got != 2 {
		t.Errorf("NumSpans = %d, want 2", got)
	}
	names := tr.SpanNames()
	if len(names) != 2 || names[0] != "compile" || names[1] != "parse" {
		t.Errorf("SpanNames = %v", names)
	}
}

func TestVerboseLogger(t *testing.T) {
	tr := NewTracer()
	var buf bytes.Buffer
	tr.SetLogger(&buf)
	sp := tr.Start("htg-build", Int("nodes", 7))
	sp.End()
	line := buf.String()
	if !strings.Contains(line, "htg-build") || !strings.Contains(line, "nodes=7") {
		t.Errorf("verbose log missing span info: %q", line)
	}
}

// TestChromeExportBalanced drives a realistic span tree plus occupancy
// slices through the exporter and checks the invariants a trace viewer
// relies on: valid JSON, every 'B' matched by an 'E' on the same
// pid/tid (including spans left open at export time), monotone
// timestamps per track, and the occupancy slices present as 'X' events.
func TestChromeExportBalanced(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("parallelize", String("approach", "heterogeneous"))
	for i := 0; i < 3; i++ {
		sp := tr.Start("ilp-solve", Int("region", i))
		sp.SetAttr(Int("nodes", 100*i))
		time.Sleep(time.Millisecond)
		sp.End()
	}
	root.End()
	open := tr.Start("simulate") // deliberately left open
	_ = open
	tr.Slice("core0 ARM-100", "task", 0, 1500)
	tr.Slice("core1 ARM-250", "chunk", 200, 900)
	tr.Slice("bus", "bus", 100, 180)

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}

	type track struct{ pid, tid int }
	depth := map[track]int{}
	lastTS := map[track]float64{}
	var begins, ends, slices int
	for _, ev := range out.TraceEvents {
		k := track{ev.PID, ev.TID}
		switch ev.Ph {
		case "B":
			begins++
			depth[k]++
		case "E":
			ends++
			depth[k]--
			if depth[k] < 0 {
				t.Fatalf("unbalanced: 'E' for %q with no open span", ev.Name)
			}
		case "X":
			slices++
			if ev.Dur <= 0 {
				t.Errorf("slice %q has non-positive duration %v", ev.Name, ev.Dur)
			}
		case "M":
			continue
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
		if ev.TS < lastTS[k] {
			t.Errorf("timestamps regress on pid=%d tid=%d: %v after %v", ev.PID, ev.TID, ev.TS, lastTS[k])
		}
		lastTS[k] = ev.TS
	}
	if begins != 5 || ends != 5 {
		t.Errorf("begin/end events = %d/%d, want 5/5 (open span must be auto-closed)", begins, ends)
	}
	for k, d := range depth {
		if d != 0 {
			t.Errorf("track %+v left %d spans open", k, d)
		}
	}
	if slices != 3 {
		t.Errorf("occupancy slices = %d, want 3", slices)
	}
	// Attribute round trip.
	found := false
	for _, ev := range out.TraceEvents {
		if ev.Ph == "B" && ev.Name == "ilp-solve" {
			if _, ok := ev.Args["nodes"]; ok {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("SetAttr attributes lost in export")
	}
}

func TestWriteChromeFile(t *testing.T) {
	tr := NewTracer()
	tr.Start("phase").End()
	path := t.TempDir() + "/trace.json"
	if err := tr.WriteChromeFile(path); err != nil {
		t.Fatalf("WriteChromeFile: %v", err)
	}
}
