package obs

import (
	"sort"
	"strings"
	"sync"
)

// Labeled metric families: a CounterVec / GaugeVec / HistogramVec is
// one named family whose children are addressed by a small set of
// label values. Label names are canonicalized to sorted order at
// family creation (the "sorted-label-set key"), so two call sites
// declaring the same labels in different orders address the same
// children. Like every obs type, all methods are safe on a nil
// receiver and from concurrent goroutines.

// vecCore is the shared child table of the three vec kinds.
type vecCore struct {
	name string
	// names are the label names in sorted order; perm maps a declared
	// argument position to its slot in the sorted order.
	names []string
	perm  []int

	mu   sync.RWMutex
	vals map[string][]string // child key -> sorted label values
}

// init canonicalizes the declared label names in place (in place so
// the embedded mutex is never copied).
func (c *vecCore) init(name string, labelNames []string) {
	type slot struct {
		name string
		pos  int
	}
	slots := make([]slot, len(labelNames))
	for i, n := range labelNames {
		slots[i] = slot{n, i}
	}
	sort.SliceStable(slots, func(i, j int) bool { return slots[i].name < slots[j].name })
	c.name = name
	c.names = make([]string, len(slots))
	c.perm = make([]int, len(slots))
	c.vals = map[string][]string{}
	for sortedPos, s := range slots {
		c.names[sortedPos] = s.name
		c.perm[s.pos] = sortedPos
	}
}

// childKeySep separates label values inside a child key; it cannot
// appear in well-formed metric label values.
const childKeySep = "\x1f"

// childKey reorders the declared-order values into sorted-label order
// and joins them. Missing values read as ""; extras are dropped, so a
// mismatched call never panics (telemetry must not take the pipeline
// down).
func (c *vecCore) childKey(values []string) (string, []string) {
	sorted := make([]string, len(c.names))
	for i, v := range values {
		if i >= len(c.perm) {
			break
		}
		sorted[c.perm[i]] = v
	}
	return strings.Join(sorted, childKeySep), sorted
}

// LabelNames returns the family's label names in canonical (sorted)
// order.
func (c *vecCore) labelNames() []string {
	out := make([]string, len(c.names))
	copy(out, c.names)
	return out
}

// display renders "name{a="x",b="y"}" for tables.
func (c *vecCore) displayName(sortedVals []string) string {
	var sb strings.Builder
	sb.WriteString(c.name)
	sb.WriteByte('{')
	for i, n := range c.names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(sortedVals[i])
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// sortedChildKeys returns the child keys in deterministic order;
// caller must hold (at least) the read lock.
func (c *vecCore) sortedChildKeys() []string {
	keys := make([]string, 0, len(c.vals))
	for k := range c.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CounterVec is a labeled counter family.
type CounterVec struct {
	vecCore
	childMap map[string]*Counter
}

// With returns (creating on first use) the child counter for the label
// values, given in the family's declared label order.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	key, sorted := v.childKey(values)
	v.mu.RLock()
	c := v.childMap[key]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.childMap[key]; c == nil {
		c = &Counter{}
		v.childMap[key] = c
		v.vals[key] = sorted
	}
	return c
}

// LabelNames returns the canonical (sorted) label names.
func (v *CounterVec) LabelNames() []string {
	if v == nil {
		return nil
	}
	return v.labelNames()
}

type counterChild struct {
	display string
	values  []string
	counter *Counter
}

// children snapshots the family in deterministic label order.
func (v *CounterVec) children() []counterChild {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]counterChild, 0, len(v.childMap))
	for _, k := range v.sortedChildKeys() {
		out = append(out, counterChild{v.displayName(v.vals[k]), v.vals[k], v.childMap[k]})
	}
	return out
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct {
	vecCore
	childMap map[string]*Gauge
}

// With returns (creating on first use) the child gauge for the label
// values, given in the family's declared label order.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	key, sorted := v.childKey(values)
	v.mu.RLock()
	g := v.childMap[key]
	v.mu.RUnlock()
	if g != nil {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g = v.childMap[key]; g == nil {
		g = &Gauge{}
		v.childMap[key] = g
		v.vals[key] = sorted
	}
	return g
}

// LabelNames returns the canonical (sorted) label names.
func (v *GaugeVec) LabelNames() []string {
	if v == nil {
		return nil
	}
	return v.labelNames()
}

type gaugeChild struct {
	display string
	values  []string
	gauge   *Gauge
}

// children snapshots the family in deterministic label order.
func (v *GaugeVec) children() []gaugeChild {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]gaugeChild, 0, len(v.childMap))
	for _, k := range v.sortedChildKeys() {
		out = append(out, gaugeChild{v.displayName(v.vals[k]), v.vals[k], v.childMap[k]})
	}
	return out
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct {
	vecCore
	childMap map[string]*Histogram
}

// With returns (creating on first use) the child histogram for the
// label values, given in the family's declared label order.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	key, sorted := v.childKey(values)
	v.mu.RLock()
	h := v.childMap[key]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h = v.childMap[key]; h == nil {
		h = &Histogram{}
		v.childMap[key] = h
		v.vals[key] = sorted
	}
	return h
}

// LabelNames returns the canonical (sorted) label names.
func (v *HistogramVec) LabelNames() []string {
	if v == nil {
		return nil
	}
	return v.labelNames()
}

type histChild struct {
	display string
	values  []string
	hist    *Histogram
}

// children snapshots the family in deterministic label order.
func (v *HistogramVec) children() []histChild {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]histChild, 0, len(v.childMap))
	for _, k := range v.sortedChildKeys() {
		out = append(out, histChild{v.displayName(v.vals[k]), v.vals[k], v.childMap[k]})
	}
	return out
}

// CounterVec returns (creating on first use) the named labeled counter
// family. The label names are canonicalized to sorted order; a family
// keeps the label set of its first creation.
func (r *Registry) CounterVec(name string, labelNames ...string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.counterVecs[name]
	if !ok {
		v = &CounterVec{childMap: map[string]*Counter{}}
		v.init(name, labelNames)
		r.counterVecs[name] = v
	}
	return v
}

// GaugeVec returns (creating on first use) the named labeled gauge
// family.
func (r *Registry) GaugeVec(name string, labelNames ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.gaugeVecs[name]
	if !ok {
		v = &GaugeVec{childMap: map[string]*Gauge{}}
		v.init(name, labelNames)
		r.gaugeVecs[name] = v
	}
	return v
}

// HistogramVec returns (creating on first use) the named labeled
// histogram family.
func (r *Registry) HistogramVec(name string, labelNames ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.histVecs[name]
	if !ok {
		v = &HistogramVec{childMap: map[string]*Histogram{}}
		v.init(name, labelNames)
		r.histVecs[name] = v
	}
	return v
}
