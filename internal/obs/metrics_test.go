package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsFreeNoOp(t *testing.T) {
	var r *Registry
	r.Counter("a").Add(3)
	r.Counter("a").Inc()
	r.Gauge("b").Set(1.5)
	r.Gauge("b").Max(2.5)
	r.Histogram("c").Observe(time.Millisecond)
	if r.Counter("a").Value() != 0 || r.Gauge("b").Value() != 0 || r.Histogram("c").Count() != 0 {
		t.Errorf("nil registry accumulated values")
	}
	if r.RenderTable() != "" {
		t.Errorf("nil registry rendered a table")
	}
}

func TestMetricsBasics(t *testing.T) {
	r := NewRegistry()
	r.Counter("ilp.solves").Add(2)
	r.Counter("ilp.solves").Inc()
	if got := r.Counter("ilp.solves").Value(); got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}
	r.Gauge("gap.max").Max(0.01)
	r.Gauge("gap.max").Max(0.5)
	r.Gauge("gap.max").Max(0.2)
	if got := r.Gauge("gap.max").Value(); got != 0.5 {
		t.Errorf("gauge max = %g, want 0.5", got)
	}
	h := r.Histogram("solve.time")
	h.Observe(2 * time.Millisecond)
	h.Observe(40 * time.Millisecond)
	if h.Count() != 2 {
		t.Errorf("hist count = %d, want 2", h.Count())
	}
	if h.Sum() != 42*time.Millisecond {
		t.Errorf("hist sum = %v, want 42ms", h.Sum())
	}
	if h.Mean() != 21*time.Millisecond {
		t.Errorf("hist mean = %v, want 21ms", h.Mean())
	}
	table := r.RenderTable()
	for _, want := range []string{"ilp.solves", "gap.max", "solve.time", "count=2"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines;
// run under -race (the make check target does) to verify the
// concurrency-safety contract.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("shared.counter").Inc()
				r.Counter("shared.counter2").Add(2)
				r.Gauge("shared.gauge").Set(float64(i))
				r.Gauge("shared.max").Max(float64(w*perWorker + i))
				r.Histogram("shared.hist").Observe(time.Duration(i) * time.Microsecond)
				if i%100 == 0 {
					_ = r.RenderTable()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared.counter").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Counter("shared.counter2").Value(); got != 2*workers*perWorker {
		t.Errorf("counter2 = %d, want %d", got, 2*workers*perWorker)
	}
	if got := r.Gauge("shared.max").Value(); got != workers*perWorker-1 {
		t.Errorf("gauge max = %g, want %d", got, workers*perWorker-1)
	}
	if got := r.Histogram("shared.hist").Count(); got != workers*perWorker {
		t.Errorf("hist count = %d, want %d", got, workers*perWorker)
	}
}

// TestTracerConcurrentSlices verifies Slice and span recording are safe
// from concurrent goroutines (occupancy export happens while metrics
// are still being written in future pipelined flows).
func TestTracerConcurrentSlices(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Slice("core", "seg", float64(i), float64(i+1))
			}
		}(w)
	}
	wg.Wait()
	if got := tr.NumSlices(); got != 8*200 {
		t.Errorf("slices = %d, want %d", got, 8*200)
	}
}

// TestHistogramMinMax covers the exported extrema accessors, including
// the empty-histogram and nil-receiver cases.
func TestHistogramMinMax(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t.minmax")
	if h.Min() != 0 || h.Max() != 0 {
		t.Errorf("empty histogram extrema = %v/%v, want 0/0", h.Min(), h.Max())
	}
	h.Observe(5 * time.Millisecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(9 * time.Millisecond)
	if got := h.Min(); got != 2*time.Millisecond {
		t.Errorf("min = %v, want 2ms", got)
	}
	if got := h.Max(); got != 9*time.Millisecond {
		t.Errorf("max = %v, want 9ms", got)
	}
	var nilH *Histogram
	if nilH.Min() != 0 || nilH.Max() != 0 {
		t.Errorf("nil histogram extrema = %v/%v, want 0/0", nilH.Min(), nilH.Max())
	}
}
