package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CheckPromText validates a Prometheus text-exposition 0.0.4 document
// of the shape WritePrometheus produces. It is a test aid — a tiny
// structural checker, not a full parser — so smoke tests can assert a
// live /metrics scrape is well-formed without an external client
// library. Checked per line:
//
//   - comments are "# TYPE <name> <kind>" or "# HELP ..." only;
//   - every sample's family has a preceding # TYPE line (the renderer
//     always declares before emitting);
//   - metric and label names match the Prometheus grammar, label
//     values use only the \\, \n and \" escapes, and the sample value
//     parses as a float (+Inf/NaN included).
//
// Histogram samples may use the _bucket/_sum/_count suffixes of their
// declared family name.
func CheckPromText(r io.Reader) error {
	types := map[string]string{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	ln := 0
	for sc.Scan() {
		ln++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "HELP" {
				continue
			}
			if len(fields) != 4 || fields[1] != "TYPE" {
				return fmt.Errorf("line %d: malformed comment %q", ln, line)
			}
			name, kind := fields[2], fields[3]
			if !validMetricName(name) {
				return fmt.Errorf("line %d: invalid metric name %q", ln, name)
			}
			switch kind {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown metric type %q", ln, kind)
			}
			if prev, ok := types[name]; ok && prev != kind {
				return fmt.Errorf("line %d: family %s redeclared as %s (was %s)", ln, name, kind, prev)
			}
			types[name] = kind
			continue
		}
		name, rest, err := splitPromSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", ln, err)
		}
		if !validMetricName(name) {
			return fmt.Errorf("line %d: invalid metric name %q", ln, name)
		}
		if _, err := strconv.ParseFloat(rest, 64); err != nil {
			return fmt.Errorf("line %d: sample value %q is not a float", ln, rest)
		}
		if familyOf(name, types) == "" {
			return fmt.Errorf("line %d: sample %s has no preceding # TYPE line", ln, name)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(types) == 0 {
		return fmt.Errorf("no metric families found")
	}
	return nil
}

// splitPromSample splits "name{labels} value" (label block optional)
// into the metric name and the value text, validating the label block.
func splitPromSample(line string) (name, value string, err error) {
	brace := strings.IndexByte(line, '{')
	if brace < 0 {
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			return "", "", fmt.Errorf("sample %q has no value", line)
		}
		return line[:sp], strings.TrimSpace(line[sp+1:]), nil
	}
	name = line[:brace]
	rest := line[brace+1:]
	// Walk the label block respecting \" escapes inside values.
	for rest != "" && rest[0] != '}' {
		eq := strings.IndexByte(rest, '=')
		if eq <= 0 || !validLabelName(rest[:eq]) {
			return "", "", fmt.Errorf("bad label name in %q", line)
		}
		rest = rest[eq+1:]
		if rest == "" || rest[0] != '"' {
			return "", "", fmt.Errorf("unquoted label value in %q", line)
		}
		i := 1
		for i < len(rest) {
			if rest[i] == '\\' {
				if i+1 >= len(rest) {
					return "", "", fmt.Errorf("dangling escape in %q", line)
				}
				switch rest[i+1] {
				case '\\', 'n', '"':
				default:
					return "", "", fmt.Errorf("invalid escape \\%c in %q", rest[i+1], line)
				}
				i += 2
				continue
			}
			if rest[i] == '"' {
				break
			}
			i++
		}
		if i >= len(rest) {
			return "", "", fmt.Errorf("unterminated label value in %q", line)
		}
		rest = rest[i+1:]
		if rest != "" && rest[0] == ',' {
			rest = rest[1:]
		}
	}
	if rest == "" {
		return "", "", fmt.Errorf("unterminated label block in %q", line)
	}
	rest = rest[1:] // consume '}'
	if rest == "" || rest[0] != ' ' {
		return "", "", fmt.Errorf("missing value after labels in %q", line)
	}
	return name, strings.TrimSpace(rest), nil
}

// familyOf resolves a sample name to its declared family, accepting
// histogram component suffixes.
func familyOf(name string, types map[string]string) string {
	if _, ok := types[name]; ok {
		return name
	}
	for _, suf := range [...]string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return ""
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
