package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format (0.0.4) export of a Registry.
//
// Internal metric names follow the `<layer>.<name>` scheme
// ("ilp.solve_time", "core.region_pool.busy"); the exporter maps each
// onto `heteropar_<layer>_<name>` — every non-[a-zA-Z0-9_] byte becomes
// an underscore — so the scrape surface reads
// `heteropar_ilp_solves`, `heteropar_core_region_solve_time_seconds`
// and so on. Histograms are exported in seconds (the Prometheus base
// unit) with a `_seconds` suffix, cumulative `_bucket{le="..."}`
// series, `_sum` and `_count`. Output is sorted by exported family
// name, then label values, so equal registry contents render
// byte-identically.

// promNamePrefix is the exported-metric namespace.
const promNamePrefix = "heteropar_"

// PromName maps an internal metric name onto its exported Prometheus
// family name (without histogram unit suffixes).
func PromName(name string) string {
	var sb strings.Builder
	sb.WriteString(promNamePrefix)
	for i := 0; i < len(name); i++ {
		b := name[i]
		switch {
		case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b == '_':
			sb.WriteByte(b)
		case b >= '0' && b <= '9':
			sb.WriteByte(b)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// promEscape escapes a label value per the text format.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// promFloat renders a sample value.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promLabels renders {a="x",b="y"} (empty string for no labels).
func promLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `%s="%s"`, PromName(n)[len(promNamePrefix):], promEscape(values[i]))
	}
	sb.WriteByte('}')
	return sb.String()
}

// promHist writes one histogram child as cumulative buckets in
// seconds, plus sum and count. extra holds the child's own labels.
func promHist(w io.Writer, family string, names, values []string, h *Histogram) {
	s := h.Snapshot()
	var cum int64
	base := promLabels(names, values)
	// Merge the le label into the child's label set.
	leLabel := func(le string) string {
		if base == "" {
			return `{le="` + le + `"}`
		}
		return base[:len(base)-1] + `,le="` + le + `"}`
	}
	bounds := HistogramBounds()
	for i, n := range s.Buckets {
		cum += n
		le := "+Inf"
		if i < len(bounds) {
			le = promFloat(bounds[i].Seconds())
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", family, leLabel(le), cum)
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", family, base, promFloat(s.Sum.Seconds()))
	fmt.Fprintf(w, "%s_count%s %d\n", family, base, s.Count)
}

// promFamily is one exported family with all of its samples.
type promFamily struct {
	name string
	typ  string
	emit func(w io.Writer)
}

// WritePrometheus renders every metric in the registry in Prometheus
// text format 0.0.4. Safe to call concurrently with writers; a nil
// registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var fams []promFamily

	r.mu.Lock()
	for _, n := range sortedKeys(r.counters) {
		name, c := PromName(n), r.counters[n]
		fams = append(fams, promFamily{name, "counter", func(w io.Writer) {
			fmt.Fprintf(w, "%s %d\n", name, c.Value())
		}})
	}
	for _, n := range sortedKeys(r.counterVecs) {
		v := r.counterVecs[n]
		name, children := PromName(n), v.children()
		labels := v.LabelNames()
		fams = append(fams, promFamily{name, "counter", func(w io.Writer) {
			for _, ch := range children {
				fmt.Fprintf(w, "%s%s %d\n", name, promLabels(labels, ch.values), ch.counter.Value())
			}
		}})
	}
	for _, n := range sortedKeys(r.gauges) {
		name, g := PromName(n), r.gauges[n]
		fams = append(fams, promFamily{name, "gauge", func(w io.Writer) {
			fmt.Fprintf(w, "%s %s\n", name, promFloat(g.Value()))
		}})
	}
	for _, n := range sortedKeys(r.gaugeVecs) {
		v := r.gaugeVecs[n]
		name, children := PromName(n), v.children()
		labels := v.LabelNames()
		fams = append(fams, promFamily{name, "gauge", func(w io.Writer) {
			for _, ch := range children {
				fmt.Fprintf(w, "%s%s %s\n", name, promLabels(labels, ch.values), promFloat(ch.gauge.Value()))
			}
		}})
	}
	for _, n := range sortedKeys(r.hists) {
		name, h := histPromName(n), r.hists[n]
		fams = append(fams, promFamily{name, "histogram", func(w io.Writer) {
			promHist(w, name, nil, nil, h)
		}})
	}
	for _, n := range sortedKeys(r.histVecs) {
		v := r.histVecs[n]
		name, children := histPromName(n), v.children()
		labels := v.LabelNames()
		fams = append(fams, promFamily{name, "histogram", func(w io.Writer) {
			for _, ch := range children {
				promHist(w, name, labels, ch.values, ch.hist)
			}
		}})
	}
	r.mu.Unlock()

	sort.SliceStable(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		f.emit(w)
	}
	return nil
}

// histPromName appends the _seconds unit suffix (histograms export
// durations in the Prometheus base unit).
func histPromName(n string) string {
	name := PromName(n)
	if !strings.HasSuffix(name, "_seconds") {
		name += "_seconds"
	}
	return name
}
