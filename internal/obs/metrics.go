package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric. All methods are
// safe on a nil receiver and from concurrent goroutines.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float metric.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Max raises the gauge to v when v exceeds the stored value.
func (g *Gauge) Max(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets are the duration histogram upper bounds.
var histBuckets = [...]time.Duration{
	10 * time.Microsecond,
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
	10 * time.Second,
	// implicit +Inf bucket
}

// Histogram is a fixed-bucket duration histogram (exponential bounds
// from 10µs to 10s plus overflow), tracking count, sum, min and max.
type Histogram struct {
	buckets [len(histBuckets) + 1]atomic.Int64
	count   atomic.Int64
	sumNs   atomic.Int64
	minNs   atomic.Int64 // valid when count > 0
	maxNs   atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := d.Nanoseconds()
	i := 0
	for ; i < len(histBuckets); i++ {
		if d <= histBuckets[i] {
			break
		}
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(ns)
	for {
		old := h.minNs.Load()
		if old <= ns {
			break
		}
		if h.minNs.CompareAndSwap(old, ns) {
			break
		}
	}
	for {
		old := h.maxNs.Load()
		if old >= ns {
			break
		}
		if h.maxNs.CompareAndSwap(old, ns) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sumNs.Load())
}

// Mean returns the average observed duration.
func (h *Histogram) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNs.Load() / n)
}

// Min returns the smallest observed duration (0 when empty).
func (h *Histogram) Min() time.Duration {
	if h.Count() == 0 {
		return 0
	}
	return time.Duration(h.minNs.Load())
}

// Max returns the largest observed duration (0 when empty).
func (h *Histogram) Max() time.Duration {
	if h.Count() == 0 {
		return 0
	}
	return time.Duration(h.maxNs.Load())
}

// Registry is a concurrency-safe collection of named metrics. A nil
// *Registry hands out nil metrics whose methods all no-op, so
// instrumented code needs no enabled/disabled branches.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns (creating on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating on first use) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		h.minNs.Store(math.MaxInt64)
		r.hists[name] = h
	}
	return h
}

// RenderTable prints every metric as an aligned human-readable table,
// sorted by name within each metric family.
func (r *Registry) RenderTable() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	counterNames := sortedKeys(r.counters)
	gaugeNames := sortedKeys(r.gauges)
	histNames := sortedKeys(r.hists)
	r.mu.Unlock()

	var sb strings.Builder
	fmt.Fprintf(&sb, "%-32s %14s\n", "metric", "value")
	sb.WriteString(strings.Repeat("-", 47) + "\n")
	for _, n := range counterNames {
		fmt.Fprintf(&sb, "%-32s %14d\n", n, r.Counter(n).Value())
	}
	for _, n := range gaugeNames {
		fmt.Fprintf(&sb, "%-32s %14.4g\n", n, r.Gauge(n).Value())
	}
	for _, n := range histNames {
		h := r.Histogram(n)
		if h.Count() == 0 {
			fmt.Fprintf(&sb, "%-32s %14s\n", n, "(empty)")
			continue
		}
		fmt.Fprintf(&sb, "%-32s count=%d sum=%s mean=%s min=%s max=%s\n",
			n, h.Count(),
			h.Sum().Round(time.Microsecond),
			h.Mean().Round(time.Microsecond),
			h.Min().Round(time.Microsecond),
			h.Max().Round(time.Microsecond))
	}
	return sb.String()
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
