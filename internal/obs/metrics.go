package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric. All methods are
// safe on a nil receiver and from concurrent goroutines.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float metric.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta (occupancy-style up/down counting).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Max raises the gauge to v when v exceeds the stored value.
func (g *Gauge) Max(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets are the latency histogram upper bounds: a 1-2-5
// logarithmic series from 1µs to 10s (plus the implicit +Inf overflow
// bucket), fine enough that interpolated quantiles stay within a small
// factor of the true order statistic at every scale the pipeline spans
// (microsecond cache hits to multi-second cold ILP solves).
var histBuckets = [...]time.Duration{
	1 * time.Microsecond, 2 * time.Microsecond, 5 * time.Microsecond,
	10 * time.Microsecond, 20 * time.Microsecond, 50 * time.Microsecond,
	100 * time.Microsecond, 200 * time.Microsecond, 500 * time.Microsecond,
	1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second, 2 * time.Second, 5 * time.Second,
	10 * time.Second,
	// implicit +Inf bucket
}

// NumHistogramBuckets is the bucket count including the +Inf overflow.
const NumHistogramBuckets = len(histBuckets) + 1

// HistogramBounds returns the bucket upper bounds (excluding +Inf).
func HistogramBounds() []time.Duration {
	out := make([]time.Duration, len(histBuckets))
	copy(out, histBuckets[:])
	return out
}

// Histogram is a log-bucketed (1-2-5 series, 1µs..10s plus overflow)
// duration histogram tracking count, sum, min, max and interpolated
// quantiles. The zero value is ready to use; all methods are safe on a
// nil receiver and from concurrent goroutines, including Snapshot while
// writers are active.
type Histogram struct {
	buckets [NumHistogramBuckets]atomic.Int64
	count   atomic.Int64
	sumNs   atomic.Int64
	// minNs1 stores min+1 so the zero value means "no observation yet";
	// it is written before count so a reader that sees count > 0 always
	// sees an initialized minimum.
	minNs1 atomic.Int64
	maxNs  atomic.Int64
}

// bucketIndex returns the bucket an observation of d falls into.
func bucketIndex(d time.Duration) int {
	i := 0
	for ; i < len(histBuckets); i++ {
		if d <= histBuckets[i] {
			break
		}
	}
	return i
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	for {
		old := h.minNs1.Load()
		if old != 0 && old <= ns+1 {
			break
		}
		if h.minNs1.CompareAndSwap(old, ns+1) {
			break
		}
	}
	for {
		old := h.maxNs.Load()
		if old >= ns {
			break
		}
		if h.maxNs.CompareAndSwap(old, ns) {
			break
		}
	}
	h.buckets[bucketIndex(d)].Add(1)
	h.sumNs.Add(ns)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sumNs.Load())
}

// Mean returns the average observed duration.
func (h *Histogram) Mean() time.Duration {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNs.Load() / n)
}

// Min returns the smallest observed duration (0 when empty).
func (h *Histogram) Min() time.Duration {
	if h == nil {
		return 0
	}
	if h.count.Load() == 0 {
		return 0
	}
	if v := h.minNs1.Load(); v > 0 {
		return time.Duration(v - 1)
	}
	return 0
}

// Max returns the largest observed duration (0 when empty).
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	if h.count.Load() == 0 {
		return 0
	}
	return time.Duration(h.maxNs.Load())
}

// Quantile returns the interpolated q-quantile (q in [0,1]) of the
// observations, estimated from the log-bucket counts: within the
// bucket holding the rank it interpolates linearly between the bucket
// bounds, clamped to the observed min/max. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	return h.Snapshot().Quantile(q)
}

// HistogramSnapshot is a point-in-time copy of a histogram, safe to
// take while writers are active (bucket counts, count and sum are read
// independently, so a snapshot racing an Observe may be off by that
// single in-flight observation — never torn beyond it).
type HistogramSnapshot struct {
	// Count, Sum, Min, Max mirror the accessor values at snapshot time.
	Count         int64
	Sum, Min, Max time.Duration
	// Buckets holds per-bucket (non-cumulative) observation counts; the
	// last entry is the +Inf overflow bucket.
	Buckets [NumHistogramBuckets]int64
	// P50, P90 and P99 are the precomputed latency percentiles.
	P50, P90, P99 time.Duration
}

// Snapshot copies the histogram state and computes P50/P90/P99. Safe
// to call concurrently with Observe.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	// Read count first: the per-bucket loads happen after, so their sum
	// is >= s.Count and quantile ranks (computed from s.Count) always
	// resolve to a bucket.
	s.Count = h.count.Load()
	s.Sum = time.Duration(h.sumNs.Load())
	if v := h.minNs1.Load(); v > 0 && s.Count > 0 {
		s.Min = time.Duration(v - 1)
	}
	if s.Count > 0 {
		s.Max = time.Duration(h.maxNs.Load())
	}
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.P50 = s.Quantile(0.50)
	s.P90 = s.Quantile(0.90)
	s.P99 = s.Quantile(0.99)
	return s
}

// Quantile interpolates the q-quantile from the snapshot's buckets.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		cum += n
		if cum < rank {
			continue
		}
		lo := time.Duration(0)
		if i > 0 {
			lo = histBuckets[i-1]
		}
		hi := s.Max
		if i < len(histBuckets) && histBuckets[i] < hi {
			hi = histBuckets[i]
		}
		if lo < s.Min {
			lo = s.Min
		}
		if hi < lo {
			hi = lo
		}
		// Position of the rank within this bucket, interpolated linearly.
		pos := float64(rank-(cum-n)) / float64(n)
		v := lo + time.Duration(pos*float64(hi-lo))
		if v > s.Max {
			v = s.Max
		}
		return v
	}
	return s.Max
}

// Registry is a concurrency-safe collection of named metrics and
// labeled metric families. A nil *Registry hands out nil metrics whose
// methods all no-op, so instrumented code needs no enabled/disabled
// branches.
type Registry struct {
	mu          sync.Mutex
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	hists       map[string]*Histogram
	counterVecs map[string]*CounterVec
	gaugeVecs   map[string]*GaugeVec
	histVecs    map[string]*HistogramVec
}

// NewRegistry creates an enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:    map[string]*Counter{},
		gauges:      map[string]*Gauge{},
		hists:       map[string]*Histogram{},
		counterVecs: map[string]*CounterVec{},
		gaugeVecs:   map[string]*GaugeVec{},
		histVecs:    map[string]*HistogramVec{},
	}
}

// Counter returns (creating on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating on first use) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// histLine renders the human-readable summary of one histogram.
func histLine(h *Histogram) string {
	s := h.Snapshot()
	if s.Count == 0 {
		return "(empty)"
	}
	return fmt.Sprintf("count=%d sum=%s mean=%s min=%s max=%s p50=%s p90=%s p99=%s",
		s.Count,
		s.Sum.Round(time.Microsecond),
		time.Duration(int64(s.Sum)/s.Count).Round(time.Microsecond),
		s.Min.Round(time.Microsecond),
		s.Max.Round(time.Microsecond),
		s.P50.Round(time.Microsecond),
		s.P90.Round(time.Microsecond),
		s.P99.Round(time.Microsecond))
}

// RenderTable prints every metric — plain and labeled — as an aligned
// human-readable table, sorted by name (then label values) within each
// metric family.
func (r *Registry) RenderTable() string {
	if r == nil {
		return ""
	}
	type row struct{ name, val string }
	var counterRows, gaugeRows, histRows []row

	r.mu.Lock()
	for _, n := range sortedKeys(r.counters) {
		counterRows = append(counterRows, row{n, fmt.Sprintf("%14d", r.counters[n].Value())})
	}
	for _, n := range sortedKeys(r.counterVecs) {
		for _, ch := range r.counterVecs[n].children() {
			counterRows = append(counterRows, row{ch.display, fmt.Sprintf("%14d", ch.counter.Value())})
		}
	}
	for _, n := range sortedKeys(r.gauges) {
		gaugeRows = append(gaugeRows, row{n, fmt.Sprintf("%14.4g", r.gauges[n].Value())})
	}
	for _, n := range sortedKeys(r.gaugeVecs) {
		for _, ch := range r.gaugeVecs[n].children() {
			gaugeRows = append(gaugeRows, row{ch.display, fmt.Sprintf("%14.4g", ch.gauge.Value())})
		}
	}
	for _, n := range sortedKeys(r.hists) {
		histRows = append(histRows, row{n, histLine(r.hists[n])})
	}
	for _, n := range sortedKeys(r.histVecs) {
		for _, ch := range r.histVecs[n].children() {
			histRows = append(histRows, row{ch.display, histLine(ch.hist)})
		}
	}
	r.mu.Unlock()

	var sb strings.Builder
	fmt.Fprintf(&sb, "%-32s %14s\n", "metric", "value")
	sb.WriteString(strings.Repeat("-", 47) + "\n")
	for _, rows := range [][]row{counterRows, gaugeRows, histRows} {
		for _, rw := range rows {
			fmt.Fprintf(&sb, "%-32s %s\n", rw.name, strings.TrimRight(rw.val, " "))
		}
	}
	return sb.String()
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
