package obs

import (
	"io"
	"testing"
	"time"
)

// The obs benchmarks quantify the cost instrumented hot paths pay:
// one histogram observation, one labeled-child lookup, and the cost of
// a concurrent-safe snapshot / render. They back the benchjson "obs"
// suite gated by make bench-check.

func BenchmarkHistogramObserve(b *testing.B) {
	h := &Histogram{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i%1000) * time.Microsecond)
	}
}

func BenchmarkHistogramObserveNil(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Microsecond)
	}
}

func BenchmarkVecWith(b *testing.B) {
	r := NewRegistry()
	v := r.CounterVec("bench.ops", "model", "source")
	models := [3]string{"tasks", "chunks", "pipeline"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.With(models[i%3], "computed").Inc()
	}
}

func BenchmarkHistogramSnapshot(b *testing.B) {
	h := &Histogram{}
	for i := 0; i < 10000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := h.Snapshot()
		if s.Count == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	for _, n := range [...]string{"ilp.solves", "ilp.bb_nodes", "solstore.hits"} {
		r.Counter(n).Add(42)
	}
	v := r.HistogramVec("core.region.solve_time", "model")
	for i := 0; i < 1000; i++ {
		v.With("tasks").Observe(time.Duration(i) * time.Microsecond)
		v.With("chunks").Observe(time.Duration(i) * time.Millisecond)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
