// Package interp is a reference interpreter for checked mini-C programs.
//
// It serves three purposes in the parallelization tool flow:
//
//  1. Profiling: it counts how often every statement executes, supplying the
//     iteration counts the Augmented Hierarchical Task Graph is annotated
//     with (the paper extracts these "by target platform simulation").
//  2. Validation: benchmark programs carry golden output checksums; the test
//     suite verifies the interpreter reproduces them, and that replaying an
//     extracted parallel schedule leaves the semantics unchanged.
//  3. Workload generation: benchmark inputs are initialized by mini-C code
//     itself, so no external data files are needed.
package interp

import (
	"fmt"
	"math"

	"repro/internal/minic"
)

// Value is a runtime value: a scalar or an array reference. Arrays are
// passed by reference, matching C semantics for array parameters.
type Value struct {
	Type minic.Type
	// I holds int scalars, F float scalars.
	I int64
	F float64
	// Arr backs array values; shared between caller and callee.
	Arr []float64 // ints stored as exact float64 when array base is Int? no:
	// IntArr backs int arrays, Arr backs float arrays. Exactly one is
	// non-nil for array values.
	IntArr []int64
	// Root identifies the variable that owns the backing store: the
	// declaring symbol for globals and locals, propagated unchanged through
	// parameter binding so footprints attribute callee accesses to the
	// caller's array. RootOff is the flat element offset of this view into
	// the root's store (nonzero for row views).
	Root    *minic.Symbol
	RootOff int
}

func (v Value) isFloat() bool { return v.Type.Base == minic.Float }

// AsFloat returns the scalar as float64 (converting ints).
func (v Value) AsFloat() float64 {
	if v.isFloat() {
		return v.F
	}
	return float64(v.I)
}

// AsInt returns the scalar as int64 (truncating floats, as C does).
func (v Value) AsInt() int64 {
	if v.isFloat() {
		return int64(v.F)
	}
	return v.I
}

func intVal(i int64) Value { return Value{Type: minic.ScalarType(minic.Int), I: i} }
func floatVal(f float64) Value {
	return Value{Type: minic.ScalarType(minic.Float), F: f}
}

// RuntimeError is an error raised during interpretation (e.g. out-of-bounds
// access or division by zero), with the source position of the offending
// expression.
type RuntimeError struct {
	Pos minic.Pos
	Msg string
}

// Error implements the error interface.
func (e *RuntimeError) Error() string { return fmt.Sprintf("runtime error at %s: %s", e.Pos, e.Msg) }

func rterrf(pos minic.Pos, format string, args ...any) *RuntimeError {
	return &RuntimeError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Profile records dynamic execution counts.
type Profile struct {
	// StmtCount maps each executed statement node to the number of times it
	// ran. Keys are AST node identities.
	StmtCount map[minic.Stmt]int64
	// FuncCount maps each function to its number of invocations.
	FuncCount map[*minic.FuncDecl]int64
	// OpCount is the total number of evaluated expression operations, a
	// coarse work measure used in tests.
	OpCount int64
	// Footprints maps each executed statement to the concrete array
	// elements it touched, including accesses made by functions it called.
	// Only populated when Interp.RecordFootprints is set.
	Footprints map[minic.Stmt]*Footprint
}

// Footprint is the concrete memory footprint of one statement: for every
// array (identified by its root symbol — the declaring global or local, not
// a parameter alias) the set of flat element offsets read and written while
// the statement was on the execution stack.
type Footprint struct {
	Reads  map[*minic.Symbol]map[int]struct{}
	Writes map[*minic.Symbol]map[int]struct{}
}

func newFootprint() *Footprint {
	return &Footprint{
		Reads:  make(map[*minic.Symbol]map[int]struct{}),
		Writes: make(map[*minic.Symbol]map[int]struct{}),
	}
}

func addElem(m map[*minic.Symbol]map[int]struct{}, sym *minic.Symbol, off int) {
	s, ok := m[sym]
	if !ok {
		s = make(map[int]struct{})
		m[sym] = s
	}
	s[off] = struct{}{}
}

// Count returns the execution count of s (0 if never executed).
func (p *Profile) Count(s minic.Stmt) int64 { return p.StmtCount[s] }

// Interp executes a checked program.
type Interp struct {
	prog    *minic.Program
	globals map[*minic.Symbol]*Value
	profile *Profile
	// StepLimit aborts runaway programs (0 = no limit).
	StepLimit int64
	steps     int64
	// RecordFootprints enables per-statement concrete footprint capture
	// (Profile.Footprints). Off by default: it adds a map insert per array
	// element access per active statement.
	RecordFootprints bool
	stmtStack        []minic.Stmt
}

// recordElem attributes one element access on av (at flat offset off within
// the view) to every statement currently executing.
func (in *Interp) recordElem(av *Value, off int, write bool) {
	if in.profile == nil || in.profile.Footprints == nil || av.Root == nil {
		return
	}
	idx := av.RootOff + off
	for _, s := range in.stmtStack {
		fp := in.profile.Footprints[s]
		if fp == nil {
			fp = newFootprint()
			in.profile.Footprints[s] = fp
		}
		if write {
			addElem(fp.Writes, av.Root, idx)
		} else {
			addElem(fp.Reads, av.Root, idx)
		}
	}
}

// New creates an interpreter for prog. The program must have been checked
// (Compile or Check).
func New(prog *minic.Program) *Interp {
	return &Interp{prog: prog, globals: make(map[*minic.Symbol]*Value), StepLimit: 1 << 32}
}

// control models non-sequential control flow during execution.
type control int

const (
	ctrlNone control = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

// frame is one function activation.
type frame struct {
	locals map[*minic.Symbol]*Value
	ret    Value
	hasRet bool
}

// Run executes main() and returns the profile. Globals are (re)initialized
// first, so Run is repeatable.
func (in *Interp) Run() (*Profile, error) {
	main := in.prog.Func("main")
	if main == nil {
		return nil, fmt.Errorf("program has no main function")
	}
	in.profile = &Profile{
		StmtCount: make(map[minic.Stmt]int64),
		FuncCount: make(map[*minic.FuncDecl]int64),
	}
	if in.RecordFootprints {
		in.profile.Footprints = make(map[minic.Stmt]*Footprint)
	}
	in.steps = 0
	in.stmtStack = in.stmtStack[:0]
	in.globals = make(map[*minic.Symbol]*Value)
	for _, g := range in.prog.Globals {
		v, err := in.newVar(g.Type)
		if err != nil {
			return nil, err
		}
		v.Root = g.Sym
		in.globals[g.Sym] = v
		if err := in.initVar(v, g.Type, g.Init, g.List); err != nil {
			return nil, err
		}
	}
	_, err := in.call(main, nil)
	if err != nil {
		return nil, err
	}
	return in.profile, nil
}

// GlobalChecksum folds every global variable's contents into a single
// float64, used as a golden output fingerprint for benchmark validation.
func (in *Interp) GlobalChecksum() float64 {
	sum := 0.0
	k := 1.0
	for _, g := range in.prog.Globals {
		v := in.globals[g.Sym]
		if v == nil {
			continue
		}
		switch {
		case v.IntArr != nil:
			for _, x := range v.IntArr {
				sum += k * float64(x)
				k = nextK(k)
			}
		case v.Arr != nil:
			for _, x := range v.Arr {
				sum += k * x
				k = nextK(k)
			}
		case v.isFloat():
			sum += k * v.F
			k = nextK(k)
		default:
			sum += k * float64(v.I)
			k = nextK(k)
		}
	}
	return sum
}

// GlobalValue returns the current value of the named global variable after
// a Run, or the zero Value if no such global exists.
func (in *Interp) GlobalValue(name string) Value {
	for _, g := range in.prog.Globals {
		if g.Name == name {
			if v := in.globals[g.Sym]; v != nil {
				return *v
			}
		}
	}
	return Value{}
}

// nextK advances the position-dependent multiplier so that permuting the
// global contents changes the checksum; it cycles to avoid overflow.
func nextK(k float64) float64 {
	k *= 1.0009765625 // 1 + 2^-10, exactly representable
	if k > 1e6 {
		k = 1.0
	}
	return k
}

func (in *Interp) newVar(t minic.Type) (*Value, error) {
	v := &Value{Type: t}
	if t.IsArray() {
		if t.Base == minic.Int {
			v.IntArr = make([]int64, t.NumElems())
		} else {
			v.Arr = make([]float64, t.NumElems())
		}
	}
	return v, nil
}

func (in *Interp) initVar(v *Value, t minic.Type, init minic.Expr, list []minic.Expr) error {
	if init != nil {
		x, err := in.eval(init, nil)
		if err != nil {
			return err
		}
		storeScalar(v, x)
		return nil
	}
	for i, e := range list {
		x, err := in.eval(e, nil)
		if err != nil {
			return err
		}
		if v.IntArr != nil {
			v.IntArr[i] = x.AsInt()
		} else {
			v.Arr[i] = x.AsFloat()
		}
	}
	return nil
}

func storeScalar(v *Value, x Value) {
	if v.Type.Base == minic.Float {
		v.F = x.AsFloat()
	} else {
		v.I = x.AsInt()
	}
}

func (in *Interp) call(fn *minic.FuncDecl, args []Value) (Value, error) {
	in.profile.FuncCount[fn]++
	fr := &frame{locals: make(map[*minic.Symbol]*Value)}
	for i := range fn.Params {
		p := &fn.Params[i]
		a := args[i]
		if p.Type.IsArray() {
			// Pass by reference: share the backing store.
			pv := &Value{Type: a.Type, Arr: a.Arr, IntArr: a.IntArr, Root: a.Root, RootOff: a.RootOff}
			fr.locals[p.Sym] = pv
		} else {
			pv := &Value{Type: p.Type}
			storeScalar(pv, a)
			fr.locals[p.Sym] = pv
		}
	}
	ctl, err := in.execBlock(fn.Body, fr)
	if err != nil {
		return Value{}, err
	}
	_ = ctl
	if fn.Result.Base != minic.Void && !fr.hasRet {
		return Value{}, rterrf(fn.Pos, "function %s fell off the end without returning", fn.Name)
	}
	return fr.ret, nil
}

func (in *Interp) tick(pos minic.Pos) error {
	in.steps++
	if in.StepLimit > 0 && in.steps > in.StepLimit {
		return rterrf(pos, "step limit exceeded (infinite loop?)")
	}
	return nil
}

func (in *Interp) execBlock(b *minic.BlockStmt, fr *frame) (control, error) {
	for _, s := range b.Stmts {
		ctl, err := in.exec(s, fr)
		if err != nil {
			return ctrlNone, err
		}
		if ctl != ctrlNone {
			return ctl, nil
		}
	}
	return ctrlNone, nil
}

func (in *Interp) exec(s minic.Stmt, fr *frame) (control, error) {
	in.profile.StmtCount[s]++
	if err := in.tick(s.NodePos()); err != nil {
		return ctrlNone, err
	}
	if in.profile.Footprints != nil {
		in.stmtStack = append(in.stmtStack, s)
		defer func() { in.stmtStack = in.stmtStack[:len(in.stmtStack)-1] }()
	}
	switch st := s.(type) {
	case *minic.DeclStmt:
		v, err := in.newVar(st.Type)
		if err != nil {
			return ctrlNone, err
		}
		v.Root = st.Sym
		fr.locals[st.Sym] = v
		return ctrlNone, in.initVarFr(v, st, fr)
	case *minic.ExprStmt:
		_, err := in.eval(st.X, fr)
		return ctrlNone, err
	case *minic.BlockStmt:
		return in.execBlock(st, fr)
	case *minic.IfStmt:
		c, err := in.eval(st.Cond, fr)
		if err != nil {
			return ctrlNone, err
		}
		if truthy(c) {
			return in.execBlock(st.Then, fr)
		}
		if st.Else != nil {
			return in.exec(st.Else, fr)
		}
		return ctrlNone, nil
	case *minic.ForStmt:
		if st.Init != nil {
			if _, err := in.exec(st.Init, fr); err != nil {
				return ctrlNone, err
			}
		}
		for {
			if st.Cond != nil {
				c, err := in.eval(st.Cond, fr)
				if err != nil {
					return ctrlNone, err
				}
				if !truthy(c) {
					break
				}
			}
			ctl, err := in.execBlock(st.Body, fr)
			if err != nil {
				return ctrlNone, err
			}
			if ctl == ctrlBreak {
				break
			}
			if ctl == ctrlReturn {
				return ctrlReturn, nil
			}
			if st.Post != nil {
				if _, err := in.eval(st.Post, fr); err != nil {
					return ctrlNone, err
				}
			}
			if err := in.tick(st.Pos); err != nil {
				return ctrlNone, err
			}
		}
		return ctrlNone, nil
	case *minic.WhileStmt:
		if st.DoWhile {
			for {
				ctl, err := in.execBlock(st.Body, fr)
				if err != nil {
					return ctrlNone, err
				}
				if ctl == ctrlBreak {
					break
				}
				if ctl == ctrlReturn {
					return ctrlReturn, nil
				}
				c, err := in.eval(st.Cond, fr)
				if err != nil {
					return ctrlNone, err
				}
				if !truthy(c) {
					break
				}
				if err := in.tick(st.Pos); err != nil {
					return ctrlNone, err
				}
			}
			return ctrlNone, nil
		}
		for {
			c, err := in.eval(st.Cond, fr)
			if err != nil {
				return ctrlNone, err
			}
			if !truthy(c) {
				break
			}
			ctl, err := in.execBlock(st.Body, fr)
			if err != nil {
				return ctrlNone, err
			}
			if ctl == ctrlBreak {
				break
			}
			if ctl == ctrlReturn {
				return ctrlReturn, nil
			}
			if err := in.tick(st.Pos); err != nil {
				return ctrlNone, err
			}
		}
		return ctrlNone, nil
	case *minic.ReturnStmt:
		if st.Value != nil {
			v, err := in.eval(st.Value, fr)
			if err != nil {
				return ctrlNone, err
			}
			fr.ret = v
		}
		fr.hasRet = true
		return ctrlReturn, nil
	case *minic.BreakStmt:
		return ctrlBreak, nil
	case *minic.ContinueStmt:
		return ctrlContinue, nil
	}
	return ctrlNone, fmt.Errorf("unhandled statement %T", s)
}

func (in *Interp) initVarFr(v *Value, st *minic.DeclStmt, fr *frame) error {
	if st.Init != nil {
		x, err := in.eval(st.Init, fr)
		if err != nil {
			return err
		}
		storeScalar(v, x)
		return nil
	}
	for i, e := range st.List {
		x, err := in.eval(e, fr)
		if err != nil {
			return err
		}
		in.recordElem(v, i, true)
		if v.IntArr != nil {
			v.IntArr[i] = x.AsInt()
		} else {
			v.Arr[i] = x.AsFloat()
		}
	}
	return nil
}

func truthy(v Value) bool {
	if v.isFloat() {
		return v.F != 0
	}
	return v.I != 0
}

// lookupVar resolves a symbol to its storage in the current frame or
// globals.
func (in *Interp) lookupVar(sym *minic.Symbol, fr *frame) (*Value, error) {
	if fr != nil {
		if v, ok := fr.locals[sym]; ok {
			return v, nil
		}
	}
	if v, ok := in.globals[sym]; ok {
		return v, nil
	}
	return nil, fmt.Errorf("internal: storage for %s not found", sym)
}

// elemOffset computes the flat element offset for an index expression and
// bounds-checks it.
func (in *Interp) elemOffset(ix *minic.IndexExpr, av *Value, fr *frame) (int, error) {
	dims := av.Type.Dims
	if len(ix.Indices) != len(dims) {
		return 0, rterrf(ix.Pos, "partial array indexing of %s used as a value", ix.Array.Name)
	}
	off := 0
	for d, ie := range ix.Indices {
		iv, err := in.eval(ie, fr)
		if err != nil {
			return 0, err
		}
		i := int(iv.AsInt())
		extent := dims[d]
		if extent == 0 {
			// Unsized parameter dim: bound by backing store later.
			extent = 1 << 30
		}
		if i < 0 || i >= extent {
			return 0, rterrf(ix.Pos, "index %d out of bounds [0,%d) for %s", i, dims[d], ix.Array.Name)
		}
		stride := 1
		for _, d2 := range dims[d+1:] {
			stride *= d2
		}
		off += i * stride
	}
	n := len(av.Arr) + len(av.IntArr)
	if off >= n {
		return 0, rterrf(ix.Pos, "flattened index %d out of bounds (size %d) for %s", off, n, ix.Array.Name)
	}
	return off, nil
}

func (in *Interp) eval(e minic.Expr, fr *frame) (Value, error) {
	in.profile.OpCount++
	switch ex := e.(type) {
	case *minic.IntLit:
		return intVal(ex.Value), nil
	case *minic.FloatLit:
		return floatVal(ex.Value), nil
	case *minic.VarRef:
		v, err := in.lookupVar(ex.Sym, fr)
		if err != nil {
			return Value{}, err
		}
		return *v, nil
	case *minic.IndexExpr:
		av, err := in.lookupVar(ex.Array.Sym, fr)
		if err != nil {
			return Value{}, err
		}
		if len(ex.Indices) < len(av.Type.Dims) {
			// Row view of a 2-D array (only valid as a call argument,
			// handled in CallExpr); here it is an error.
			return Value{}, rterrf(ex.Pos, "partial indexing of %s outside a call argument", ex.Array.Name)
		}
		off, err := in.elemOffset(ex, av, fr)
		if err != nil {
			return Value{}, err
		}
		in.recordElem(av, off, false)
		if av.IntArr != nil {
			return intVal(av.IntArr[off]), nil
		}
		return floatVal(av.Arr[off]), nil
	case *minic.UnaryExpr:
		x, err := in.eval(ex.X, fr)
		if err != nil {
			return Value{}, err
		}
		switch ex.Op {
		case minic.TokMinus:
			if x.isFloat() {
				return floatVal(-x.F), nil
			}
			return intVal(-x.I), nil
		case minic.TokNot:
			if truthy(x) {
				return intVal(0), nil
			}
			return intVal(1), nil
		case minic.TokTilde:
			return intVal(^x.AsInt()), nil
		}
		return Value{}, rterrf(ex.Pos, "unhandled unary %s", ex.Op)
	case *minic.BinaryExpr:
		return in.evalBinary(ex, fr)
	case *minic.CondExpr:
		c, err := in.eval(ex.Cond, fr)
		if err != nil {
			return Value{}, err
		}
		if truthy(c) {
			return in.eval(ex.Then, fr)
		}
		return in.eval(ex.Else, fr)
	case *minic.CallExpr:
		return in.evalCall(ex, fr)
	case *minic.AssignExpr:
		return in.evalAssign(ex, fr)
	case *minic.IncDecExpr:
		return in.evalIncDec(ex, fr)
	case *minic.CastExpr:
		x, err := in.eval(ex.X, fr)
		if err != nil {
			return Value{}, err
		}
		if ex.To == minic.Int {
			return intVal(x.AsInt()), nil
		}
		return floatVal(x.AsFloat()), nil
	}
	return Value{}, fmt.Errorf("unhandled expression %T", e)
}

func (in *Interp) evalBinary(ex *minic.BinaryExpr, fr *frame) (Value, error) {
	// Short-circuit logical operators.
	if ex.Op == minic.TokAndAnd || ex.Op == minic.TokOrOr {
		x, err := in.eval(ex.X, fr)
		if err != nil {
			return Value{}, err
		}
		if ex.Op == minic.TokAndAnd && !truthy(x) {
			return intVal(0), nil
		}
		if ex.Op == minic.TokOrOr && truthy(x) {
			return intVal(1), nil
		}
		y, err := in.eval(ex.Y, fr)
		if err != nil {
			return Value{}, err
		}
		if truthy(y) {
			return intVal(1), nil
		}
		return intVal(0), nil
	}
	x, err := in.eval(ex.X, fr)
	if err != nil {
		return Value{}, err
	}
	y, err := in.eval(ex.Y, fr)
	if err != nil {
		return Value{}, err
	}
	isF := x.isFloat() || y.isFloat()
	b2i := func(b bool) Value {
		if b {
			return intVal(1)
		}
		return intVal(0)
	}
	switch ex.Op {
	case minic.TokPlus:
		if isF {
			return floatVal(x.AsFloat() + y.AsFloat()), nil
		}
		return intVal(x.I + y.I), nil
	case minic.TokMinus:
		if isF {
			return floatVal(x.AsFloat() - y.AsFloat()), nil
		}
		return intVal(x.I - y.I), nil
	case minic.TokStar:
		if isF {
			return floatVal(x.AsFloat() * y.AsFloat()), nil
		}
		return intVal(x.I * y.I), nil
	case minic.TokSlash:
		if isF {
			d := y.AsFloat()
			if d == 0 {
				return Value{}, rterrf(ex.Pos, "floating division by zero")
			}
			return floatVal(x.AsFloat() / d), nil
		}
		if y.I == 0 {
			return Value{}, rterrf(ex.Pos, "integer division by zero")
		}
		return intVal(x.I / y.I), nil
	case minic.TokPercent:
		if y.AsInt() == 0 {
			return Value{}, rterrf(ex.Pos, "modulo by zero")
		}
		return intVal(x.AsInt() % y.AsInt()), nil
	case minic.TokAmp:
		return intVal(x.AsInt() & y.AsInt()), nil
	case minic.TokPipe:
		return intVal(x.AsInt() | y.AsInt()), nil
	case minic.TokCaret:
		return intVal(x.AsInt() ^ y.AsInt()), nil
	case minic.TokShl:
		return intVal(x.AsInt() << uint(y.AsInt()&63)), nil
	case minic.TokShr:
		return intVal(x.AsInt() >> uint(y.AsInt()&63)), nil
	case minic.TokEq:
		if isF {
			return b2i(x.AsFloat() == y.AsFloat()), nil
		}
		return b2i(x.I == y.I), nil
	case minic.TokNeq:
		if isF {
			return b2i(x.AsFloat() != y.AsFloat()), nil
		}
		return b2i(x.I != y.I), nil
	case minic.TokLt:
		if isF {
			return b2i(x.AsFloat() < y.AsFloat()), nil
		}
		return b2i(x.I < y.I), nil
	case minic.TokGt:
		if isF {
			return b2i(x.AsFloat() > y.AsFloat()), nil
		}
		return b2i(x.I > y.I), nil
	case minic.TokLe:
		if isF {
			return b2i(x.AsFloat() <= y.AsFloat()), nil
		}
		return b2i(x.I <= y.I), nil
	case minic.TokGe:
		if isF {
			return b2i(x.AsFloat() >= y.AsFloat()), nil
		}
		return b2i(x.I >= y.I), nil
	}
	return Value{}, rterrf(ex.Pos, "unhandled binary %s", ex.Op)
}

func (in *Interp) evalCall(ex *minic.CallExpr, fr *frame) (Value, error) {
	if ex.Builtin != "" {
		return in.evalBuiltin(ex, fr)
	}
	args := make([]Value, len(ex.Args))
	for i, a := range ex.Args {
		if ex.Fn.Params[i].Type.IsArray() {
			av, err := in.arrayArg(a, fr)
			if err != nil {
				return Value{}, err
			}
			args[i] = av
			continue
		}
		v, err := in.eval(a, fr)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	return in.call(ex.Fn, args)
}

// arrayArg resolves an array-typed argument: either a whole array variable
// or a row of a 2-D array.
func (in *Interp) arrayArg(a minic.Expr, fr *frame) (Value, error) {
	switch arg := a.(type) {
	case *minic.VarRef:
		v, err := in.lookupVar(arg.Sym, fr)
		if err != nil {
			return Value{}, err
		}
		return *v, nil
	case *minic.IndexExpr:
		base, err := in.lookupVar(arg.Array.Sym, fr)
		if err != nil {
			return Value{}, err
		}
		if len(arg.Indices) >= len(base.Type.Dims) {
			return Value{}, rterrf(arg.Pos, "argument %s is not an array view", arg.Array.Name)
		}
		// Row view: compute the row offset.
		iv, err := in.eval(arg.Indices[0], fr)
		if err != nil {
			return Value{}, err
		}
		row := int(iv.AsInt())
		if row < 0 || row >= base.Type.Dims[0] {
			return Value{}, rterrf(arg.Pos, "row %d out of bounds for %s", row, arg.Array.Name)
		}
		stride := base.Type.Dims[1]
		view := Value{
			Type:    minic.Type{Base: base.Type.Base, Dims: base.Type.Dims[1:]},
			Root:    base.Root,
			RootOff: base.RootOff + row*stride,
		}
		if base.IntArr != nil {
			view.IntArr = base.IntArr[row*stride : (row+1)*stride]
		} else {
			view.Arr = base.Arr[row*stride : (row+1)*stride]
		}
		return view, nil
	}
	return Value{}, rterrf(a.NodePos(), "unsupported array argument form")
}

func (in *Interp) evalBuiltin(ex *minic.CallExpr, fr *frame) (Value, error) {
	vals := make([]Value, len(ex.Args))
	for i, a := range ex.Args {
		v, err := in.eval(a, fr)
		if err != nil {
			return Value{}, err
		}
		vals[i] = v
	}
	allInt := true
	for _, v := range vals {
		if v.isFloat() {
			allInt = false
		}
	}
	f := func(i int) float64 { return vals[i].AsFloat() }
	switch ex.Builtin {
	case "fabs":
		return floatVal(math.Abs(f(0))), nil
	case "sqrt":
		if f(0) < 0 {
			return Value{}, rterrf(ex.Pos, "sqrt of negative value %g", f(0))
		}
		return floatVal(math.Sqrt(f(0))), nil
	case "sin":
		return floatVal(math.Sin(f(0))), nil
	case "cos":
		return floatVal(math.Cos(f(0))), nil
	case "tan":
		return floatVal(math.Tan(f(0))), nil
	case "exp":
		return floatVal(math.Exp(f(0))), nil
	case "log":
		if f(0) <= 0 {
			return Value{}, rterrf(ex.Pos, "log of non-positive value %g", f(0))
		}
		return floatVal(math.Log(f(0))), nil
	case "floor":
		return floatVal(math.Floor(f(0))), nil
	case "ceil":
		return floatVal(math.Ceil(f(0))), nil
	case "pow":
		return floatVal(math.Pow(f(0), f(1))), nil
	case "atan":
		return floatVal(math.Atan(f(0))), nil
	case "atan2":
		return floatVal(math.Atan2(f(0), f(1))), nil
	case "abs":
		if allInt {
			x := vals[0].I
			if x < 0 {
				x = -x
			}
			return intVal(x), nil
		}
		return floatVal(math.Abs(f(0))), nil
	case "min":
		if allInt {
			if vals[0].I < vals[1].I {
				return vals[0], nil
			}
			return vals[1], nil
		}
		return floatVal(math.Min(f(0), f(1))), nil
	case "max":
		if allInt {
			if vals[0].I > vals[1].I {
				return vals[0], nil
			}
			return vals[1], nil
		}
		return floatVal(math.Max(f(0), f(1))), nil
	}
	return Value{}, rterrf(ex.Pos, "unhandled builtin %s", ex.Builtin)
}

func (in *Interp) evalAssign(ex *minic.AssignExpr, fr *frame) (Value, error) {
	rhs, err := in.eval(ex.RHS, fr)
	if err != nil {
		return Value{}, err
	}
	lv, err := in.lvalue(ex.LHS, fr)
	if err != nil {
		return Value{}, err
	}
	var out Value
	if ex.Op == minic.TokAssign {
		out = rhs
	} else {
		cur := lv.read()
		op := compoundBase(ex.Op)
		out, err = applyArith(ex.Pos, op, cur, rhs)
		if err != nil {
			return Value{}, err
		}
	}
	lv.write(out)
	return lv.peek(), nil
}

func compoundBase(k minic.TokenKind) minic.TokenKind {
	switch k {
	case minic.TokPlusEq:
		return minic.TokPlus
	case minic.TokMinusEq:
		return minic.TokMinus
	case minic.TokStarEq:
		return minic.TokStar
	case minic.TokSlashEq:
		return minic.TokSlash
	case minic.TokPercentEq:
		return minic.TokPercent
	case minic.TokShlEq:
		return minic.TokShl
	case minic.TokShrEq:
		return minic.TokShr
	case minic.TokAndEq:
		return minic.TokAmp
	case minic.TokOrEq:
		return minic.TokPipe
	case minic.TokXorEq:
		return minic.TokCaret
	}
	return k
}

// applyArith applies a binary arithmetic op outside the profiling path (used
// for compound assignment and ++/--).
func applyArith(pos minic.Pos, op minic.TokenKind, x, y Value) (Value, error) {
	be := &minic.BinaryExpr{Pos: pos, Op: op}
	_ = be
	isF := x.isFloat() || y.isFloat()
	switch op {
	case minic.TokPlus:
		if isF {
			return floatVal(x.AsFloat() + y.AsFloat()), nil
		}
		return intVal(x.I + y.I), nil
	case minic.TokMinus:
		if isF {
			return floatVal(x.AsFloat() - y.AsFloat()), nil
		}
		return intVal(x.I - y.I), nil
	case minic.TokStar:
		if isF {
			return floatVal(x.AsFloat() * y.AsFloat()), nil
		}
		return intVal(x.I * y.I), nil
	case minic.TokSlash:
		if isF {
			d := y.AsFloat()
			if d == 0 {
				return Value{}, rterrf(pos, "floating division by zero")
			}
			return floatVal(x.AsFloat() / d), nil
		}
		if y.I == 0 {
			return Value{}, rterrf(pos, "integer division by zero")
		}
		return intVal(x.I / y.I), nil
	case minic.TokPercent:
		if y.AsInt() == 0 {
			return Value{}, rterrf(pos, "modulo by zero")
		}
		return intVal(x.AsInt() % y.AsInt()), nil
	case minic.TokShl:
		return intVal(x.AsInt() << uint(y.AsInt()&63)), nil
	case minic.TokShr:
		return intVal(x.AsInt() >> uint(y.AsInt()&63)), nil
	case minic.TokAmp:
		return intVal(x.AsInt() & y.AsInt()), nil
	case minic.TokPipe:
		return intVal(x.AsInt() | y.AsInt()), nil
	case minic.TokCaret:
		return intVal(x.AsInt() ^ y.AsInt()), nil
	}
	return Value{}, rterrf(pos, "unhandled compound op %s", op)
}

// lval is a resolved assignable expression. read records a footprint read
// (it stands for a semantic load, as in compound assignment); peek returns
// the stored value without recording (used for assignment result values,
// which C does not re-load). The write conversion respects the storage type
// (C assignment semantics).
type lval struct {
	read  func() Value
	write func(Value)
	peek  func() Value
}

func (in *Interp) lvalue(e minic.Expr, fr *frame) (lval, error) {
	switch lv := e.(type) {
	case *minic.VarRef:
		v, err := in.lookupVar(lv.Sym, fr)
		if err != nil {
			return lval{}, err
		}
		peek := func() Value { return *v }
		write := func(x Value) { storeScalar(v, x) }
		return lval{read: peek, write: write, peek: peek}, nil
	case *minic.IndexExpr:
		av, err := in.lookupVar(lv.Array.Sym, fr)
		if err != nil {
			return lval{}, err
		}
		off, err := in.elemOffset(lv, av, fr)
		if err != nil {
			return lval{}, err
		}
		var peek func() Value
		var write func(Value)
		if av.IntArr != nil {
			peek = func() Value { return intVal(av.IntArr[off]) }
			write = func(x Value) {
				in.recordElem(av, off, true)
				av.IntArr[off] = x.AsInt()
			}
		} else {
			peek = func() Value { return floatVal(av.Arr[off]) }
			write = func(x Value) {
				in.recordElem(av, off, true)
				av.Arr[off] = x.AsFloat()
			}
		}
		read := func() Value {
			in.recordElem(av, off, false)
			return peek()
		}
		return lval{read: read, write: write, peek: peek}, nil
	}
	return lval{}, rterrf(e.NodePos(), "expression is not assignable")
}

func (in *Interp) evalIncDec(ex *minic.IncDecExpr, fr *frame) (Value, error) {
	lv, err := in.lvalue(ex.X, fr)
	if err != nil {
		return Value{}, err
	}
	cur := lv.read()
	op := minic.TokPlus
	if ex.Op == minic.TokDec {
		op = minic.TokMinus
	}
	out, err := applyArith(ex.Pos, op, cur, intVal(1))
	if err != nil {
		return Value{}, err
	}
	lv.write(out)
	return lv.peek(), nil
}
