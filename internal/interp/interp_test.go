package interp

import (
	"math"
	"strings"
	"testing"

	"repro/internal/minic"
)

func run(t *testing.T, src string) (*Interp, *Profile) {
	t.Helper()
	prog, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	in := New(prog)
	prof, err := in.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return in, prof
}

func runErr(t *testing.T, src string) error {
	t.Helper()
	prog, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	in := New(prog)
	in.StepLimit = 1 << 20
	_, err = in.Run()
	if err == nil {
		t.Fatalf("expected runtime error")
	}
	return err
}

func TestArithmeticAndGlobals(t *testing.T) {
	in, _ := run(t, `
int r1; int r2; float r3;
void main(void) {
    r1 = 7 / 2 + 7 % 2;          // 3 + 1 = 4
    r2 = (1 << 4) | 3 & 1;       // 16 | 1 = 17
    r3 = 1.5 * 4.0 - 1.0 / 2.0;  // 6 - 0.5 = 5.5
}
`)
	if got := in.GlobalValue("r1").AsInt(); got != 4 {
		t.Errorf("r1 = %d, want 4", got)
	}
	if got := in.GlobalValue("r2").AsInt(); got != 17 {
		t.Errorf("r2 = %d, want 17", got)
	}
	if got := in.GlobalValue("r3").AsFloat(); got != 5.5 {
		t.Errorf("r3 = %g, want 5.5", got)
	}
}

func TestLoopsAndCounts(t *testing.T) {
	prog, err := minic.Compile(`
int acc;
void main(void) {
    for (int i = 0; i < 10; i++) {
        acc += i;
    }
    int j = 0;
    while (j < 5) { j++; }
    do { j--; } while (j > 0);
}
`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	in := New(prog)
	prof, err := in.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := in.GlobalValue("acc").AsInt(); got != 45 {
		t.Errorf("acc = %d, want 45", got)
	}
	main := prog.Func("main")
	forStmt := main.Body.Stmts[0].(*minic.ForStmt)
	body := forStmt.Body.Stmts[0]
	if c := prof.Count(body); c != 10 {
		t.Errorf("for body count = %d, want 10", c)
	}
	if c := prof.Count(forStmt); c != 1 {
		t.Errorf("for statement count = %d, want 1", c)
	}
}

func TestFunctionsAndArrays(t *testing.T) {
	in, _ := run(t, `
float out;
float dot(float a[4], float b[4]) {
    float s = 0.0;
    for (int i = 0; i < 4; i++) { s += a[i] * b[i]; }
    return s;
}
void fill(float v[4], float start) {
    for (int i = 0; i < 4; i++) { v[i] = start + i; }
}
void main(void) {
    float a[4]; float b[4];
    fill(a, 1.0);
    fill(b, 2.0);
    out = dot(a, b);  // 1*2+2*3+3*4+4*5 = 40
}
`)
	if got := in.GlobalValue("out").AsFloat(); got != 40 {
		t.Errorf("out = %g, want 40", got)
	}
}

func TestArrayByReference(t *testing.T) {
	in, _ := run(t, `
int result;
void bump(int v[3]) { for (int i = 0; i < 3; i++) { v[i] = v[i] + 1; } }
void main(void) {
    int a[3] = {10, 20, 30};
    bump(a);
    result = a[0] + a[1] + a[2];
}
`)
	if got := in.GlobalValue("result").AsInt(); got != 63 {
		t.Errorf("result = %d, want 63", got)
	}
}

func TestRowViewArgument(t *testing.T) {
	in, _ := run(t, `
float total;
float rowsum(float r[4]) {
    float s = 0.0;
    for (int i = 0; i < 4; i++) { s += r[i]; }
    return s;
}
void main(void) {
    float m[2][4] = {{1.0, 2.0, 3.0, 4.0}, {5.0, 6.0, 7.0, 8.0}};
    total = rowsum(m[1]);
}
`)
	if got := in.GlobalValue("total").AsFloat(); got != 26 {
		t.Errorf("total = %g, want 26", got)
	}
}

func TestBuiltins(t *testing.T) {
	in, _ := run(t, `
float a; float b; int c; float d;
void main(void) {
    a = sqrt(16.0) + fabs(-2.0);
    b = pow(2.0, 10.0);
    c = max(3, min(10, 7)) + abs(-4);
    d = cos(0.0) + floor(1.7) + ceil(0.2);
}
`)
	if got := in.GlobalValue("a").AsFloat(); got != 6 {
		t.Errorf("a = %g, want 6", got)
	}
	if got := in.GlobalValue("b").AsFloat(); got != 1024 {
		t.Errorf("b = %g, want 1024", got)
	}
	if got := in.GlobalValue("c").AsInt(); got != 11 {
		t.Errorf("c = %d, want 11", got)
	}
	if got := in.GlobalValue("d").AsFloat(); got != 3 {
		t.Errorf("d = %g, want 3", got)
	}
}

func TestShortCircuit(t *testing.T) {
	// The right operand of && must not evaluate when the left is false:
	// division by zero would fail otherwise.
	in, _ := run(t, `
int ok;
void main(void) {
    int z = 0;
    if (z != 0 && 10 / z > 1) { ok = 0; } else { ok = 1; }
    if (z == 0 || 10 / z > 1) { ok = ok + 1; }
}
`)
	if got := in.GlobalValue("ok").AsInt(); got != 2 {
		t.Errorf("ok = %d, want 2", got)
	}
}

func TestControlFlow(t *testing.T) {
	in, _ := run(t, `
int n;
void main(void) {
    for (int i = 0; i < 100; i++) {
        if (i == 5) { break; }
        if (i % 2 == 0) { continue; }
        n += i;   // 1 + 3 = 4
    }
    n += pick(2); // + 20
}
int pick(int k) {
    if (k == 1) { return 10; }
    if (k == 2) { return 20; }
    return 0;
}
`)
	if got := in.GlobalValue("n").AsInt(); got != 24 {
		t.Errorf("n = %d, want 24", got)
	}
}

func TestTernaryCastIncDec(t *testing.T) {
	in, _ := run(t, `
int a; float f;
void main(void) {
    int x = 5;
    a = x > 3 ? x++ : --x;  // a = 5 (x++ returns new value in our eval? see below)
    f = (float)(7 / 2) + 0.5;
    a = a + (int)3.9;
}
`)
	// Note: evalIncDec returns the post-update value (like ++x) for both
	// forms; mini-C documents ++/-- as statements, so only the side effect
	// is load-bearing. a = 6 + 3 = 9 here.
	if got := in.GlobalValue("a").AsInt(); got != 9 {
		t.Errorf("a = %d, want 9", got)
	}
	if got := in.GlobalValue("f").AsFloat(); got != 3.5 {
		t.Errorf("f = %g, want 3.5", got)
	}
}

func TestCompoundAssignments(t *testing.T) {
	in, _ := run(t, `
int a;
void main(void) {
    a = 100;
    a += 10; a -= 5; a *= 2; a /= 3; a %= 50;  // ((105*2)/3)%50 = 70%50 = 20
    a <<= 2; a >>= 1; a |= 8; a &= 63; a ^= 1; // 40|8=40? 20<<2=80 >>1=40 |8=40 and 63=40 ^1=41
}
`)
	if got := in.GlobalValue("a").AsInt(); got != 41 {
		t.Errorf("a = %d, want 41", got)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"div0", `void main(void) { int x = 1 / 0; }`, "division by zero"},
		{"mod0", `void main(void) { int x = 1 % 0; }`, "modulo by zero"},
		{"fdiv0", `void main(void) { float x = 1.0 / 0.0; }`, "division by zero"},
		{"oob", `void main(void) { int a[3]; a[3] = 1; }`, "out of bounds"},
		{"oob neg", `void main(void) { int a[3]; int i = -1; a[i] = 1; }`, "out of bounds"},
		{"sqrt neg", `void main(void) { float x = sqrt(-1.0); }`, "sqrt of negative"},
		{"log nonpos", `void main(void) { float x = log(0.0); }`, "log of non-positive"},
		{"no return", `int f(void) { int x = 1; } void main(void) { int y = f(); }`, "fell off the end"},
		{"infinite", `void main(void) { while (1) { int x = 0; } }`, "step limit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := runErr(t, tc.src)
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestChecksumOrderSensitivity(t *testing.T) {
	sum := func(src string) float64 {
		in, _ := run(t, src)
		return in.GlobalChecksum()
	}
	a := sum(`int a[3]; void main(void) { a[0] = 1; a[1] = 2; a[2] = 3; }`)
	b := sum(`int a[3]; void main(void) { a[0] = 3; a[1] = 2; a[2] = 1; }`)
	if a == b {
		t.Errorf("checksum insensitive to element order: %g == %g", a, b)
	}
}

func TestRunIsRepeatable(t *testing.T) {
	prog, err := minic.Compile(`
float acc;
void main(void) { acc = acc + 1.0; for (int i = 0; i < 3; i++) { acc *= 2.0; } }
`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	in := New(prog)
	if _, err := in.Run(); err != nil {
		t.Fatalf("run 1: %v", err)
	}
	c1 := in.GlobalChecksum()
	if _, err := in.Run(); err != nil {
		t.Fatalf("run 2: %v", err)
	}
	c2 := in.GlobalChecksum()
	if c1 != c2 || math.IsNaN(c1) {
		t.Errorf("Run not repeatable: %g vs %g", c1, c2)
	}
}

func TestGlobalInitializers(t *testing.T) {
	in, _ := run(t, `
int n = 4;
float w[4] = {0.5, 1.5, 2.5, 3.5};
float s;
void main(void) {
    for (int i = 0; i < n; i++) { s += w[i]; }
}
`)
	if got := in.GlobalValue("s").AsFloat(); got != 8 {
		t.Errorf("s = %g, want 8", got)
	}
}
