package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/htg"
	"repro/internal/ilp"
	"repro/internal/obs"
)

// debugILP enables solve tracing in tests.
var debugILP = false

// solveMeta identifies one region solve for telemetry.
type solveMeta struct {
	region string // HTG node label of the region
	model  string // "tasks", "chunks" or "pipeline"
	class  int    // main-task class under consideration
	tasks  int    // task-count bound of this sweep step
}

// regionLabel names a region for solve records and spans.
func regionLabel(rs *regionSpec) string {
	if rs.node != nil && rs.node.Label != "" {
		return rs.node.Label
	}
	return "<region>"
}

// ilpParHetero builds and solves the heterogeneous partitioning-and-mapping
// ILP of Section IV for one region: it maps items to at most maxTasks newly
// extracted tasks (Eq. 1-2), selects one parallel solution candidate per
// item (Eq. 3-4), tracks predecessor relations (Eq. 5-7) over the
// topologically ordered items (Eq. 10), prices tasks per mapped processor
// class (Eq. 8-9), maps tasks to classes respecting per-class core budgets
// (Eq. 12-16) and ties candidate classes to task classes (Eq. 17-18). The
// objective minimizes the critical path to the communication-out node
// (Eq. 11).
//
// An explicit improvement bound (exectime strictly below sequential
// execution on seqPC) is added so that unprofitable regions come back
// infeasible quickly instead of crawling to a useless optimum.
//
// seqPC is the class of the main task (task 0). Returns nil when no
// solution beats sequential execution on seqPC; otherwise the portable
// index assignment (assembleFromAssignment builds the Solution).
func (p *Parallelizer) ilpParHetero(rs *regionSpec, seqPC, maxTasks int) *regionAssignment {
	nItems := len(rs.items)
	nClasses := len(p.pf.Classes)
	T := maxTasks
	if T > p.pf.NumCores() {
		T = p.pf.NumCores()
	}
	if T < 2 || nItems < 2 {
		return nil
	}

	// Sequential reference: all items on seqPC in the main task, no task
	// creation, no communication.
	seqTime := 0.0
	for _, it := range rs.items {
		if s := seqCandOn(it, seqPC); s != nil {
			seqTime += s.TimeNs
		}
	}
	spawnOverheadNs := rs.spawnCount * p.pf.TaskCreateNs
	if spawnOverheadNs >= seqTime {
		return nil // creating even one task already costs more than running
	}

	// Per-item worst-case candidate cost (tight big-M for Eq. 8) and the
	// global path bound (big-M for Eq. 9).
	worstOf := make([]float64, nItems)
	pathM := 1.0
	for n, it := range rs.items {
		for c := range it.cands {
			for _, s := range it.cands[c] {
				if s.TimeNs > worstOf[n] {
					worstOf[n] = s.TimeNs
				}
			}
		}
		pathM += worstOf[n] + it.inCommNs + it.outCommNs
	}
	for _, e := range rs.edges {
		pathM += e.commNs
	}
	pathM += spawnOverheadNs * float64(T)

	m := ilp.NewModel()

	// --- Decision variables ---

	// x[n][t]: item n assigned to task t (Eq. 1).
	x := make([][]ilp.VarID, nItems)
	for n := range x {
		x[n] = make([]ilp.VarID, T)
		for t := 0; t < T; t++ {
			x[n][t] = m.AddBinary(fmt.Sprintf("x_n%d_t%d", n, t), 0)
			m.SetPriority(x[n][t], 3)
		}
	}
	// p[n][c][s]: candidate selection (Eq. 3).
	pv := make([][][]ilp.VarID, nItems)
	for n, it := range rs.items {
		pv[n] = make([][]ilp.VarID, nClasses)
		for c := 0; c < nClasses; c++ {
			pv[n][c] = make([]ilp.VarID, len(it.cands[c]))
			for s := range it.cands[c] {
				pv[n][c][s] = m.AddBinary(fmt.Sprintf("p_n%d_c%d_s%d", n, c, s), 0)
			}
		}
	}
	// map[t][c]: task-to-class mapping (Eq. 12).
	mp := make([][]ilp.VarID, T)
	for t := 0; t < T; t++ {
		mp[t] = make([]ilp.VarID, nClasses)
		for c := 0; c < nClasses; c++ {
			mp[t][c] = m.AddBinary(fmt.Sprintf("map_t%d_c%d", t, c), 0)
			m.SetPriority(mp[t][c], 3)
		}
	}
	// used[t]: task actually holds items; prices TCO for extra tasks.
	used := make([]ilp.VarID, T)
	for t := 0; t < T; t++ {
		used[t] = m.AddBinary(fmt.Sprintf("used_t%d", t), 0)
		m.SetPriority(used[t], 2)
	}
	// pred[t][u] for t < u (Eq. 5), only when the region has edges at all.
	var pred [][]ilp.VarID
	if len(rs.edges) > 0 {
		pred = make([][]ilp.VarID, T)
		for t := 0; t < T; t++ {
			pred[t] = make([]ilp.VarID, T)
			for u := t + 1; u < T; u++ {
				pred[t][u] = m.AddBinary(fmt.Sprintf("pred_t%d_u%d", t, u), 0)
			}
		}
	}
	// contrib[n][t]: big-M lowering of (x AND p) * COSTS in Eq. 8.
	contrib := make([][]ilp.VarID, nItems)
	for n := range contrib {
		contrib[n] = make([]ilp.VarID, T)
		for t := 0; t < T; t++ {
			contrib[n][t] = m.AddVar(fmt.Sprintf("ctr_n%d_t%d", n, t), 0, math.Inf(1), 0)
		}
	}
	// Per-task cost, accumulated path cost, outgoing communication.
	cost := make([]ilp.VarID, T)
	accum := make([]ilp.VarID, T)
	comm := make([]ilp.VarID, T)
	for t := 0; t < T; t++ {
		cost[t] = m.AddVar(fmt.Sprintf("cost_t%d", t), 0, math.Inf(1), 0)
		accum[t] = m.AddVar(fmt.Sprintf("accum_t%d", t), 0, math.Inf(1), 0)
		comm[t] = m.AddVar(fmt.Sprintf("comm_t%d", t), 0, math.Inf(1), 0)
	}
	// cross[e][t]: edge e leaves task t.
	cross := make([][]ilp.VarID, len(rs.edges))
	for e, edge := range rs.edges {
		if edge.commNs <= 0 {
			continue
		}
		cross[e] = make([]ilp.VarID, T)
		for t := 0; t < T; t++ {
			cross[e][t] = m.AddVar(fmt.Sprintf("cross_e%d_t%d", e, t), 0, 1, 0)
		}
	}
	// procsused[t][c]: inner processors of chosen hierarchical candidates
	// (Eq. 14). Created lazily only when some candidate needs extras.
	needProcs := false
	for _, it := range rs.items {
		for c := range it.cands {
			for _, s := range it.cands[c] {
				for _, e := range s.ExtraProcs() {
					if e > 0 {
						needProcs = true
					}
				}
			}
		}
	}
	var procsused [][]ilp.VarID
	if needProcs {
		procsused = make([][]ilp.VarID, T)
		for t := 0; t < T; t++ {
			procsused[t] = make([]ilp.VarID, nClasses)
			for c := 0; c < nClasses; c++ {
				procsused[t][c] = m.AddVar(fmt.Sprintf("pu_t%d_c%d", t, c), 0, math.Inf(1), 0)
			}
		}
	}
	// w[t][c] = and(map, used) for the core budget (Eq. 16).
	w := make([][]ilp.VarID, T)
	for t := 0; t < T; t++ {
		w[t] = make([]ilp.VarID, nClasses)
		for c := 0; c < nClasses; c++ {
			w[t][c] = m.AddVar(fmt.Sprintf("w_t%d_c%d", t, c), 0, 1, 0)
		}
	}
	// Objective: exectime (Eq. 11), bounded above by the sequential
	// reference so only genuine improvements are feasible.
	exectime := m.AddVar("exectime", 0, seqTime*0.999, 1)

	// --- Constraints ---

	// Eq. 2: each item in exactly one task.
	for n := 0; n < nItems; n++ {
		terms := make([]ilp.Term, T)
		for t := 0; t < T; t++ {
			terms[t] = ilp.Term{Var: x[n][t], Coeff: 1}
		}
		m.AddCons(fmt.Sprintf("eq2_n%d", n), terms, ilp.EQ, 1)
	}
	// Eq. 4: exactly one candidate per item.
	for n, it := range rs.items {
		var terms []ilp.Term
		for c := 0; c < nClasses; c++ {
			for s := range it.cands[c] {
				terms = append(terms, ilp.Term{Var: pv[n][c][s], Coeff: 1})
			}
		}
		m.AddCons(fmt.Sprintf("eq4_n%d", n), terms, ilp.EQ, 1)
	}
	// Eq. 13: each task mapped to exactly one class; main task to seqPC.
	for t := 0; t < T; t++ {
		terms := make([]ilp.Term, nClasses)
		for c := 0; c < nClasses; c++ {
			terms[c] = ilp.Term{Var: mp[t][c], Coeff: 1}
		}
		m.AddCons(fmt.Sprintf("eq13_t%d", t), terms, ilp.EQ, 1)
	}
	m.AddCons("main_class", []ilp.Term{{Var: mp[0][seqPC], Coeff: 1}}, ilp.EQ, 1)
	m.AddCons("main_used", []ilp.Term{{Var: used[0], Coeff: 1}}, ilp.EQ, 1)

	// Eq. 10: monotone task ids along the topological item order.
	for n := 0; n+1 < nItems; n++ {
		var terms []ilp.Term
		for t := 1; t < T; t++ {
			terms = append(terms, ilp.Term{Var: x[n+1][t], Coeff: float64(t)})
			terms = append(terms, ilp.Term{Var: x[n][t], Coeff: -float64(t)})
		}
		m.AddCons(fmt.Sprintf("eq10_n%d", n), terms, ilp.GE, 0)
	}
	// used[t] >= x[n][t]; tasks occupy a prefix.
	for t := 0; t < T; t++ {
		for n := 0; n < nItems; n++ {
			m.AddCons(fmt.Sprintf("used_t%d_n%d", t, n),
				[]ilp.Term{{Var: used[t], Coeff: 1}, {Var: x[n][t], Coeff: -1}}, ilp.GE, 0)
		}
		if t+1 < T {
			m.AddCons(fmt.Sprintf("used_mono_t%d", t),
				[]ilp.Term{{Var: used[t], Coeff: 1}, {Var: used[t+1], Coeff: -1}}, ilp.GE, 0)
		}
	}
	// Eq. 6/7: pred[t][u] >= x[n][t] + x[o][u] - 1 for every edge n->o.
	for ei, e := range rs.edges {
		for t := 0; t < T; t++ {
			for u := t + 1; u < T; u++ {
				m.AddCons(fmt.Sprintf("eq6_e%d_t%d_u%d", ei, t, u),
					[]ilp.Term{
						{Var: pred[t][u], Coeff: 1},
						{Var: x[e.from][t], Coeff: -1},
						{Var: x[e.to][u], Coeff: -1},
					}, ilp.GE, -1)
			}
		}
	}
	// Eq. 17/18 (direct form): if item n is in task t and t is on class c,
	// a class-c candidate must be selected. Together with Eq. 4 this pins
	// the candidate class exactly.
	for n, it := range rs.items {
		for t := 0; t < T; t++ {
			for c := 0; c < nClasses; c++ {
				terms := []ilp.Term{
					{Var: x[n][t], Coeff: -1},
					{Var: mp[t][c], Coeff: -1},
				}
				for s := range it.cands[c] {
					terms = append(terms, ilp.Term{Var: pv[n][c][s], Coeff: 1})
				}
				m.AddCons(fmt.Sprintf("eq18_n%d_t%d_c%d", n, t, c), terms, ilp.GE, -1)
			}
		}
	}
	// Eq. 8 (linearized, tight M): contrib[n][t] >= selCost(n) - M_n(1-x).
	for n, it := range rs.items {
		for t := 0; t < T; t++ {
			terms := []ilp.Term{
				{Var: contrib[n][t], Coeff: 1},
				{Var: x[n][t], Coeff: -worstOf[n]},
			}
			for c := 0; c < nClasses; c++ {
				for s, cand := range it.cands[c] {
					terms = append(terms, ilp.Term{Var: pv[n][c][s], Coeff: -cand.TimeNs})
				}
			}
			m.AddCons(fmt.Sprintf("eq8_n%d_t%d", n, t), terms, ilp.GE, -worstOf[n])
		}
	}
	// cost[t] >= sum_n contrib[n][t] (+ TCO and in-comm for extra tasks).
	for t := 0; t < T; t++ {
		terms := []ilp.Term{{Var: cost[t], Coeff: 1}}
		if t != 0 {
			terms = append(terms, ilp.Term{Var: used[t], Coeff: -spawnOverheadNs})
		}
		for n := 0; n < nItems; n++ {
			terms = append(terms, ilp.Term{Var: contrib[n][t], Coeff: -1})
			if t != 0 && rs.items[n].inCommNs > 0 {
				terms = append(terms, ilp.Term{Var: x[n][t], Coeff: -rs.items[n].inCommNs})
			}
		}
		m.AddCons(fmt.Sprintf("cost_t%d", t), terms, ilp.GE, 0)
	}
	// Outgoing communication per task.
	for t := 0; t < T; t++ {
		terms := []ilp.Term{{Var: comm[t], Coeff: 1}}
		for ei, e := range rs.edges {
			if e.commNs <= 0 {
				continue
			}
			m.AddCons(fmt.Sprintf("cross_e%d_t%d", ei, t),
				[]ilp.Term{
					{Var: cross[ei][t], Coeff: 1},
					{Var: x[e.from][t], Coeff: -1},
					{Var: x[e.to][t], Coeff: 1},
				}, ilp.GE, 0)
			terms = append(terms, ilp.Term{Var: cross[ei][t], Coeff: -e.commNs})
		}
		m.AddCons(fmt.Sprintf("comm_t%d", t), terms, ilp.GE, 0)
	}
	// Eq. 9: accumulated path costs (chains only exist with edges).
	for t := 0; t < T; t++ {
		m.AddCons(fmt.Sprintf("eq9base_t%d", t),
			[]ilp.Term{{Var: accum[t], Coeff: 1}, {Var: cost[t], Coeff: -1}}, ilp.GE, 0)
		if pred == nil {
			continue
		}
		for u := 0; u < t; u++ {
			m.AddCons(fmt.Sprintf("eq9_t%d_u%d", t, u),
				[]ilp.Term{
					{Var: accum[t], Coeff: 1},
					{Var: cost[t], Coeff: -1},
					{Var: accum[u], Coeff: -1},
					{Var: comm[u], Coeff: -1},
					{Var: pred[u][t], Coeff: -pathM},
				}, ilp.GE, -pathM)
		}
	}
	// Eq. 14: procsused[t][c] >= EXTRA[s][c] * (p[n][cc][s] AND x[n][t]).
	if needProcs {
		for n, it := range rs.items {
			for cc := 0; cc < nClasses; cc++ {
				for s, cand := range it.cands[cc] {
					extra := cand.ExtraProcs()
					for c := 0; c < nClasses; c++ {
						if extra[c] <= 0 {
							continue
						}
						for t := 0; t < T; t++ {
							m.AddCons(fmt.Sprintf("eq14_n%d_c%d_s%d_t%d_pc%d", n, cc, s, t, c),
								[]ilp.Term{
									{Var: procsused[t][c], Coeff: 1},
									{Var: pv[n][cc][s], Coeff: -float64(extra[c])},
									{Var: x[n][t], Coeff: -float64(extra[c])},
								}, ilp.GE, -float64(extra[c]))
						}
					}
				}
			}
		}
	}
	// Eq. 15/16: per-class budget; w = and(map, used).
	for t := 0; t < T; t++ {
		for c := 0; c < nClasses; c++ {
			m.AddCons(fmt.Sprintf("w_t%d_c%d", t, c),
				[]ilp.Term{
					{Var: w[t][c], Coeff: 1},
					{Var: mp[t][c], Coeff: -1},
					{Var: used[t], Coeff: -1},
				}, ilp.GE, -1)
		}
	}
	for c := 0; c < nClasses; c++ {
		var terms []ilp.Term
		for t := 0; t < T; t++ {
			terms = append(terms, ilp.Term{Var: w[t][c], Coeff: 1})
			if needProcs {
				terms = append(terms, ilp.Term{Var: procsused[t][c], Coeff: 1})
			}
		}
		m.AddCons(fmt.Sprintf("eq16_c%d", c), terms, ilp.LE, float64(p.pf.Classes[c].Count))
	}
	// Strengthening cuts (valid inequalities; they leave the integer
	// optimum unchanged but give the LP relaxation a near-ideal bound so
	// branch-and-bound prunes effectively):
	//  (1) class-work: all work selected on class c must fit on that
	//      class's Count processors within the makespan, since at most
	//      Count tasks map to c (Eq. 16) and every task fits in exectime.
	//  (2) work conservation: the task costs jointly cover all selected
	//      item costs.
	for c := 0; c < nClasses; c++ {
		terms := []ilp.Term{{Var: exectime, Coeff: float64(p.pf.Classes[c].Count)}}
		for n, it := range rs.items {
			for s, cand := range it.cands[c] {
				terms = append(terms, ilp.Term{Var: pv[n][c][s], Coeff: -cand.TimeNs})
			}
		}
		m.AddCons(fmt.Sprintf("cut_classwork_c%d", c), terms, ilp.GE, 0)
	}
	{
		var terms []ilp.Term
		for t := 0; t < T; t++ {
			terms = append(terms, ilp.Term{Var: cost[t], Coeff: 1})
		}
		for n, it := range rs.items {
			for c := 0; c < nClasses; c++ {
				for s, cand := range it.cands[c] {
					terms = append(terms, ilp.Term{Var: pv[n][c][s], Coeff: -cand.TimeNs})
				}
			}
			_ = n
		}
		m.AddCons("cut_conservation", terms, ilp.GE, 0)
	}

	// Eq. 11: exectime >= accum[t] + out-comm of items in non-main tasks.
	for t := 0; t < T; t++ {
		terms := []ilp.Term{{Var: exectime, Coeff: 1}, {Var: accum[t], Coeff: -1}}
		if t != 0 {
			for n := 0; n < nItems; n++ {
				if rs.items[n].outCommNs > 0 {
					terms = append(terms, ilp.Term{Var: x[n][t], Coeff: -rs.items[n].outCommNs})
				}
			}
		}
		m.AddCons(fmt.Sprintf("eq11_t%d", t), terms, ilp.GE, 0)
	}

	// --- Solve ---
	incumbent := mainTaskIncumbent(m, rs, seqPC, seqTime, ivars{
		x: x, pv: pv, mp: mp, used: used,
		contrib: contrib, cost: cost, accum: accum,
		procsused: procsused, w: w, exectime: exectime,
	})
	res := p.solveWithIncumbent(m, incumbent,
		solveMeta{region: regionLabel(rs), model: "tasks", class: seqPC, tasks: T})
	if res == nil {
		return nil
	}
	return p.extractHetero(rs, res.X, x, pv, mp, seqPC, res.Obj)
}

// ivars bundles the variable handles the incumbent builder must fill.
type ivars struct {
	x         [][]ilp.VarID
	pv        [][][]ilp.VarID
	mp        [][]ilp.VarID
	used      []ilp.VarID
	contrib   [][]ilp.VarID
	cost      []ilp.VarID
	accum     []ilp.VarID
	procsused [][]ilp.VarID
	w         [][]ilp.VarID
	exectime  ilp.VarID
}

// mainTaskIncumbent constructs the always-feasible fallback assignment:
// every item stays in the main task on seqPC but selects its best
// (possibly hierarchically parallel) class-seqPC candidate. When even that
// plan fails to beat sequential execution, nil is returned and the ILP
// must find parallelism at this level or come back empty.
func mainTaskIncumbent(m *ilp.Model, rs *regionSpec, seqPC int, seqTime float64, v ivars) []float64 {

	X := make([]float64, m.NumVars())
	nClasses := len(v.mp[0])
	T := len(v.mp)
	total := 0.0
	extras := make([]float64, nClasses)
	for n, it := range rs.items {
		X[v.x[n][0]] = 1
		bestS, bestCost := -1, 0.0
		for s, cand := range it.cands[seqPC] {
			if bestS < 0 || cand.TimeNs < bestCost {
				bestS, bestCost = s, cand.TimeNs
			}
		}
		if bestS < 0 {
			return nil
		}
		X[v.pv[n][seqPC][bestS]] = 1
		X[v.contrib[n][0]] = bestCost
		total += bestCost
		for c, e := range it.cands[seqPC][bestS].ExtraProcs() {
			if float64(e) > extras[c] {
				extras[c] = float64(e)
			}
		}
	}
	if total >= seqTime*0.999 {
		return nil // no inner parallelism: not an improvement
	}
	for t := 0; t < T; t++ {
		X[v.mp[t][seqPC]] = 1
	}
	X[v.used[0]] = 1
	X[v.cost[0]] = total
	X[v.accum[0]] = total
	X[v.exectime] = total
	X[v.w[0][seqPC]] = 1
	if v.procsused != nil {
		for c := 0; c < nClasses; c++ {
			X[v.procsused[0][c]] = extras[c]
		}
	}
	return X
}

// solve runs the MILP and records statistics.
func (p *Parallelizer) solve(m *ilp.Model, meta solveMeta) *ilp.Result {
	return p.solveWithIncumbent(m, nil, meta)
}

// solveWithIncumbent additionally seeds the search with a known feasible
// assignment (ignored when nil or infeasible). Every solve is recorded
// as a SolveRecord; when a tracer or metrics registry is configured it
// also emits a span and feeds the solver's progress hook into the
// registry.
func (p *Parallelizer) solveWithIncumbent(m *ilp.Model, incumbent []float64, meta solveMeta) *ilp.Result {
	span := p.cfg.Tracer.Start("ilp-solve",
		obs.String("region", meta.region),
		obs.String("model", meta.model),
		obs.Int("class", meta.class),
		obs.Int("tasks", meta.tasks),
		obs.Int("vars", m.NumVars()),
		obs.Int("cons", m.NumCons()))
	start := time.Now() //repolint:allow timenow (solve-time telemetry only)
	opt := ilp.Options{
		MaxNodes:  p.cfg.MaxILPNodes,
		RelGap:    p.cfg.ILPRelGap,
		Incumbent: incumbent,
		Workers:   p.cfg.ILPWorkers,
		Seed:      p.cfg.ILPSeed,
	}
	if p.cfg.ILPTimeout > 0 {
		opt.Deadline = start.Add(p.cfg.ILPTimeout)
	}
	if reg, elog := p.cfg.Metrics, p.cfg.Events; reg != nil || elog != nil {
		opt.Progress = func(ev ilp.ProgressEvent) {
			switch ev.Kind {
			case ilp.EventIncumbent:
				reg.Counter("ilp.incumbents").Inc()
				reg.Gauge("ilp.incumbent.obj").Set(ev.Obj)
				reg.Gauge("ilp.gap.last").Set(ev.Gap)
				elog.Emit("ilp-incumbent", meta.region, map[string]any{
					"model": meta.model,
					"obj":   ev.Obj,
					"gap":   ev.Gap,
					"nodes": ev.Nodes,
				})
			case ilp.EventDone:
				reg.Counter("ilp.bb_nodes").Add(int64(ev.Nodes))
				reg.Counter("ilp.lp_iters").Add(int64(ev.LPIters))
				reg.Gauge("ilp.gap.max").Max(ev.Gap)
				reg.Gauge("ilp.gap.last").Set(ev.Gap)
			}
		}
	}
	res := ilp.Solve(m, opt)
	dur := time.Since(start)
	p.recordSolve(SolveRecord{
		Region:     meta.region,
		Model:      meta.model,
		Class:      meta.class,
		MaxTasks:   meta.tasks,
		Vars:       m.NumVars(),
		Cons:       m.NumCons(),
		Status:     res.Status.String(),
		Nodes:      res.Nodes,
		LPIters:    res.LPIters,
		Incumbents: res.Incumbents,
		Gap:        res.Gap,
		Cuts:       res.Cuts,
		WarmStarts: res.WarmStarts,
		WarmHits:   res.WarmHits,
		TimedOut:   res.TimedOut,
		NodeCapped: res.NodeCapped,
		Time:       dur,
	})
	if reg := p.cfg.Metrics; reg != nil {
		reg.Counter("ilp.solves").Inc()
		reg.Histogram("ilp.solve_time").Observe(dur)
		reg.Counter("ilp.cuts").Add(int64(res.Cuts))
		reg.Counter("ilp.warm_starts").Add(int64(res.WarmStarts))
		reg.Counter("ilp.warm_hits").Add(int64(res.WarmHits))
		if res.TimedOut {
			reg.Counter("ilp.timeouts").Inc()
		}
		if res.NodeCapped {
			reg.Counter("ilp.node_caps").Inc()
		}
	}
	span.SetAttr(
		obs.String("status", res.Status.String()),
		obs.Int("nodes", res.Nodes),
		obs.Int("lp_iters", res.LPIters),
		obs.Float("gap", res.Gap),
		obs.Bool("timed_out", res.TimedOut),
		obs.Bool("node_capped", res.NodeCapped))
	span.End()
	if debugILP {
		fmt.Printf("ILP: status=%v obj=%.0f nodes=%d gap=%.3f vars=%d cons=%d\n",
			res.Status, res.Obj, res.Nodes, res.Gap, m.NumVars(), m.NumCons())
	}
	if res.Status != ilp.StatusOptimal && res.Status != ilp.StatusFeasible {
		return nil
	}
	return &res
}

// extractHetero converts an ILP point into a portable index assignment.
func (p *Parallelizer) extractHetero(rs *regionSpec, X []float64,
	x [][]ilp.VarID, pv [][][]ilp.VarID, mp [][]ilp.VarID,
	seqPC int, obj float64) *regionAssignment {

	nClasses := len(p.pf.Classes)
	T := len(mp)
	on := func(id ilp.VarID) bool { return X[id] > 0.5 }

	a := &regionAssignment{
		TaskOf:    make([]int, len(rs.items)),
		CandClass: make([]int, len(rs.items)),
		CandSlot:  make([]int, len(rs.items)),
		ClassOf:   make([]int, T),
		Obj:       obj,
	}
	for n, it := range rs.items {
		a.TaskOf[n] = 0
		for t := 0; t < T; t++ {
			if on(x[n][t]) {
				a.TaskOf[n] = t
			}
		}
		// Slot -1 = the sequential candidate on seqPC (the extraction
		// fallback when the point selects no candidate binary).
		a.CandClass[n], a.CandSlot[n] = seqPC, -1
		for c := 0; c < nClasses; c++ {
			for s := range it.cands[c] {
				if on(pv[n][c][s]) {
					a.CandClass[n], a.CandSlot[n] = c, s
				}
			}
		}
	}
	for t := 0; t < T; t++ {
		a.ClassOf[t] = seqPC
		for c := 0; c < nClasses; c++ {
			if on(mp[t][c]) {
				a.ClassOf[t] = c
			}
		}
	}
	return a
}

// assembleSolution builds the Solution object from decoded assignments.
func (p *Parallelizer) assembleSolution(rs *regionSpec, taskOf []int,
	chosen []*Solution, classOf []int, seqPC int, obj float64) *Solution {

	nClasses := len(p.pf.Classes)
	T := len(classOf)
	sol := &Solution{
		Node:      rs.node,
		Kind:      rs.kind,
		MainClass: seqPC,
		TimeNs:    obj,
		ProcsUsed: make([]int, nClasses),
		Chosen:    map[*htg.Node]*Solution{},
	}
	tasks := make([]*TaskPlan, T)
	for t := 0; t < T; t++ {
		tasks[t] = &TaskPlan{Class: classOf[t]}
	}
	for n, it := range rs.items {
		t := taskOf[n]
		addItemPlans(tasks[t], it, chosen[n])
		if it.node != nil && it.chunkFrac == 0 && chosen[n] != nil {
			sol.Chosen[it.node] = chosen[n]
		}
	}
	// Drop empty non-main tasks.
	var kept []*TaskPlan
	for t, tp := range tasks {
		if t == 0 || len(tp.Items) > 0 {
			kept = append(kept, tp)
		}
	}
	sol.Tasks = kept
	sol.NumTasks = len(kept)
	// Processor accounting: each kept task's own unit plus the maximum
	// extra units its items' chosen solutions require concurrently.
	for _, tp := range kept {
		sol.ProcsUsed[tp.Class]++
		extraMax := make([]int, nClasses)
		for _, itp := range tp.Items {
			if itp.Sub == nil {
				continue
			}
			ex := itp.Sub.ExtraProcs()
			for c := range ex {
				if ex[c] > extraMax[c] {
					extraMax[c] = ex[c]
				}
			}
		}
		for c := range extraMax {
			sol.ProcsUsed[c] += extraMax[c]
		}
	}
	if sol.NumTasks <= 1 {
		// Only degenerate when no parallelism survives anywhere: a single
		// task whose items carry parallel inner candidates is a perfectly
		// good solution (all concurrency lives deeper in the hierarchy).
		inner := false
		for _, tp := range sol.Tasks {
			for _, it := range tp.Items {
				if it.Sub != nil && it.Sub.NumTasks > 1 {
					inner = true
				}
			}
		}
		if !inner {
			return nil
		}
	}
	return sol
}

// addItemPlans appends the plans for one region item (expanding merged
// super-items back into their constituents).
func addItemPlans(tp *TaskPlan, it *regionItem, sub *Solution) {
	if sub != nil && len(sub.merged) > 0 {
		for _, orig := range sub.merged {
			origSub := seqCandOn(orig, sub.MainClass)
			addItemPlans(tp, orig, origSub)
		}
		return
	}
	plan := &ItemPlan{Child: it.node, Sub: sub, ChunkFrac: it.chunkFrac}
	tp.Items = append(tp.Items, plan)
}
