package core

import (
	"repro/internal/htg"
	"repro/internal/platform"
)

// regionItem is one partitionable unit handed to the ILP: an HTG child
// node (with its per-class candidate sets) or an iteration chunk of a
// DOALL loop.
type regionItem struct {
	name string
	// node is the HTG child (nil for chunk items).
	node *htg.Node
	// cands[c] lists the selectable solutions when the item executes on
	// class c (COSTS/USEDPROCS providers). Always non-empty per class.
	cands [][]*Solution
	// chunkFrac is the iteration fraction for chunk items.
	chunkFrac float64
	// inCommNs / outCommNs are the total boundary communication costs if
	// the item is placed outside the main task.
	inCommNs  float64
	outCommNs float64
}

// regionEdge is a dependence between region items.
type regionEdge struct {
	from, to int
	// commNs is the total communication cost paid when from and to land in
	// different tasks (0 for pure ordering constraints).
	commNs float64
}

// regionSpec is the abstract input of one ILPPAR invocation.
type regionSpec struct {
	node  *htg.Node
	items []*regionItem
	edges []regionEdge
	// spawnCount is EC in Eq. 8: how many times the task set is created.
	spawnCount float64
	// kind records how a winning partition executes (task or chunk based).
	kind SolutionKind
}

// chunkCount picks the number of iteration chunks for DOALL splitting:
// enough granularity to balance the most skewed shipped platform (5x clock
// spread) without blowing up the ILP.
func chunkCount(pf *platform.Platform, iters float64) int {
	k := 3 * pf.NumCores()
	if k > 12 {
		k = 12
	}
	if iters > 0 && float64(k) > iters {
		k = int(iters)
	}
	if k < 2 {
		k = 2
	}
	return k
}

// statementRegion builds the region over node's child statements, using
// the candidate sets collected by the bottom-up recursion.
func (p *Parallelizer) statementRegion(node *htg.Node, sets map[*htg.Node]*SolutionSet) *regionSpec {
	rs := &regionSpec{node: node, kind: KindTaskParallel}
	// EC: tasks are spawned once per execution of the region's body. For
	// loop nodes the children run per iteration, so creation happens per
	// iteration (fork-join inside the loop).
	rs.spawnCount = float64(node.TotalCount)
	if node.Kind == htg.KindLoop {
		iters := 0.0
		for _, c := range node.Children {
			if c.Count > iters {
				iters = c.Count
			}
		}
		if iters < 1 {
			iters = 1
		}
		rs.spawnCount = float64(node.TotalCount) * iters
	}
	idx := map[*htg.Node]int{}
	for _, child := range node.Children {
		it := &regionItem{name: child.Label, node: child}
		set := sets[child]
		it.cands = make([][]*Solution, len(p.pf.Classes))
		for c := range p.pf.Classes {
			it.cands[c] = set.ByClass[c]
		}
		transfers := float64(child.TotalCount)
		it.inCommNs = p.pf.CommCostNs(child.InBytes) * transfers
		it.outCommNs = p.pf.CommCostNs(child.OutBytes) * transfers
		idx[child] = len(rs.items)
		rs.items = append(rs.items, it)
	}
	for _, child := range node.Children {
		for _, e := range child.Edges {
			to, ok := idx[e.To]
			if !ok {
				continue
			}
			comm := 0.0
			if e.Bytes > 0 {
				comm = p.pf.CommCostNs(e.Bytes) * float64(e.To.TotalCount)
			}
			rs.edges = append(rs.edges, regionEdge{from: idx[child], to: to, commNs: comm})
		}
	}
	return rs
}

// chunkRegion builds the iteration-chunk region for a DOALL loop node.
// Chunks are independent (no edges); tasks are spawned once per loop
// execution, which is what makes chunked solutions so much cheaper than
// per-iteration fork-join for hot loops.
func (p *Parallelizer) chunkRegion(node *htg.Node) *regionSpec {
	iters := 0.0
	for _, c := range node.Children {
		if c.Count > iters {
			iters = c.Count
		}
	}
	k := chunkCount(p.pf, iters)
	rs := &regionSpec{node: node, kind: KindChunked, spawnCount: float64(node.TotalCount)}
	frac := 1.0 / float64(k)
	totalCyclesPerExec := node.SubtreeCycles
	for i := 0; i < k; i++ {
		it := &regionItem{
			name:      "chunk",
			node:      node, // the loop node; chunkFrac marks this as a slice of it
			chunkFrac: frac,
		}
		it.cands = make([][]*Solution, len(p.pf.Classes))
		for c := range p.pf.Classes {
			procs := make([]int, len(p.pf.Classes))
			procs[c] = 1
			it.cands[c] = []*Solution{{
				Node:      node,
				Kind:      KindSequential,
				MainClass: c,
				TimeNs:    float64(node.TotalCount) * p.pf.Classes[c].CyclesToNanos(totalCyclesPerExec) * frac,
				ProcsUsed: procs,
				NumTasks:  1,
			}}
		}
		// Boundary data: each chunk imports/exports its slice of the
		// loop's in/out footprint, once per loop execution.
		it.inCommNs = p.pf.CommCostNs(int(float64(node.InBytes)*frac)) * float64(node.TotalCount)
		it.outCommNs = p.pf.CommCostNs(int(float64(node.OutBytes)*frac)) * float64(node.TotalCount)
		rs.items = append(rs.items, it)
	}
	return rs
}

// clusterRegion merges the cheapest adjacent items until the region has at
// most maxItems, bounding per-ILP size. Merged items execute consecutively
// in one task, so only sequential candidates remain for them — acceptable
// because only the cheapest items are merged (automatic granularity
// control via the cost model, contribution 2 of the paper).
func (p *Parallelizer) clusterRegion(rs *regionSpec, maxItems int) *regionSpec {
	for len(rs.items) > maxItems {
		// Find the adjacent pair with the smallest combined best-case cost.
		bestIdx, bestCost := -1, 0.0
		for i := 0; i+1 < len(rs.items); i++ {
			c := p.itemMinCost(rs.items[i]) + p.itemMinCost(rs.items[i+1])
			if bestIdx < 0 || c < bestCost {
				bestIdx, bestCost = i, c
			}
		}
		rs = p.mergeItems(rs, bestIdx)
	}
	return rs
}

// itemMinCost is the fastest candidate cost over all classes.
func (p *Parallelizer) itemMinCost(it *regionItem) float64 {
	best := -1.0
	for _, cl := range it.cands {
		for _, s := range cl {
			if best < 0 || s.TimeNs < best {
				best = s.TimeNs
			}
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

// mergeItems fuses items i and i+1 into a single sequential super-item.
func (p *Parallelizer) mergeItems(rs *regionSpec, i int) *regionSpec {
	a, b := rs.items[i], rs.items[i+1]
	merged := &regionItem{
		name:      a.name + "+" + b.name,
		node:      a.node, // representative; taskspec resolves both via plan items
		inCommNs:  a.inCommNs + b.inCommNs,
		outCommNs: a.outCommNs + b.outCommNs,
		chunkFrac: a.chunkFrac + b.chunkFrac,
	}
	merged.cands = make([][]*Solution, len(p.pf.Classes))
	for c := range p.pf.Classes {
		sa, sb := seqCandOn(a, c), seqCandOn(b, c)
		if sa == nil || sb == nil {
			continue
		}
		procs := make([]int, len(p.pf.Classes))
		procs[c] = 1
		merged.cands[c] = []*Solution{{
			Node:      a.nodeOr(rs.node),
			Kind:      KindSequential,
			MainClass: c,
			TimeNs:    sa.TimeNs + sb.TimeNs,
			ProcsUsed: procs,
			NumTasks:  1,
			merged:    []*regionItem{a, b},
		}}
	}
	items := append([]*regionItem(nil), rs.items[:i]...)
	items = append(items, merged)
	items = append(items, rs.items[i+2:]...)
	// Remap edges.
	remap := func(j int) int {
		switch {
		case j < i:
			return j
		case j == i || j == i+1:
			return i
		default:
			return j - 1
		}
	}
	var edges []regionEdge
	for _, e := range rs.edges {
		f, t := remap(e.from), remap(e.to)
		if f == t {
			continue
		}
		edges = append(edges, regionEdge{from: f, to: t, commNs: e.commNs})
	}
	return &regionSpec{node: rs.node, items: items, edges: edges, spawnCount: rs.spawnCount, kind: rs.kind}
}

// nodeOr returns the item's node or a fallback.
func (it *regionItem) nodeOr(fallback *htg.Node) *htg.Node {
	if it.node != nil {
		return it.node
	}
	return fallback
}

// seqCandOn returns the item's purely sequential candidate on class c.
// Matching on Kind matters: a single-task candidate can still carry an
// inner-parallel sub-solution (extra processors), and the callers here —
// pipeline stages, chunk costs, merged super-items — all budget exactly one
// unit for the item. The pruned front always retains the sequential
// candidate (it is the unique one-processor point, hence the leanest end).
func seqCandOn(it *regionItem, c int) *Solution {
	for _, s := range it.cands[c] {
		if s.Kind == KindSequential {
			return s
		}
	}
	if len(it.cands[c]) > 0 {
		return it.cands[c][len(it.cands[c])-1]
	}
	return nil
}
