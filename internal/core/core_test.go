package core

import (
	"testing"

	"repro/internal/htg"
	"repro/internal/interp"
	"repro/internal/minic"
	"repro/internal/platform"
)

// buildGraph compiles, profiles and builds the HTG for src.
func buildGraph(t *testing.T, src string) *htg.Graph {
	t.Helper()
	prog, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	in := interp.New(prog)
	prof, err := in.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	g, err := htg.Build(prog, prof, htg.Config{})
	if err != nil {
		t.Fatalf("htg: %v", err)
	}
	return g
}

// hotLoopSrc is a compute-heavy DOALL loop: the canonical chunking case.
const hotLoopSrc = `
#define N 512
float a[N]; float b[N];
void main(void) {
    for (int i = 0; i < N; i++) {
        float x = i * 0.5;
        a[i] = x * x + sqrt(x + 1.0) * 3.0;
    }
    for (int j = 0; j < N; j++) {
        b[j] = a[j] * 2.0 + sqrt(a[j] + 4.0);
    }
}
`

// independentWorkSrc has four independent heavy loops: task-level
// parallelism at the root.
const independentWorkSrc = `
#define N 256
float a[N]; float b[N]; float c[N]; float d[N];
void main(void) {
    for (int i = 0; i < N; i++) { a[i] = sqrt(i * 1.0 + 1.0) * 2.0; }
    for (int i = 0; i < N; i++) { b[i] = sqrt(i * 2.0 + 1.0) * 3.0; }
    for (int i = 0; i < N; i++) { c[i] = sqrt(i * 3.0 + 1.0) * 4.0; }
    for (int i = 0; i < N; i++) { d[i] = sqrt(i * 4.0 + 1.0) * 5.0; }
}
`

func parallelizeOn(t *testing.T, src string, pf *platform.Platform, sc platform.Scenario, ap Approach) (*htg.Graph, *Result) {
	t.Helper()
	g := buildGraph(t, src)
	res, err := Parallelize(g, pf, sc.MainClass(pf), ap, Config{})
	if err != nil {
		t.Fatalf("Parallelize: %v", err)
	}
	return g, res
}

func TestHeteroExtractsParallelism(t *testing.T) {
	pf := platform.ConfigA()
	g, res := parallelizeOn(t, hotLoopSrc, pf, platform.ScenarioAccelerator, Heterogeneous)
	if res.Best.TotalProcs() < 2 {
		t.Fatalf("expected parallel solution, got %s", res.Best)
	}
	seq := res.SequentialTimeNs(g)
	if res.Best.TimeNs >= seq {
		t.Fatalf("parallel estimate %.0fns not better than sequential %.0fns", res.Best.TimeNs, seq)
	}
	sp := res.EstimatedSpeedup(g)
	if sp < 2 {
		t.Errorf("estimated speedup %.2f too low for a hot DOALL program", sp)
	}
	t.Logf("estimated speedup: %.2fx (limit %.2fx)", sp, pf.TheoreticalSpeedup(res.MainClass))
}

func TestProcBudgetRespected(t *testing.T) {
	pf := platform.ConfigA()
	_, res := parallelizeOn(t, independentWorkSrc, pf, platform.ScenarioAccelerator, Heterogeneous)
	var check func(s *Solution)
	check = func(s *Solution) {
		for c, used := range s.ProcsUsed {
			if used > pf.Classes[c].Count {
				t.Errorf("solution %s allocates %d units of class %d (max %d)",
					s, used, c, pf.Classes[c].Count)
			}
		}
		for _, task := range s.Tasks {
			for _, it := range task.Items {
				if it.Sub != nil && it.Sub.Kind != KindSequential {
					check(it.Sub)
				}
			}
		}
	}
	check(res.Best)
}

func TestMainTaskOnMainClass(t *testing.T) {
	pf := platform.ConfigA()
	main := platform.ScenarioAccelerator.MainClass(pf)
	_, res := parallelizeOn(t, hotLoopSrc, pf, platform.ScenarioAccelerator, Heterogeneous)
	if res.Best.MainClass != main {
		t.Errorf("main class = %d, want %d", res.Best.MainClass, main)
	}
	if len(res.Best.Tasks) > 0 && res.Best.Tasks[0].Class != main {
		t.Errorf("task 0 class = %d, want %d", res.Best.Tasks[0].Class, main)
	}
}

func TestHomogeneousBaselineUniform(t *testing.T) {
	pf := platform.ConfigA()
	g, res := parallelizeOn(t, hotLoopSrc, pf, platform.ScenarioAccelerator, Homogeneous)
	if len(res.Platform.Classes) != 1 {
		t.Fatalf("homogeneous run must use a single-class pseudo platform")
	}
	if res.Platform.NumCores() != pf.NumCores() {
		t.Errorf("pseudo platform cores = %d, want %d", res.Platform.NumCores(), pf.NumCores())
	}
	if res.Best.TotalProcs() < 2 {
		t.Fatalf("homogeneous approach should still parallelize: %s", res.Best)
	}
	_ = g
}

func TestHeteroBeatsHomoEstimateOnSkewedPlatform(t *testing.T) {
	pf := platform.ConfigA()
	g := buildGraph(t, hotLoopSrc)
	main := platform.ScenarioAccelerator.MainClass(pf)
	het, err := Parallelize(g, pf, main, Heterogeneous, Config{})
	if err != nil {
		t.Fatalf("hetero: %v", err)
	}
	// The hetero estimate uses the real platform: its absolute time must
	// beat the homogeneous estimate evaluated with honest (real) speeds.
	// Homogeneous thinks all cores run at 100 MHz, so its plan spreads
	// work evenly; on the real platform the slow core then dominates.
	// Here we only check that hetero's estimated time uses the fast cores:
	// it must beat 1/NumCores-even-split on the main class.
	seqMain := het.SequentialTimeNs(g)
	evenSplit := seqMain / float64(pf.NumCores())
	if het.Best.TimeNs > seqMain {
		t.Errorf("hetero slower than sequential")
	}
	if het.Best.TimeNs > evenSplit*2.0 {
		t.Errorf("hetero estimate %.0f not clearly better than even split %.0f on slow main", het.Best.TimeNs, evenSplit)
	}
}

func TestStatsGrowHeteroVsHomo(t *testing.T) {
	pf := platform.ConfigA()
	g := buildGraph(t, independentWorkSrc)
	main := platform.ScenarioAccelerator.MainClass(pf)
	het, err := Parallelize(g, pf, main, Heterogeneous, Config{})
	if err != nil {
		t.Fatalf("hetero: %v", err)
	}
	hom, err := Parallelize(g, pf, main, Homogeneous, Config{})
	if err != nil {
		t.Fatalf("homo: %v", err)
	}
	if het.Stats.NumILPs <= hom.Stats.NumILPs {
		t.Errorf("hetero ILPs (%d) should exceed homo (%d) — Table I shape",
			het.Stats.NumILPs, hom.Stats.NumILPs)
	}
	if het.Stats.NumVars <= hom.Stats.NumVars {
		t.Errorf("hetero vars (%d) should exceed homo (%d)", het.Stats.NumVars, hom.Stats.NumVars)
	}
	if het.Stats.NumConstraints <= hom.Stats.NumConstraints {
		t.Errorf("hetero constraints (%d) should exceed homo (%d)",
			het.Stats.NumConstraints, hom.Stats.NumConstraints)
	}
	t.Logf("ILPs %d vs %d, vars %d vs %d, cons %d vs %d",
		het.Stats.NumILPs, hom.Stats.NumILPs, het.Stats.NumVars, hom.Stats.NumVars,
		het.Stats.NumConstraints, hom.Stats.NumConstraints)
}

func TestCandidateSetsHaveSequentialPerClass(t *testing.T) {
	pf := platform.ConfigB()
	_, res := parallelizeOn(t, hotLoopSrc, pf, platform.ScenarioSlowerCores, Heterogeneous)
	for node, set := range res.Sets {
		for c := range set.ByClass {
			if len(set.ByClass[c]) == 0 {
				t.Errorf("node %s: empty candidate set for class %d (violates Eq. 18 guarantee)",
					node.Label, c)
			}
			hasSeq := false
			for _, s := range set.ByClass[c] {
				if s.NumTasks == 1 {
					hasSeq = true
				}
			}
			if !hasSeq {
				t.Errorf("node %s class %d: no sequential candidate", node.Label, c)
			}
		}
	}
}

func TestParetoPruning(t *testing.T) {
	pf := platform.ConfigA()
	_, res := parallelizeOn(t, independentWorkSrc, pf, platform.ScenarioAccelerator, Heterogeneous)
	for node, set := range res.Sets {
		for c, cands := range set.ByClass {
			for i := 0; i+1 < len(cands); i++ {
				if cands[i].TimeNs > cands[i+1].TimeNs {
					t.Errorf("node %s class %d: candidates not sorted by time", node.Label, c)
				}
				if cands[i].TotalProcs() <= cands[i+1].TotalProcs() {
					t.Errorf("node %s class %d: candidate %d dominated (procs %d <= %d with better time)",
						node.Label, c, i+1, cands[i].TotalProcs(), cands[i+1].TotalProcs())
				}
			}
		}
	}
}

func TestDisableChunkingAblation(t *testing.T) {
	pf := platform.ConfigA()
	g := buildGraph(t, hotLoopSrc)
	main := platform.ScenarioAccelerator.MainClass(pf)
	with, err := Parallelize(g, pf, main, Heterogeneous, Config{})
	if err != nil {
		t.Fatalf("with: %v", err)
	}
	without, err := Parallelize(g, pf, main, Heterogeneous, Config{DisableChunking: true})
	if err != nil {
		t.Fatalf("without: %v", err)
	}
	if with.Best.TimeNs >= without.Best.TimeNs {
		t.Errorf("chunking should improve the hot-loop program: with=%.0f without=%.0f",
			with.Best.TimeNs, without.Best.TimeNs)
	}
}

func TestSequentialWhenNoParallelism(t *testing.T) {
	// A tight scalar recurrence has no extractable parallelism worth the
	// overhead; the tool must fall back to sequential execution.
	src := `
float x;
void main(void) {
    x = 1.0;
    for (int i = 0; i < 100; i++) {
        x = x * 1.01 + 0.5;
    }
}
`
	pf := platform.ConfigA()
	g, res := parallelizeOn(t, src, pf, platform.ScenarioAccelerator, Heterogeneous)
	seq := res.SequentialTimeNs(g)
	// Whatever the tool picked must not be slower than sequential.
	if res.Best.TimeNs > seq*1.0001 {
		t.Errorf("chosen solution (%.0fns) is worse than sequential (%.0fns)", res.Best.TimeNs, seq)
	}
}

func TestSolutionDescribe(t *testing.T) {
	pf := platform.ConfigA()
	_, res := parallelizeOn(t, hotLoopSrc, pf, platform.ScenarioAccelerator, Heterogeneous)
	out := res.Best.Describe(res.Platform)
	if len(out) == 0 {
		t.Errorf("Describe produced nothing")
	}
}
