package core

import (
	"fmt"
	"math"

	"repro/internal/ilp"
)

// ilpParChunks solves the DOALL iteration-splitting problem for a chunk
// region. Chunks of one loop are interchangeable, so instead of the
// symmetric node-to-task binaries of Eq. 1 the model uses one integer
// variable per task counting its chunks. This is an extension of the
// paper's formulation (the paper's granularity levels include "loop
// iterations" but its ILP is only spelled out for statement nodes); the
// collapsed model is equivalent for identical chunks and removes a 12!-way
// symmetry that general branch-and-bound cannot digest.
//
// All other ingredients match ilpParHetero: a task-to-class mapping with
// per-class core budgets, task-creation overhead per spawn, boundary
// communication per chunk, and an improvement bound against sequential
// execution on seqPC.
func (p *Parallelizer) ilpParChunks(rs *regionSpec, seqPC, maxTasks int) *regionAssignment {
	k := len(rs.items)
	nClasses := len(p.pf.Classes)
	T := maxTasks
	if T > p.pf.NumCores() {
		T = p.pf.NumCores()
	}
	if T < 2 || k < 2 {
		return nil
	}
	// Per-class cost of one chunk (seq candidate) and boundary comm.
	chunkNs := make([]float64, nClasses)
	for c := 0; c < nClasses; c++ {
		cand := seqCandOn(rs.items[0], c)
		if cand == nil {
			return nil
		}
		chunkNs[c] = cand.TimeNs
	}
	inComm := rs.items[0].inCommNs
	outComm := rs.items[0].outCommNs
	seqTime := float64(k) * chunkNs[seqPC]
	spawnOverheadNs := rs.spawnCount * p.pf.TaskCreateNs
	if spawnOverheadNs >= seqTime {
		return nil
	}
	worst := 0.0
	for _, c := range chunkNs {
		if c > worst {
			worst = c
		}
	}
	bigM := float64(k)*(worst+inComm+outComm) + spawnOverheadNs + 1

	m := ilp.NewModel()
	cnt := make([]ilp.VarID, T)
	used := make([]ilp.VarID, T)
	mp := make([][]ilp.VarID, T)
	cost := make([]ilp.VarID, T)
	w := make([][]ilp.VarID, T)
	for t := 0; t < T; t++ {
		cnt[t] = m.AddInt(fmt.Sprintf("cnt_t%d", t), 0, float64(k), 0)
		m.SetPriority(cnt[t], 3)
		used[t] = m.AddBinary(fmt.Sprintf("used_t%d", t), 0)
		m.SetPriority(used[t], 2)
		cost[t] = m.AddVar(fmt.Sprintf("cost_t%d", t), 0, math.Inf(1), 0)
		mp[t] = make([]ilp.VarID, nClasses)
		w[t] = make([]ilp.VarID, nClasses)
		for c := 0; c < nClasses; c++ {
			mp[t][c] = m.AddBinary(fmt.Sprintf("map_t%d_c%d", t, c), 0)
			m.SetPriority(mp[t][c], 3)
			w[t][c] = m.AddVar(fmt.Sprintf("w_t%d_c%d", t, c), 0, 1, 0)
		}
	}
	exectime := m.AddVar("exectime", 0, seqTime*0.999, 1)

	// Every chunk is executed exactly once.
	{
		terms := make([]ilp.Term, T)
		for t := 0; t < T; t++ {
			terms[t] = ilp.Term{Var: cnt[t], Coeff: 1}
		}
		m.AddCons("all_chunks", terms, ilp.EQ, float64(k))
	}
	for t := 0; t < T; t++ {
		// Task class assignment.
		terms := make([]ilp.Term, nClasses)
		for c := 0; c < nClasses; c++ {
			terms[c] = ilp.Term{Var: mp[t][c], Coeff: 1}
		}
		m.AddCons(fmt.Sprintf("one_class_t%d", t), terms, ilp.EQ, 1)
		// used[t] = 1 whenever the task holds chunks.
		m.AddCons(fmt.Sprintf("used_t%d", t),
			[]ilp.Term{{Var: used[t], Coeff: float64(k)}, {Var: cnt[t], Coeff: -1}}, ilp.GE, 0)
		if t+1 < T {
			m.AddCons(fmt.Sprintf("used_mono_t%d", t),
				[]ilp.Term{{Var: used[t], Coeff: 1}, {Var: used[t+1], Coeff: -1}}, ilp.GE, 0)
			// Symmetry breaking: later tasks never hold more chunks than
			// earlier ones unless their class differs... plain monotone
			// counts are not valid with classes, so only prefix-usedness
			// is enforced.
		}
		// Task cost per class: cost >= chunkNs_c*cnt - M(1-map) (+spawn,
		// +boundary comm for non-main tasks).
		for c := 0; c < nClasses; c++ {
			terms := []ilp.Term{
				{Var: cost[t], Coeff: 1},
				{Var: cnt[t], Coeff: -chunkNs[c]},
				{Var: mp[t][c], Coeff: -bigM},
			}
			if t != 0 {
				terms = append(terms, ilp.Term{Var: used[t], Coeff: -spawnOverheadNs})
				terms[1].Coeff -= inComm + outComm
			}
			m.AddCons(fmt.Sprintf("cost_t%d_c%d", t, c), terms, ilp.GE, -bigM)
		}
		m.AddCons(fmt.Sprintf("span_t%d", t),
			[]ilp.Term{{Var: exectime, Coeff: 1}, {Var: cost[t], Coeff: -1}}, ilp.GE, 0)
		// w = and(map, used) for the budget.
		for c := 0; c < nClasses; c++ {
			m.AddCons(fmt.Sprintf("w_t%d_c%d", t, c),
				[]ilp.Term{
					{Var: w[t][c], Coeff: 1},
					{Var: mp[t][c], Coeff: -1},
					{Var: used[t], Coeff: -1},
				}, ilp.GE, -1)
		}
	}
	m.AddCons("main_class", []ilp.Term{{Var: mp[0][seqPC], Coeff: 1}}, ilp.EQ, 1)
	m.AddCons("main_used", []ilp.Term{{Var: used[0], Coeff: 1}}, ilp.EQ, 1)
	for c := 0; c < nClasses; c++ {
		var terms []ilp.Term
		for t := 0; t < T; t++ {
			terms = append(terms, ilp.Term{Var: w[t][c], Coeff: 1})
		}
		m.AddCons(fmt.Sprintf("budget_c%d", c), terms, ilp.LE, float64(p.pf.Classes[c].Count))
	}

	res := p.solve(m, solveMeta{region: regionLabel(rs), model: "chunks", class: seqPC, tasks: T})
	if res == nil {
		return nil
	}
	// Extract: distribute chunk items to tasks by count.
	on := func(id ilp.VarID) float64 { return res.X[id] }
	a := &regionAssignment{
		TaskOf:    make([]int, k),
		CandClass: make([]int, k),
		CandSlot:  make([]int, k),
		ClassOf:   make([]int, T),
		Obj:       res.Obj,
	}
	next := 0
	for t := 0; t < T; t++ {
		a.ClassOf[t] = seqPC
		for c := 0; c < nClasses; c++ {
			if on(mp[t][c]) > 0.5 {
				a.ClassOf[t] = c
			}
		}
		n := int(math.Round(on(cnt[t])))
		for j := 0; j < n && next < k; j++ {
			a.TaskOf[next] = t
			next++
		}
	}
	for ; next < k; next++ {
		a.TaskOf[next] = 0 // rounding remainder stays on the main task
	}
	for i := 0; i < k; i++ {
		// Each chunk runs its task class's sequential candidate.
		a.CandClass[i], a.CandSlot[i] = a.ClassOf[a.TaskOf[i]], -1
	}
	return a
}

// regionSolver dispatches a region to the right ILP.
func (p *Parallelizer) regionSolver(rs *regionSpec, seqPC, maxTasks int) *regionAssignment {
	if rs.kind == KindChunked {
		return p.ilpParChunks(rs, seqPC, maxTasks)
	}
	return p.ilpParHetero(rs, seqPC, maxTasks)
}
