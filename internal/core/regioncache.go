package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"time"
)

// Region-solve caching: every region ILP is identified by a canonical
// fingerprint of exactly the facts the solver sees — the items'
// per-class candidate costs, boundary and edge communication, spawn
// accounting, the platform's class budgets and task-creation overhead,
// and the solver configuration. Two solves with equal keys run the
// same deterministic search and reach the same decisions, so the store
// can hand back a previously computed regionAssignment (pure indices,
// no pointers) and the caller reassembles it against its own
// regionSpec. That makes cached results portable across benchmarks,
// scenarios and sweep points: a region keeps its solution as long as
// the varied parameter does not change any solver-visible number.
//
// Notably the key excludes the region's HTG label and the main-class
// scenario of the *surrounding* run: parallelizeNode solves every
// region for every seqPC class regardless of the requested scenario, so
// two scenarios on one platform share their entire region workload.

// regionAssignment is the portable result of one region ILP: pure
// index-based decisions, reassembled against the caller's regionSpec.
type regionAssignment struct {
	// TaskOf maps item index to task index.
	TaskOf []int
	// CandClass/CandSlot select item candidates: cands[CandClass[n]][CandSlot[n]],
	// with slot -1 meaning the sequential candidate on CandClass[n].
	CandClass []int
	CandSlot  []int
	// ClassOf maps task index to processor class.
	ClassOf []int
	// Obj is the solver objective (the solution's TimeNs).
	Obj float64
	// Pipelined marks stage-partitioning results (KindPipelined).
	Pipelined bool
}

// regionOutcome is the store value of one region solve. A nil Asg
// records a proven "no improvement over sequential" so unprofitable
// regions are never re-solved. Recs carries the solve telemetry for
// replay on hits, keeping Stats independent of cache warmth.
type regionOutcome struct {
	Asg  *regionAssignment
	Recs []SolveRecord
}

// scratch derives a Parallelizer that shares the platform and config
// but accumulates records privately — the per-unit and per-computation
// collector that keeps concurrent record accumulation ordered.
func (p *Parallelizer) scratch() *Parallelizer {
	return &Parallelizer{pf: p.pf, cfg: p.cfg}
}

// scratchWithStore is scratch plus the shared store (for region units,
// which consult the store; store-computation scratches must not, or a
// singleflight computation could deadlock on its own key).
func (p *Parallelizer) scratchWithStore() *Parallelizer {
	s := p.scratch()
	s.store = p.store
	return s
}

// recordSolve appends one solve record under the parallelizer's lock.
func (p *Parallelizer) recordSolve(rec SolveRecord) {
	p.mu.Lock()
	p.stats.record(rec)
	p.mu.Unlock()
}

// replayRecords re-emits cached solve telemetry under the caller's
// region label (the label names the HTG node and is deliberately not
// part of the key).
func (p *Parallelizer) replayRecords(recs []SolveRecord, label string) {
	for _, rec := range recs {
		rec.Region = label
		p.recordSolve(rec)
	}
}

// regionModel names the solve model of a region spec for telemetry
// labels, matching the SolveRecord model names.
func regionModel(rs *regionSpec) string {
	if rs.kind == KindChunked {
		return "chunks"
	}
	return "tasks"
}

// noteRegionSolve feeds the labeled per-region telemetry families:
// core.region.solves{model,source} and the latency histogram
// core.region.solve_time{model}. Free no-ops without a registry.
func (p *Parallelizer) noteRegionSolve(model string, cached bool, d time.Duration) {
	m := p.cfg.Metrics
	if m == nil {
		return
	}
	source := "computed"
	if cached {
		source = "cached"
	}
	m.CounterVec("core.region.solves", "model", "source").With(model, source).Inc()
	m.HistogramVec("core.region.solve_time", "model").With(model).Observe(d)
}

// solveRegion runs one region ILP (tasks or chunks model per rs.kind)
// through the shared store when one is configured.
func (p *Parallelizer) solveRegion(rs *regionSpec, seqPC, maxTasks int) *Solution {
	start := time.Now() //repolint:allow timenow (telemetry only, never solver-visible)
	if p.store == nil {
		sol := p.assembleFromAssignment(rs, p.regionSolver(rs, seqPC, maxTasks), seqPC)
		p.noteRegionSolve(regionModel(rs), false, time.Since(start)) //repolint:allow timenow
		return sol
	}
	key := p.regionKey(rs, seqPC, maxTasks, 0, false)
	v, cached := p.store.GetOrCompute(key, func() any {
		scratch := p.scratch()
		return &regionOutcome{
			Asg:  scratch.regionSolver(rs, seqPC, maxTasks),
			Recs: scratch.stats.Solves,
		}
	})
	out := v.(*regionOutcome)
	p.replayRecords(out.Recs, regionLabel(rs))
	p.noteRegionSolve(regionModel(rs), cached, time.Since(start)) //repolint:allow timenow
	return p.assembleFromAssignment(rs, out.Asg, seqPC)
}

// solvePipeline is solveRegion for the stage-partitioning model.
func (p *Parallelizer) solvePipeline(rs *regionSpec, iters float64, seqPC, maxTasks int) *Solution {
	start := time.Now() //repolint:allow timenow (telemetry only, never solver-visible)
	if p.store == nil {
		sol := p.assembleFromAssignment(rs, p.ilpParPipeline(rs, iters, seqPC, maxTasks), seqPC)
		p.noteRegionSolve("pipeline", false, time.Since(start)) //repolint:allow timenow
		return sol
	}
	key := p.regionKey(rs, seqPC, maxTasks, iters, true)
	v, cached := p.store.GetOrCompute(key, func() any {
		scratch := p.scratch()
		return &regionOutcome{
			Asg:  scratch.ilpParPipeline(rs, iters, seqPC, maxTasks),
			Recs: scratch.stats.Solves,
		}
	})
	out := v.(*regionOutcome)
	p.replayRecords(out.Recs, regionLabel(rs))
	p.noteRegionSolve("pipeline", cached, time.Since(start)) //repolint:allow timenow
	return p.assembleFromAssignment(rs, out.Asg, seqPC)
}

// assembleFromAssignment materializes a Solution from a cached or fresh
// assignment against the caller's regionSpec. Returns nil for nil
// assignments and for assignments that assemble to a degenerate
// (sequential, no inner parallelism) solution.
func (p *Parallelizer) assembleFromAssignment(rs *regionSpec, a *regionAssignment, seqPC int) *Solution {
	if a == nil {
		return nil
	}
	chosen := make([]*Solution, len(rs.items))
	for n, it := range rs.items {
		if a.CandSlot[n] >= 0 {
			chosen[n] = it.cands[a.CandClass[n]][a.CandSlot[n]]
		} else {
			chosen[n] = seqCandOn(it, a.CandClass[n])
		}
	}
	sol := p.assembleSolution(rs, a.TaskOf, chosen, a.ClassOf, seqPC, a.Obj)
	if sol == nil {
		return nil
	}
	if a.Pipelined {
		sol.Kind = KindPipelined
	}
	return sol
}

// regionKey computes the canonical fingerprint of one region solve.
func (p *Parallelizer) regionKey(rs *regionSpec, seqPC, maxTasks int, iters float64, pipeline bool) string {
	h := sha256.New()
	var buf [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wi := func(v int) { wu(uint64(int64(v))) }
	wf := func(v float64) { wu(math.Float64bits(v)) }

	h.Write([]byte("rk1|"))
	h.Write([]byte(p.cfg.Fingerprint()))
	// Platform facts the models read directly; clocks and bus parameters
	// enter only through the item numerics below, so platforms that
	// price a region identically share its solutions.
	wf(p.pf.TaskCreateNs)
	wi(len(p.pf.Classes))
	for _, cl := range p.pf.Classes {
		wi(cl.Count)
	}
	wi(seqPC)
	wi(maxTasks)
	if pipeline {
		wi(1)
	} else {
		wi(0)
	}
	wf(iters)
	wi(int(rs.kind))
	wf(rs.spawnCount)
	wi(len(rs.items))
	for _, it := range rs.items {
		wf(it.inCommNs)
		wf(it.outCommNs)
		wi(len(it.cands))
		for _, cl := range it.cands {
			wi(len(cl))
			for _, s := range cl {
				wf(s.TimeNs)
				wi(int(s.Kind))
				wi(s.NumTasks)
				wi(len(s.ProcsUsed))
				for _, n := range s.ProcsUsed {
					wi(n)
				}
			}
		}
	}
	wi(len(rs.edges))
	for _, e := range rs.edges {
		wi(e.from)
		wi(e.to)
		wf(e.commNs)
	}
	return "region|" + hex.EncodeToString(h.Sum(nil))
}

// regionUnit is one independently solvable work packet of a node's
// parallel-set construction: the full downward task-bound sweep of one
// (region, main-class) pair, or one pipeline class. Units run
// concurrently on the RegionWorkers pool and are merged in unit order,
// which reproduces the sequential solve and record order exactly.
type regionUnit struct {
	seqPC int
	run   func(sub *Parallelizer) []*Solution
	sols  []*Solution
	recs  []SolveRecord
}

// execute runs the unit on a private sub-parallelizer and captures its
// solutions and records for the ordered merge.
func (u *regionUnit) execute(parent *Parallelizer) {
	sub := parent.scratchWithStore()
	u.sols = u.run(sub)
	u.recs = sub.stats.Solves
}

// runUnits executes units sequentially or on a bounded worker pool of
// cfg.RegionWorkers goroutines. Either way the units' results are
// only read after all of them complete, and the caller merges them in
// unit order, so scheduling cannot influence any output.
func (p *Parallelizer) runUnits(units []*regionUnit) {
	m := p.cfg.Metrics
	m.Counter("core.region_pool.units").Add(int64(len(units)))
	workers := p.cfg.RegionWorkers
	if workers > len(units) {
		workers = len(units)
	}
	if workers <= 1 {
		for _, u := range units {
			u.execute(p)
		}
		return
	}
	// Pool occupancy gauges: queue depth counts units submitted but not
	// yet picked up, busy counts workers inside execute. Both are
	// telemetry only — unit results are merged in unit order regardless.
	queueDepth := m.Gauge("core.region_pool.queue_depth")
	busy := m.Gauge("core.region_pool.busy")
	m.Gauge("core.region_pool.workers").Set(float64(workers))
	ch := make(chan *regionUnit)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			for u := range ch {
				queueDepth.Add(-1)
				busy.Add(1)
				u.execute(p)
				busy.Add(-1)
			}
			done <- struct{}{}
		}()
	}
	for _, u := range units {
		queueDepth.Add(1)
		ch <- u
	}
	close(ch)
	for w := 0; w < workers; w++ {
		<-done
	}
}

// mergeUnits folds unit results into the node's solution set and the
// parallelizer's stats, in unit order.
func (p *Parallelizer) mergeUnits(set *SolutionSet, units []*regionUnit) {
	for _, u := range units {
		set.ByClass[u.seqPC] = append(set.ByClass[u.seqPC], u.sols...)
		for _, rec := range u.recs {
			p.recordSolve(rec)
		}
	}
}
