// Package core implements the paper's contribution: the hierarchical,
// ILP-based extraction of task-level parallelism for heterogeneous MPSoCs
// (Algorithm 1 and the partitioning-and-mapping model of Section IV), plus
// the homogeneous baseline of [Cordes et al., CODES+ISSS 2010] used as the
// comparison point in the evaluation.
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/htg"
	"repro/internal/platform"
)

// SolutionKind describes how a parallel solution candidate executes its
// node.
type SolutionKind int

// Solution kinds.
const (
	// KindSequential runs the whole subtree on the main class, in order.
	KindSequential SolutionKind = iota
	// KindTaskParallel distributes the node's child statements over tasks
	// (the fork-join produced by the ILP of Section IV).
	KindTaskParallel
	// KindChunked splits a DOALL loop's iteration space over tasks.
	KindChunked
	// KindPipelined splits a recurrence loop's body into stages that
	// overlap across iterations (decoupled software pipelining; the
	// paper's stated future-work extension).
	KindPipelined
)

// String names the kind.
func (k SolutionKind) String() string {
	switch k {
	case KindSequential:
		return "seq"
	case KindTaskParallel:
		return "tasks"
	case KindChunked:
		return "chunked"
	case KindPipelined:
		return "pipelined"
	}
	return fmt.Sprintf("SolutionKind(%d)", int(k))
}

// Solution is one parallel solution candidate for an HTG node: the unit
// collected in the per-node "parallel sets" of the algorithm. TimeNs and
// ProcsUsed are the quantities the parent-level ILP consumes (COSTS and
// USEDPROCS); Tasks describes the implementation for the simulator and the
// code generator.
type Solution struct {
	Node *htg.Node
	Kind SolutionKind
	// MainClass tags the processor class executing the main task.
	MainClass int
	// TimeNs is the total execution time attributed to the node across the
	// whole program run (all TotalCount executions), including task
	// creation and communication overheads.
	TimeNs float64
	// ProcsUsed[c] is the number of class-c processing units allocated
	// while this solution runs, including the main task's own unit.
	ProcsUsed []int
	// NumTasks counts tasks including the main task (1 = sequential).
	NumTasks int
	// Tasks holds the per-task plans for parallel kinds. Task 0 is the
	// main task (runs on MainClass).
	Tasks []*TaskPlan
	// Children maps each HTG child to its chosen sub-solution (sequential
	// solutions recurse with nil, meaning "everything sequential").
	// Set for KindTaskParallel.
	Chosen map[*htg.Node]*Solution
	// merged backs super-items created by granularity clustering: the
	// original region items this sequential candidate spans.
	merged []*regionItem
}

// TaskPlan is one extracted task.
type TaskPlan struct {
	// Class is the processor class this task is pre-mapped to.
	Class int
	// Items lists the work units in execution order.
	Items []*ItemPlan
}

// ItemPlan is one work unit inside a task: either an HTG child node
// executed with a chosen sub-solution, or an iteration chunk of a DOALL
// loop.
type ItemPlan struct {
	// Child is the HTG node (nil for pure chunk items).
	Child *htg.Node
	// Sub is the chosen solution for Child (nil = sequential on the task's
	// class).
	Sub *Solution
	// ChunkFrac is the fraction of the surrounding DOALL loop's iteration
	// space this item covers (0 for statement items).
	ChunkFrac float64
}

// ExtraProcs returns the processors the solution needs in addition to the
// unit running its main task.
func (s *Solution) ExtraProcs() []int {
	extra := append([]int(nil), s.ProcsUsed...)
	if s.MainClass >= 0 && s.MainClass < len(extra) && extra[s.MainClass] > 0 {
		extra[s.MainClass]--
	}
	return extra
}

// TotalProcs returns the total allocated processing units.
func (s *Solution) TotalProcs() int {
	n := 0
	for _, c := range s.ProcsUsed {
		n += c
	}
	return n
}

// String renders a compact summary.
func (s *Solution) String() string {
	return fmt.Sprintf("%s(main=c%d, %d task(s), %.0fns, procs=%v)",
		s.Kind, s.MainClass, s.NumTasks, s.TimeNs, s.ProcsUsed)
}

// Describe renders the full task tree, indented, for tooling output.
func (s *Solution) Describe(pf *platform.Platform) string {
	var sb strings.Builder
	s.describe(pf, &sb, 0)
	return sb.String()
}

func (s *Solution) describe(pf *platform.Platform, sb *strings.Builder, depth int) {
	ind := strings.Repeat("  ", depth)
	label := "<root>"
	if s.Node != nil {
		label = s.Node.Label
	}
	fmt.Fprintf(sb, "%s%s: %s\n", ind, label, s)
	for ti, t := range s.Tasks {
		fmt.Fprintf(sb, "%s  task %d on %s:\n", ind, ti, pf.Classes[t.Class].Name)
		for _, it := range t.Items {
			switch {
			case it.ChunkFrac > 0:
				fmt.Fprintf(sb, "%s    chunk %.1f%% of iterations\n", ind, it.ChunkFrac*100)
			case it.Sub != nil && it.Sub.Kind != KindSequential:
				it.Sub.describe(pf, sb, depth+2)
			default:
				fmt.Fprintf(sb, "%s    %s (seq)\n", ind, it.Child.Label)
			}
		}
	}
}

// SolutionSet is the per-node "parallel set": all profitable candidates
// grouped by main processor class.
type SolutionSet struct {
	Node *htg.Node
	// ByClass[c] lists candidates whose main task runs on class c, best
	// time first. Each class always contains at least the sequential
	// solution (the guarantee of Section IV-K).
	ByClass [][]*Solution
}

// Best returns the fastest candidate for the given main class.
func (ss *SolutionSet) Best(class int) *Solution {
	if len(ss.ByClass[class]) == 0 {
		return nil
	}
	return ss.ByClass[class][0]
}

// All returns every candidate in the set.
func (ss *SolutionSet) All() []*Solution {
	var out []*Solution
	for _, cl := range ss.ByClass {
		out = append(out, cl...)
	}
	return out
}

// prune keeps, per class, only Pareto-optimal candidates under
// (TimeNs, TotalProcs): a candidate survives when no other candidate is
// both faster (or equal) and uses fewer (or equal) processors. This keeps
// the parent-level ILPs small without losing optimal combinations.
func (ss *SolutionSet) prune(maxPerClass int) {
	for c := range ss.ByClass {
		cands := ss.ByClass[c]
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].TimeNs != cands[j].TimeNs {
				return cands[i].TimeNs < cands[j].TimeNs
			}
			return cands[i].TotalProcs() < cands[j].TotalProcs()
		})
		var kept []*Solution
		bestProcs := 1 << 30
		for _, cand := range cands {
			p := cand.TotalProcs()
			if p < bestProcs {
				kept = append(kept, cand)
				bestProcs = p
			}
		}
		if maxPerClass > 0 && len(kept) > maxPerClass {
			// Keep the fastest and the leanest ends of the front.
			head := kept[:maxPerClass-1]
			tail := kept[len(kept)-1]
			kept = append(append([]*Solution(nil), head...), tail)
		}
		ss.ByClass[c] = kept
	}
}

// sequentialSolution builds the all-sequential candidate for node on class.
func sequentialSolution(node *htg.Node, pf *platform.Platform, class int) *Solution {
	procs := make([]int, len(pf.Classes))
	procs[class] = 1
	return &Solution{
		Node:      node,
		Kind:      KindSequential,
		MainClass: class,
		TimeNs:    float64(node.TotalCount) * node.CostNanosOn(pf.Classes[class]),
		ProcsUsed: procs,
		NumTasks:  1,
	}
}
