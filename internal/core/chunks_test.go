package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/platform"
)

// newChunkRegion builds a synthetic 12-chunk DOALL region with total work
// W nanoseconds on the slowest class.
func newChunkRegion(pf *platform.Platform, w float64, k int) *regionSpec {
	rs := &regionSpec{kind: KindChunked, spawnCount: 1}
	for i := 0; i < k; i++ {
		it := &regionItem{name: "chunk", chunkFrac: 1.0 / float64(k)}
		it.cands = make([][]*Solution, len(pf.Classes))
		for c := range pf.Classes {
			procs := make([]int, len(pf.Classes))
			procs[c] = 1
			speed := pf.Classes[c].SpeedScore() / pf.Classes[pf.SlowestClass()].SpeedScore()
			it.cands[c] = []*Solution{{
				Kind: KindSequential, MainClass: c,
				TimeNs:    w / float64(k) / speed,
				ProcsUsed: procs, NumTasks: 1,
			}}
		}
		it.inCommNs = 100
		it.outCommNs = 100
		rs.items = append(rs.items, it)
	}
	return rs
}

// TestChunkSolverProportionalSplit verifies the count-based chunk ILP finds
// the speed-proportional distribution on configuration A quickly.
func TestChunkSolverProportionalSplit(t *testing.T) {
	pf := platform.ConfigA()
	p := &Parallelizer{pf: pf, cfg: Config{}.withDefaults()}
	rs := newChunkRegion(pf, 430100, 12)
	start := time.Now()
	sol := p.solveRegion(rs, 0, 4)
	elapsed := time.Since(start)
	if sol == nil {
		t.Fatalf("chunk ILP returned nil")
	}
	if elapsed > 2*time.Second {
		t.Errorf("chunk ILP too slow: %v", elapsed)
	}
	if sol.NumTasks != 4 {
		t.Errorf("want 4 tasks, got %d (%v)", sol.NumTasks, sol)
	}
	// All four cores allocated.
	want := []int{1, 1, 2}
	for c, n := range sol.ProcsUsed {
		if n != want[c] {
			t.Errorf("procs[%d] = %d, want %d", c, n, want[c])
		}
	}
	// The makespan must be close to the balanced ideal W/13.5 plus
	// overheads (within 35%).
	ideal := 430100.0 / pf.TheoreticalSpeedup(0)
	if sol.TimeNs > ideal*1.35 {
		t.Errorf("makespan %.0f too far above balanced ideal %.0f", sol.TimeNs, ideal)
	}
	// Chunk counts must be monotone with class speed: count the chunks
	// assigned per task and check the fastest class holds the most.
	perClass := make([]int, len(pf.Classes))
	for _, tp := range sol.Tasks {
		for _, it := range tp.Items {
			if it.ChunkFrac > 0 {
				perClass[tp.Class]++
			}
		}
	}
	if perClass[2] <= perClass[0] {
		t.Errorf("fast class should run more chunks: %v", perClass)
	}
}

// TestChunkSolverRespectsTaskBound checks the sweep dimension i of
// Algorithm 1: a 2-task bound yields at most 2 tasks.
func TestChunkSolverRespectsTaskBound(t *testing.T) {
	pf := platform.ConfigA()
	p := &Parallelizer{pf: pf, cfg: Config{}.withDefaults()}
	rs := newChunkRegion(pf, 430100, 12)
	sol := p.solveRegion(rs, 0, 2)
	if sol == nil {
		t.Fatalf("nil solution")
	}
	if sol.NumTasks > 2 {
		t.Errorf("task bound violated: %d tasks", sol.NumTasks)
	}
}

// TestChunkSolverHopelessRegionSkipped: when spawning costs exceed all
// work, the solver must bail out immediately.
func TestChunkSolverHopelessRegionSkipped(t *testing.T) {
	pf := platform.ConfigA()
	p := &Parallelizer{pf: pf, cfg: Config{}.withDefaults()}
	rs := newChunkRegion(pf, 430100, 12)
	rs.spawnCount = 1e6 // a million spawns at 2500ns each
	if sol := p.solveRegion(rs, 0, 4); sol != nil {
		t.Errorf("expected nil for hopeless region, got %v", sol)
	}
}

// TestChunkSolverHomogeneousPlatform: single-class platform splits evenly.
func TestChunkSolverHomogeneousPlatform(t *testing.T) {
	pf := platform.Homogeneous("h4", 500, 4)
	p := &Parallelizer{pf: pf, cfg: Config{}.withDefaults()}
	rs := newChunkRegion(pf, 400000, 12)
	sol := p.solveRegion(rs, 0, 4)
	if sol == nil {
		t.Fatalf("nil solution")
	}
	if sol.NumTasks != 4 {
		t.Errorf("want 4 tasks, got %d", sol.NumTasks)
	}
	counts := []int{}
	for _, tp := range sol.Tasks {
		counts = append(counts, len(tp.Items))
	}
	for _, n := range counts {
		if math.Abs(float64(n)-3) > 1 {
			t.Errorf("uneven split on homogeneous platform: %v", counts)
		}
	}
}
