package core

import (
	"errors"
	"testing"

	"repro/internal/platform"
)

// The Audit hook receives the finished Result and can veto the whole run:
// this is the seam the static race checker (internal/analysis) plugs into.
func TestAuditHookReceivesResultAndPropagatesError(t *testing.T) {
	g := buildGraph(t, hotLoopSrc)
	pf := platform.ConfigA()

	calls := 0
	cfg := Config{Audit: func(res *Result) error {
		calls++
		if res.Best == nil || res.Sets == nil || res.Platform == nil {
			t.Errorf("audit saw incomplete result: %+v", res)
		}
		return nil
	}}
	if _, err := Parallelize(g, pf, 0, Heterogeneous, cfg); err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	if calls != 1 {
		t.Fatalf("audit hook called %d times, want 1", calls)
	}

	veto := errors.New("audit veto")
	cfg.Audit = func(*Result) error { return veto }
	if _, err := Parallelize(g, pf, 0, Heterogeneous, cfg); !errors.Is(err, veto) {
		t.Fatalf("audit error not propagated, got %v", err)
	}
}
