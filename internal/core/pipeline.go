package core

import (
	"fmt"
	"math"

	"repro/internal/dataflow"
	"repro/internal/htg"
	"repro/internal/ilp"
)

// Pipeline parallelism is the extension the paper names as future work
// ("we intend to extend our heterogeneous parallelization framework to be
// able to extract other types of parallelism as well, like, e.g., pipeline
// parallelism"). It targets exactly the benchmarks the evaluation calls
// out as limited by task-level parallelism (latnrm, spectral): loops whose
// iterations are serialized by recurrences, but whose bodies decompose
// into stages that can run on different cores with iteration i's stage s
// overlapping iteration i+1's stage s-1.
//
// The model is a heterogeneous variant of decoupled software pipelining:
//
//   - stages are contiguous groups of the loop body's statement nodes
//     (program order, like Eq. 10's monotone task ids),
//   - a statement with a self-carried dependence is fine (its stage owns
//     the state); a loop-carried dependence *backwards* across statements
//     would require a cross-iteration round trip and disqualifies the loop,
//   - every stage is pre-mapped to a processor class (Eq. 12-16 style),
//   - steady-state throughput is set by the slowest stage including its
//     per-iteration forwarding communication; the objective minimizes
//     iterations x bottleneck + pipeline fill.

// pipelinable reports whether the loop node's children admit forward-only
// pipelining, i.e. no loop-carried dependence flows from a later child to
// an earlier one (checked conservatively via write/read sets).
func pipelinable(n *htg.Node) bool {
	if n.Kind != htg.KindLoop {
		return false
	}
	kids := n.Children
	if len(kids) < 2 {
		return false
	}
	// A backward carried dependence exists when an earlier child reads
	// what a later child writes (the value then comes from the previous
	// iteration). Same-child recurrences stay inside one stage.
	for i := 0; i < len(kids); i++ {
		for j := i + 1; j < len(kids); j++ {
			if kids[i].Acc == nil || kids[j].Acc == nil {
				return false
			}
			d := dataflow.DependsOn(kids[j].Acc, kids[i].Acc)
			if d.Kind.Has(dataflow.DepFlow) {
				return false // later child feeds an earlier one
			}
		}
	}
	return true
}

// ilpParPipeline builds and solves the stage-partitioning ILP for a loop's
// statement region. Items must be the loop's children in program order
// (the statementRegion construction guarantees this). Returns nil when
// pipelining does not beat sequential execution on seqPC.
func (p *Parallelizer) ilpParPipeline(rs *regionSpec, iters float64, seqPC, maxTasks int) *regionAssignment {
	nItems := len(rs.items)
	nClasses := len(p.pf.Classes)
	T := maxTasks
	if T > p.pf.NumCores() {
		T = p.pf.NumCores()
	}
	if T < 2 || nItems < 2 || iters < 2 {
		return nil
	}
	// Per-item, per-class cost of ONE iteration (total seq cost divided by
	// the iteration count).
	perIter := make([][]float64, nItems)
	seqTime := 0.0
	for n, it := range rs.items {
		perIter[n] = make([]float64, nClasses)
		for c := 0; c < nClasses; c++ {
			cand := seqCandOn(it, c)
			if cand == nil {
				return nil
			}
			perIter[n][c] = cand.TimeNs / iters
		}
		seqTime += perIter[n][seqPC] * iters
	}
	// Pipelines are created once per loop entry.
	spawns := rs.spawnCount
	spawnOverheadNs := spawns * p.pf.TaskCreateNs
	if spawnOverheadNs >= seqTime {
		return nil
	}
	// Forward communication per iteration between adjacent stages: bytes
	// of the flow edges that cross the stage boundary. Computed per edge;
	// the ILP charges an edge's per-iteration cost to the producer's stage
	// when the edge crosses stages.
	worstIter := 0.0
	for n := range rs.items {
		for c := 0; c < nClasses; c++ {
			if perIter[n][c] > worstIter {
				worstIter = perIter[n][c]
			}
		}
	}
	edgeIterNs := make([]float64, len(rs.edges))
	bigM := worstIter * float64(nItems)
	for e, edge := range rs.edges {
		edgeIterNs[e] = edge.commNs / iters
		bigM += edgeIterNs[e]
	}
	bigM = 2*bigM + 1

	m := ilp.NewModel()
	// x[n][t]: item n in stage t; monotone in program order.
	x := make([][]ilp.VarID, nItems)
	for n := range x {
		x[n] = make([]ilp.VarID, T)
		for t := 0; t < T; t++ {
			x[n][t] = m.AddBinary(fmt.Sprintf("x_n%d_t%d", n, t), 0)
			m.SetPriority(x[n][t], 3)
		}
	}
	mp := make([][]ilp.VarID, T)
	used := make([]ilp.VarID, T)
	w := make([][]ilp.VarID, T)
	stage := make([]ilp.VarID, T) // per-iteration stage time
	for t := 0; t < T; t++ {
		mp[t] = make([]ilp.VarID, nClasses)
		w[t] = make([]ilp.VarID, nClasses)
		for c := 0; c < nClasses; c++ {
			mp[t][c] = m.AddBinary(fmt.Sprintf("map_t%d_c%d", t, c), 0)
			m.SetPriority(mp[t][c], 3)
			w[t][c] = m.AddVar(fmt.Sprintf("w_t%d_c%d", t, c), 0, 1, 0)
		}
		used[t] = m.AddBinary(fmt.Sprintf("used_t%d", t), 0)
		m.SetPriority(used[t], 2)
		stage[t] = m.AddVar(fmt.Sprintf("stage_t%d", t), 0, math.Inf(1), 0)
	}
	// bottleneck: the steady-state per-iteration time.
	bottleneck := m.AddVar("bottleneck", 0, math.Inf(1), iters)
	// fill: sum of all stage times once (pipeline ramp-up) plus spawn
	// overhead, constant coefficient 1 in the objective.
	fill := m.AddVar("fill", 0, math.Inf(1), 1)
	// Improvement bound.
	m.AddCons("improve", []ilp.Term{
		{Var: bottleneck, Coeff: iters},
		{Var: fill, Coeff: 1},
	}, ilp.LE, seqTime*0.999)

	// Each item in exactly one stage.
	for n := 0; n < nItems; n++ {
		terms := make([]ilp.Term, T)
		for t := 0; t < T; t++ {
			terms[t] = ilp.Term{Var: x[n][t], Coeff: 1}
		}
		m.AddCons(fmt.Sprintf("assign_n%d", n), terms, ilp.EQ, 1)
	}
	// Stage monotonicity (contiguous stages in program order).
	for n := 0; n+1 < nItems; n++ {
		var terms []ilp.Term
		for t := 1; t < T; t++ {
			terms = append(terms, ilp.Term{Var: x[n+1][t], Coeff: float64(t)})
			terms = append(terms, ilp.Term{Var: x[n][t], Coeff: -float64(t)})
		}
		m.AddCons(fmt.Sprintf("mono_n%d", n), terms, ilp.GE, 0)
	}
	// Class assignment, usage flags, budget.
	for t := 0; t < T; t++ {
		terms := make([]ilp.Term, nClasses)
		for c := 0; c < nClasses; c++ {
			terms[c] = ilp.Term{Var: mp[t][c], Coeff: 1}
		}
		m.AddCons(fmt.Sprintf("one_class_t%d", t), terms, ilp.EQ, 1)
		for n := 0; n < nItems; n++ {
			m.AddCons(fmt.Sprintf("used_t%d_n%d", t, n),
				[]ilp.Term{{Var: used[t], Coeff: 1}, {Var: x[n][t], Coeff: -1}}, ilp.GE, 0)
		}
		if t+1 < T {
			m.AddCons(fmt.Sprintf("used_mono_t%d", t),
				[]ilp.Term{{Var: used[t], Coeff: 1}, {Var: used[t+1], Coeff: -1}}, ilp.GE, 0)
		}
		for c := 0; c < nClasses; c++ {
			m.AddCons(fmt.Sprintf("w_t%d_c%d", t, c),
				[]ilp.Term{
					{Var: w[t][c], Coeff: 1},
					{Var: mp[t][c], Coeff: -1},
					{Var: used[t], Coeff: -1},
				}, ilp.GE, -1)
		}
	}
	m.AddCons("main_class", []ilp.Term{{Var: mp[0][seqPC], Coeff: 1}}, ilp.EQ, 1)
	m.AddCons("main_used", []ilp.Term{{Var: used[0], Coeff: 1}}, ilp.EQ, 1)
	for c := 0; c < nClasses; c++ {
		var terms []ilp.Term
		for t := 0; t < T; t++ {
			terms = append(terms, ilp.Term{Var: w[t][c], Coeff: 1})
		}
		m.AddCons(fmt.Sprintf("budget_c%d", c), terms, ilp.LE, float64(p.pf.Classes[c].Count))
	}
	// Stage time: stage[t] >= sum_n perIter[n][c]*x[n][t] - M(1-map[t][c])
	// plus per-iteration forwarding for edges leaving the stage.
	cross := make([][]ilp.VarID, len(rs.edges))
	for e := range rs.edges {
		if edgeIterNs[e] <= 0 {
			continue
		}
		cross[e] = make([]ilp.VarID, T)
		for t := 0; t < T; t++ {
			cross[e][t] = m.AddVar(fmt.Sprintf("cross_e%d_t%d", e, t), 0, 1, 0)
			m.AddCons(fmt.Sprintf("crossdef_e%d_t%d", e, t),
				[]ilp.Term{
					{Var: cross[e][t], Coeff: 1},
					{Var: x[rs.edges[e].from][t], Coeff: -1},
					{Var: x[rs.edges[e].to][t], Coeff: 1},
				}, ilp.GE, 0)
		}
	}
	for t := 0; t < T; t++ {
		for c := 0; c < nClasses; c++ {
			terms := []ilp.Term{
				{Var: stage[t], Coeff: 1},
				{Var: mp[t][c], Coeff: -bigM},
			}
			for n := 0; n < nItems; n++ {
				terms = append(terms, ilp.Term{Var: x[n][t], Coeff: -perIter[n][c]})
			}
			for e := range rs.edges {
				if cross[e] != nil {
					terms = append(terms, ilp.Term{Var: cross[e][t], Coeff: -edgeIterNs[e]})
				}
			}
			m.AddCons(fmt.Sprintf("stage_t%d_c%d", t, c), terms, ilp.GE, -bigM)
		}
		m.AddCons(fmt.Sprintf("bneck_t%d", t),
			[]ilp.Term{{Var: bottleneck, Coeff: 1}, {Var: stage[t], Coeff: -1}}, ilp.GE, 0)
	}
	// fill >= sum stages + spawn overhead.
	{
		terms := []ilp.Term{{Var: fill, Coeff: 1}}
		for t := 0; t < T; t++ {
			terms = append(terms, ilp.Term{Var: stage[t], Coeff: -1})
		}
		m.AddCons("fill", terms, ilp.GE, spawnOverheadNs)
	}
	// Work-conservation cut for the LP bound: T*bottleneck >= total
	// per-iteration work at the cheapest class... kept class-aware:
	for c := 0; c < nClasses; c++ {
		// Count_c * bottleneck >= work placed on class c per iteration is
		// implied by the stage constraints; a simpler aggregate keeps the
		// root bound useful:
		_ = c
	}
	{
		terms := []ilp.Term{{Var: bottleneck, Coeff: float64(T)}}
		best := 0.0
		for n := 0; n < nItems; n++ {
			bi := perIter[n][0]
			for c := 1; c < nClasses; c++ {
				if perIter[n][c] < bi {
					bi = perIter[n][c]
				}
			}
			best += bi
		}
		m.AddCons("cut_bneck", terms, ilp.GE, best)
	}

	res := p.solve(m, solveMeta{region: regionLabel(rs), model: "pipeline", class: seqPC, tasks: T})
	if res == nil {
		return nil
	}
	on := func(id ilp.VarID) bool { return res.X[id] > 0.5 }
	a := &regionAssignment{
		TaskOf:    make([]int, nItems),
		CandClass: make([]int, nItems),
		CandSlot:  make([]int, nItems),
		ClassOf:   make([]int, T),
		Obj:       res.Obj,
		Pipelined: true,
	}
	for t := 0; t < T; t++ {
		a.ClassOf[t] = seqPC
		for c := 0; c < nClasses; c++ {
			if on(mp[t][c]) {
				a.ClassOf[t] = c
			}
		}
	}
	for n := 0; n < nItems; n++ {
		a.TaskOf[n] = 0
		for t := 0; t < T; t++ {
			if on(x[n][t]) {
				a.TaskOf[n] = t
			}
		}
		// Each stage item runs its stage class's sequential candidate.
		a.CandClass[n], a.CandSlot[n] = a.ClassOf[a.TaskOf[n]], -1
	}
	return a
}
