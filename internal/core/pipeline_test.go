package core

import (
	"testing"

	"repro/internal/platform"
)

// pipelineSrc is a classic 3-stage filter chain: every stage carries its
// own scalar state (so the loop is not DOALL), but state only flows
// forward between stages, which admits software pipelining.
const pipelineSrc = `
#define N 512
float x[N]; float y[N];
float acc1; float acc2;
void main(void) {
    for (int i = 0; i < N; i++) {
        x[i] = sin(i * 0.08) + 0.4 * sin(i * 0.31);
    }
    for (int n = 0; n < N; n++) {
        acc1 = acc1 * 0.9 + x[n] * 0.1;
        acc2 = acc2 * 0.8 + acc1 * acc1 * 0.2 + sqrt(fabs(acc1) + 1.0);
        y[n] = acc2 * acc2 + sqrt(fabs(acc2) + 2.0) * 3.0;
    }
}
`

func TestPipelinableDetection(t *testing.T) {
	g := buildGraph(t, pipelineSrc)
	var loop *Solution
	_ = loop
	// The second root child is the filter loop.
	filter := g.Root.Children[1]
	if filter.Loop != nil && filter.Loop.Parallel {
		t.Fatalf("filter loop must not be DOALL (carried state)")
	}
	if !pipelinable(filter) {
		t.Fatalf("forward-only state chain should be pipelinable")
	}
}

func TestPipelineBackwardDepRejected(t *testing.T) {
	// acc1 update reads acc2 (defined by a LATER statement): the value
	// comes from the previous iteration, flowing backwards across
	// statements - not pipelinable.
	g := buildGraph(t, `
#define N 64
float x[N]; float y[N]; float acc1; float acc2;
void main(void) {
    for (int n = 0; n < N; n++) {
        acc1 = acc1 * 0.9 + acc2 * 0.1 + x[n];
        acc2 = acc2 * 0.8 + acc1;
        y[n] = acc2;
    }
}
`)
	loop := g.Root.Children[0]
	if pipelinable(loop) {
		t.Fatalf("backward carried dependence must disqualify pipelining")
	}
}

func TestPipeliningImprovesRecurrenceLoop(t *testing.T) {
	pf := platform.ConfigA()
	g := buildGraph(t, pipelineSrc)
	main := platform.ScenarioAccelerator.MainClass(pf)
	without, err := Parallelize(g, pf, main, Heterogeneous, Config{})
	if err != nil {
		t.Fatalf("without: %v", err)
	}
	with, err := Parallelize(g, pf, main, Heterogeneous, Config{EnablePipelining: true})
	if err != nil {
		t.Fatalf("with: %v", err)
	}
	if with.Best.TimeNs >= without.Best.TimeNs {
		t.Errorf("pipelining should improve the recurrence chain: with=%.0f without=%.0f",
			with.Best.TimeNs, without.Best.TimeNs)
	}
	// A pipelined solution must exist somewhere in the chosen tree.
	found := false
	var walk func(s *Solution)
	walk = func(s *Solution) {
		if s.Kind == KindPipelined {
			found = true
		}
		for _, tp := range s.Tasks {
			for _, it := range tp.Items {
				if it.Sub != nil {
					walk(it.Sub)
				}
			}
		}
	}
	walk(with.Best)
	if !found {
		t.Errorf("no pipelined solution in the chosen tree:\n%s", with.Best.Describe(pf))
	}
}
