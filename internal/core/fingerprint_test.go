package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/solstore"
)

func TestConfigFingerprint(t *testing.T) {
	// The zero config and the explicitly-defaulted config are equivalent.
	var zero Config
	expl := Config{MaxItemsPerILP: 12, MaxCandsPerClass: 5, MaxILPNodes: 1500,
		ILPTimeout: 400 * time.Millisecond, ILPRelGap: 0.01}
	if zero.Fingerprint() != expl.Fingerprint() {
		t.Errorf("zero config fingerprint %q != defaulted %q", zero.Fingerprint(), expl.Fingerprint())
	}
	// Observability sinks must not affect the fingerprint.
	instr := expl
	instr.Tracer = obs.NewTracer()
	instr.Metrics = obs.NewRegistry()
	if instr.Fingerprint() != expl.Fingerprint() {
		t.Errorf("observer changed the fingerprint")
	}
	// Scheduling width and the shared store must not either: both are
	// guaranteed output-neutral (deterministic unit merge; region keys
	// cover every solver-visible input), so cached whole-run outcomes
	// stay valid across worker counts and store configurations.
	sched := expl
	sched.RegionWorkers = 8
	sched.Store = solstore.New(solstore.Options{})
	if sched.Fingerprint() != expl.Fingerprint() {
		t.Errorf("RegionWorkers/Store changed the fingerprint")
	}
	// Every solver-relevant knob must affect it.
	muts := []struct {
		name string
		mut  func(*Config)
	}{
		{"items", func(c *Config) { c.MaxItemsPerILP = 8 }},
		{"cands", func(c *Config) { c.MaxCandsPerClass = 3 }},
		{"tasks", func(c *Config) { c.MaxTasksPerRegion = 4 }},
		{"nodes", func(c *Config) { c.MaxILPNodes = 100 }},
		{"timeout", func(c *Config) { c.ILPTimeout = time.Second }},
		{"gap", func(c *Config) { c.ILPRelGap = 0.05 }},
		{"chunking", func(c *Config) { c.DisableChunking = true }},
		{"pipelining", func(c *Config) { c.EnablePipelining = true }},
		{"hierarchy", func(c *Config) { c.DisableHierarchy = true }},
	}
	for _, m := range muts {
		c := expl
		m.mut(&c)
		if c.Fingerprint() == expl.Fingerprint() {
			t.Errorf("%s change did not change the fingerprint", m.name)
		}
	}
	if strings.ContainsAny(zero.Fingerprint(), "\n") {
		t.Errorf("fingerprint must be a single line")
	}
}
